package cypress

// One testing.B benchmark per paper table/figure, each driving the same
// harness as cmd/cypressbench at smoke scale, plus component-level
// microbenchmarks for the compression hot paths. Regenerate the full
// evaluation with:  go run ./cmd/cypressbench -exp all

import (
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/npb"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := bench.Config{Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1CompilationOverhead(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkFig15TraceSizes(b *testing.B)           { runExperiment(b, "fig15") }
func BenchmarkFig16IntraOverhead(b *testing.B)        { runExperiment(b, "fig16") }
func BenchmarkFig17CommPatterns(b *testing.B)         { runExperiment(b, "fig17") }
func BenchmarkFig18InterOverhead(b *testing.B)        { runExperiment(b, "fig18") }
func BenchmarkFig19LeslieSizes(b *testing.B)          { runExperiment(b, "fig19") }
func BenchmarkFig20LesliePatterns(b *testing.B)       { runExperiment(b, "fig20") }
func BenchmarkFig21Prediction(b *testing.B)           { runExperiment(b, "fig21") }
func BenchmarkAblations(b *testing.B)                 { runExperiment(b, "ablate") }

// Component microbenchmarks for the compression hot paths (bodies live in
// internal/bench/micro.go so cypressbench -benchjson can run them too).
// All report allocations; BenchmarkCompressorEvent is the steady-state
// tracing-overhead guard (see the AllocsPerRun test in internal/ctt).

func BenchmarkCompressorEvent(b *testing.B) { bench.BenchCompressorEvent(b) }

// BenchmarkCompressorEventObs is the same path with a live metrics sink; the
// delta against BenchmarkCompressorEvent is the observability overhead
// (budget: <3% ns/op, identical allocs/op — see internal/obs).
func BenchmarkCompressorEventObs(b *testing.B) { bench.BenchCompressorEventObs(b) }
func BenchmarkRecordMerge(b *testing.B)        { bench.BenchRecordMerge(b) }
func BenchmarkMergePair(b *testing.B)          { bench.BenchMergePair(b) }
func BenchmarkEncode(b *testing.B)             { bench.BenchEncode(b) }
func BenchmarkMergeAll256(b *testing.B)        { bench.BenchMergeAll256(b) }
func BenchmarkMergeAll1024(b *testing.B)       { bench.BenchMergeAll1024(b) }
func BenchmarkMergeAll4096(b *testing.B)       { bench.BenchMergeAll4096(b) }
func BenchmarkDecode(b *testing.B)             { bench.BenchDecode(b) }

// Block-parallel container benchmarks (bodies in internal/bench/micro.go):
// the gzip baseline beside the CYPB worker sweep. The emitted container bytes
// are identical at every worker count, so the sweep isolates coordination
// cost (single-core) or speedup (multi-core).

func BenchmarkEncodeGzip1024(b *testing.B)      { bench.BenchEncodeGzip1024(b) }
func BenchmarkEncodeBlocked1024W1(b *testing.B) { bench.BenchEncodeBlocked1024W1(b) }
func BenchmarkEncodeBlocked1024W2(b *testing.B) { bench.BenchEncodeBlocked1024W2(b) }
func BenchmarkEncodeBlocked1024W4(b *testing.B) { bench.BenchEncodeBlocked1024W4(b) }
func BenchmarkDecodeBlocked1024W1(b *testing.B) { bench.BenchDecodeBlocked1024W1(b) }
func BenchmarkDecodeBlocked1024W2(b *testing.B) { bench.BenchDecodeBlocked1024W2(b) }

// Streaming decompression benchmarks (bodies in internal/bench/replaybench.go):
// each streaming path is paired with its pre-streaming reference
// (Walk / Materialized) so before/after comparisons stay runnable.

func BenchmarkReplayRank(b *testing.B)     { bench.BenchReplayRank(b) }
func BenchmarkReplayRankWalk(b *testing.B) { bench.BenchReplayRankWalk(b) }
func BenchmarkPredict256(b *testing.B)     { bench.BenchPredict256(b) }
func BenchmarkPredict1024(b *testing.B)    { bench.BenchPredict1024(b) }
func BenchmarkPredict1024W2(b *testing.B)  { bench.BenchPredict1024W2(b) }
func BenchmarkPredict1024W4(b *testing.B)  { bench.BenchPredict1024W4(b) }
func BenchmarkSimulate1024W1(b *testing.B) { bench.BenchSimulate1024W1(b) }
func BenchmarkSimulate1024W2(b *testing.B) { bench.BenchSimulate1024W2(b) }
func BenchmarkSimulate1024W4(b *testing.B) { bench.BenchSimulate1024W4(b) }
func BenchmarkPredictMaterialized256(b *testing.B) {
	bench.BenchPredictMaterialized256(b)
}
func BenchmarkPredictMaterialized1024(b *testing.B) {
	bench.BenchPredictMaterialized1024(b)
}
func BenchmarkCommMatrix1024(b *testing.B) { bench.BenchCommMatrix1024(b) }
func BenchmarkCommMatrixMaterialized1024(b *testing.B) {
	bench.BenchCommMatrixMaterialized1024(b)
}

// Content-addressed corpus benchmarks (bodies in internal/bench/corpusbench.go):
// cross-run dedup sizing, ingest throughput, and cold-versus-warm serving of
// decoded traces. BenchmarkCorpusGetWarm1024 is the zero-alloc warm-path
// guard (see TestWarmGetNoAllocs in internal/corpus).

func BenchmarkCorpusIngest1024(b *testing.B)      { bench.BenchCorpusIngest1024(b) }
func BenchmarkCorpusBytes1024(b *testing.B)       { bench.BenchCorpusBytes1024(b) }
func BenchmarkCorpusGetCold1024(b *testing.B)     { bench.BenchCorpusGetCold1024(b) }
func BenchmarkCorpusGetWarm1024(b *testing.B)     { bench.BenchCorpusGetWarm1024(b) }
func BenchmarkCorpusPredictCold1024(b *testing.B) { bench.BenchCorpusPredictCold1024(b) }
func BenchmarkCorpusPredictWarm1024(b *testing.B) { bench.BenchCorpusPredictWarm1024(b) }

// Selective decode with projection pushdown: single-rank serving against the
// full-decode baselines over the sharded 1024-rank fixture.
func BenchmarkDecodeSharded1024(b *testing.B)        { bench.BenchDecodeSharded1024(b) }
func BenchmarkDecodeSelect1024Rank1(b *testing.B)    { bench.BenchDecodeSelect1024Rank1(b) }
func BenchmarkCorpusGetProjected1024(b *testing.B)   { bench.BenchCorpusGetProjected1024(b) }
func BenchmarkReplayRankProjected1024(b *testing.B)  { bench.BenchReplayRankProjected1024(b) }
func BenchmarkReplayRankFullDecode1024(b *testing.B) { bench.BenchReplayRankFullDecode1024(b) }

// BenchmarkPipelineCompile measures the static analysis module end to end
// (parse, check, lower, CFG analyses, CST build) on the largest skeleton.
func BenchmarkPipelineCompile(b *testing.B) {
	src := npb.Get("BT").Source(64, npb.Paper)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineTraceJacobi measures the full dynamic pipeline: run,
// compress, merge, for a 16-rank Jacobi iteration.
func BenchmarkPipelineTraceJacobi(b *testing.B) {
	prog, err := Compile(`
func main() {
	for var k = 0; k < 50; k = k + 1 {
		if rank < size - 1 { send(rank + 1, 8000, 0); }
		if rank > 0 { recv(rank - 1, 8000, 0); }
		if rank > 0 { send(rank - 1, 8000, 0); }
		if rank < size - 1 { recv(rank + 1, 8000, 0); }
	}
	reduce(0, 8);
}`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Trace(16, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineReplay measures sequence-preserving decompression.
func BenchmarkPipelineReplay(b *testing.B) {
	prog, err := Compile(npb.Get("LU").Source(16, npb.Small))
	if err != nil {
		b.Fatal(err)
	}
	res, err := prog.Trace(16, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := res.Replay(i % 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinePredict measures decompression plus LogGP simulation.
func BenchmarkPipelinePredict(b *testing.B) {
	prog, err := Compile(npb.Get("LESlie3d").Source(16, npb.Small))
	if err != nil {
		b.Fatal(err)
	}
	res, err := prog.Trace(16, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := res.Predict(); err != nil {
			b.Fatal(err)
		}
	}
}
