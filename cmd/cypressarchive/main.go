// Command cypressarchive manages a content-addressed corpus of merged
// CYPRESS traces (internal/corpus): runs with identical communication
// structure share one stored structure stream, and each additional run
// costs only a compressed payload delta. Reconstruction is byte-identical
// to the ingested standalone encoding.
//
// Usage:
//
//	cypressarchive -dir corpus add run1.cyp run2.cyp   # ingest trace files
//	cypressarchive -dir corpus ls                      # list content hashes
//	cypressarchive -dir corpus get HASH [-o out.cyp]   # reconstruct exact bytes
//	cypressarchive -dir corpus stats                   # corpus totals as JSON
//	cypressarchive -dir corpus rm HASH                 # tombstone a trace
//	cypressarchive -dir corpus gc                      # compact, drop tombstones
//
// add accepts any container cypresstrace writes: bare CYPR streams are
// ingested verbatim; gzip and CYPB block containers are decoded and
// re-encoded canonically first (the corpus stores exact bytes, so the
// canonical form is what get later reproduces). Hashes are printed and
// parsed as 16 hex digits.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	cypress "repro"
	"repro/internal/merge"
	ftrace "repro/internal/obs/trace"
	"repro/internal/trace"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cypressarchive:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: cypressarchive -dir DIR COMMAND
commands:
  add FILE...                     ingest trace files
  ls                              list content hashes
  get HASH [-o FILE]              reconstruct a trace's exact bytes
  get HASH -rank N [-limit N]     print one rank's decompressed events
  stats                           corpus totals as JSON
  rm HASH                         tombstone a trace
  gc                              compact, drop tombstones`)
	os.Exit(2)
}

func main() {
	dir := flag.String("dir", "", "corpus directory (created on first add)")
	cacheBytes := flag.Int64("cache", 0, "decoded-trace cache budget in bytes (0 = default)")
	workers := flag.Int("par", 0, "frame codec workers (0 = default)")
	traceFile := flag.String("trace", "", "capture a flight-recorder timeline of the command and write Chrome trace-event JSON to this file (load in Perfetto)")
	flag.Parse()
	if *dir == "" || flag.NArg() == 0 {
		usage()
	}
	if *traceFile != "" {
		rec := ftrace.New(0)
		cypress.EnableTrace(rec)
		defer writeTraceFile(rec, *traceFile)
	}

	c, err := cypress.OpenCorpus(*dir, cypress.CorpusOptions{CacheBytes: *cacheBytes, Workers: *workers})
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			fail(err)
		}
	}()

	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "add":
		if len(args) == 0 {
			usage()
		}
		for _, path := range args {
			id, err := addFile(c, path)
			if err != nil {
				fail(err)
			}
			fmt.Printf("%016x  %s\n", id, path)
		}
	case "ls":
		for _, id := range c.Hashes() {
			fmt.Printf("%016x\n", id)
		}
	case "get":
		fs := flag.NewFlagSet("get", flag.ExitOnError)
		out := fs.String("o", "", "output file (default stdout)")
		rank := fs.Int("rank", -1, "print this rank's decompressed events instead of trace bytes (rank-projected decode)")
		limit := fs.Int("limit", 50, "with -rank: max events to print (0 = all)")
		var hash string
		if len(args) > 0 && args[0][0] != '-' {
			hash, args = args[0], args[1:]
		}
		fs.Parse(args)
		if hash == "" && fs.NArg() == 1 {
			hash = fs.Arg(0)
		}
		if hash == "" {
			usage()
		}
		if *rank >= 0 {
			if err := getRank(c, parseHash(hash), *rank, *limit); err != nil {
				fail(err)
			}
			return
		}
		enc, err := c.GetBytes(parseHash(hash))
		if err != nil {
			fail(err)
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			w = f
		}
		if _, err := w.Write(enc); err != nil {
			fail(err)
		}
	case "stats":
		st, err := c.Stats()
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			fail(err)
		}
	case "rm":
		if len(args) != 1 {
			usage()
		}
		if err := c.Delete(parseHash(args[0])); err != nil {
			fail(err)
		}
	case "gc":
		if err := c.GC(); err != nil {
			fail(err)
		}
	default:
		usage()
	}
}

// addFile ingests one trace file. A bare CYPR stream is stored verbatim;
// gzip and CYPB containers are decoded and re-encoded into the canonical
// standalone form first, since the corpus's byte-identity contract covers
// exactly the bytes it was handed.
func addFile(c *cypress.Corpus, path string) (cypress.TraceID, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if bytes.HasPrefix(data, []byte("CYPR")) {
		return c.IngestBytes(data)
	}
	m, err := merge.Decode(bytes.NewReader(data))
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	var buf bytes.Buffer
	if _, err := m.Encode(&buf); err != nil {
		return 0, err
	}
	return c.IngestBytes(buf.Bytes())
}

// getRank serves one rank's event sequence through the rank-projected decode
// path: only the selected rank's timing payloads are materialized, matching
// cypressreplay -rank's output format.
func getRank(c *cypress.Corpus, id cypress.TraceID, rank, limit int) error {
	res, release, err := c.GetProjected(id, rank)
	if err != nil {
		return err
	}
	defer release()
	if rank >= res.Merged.NumRanks {
		fmt.Fprintf(os.Stderr, "cypressarchive: rank %d out of range [0,%d)\n", rank, res.Merged.NumRanks)
		os.Exit(2)
	}
	fmt.Printf("trace: ranks=%d events=%d cst-vertices=%d\n",
		res.Merged.NumRanks, res.Merged.EventCount, res.Merged.Tree.NumVertices())
	printed := 0
	return res.Streamer().Replay(rank, func(e *trace.Event) {
		if limit > 0 && printed >= limit {
			return
		}
		fmt.Printf("  %6d: %s dur=%.0fns\n", printed, e.String(), e.DurationNS)
		printed++
	})
}

func parseHash(s string) cypress.TraceID {
	var h uint64
	// A malformed hash is a usage error (exit 2, like a bad -rank in
	// cypressreplay), not a runtime failure.
	if _, err := fmt.Sscanf(s, "%x", &h); err != nil || len(s) != 16 {
		fmt.Fprintf(os.Stderr, "cypressarchive: bad hash %q: want 16 hex digits\n", s)
		os.Exit(2)
	}
	return h
}

// writeTraceFile exports the flight recorder as Chrome trace-event JSON.
func writeTraceFile(rec *ftrace.Recorder, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cypressarchive: -trace:", err)
		return
	}
	defer f.Close()
	if err := rec.WriteChromeJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "cypressarchive: -trace:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "cypressarchive: flight-recorder trace: %d events (%d dropped) -> %s\n",
		rec.Total(), rec.Drops(), path)
}
