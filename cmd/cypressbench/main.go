// Command cypressbench regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	cypressbench -exp fig15            # one experiment
//	cypressbench -exp all              # everything, default scale
//	cypressbench -exp fig18 -full      # extend to the paper's largest P
//	cypressbench -exp fig16 -quick     # smoke-test scale
//
// Experiments: table1, fig15, fig16, fig17, fig18, fig19, fig20, fig21,
// ablate.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	quick := flag.Bool("quick", false, "smoke-test scale (small iterations, few ranks)")
	full := flag.Bool("full", false, "extend to the paper's largest process counts")
	workers := flag.Int("workers", 0, "merge parallelism (0 = GOMAXPROCS)")
	flag.Parse()

	cfg := bench.Config{Quick: *quick, Full: *full, Workers: *workers}
	run := func(e bench.Experiment) error {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		t0 := time.Now()
		if err := e.Run(os.Stdout, cfg); err != nil {
			return err
		}
		fmt.Printf("(%s completed in %.1fs)\n\n", e.ID, time.Since(t0).Seconds())
		return nil
	}

	if *exp == "all" {
		for _, e := range bench.Experiments() {
			if err := run(e); err != nil {
				fmt.Fprintf(os.Stderr, "cypressbench: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
		return
	}
	e, err := bench.Get(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cypressbench:", err)
		os.Exit(2)
	}
	if err := run(e); err != nil {
		fmt.Fprintf(os.Stderr, "cypressbench: %s: %v\n", e.ID, err)
		os.Exit(1)
	}
}
