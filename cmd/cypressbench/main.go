// Command cypressbench regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	cypressbench -exp fig15            # one experiment
//	cypressbench -exp all              # everything, default scale
//	cypressbench -exp fig18 -full      # extend to the paper's largest P
//	cypressbench -exp fig16 -quick     # smoke-test scale
//	cypressbench -exp fig15 -par       # fan out (workload, procs) cells
//	cypressbench -benchjson bench.json # component microbenchmarks as JSON
//	cypressbench -exp fig15 -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//
// Experiments: table1, fig15, fig16, fig17, fig18, fig19, fig20, fig21,
// ablate.
//
// Profiling: -cpuprofile writes a pprof CPU profile covering the whole run;
// -memprofile writes an allocation profile captured at exit (after a GC, so
// it reflects live heap plus cumulative allocs). Inspect either with
// `go tool pprof`. -benchjson runs the registered microbenchmarks via
// testing.Benchmark and writes machine-readable results for trajectory
// tracking; it composes with -exp (benchmarks run first) and with the
// profile flags, but the usual mode is -benchjson alone with -exp none. The
// registry includes the trace-I/O suite (Encode, EncodeGzip1024, the
// EncodeBlocked/DecodeBlocked CYPB worker sweeps), so container-format
// regressions show up in the same trajectory file.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	ftrace "repro/internal/obs/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment id, 'all', or 'none'")
	quick := flag.Bool("quick", false, "smoke-test scale (small iterations, few ranks)")
	full := flag.Bool("full", false, "extend to the paper's largest process counts")
	workers := flag.Int("workers", 0, "merge/finish parallelism (0 = GOMAXPROCS)")
	par := flag.Bool("par", false, "evaluate independent (workload, procs) cells concurrently (size figures only; timing columns get noisy)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	benchjson := flag.String("benchjson", "", "run component microbenchmarks and write JSON results to this file ('-' = stdout)")
	compare := flag.String("compare", "", "diff a fresh microbenchmark run against this baseline JSON (BENCH_pr*.json or an earlier -benchjson report)")
	threshold := flag.Float64("threshold", 0.25, "ns/op regression threshold for -compare, as a fraction (0.25 = +25%)")
	strict := flag.Bool("compare-strict", false, "exit non-zero when -compare finds regressions (default report-only)")
	traceFile := flag.String("trace", "", "capture a flight-recorder timeline of the run and write Chrome trace-event JSON to this file (load in Perfetto; with -exp none and no -benchjson, captures one traced pipeline pass)")
	stats := flag.Bool("stats", false, "print the pipeline observability report to stderr at exit")
	debugAddr := flag.String("debug.addr", "", "serve pprof/expvar/obs on this address (e.g. localhost:6060)")
	flag.Parse()

	if err := mainErr(*exp, *quick, *full, *workers, *par, *cpuprofile, *memprofile, *benchjson, *compare, *threshold, *strict, *traceFile, *stats, *debugAddr); err != nil {
		fmt.Fprintln(os.Stderr, "cypressbench:", err)
		os.Exit(1)
	}
}

// mainErr is the flag-free body, separated so deferred profile writers run
// before the process exits (os.Exit skips defers).
func mainErr(exp string, quick, full bool, workers int, par bool, cpuprofile, memprofile, benchjson, compare string, threshold float64, strict bool, traceFile string, stats bool, debugAddr string) error {
	var rec *ftrace.Recorder
	tracedRun := false // a pipeline stage ran with the recorder attached
	if traceFile != "" {
		rec = ftrace.New(0)
		bench.EnableTrace(rec)
		defer bench.EnableTrace(nil)
		defer func() { writeTraceFile(rec, traceFile) }()
	}
	if stats || debugAddr != "" {
		sink := obs.New()
		bench.EnableObs(sink)
		defer bench.EnableObs(nil)
		if debugAddr != "" {
			srv, err := obs.ServeDebugTrace(debugAddr, sink, rec)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "cypressbench: debug server on http://%s/debug/pprof/\n", srv.Addr)
		}
		if stats {
			defer func() {
				fmt.Fprintln(os.Stderr)
				sink.Report().WriteText(os.Stderr)
			}()
		}
	}
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if memprofile != "" {
		defer func() {
			f, err := os.Create(memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cypressbench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date live-heap numbers
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "cypressbench: -memprofile:", err)
			}
		}()
	}

	if benchjson != "" || compare != "" {
		fmt.Fprintln(os.Stderr, "cypressbench: running component microbenchmarks...")
		rep, err := bench.RunMicroReport()
		if err != nil {
			return err
		}
		tracedRun = true // RunMicroReport's observed pass runs the pipeline
		if benchjson != "" {
			out := os.Stdout
			if benchjson != "-" {
				f, err := os.Create(benchjson)
				if err != nil {
					return fmt.Errorf("-benchjson: %w", err)
				}
				defer f.Close()
				out = f
			}
			if err := bench.WriteMicroReport(out, rep); err != nil {
				return fmt.Errorf("-benchjson: %w", err)
			}
		}
		if compare != "" {
			base, err := bench.ParseBenchFile(compare)
			if err != nil {
				return fmt.Errorf("-compare: %w", err)
			}
			regressed, err := bench.Diff(base, bench.PointsOf(rep.Benchmarks)).WriteText(os.Stdout, threshold, 0)
			if err != nil {
				return fmt.Errorf("-compare: %w", err)
			}
			if regressed > 0 && strict {
				return fmt.Errorf("-compare: %d benchmark(s) regressed beyond +%.0f%%", regressed, threshold*100)
			}
		}
		if exp == "all" {
			// -benchjson/-compare alone should not drag in the experiments.
			exp = "none"
		}
	}
	if exp == "none" {
		if rec.Enabled() && !tracedRun {
			// Nothing else exercised the pipeline; capture one traced pass so
			// -trace alone still yields a full timeline.
			fmt.Fprintln(os.Stderr, "cypressbench: capturing one traced pipeline pass...")
			return bench.TracedPipeline(rec)
		}
		return nil
	}

	cfg := bench.Config{Quick: quick, Full: full, Workers: workers, ParallelCells: par}
	run := func(e bench.Experiment) error {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		t0 := time.Now()
		if err := e.Run(os.Stdout, cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("(%s completed in %.1fs)\n\n", e.ID, time.Since(t0).Seconds())
		return nil
	}

	if exp == "all" {
		for _, e := range bench.Experiments() {
			if err := run(e); err != nil {
				return err
			}
		}
		return nil
	}
	e, err := bench.Get(exp)
	if err != nil {
		return err
	}
	return run(e)
}

// writeTraceFile exports the flight recorder as Chrome trace-event JSON.
func writeTraceFile(rec *ftrace.Recorder, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cypressbench: -trace:", err)
		return
	}
	defer f.Close()
	if err := rec.WriteChromeJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "cypressbench: -trace:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "cypressbench: flight-recorder trace: %d events (%d dropped) -> %s\n",
		rec.Total(), rec.Drops(), path)
}
