// Command cypressbench regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	cypressbench -exp fig15            # one experiment
//	cypressbench -exp all              # everything, default scale
//	cypressbench -exp fig18 -full      # extend to the paper's largest P
//	cypressbench -exp fig16 -quick     # smoke-test scale
//	cypressbench -exp fig15 -par       # fan out (workload, procs) cells
//	cypressbench -benchjson bench.json # component microbenchmarks as JSON
//	cypressbench -exp fig15 -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//
// Experiments: table1, fig15, fig16, fig17, fig18, fig19, fig20, fig21,
// ablate.
//
// Profiling: -cpuprofile writes a pprof CPU profile covering the whole run;
// -memprofile writes an allocation profile captured at exit (after a GC, so
// it reflects live heap plus cumulative allocs). Inspect either with
// `go tool pprof`. -benchjson runs the registered microbenchmarks via
// testing.Benchmark and writes machine-readable results for trajectory
// tracking; it composes with -exp (benchmarks run first) and with the
// profile flags, but the usual mode is -benchjson alone with -exp none. The
// registry includes the trace-I/O suite (Encode, EncodeGzip1024, the
// EncodeBlocked/DecodeBlocked CYPB worker sweeps), so container-format
// regressions show up in the same trajectory file.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment id, 'all', or 'none'")
	quick := flag.Bool("quick", false, "smoke-test scale (small iterations, few ranks)")
	full := flag.Bool("full", false, "extend to the paper's largest process counts")
	workers := flag.Int("workers", 0, "merge/finish parallelism (0 = GOMAXPROCS)")
	par := flag.Bool("par", false, "evaluate independent (workload, procs) cells concurrently (size figures only; timing columns get noisy)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	benchjson := flag.String("benchjson", "", "run component microbenchmarks and write JSON results to this file ('-' = stdout)")
	stats := flag.Bool("stats", false, "print the pipeline observability report to stderr at exit")
	debugAddr := flag.String("debug.addr", "", "serve pprof/expvar/obs on this address (e.g. localhost:6060)")
	flag.Parse()

	if err := mainErr(*exp, *quick, *full, *workers, *par, *cpuprofile, *memprofile, *benchjson, *stats, *debugAddr); err != nil {
		fmt.Fprintln(os.Stderr, "cypressbench:", err)
		os.Exit(1)
	}
}

// mainErr is the flag-free body, separated so deferred profile writers run
// before the process exits (os.Exit skips defers).
func mainErr(exp string, quick, full bool, workers int, par bool, cpuprofile, memprofile, benchjson string, stats bool, debugAddr string) error {
	if stats || debugAddr != "" {
		sink := obs.New()
		bench.EnableObs(sink)
		defer bench.EnableObs(nil)
		if debugAddr != "" {
			srv, err := obs.ServeDebug(debugAddr, sink)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "cypressbench: debug server on http://%s/debug/pprof/\n", srv.Addr)
		}
		if stats {
			defer func() {
				fmt.Fprintln(os.Stderr)
				sink.Report().WriteText(os.Stderr)
			}()
		}
	}
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if memprofile != "" {
		defer func() {
			f, err := os.Create(memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cypressbench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date live-heap numbers
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "cypressbench: -memprofile:", err)
			}
		}()
	}

	if benchjson != "" {
		out := os.Stdout
		if benchjson != "-" {
			f, err := os.Create(benchjson)
			if err != nil {
				return fmt.Errorf("-benchjson: %w", err)
			}
			defer f.Close()
			out = f
		}
		fmt.Fprintln(os.Stderr, "cypressbench: running component microbenchmarks...")
		if err := bench.WriteMicroJSON(out); err != nil {
			return fmt.Errorf("-benchjson: %w", err)
		}
		if exp == "all" {
			// -benchjson alone should not drag in the full experiment suite.
			exp = "none"
		}
	}
	if exp == "none" {
		return nil
	}

	cfg := bench.Config{Quick: quick, Full: full, Workers: workers, ParallelCells: par}
	run := func(e bench.Experiment) error {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		t0 := time.Now()
		if err := e.Run(os.Stdout, cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("(%s completed in %.1fs)\n\n", e.ID, time.Since(t0).Seconds())
		return nil
	}

	if exp == "all" {
		for _, e := range bench.Experiments() {
			if err := run(e); err != nil {
				return err
			}
		}
		return nil
	}
	e, err := bench.Get(exp)
	if err != nil {
		return err
	}
	return run(e)
}
