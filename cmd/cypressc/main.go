// Command cypressc runs the CYPRESS static analysis module: it compiles an
// MPL source file and emits the program's communication structure tree.
//
// Usage:
//
//	cypressc prog.mpl            # dump the CST in indented form
//	cypressc -o prog.cst prog.mpl  # write the serialized CST file
//	cypressc -o prog.cstb -block prog.mpl  # same, inside a CYPB block container
//	cypressc -stats prog.mpl     # vertex-kind statistics only
//	cypressc -workload CG -procs 64  # compile a built-in NPB skeleton
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	cypress "repro"
	"repro/internal/blockio"
	"repro/internal/lang"
	"repro/internal/npb"
)

func main() {
	out := flag.String("o", "", "write the serialized CST to this file")
	block := flag.Bool("block", false, "wrap the -o output in the CYPB block container (the container is payload-agnostic)")
	par := flag.Int("par", 0, "compression workers for -block (0 = GOMAXPROCS-derived default)")
	stats := flag.Bool("stats", false, "print vertex statistics instead of the tree")
	format := flag.Bool("fmt", false, "pretty-print the program source instead of the tree")
	workload := flag.String("workload", "", "compile a built-in workload instead of a file")
	procs := flag.Int("procs", 64, "process count for -workload source generation")
	flag.Parse()

	var src string
	switch {
	case *workload != "":
		w := npb.Get(*workload)
		if w == nil {
			fmt.Fprintf(os.Stderr, "cypressc: unknown workload %q (have %v)\n", *workload, npb.Names())
			os.Exit(2)
		}
		if !w.ValidProcs(*procs) {
			fmt.Fprintf(os.Stderr, "cypressc: %s does not support %d processes\n", w.Name, *procs)
			os.Exit(2)
		}
		src = w.Source(*procs, npb.Paper)
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "cypressc:", err)
			os.Exit(1)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: cypressc [flags] prog.mpl  (or -workload NAME)")
		os.Exit(2)
	}

	prog, err := cypress.Compile(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cypressc:", err)
		os.Exit(1)
	}
	if *format {
		fmt.Print(lang.Format(prog.AST))
		return
	}
	st := prog.CST.Stats()
	if *stats {
		fmt.Printf("vertices=%d loops=%d branches=%d calls=%d comm=%d reccalls=%d hash=%x\n",
			st.Vertices, st.Loops, st.Branches, st.Calls, st.CommLeaves, st.RecCalls, prog.CST.Hash())
		return
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cypressc:", err)
			os.Exit(1)
		}
		defer f.Close()
		var dst io.Writer = f
		var bw *blockio.Writer
		if *block {
			workers := *par
			if workers <= 0 {
				workers = runtime.GOMAXPROCS(0)
			}
			bw, err = blockio.NewWriter(f, blockio.WriterOptions{Workers: workers})
			if err != nil {
				fmt.Fprintln(os.Stderr, "cypressc:", err)
				os.Exit(1)
			}
			dst = bw
		}
		if err := prog.CST.Encode(dst); err != nil {
			fmt.Fprintln(os.Stderr, "cypressc:", err)
			os.Exit(1)
		}
		if bw != nil {
			if err := bw.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cypressc:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("wrote %s (%d vertices, hash %x)\n", *out, st.Vertices, prog.CST.Hash())
		return
	}
	fmt.Print(prog.CST.Dump())
}
