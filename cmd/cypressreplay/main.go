// Command cypressreplay decompresses a CYPRESS trace file (paper Section V):
// it can print one rank's exact event sequence, the job's communication
// matrix, or feed the decompressed traces to the LogGP simulator for a
// performance prediction.
//
// Usage:
//
//	cypressreplay -rank 3 run.cyp        # print rank 3's event sequence
//	cypressreplay -matrix run.cyp        # communication volume matrix
//	cypressreplay -predict run.cyp       # LogGP performance prediction
package main

import (
	"flag"
	"fmt"
	"os"

	cypress "repro"
	"repro/internal/mpisim"
	"repro/internal/replay"
	"repro/internal/simmpi"
	"repro/internal/trace"
)

func main() {
	rank := flag.Int("rank", -1, "print this rank's decompressed events")
	matrix := flag.Bool("matrix", false, "print the communication volume matrix")
	predict := flag.Bool("predict", false, "run the LogGP performance prediction")
	limit := flag.Int("limit", 50, "max events to print per rank (0 = all)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cypressreplay [flags] trace.cyp")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cypressreplay:", err)
		os.Exit(1)
	}
	defer f.Close()
	m, err := cypress.ReadTrace(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cypressreplay:", err)
		os.Exit(1)
	}
	fmt.Printf("trace: ranks=%d events=%d cst-vertices=%d\n",
		m.NumRanks, m.EventCount, m.Tree.NumVertices())

	switch {
	case *rank >= 0:
		if *rank >= m.NumRanks {
			fmt.Fprintf(os.Stderr, "cypressreplay: rank %d out of range [0,%d)\n", *rank, m.NumRanks)
			os.Exit(2)
		}
		printed := 0
		err := replay.Events(m.ForRank(*rank), *rank, func(e *trace.Event) {
			if *limit > 0 && printed >= *limit {
				return
			}
			fmt.Printf("  %6d: %s dur=%.0fns\n", printed, e.String(), e.DurationNS)
			printed++
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cypressreplay:", err)
			os.Exit(1)
		}
	case *matrix:
		n := m.NumRanks
		vol := make([][]int64, n)
		for i := range vol {
			vol[i] = make([]int64, n)
		}
		for r := 0; r < n; r++ {
			err := replay.Events(m.ForRank(r), r, func(e *trace.Event) {
				if e.Op.IsSendLike() && e.Peer >= 0 && e.Peer < n {
					vol[r][e.Peer] += int64(e.Size)
				}
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "cypressreplay:", err)
				os.Exit(1)
			}
		}
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				if vol[r][c] > 0 {
					fmt.Printf("  %d -> %d: %d bytes\n", r, c, vol[r][c])
				}
			}
		}
	case *predict:
		seqs := make([][]trace.Event, m.NumRanks)
		for r := range seqs {
			seqs[r], err = replay.Sequence(m.ForRank(r), r)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cypressreplay:", err)
				os.Exit(1)
			}
		}
		res, err := simmpi.Simulate(seqs, mpisim.DefaultParams())
		if err != nil {
			fmt.Fprintln(os.Stderr, "cypressreplay:", err)
			os.Exit(1)
		}
		fmt.Printf("predicted execution time: %.3fms (communication %.1f%%)\n",
			res.TotalNS/1e6, 100*res.CommFraction())
	default:
		fmt.Fprintln(os.Stderr, "cypressreplay: pick one of -rank, -matrix, -predict")
		os.Exit(2)
	}
}
