// Command cypressreplay decompresses a CYPRESS trace file (paper Section V):
// it can print one rank's (or every rank's) exact event sequence, the job's
// communication matrix, or feed the decompressed traces to the LogGP
// simulator for a performance prediction.
//
// Usage:
//
//	cypressreplay -rank 3 run.cyp          # print rank 3's event sequence
//	cypressreplay -rank all run.cyp        # print every rank's sequence
//	cypressreplay -matrix run.cyp          # communication volume matrix
//	cypressreplay -predict run.cyp         # LogGP performance prediction
//	cypressreplay -stream -par 8 ...       # streaming replay, 8-way parallel
//
// -stream routes every mode through the streaming replayer (resolved views +
// shared replay skeletons, no full per-rank materialization); -par N bounds
// every parallel phase (0 = GOMAXPROCS): the CYPB inflate pipeline of the
// trace decode, the rank fan-out of the -stream replay modes, skeleton
// preparation, and the epoch-parallel LogGP simulation behind -predict (with
// or without -stream). The printed output and the predicted times are
// identical at every -par value. Trace files in any container — raw CYPR,
// gzip, or the CYPB block container — are sniffed automatically.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"

	cypress "repro"
	"repro/internal/merge"
	"repro/internal/mpisim"
	"repro/internal/obs"
	ftrace "repro/internal/obs/trace"
	"repro/internal/replay"
	"repro/internal/simmpi"
	"repro/internal/trace"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cypressreplay:", err)
	os.Exit(1)
}

func main() {
	rankFlag := flag.String("rank", "", "print this rank's decompressed events, or \"all\" for every rank")
	matrix := flag.Bool("matrix", false, "print the communication volume matrix")
	predict := flag.Bool("predict", false, "run the LogGP performance prediction")
	stream := flag.Bool("stream", false, "use the streaming replayer (shared skeletons, no materialization)")
	par := flag.Int("par", 1, "worker bound for every parallel phase (0 = GOMAXPROCS): CYPB inflate pipelining, -stream rank fan-out, skeleton preparation, and the -predict LogGP simulation; results are identical at every value")
	limit := flag.Int("limit", 50, "max events to print per rank (0 = all)")
	stats := flag.Bool("stats", false, "print the pipeline observability report to stderr at exit")
	traceFile := flag.String("trace", "", "capture a flight-recorder timeline of the run and write Chrome trace-event JSON to this file (load in Perfetto)")
	debugAddr := flag.String("debug.addr", "", "serve pprof/expvar/obs on this address (e.g. localhost:6060)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cypressreplay [flags] trace.cyp")
		os.Exit(2)
	}
	var rec *ftrace.Recorder
	if *traceFile != "" {
		rec = ftrace.New(0)
		cypress.EnableTrace(rec)
		defer writeTraceFile(rec, *traceFile)
	}
	if *stats || *debugAddr != "" {
		sink := obs.New()
		cypress.EnableObs(sink)
		if *debugAddr != "" {
			srv, err := obs.ServeDebugTrace(*debugAddr, sink, rec)
			if err != nil {
				fail(err)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "cypressreplay: debug server on http://%s/debug/pprof/\n", srv.Addr)
		}
		if *stats {
			defer func() {
				fmt.Fprintln(os.Stderr)
				sink.Report().WriteText(os.Stderr)
			}()
		}
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	// A numeric -rank is parsed before the decode so the single-rank query can
	// take the rank-projected selective path: only that rank's timing payloads
	// are materialized, and serving cost scales with the slice served rather
	// than the trace size.
	rank := -1
	if *rankFlag != "" && *rankFlag != "all" {
		r, err := strconv.Atoi(*rankFlag)
		if err != nil || r < 0 {
			fmt.Fprintf(os.Stderr, "cypressreplay: -rank wants a rank number or \"all\", got %q\n", *rankFlag)
			os.Exit(2)
		}
		rank = r
	}
	var m *merge.Merged
	if rank >= 0 {
		m, err = cypress.ReadTraceProjected(data, *par, rank)
	} else {
		m, err = cypress.ReadTracePar(bytes.NewReader(data), *par)
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("trace: ranks=%d events=%d cst-vertices=%d\n",
		m.NumRanks, m.EventCount, m.Tree.NumVertices())

	switch {
	case *rankFlag != "":
		if *rankFlag == "all" {
			printAll(m, *stream, *par, *limit)
			return
		}
		if rank >= m.NumRanks {
			fmt.Fprintf(os.Stderr, "cypressreplay: rank %d out of range [0,%d)\n", rank, m.NumRanks)
			os.Exit(2)
		}
		var buf bytes.Buffer
		if err := printRank(&buf, m, *stream, rank, *limit); err != nil {
			fail(err)
		}
		os.Stdout.Write(buf.Bytes())
	case *matrix:
		vol, err := commMatrix(m, *stream, *par)
		if err != nil {
			fail(err)
		}
		for r := 0; r < m.NumRanks; r++ {
			for c := 0; c < m.NumRanks; c++ {
				if vol[r][c] > 0 {
					fmt.Printf("  %d -> %d: %d bytes\n", r, c, vol[r][c])
				}
			}
		}
	case *predict:
		res, err := predictRun(m, *stream, *par)
		if err != nil {
			fail(err)
		}
		fmt.Printf("predicted execution time: %.3fms (communication %.1f%%)\n",
			res.TotalNS/1e6, 100*res.CommFraction())
	default:
		fmt.Fprintln(os.Stderr, "cypressreplay: pick one of -rank, -matrix, -predict")
		os.Exit(2)
	}
}

// printRank formats one rank's first -limit events into w.
func printRank(w *bytes.Buffer, m *merge.Merged, stream bool, rank, limit int) error {
	printed := 0
	emit := func(e *trace.Event) {
		if limit > 0 && printed >= limit {
			return
		}
		fmt.Fprintf(w, "  %6d: %s dur=%.0fns\n", printed, e.String(), e.DurationNS)
		printed++
	}
	if stream {
		return merge.NewStreamer(m).Replay(rank, emit)
	}
	return replay.Events(m.ForRank(rank), rank, emit)
}

// printAll prints every rank's sequence in rank order. Under -stream with
// parallelism, ranks replay concurrently into per-rank buffers (events of one
// rank arrive in order on one goroutine) and print in order afterwards.
func printAll(m *merge.Merged, stream bool, par, limit int) {
	bufs := make([]bytes.Buffer, m.NumRanks)
	if stream {
		s := merge.NewStreamer(m)
		printed := make([]int, m.NumRanks)
		err := s.ReplayAll(par, func(rank int, e *trace.Event) {
			if limit > 0 && printed[rank] >= limit {
				return
			}
			fmt.Fprintf(&bufs[rank], "  %6d: %s dur=%.0fns\n", printed[rank], e.String(), e.DurationNS)
			printed[rank]++
		})
		if err != nil {
			fail(err)
		}
	} else {
		for rank := 0; rank < m.NumRanks; rank++ {
			if err := printRank(&bufs[rank], m, false, rank, limit); err != nil {
				fail(err)
			}
		}
	}
	for rank := range bufs {
		fmt.Printf("rank %d:\n", rank)
		os.Stdout.Write(bufs[rank].Bytes())
	}
}

// commMatrix accumulates the send-volume matrix; a send to a peer outside
// [0, ranks) is an error in both paths (the trace disagrees with its own rank
// count), matching cypress.Result.CommMatrix.
func commMatrix(m *merge.Merged, stream bool, par int) ([][]int64, error) {
	n := m.NumRanks
	vol := make([][]int64, n)
	for i := range vol {
		vol[i] = make([]int64, n)
	}
	peerErrs := make([]error, n)
	acc := func(rank int, e *trace.Event) {
		if !e.Op.IsSendLike() {
			return
		}
		if e.Peer < 0 || e.Peer >= n {
			if peerErrs[rank] == nil {
				peerErrs[rank] = fmt.Errorf("rank %d %v to peer %d outside [0,%d)", rank, e.Op, e.Peer, n)
			}
			return
		}
		vol[rank][e.Peer] += int64(e.Size)
	}
	if stream {
		if err := merge.NewStreamer(m).ReplayAll(par, acc); err != nil {
			return nil, err
		}
	} else {
		for rank := 0; rank < n; rank++ {
			err := replay.Events(m.ForRank(rank), rank, func(e *trace.Event) { acc(rank, e) })
			if err != nil {
				return nil, err
			}
		}
	}
	for _, perr := range peerErrs {
		if perr != nil {
			return nil, perr
		}
	}
	return vol, nil
}

// predictRun feeds the decompressed traces to the LogGP simulator, either by
// materializing every rank (legacy) or by streaming pull cursors over shared
// skeletons prepared in parallel. par bounds both skeleton preparation and
// the simulator's worker pool; the prediction is identical at every value.
func predictRun(m *merge.Merged, stream bool, par int) (simmpi.Result, error) {
	if stream {
		s := merge.NewStreamer(m)
		if err := s.Prepare(par); err != nil {
			return simmpi.Result{}, err
		}
		srcs := make([]simmpi.EventSource, s.NumRanks())
		for rank := range srcs {
			cur, err := s.Cursor(rank)
			if err != nil {
				return simmpi.Result{}, err
			}
			srcs[rank] = cur
		}
		return simmpi.SimulateStreamPar(srcs, mpisim.DefaultParams(), par)
	}
	seqs := make([][]trace.Event, m.NumRanks)
	for r := range seqs {
		seq, err := replay.Sequence(m.ForRank(r), r)
		if err != nil {
			return simmpi.Result{}, err
		}
		seqs[r] = seq
	}
	return simmpi.SimulatePar(seqs, mpisim.DefaultParams(), par)
}

// writeTraceFile exports the flight recorder as Chrome trace-event JSON.
func writeTraceFile(rec *ftrace.Recorder, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cypressreplay: -trace:", err)
		return
	}
	defer f.Close()
	if err := rec.WriteChromeJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "cypressreplay: -trace:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "cypressreplay: flight-recorder trace: %d events (%d dropped) -> %s\n",
		rec.Total(), rec.Drops(), path)
}
