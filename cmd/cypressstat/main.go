// Command cypressstat inspects a merged CYPRESS trace: per-GID compression
// ratios, rank-group fragmentation, and stride-compression health — the
// paper's Table-3-style structural breakdown. It reads a trace file written
// by cypresstrace (raw, gzip, or CYPB block container, sniffed automatically)
// or traces a program
// in-process, in which case -stats can additionally report the live pipeline
// counters (fingerprint fast-path hits, pool reuse, stage timings).
//
// Usage:
//
//	cypressstat run.cyp                      # structural tables
//	cypressstat -json run.cyp                # same, as JSON
//	cypressstat -rank 3 run.cyp              # rank-projected decode economics
//	cypressstat -workload CG -procs 64       # trace in-process, then inspect
//	cypressstat -workload LU -procs 64 -stats  # + live pipeline counters
//	cypressstat -stats prog.mpl              # trace an MPL file in-process
//
// With a trace-file argument and -stats, only the decode-side counters are
// live (the compression happened in another process); tracing in-process
// reports the full pipeline.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	cypress "repro"
	"repro/internal/blockio"
	"repro/internal/corpus"
	"repro/internal/inspect"
	"repro/internal/merge"
	"repro/internal/npb"
	"repro/internal/obs"
	ftrace "repro/internal/obs/trace"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cypressstat:", err)
	os.Exit(1)
}

func main() {
	jsonOut := flag.Bool("json", false, "emit the analysis as JSON")
	fp := flag.Bool("fp", false, "print the structural fingerprint and content hash, then exit")
	stats := flag.Bool("stats", false, "also print the pipeline observability report")
	workload := flag.String("workload", "", "trace a built-in workload in-process instead of reading a file")
	procs := flag.Int("procs", 8, "ranks for in-process tracing")
	par := flag.Int("par", 0, "inflate workers for CYPB trace files (0 = default, <0 = inline)")
	timeline := flag.String("timeline", "", "render a flight-recorder capture (Chrome trace-event JSON from -trace) as a text timeline, then exit")
	check := flag.Bool("check", false, "with -timeline: validate the capture against the trace-event schema and require a complete (drop-free) capture")
	rankProj := flag.Int("rank", -1, "decode a trace file through the rank-projected selective path and report the projection economics, then exit")
	debugAddr := flag.String("debug.addr", "", "serve pprof/expvar/obs on this address (e.g. localhost:6060)")
	flag.Parse()

	if *timeline != "" {
		if err := renderTimeline(*timeline, *check); err != nil {
			fail(err)
		}
		return
	}

	if *rankProj >= 0 {
		if flag.NArg() != 1 || isMPL(flag.Arg(0)) {
			fmt.Fprintln(os.Stderr, "cypressstat: -rank needs a trace-file argument")
			os.Exit(2)
		}
		if err := projectionStats(flag.Arg(0), *rankProj, *par, *jsonOut); err != nil {
			fail(err)
		}
		return
	}

	sink := obs.New()
	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, sink)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "cypressstat: debug server on http://%s/debug/pprof/\n", srv.Addr)
	}

	var m *merge.Merged
	var rawCYPR []byte // exact file bytes when the input is a bare CYPR stream
	switch {
	case *workload != "":
		w := npb.Get(*workload)
		if w == nil {
			fmt.Fprintf(os.Stderr, "cypressstat: unknown workload %q (have %v)\n", *workload, npb.Names())
			os.Exit(2)
		}
		if !w.ValidProcs(*procs) {
			fmt.Fprintf(os.Stderr, "cypressstat: %s does not support %d processes\n", w.Name, *procs)
			os.Exit(2)
		}
		m = traceInProcess(w.Source(*procs, npb.Paper), *procs, sink)
	case flag.NArg() == 1 && isMPL(flag.Arg(0)):
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		m = traceInProcess(string(data), *procs, sink)
	case flag.NArg() == 1:
		m, rawCYPR = readTraceFile(flag.Arg(0), *par, sink)
	default:
		fmt.Fprintln(os.Stderr, "usage: cypressstat [flags] trace.cyp | prog.mpl  (or -workload NAME)")
		os.Exit(2)
	}

	if *fp {
		sfp, ch, err := fingerprints(m)
		if err != nil {
			fail(err)
		}
		// cypressarchive ingests bare CYPR files verbatim, so their corpus
		// address is the hash of the on-disk bytes; the (normalizing)
		// re-encoding only addresses containered inputs, which the archive
		// canonicalizes on add.
		if rawCYPR != nil {
			ch = corpus.ContentHash(rawCYPR)
		}
		if *jsonOut {
			fmt.Printf("{\"structural_fp\":%q,\"content_hash\":%q}\n",
				fmt.Sprintf("%016x", sfp), fmt.Sprintf("%016x", ch))
		} else {
			fmt.Printf("structural_fp  %016x\ncontent_hash   %016x\n", sfp, ch)
		}
		return
	}

	a := inspect.Analyze(m)
	if *jsonOut {
		if err := a.WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
	} else if err := a.WriteText(os.Stdout); err != nil {
		fail(err)
	}
	if *stats {
		r := sink.Report()
		fmt.Println()
		if *jsonOut {
			if err := r.WriteJSON(os.Stdout); err != nil {
				fail(err)
			}
		} else if err := r.WriteText(os.Stdout); err != nil {
			fail(err)
		}
	}
}

// projectionStats decodes one rank of a trace file through the selective
// path and reports the projection economics: whether the file carries a CYPI
// section index, and how many entries and payload bytes the projection
// materialized versus skipped at decode time.
func projectionStats(path string, rank, par int, jsonOut bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	payload, format, err := blockio.Unwrap(data, par)
	if err != nil {
		return err
	}
	s := obs.New()
	merge.SetObs(s)
	defer merge.SetObs(nil)
	m, err := merge.DecodeSelect(payload, merge.SelectRanks(rank))
	if err != nil {
		return err
	}
	if rank >= m.NumRanks {
		fmt.Fprintf(os.Stderr, "cypressstat: rank %d out of range [0,%d)\n", rank, m.NumRanks)
		os.Exit(2)
	}
	indexed := merge.HasSectionIndex(payload)
	eagerE := s.Value(obs.SelEntriesEager)
	skipE := s.Value(obs.SelEntriesSkipped)
	eagerB := s.Value(obs.SelBytesMaterialized)
	skipB := s.Value(obs.SelBytesSkipped)
	fellBack := s.Value(obs.SelFallbacks) > 0
	avoided := 0.0
	if eagerB+skipB > 0 {
		avoided = 100 * float64(skipB) / float64(eagerB+skipB)
	}
	if jsonOut {
		fmt.Printf("{\"rank\":%d,\"ranks\":%d,\"container\":%q,\"section_index\":%t,\"fallback_full_decode\":%t,"+
			"\"entries_materialized\":%d,\"entries_skipped\":%d,"+
			"\"payload_bytes_materialized\":%d,\"payload_bytes_skipped\":%d}\n",
			rank, m.NumRanks, format.String(), indexed, fellBack, eagerE, skipE, eagerB, skipB)
		return nil
	}
	fmt.Printf("selective decode: rank %d of %d (container %s)\n", rank, m.NumRanks, format)
	yn := "no (grammar-walk skips)"
	if indexed {
		yn = "yes"
	}
	fmt.Printf("  section index    %s\n", yn)
	if fellBack {
		fmt.Printf("  NOTE: selective path fell back to a full decode\n")
	}
	fmt.Printf("  entries          %d materialized, %d skipped\n", eagerE, skipE)
	fmt.Printf("  payload bytes    %d materialized, %d skipped (%.1f%% avoided)\n", eagerB, skipB, avoided)
	return nil
}

// renderTimeline parses a flight-recorder capture file and prints it as a
// text timeline. With check, the capture is first validated against the
// Chrome trace-event schema invariants and rejected if any events were
// dropped to ring wraparound (the CI fixture job runs this mode).
func renderTimeline(path string, check bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	c, err := ftrace.ReadChromeJSON(f)
	if err != nil {
		return err
	}
	if check {
		if err := c.Validate(true); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cypressstat: capture valid: %d events, %d categories, 0 drops\n",
			len(c.Events), len(c.Cats()))
	}
	return c.WriteText(os.Stdout)
}

// fingerprints returns the whole-tree structural fingerprint (the corpus
// dedup class key, invariant across runs with identical communication
// structure) and the content hash of the trace's canonical standalone
// encoding (its corpus address, covering the timing payload too).
func fingerprints(m *merge.Merged) (structural, content uint64, err error) {
	structural, err = cypress.StructuralFingerprint(m)
	if err != nil {
		return 0, 0, err
	}
	var buf bytes.Buffer
	if _, err := m.Encode(&buf); err != nil {
		return 0, 0, err
	}
	return structural, corpus.ContentHash(buf.Bytes()), nil
}

// isMPL reports whether path looks like MPL source rather than a trace file.
func isMPL(path string) bool {
	if len(path) > 4 && path[len(path)-4:] == ".mpl" {
		return true
	}
	return false
}

// traceInProcess compiles and traces src with the sink attached, so the
// compression-side counters (compressor intake, stride runs, merge
// fingerprint hits) are live in the -stats report.
func traceInProcess(src string, procs int, sink *obs.Sink) *merge.Merged {
	prog, err := cypress.Compile(src)
	if err != nil {
		fail(err)
	}
	res, err := prog.Trace(procs, cypress.Options{Obs: sink})
	if err != nil {
		fail(err)
	}
	return res.Merged
}

// readTraceFile decodes a trace file. The container layer — gzip member,
// CYPB block container, or bare CYPR stream — is sniffed by the decoder
// itself (blockio.Sniff), so Cypress, Cypress+Gzip, and blocked files all
// work; par configures the CYPB inflate pipeline. For bare CYPR files the
// exact on-disk bytes are returned too (they are the corpus ingest unit);
// containered inputs return nil raw bytes.
func readTraceFile(path string, par int, sink *obs.Sink) (*merge.Merged, []byte) {
	cypress.EnableObs(sink) // decode-side counters
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	m, err := merge.DecodePar(bytes.NewReader(data), par)
	if err != nil {
		fail(err)
	}
	if bytes.HasPrefix(data, []byte("CYPR")) {
		return m, data
	}
	return m, nil
}
