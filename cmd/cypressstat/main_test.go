package main

import (
	"testing"

	cypress "repro"
)

// fpFixture is a fixed multi-phase workload used to pin the structural
// fingerprint. Changing the v1 structure grammar, the CST builder, or the
// fingerprint fold changes these values — that is the point: the pins catch
// accidental format drift, since every corpus on disk keys its dedup
// classes by this fingerprint.
const fpFixture = `
func main() {
	for var k = 0; k < 12; k = k + 1 {
		if rank < size - 1 { send(rank + 1, 4096, 0); }
		if rank > 0 { recv(rank - 1, 4096, 0); }
		compute(50000);
		allreduce(8);
	}
	bcast(0, 1024);
	reduce(0, 8);
}`

// Golden whole-tree structural fingerprints for fpFixture. The values differ
// per rank count because the fingerprint covers the encoded header and the
// rank-run lists, not just the tree shape. On intentional format changes,
// update from the failure output.
func TestStructuralFingerprintGolden(t *testing.T) {
	golden := map[int]uint64{
		7:  0x9df365454969505e,
		64: 0x3710993a406889ff,
	}
	prog, err := cypress.Compile(fpFixture)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{7, 64} {
		res, err := prog.Trace(procs, cypress.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sfp, ch, err := fingerprints(res.Merged)
		if err != nil {
			t.Fatal(err)
		}
		if want := golden[procs]; sfp != want {
			t.Errorf("procs=%d: structural_fp = %016x, want %016x", procs, sfp, want)
		}

		// The content hash covers the volatile timing payload, so it is not
		// pinned across format versions here — but it must be deterministic:
		// re-tracing the identical program yields the identical address.
		res2, err := prog.Trace(procs, cypress.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sfp2, ch2, err := fingerprints(res2.Merged)
		if err != nil {
			t.Fatal(err)
		}
		if sfp2 != sfp || ch2 != ch {
			t.Errorf("procs=%d: fingerprints not deterministic: (%016x,%016x) vs (%016x,%016x)",
				procs, sfp, ch, sfp2, ch2)
		}
	}
}
