// Command cypresstrace runs an MPL program (or a built-in workload) on the
// simulated MPI runtime under CYPRESS compression and writes the merged
// compressed trace file.
//
// Usage:
//
//	cypresstrace -procs 64 -o run.cyp prog.mpl
//	cypresstrace -workload LU -procs 128 -o lu.cyp -gzip
//	cypresstrace -workload LU -procs 128 -o lu.cyp -block -par 4
//	cypresstrace -workload LU -procs 128 -o lu.cyp -index
//	cypresstrace -workload MG -procs 64            # stats only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	cypress "repro"
	"repro/internal/npb"
	"repro/internal/obs"
	ftrace "repro/internal/obs/trace"
)

func main() {
	procs := flag.Int("procs", 8, "number of simulated MPI ranks")
	out := flag.String("o", "", "output trace file (stats only if empty)")
	useGzip := flag.Bool("gzip", false, "gzip the trace file (Cypress+Gzip)")
	useBlock := flag.Bool("block", false, "write the CYPB block container (sharded deflate frames + seekable index)")
	useIndex := flag.Bool("index", false, "append the CYPI section index for rank-projected serving (composes with -gzip)")
	par := flag.Int("par", 0, "compression workers for -block (0 = GOMAXPROCS-derived default)")
	workload := flag.String("workload", "", "run a built-in workload instead of a file")
	hist := flag.Bool("hist", false, "record time histograms instead of mean/stddev")
	stats := flag.Bool("stats", false, "print the pipeline observability report to stderr at exit")
	traceFile := flag.String("trace", "", "capture a flight-recorder timeline of the run and write Chrome trace-event JSON to this file (load in Perfetto)")
	debugAddr := flag.String("debug.addr", "", "serve pprof/expvar/obs on this address (e.g. localhost:6060)")
	flag.Parse()
	if *useBlock && *useGzip {
		fmt.Fprintln(os.Stderr, "cypresstrace: -block and -gzip are mutually exclusive")
		os.Exit(2)
	}
	if *useBlock && *useIndex {
		// The CYPB footer index pins the framed payload length, which a
		// trailing sidecar would break.
		fmt.Fprintln(os.Stderr, "cypresstrace: -block and -index are mutually exclusive")
		os.Exit(2)
	}

	var rec *ftrace.Recorder
	if *traceFile != "" {
		rec = ftrace.New(0)
		cypress.EnableTrace(rec)
		defer writeTraceFile(rec, *traceFile)
	}
	var sink *obs.Sink
	if *stats || *debugAddr != "" {
		sink = obs.New()
	}
	if *debugAddr != "" {
		srv, err := obs.ServeDebugTrace(*debugAddr, sink, rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cypresstrace:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "cypresstrace: debug server on http://%s/debug/pprof/\n", srv.Addr)
	}
	if *stats {
		defer func() {
			fmt.Fprintln(os.Stderr)
			sink.Report().WriteText(os.Stderr)
		}()
	}

	var src string
	switch {
	case *workload != "":
		w := npb.Get(*workload)
		if w == nil {
			fmt.Fprintf(os.Stderr, "cypresstrace: unknown workload %q (have %v)\n", *workload, npb.Names())
			os.Exit(2)
		}
		if !w.ValidProcs(*procs) {
			fmt.Fprintf(os.Stderr, "cypresstrace: %s does not support %d processes\n", w.Name, *procs)
			os.Exit(2)
		}
		src = w.Source(*procs, npb.Paper)
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "cypresstrace:", err)
			os.Exit(1)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: cypresstrace [flags] prog.mpl  (or -workload NAME)")
		os.Exit(2)
	}

	prog, err := cypress.Compile(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cypresstrace:", err)
		os.Exit(1)
	}
	opts := cypress.Options{Obs: sink}
	if *hist {
		opts.TimeMode = cypress.TimeHistogram
	}
	res, err := prog.Trace(*procs, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cypresstrace:", err)
		os.Exit(1)
	}
	fmt.Printf("ranks=%d events=%d simulated=%.3fms rank-groups=%d\n",
		res.Merged.NumRanks, res.Merged.EventCount, res.SimulatedNS/1e6, res.Merged.GroupCount())

	var w io.Writer = io.Discard
	var f *os.File
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cypresstrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var n int64
	switch {
	case *useBlock:
		n, err = res.WriteTraceBlocked(w, *par)
	case *useIndex:
		n, err = res.WriteTraceIndexed(w, *useGzip)
	default:
		n, err = res.WriteTrace(w, *useGzip)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cypresstrace:", err)
		os.Exit(1)
	}
	where := "(discarded)"
	if *out != "" {
		where = *out
	}
	fmt.Printf("compressed trace: %d bytes -> %s (%.1f bytes/event)\n",
		n, where, float64(n)/float64(res.Merged.EventCount))
}

// writeTraceFile exports the flight recorder as Chrome trace-event JSON.
func writeTraceFile(rec *ftrace.Recorder, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cypresstrace: -trace:", err)
		return
	}
	defer f.Close()
	if err := rec.WriteChromeJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "cypresstrace: -trace:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "cypresstrace: flight-recorder trace: %d events (%d dropped) -> %s\n",
		rec.Total(), rec.Drops(), path)
}
