// Package cypress is a full reimplementation of CYPRESS (Zhai et al.,
// SC 2014): hybrid static-dynamic, top-down communication trace compression
// for message-passing programs, together with every substrate the paper's
// pipeline needs — an MPL frontend and CFG analyses standing in for
// C + LLVM, a goroutine MPI runtime standing in for the cluster, dynamic-only
// baseline compressors (ScalaTrace, ScalaTrace-2, Gzip), a sequence-
// preserving replay engine, and a LogGP trace-driven performance simulator
// standing in for SIM-MPI.
//
// The typical pipeline mirrors the paper's Figure 2:
//
//	prog, _ := cypress.Compile(src)            // static: CST extraction
//	res, _ := prog.Trace(64, cypress.Options{})// dynamic: run + compress + merge
//	seq, _ := res.Replay(3)                    // decompress rank 3
//	pred, _ := res.Predict()                   // LogGP performance prediction
package cypress

import (
	"fmt"
	"io"

	"repro/internal/cst"
	"repro/internal/ctt"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/merge"
	"repro/internal/mpisim"
	"repro/internal/npb"
	"repro/internal/replay"
	"repro/internal/simmpi"
	"repro/internal/timestat"
	"repro/internal/trace"
)

// Program is a compiled MPL program: AST, CFG-level IR, and the extracted
// communication structure tree.
type Program struct {
	Source string
	AST    *lang.Program
	IR     *ir.Program
	CST    *cst.Tree
	// Recursive lists the user functions on call-graph cycles.
	Recursive map[string]bool
}

// Compile parses, checks, lowers, and runs the static analysis module on an
// MPL source program (paper Section III).
func Compile(src string) (*Program, error) {
	ast, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("cypress: parse: %w", err)
	}
	rec, err := lang.Check(ast)
	if err != nil {
		return nil, fmt.Errorf("cypress: check: %w", err)
	}
	irProg, err := ir.Lower(ast)
	if err != nil {
		return nil, fmt.Errorf("cypress: lower: %w", err)
	}
	tree, err := cst.Build(irProg)
	if err != nil {
		return nil, fmt.Errorf("cypress: cst: %w", err)
	}
	return &Program{Source: src, AST: ast, IR: irProg, CST: tree, Recursive: rec}, nil
}

// TimeMode selects how communication times are summarized in records.
type TimeMode = timestat.Mode

// Time recording modes (paper Section IV-A supports both).
const (
	TimeMeanStddev = timestat.ModeMeanStddev
	TimeHistogram  = timestat.ModeHistogram
)

// Options configures a traced run.
type Options struct {
	// Params is the synthetic network cost model; zero value means
	// mpisim.DefaultParams().
	Params *mpisim.Params
	// TimeMode defaults to mean/stddev recording.
	TimeMode TimeMode
	// MergeWorkers bounds the parallel inter-process merge; 0 = GOMAXPROCS.
	MergeWorkers int
	// KeepRaw additionally collects the raw per-rank event streams (for
	// verification and comparison); costs memory proportional to the trace.
	KeepRaw bool
}

func (o *Options) params() mpisim.Params {
	if o.Params != nil {
		return *o.Params
	}
	return mpisim.DefaultParams()
}

// Result is a completed traced run.
type Result struct {
	// Merged is the job-wide compressed trace tree.
	Merged *merge.Merged
	// SimulatedNS is the synthetic execution time of the run itself (the
	// "measured" time for prediction experiments).
	SimulatedNS float64
	// Raw holds per-rank uncompressed event streams when Options.KeepRaw.
	Raw    [][]trace.Event
	params mpisim.Params
}

// Trace executes the program on nprocs simulated ranks under CYPRESS
// compression and merges the per-rank trees (paper Section IV).
func (p *Program) Trace(nprocs int, opts Options) (*Result, error) {
	params := opts.params()
	comps := make([]*ctt.Compressor, nprocs)
	raws := make([]*trace.CollectorSink, nprocs)
	sinks := make([]trace.Sink, nprocs)
	for i := range sinks {
		comps[i] = ctt.NewCompressor(p.CST, i, opts.TimeMode)
		if opts.KeepRaw {
			raws[i] = &trace.CollectorSink{}
			sinks[i] = teeSink{raws[i], comps[i]}
		} else {
			sinks[i] = comps[i]
		}
	}
	simNS, err := mpisim.Run(nprocs, params, sinks, func(r *mpisim.Rank) {
		interp.Execute(p.AST, r)
	})
	if err != nil {
		return nil, fmt.Errorf("cypress: run: %w", err)
	}
	ctts := make([]*ctt.RankCTT, nprocs)
	for i, c := range comps {
		ctts[i] = c.Finish()
	}
	m, err := merge.All(ctts, opts.MergeWorkers)
	if err != nil {
		return nil, fmt.Errorf("cypress: merge: %w", err)
	}
	res := &Result{Merged: m, SimulatedNS: simNS, params: params}
	if opts.KeepRaw {
		res.Raw = make([][]trace.Event, nprocs)
		for i, r := range raws {
			res.Raw[i] = r.Events
		}
	}
	return res, nil
}

// Replay decompresses one rank's exact event sequence (paper Section V).
func (r *Result) Replay(rank int) ([]trace.Event, error) {
	return replay.Sequence(r.Merged.ForRank(rank), rank)
}

// Predict decompresses every rank and runs the LogGP trace-driven simulator,
// returning the predicted job performance (paper Figure 14's pipeline).
func (r *Result) Predict() (simmpi.Result, error) {
	seqs := make([][]trace.Event, r.Merged.NumRanks)
	for rank := range seqs {
		seq, err := r.Replay(rank)
		if err != nil {
			return simmpi.Result{}, err
		}
		seqs[rank] = seq
	}
	return simmpi.Simulate(seqs, r.params)
}

// WriteTrace serializes the merged compressed trace; gzip additionally
// applies stdlib gzip (the paper's "Cypress+Gzip"). It returns the bytes
// written.
func (r *Result) WriteTrace(w io.Writer, gzip bool) (int64, error) {
	if gzip {
		return r.Merged.EncodeGzip(w)
	}
	return r.Merged.Encode(w)
}

// ReadTrace loads a merged compressed trace written by WriteTrace (without
// gzip). Replay works directly on the result via merge.Merged.ForRank.
func ReadTrace(rd io.Reader) (*merge.Merged, error) {
	return merge.Decode(rd)
}

// CommMatrix accumulates the communication volume matrix (bytes sent from
// row to column) from the decompressed trace — the analysis behind the
// paper's Figures 17 and 20.
func (r *Result) CommMatrix() ([][]int64, error) {
	n := r.Merged.NumRanks
	mat := make([][]int64, n)
	for i := range mat {
		mat[i] = make([]int64, n)
	}
	for rank := 0; rank < n; rank++ {
		seq, err := r.Replay(rank)
		if err != nil {
			return nil, err
		}
		for _, e := range seq {
			if e.Op.IsSendLike() && e.Peer >= 0 && e.Peer < n {
				mat[rank][e.Peer] += int64(e.Size)
			}
		}
	}
	return mat, nil
}

// Workload returns a named NPB/LESlie3d communication skeleton from the
// built-in registry, or nil.
func Workload(name string) *npb.Workload { return npb.Get(name) }

// Workloads lists the built-in workload names.
func Workloads() []string { return npb.Names() }

type teeSink struct {
	raw  *trace.CollectorSink
	comp *ctt.Compressor
}

func (t teeSink) LoopEnter(s int32)           { t.comp.LoopEnter(s) }
func (t teeSink) LoopIter(s int32)            { t.comp.LoopIter(s) }
func (t teeSink) BranchEnter(s int32, a int8) { t.comp.BranchEnter(s, a) }
func (t teeSink) BranchSkip(s int32)          { t.comp.BranchSkip(s) }
func (t teeSink) CallEnter(s int32)           { t.comp.CallEnter(s) }
func (t teeSink) StructExit()                 { t.comp.StructExit() }
func (t teeSink) CommSite(s int32)            { t.comp.CommSite(s) }
func (t teeSink) Event(e *trace.Event)        { t.raw.Event(e); t.comp.Event(e) }
func (t teeSink) Finalize()                   { t.comp.Finalize() }
