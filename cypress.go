// Package cypress is a full reimplementation of CYPRESS (Zhai et al.,
// SC 2014): hybrid static-dynamic, top-down communication trace compression
// for message-passing programs, together with every substrate the paper's
// pipeline needs — an MPL frontend and CFG analyses standing in for
// C + LLVM, a goroutine MPI runtime standing in for the cluster, dynamic-only
// baseline compressors (ScalaTrace, ScalaTrace-2, Gzip), a sequence-
// preserving replay engine, and a LogGP trace-driven performance simulator
// standing in for SIM-MPI.
//
// The typical pipeline mirrors the paper's Figure 2:
//
//	prog, _ := cypress.Compile(src)            // static: CST extraction
//	res, _ := prog.Trace(64, cypress.Options{})// dynamic: run + compress + merge
//	seq, _ := res.Replay(3)                    // decompress rank 3
//	pred, _ := res.Predict()                   // LogGP performance prediction
package cypress

import (
	"bytes"
	"fmt"
	"io"
	"sync"

	"repro/internal/blockio"
	"repro/internal/corpus"
	"repro/internal/cst"
	"repro/internal/ctt"
	"repro/internal/encpool"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/merge"
	"repro/internal/mpisim"
	"repro/internal/npb"
	"repro/internal/obs"
	ftrace "repro/internal/obs/trace"
	"repro/internal/replay"
	"repro/internal/simmpi"
	"repro/internal/timestat"
	"repro/internal/trace"
)

// Program is a compiled MPL program: AST, CFG-level IR, and the extracted
// communication structure tree.
type Program struct {
	Source string
	AST    *lang.Program
	IR     *ir.Program
	CST    *cst.Tree
	// Recursive lists the user functions on call-graph cycles.
	Recursive map[string]bool
}

// Compile parses, checks, lowers, and runs the static analysis module on an
// MPL source program (paper Section III).
func Compile(src string) (*Program, error) {
	ast, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("cypress: parse: %w", err)
	}
	rec, err := lang.Check(ast)
	if err != nil {
		return nil, fmt.Errorf("cypress: check: %w", err)
	}
	irProg, err := ir.Lower(ast)
	if err != nil {
		return nil, fmt.Errorf("cypress: lower: %w", err)
	}
	tree, err := cst.Build(irProg)
	if err != nil {
		return nil, fmt.Errorf("cypress: cst: %w", err)
	}
	return &Program{Source: src, AST: ast, IR: irProg, CST: tree, Recursive: rec}, nil
}

// TimeMode selects how communication times are summarized in records.
type TimeMode = timestat.Mode

// Time recording modes (paper Section IV-A supports both).
const (
	TimeMeanStddev = timestat.ModeMeanStddev
	TimeHistogram  = timestat.ModeHistogram
)

// Options configures a traced run.
type Options struct {
	// Params is the synthetic network cost model; zero value means
	// mpisim.DefaultParams().
	Params *mpisim.Params
	// TimeMode defaults to mean/stddev recording.
	TimeMode TimeMode
	// MergeWorkers bounds the parallel inter-process merge; 0 = GOMAXPROCS.
	MergeWorkers int
	// KeepRaw additionally collects the raw per-rank event streams (for
	// verification and comparison); costs memory proportional to the trace.
	KeepRaw bool
	// Obs, when non-nil, collects pipeline metrics for this run: it is
	// attached to every per-rank compressor and installed as the process-wide
	// sink of the merge/replay/simulation/pool layers (see EnableObs). A nil
	// sink keeps every hot path on its allocation-free disabled fast path.
	Obs *obs.Sink
}

func (o *Options) params() mpisim.Params {
	if o.Params != nil {
		return *o.Params
	}
	return mpisim.DefaultParams()
}

// Result is a completed traced run.
type Result struct {
	// Merged is the job-wide compressed trace tree.
	Merged *merge.Merged
	// SimulatedNS is the synthetic execution time of the run itself (the
	// "measured" time for prediction experiments).
	SimulatedNS float64
	// Raw holds per-rank uncompressed event streams when Options.KeepRaw.
	Raw    [][]trace.Event
	params mpisim.Params

	streamOnce sync.Once
	stream     *merge.Streamer
	// streamFn, when set, supplies the streamer instead of building a fresh
	// one — corpus-served results share the cached trace's memoized streamer.
	streamFn func() *merge.Streamer
}

// Streamer returns the lazily-built streaming replayer over the merged tree.
// It is shared by Replay, Predict, and CommMatrix, so selection classes and
// replay skeletons are discovered once and reused across every consumer.
func (r *Result) Streamer() *merge.Streamer {
	r.streamOnce.Do(func() {
		if r.streamFn != nil {
			r.stream = r.streamFn()
			return
		}
		r.stream = merge.NewStreamer(r.Merged)
	})
	return r.stream
}

// Trace executes the program on nprocs simulated ranks under CYPRESS
// compression and merges the per-rank trees (paper Section IV).
func (p *Program) Trace(nprocs int, opts Options) (*Result, error) {
	if opts.Obs != nil {
		EnableObs(opts.Obs)
	}
	params := opts.params()
	comps := make([]*ctt.Compressor, nprocs)
	raws := make([]*trace.CollectorSink, nprocs)
	sinks := make([]trace.Sink, nprocs)
	for i := range sinks {
		comps[i] = ctt.NewCompressor(p.CST, i, opts.TimeMode)
		comps[i].SetObs(opts.Obs)
		if opts.KeepRaw {
			raws[i] = &trace.CollectorSink{}
			sinks[i] = teeSink{raws[i], comps[i]}
		} else {
			sinks[i] = comps[i]
		}
	}
	csp := opts.Obs.Start(obs.StageCompress)
	simNS, err := mpisim.Run(nprocs, params, sinks, func(r *mpisim.Rank) {
		interp.Execute(p.AST, r)
	})
	csp.End()
	if err != nil {
		return nil, fmt.Errorf("cypress: run: %w", err)
	}
	ctts := make([]*ctt.RankCTT, nprocs)
	for i, c := range comps {
		ctts[i] = c.Finish()
	}
	m, err := merge.All(ctts, opts.MergeWorkers)
	if err != nil {
		return nil, fmt.Errorf("cypress: merge: %w", err)
	}
	res := &Result{Merged: m, SimulatedNS: simNS, params: params}
	if opts.KeepRaw {
		res.Raw = make([][]trace.Event, nprocs)
		for i, r := range raws {
			res.Raw[i] = r.Events
		}
	}
	return res, nil
}

// Replay decompresses one rank's exact event sequence (paper Section V). It
// runs through the streaming replayer: the first rank of a selection class
// pays one tree walk, every later rank of the class is a flat skeleton scan.
// The sequence is byte-identical to replay.Sequence over Merged.ForRank.
func (r *Result) Replay(rank int) ([]trace.Event, error) {
	var out []trace.Event
	err := r.Streamer().Replay(rank, func(e *trace.Event) {
		out = append(out, *e)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReplayEvents streams rank's event sequence into emit without materializing
// it. The event pointer is only valid during the callback.
func (r *Result) ReplayEvents(rank int, emit func(e *trace.Event)) error {
	return r.Streamer().Replay(rank, emit)
}

// Predict decompresses every rank and runs the LogGP trace-driven simulator,
// returning the predicted job performance (paper Figure 14's pipeline). It is
// PredictPar with the default worker count (GOMAXPROCS); the result does not
// depend on the worker count.
func (r *Result) Predict() (simmpi.Result, error) {
	return r.PredictPar(0)
}

// PredictPar is Predict with an explicit worker bound covering both parallel
// phases (workers <= 0 uses GOMAXPROCS): skeleton preparation and the
// epoch-parallel LogGP simulation itself. Rank sequences are fed to the
// simulator as pull iterators over shared replay skeletons, so peak memory is
// O(classes · events-per-rank) instead of O(ranks · events-per-rank), and the
// simulator advances ranks concurrently inside conservative lookahead
// windows. The result is bit-identical at every worker count and identical
// to simulating materialized sequences.
func (r *Result) PredictPar(workers int) (simmpi.Result, error) {
	s := r.Streamer()
	if err := s.Prepare(workers); err != nil {
		return simmpi.Result{}, err
	}
	srcs := make([]simmpi.EventSource, s.NumRanks())
	for rank := range srcs {
		cur, err := s.Cursor(rank)
		if err != nil {
			return simmpi.Result{}, err
		}
		srcs[rank] = cur
	}
	return simmpi.SimulateStreamPar(srcs, r.params, workers)
}

// PredictMaterialized is the pre-streaming reference implementation of
// Predict: decompress every rank into a full []trace.Event, then simulate.
// Kept for verification and benchmarking against the streaming path; both
// must produce identical results.
func (r *Result) PredictMaterialized() (simmpi.Result, error) {
	seqs := make([][]trace.Event, r.Merged.NumRanks)
	for rank := range seqs {
		seq, err := replay.Sequence(r.Merged.ForRank(rank), rank)
		if err != nil {
			return simmpi.Result{}, err
		}
		seqs[rank] = seq
	}
	return simmpi.Simulate(seqs, r.params)
}

// WriteTrace serializes the merged compressed trace; gzip additionally
// applies stdlib gzip (the paper's "Cypress+Gzip"). It returns the bytes
// written.
func (r *Result) WriteTrace(w io.Writer, gzip bool) (int64, error) {
	if gzip {
		return r.Merged.EncodeGzip(w)
	}
	return r.Merged.Encode(w)
}

// WriteTraceIndexed serializes the merged compressed trace with the CYPI
// section index appended after the standard v1 body (gzip-wrapped when gzip
// is set). The body bytes are identical to WriteTrace's output and every
// existing reader decodes them unchanged; indexed files additionally let
// ReadTraceProjected skip unselected ranks' payload sections in O(1).
func (r *Result) WriteTraceIndexed(w io.Writer, gzip bool) (int64, error) {
	if gzip {
		return r.Merged.EncodeIndexedGzip(w)
	}
	return r.Merged.EncodeIndexed(w)
}

// WriteTraceBlocked serializes the merged compressed trace inside the CYPB
// block container: sharded deflate frames compressed by a pool of workers
// (workers <= 0 picks a default from GOMAXPROCS) with a seekable frame index
// in the footer. The emitted bytes are identical at every worker count.
// ReadTrace and ReadTracePar load it transparently.
func (r *Result) WriteTraceBlocked(w io.Writer, workers int) (int64, error) {
	return r.Merged.EncodeBlocked(w, workers)
}

// ReadTrace loads a merged compressed trace written by WriteTrace or
// WriteTraceBlocked — the container layer (gzip, CYPB, or none) is sniffed
// from the leading magic. Replay works directly on the result via
// merge.Merged.ForRank.
func ReadTrace(rd io.Reader) (*merge.Merged, error) {
	return merge.Decode(rd)
}

// ReadTracePar is ReadTrace with an explicit inflate worker count for CYPB
// containers: workers < 0 inflates inline, 0 picks a default, >= 1 pipelines
// that many inflate workers behind the parser. The worker count never changes
// the decoded trace; other formats ignore it.
func ReadTracePar(rd io.Reader, workers int) (*merge.Merged, error) {
	return merge.DecodePar(rd, workers)
}

// ReadTraceProjected loads a trace held in memory (any container ReadTrace
// accepts) with a rank projection pushed into the decoder: only the listed
// ranks' timing payloads are materialized, the rest resolve lazily on first
// touch. Single-rank serving cost then scales with what the query touches,
// not with trace size; files written by WriteTraceIndexed skip unselected
// sections by index, others by a grammar walk. The returned tree retains the
// payload bytes, so the caller must not modify data afterwards.
func ReadTraceProjected(data []byte, workers int, ranks ...int) (*merge.Merged, error) {
	return merge.DecodeSelectAuto(data, merge.SelectRanks(ranks...), workers)
}

// CommMatrix accumulates the communication volume matrix (bytes sent from
// row to column) from the decompressed trace — the analysis behind the
// paper's Figures 17 and 20. It is CommMatrixPar with the default worker
// count. A send event whose peer lies outside [0, ranks) is an error, not a
// silently dropped sample: replayed sends always carry a concrete peer, so an
// out-of-range peer means the trace and the rank count disagree.
func (r *Result) CommMatrix() ([][]int64, error) {
	return r.CommMatrixPar(0)
}

// CommMatrixPar is CommMatrix with an explicit worker bound (workers <= 0
// uses GOMAXPROCS). Ranks are replayed concurrently, each accumulating into
// its own matrix row in-flight — nothing is materialized and no locking is
// needed, because events of one rank arrive in order on a single goroutine.
func (r *Result) CommMatrixPar(workers int) ([][]int64, error) {
	s := r.Streamer()
	n := s.NumRanks()
	mat := make([][]int64, n)
	for i := range mat {
		mat[i] = make([]int64, n)
	}
	peerErrs := make([]error, n) // one slot per rank: written only by its lane
	err := s.ReplayAll(workers, func(rank int, e *trace.Event) {
		if !e.Op.IsSendLike() {
			return
		}
		if e.Peer < 0 || e.Peer >= n {
			if peerErrs[rank] == nil {
				peerErrs[rank] = commPeerError(rank, e, n)
			}
			return
		}
		mat[rank][e.Peer] += int64(e.Size)
	})
	if err != nil {
		return nil, err
	}
	for _, perr := range peerErrs {
		if perr != nil {
			return nil, perr
		}
	}
	return mat, nil
}

// CommMatrixMaterialized is the pre-streaming reference implementation:
// serial, one fully materialized sequence per rank. Kept for verification and
// benchmarking against the streaming path; it applies the same out-of-range
// peer check, and both must produce identical matrices.
func (r *Result) CommMatrixMaterialized() ([][]int64, error) {
	n := r.Merged.NumRanks
	mat := make([][]int64, n)
	for i := range mat {
		mat[i] = make([]int64, n)
	}
	for rank := 0; rank < n; rank++ {
		seq, err := replay.Sequence(r.Merged.ForRank(rank), rank)
		if err != nil {
			return nil, err
		}
		for i := range seq {
			e := &seq[i]
			if !e.Op.IsSendLike() {
				continue
			}
			if e.Peer < 0 || e.Peer >= n {
				return nil, commPeerError(rank, e, n)
			}
			mat[rank][e.Peer] += int64(e.Size)
		}
	}
	return mat, nil
}

func commPeerError(rank int, e *trace.Event, n int) error {
	return fmt.Errorf("cypress: comm matrix: rank %d %v at gid %d to peer %d outside [0,%d)",
		rank, e.Op, e.GID, e.Peer, n)
}

// EnableObs installs s as the process-wide metrics sink of every pipeline
// layer that is not owned by a single run: the inter-process merge and its
// codec/streamer, the replay engine, the LogGP simulator, and the encode
// pools. Per-run compressors are attached via Options.Obs (Trace calls
// EnableObs automatically when Options.Obs is set). Passing nil disables
// observation everywhere. Call at startup — the sinks are plain package
// variables, read by the pipeline without synchronization.
func EnableObs(s *obs.Sink) {
	merge.SetObs(s)
	replay.SetObs(s)
	simmpi.SetObs(s)
	encpool.SetObs(s)
	blockio.SetObs(s)
	corpus.SetObs(s)
}

// EnableTrace installs r as the process-wide flight recorder of every
// pipeline layer: compressor finishes and wildcard resolutions, merge pairs,
// codec encode/decode, blockio frame workers, corpus ingest/get, replay
// skeleton/memo events, and simulator windows. Passing nil disables
// recording everywhere. Call at startup, before the pipeline runs — the
// recorders are plain package variables, read without synchronization. Export
// the capture afterwards with r.WriteChromeJSON (Perfetto) or r.WriteText.
func EnableTrace(r *ftrace.Recorder) {
	ctt.SetTrace(r)
	merge.SetTrace(r)
	simmpi.SetTrace(r)
	blockio.SetTrace(r)
	corpus.SetTrace(r)
}

// TraceID is the content address of a trace in a corpus: a fingerprint of
// its exact standalone v1 encoding.
type TraceID = uint64

// CorpusOptions configures an opened trace corpus.
type CorpusOptions struct {
	// CacheBytes bounds the decoded-trace serving cache (0 = 64 MiB,
	// negative disables caching).
	CacheBytes int64
	// Workers bounds the CYPB frame codecs of class and segment containers.
	Workers int
}

// Corpus is a content-addressed store of merged traces with structural
// dedup across runs and a warm decoded-trace serving cache. See
// internal/corpus for the storage format and the byte-identity argument.
type Corpus struct {
	store *corpus.Store
}

// OpenCorpus opens (creating if needed) a corpus directory.
func OpenCorpus(dir string, opts CorpusOptions) (*Corpus, error) {
	st, err := corpus.Open(dir, corpus.Options{CacheBytes: opts.CacheBytes, Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	return &Corpus{store: st}, nil
}

// Ingest adds a traced run's merged tree to the corpus and returns its
// content address. Runs that share their communication structure with an
// earlier ingest store only a payload delta.
func (c *Corpus) Ingest(r *Result) (TraceID, error) { return c.store.Ingest(r.Merged) }

// IngestBytes adds a trace given its standalone v1 encoding (as written by
// WriteTrace without gzip). Get reproduces these bytes exactly.
func (c *Corpus) IngestBytes(enc []byte) (TraceID, error) { return c.store.IngestBytes(enc) }

// GetBytes reconstructs the standalone v1 encoding of a stored trace,
// byte-identical to what was ingested.
func (c *Corpus) GetBytes(id TraceID) ([]byte, error) { return c.store.GetBytes(id) }

// Get returns the decoded trace as a Result ready for Replay, Predict, and
// CommMatrix, plus a release handle pinning it in the serving cache. Warm
// gets skip decode entirely and share one memoized streamer, so repeated
// analyses of a hot trace pay no decompression. The Result's prediction
// parameters are mpisim.DefaultParams(); callers needing others should
// simulate through the lower-level APIs. Call release exactly once when
// done with the Result.
func (c *Corpus) Get(id TraceID) (r *Result, release func(), err error) {
	tr, err := c.store.Get(id)
	if err != nil {
		return nil, nil, err
	}
	res := &Result{Merged: tr.Merged, params: mpisim.DefaultParams(), streamFn: tr.Streamer}
	return res, tr.Release, nil
}

// GetProjected is Get with a rank projection pushed into the decode: on a
// cache miss only the listed ranks' timing payloads are materialized, and the
// remainder fill lazily on first touch (see corpus.Store.GetProjected). The
// projected tree shares the same serving-cache residency as Get's — warm
// gets of either kind hit it — so projection changes decode cost, never
// correctness or cache behavior.
func (c *Corpus) GetProjected(id TraceID, ranks ...int) (r *Result, release func(), err error) {
	tr, err := c.store.GetProjected(id, ranks)
	if err != nil {
		return nil, nil, err
	}
	res := &Result{Merged: tr.Merged, params: mpisim.DefaultParams(), streamFn: tr.Streamer}
	return res, tr.Release, nil
}

// Stats reports corpus totals (classes, runs, bytes, cache residency).
func (c *Corpus) Stats() (corpus.Stats, error) { return c.store.Stats() }

// Hashes lists the content addresses of every stored trace, ascending.
func (c *Corpus) Hashes() []TraceID { return c.store.Hashes() }

// Delete tombstones a stored trace; GC reclaims its bytes.
func (c *Corpus) Delete(id TraceID) error { return c.store.Delete(id) }

// GC compacts the corpus: tombstoned runs and unreferenced structural
// classes are dropped, live runs are rewritten into one fresh segment.
func (c *Corpus) GC() error { return c.store.GC() }

// Close seals the corpus's active log into a compressed segment and closes
// it. Results obtained from Get stay usable.
func (c *Corpus) Close() error { return c.store.Close() }

// StructuralFingerprint returns the whole-tree structural class key of a
// merged trace: the fold over its encoded header and every per-vertex
// structure section, ignoring all volatile timing payload. Two traces with
// equal fingerprints dedup into one corpus class.
func StructuralFingerprint(m *merge.Merged) (uint64, error) {
	var buf bytes.Buffer
	if _, err := m.Encode(&buf); err != nil {
		return 0, err
	}
	sp, err := merge.SplitEncoded(buf.Bytes())
	if err != nil {
		return 0, err
	}
	return sp.ClassKey(), nil
}

// Workload returns a named NPB/LESlie3d communication skeleton from the
// built-in registry, or nil.
func Workload(name string) *npb.Workload { return npb.Get(name) }

// Workloads lists the built-in workload names.
func Workloads() []string { return npb.Names() }

type teeSink struct {
	raw  *trace.CollectorSink
	comp *ctt.Compressor
}

func (t teeSink) LoopEnter(s int32)           { t.comp.LoopEnter(s) }
func (t teeSink) LoopIter(s int32)            { t.comp.LoopIter(s) }
func (t teeSink) BranchEnter(s int32, a int8) { t.comp.BranchEnter(s, a) }
func (t teeSink) BranchSkip(s int32)          { t.comp.BranchSkip(s) }
func (t teeSink) CallEnter(s int32)           { t.comp.CallEnter(s) }
func (t teeSink) StructExit()                 { t.comp.StructExit() }
func (t teeSink) CommSite(s int32)            { t.comp.CommSite(s) }
func (t teeSink) Event(e *trace.Event)        { t.raw.Event(e); t.comp.Event(e) }
func (t teeSink) Finalize()                   { t.comp.Finalize() }
