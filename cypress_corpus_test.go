package cypress

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/mpisim"
	"repro/internal/obs"
)

// TestCorpusFacade exercises the top-level corpus API end to end: ingest of
// traced runs, structural dedup across runs, byte-identical reconstruction,
// warm cache sharing (including the memoized streamer), and obs visibility.
func TestCorpusFacade(t *testing.T) {
	s := obs.New()
	EnableObs(s)
	defer EnableObs(nil)

	p, err := Compile(jacobi)
	if err != nil {
		t.Fatal(err)
	}
	// Two runs of the same program with shifted network constants: same
	// structure, different timing payload.
	var results []*Result
	var encs [][]byte
	for run := 0; run < 2; run++ {
		params := mpisim.DefaultParams()
		params.NoiseFrac = 0
		params.LatencyNS += float64(3 * run)
		res, err := p.Trace(7, Options{Params: &params})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := res.WriteTrace(&buf, false); err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
		encs = append(encs, buf.Bytes())
	}

	fp0, err := StructuralFingerprint(results[0].Merged)
	if err != nil {
		t.Fatal(err)
	}
	fp1, err := StructuralFingerprint(results[1].Merged)
	if err != nil {
		t.Fatal(err)
	}
	if fp0 != fp1 {
		t.Fatalf("structural fingerprints differ across same-workload runs: %016x vs %016x", fp0, fp1)
	}

	c, err := OpenCorpus(t.TempDir(), CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var ids []TraceID
	for i, res := range results {
		id, err := c.Ingest(res)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.GetBytes(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, encs[i]) {
			t.Fatalf("run %d: GetBytes differs from standalone encoding", i)
		}
		ids = append(ids, id)
	}
	if ids[0] == ids[1] {
		t.Fatal("distinct runs collided on content address")
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Classes != 1 || st.Runs != 2 || st.DeltaRuns != 2 {
		t.Fatalf("stats = %+v, want 1 class / 2 runs / 2 delta runs", st)
	}
	if got := c.Hashes(); len(got) != 2 {
		t.Fatalf("Hashes() = %v, want 2 ids", got)
	}

	// First Get decodes (miss); the Result must replay identically to a
	// decode of the standalone encoding (the codec normalizes derived
	// stddev fields, so the in-memory pre-encode tree is not the baseline).
	r0, release0, err := c.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	m0, err := ReadTrace(bytes.NewReader(encs[0]))
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&Result{Merged: m0, params: mpisim.DefaultParams()}).Replay(3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r0.Replay(3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("corpus-served replay differs from original run")
	}

	// Second Get is warm: it must share the same decoded tree and the same
	// memoized streamer as the first.
	r1, release1, err := c.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if r0.Merged != r1.Merged {
		t.Fatal("warm Get did not share the cached decode")
	}
	if r0.Streamer() != r1.Streamer() {
		t.Fatal("corpus-served results do not share the memoized streamer")
	}
	if _, err := r1.Predict(); err != nil {
		t.Fatal(err)
	}
	release1()
	release0()

	if s.Value(obs.CorpusIngests) != 2 || s.Value(obs.CorpusDeltaRuns) != 2 {
		t.Errorf("corpus counters: ingests=%d delta=%d, want 2/2",
			s.Value(obs.CorpusIngests), s.Value(obs.CorpusDeltaRuns))
	}
	if s.Value(obs.CorpusCacheHits) != 1 || s.Value(obs.CorpusCacheMisses) != 1 {
		t.Errorf("cache counters: hits=%d misses=%d, want 1/1",
			s.Value(obs.CorpusCacheHits), s.Value(obs.CorpusCacheMisses))
	}
}
