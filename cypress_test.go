package cypress

import (
	"bytes"
	"reflect"
	"regexp"
	"testing"

	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/trace"
)

// TestObsPipelineWiring runs the full pipeline with a sink attached and
// checks every stage reported in: compressor intake, stride aggregation,
// merge reduction, encode/decode, streaming replay, and simulation.
func TestObsPipelineWiring(t *testing.T) {
	s := obs.New()
	defer EnableObs(nil) // restore the disabled state for other tests

	p, err := Compile(jacobi)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Trace(7, Options{Obs: s})
	if err != nil {
		t.Fatal(err)
	}
	if s.Value(obs.CompEvents) == 0 || s.Value(obs.CompMergeHits) == 0 {
		t.Errorf("compressor counters empty: events=%d hits=%d",
			s.Value(obs.CompEvents), s.Value(obs.CompMergeHits))
	}
	if s.Value(obs.StrideValues) == 0 || s.Value(obs.StrideRuns) == 0 {
		t.Errorf("stride counters empty: values=%d runs=%d",
			s.Value(obs.StrideValues), s.Value(obs.StrideRuns))
	}
	if got := s.Value(obs.MergePairs); got != 6 {
		t.Errorf("merge_pairs = %d, want 6 (7-leaf reduction)", got)
	}
	if _, err := res.Predict(); err != nil {
		t.Fatal(err)
	}
	if s.Value(obs.ReplaySkeletonBuilds) == 0 || s.Value(obs.ReplayEventsEmitted) == 0 {
		t.Errorf("replay counters empty: builds=%d emitted=%d",
			s.Value(obs.ReplaySkeletonBuilds), s.Value(obs.ReplayEventsEmitted))
	}
	if s.Value(obs.SimEventsProcessed) == 0 {
		t.Error("sim_events_processed empty after Predict")
	}
	var buf bytes.Buffer
	if _, err := res.WriteTrace(&buf, false); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if s.Value(obs.EncTraces) != 1 || s.Value(obs.DecTraces) != 1 ||
		s.Value(obs.EncBytesRaw) == 0 || s.Value(obs.DecRecords) == 0 {
		t.Errorf("codec counters wrong: enc=%d dec=%d raw=%d recs=%d",
			s.Value(obs.EncTraces), s.Value(obs.DecTraces),
			s.Value(obs.EncBytesRaw), s.Value(obs.DecRecords))
	}
	if s.Value(obs.PoolBufioGets) == 0 {
		t.Error("pool counters empty after encode")
	}
	r := s.Report()
	if len(r.Stages) == 0 || len(r.Counters) == 0 {
		t.Errorf("report empty: %+v", r)
	}
}

const jacobi = `
func main() {
	for var k = 0; k < 10; k = k + 1 {
		if rank < size - 1 { send(rank + 1, 8000, 0); }
		if rank > 0 { recv(rank - 1, 8000, 0); }
		if rank > 0 { send(rank - 1, 8000, 0); }
		if rank < size - 1 { recv(rank + 1, 8000, 0); }
		compute(100000);
	}
	reduce(0, 8);
}`

func TestCompileSurfaceErrors(t *testing.T) {
	if _, err := Compile("func main( {"); err == nil {
		t.Fatal("parse error not surfaced")
	}
	if _, err := Compile("func f() { }"); err == nil {
		t.Fatal("check error not surfaced")
	}
	p, err := Compile(jacobi)
	if err != nil {
		t.Fatal(err)
	}
	if p.CST.NumVertices() < 5 {
		t.Fatalf("CST too small: %d vertices", p.CST.NumVertices())
	}
	if len(p.Recursive) != 0 {
		t.Fatal("jacobi is not recursive")
	}
}

func TestTraceReplayPredictPipeline(t *testing.T) {
	p, err := Compile(jacobi)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Trace(8, Options{KeepRaw: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedNS <= 0 {
		t.Fatal("no simulated time")
	}
	for rank := 0; rank < 8; rank++ {
		seq, err := res.Replay(rank)
		if err != nil {
			t.Fatal(err)
		}
		if err := replay.Equivalent(res.Raw[rank], seq); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	pred, err := res.Predict()
	if err != nil {
		t.Fatal(err)
	}
	ratio := pred.TotalNS / res.SimulatedNS
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("prediction off by %.2fx", ratio)
	}
}

func TestWriteReadTrace(t *testing.T) {
	p, err := Compile(jacobi)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Trace(4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := res.WriteTrace(&buf, false)
	if err != nil || n != int64(buf.Len()) {
		t.Fatalf("write: %v (%d vs %d)", err, n, buf.Len())
	}
	m, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRanks != 4 {
		t.Fatalf("NumRanks = %d", m.NumRanks)
	}
	var gz bytes.Buffer
	zn, err := res.WriteTrace(&gz, true)
	if err != nil || zn <= 0 {
		t.Fatalf("gzip write: %v (%d)", err, zn)
	}
}

func TestCommMatrix(t *testing.T) {
	p, err := Compile(jacobi)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Trace(4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mat, err := res.CommMatrix()
	if err != nil {
		t.Fatal(err)
	}
	// Nearest-neighbor stencil: rank 1 talks to 0 and 2, 10 iterations of
	// 8000 bytes each way.
	if mat[1][0] != 80000 || mat[1][2] != 80000 {
		t.Fatalf("matrix row 1 = %v", mat[1])
	}
	if mat[0][2] != 0 || mat[0][3] != 0 {
		t.Fatalf("non-neighbors communicated: %v", mat[0])
	}
}

func TestWorkloadRegistryExposed(t *testing.T) {
	if Workload("CG") == nil || len(Workloads()) != 9 {
		t.Fatal("workload registry not exposed")
	}
	w := Workload("CG")
	src := w.Source(8, 0)
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("CG compile: %v", err)
	}
	res, err := p.Trace(8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged.EventCount == 0 {
		t.Fatal("no events traced")
	}
}

func TestHistogramTimeMode(t *testing.T) {
	p, err := Compile(jacobi)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Trace(4, Options{TimeMode: TimeHistogram}); err != nil {
		t.Fatal(err)
	}
}

// ringExchange is a simulatable wraparound exchange with three selection
// classes (interior ranks plus the two wraparound edges), used to check the
// streaming pipeline against the materializing reference implementations.
const ringExchange = `
func main() {
	for var k = 0; k < 6; k = k + 1 {
		isend((rank + 1) % size, 4096, 1);
		irecv((rank + size - 1) % size, 4096, 1);
		waitall();
		compute(20000);
	}
	allreduce(8);
}`

// TestStreamingMatchesMaterialized pins the tentpole guarantee end to end:
// the streaming Replay/Predict/CommMatrix paths produce exactly what the
// pre-streaming materializing implementations produce, at 7 and 64 ranks,
// for both the open-chain jacobi and the wraparound ring.
func TestStreamingMatchesMaterialized(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		n    int
	}{
		{"jacobi7", jacobi, 7},
		{"jacobi64", jacobi, 64},
		{"ring7", ringExchange, 7},
		{"ring64", ringExchange, 64},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Compile(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Trace(tc.n, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for rank := 0; rank < tc.n; rank++ {
				want, err := replay.Sequence(res.Merged.ForRank(rank), rank)
				if err != nil {
					t.Fatal(err)
				}
				got, err := res.Replay(rank)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("rank %d: streaming Replay differs from rankView sequence", rank)
				}
				streamed := 0
				if err := res.ReplayEvents(rank, func(*trace.Event) { streamed++ }); err != nil {
					t.Fatal(err)
				}
				if streamed != len(want) {
					t.Fatalf("rank %d: ReplayEvents emitted %d events, want %d", rank, streamed, len(want))
				}
			}
			wantPred, err := res.PredictMaterialized()
			if err != nil {
				t.Fatal(err)
			}
			gotPred, err := res.Predict()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wantPred, gotPred) {
				t.Fatalf("streaming Predict differs from materialized:\n got %+v\nwant %+v", gotPred, wantPred)
			}
			for _, workers := range []int{1, 2, 4, 0} {
				parPred, err := res.PredictPar(workers)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(wantPred, parPred) {
					t.Fatalf("PredictPar(%d) differs from materialized:\n got %+v\nwant %+v",
						workers, parPred, wantPred)
				}
			}
			wantMat, err := res.CommMatrixMaterialized()
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4, 0} {
				gotMat, err := res.CommMatrixPar(workers)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(wantMat, gotMat) {
					t.Fatalf("workers=%d: streaming CommMatrix differs from materialized", workers)
				}
			}
		})
	}
}

// TestCommMatrixBadPeerSurfaced pins the chosen behavior for send events
// whose replayed peer lies outside [0, ranks): both the streaming and the
// materialized matrix return an error instead of silently dropping the
// volume (the pre-fix implementation skipped such events, understating the
// matrix whenever the trace and the rank count disagreed).
func TestCommMatrixBadPeerSurfaced(t *testing.T) {
	p, err := Compile(ringExchange)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Trace(4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Forge a trace/rank-count disagreement: with NumRanks lowered, rank 2's
	// send to rank 3 replays to a peer outside [0,3). The error must name the
	// offending rank, the comm leaf's GID, and the peer value, so a trace/job
	// mismatch is diagnosable without re-running under a debugger.
	res.Merged.NumRanks = 3
	wantErr := regexp.MustCompile(`rank 2 \S+ at gid \d+ to peer 3 outside \[0,3\)`)
	if _, err := res.CommMatrix(); err == nil {
		t.Error("streaming CommMatrix: out-of-range peer not surfaced")
	} else if !wantErr.MatchString(err.Error()) {
		t.Errorf("streaming CommMatrix error %q does not match %v", err, wantErr)
	}
	if _, err := res.CommMatrixMaterialized(); err == nil {
		t.Error("materialized CommMatrix: out-of-range peer not surfaced")
	} else if !wantErr.MatchString(err.Error()) {
		t.Errorf("materialized CommMatrix error %q does not match %v", err, wantErr)
	}
	// An intact trace still computes (and the two paths agree: covered by
	// TestStreamingMatchesMaterialized).
	res2, err := p.Trace(4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res2.CommMatrix(); err != nil {
		t.Errorf("intact trace: unexpected error %v", err)
	}
}
