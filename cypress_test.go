package cypress

import (
	"bytes"
	"testing"

	"repro/internal/replay"
)

const jacobi = `
func main() {
	for var k = 0; k < 10; k = k + 1 {
		if rank < size - 1 { send(rank + 1, 8000, 0); }
		if rank > 0 { recv(rank - 1, 8000, 0); }
		if rank > 0 { send(rank - 1, 8000, 0); }
		if rank < size - 1 { recv(rank + 1, 8000, 0); }
		compute(100000);
	}
	reduce(0, 8);
}`

func TestCompileSurfaceErrors(t *testing.T) {
	if _, err := Compile("func main( {"); err == nil {
		t.Fatal("parse error not surfaced")
	}
	if _, err := Compile("func f() { }"); err == nil {
		t.Fatal("check error not surfaced")
	}
	p, err := Compile(jacobi)
	if err != nil {
		t.Fatal(err)
	}
	if p.CST.NumVertices() < 5 {
		t.Fatalf("CST too small: %d vertices", p.CST.NumVertices())
	}
	if len(p.Recursive) != 0 {
		t.Fatal("jacobi is not recursive")
	}
}

func TestTraceReplayPredictPipeline(t *testing.T) {
	p, err := Compile(jacobi)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Trace(8, Options{KeepRaw: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedNS <= 0 {
		t.Fatal("no simulated time")
	}
	for rank := 0; rank < 8; rank++ {
		seq, err := res.Replay(rank)
		if err != nil {
			t.Fatal(err)
		}
		if err := replay.Equivalent(res.Raw[rank], seq); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	pred, err := res.Predict()
	if err != nil {
		t.Fatal(err)
	}
	ratio := pred.TotalNS / res.SimulatedNS
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("prediction off by %.2fx", ratio)
	}
}

func TestWriteReadTrace(t *testing.T) {
	p, err := Compile(jacobi)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Trace(4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := res.WriteTrace(&buf, false)
	if err != nil || n != int64(buf.Len()) {
		t.Fatalf("write: %v (%d vs %d)", err, n, buf.Len())
	}
	m, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRanks != 4 {
		t.Fatalf("NumRanks = %d", m.NumRanks)
	}
	var gz bytes.Buffer
	zn, err := res.WriteTrace(&gz, true)
	if err != nil || zn <= 0 {
		t.Fatalf("gzip write: %v (%d)", err, zn)
	}
}

func TestCommMatrix(t *testing.T) {
	p, err := Compile(jacobi)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Trace(4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mat, err := res.CommMatrix()
	if err != nil {
		t.Fatal(err)
	}
	// Nearest-neighbor stencil: rank 1 talks to 0 and 2, 10 iterations of
	// 8000 bytes each way.
	if mat[1][0] != 80000 || mat[1][2] != 80000 {
		t.Fatalf("matrix row 1 = %v", mat[1])
	}
	if mat[0][2] != 0 || mat[0][3] != 0 {
		t.Fatalf("non-neighbors communicated: %v", mat[0])
	}
}

func TestWorkloadRegistryExposed(t *testing.T) {
	if Workload("CG") == nil || len(Workloads()) != 9 {
		t.Fatal("workload registry not exposed")
	}
	w := Workload("CG")
	src := w.Source(8, 0)
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("CG compile: %v", err)
	}
	res, err := p.Trace(8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged.EventCount == 0 {
		t.Fatal("no events traced")
	}
}

func TestHistogramTimeMode(t *testing.T) {
	p, err := Compile(jacobi)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Trace(4, Options{TimeMode: TimeHistogram}); err != nil {
		t.Fatal(err)
	}
}
