package cypress_test

import (
	"fmt"
	"log"

	cypress "repro"
)

// ExampleCompile shows the static analysis half of the pipeline: MPL source
// in, communication structure tree out (paper Section III).
func ExampleCompile() {
	prog, err := cypress.Compile(`
func main() {
	for var i = 0; i < 4; i = i + 1 {
		if rank % 2 == 0 { send(rank + 1, 64, 0); }
		else { recv(rank - 1, 64, 0); }
	}
	reduce(0, 8);
}`)
	if err != nil {
		log.Fatal(err)
	}
	st := prog.CST.Stats()
	fmt.Printf("loops=%d branches=%d comm=%d\n", st.Loops, st.Branches, st.CommLeaves)
	// Output: loops=1 branches=2 comm=3
}

// ExampleProgram_Trace runs the dynamic half: execute on simulated ranks,
// compress on the fly, merge across processes (paper Section IV).
func ExampleProgram_Trace() {
	prog, err := cypress.Compile(`
func main() {
	for var i = 0; i < 100; i = i + 1 { allreduce(8); }
}`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Trace(8, cypress.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ranks=%d events=%d groups=%d\n",
		res.Merged.NumRanks, res.Merged.EventCount, res.Merged.GroupCount())
	// Output: ranks=8 events=816 groups=3
}

// ExampleResult_Replay demonstrates sequence-preserving decompression
// (paper Section V).
func ExampleResult_Replay() {
	prog, err := cypress.Compile(`
func main() {
	if rank == 0 { send(1, 256, 9); }
	if rank == 1 { recv(0, 256, 9); }
}`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Trace(2, cypress.Options{})
	if err != nil {
		log.Fatal(err)
	}
	seq, err := res.Replay(1)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range seq {
		fmt.Println(e.String())
	}
	// Output:
	// MPI_Init
	// MPI_Recv(peer=0 size=256 tag=9)
	// MPI_Finalize
}
