// Customdsl: author your own MPL program — including recursion, wildcard
// receives, and non-blocking communication — and watch how each source
// construct maps to CST vertices and compressed records.
package main

import (
	"bytes"
	"fmt"
	"log"

	cypress "repro"
)

const src = `
// A master/worker program with recursion and wildcards: not a textbook
// stencil, but everything still compresses through the structure tree.
func main() {
	if rank == 0 {
		master();
	} else {
		worker(4);
	}
	barrier();
}

func master() {
	// Collect one result per worker per round; senders arrive in any order.
	for var round = 0; round < 4; round = round + 1 {
		for var i = 0; i < size - 1; i = i + 1 {
			recv(ANY, 256, 7);
		}
		bcast(0, 64);
	}
}

func worker(rounds) {
	// Recursive countdown, one result per level (paper Figure 8 territory).
	if rounds == 0 { return; }
	compute(50000);
	send(0, 256, 7);
	bcast(0, 64);
	worker(rounds - 1);
}
`

func main() {
	prog, err := cypress.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recursive functions detected:", keys(prog.Recursive))
	fmt.Println("\ncommunication structure tree:")
	fmt.Print(prog.CST.Dump())

	const procs = 9
	res, err := prog.Trace(procs, cypress.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	n, _ := res.WriteTrace(&buf, false)
	fmt.Printf("\n%d ranks, %d events -> %d bytes (%d rank groups)\n",
		procs, res.Merged.EventCount, n, res.Merged.GroupCount())

	// Rank 0 saw every worker's sends through wildcard receives; the
	// decompressed trace carries the resolved sources.
	seq, err := res.Replay(0)
	if err != nil {
		log.Fatal(err)
	}
	sources := map[int]int{}
	for _, e := range seq {
		if e.Wildcard {
			sources[e.Peer]++
		}
	}
	fmt.Printf("rank 0 resolved wildcard sources: %d distinct senders\n", len(sources))
}

func keys(m map[string]bool) []string {
	var out []string
	for k, v := range m {
		if v {
			out = append(out, k)
		}
	}
	return out
}
