// Patterns: extract communication-pattern matrices from compressed traces,
// the analysis behind the paper's Figures 17 and 20. The MG multigrid
// skeleton shows the irregular level-dependent pattern; the matrix is
// recovered entirely from the merged compressed trace, demonstrating that
// analysis never needs the raw event streams.
package main

import (
	"fmt"
	"log"
	"math"

	cypress "repro"
)

func main() {
	const procs = 32
	w := cypress.Workload("MG")
	if w == nil {
		log.Fatal("MG workload missing")
	}
	prog, err := cypress.Compile(w.Source(procs, 0 /* npb.Small */))
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Trace(procs, cypress.Options{})
	if err != nil {
		log.Fatal(err)
	}
	mat, err := res.CommMatrix()
	if err != nil {
		log.Fatal(err)
	}

	var maxV int64
	for _, row := range mat {
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
	}
	fmt.Printf("MG on %d ranks: communication volume matrix (max %.1fKB per pair)\n\n",
		procs, float64(maxV)/1024)
	shades := []byte(" .:-=+*#%@")
	for r := 0; r < procs; r++ {
		fmt.Print("  ")
		for c := 0; c < procs; c++ {
			idx := 0
			if mat[r][c] > 0 {
				f := math.Log1p(float64(mat[r][c])) / math.Log1p(float64(maxV))
				idx = 1 + int(f*float64(len(shades)-2))
			}
			fmt.Printf("%c", shades[idx])
		}
		fmt.Println()
	}

	// The irregularity the paper highlights: coarse multigrid levels involve
	// only a subset of ranks, so neighbor counts differ across ranks.
	fmt.Println("\nper-rank neighbor counts (irregular across ranks):")
	for r := 0; r < procs; r++ {
		n := 0
		for c, v := range mat[r] {
			if v > 0 && c != r {
				n++
			}
		}
		fmt.Printf("%3d", n)
		if (r+1)%16 == 0 {
			fmt.Println()
		}
	}
	fmt.Println()
}
