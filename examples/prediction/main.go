// Prediction: the paper's Figure 21 case study — trace LESlie3d, decompress,
// and feed the sequences to the LogGP trace-driven simulator to predict the
// execution time, comparing against the (synthetic) measured time and
// reporting the communication-time share as the job scales.
package main

import (
	"fmt"
	"log"
	"math"

	cypress "repro"
)

func main() {
	w := cypress.Workload("LESlie3d")
	if w == nil {
		log.Fatal("LESlie3d workload missing")
	}
	fmt.Println("LESlie3d performance prediction (paper Figure 21)")
	fmt.Println("procs   measured(ms)  predicted(ms)  error%   comm%")
	for _, procs := range []int{8, 16, 32} {
		prog, err := cypress.Compile(w.Source(procs, 0 /* small scale */))
		if err != nil {
			log.Fatal(err)
		}
		res, err := prog.Trace(procs, cypress.Options{})
		if err != nil {
			log.Fatal(err)
		}
		pred, err := res.Predict()
		if err != nil {
			log.Fatal(err)
		}
		errPct := 100 * math.Abs(pred.TotalNS-res.SimulatedNS) / res.SimulatedNS
		fmt.Printf("%5d   %12.2f  %13.2f  %6.2f  %6.1f\n",
			procs, res.SimulatedNS/1e6, pred.TotalNS/1e6, errPct, 100*pred.CommFraction())
	}
	fmt.Println("\nThe prediction consumes only the compressed trace: sequence,")
	fmt.Println("per-record communication times, and per-record compute times.")
}
