// Quickstart: the paper's Jacobi iteration (Figure 3) through the whole
// CYPRESS pipeline — compile to a CST, run under compression on 16 simulated
// ranks, inspect the merged trace, and verify lossless decompression.
package main

import (
	"bytes"
	"fmt"
	"log"

	cypress "repro"
	"repro/internal/replay"
)

const jacobi = `
// Simplified Jacobi iteration (paper Figure 3).
func main() {
	for var k = 0; k < 100; k = k + 1 {
		if rank < size - 1 { send(rank + 1, 8000, 0); }
		if rank > 0 { recv(rank - 1, 8000, 0); }
		if rank > 0 { send(rank - 1, 8000, 0); }
		if rank < size - 1 { recv(rank + 1, 8000, 0); }
		compute(250000);
	}
	reduce(0, 8);
}`

func main() {
	// Static analysis: extract the communication structure tree.
	prog, err := cypress.Compile(jacobi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("communication structure tree:")
	fmt.Print(prog.CST.Dump())

	// Dynamic analysis: run 16 ranks under on-the-fly compression, keeping
	// raw traces so we can verify the round trip.
	const procs = 16
	res, err := prog.Trace(procs, cypress.Options{KeepRaw: true})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := res.WriteTrace(&buf, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d ranks, %d events -> %d bytes compressed (%.2f bytes/event)\n",
		procs, res.Merged.EventCount, n, float64(n)/float64(res.Merged.EventCount))
	fmt.Printf("rank groups after merge: %d (SPMD uniformity)\n", res.Merged.GroupCount())

	// Decompression is sequence-preserving: every rank's replayed events
	// match the raw trace exactly.
	for rank := 0; rank < procs; rank++ {
		seq, err := res.Replay(rank)
		if err != nil {
			log.Fatal(err)
		}
		if err := replay.Equivalent(res.Raw[rank], seq); err != nil {
			log.Fatalf("rank %d: %v", rank, err)
		}
	}
	fmt.Println("lossless round trip verified for all ranks")

	// The first few events of an interior rank.
	seq, _ := res.Replay(procs / 2)
	fmt.Printf("\nrank %d decompressed prefix:\n", procs/2)
	for i, e := range seq {
		if i >= 8 {
			break
		}
		fmt.Printf("  %s\n", e.String())
	}
}
