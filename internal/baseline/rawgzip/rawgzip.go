// Package rawgzip is the Gzip baseline of the paper's evaluation: per-rank
// raw binary event streams (the OTF-like uncompressed format) compressed
// with stdlib gzip. There is no inter-process compression, so the total
// trace volume grows linearly with the number of processes — the behavior
// Figure 15's Gzip series shows.
package rawgzip

import (
	"bytes"
	"compress/gzip"

	"repro/internal/encpool"
	"repro/internal/trace"
)

// Writer is a per-rank sink that streams events into a gzip-compressed raw
// trace buffer.
type Writer struct {
	buf      bytes.Buffer
	gz       *gzip.Writer
	tw       *trace.Writer
	events   int64
	rawBytes int64
	finished bool
}

// NewWriter returns a sink for one rank. The gzip writer comes from a shared
// pool (deflate state is ~1.4MB per writer); Finalize returns it.
func NewWriter() *Writer {
	w := &Writer{}
	w.gz = encpool.GetGzip(&w.buf)
	w.tw = trace.NewWriter(w.gz)
	return w
}

// Structure markers are ignored: gzip sees only serialized events.

func (w *Writer) LoopEnter(int32)         {}
func (w *Writer) LoopIter(int32)          {}
func (w *Writer) BranchEnter(int32, int8) {}
func (w *Writer) BranchSkip(int32)        {}
func (w *Writer) CallEnter(int32)         {}
func (w *Writer) StructExit()             {}
func (w *Writer) CommSite(int32)          {}

// Event implements trace.Sink.
func (w *Writer) Event(e *trace.Event) {
	w.events++
	w.tw.WriteEvent(e)
}

// Finalize implements trace.Sink.
func (w *Writer) Finalize() {
	n, err := w.tw.Flush()
	if err == nil {
		err = w.gz.Close()
	}
	if err != nil {
		panic("rawgzip: " + err.Error())
	}
	encpool.PutGzip(w.gz)
	w.gz = nil
	w.rawBytes = n
	w.finished = true
}

// CompressedBytes returns the gzip stream size for this rank.
func (w *Writer) CompressedBytes() int64 {
	if !w.finished {
		panic("rawgzip: CompressedBytes before Finalize")
	}
	return int64(w.buf.Len())
}

// RawBytes returns the uncompressed stream size for this rank.
func (w *Writer) RawBytes() int64 {
	if !w.finished {
		panic("rawgzip: RawBytes before Finalize")
	}
	return w.rawBytes
}

// Events returns the number of events recorded.
func (w *Writer) Events() int64 { return w.events }

// Bytes returns the compressed stream contents.
func (w *Writer) Bytes() []byte { return w.buf.Bytes() }

// Decode decompresses and decodes a stream written by Writer, validating
// the round trip.
func Decode(data []byte) ([]trace.Event, error) {
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer gz.Close()
	return trace.NewReader(gz).ReadAll()
}

// TotalCompressed sums per-rank compressed sizes — the job-wide trace
// volume of the Gzip approach.
func TotalCompressed(ws []*Writer) int64 {
	var n int64
	for _, w := range ws {
		n += w.CompressedBytes()
	}
	return n
}

// TotalRaw sums per-rank raw sizes.
func TotalRaw(ws []*Writer) int64 {
	var n int64
	for _, w := range ws {
		n += w.RawBytes()
	}
	return n
}
