package rawgzip

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/mpisim"
	"repro/internal/trace"
)

const loopSrc = `
func main() {
	for var i = 0; i < 100; i = i + 1 {
		if rank < size - 1 { send(rank + 1, 4096, 0); }
		if rank > 0 { recv(rank - 1, 4096, 0); }
	}
}`

func runGz(t *testing.T, src string, n int) []*Writer {
	t.Helper()
	ws := make([]*Writer, n)
	sinks := make([]trace.Sink, n)
	for i := range ws {
		ws[i] = NewWriter()
		sinks[i] = ws[i]
	}
	if _, err := interp.RunProgram(src, n, mpisim.DefaultParams(), sinks); err != nil {
		t.Fatal(err)
	}
	return ws
}

func TestRoundTrip(t *testing.T) {
	ws := runGz(t, loopSrc, 4)
	for rank, w := range ws {
		events, err := Decode(w.Bytes())
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		if int64(len(events)) != w.Events() {
			t.Fatalf("rank %d: decoded %d events, wrote %d", rank, len(events), w.Events())
		}
		// Interior ranks: init + 100*(send+recv) + finalize.
		if rank > 0 && rank < 3 && len(events) != 202 {
			t.Fatalf("rank %d events = %d", rank, len(events))
		}
	}
}

func TestCompressionEffective(t *testing.T) {
	ws := runGz(t, loopSrc, 4)
	if TotalCompressed(ws) >= TotalRaw(ws) {
		t.Fatalf("gzip did not shrink: %d vs %d", TotalCompressed(ws), TotalRaw(ws))
	}
	if TotalRaw(ws) <= 0 {
		t.Fatal("no raw bytes")
	}
}

func TestLinearGrowthWithRanks(t *testing.T) {
	small := TotalCompressed(runGz(t, loopSrc, 2))
	big := TotalCompressed(runGz(t, loopSrc, 8))
	// No inter-process compression: 4x the ranks must be roughly 4x bytes
	// (within a factor ~2 for boundary ranks and gzip variance).
	if big < small*2 {
		t.Fatalf("expected near-linear growth: 2 ranks=%dB, 8 ranks=%dB", small, big)
	}
}

func TestAccessBeforeFinalizePanics(t *testing.T) {
	w := NewWriter()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.CompressedBytes()
}
