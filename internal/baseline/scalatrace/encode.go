package scalatrace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"io"
	"math"

	"repro/internal/stride"
)

// Encode writes the merged trace as a compact binary stream and returns the
// byte count. The format exists so the "+Gzip" variants of the paper's
// Figure 15 can be measured on real bytes.
func (m *MergedTrace) Encode(out io.Writer) (int64, error) {
	cw := &countingWriter{w: out}
	bw := bufio.NewWriterSize(cw, 1<<16)
	e := &encoder{w: bw}
	e.u(uint64(m.NumRanks))
	e.u(uint64(m.Events))
	e.terms(m.Terms)
	if e.err != nil {
		return 0, e.err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return cw.n, nil
}

// EncodeGzip writes the gzip-compressed stream and returns the byte count.
func (m *MergedTrace) EncodeGzip(out io.Writer) (int64, error) {
	cw := &countingWriter{w: out}
	gz := gzip.NewWriter(cw)
	if _, err := m.Encode(gz); err != nil {
		return 0, err
	}
	if err := gz.Close(); err != nil {
		return 0, err
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type encoder struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (e *encoder) u(x uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.buf[:], x)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *encoder) i(x int64) {
	if e.err != nil {
		return
	}
	n := binary.PutVarint(e.buf[:], x)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *encoder) runs(rs []stride.Run) {
	e.u(uint64(len(rs)))
	for _, r := range rs {
		e.i(r.First)
		e.i(r.Stride)
		e.u(uint64(r.Count))
	}
}

func (e *encoder) terms(ts []*Term) {
	e.u(uint64(len(ts)))
	for _, t := range ts {
		e.term(t)
	}
}

func (e *encoder) term(t *Term) {
	if t.IsRSD {
		e.u(1)
		if t.Ranks != nil {
			e.runs(t.Ranks.Runs())
		} else {
			e.u(0)
		}
		e.runs(t.CountSeq.Runs())
		e.terms(t.Body)
		return
	}
	e.u(0)
	if t.Ranks != nil {
		e.runs(t.Ranks.Runs())
	} else {
		e.u(0)
	}
	flags := uint64(0)
	if t.Wildcard {
		flags = 1
	}
	e.u(uint64(t.Op))
	e.u(flags)
	e.i(int64(t.PeerRel))
	e.i(int64(t.PeerAbs))
	e.u(uint64(t.Comm))
	e.runs(t.Sizes.Runs())
	e.runs(t.Tags.Runs())
	e.u(uint64(len(t.ReqDeltas)))
	for _, d := range t.ReqDeltas {
		e.i(int64(d))
	}
	if t.Time != nil {
		e.u(uint64(t.Time.N))
		e.u(math.Float64bits(t.Time.Mean))
		e.u(math.Float64bits(t.Time.Stddev()))
	} else {
		e.u(0)
		e.u(0)
		e.u(0)
	}
}
