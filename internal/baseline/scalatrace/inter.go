package scalatrace

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/rankset"
)

// MergedTrace is the job-wide compressed trace of a dynamic-only tool.
type MergedTrace struct {
	Mode     Mode
	NumRanks int
	Terms    []*Term
	Events   int64
}

// fromRank annotates a per-rank trace with its rank set.
func fromRank(t *RankTrace) *MergedTrace {
	rs := rankset.Single(t.Rank)
	var annotate func(ts []*Term)
	annotate = func(ts []*Term) {
		for _, term := range ts {
			term.Ranks = rs
			if term.IsRSD {
				annotate(term.Body)
			}
		}
	}
	annotate(t.Terms)
	return &MergedTrace{NumRanks: 1, Terms: t.Terms, Events: t.Events}
}

// PairMerge aligns two compressed term lists with a longest-common-
// subsequence dynamic program — the O(n²) step the paper contrasts with
// CYPRESS's O(n) lockstep walk — and merges matched terms. Unmatched terms
// are kept with their own rank annotations, interleaved in alignment order.
func PairMerge(a, b *MergedTrace, mode Mode) *MergedTrace {
	n, m := len(a.Terms), len(b.Terms)
	eq := equalExact
	if mode == V2 {
		eq = equalElastic
	}
	// dp[i][j] = LCS length of a.Terms[i:], b.Terms[j:].
	dp := make([][]int32, n+1)
	flat := make([]int32, (n+1)*(m+1))
	for i := range dp {
		dp[i] = flat[i*(m+1) : (i+1)*(m+1)]
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if eq(a.Terms[i], b.Terms[j]) {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	out := make([]*Term, 0, n+m-int(dp[0][0]))
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case eq(a.Terms[i], b.Terms[j]) && dp[i][j] == dp[i+1][j+1]+1:
			out = append(out, mergeTerm(a.Terms[i], b.Terms[j], mode))
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			out = append(out, a.Terms[i])
			i++
		default:
			out = append(out, b.Terms[j])
			j++
		}
	}
	out = append(out, a.Terms[i:]...)
	out = append(out, b.Terms[j:]...)
	return &MergedTrace{
		Mode:     mode,
		NumRanks: a.NumRanks + b.NumRanks,
		Terms:    out,
		Events:   a.Events + b.Events,
	}
}

// mergeTerm unifies two matched terms: rank sets union, elastic data folds.
func mergeTerm(a, b *Term, mode Mode) *Term {
	fold(a, b, foldModeInter(mode))
	a.Ranks = rankset.Union(a.Ranks, b.Ranks)
	if a.IsRSD {
		for i := range a.Body {
			a.Body[i].Ranks = a.Ranks
		}
	}
	return a
}

// foldModeInter: V1 inter-merging still has to fold per-rank count
// sequences; parameters are exact-equal by construction.
func foldModeInter(m Mode) Mode { return m }

// MergeAll combines per-rank traces with a binary reduction tree, as
// ScalaTrace's radix-tree gather does. The per-pair cost is the quadratic
// alignment above; the paper measures exactly this growth.
func MergeAll(traces []*RankTrace, mode Mode, workers int) (*MergedTrace, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("scalatrace: no traces")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ms := make([]*MergedTrace, len(traces))
	for i, t := range traces {
		ms[i] = fromRank(t)
	}
	sem := make(chan struct{}, workers)
	var reduce func(lo, hi int) *MergedTrace
	reduce = func(lo, hi int) *MergedTrace {
		if hi-lo == 1 {
			return ms[lo]
		}
		mid := (lo + hi) / 2
		var left, right *MergedTrace
		var wg sync.WaitGroup
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				left = reduce(lo, mid)
			}()
		default:
			left = reduce(lo, mid)
		}
		right = reduce(mid, hi)
		wg.Wait()
		return PairMerge(left, right, mode)
	}
	return reduce(0, len(ms)), nil
}

// SizeBytes reports the serialized size of the merged trace.
func (m *MergedTrace) SizeBytes() int64 { return SizeBytes(m.Terms) }

// TermCount reports the total term count including nested bodies.
func (m *MergedTrace) TermCount() int64 { return countTerms(m.Terms) }
