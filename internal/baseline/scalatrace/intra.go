package scalatrace

import (
	"fmt"

	"repro/internal/timestat"
	"repro/internal/trace"
)

// Compressor is the per-rank dynamic compressor. It implements trace.Sink
// but ignores every structure marker: all pattern discovery is bottom-up
// from the event sequence, as in ScalaTrace.
type Compressor struct {
	mode   Mode
	rank   int
	window int

	terms  []*Term
	posted int64 // non-blocking requests posted so far (for delta encoding)
	events int64

	finished bool
}

// DefaultWindow bounds the tail-matching search, the knob real ScalaTrace
// exposes to trade compression for speed.
const DefaultWindow = 48

// NewCompressor returns a dynamic compressor for one rank.
func NewCompressor(mode Mode, rank, window int) *Compressor {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Compressor{mode: mode, rank: rank, window: window}
}

// Structure markers are invisible to dynamic-only tools.

func (c *Compressor) LoopEnter(int32)         {}
func (c *Compressor) LoopIter(int32)          {}
func (c *Compressor) BranchEnter(int32, int8) {}
func (c *Compressor) BranchSkip(int32)        {}
func (c *Compressor) CallEnter(int32)         {}
func (c *Compressor) StructExit()             {}
func (c *Compressor) CommSite(int32)          {}

// Event implements trace.Sink.
func (c *Compressor) Event(e *trace.Event) {
	c.events++
	t := c.canonicalize(e)
	c.terms = append(c.terms, t)
	c.compressTail()
}

// Finalize implements trace.Sink.
func (c *Compressor) Finalize() { c.finished = true }

func (c *Compressor) canonicalize(e *trace.Event) *Term {
	t := &Term{
		Op:       e.Op,
		Comm:     e.Comm,
		Wildcard: e.Wildcard,
		PeerAbs:  e.Peer,
	}
	if e.Op.IsPointToPoint() {
		if e.Wildcard && e.Op == trace.OpIrecv {
			// The source is unknown at post time; dynamic tools record the
			// wildcard itself.
			t.PeerRel = 0
			t.PeerAbs = trace.AnySource
		} else {
			t.PeerRel = e.Peer - c.rank
		}
	}
	t.Sizes.Append(int64(e.Size))
	t.Tags.Append(int64(e.Tag))
	if e.Op.IsNonBlocking() {
		c.posted++
	}
	if e.Op.IsCompletion() {
		t.ReqDeltas = make([]int32, len(e.Reqs))
		for i, q := range e.Reqs {
			t.ReqDeltas[i] = q - int32(c.posted)
		}
	}
	t.Time = timestat.New(timestat.ModeMeanStddev)
	t.Time.Add(e.DurationNS)
	return t
}

// equal dispatches on mode.
func (c *Compressor) equal(a, b *Term) bool {
	if c.mode == V2 {
		return equalElastic(a, b)
	}
	return equalExact(a, b)
}

// compressTail greedily folds the queue tail, the heart of ScalaTrace's
// intra-process algorithm. Two forms are attempted for every window length:
//
//	target ... [A1..Aw][B1..Bw]   with Ai == Bi  →  RSD{2, A}
//	target ... RSD{k, A}[B1..Bw]  with Ai == Bi  →  RSD{k+1, A}
//
// Cost is O(window²) term comparisons per event in the worst case — the
// compression overhead the paper measures against.
func (c *Compressor) compressTail() {
	for {
		merged := false
		n := len(c.terms)
		maxW := c.window
		if n/2 < maxW {
			maxW = n / 2
		}
		for w := 1; w <= maxW; w++ {
			if c.tryRSDIncrement(w) || c.tryRSDCreate(w) {
				merged = true
				break
			}
		}
		if !merged {
			// Elastic mode can still fold the last event into an identical
			// immediate predecessor even when sizes differ.
			if c.mode == V2 && len(c.terms) >= 2 {
				a, b := c.terms[len(c.terms)-2], c.terms[len(c.terms)-1]
				if !a.IsRSD && !b.IsRSD && equalElastic(a, b) && !eqHeadAndParams(a, b) {
					fold(a, b, V2)
					c.terms = c.terms[:len(c.terms)-1]
					continue
				}
			}
			return
		}
	}
}

// eqHeadAndParams reports full parameter equality for two event terms; used
// to decide between RSD creation (exact repeats) and elastic folding.
func eqHeadAndParams(a, b *Term) bool {
	return eventHeadEqual(a, b) && a.Sizes.Equal(&b.Sizes) && a.Tags.Equal(&b.Tags)
}

// tryRSDCreate folds the last 2w terms into RSD{2, ...} when the two halves
// match termwise.
func (c *Compressor) tryRSDCreate(w int) bool {
	n := len(c.terms)
	if n < 2*w {
		return false
	}
	a := c.terms[n-2*w : n-w]
	b := c.terms[n-w:]
	for i := 0; i < w; i++ {
		if !c.equal(a[i], b[i]) {
			return false
		}
	}
	rsd := &Term{IsRSD: true, Body: append([]*Term(nil), a...)}
	rsd.CountSeq.Append(2)
	for i := 0; i < w; i++ {
		fold(a[i], b[i], foldMode(c.mode))
	}
	c.terms = append(c.terms[:n-2*w], rsd)
	return true
}

// foldMode: intra-process exact folding still accumulates time stats, but
// must not duplicate size/tag sequences (they are identical).
func foldMode(m Mode) Mode {
	if m == V2 {
		return V2
	}
	return V1
}

// tryRSDIncrement extends RSD{k, A} when the last w terms equal its body.
func (c *Compressor) tryRSDIncrement(w int) bool {
	n := len(c.terms)
	if n < w+1 {
		return false
	}
	r := c.terms[n-w-1]
	if !r.IsRSD || len(r.Body) != w {
		return false
	}
	tail := c.terms[n-w:]
	for i := 0; i < w; i++ {
		if !c.equal(r.Body[i], tail[i]) {
			return false
		}
	}
	last := r.CountSeq.At(r.CountSeq.Len() - 1)
	// Increment the trailing count: rebuild by appending is wrong, so track
	// the count sequence as (..., last+1) via a dedicated bump.
	r.bumpLastCount(last + 1)
	for i := 0; i < w; i++ {
		fold(r.Body[i], tail[i], foldMode(c.mode))
	}
	c.terms = c.terms[:n-w]
	return true
}

// bumpLastCount replaces the final value of the RSD count sequence.
func (t *Term) bumpLastCount(v int64) {
	t.CountSeq.SetLast(v)
}

// RankTrace is a finished per-rank compressed trace.
type RankTrace struct {
	Rank   int
	Terms  []*Term
	Events int64
}

// Finish extracts the compressed trace. The compressor must have observed
// Finalize.
func (c *Compressor) Finish() *RankTrace {
	if !c.finished {
		panic("scalatrace: Finish before Finalize")
	}
	return &RankTrace{Rank: c.rank, Terms: c.terms, Events: c.events}
}

// TermCount reports the current compressed length (n in the paper's
// complexity analysis).
func (c *Compressor) TermCount() int64 { return countTerms(c.terms) }

// MemoryBytes estimates live memory, for Figure 16's memory overhead curves.
func (c *Compressor) MemoryBytes() int64 {
	// Terms are heap nodes with headers; 160 bytes models the struct plus
	// slice headers, matching Go's allocator size class for Term.
	return countTerms(c.terms)*160 + SizeBytes(c.terms)
}

func (c *Compressor) String() string {
	return fmt.Sprintf("%v(rank %d, %d terms)", c.mode, c.rank, len(c.terms))
}
