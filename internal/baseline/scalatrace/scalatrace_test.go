package scalatrace

import (
	"bytes"
	"testing"

	"repro/internal/interp"
	"repro/internal/mpisim"
	"repro/internal/trace"
)

// runTraces executes src on n ranks under the dynamic compressor.
func runTraces(t testing.TB, src string, n int, mode Mode) []*RankTrace {
	t.Helper()
	comps := make([]*Compressor, n)
	sinks := make([]trace.Sink, n)
	for i := range comps {
		comps[i] = NewCompressor(mode, i, 0)
		sinks[i] = comps[i]
	}
	if _, err := interp.RunProgram(src, n, mpisim.DefaultParams(), sinks); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := make([]*RankTrace, n)
	for i, c := range comps {
		out[i] = c.Finish()
	}
	return out
}

// sampleCount sums the time-stat sample counts of every event term, which
// equals the exact number of events folded into the trace.
func sampleCount(ts []*Term) int64 {
	var n int64
	for _, t := range ts {
		if t.IsRSD {
			n += sampleCount(t.Body)
		} else if t.Time != nil {
			n += t.Time.N
		}
	}
	return n
}

// findEventTerm locates the first event term with the given op, recursively.
func findEventTerm(ts []*Term, op trace.Op) *Term {
	for _, t := range ts {
		if t.IsRSD {
			if f := findEventTerm(t.Body, op); f != nil {
				return f
			}
		} else if t.Op == op {
			return t
		}
	}
	return nil
}

func TestSimpleLoopBecomesRSD(t *testing.T) {
	traces := runTraces(t, `
func main() {
	for var i = 0; i < 50; i = i + 1 {
		bcast(0, 1024);
	}
}`, 2, V1)
	terms := traces[0].Terms
	// Init, RSD{50,[bcast]}, Finalize.
	if len(terms) != 3 {
		t.Fatalf("terms = %d, want 3: %+v", len(terms), terms)
	}
	rsd := terms[1]
	if !rsd.IsRSD || len(rsd.Body) != 1 || rsd.Body[0].Op != trace.OpBcast {
		t.Fatalf("middle term = %+v", rsd)
	}
	if rsd.CountSeq.String() != "[<50>]" {
		t.Fatalf("count = %s", rsd.CountSeq.String())
	}
	// Time stats must aggregate all 50 samples.
	if rsd.Body[0].Time.N != 50 {
		t.Fatalf("time samples = %d", rsd.Body[0].Time.N)
	}
}

func TestMultiEventLoopBecomesRSD(t *testing.T) {
	traces := runTraces(t, `
func main() {
	for var i = 0; i < 20; i = i + 1 {
		var r1 = isend((rank + 1) % size, 64, 0);
		var r2 = irecv((rank + size - 1) % size, 64, 0);
		waitall();
		compute(r1 + r2);
	}
}`, 4, V1)
	terms := traces[1].Terms
	// The greedy compressor may phase-rotate the loop body, but the trace
	// must collapse to a handful of terms.
	if n := countTerms(terms); n > 8 {
		t.Fatalf("terms = %d, want a compressed loop", n)
	}
	// Event conservation: Init + 20*(isend+irecv+waitall) + Finalize.
	if got := sampleCount(terms); got != 62 {
		t.Fatalf("folded events = %d, want 62", got)
	}
	// Request deltas repeat across iterations: waitall always completes the
	// two most recent posts.
	wa := findEventTerm(terms, trace.OpWaitall)
	if wa == nil || len(wa.ReqDeltas) != 2 ||
		wa.ReqDeltas[0] != -2 || wa.ReqDeltas[1] != -1 {
		t.Fatalf("waitall deltas = %+v", wa)
	}
}

func TestVaryingSizesBlockV1ButNotV2(t *testing.T) {
	src := `
func main() {
	for var i = 0; i < 40; i = i + 1 {
		bcast(0, 100 + i * 8);
	}
}`
	v1 := runTraces(t, src, 1, V1)
	v2 := runTraces(t, src, 1, V2)
	n1 := countTerms(v1[0].Terms)
	n2 := countTerms(v2[0].Terms)
	if n1 <= n2 {
		t.Fatalf("V1 terms %d should exceed V2 terms %d on varying sizes", n1, n2)
	}
	if n2 > 5 {
		t.Fatalf("V2 should fold varying sizes elastically, got %d terms", n2)
	}
	// V2's folded event carries the size sequence as a single stride run.
	var ev *Term
	for _, term := range v2[0].Terms {
		if !term.IsRSD && term.Op == trace.OpBcast {
			ev = term
		}
		if term.IsRSD {
			for _, b := range term.Body {
				if b.Op == trace.OpBcast {
					ev = b
				}
			}
		}
	}
	if ev == nil {
		t.Fatal("no bcast term found")
	}
	if ev.Sizes.Len() != 40 || len(ev.Sizes.Runs()) != 1 {
		t.Fatalf("V2 sizes = %s", ev.Sizes.String())
	}
}

func TestNestedLoopPowerRSD(t *testing.T) {
	traces := runTraces(t, `
func main() {
	for var i = 0; i < 10; i = i + 1 {
		bcast(0, 64);
		for var j = 0; j < 5; j = j + 1 {
			allreduce(8);
		}
	}
}`, 1, V1)
	terms := traces[0].Terms
	// Greedy folding may phase-rotate, but the 60-event nest must collapse
	// into a handful of terms with a nested RSD somewhere.
	if n := countTerms(terms); n > 15 {
		t.Fatalf("terms = %d: nested loop did not compress", n)
	}
	hasNested := false
	var scan func(ts []*Term, depth int)
	scan = func(ts []*Term, depth int) {
		for _, term := range ts {
			if term.IsRSD {
				if depth > 0 {
					hasNested = true
				}
				scan(term.Body, depth+1)
			}
		}
	}
	scan(terms, 0)
	if !hasNested {
		t.Fatalf("no nested (power) RSD found")
	}
	if got := sampleCount(terms); got != 1+10*6+1 {
		t.Fatalf("folded events = %d, want 62", got)
	}
}

func TestIrregularBranchesResistCompression(t *testing.T) {
	// A pseudo-random branch pattern defeats greedy loop detection: the
	// term list stays long. This is the overhead/effectiveness gap CYPRESS
	// exploits (it would compress each arm's leaf independently).
	traces := runTraces(t, `
func main() {
	var state = rank + 7;
	for var i = 0; i < 64; i = i + 1 {
		state = (state * 1103515245 + 12345) % 2147483648;
		if (state / 65536) % 3 == 0 {
			bcast(0, 8);
		} else {
			if (state / 65536) % 3 == 1 {
				allreduce(16);
			} else {
				barrier();
			}
		}
	}
}`, 1, V1)
	n := countTerms(traces[0].Terms)
	if n < 10 {
		t.Fatalf("irregular pattern compressed suspiciously well: %d terms", n)
	}
}

func TestPairMergeIdenticalRanks(t *testing.T) {
	traces := runTraces(t, `
func main() {
	for var i = 0; i < 30; i = i + 1 {
		allreduce(8);
	}
}`, 4, V1)
	m, err := MergeAll(traces, V1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRanks != 4 {
		t.Fatalf("NumRanks = %d", m.NumRanks)
	}
	// All ranks identical: merged list equals one rank's list.
	if len(m.Terms) != 3 {
		t.Fatalf("merged terms = %d, want 3", len(m.Terms))
	}
	for _, term := range m.Terms {
		if term.Ranks == nil || term.Ranks.Len() != 4 {
			t.Fatalf("term ranks = %v", term.Ranks)
		}
	}
}

func TestPairMergeRelativeRanking(t *testing.T) {
	// Ring shift: every rank sends to rank+1 mod size. Relative encoding
	// unifies all interior ranks' sends.
	traces := runTraces(t, `
func main() {
	if rank < size - 1 { send(rank + 1, 256, 0); }
	if rank > 0 { recv(rank - 1, 256, 0); }
}`, 6, V1)
	m, err := MergeAll(traces, V1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sendTerms int
	for _, term := range m.Terms {
		if !term.IsRSD && term.Op == trace.OpSend {
			sendTerms++
			if term.Ranks.Len() != 5 {
				t.Fatalf("send term covers %d ranks, want 5", term.Ranks.Len())
			}
			if term.PeerRel != 1 {
				t.Fatalf("send PeerRel = %d", term.PeerRel)
			}
		}
	}
	if sendTerms != 1 {
		t.Fatalf("send terms = %d, want 1", sendTerms)
	}
}

func TestPairMergeDivergentKeptSeparate(t *testing.T) {
	traces := runTraces(t, `
func main() {
	if rank == 0 {
		for var i = 0; i < size - 1; i = i + 1 { recv(ANY, 64, 0); }
	} else {
		send(0, 64, 0);
	}
}`, 4, V1)
	m, err := MergeAll(traces, V1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0's receive pattern cannot merge with the senders' pattern.
	if len(m.Terms) < 4 {
		t.Fatalf("merged terms = %d, expected divergent structure", len(m.Terms))
	}
}

func TestEncodeAndGzip(t *testing.T) {
	traces := runTraces(t, `
func main() {
	for var i = 0; i < 100; i = i + 1 {
		if rank < size - 1 { send(rank + 1, 4096, 0); }
		if rank > 0 { recv(rank - 1, 4096, 0); }
	}
}`, 8, V1)
	m, err := MergeAll(traces, V1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var plain, zipped bytes.Buffer
	ps, err := m.Encode(&plain)
	if err != nil {
		t.Fatal(err)
	}
	zs, err := m.EncodeGzip(&zipped)
	if err != nil {
		t.Fatal(err)
	}
	if ps <= 0 || zs <= 0 {
		t.Fatal("empty encodings")
	}
	if int64(plain.Len()) != ps || int64(zipped.Len()) != zs {
		t.Fatal("byte accounting wrong")
	}
	if est := m.SizeBytes(); est <= 0 {
		t.Fatalf("SizeBytes = %d", est)
	}
}

func TestEventConservation(t *testing.T) {
	traces := runTraces(t, `
func main() {
	for var i = 0; i < 25; i = i + 1 { barrier(); }
	reduce(0, 8);
}`, 3, V1)
	for _, tr := range traces {
		// Init + 25 barriers + reduce + finalize.
		if tr.Events != 28 {
			t.Fatalf("rank %d events = %d", tr.Rank, tr.Events)
		}
	}
	m, err := MergeAll(traces, V1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Events != 28*3 {
		t.Fatalf("merged events = %d", m.Events)
	}
}

func TestWindowBoundsCompression(t *testing.T) {
	// A repeat body longer than the window cannot fold.
	long := `
func main() {
	for var i = 0; i < 4; i = i + 1 {
		bcast(0, 1); bcast(0, 2); bcast(0, 3); bcast(0, 4);
		bcast(0, 5); bcast(0, 6); bcast(0, 7); bcast(0, 8);
	}
}`
	narrow := func(window int) int64 {
		comp := NewCompressor(V1, 0, window)
		if _, err := interp.RunProgram(long, 1, mpisim.Params{}, []trace.Sink{comp}); err != nil {
			t.Fatal(err)
		}
		return countTerms(comp.Finish().Terms)
	}
	if n4, n16 := narrow(4), narrow(16); n4 <= n16 {
		t.Fatalf("window 4 terms %d should exceed window 16 terms %d", n4, n16)
	}
}

func TestFinishBeforeFinalizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCompressor(V1, 0, 0).Finish()
}

func TestModeString(t *testing.T) {
	if V1.String() != "ScalaTrace" || V2.String() != "ScalaTrace2" {
		t.Fatal("mode names wrong")
	}
}

func BenchmarkIntraAppend(b *testing.B) {
	c := NewCompressor(V1, 0, DefaultWindow)
	e := trace.Event{Op: trace.OpBcast, Size: 1024, Peer: 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Event(&e)
	}
}
