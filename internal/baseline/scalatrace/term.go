// Package scalatrace reimplements the dynamic-only ("bottom-up") trace
// compression family CYPRESS is evaluated against:
//
//   - Mode V1 models ScalaTrace (Noeth et al., IPDPS'07): an online greedy
//     loop compressor that maintains a queue of trace terms and folds the
//     most recent window into regular section descriptors (RSDs) and nested
//     power-RSDs, with exact parameter matching; inter-process merging
//     aligns two compressed term lists with an O(n²) LCS dynamic program.
//   - Mode V2 models ScalaTrace-2 (Wu & Mueller, ICS'13): "elastic" event
//     matching that folds varying message sizes/tags into per-term value
//     vectors, and a loop-agnostic inter-process merge that also unifies
//     terms whose iteration counts differ, at the price of losing the exact
//     per-rank ordering information (the paper notes ScalaTrace-2 "only
//     preserves partial communication information").
//
// The structure markers of the Sink interface are ignored: these tools see
// only the event stream, which is precisely the paper's point.
package scalatrace

import (
	"repro/internal/rankset"
	"repro/internal/stride"
	"repro/internal/timestat"
	"repro/internal/trace"
)

// Mode selects the modeled tool.
type Mode int

const (
	// V1 is exact-matching ScalaTrace.
	V1 Mode = iota
	// V2 is elastic, loop-agnostic ScalaTrace-2.
	V2
)

func (m Mode) String() string {
	if m == V2 {
		return "ScalaTrace2"
	}
	return "ScalaTrace"
}

// Term is one element of a compressed trace: either a single event pattern
// or an RSD (a repeated sub-sequence).
type Term struct {
	// Event-term fields.
	Op       trace.Op
	PeerRel  int // rank-relative peer for p2p ops
	PeerAbs  int // absolute peer (roots, sentinels)
	Comm     int
	Wildcard bool
	// Sizes and Tags hold parameter values in occurrence order. Exact mode
	// keeps them single-valued; elastic mode appends on every fold.
	Sizes stride.Vector
	Tags  stride.Vector
	// ReqDeltas are completion request ids re-encoded relative to the
	// number of requests posted so far, which repeats across iterations.
	ReqDeltas []int32
	Time      *timestat.Stat

	// RSD fields.
	IsRSD bool
	// CountSeq is the iteration-count sequence of the RSD across its
	// occurrences (a power-RSD records varying inner counts).
	CountSeq stride.Vector
	Body     []*Term

	// Ranks annotates merged terms with the processes sharing them;
	// nil before inter-process merging.
	Ranks *rankset.Set
}

// occurrences returns how many events this event-term folded.
func (t *Term) occurrences() int64 {
	if t.IsRSD {
		return 0
	}
	if n := t.Sizes.Len(); n > 0 {
		return n
	}
	return 1
}

// equalExact reports deep equality under V1 rules: every parameter,
// including size/tag sequences and RSD count sequences, must match.
func equalExact(a, b *Term) bool {
	if a.IsRSD != b.IsRSD {
		return false
	}
	if a.IsRSD {
		// Count sequences are power-RSD data, not identity: ScalaTrace's
		// PRSDs fold loops whose inner iteration counts vary.
		if len(a.Body) != len(b.Body) {
			return false
		}
		for i := range a.Body {
			if !equalExact(a.Body[i], b.Body[i]) {
				return false
			}
		}
		return true
	}
	return eventHeadEqual(a, b) &&
		a.Sizes.Equal(&b.Sizes) && a.Tags.Equal(&b.Tags)
}

// equalElastic reports V2 equality: the operation structure must match but
// sizes, tags, and RSD counts are elastic (folded on merge).
func equalElastic(a, b *Term) bool {
	if a.IsRSD != b.IsRSD {
		return false
	}
	if a.IsRSD {
		if len(a.Body) != len(b.Body) {
			return false
		}
		for i := range a.Body {
			if !equalElastic(a.Body[i], b.Body[i]) {
				return false
			}
		}
		return true
	}
	return eventHeadEqual(a, b)
}

func eventHeadEqual(a, b *Term) bool {
	if a.Op != b.Op || a.Comm != b.Comm || a.Wildcard != b.Wildcard ||
		len(a.ReqDeltas) != len(b.ReqDeltas) {
		return false
	}
	for i := range a.ReqDeltas {
		if a.ReqDeltas[i] != b.ReqDeltas[i] {
			return false
		}
	}
	if a.Op.IsPointToPoint() {
		return a.PeerRel == b.PeerRel
	}
	return a.PeerAbs == b.PeerAbs
}

// fold merges b into a after an equality check succeeded. Elastic data
// (sizes, tags, counts, times) is appended; exact mode only accumulates time.
func fold(a, b *Term, mode Mode) {
	if a.IsRSD {
		// Power-RSD count sequences concatenate; element-wise appends let
		// the stride encoder discover arithmetic progressions.
		for _, v := range b.CountSeq.Values() {
			a.CountSeq.Append(v)
		}
		for i := range a.Body {
			fold(a.Body[i], b.Body[i], mode)
		}
		return
	}
	if mode == V2 {
		for _, v := range b.Sizes.Values() {
			a.Sizes.Append(v)
		}
		for _, v := range b.Tags.Values() {
			a.Tags.Append(v)
		}
	}
	if a.Time != nil && b.Time != nil {
		a.Time.Merge(b.Time)
	}
}

// SizeBytes estimates the serialized footprint of a term list.
func SizeBytes(terms []*Term) int64 {
	var n int64
	for _, t := range terms {
		n += termSize(t)
	}
	return n
}

func termSize(t *Term) int64 {
	var n int64
	if t.Ranks != nil {
		n += t.Ranks.SizeBytes()
	}
	if t.IsRSD {
		n += 2 + t.CountSeq.SizeBytes()
		n += SizeBytes(t.Body)
		return n
	}
	n += 2 + 4 + 2 + 2 // op, peer, comm, flags
	n += t.Sizes.SizeBytes() + t.Tags.SizeBytes()
	n += int64(4 * len(t.ReqDeltas))
	if t.Time != nil {
		n += t.Time.SizeBytes()
	}
	return n
}

// countTerms returns the total number of terms including nested bodies,
// used for memory accounting.
func countTerms(terms []*Term) int64 {
	var n int64
	for _, t := range terms {
		n++
		if t.IsRSD {
			n += countTerms(t.Body)
		}
	}
	return n
}

func cloneTerm(t *Term) *Term {
	c := *t
	if t.Time != nil {
		c.Time = t.Time.Clone()
	}
	if t.IsRSD {
		c.Body = make([]*Term, len(t.Body))
		for i, b := range t.Body {
			c.Body[i] = cloneTerm(b)
		}
	}
	var sz, tg, cs stride.Vector
	for _, r := range t.Sizes.Runs() {
		sz.AppendRun(r)
	}
	for _, r := range t.Tags.Runs() {
		tg.AppendRun(r)
	}
	for _, r := range t.CountSeq.Runs() {
		cs.AppendRun(r)
	}
	c.Sizes, c.Tags, c.CountSeq = sz, tg, cs
	return &c
}
