package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/ctt"
	"repro/internal/interp"
	"repro/internal/merge"
	"repro/internal/mpisim"
	"repro/internal/npb"
	"repro/internal/timestat"
	"repro/internal/trace"
)

// Ablations quantifies the design choices DESIGN.md calls out:
//
//  1. leaf sliding-window width (paper's mentioned extension): compression
//     gain vs the lossless window of 1 on SP, whose per-iteration parameter
//     variation is exactly the case a wider window helps;
//  2. relative ranking encoding on/off: merged size and rank-group count on
//     a stencil workload, where the encoding does all the work;
//  3. parallel vs serial P-way merge: wall time of the reduction;
//  4. histogram vs mean/stddev time recording: trace size cost of the
//     richer timing mode.
func Ablations(w io.Writer, cfg Config) error {
	if err := ablateWindow(w, cfg); err != nil {
		return err
	}
	if err := ablateRelative(w, cfg); err != nil {
		return err
	}
	if err := ablateParallelMerge(w, cfg); err != nil {
		return err
	}
	return ablateTimeMode(w, cfg)
}

// runCTTs executes a workload under CYPRESS, returning the per-rank trees.
func runCTTs(wl *npb.Workload, n int, cfg Config, mode timestat.Mode, window int) ([]*ctt.RankCTT, error) {
	prog, tree, err := compileWorkload(wl, n, cfg.scale())
	if err != nil {
		return nil, err
	}
	comps := make([]*ctt.Compressor, n)
	sinks := make([]trace.Sink, n)
	for i := range sinks {
		comps[i] = ctt.NewCompressor(tree, i, mode)
		comps[i].SetObs(obsSink)
		comps[i].SetWindow(window)
		sinks[i] = comps[i]
	}
	if _, err := mpisim.Run(n, mpisim.DefaultParams(), sinks, func(r *mpisim.Rank) {
		interp.Execute(prog, r)
	}); err != nil {
		return nil, err
	}
	out := make([]*ctt.RankCTT, n)
	for i, c := range comps {
		out[i] = c.Finish()
	}
	return out, nil
}

func mergedSize(ctts []*ctt.RankCTT, workers int) (int64, int, error) {
	m, err := merge.All(ctts, workers)
	if err != nil {
		return 0, 0, err
	}
	sz, err := m.Encode(io.Discard)
	return sz, m.GroupCount(), err
}

func ablateWindow(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "Ablation 1: leaf sliding-window width on SP (window 1 is lossless)")
	wl := npb.Get("SP")
	n := cfg.procsFor(wl)[0]
	for _, window := range []int{1, 4, 16} {
		ctts, err := runCTTs(wl, n, cfg, timestat.ModeMeanStddev, window)
		if err != nil {
			return err
		}
		var perRank int64
		for _, c := range ctts {
			perRank += c.SizeBytes()
		}
		sz, groups, err := mergedSize(ctts, cfg.Workers)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  window=%2d  per-rank CTT total=%8.1fKB  merged=%8.1fKB  groups=%d\n",
			window, kb(perRank), kb(sz), groups)
	}
	return nil
}

func ablateRelative(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "Ablation 2: relative ranking encoding (LESlie3d stencil)")
	wl := npb.Get("LESlie3d")
	n := cfg.procsFor(wl)[0]
	withRel, err := runCTTs(wl, n, cfg, timestat.ModeMeanStddev, 1)
	if err != nil {
		return err
	}
	m1, err := merge.All(withRel, cfg.Workers)
	if err != nil {
		return err
	}
	s1, err := m1.Encode(io.Discard)
	if err != nil {
		return err
	}
	withoutRel, err := runCTTs(wl, n, cfg, timestat.ModeMeanStddev, 1)
	if err != nil {
		return err
	}
	m2, err := merge.AllNoRelative(withoutRel, cfg.Workers)
	if err != nil {
		return err
	}
	s2, err := m2.Encode(io.Discard)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  relative ON : merged=%8.1fKB groups=%d\n", kb(s1), m1.GroupCount())
	fmt.Fprintf(w, "  relative OFF: merged=%8.1fKB groups=%d (%.1fx larger)\n",
		kb(s2), m2.GroupCount(), float64(s2)/float64(s1))
	return nil
}

func ablateParallelMerge(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "Ablation 3: parallel vs serial P-way merge (LU)")
	wl := npb.Get("LU")
	n := cfg.procsFor(wl)[len(cfg.procsFor(wl))-1]
	par, err := runCTTs(wl, n, cfg, timestat.ModeMeanStddev, 1)
	if err != nil {
		return err
	}
	t0 := time.Now()
	if _, err := merge.All(par, 0); err != nil {
		return err
	}
	parSec := time.Since(t0).Seconds()
	ser, err := runCTTs(wl, n, cfg, timestat.ModeMeanStddev, 1)
	if err != nil {
		return err
	}
	t0 = time.Now()
	if _, err := merge.Serial(ser); err != nil {
		return err
	}
	serSec := time.Since(t0).Seconds()
	fmt.Fprintf(w, "  P=%d  parallel=%.4fs  serial=%.4fs  speedup=%.2fx\n",
		n, parSec, serSec, serSec/parSec)
	return nil
}

func ablateTimeMode(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "Ablation 4: time recording mode (CG)")
	wl := npb.Get("CG")
	n := cfg.procsFor(wl)[0]
	for _, mode := range []timestat.Mode{timestat.ModeMeanStddev, timestat.ModeHistogram} {
		ctts, err := runCTTs(wl, n, cfg, mode, 1)
		if err != nil {
			return err
		}
		sz, _, err := mergedSize(ctts, cfg.Workers)
		if err != nil {
			return err
		}
		name := "mean/stddev"
		if mode == timestat.ModeHistogram {
			name = "histogram  "
		}
		fmt.Fprintf(w, "  %s merged=%8.1fKB\n", name, kb(sz))
	}
	return nil
}
