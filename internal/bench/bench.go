// Package bench regenerates every table and figure of the paper's evaluation
// (Section VII): trace sizes under six compression methods (Fig 15, 19),
// intra-process compression time/memory overhead (Fig 16), communication
// matrices (Fig 17, 20), inter-process merge cost (Fig 18), compilation
// overhead of the CST pass (Table I), and trace-driven performance
// prediction (Fig 21), plus ablations of CYPRESS's design choices.
//
// Absolute numbers differ from the paper (the substrate is a simulator, not
// the Explorer-100 cluster); the harness is built to reproduce the paper's
// shapes: orderings, growth trends, and crossovers. Intra-process time
// overhead uses the paper's own metric — wall-clock slowdown of the traced
// run relative to an untraced run.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/baseline/rawgzip"
	"repro/internal/baseline/scalatrace"
	"repro/internal/cst"
	"repro/internal/ctt"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/merge"
	"repro/internal/mpisim"
	"repro/internal/npb"
	"repro/internal/timestat"
	"repro/internal/trace"
)

// Config controls experiment scale.
type Config struct {
	// Quick shrinks process counts and iterations for smoke runs and tests.
	Quick bool
	// Full extends process counts to the paper's largest (400/512).
	Full bool
	// Workers bounds merge parallelism (0 = GOMAXPROCS).
	Workers int
}

// procsFor selects the process-count axis for a workload.
func (c Config) procsFor(w *npb.Workload) []int {
	if c.Quick {
		for _, n := range []int{16, 12, 8} {
			if w.ValidProcs(n) {
				return []int{n}
			}
		}
		return w.Procs[:1]
	}
	if c.Full {
		return w.Procs
	}
	if len(w.Procs) > 3 {
		return w.Procs[:3]
	}
	return w.Procs
}

func (c Config) scale() npb.Scale {
	if c.Quick {
		return npb.Small
	}
	return npb.Paper
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, cfg Config) error
}

// Experiments returns the registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table I: compilation overhead of the CST pass", Table1},
		{"fig15", "Figure 15: total trace sizes, NPB x methods", Fig15},
		{"fig16", "Figure 16: intra-process compression overhead", Fig16},
		{"fig17", "Figure 17: communication patterns of MG and SP", Fig17},
		{"fig18", "Figure 18: inter-process compression overhead", Fig18},
		{"fig19", "Figure 19: LESlie3d trace sizes", Fig19},
		{"fig20", "Figure 20: LESlie3d communication patterns", Fig20},
		{"fig21", "Figure 21: LESlie3d performance prediction", Fig21},
		{"ablate", "Ablations: CYPRESS design choices", Ablations},
	}
}

// Get returns the experiment with the given id, or an error listing options.
func Get(id string) (Experiment, error) {
	var ids []string
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}

// Methods in figure order.
const (
	MGzip        = "Gzip"
	MScala       = "ScalaTrace"
	MScala2      = "ScalaTrace2"
	MScala2Gzip  = "ScalaTrace2+Gzip"
	MCypress     = "Cypress"
	MCypressGzip = "Cypress+Gzip"
)

// SizeMethods is the Figure 15 series order.
var SizeMethods = []string{MGzip, MScala, MScala2, MScala2Gzip, MCypress, MCypressGzip}

// Measured is the outcome of one (workload, P) evaluation under every method.
type Measured struct {
	Workload string
	Procs    int
	Events   int64   // total MPI events across ranks
	SimSec   float64 // synthetic application time (seconds)

	Sizes    map[string]int64   // method -> compressed trace bytes
	MemBytes map[string]int64   // method -> per-process compressor memory
	InterSec map[string]float64 // method -> inter-process merge seconds
}

// IntraMeasured is the outcome of the intra-process overhead experiment:
// wall-clock slowdown of the traced run relative to an untraced run, the
// paper's Figure 16 metric.
type IntraMeasured struct {
	Workload string
	Procs    int
	BaseSec  float64
	// SlowdownPct maps method -> 100 * (traced - base) / base.
	SlowdownPct map[string]float64
	// MemBytes maps method -> per-process compressor memory.
	MemBytes map[string]int64
}

// MeasureIntra runs the workload once untraced and once per method,
// reporting wall-clock slowdowns. Each timed run is repeated and the minimum
// is kept, which suppresses scheduler noise.
func MeasureIntra(w *npb.Workload, n int, cfg Config) (*IntraMeasured, error) {
	prog, tree, err := compileWorkload(w, n, cfg.scale())
	if err != nil {
		return nil, err
	}
	reps := 3
	if cfg.Quick {
		reps = 2
	}
	timeRun := func(mk func(rank int) trace.Sink) (float64, error) {
		best := -1.0
		for r := 0; r < reps; r++ {
			var sinks []trace.Sink
			if mk != nil {
				sinks = make([]trace.Sink, n)
				for i := range sinks {
					sinks[i] = mk(i)
				}
			}
			t0 := time.Now()
			if _, err := mpisim.Run(n, mpisim.DefaultParams(), sinks, func(r *mpisim.Rank) {
				interp.Execute(prog, r)
			}); err != nil {
				return 0, err
			}
			if d := time.Since(t0).Seconds(); best < 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	base, err := timeRun(nil)
	if err != nil {
		return nil, err
	}
	out := &IntraMeasured{
		Workload:    w.Name,
		Procs:       n,
		BaseSec:     base,
		SlowdownPct: map[string]float64{},
		MemBytes:    map[string]int64{},
	}
	// Memory probes reuse one traced run per method.
	var lastCyp []*ctt.Compressor
	var lastSt1 []*scalatrace.Compressor
	methods := []struct {
		name string
		mk   func(rank int) trace.Sink
	}{
		{MCypress, func(rank int) trace.Sink {
			c := ctt.NewCompressor(tree, rank, timestat.ModeMeanStddev)
			lastCyp = append(lastCyp, c)
			return c
		}},
		{MScala, func(rank int) trace.Sink {
			c := scalatrace.NewCompressor(scalatrace.V1, rank, 0)
			lastSt1 = append(lastSt1, c)
			return c
		}},
		{MScala2, func(rank int) trace.Sink {
			return scalatrace.NewCompressor(scalatrace.V2, rank, 0)
		}},
	}
	for _, meth := range methods {
		sec, err := timeRun(meth.mk)
		if err != nil {
			return nil, err
		}
		pct := 100 * (sec - base) / base
		if pct < 0 {
			pct = 0
		}
		out.SlowdownPct[meth.name] = pct
	}
	var memCyp, memSt1 int64
	for _, c := range lastCyp[len(lastCyp)-n:] {
		memCyp += c.MemoryBytes()
	}
	for _, c := range lastSt1[len(lastSt1)-n:] {
		memSt1 += c.MemoryBytes()
	}
	out.MemBytes[MCypress] = memCyp / int64(n)
	out.MemBytes[MScala] = memSt1 / int64(n)
	return out, nil
}

// fanout forwards one rank's stream to several sinks.
type fanout []trace.Sink

func (f fanout) LoopEnter(s int32) {
	for _, x := range f {
		x.LoopEnter(s)
	}
}
func (f fanout) LoopIter(s int32) {
	for _, x := range f {
		x.LoopIter(s)
	}
}
func (f fanout) BranchEnter(s int32, a int8) {
	for _, x := range f {
		x.BranchEnter(s, a)
	}
}
func (f fanout) BranchSkip(s int32) {
	for _, x := range f {
		x.BranchSkip(s)
	}
}
func (f fanout) CallEnter(s int32) {
	for _, x := range f {
		x.CallEnter(s)
	}
}
func (f fanout) StructExit() {
	for _, x := range f {
		x.StructExit()
	}
}
func (f fanout) CommSite(s int32) {
	for _, x := range f {
		x.CommSite(s)
	}
}
func (f fanout) Event(e *trace.Event) {
	for _, x := range f {
		// Each sink gets a private copy: compressors canonicalize in place.
		ev := *e
		if e.Reqs != nil {
			ev.Reqs = append([]int32(nil), e.Reqs...)
		}
		if e.ReqSrcs != nil {
			ev.ReqSrcs = append([]int32(nil), e.ReqSrcs...)
		}
		x.Event(&ev)
	}
}
func (f fanout) Finalize() {
	for _, x := range f {
		x.Finalize()
	}
}

// compileWorkload builds the CST for a workload instance.
func compileWorkload(w *npb.Workload, n int, s npb.Scale) (*lang.Program, *cst.Tree, error) {
	src := w.Source(n, s)
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, nil, fmt.Errorf("%s/%d: parse: %w", w.Name, n, err)
	}
	if _, err := lang.Check(prog); err != nil {
		return nil, nil, fmt.Errorf("%s/%d: check: %w", w.Name, n, err)
	}
	irProg, err := ir.Lower(prog)
	if err != nil {
		return nil, nil, fmt.Errorf("%s/%d: lower: %w", w.Name, n, err)
	}
	tree, err := cst.Build(irProg)
	if err != nil {
		return nil, nil, fmt.Errorf("%s/%d: cst: %w", w.Name, n, err)
	}
	return prog, tree, nil
}

// Measure runs one workload at one process count under every method.
func Measure(w *npb.Workload, n int, cfg Config) (*Measured, error) {
	prog, tree, err := compileWorkload(w, n, cfg.scale())
	if err != nil {
		return nil, err
	}
	cyp := make([]*ctt.Compressor, n)
	st1 := make([]*scalatrace.Compressor, n)
	st2 := make([]*scalatrace.Compressor, n)
	gz := make([]*rawgzip.Writer, n)
	sinks := make([]trace.Sink, n)
	for i := 0; i < n; i++ {
		cyp[i] = ctt.NewCompressor(tree, i, timestat.ModeMeanStddev)
		st1[i] = scalatrace.NewCompressor(scalatrace.V1, i, 0)
		st2[i] = scalatrace.NewCompressor(scalatrace.V2, i, 0)
		gz[i] = rawgzip.NewWriter()
		sinks[i] = fanout{cyp[i], st1[i], st2[i], gz[i]}
	}
	simNS, err := mpisim.Run(n, mpisim.DefaultParams(), sinks, func(r *mpisim.Rank) {
		interp.Execute(prog, r)
	})
	if err != nil {
		return nil, fmt.Errorf("%s/%d: run: %w", w.Name, n, err)
	}

	m := &Measured{
		Workload: w.Name,
		Procs:    n,
		SimSec:   simNS / 1e9,
		Sizes:    map[string]int64{},
		MemBytes: map[string]int64{},
		InterSec: map[string]float64{},
	}
	var memCyp, memSt1 int64
	for i := 0; i < n; i++ {
		memCyp += cyp[i].MemoryBytes()
		memSt1 += st1[i].MemoryBytes()
	}
	m.MemBytes[MCypress] = memCyp / int64(n)
	m.MemBytes[MScala] = memSt1 / int64(n)

	// Finish per-rank artifacts.
	ctts := make([]*ctt.RankCTT, n)
	tr1 := make([]*scalatrace.RankTrace, n)
	tr2 := make([]*scalatrace.RankTrace, n)
	for i := 0; i < n; i++ {
		ctts[i] = cyp[i].Finish()
		tr1[i] = st1[i].Finish()
		tr2[i] = st2[i].Finish()
		m.Events += ctts[i].EventCount
	}
	m.Sizes[MGzip] = rawgzip.TotalCompressed(gz)

	// Inter-process merges, timed.
	t0 := time.Now()
	merged, err := merge.All(ctts, cfg.Workers)
	if err != nil {
		return nil, err
	}
	m.InterSec[MCypress] = time.Since(t0).Seconds()

	t0 = time.Now()
	ms1, err := scalatrace.MergeAll(tr1, scalatrace.V1, cfg.Workers)
	if err != nil {
		return nil, err
	}
	m.InterSec[MScala] = time.Since(t0).Seconds()

	t0 = time.Now()
	ms2, err := scalatrace.MergeAll(tr2, scalatrace.V2, cfg.Workers)
	if err != nil {
		return nil, err
	}
	m.InterSec[MScala2] = time.Since(t0).Seconds()

	// Final trace sizes.
	m.Sizes[MCypress], err = merged.Encode(io.Discard)
	if err != nil {
		return nil, err
	}
	m.Sizes[MCypressGzip], err = merged.EncodeGzip(io.Discard)
	if err != nil {
		return nil, err
	}
	m.Sizes[MScala], err = ms1.Encode(io.Discard)
	if err != nil {
		return nil, err
	}
	m.Sizes[MScala2], err = ms2.Encode(io.Discard)
	if err != nil {
		return nil, err
	}
	m.Sizes[MScala2Gzip], err = ms2.EncodeGzip(io.Discard)
	if err != nil {
		return nil, err
	}
	return m, nil
}

func kb(b int64) float64 { return float64(b) / 1024 }
