// Package bench regenerates every table and figure of the paper's evaluation
// (Section VII): trace sizes under six compression methods (Fig 15, 19),
// intra-process compression time/memory overhead (Fig 16), communication
// matrices (Fig 17, 20), inter-process merge cost (Fig 18), compilation
// overhead of the CST pass (Table I), and trace-driven performance
// prediction (Fig 21), plus ablations of CYPRESS's design choices.
//
// Absolute numbers differ from the paper (the substrate is a simulator, not
// the Explorer-100 cluster); the harness is built to reproduce the paper's
// shapes: orderings, growth trends, and crossovers. Intra-process time
// overhead uses the paper's own metric — wall-clock slowdown of the traced
// run relative to an untraced run.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baseline/rawgzip"
	"repro/internal/baseline/scalatrace"
	"repro/internal/cst"
	"repro/internal/ctt"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/merge"
	"repro/internal/mpisim"
	"repro/internal/npb"
	"repro/internal/timestat"
	"repro/internal/trace"
)

// Config controls experiment scale.
type Config struct {
	// Quick shrinks process counts and iterations for smoke runs and tests.
	Quick bool
	// Full extends process counts to the paper's largest (400/512).
	Full bool
	// Workers bounds merge parallelism (0 = GOMAXPROCS).
	Workers int
	// ParallelCells evaluates independent (workload, procs) cells of the
	// size figures concurrently. Off by default: the timing columns of
	// Figures 16 and 18 are only meaningful when cells do not compete for
	// cores, so fan-out is an explicit opt-in for size-only runs.
	ParallelCells bool
}

// procsFor selects the process-count axis for a workload.
func (c Config) procsFor(w *npb.Workload) []int {
	if c.Quick {
		for _, n := range []int{16, 12, 8} {
			if w.ValidProcs(n) {
				return []int{n}
			}
		}
		return w.Procs[:1]
	}
	if c.Full {
		return w.Procs
	}
	if len(w.Procs) > 3 {
		return w.Procs[:3]
	}
	return w.Procs
}

func (c Config) scale() npb.Scale {
	if c.Quick {
		return npb.Small
	}
	return npb.Paper
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, cfg Config) error
}

// Experiments returns the registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table I: compilation overhead of the CST pass", Table1},
		{"fig15", "Figure 15: total trace sizes, NPB x methods", Fig15},
		{"fig16", "Figure 16: intra-process compression overhead", Fig16},
		{"fig17", "Figure 17: communication patterns of MG and SP", Fig17},
		{"fig18", "Figure 18: inter-process compression overhead", Fig18},
		{"fig19", "Figure 19: LESlie3d trace sizes", Fig19},
		{"fig20", "Figure 20: LESlie3d communication patterns", Fig20},
		{"fig21", "Figure 21: LESlie3d performance prediction", Fig21},
		{"ablate", "Ablations: CYPRESS design choices", Ablations},
	}
}

// Get returns the experiment with the given id, or an error listing options.
func Get(id string) (Experiment, error) {
	var ids []string
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}

// Methods in figure order.
const (
	MGzip        = "Gzip"
	MScala       = "ScalaTrace"
	MScala2      = "ScalaTrace2"
	MScala2Gzip  = "ScalaTrace2+Gzip"
	MCypress     = "Cypress"
	MCypressGzip = "Cypress+Gzip"
)

// SizeMethods is the Figure 15 series order.
var SizeMethods = []string{MGzip, MScala, MScala2, MScala2Gzip, MCypress, MCypressGzip}

// Measured is the outcome of one (workload, P) evaluation under every method.
type Measured struct {
	Workload string
	Procs    int
	Events   int64   // total MPI events across ranks
	SimSec   float64 // synthetic application time (seconds)

	Sizes    map[string]int64   // method -> compressed trace bytes
	MemBytes map[string]int64   // method -> per-process compressor memory
	InterSec map[string]float64 // method -> inter-process merge seconds
}

// IntraMeasured is the outcome of the intra-process overhead experiment:
// wall-clock slowdown of the traced run relative to an untraced run, the
// paper's Figure 16 metric.
type IntraMeasured struct {
	Workload string
	Procs    int
	BaseSec  float64
	// SlowdownPct maps method -> 100 * (traced - base) / base.
	SlowdownPct map[string]float64
	// MemBytes maps method -> per-process compressor memory.
	MemBytes map[string]int64
}

// MeasureIntra runs the workload once untraced and once per method,
// reporting wall-clock slowdowns. Each timed run is repeated and the minimum
// is kept, which suppresses scheduler noise.
func MeasureIntra(w *npb.Workload, n int, cfg Config) (*IntraMeasured, error) {
	prog, tree, err := compileWorkload(w, n, cfg.scale())
	if err != nil {
		return nil, err
	}
	reps := 3
	if cfg.Quick {
		reps = 2
	}
	timeRun := func(reset func(), mk func(rank int) trace.Sink) (float64, error) {
		best := -1.0
		for r := 0; r < reps; r++ {
			if reset != nil {
				reset()
			}
			var sinks []trace.Sink
			if mk != nil {
				sinks = make([]trace.Sink, n)
				for i := range sinks {
					sinks[i] = mk(i)
				}
			}
			t0 := time.Now()
			if _, err := mpisim.Run(n, mpisim.DefaultParams(), sinks, func(r *mpisim.Rank) {
				interp.Execute(prog, r)
			}); err != nil {
				return 0, err
			}
			if d := time.Since(t0).Seconds(); best < 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	base, err := timeRun(nil, nil)
	if err != nil {
		return nil, err
	}
	out := &IntraMeasured{
		Workload:    w.Name,
		Procs:       n,
		BaseSec:     base,
		SlowdownPct: map[string]float64{},
		MemBytes:    map[string]int64{},
	}
	// Memory probes read the compressors of each method's FINAL timed rep.
	// The collector slices are reset at the start of every rep (the reset
	// hook below), so they hold exactly n live compressors afterwards —
	// previously they accumulated n compressors per rep, pinning every
	// warm-up rep's state in memory for the rest of the measurement.
	var lastCyp []*ctt.Compressor
	var lastSt1 []*scalatrace.Compressor
	methods := []struct {
		name  string
		reset func()
		mk    func(rank int) trace.Sink
	}{
		{MCypress, func() { lastCyp = lastCyp[:0] }, func(rank int) trace.Sink {
			c := ctt.NewCompressor(tree, rank, timestat.ModeMeanStddev)
			c.SetObs(obsSink)
			lastCyp = append(lastCyp, c)
			return c
		}},
		{MScala, func() { lastSt1 = lastSt1[:0] }, func(rank int) trace.Sink {
			c := scalatrace.NewCompressor(scalatrace.V1, rank, 0)
			lastSt1 = append(lastSt1, c)
			return c
		}},
		{MScala2, nil, func(rank int) trace.Sink {
			return scalatrace.NewCompressor(scalatrace.V2, rank, 0)
		}},
	}
	for _, meth := range methods {
		sec, err := timeRun(meth.reset, meth.mk)
		if err != nil {
			return nil, err
		}
		pct := 100 * (sec - base) / base
		if pct < 0 {
			pct = 0
		}
		out.SlowdownPct[meth.name] = pct
	}
	if len(lastCyp) != n || len(lastSt1) != n {
		return nil, fmt.Errorf("bench: memory probe saw %d/%d compressors, want %d", len(lastCyp), len(lastSt1), n)
	}
	var memCyp, memSt1 int64
	for _, c := range lastCyp {
		memCyp += c.MemoryBytes()
	}
	for _, c := range lastSt1 {
		memSt1 += c.MemoryBytes()
	}
	out.MemBytes[MCypress] = memCyp / int64(n)
	out.MemBytes[MScala] = memSt1 / int64(n)
	return out, nil
}

// fanout forwards one rank's stream to several sinks.
type fanout []trace.Sink

func (f fanout) LoopEnter(s int32) {
	for _, x := range f {
		x.LoopEnter(s)
	}
}
func (f fanout) LoopIter(s int32) {
	for _, x := range f {
		x.LoopIter(s)
	}
}
func (f fanout) BranchEnter(s int32, a int8) {
	for _, x := range f {
		x.BranchEnter(s, a)
	}
}
func (f fanout) BranchSkip(s int32) {
	for _, x := range f {
		x.BranchSkip(s)
	}
}
func (f fanout) CallEnter(s int32) {
	for _, x := range f {
		x.CallEnter(s)
	}
}
func (f fanout) StructExit() {
	for _, x := range f {
		x.StructExit()
	}
}
func (f fanout) CommSite(s int32) {
	for _, x := range f {
		x.CommSite(s)
	}
}
func (f fanout) Event(e *trace.Event) {
	for _, x := range f {
		// Each sink gets a private copy: compressors canonicalize in place.
		ev := *e
		if e.Reqs != nil {
			ev.Reqs = append([]int32(nil), e.Reqs...)
		}
		if e.ReqSrcs != nil {
			ev.ReqSrcs = append([]int32(nil), e.ReqSrcs...)
		}
		x.Event(&ev)
	}
}
func (f fanout) Finalize() {
	for _, x := range f {
		x.Finalize()
	}
}

// compileWorkload builds the CST for a workload instance.
func compileWorkload(w *npb.Workload, n int, s npb.Scale) (*lang.Program, *cst.Tree, error) {
	src := w.Source(n, s)
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, nil, fmt.Errorf("%s/%d: parse: %w", w.Name, n, err)
	}
	if _, err := lang.Check(prog); err != nil {
		return nil, nil, fmt.Errorf("%s/%d: check: %w", w.Name, n, err)
	}
	irProg, err := ir.Lower(prog)
	if err != nil {
		return nil, nil, fmt.Errorf("%s/%d: lower: %w", w.Name, n, err)
	}
	tree, err := cst.Build(irProg)
	if err != nil {
		return nil, nil, fmt.Errorf("%s/%d: cst: %w", w.Name, n, err)
	}
	return prog, tree, nil
}

// Measure runs one workload at one process count under every method.
func Measure(w *npb.Workload, n int, cfg Config) (*Measured, error) {
	prog, tree, err := compileWorkload(w, n, cfg.scale())
	if err != nil {
		return nil, err
	}
	cyp := make([]*ctt.Compressor, n)
	st1 := make([]*scalatrace.Compressor, n)
	st2 := make([]*scalatrace.Compressor, n)
	gz := make([]*rawgzip.Writer, n)
	sinks := make([]trace.Sink, n)
	for i := 0; i < n; i++ {
		cyp[i] = ctt.NewCompressor(tree, i, timestat.ModeMeanStddev)
		cyp[i].SetObs(obsSink)
		st1[i] = scalatrace.NewCompressor(scalatrace.V1, i, 0)
		st2[i] = scalatrace.NewCompressor(scalatrace.V2, i, 0)
		gz[i] = rawgzip.NewWriter()
		sinks[i] = fanout{cyp[i], st1[i], st2[i], gz[i]}
	}
	simNS, err := mpisim.Run(n, mpisim.DefaultParams(), sinks, func(r *mpisim.Rank) {
		interp.Execute(prog, r)
	})
	if err != nil {
		return nil, fmt.Errorf("%s/%d: run: %w", w.Name, n, err)
	}

	m := &Measured{
		Workload: w.Name,
		Procs:    n,
		SimSec:   simNS / 1e9,
		Sizes:    map[string]int64{},
		MemBytes: map[string]int64{},
		InterSec: map[string]float64{},
	}
	var memCyp, memSt1 int64
	for i := 0; i < n; i++ {
		memCyp += cyp[i].MemoryBytes()
		memSt1 += st1[i].MemoryBytes()
	}
	m.MemBytes[MCypress] = memCyp / int64(n)
	m.MemBytes[MScala] = memSt1 / int64(n)

	// Finish per-rank artifacts. Finishing is embarrassingly parallel (each
	// compressor owns its rank's state), and cycle detection plus peer-
	// pattern compression make it the most expensive post-run step at large
	// P, so it fans out over a bounded worker pool.
	ctts := make([]*ctt.RankCTT, n)
	tr1 := make([]*scalatrace.RankTrace, n)
	tr2 := make([]*scalatrace.RankTrace, n)
	parallelRanks(n, cfg.Workers, func(i int) {
		ctts[i] = cyp[i].Finish()
		tr1[i] = st1[i].Finish()
		tr2[i] = st2[i].Finish()
	})
	for i := 0; i < n; i++ {
		m.Events += ctts[i].EventCount
	}
	m.Sizes[MGzip] = rawgzip.TotalCompressed(gz)

	// Inter-process merges, timed.
	t0 := time.Now()
	merged, err := merge.All(ctts, cfg.Workers)
	if err != nil {
		return nil, err
	}
	m.InterSec[MCypress] = time.Since(t0).Seconds()

	t0 = time.Now()
	ms1, err := scalatrace.MergeAll(tr1, scalatrace.V1, cfg.Workers)
	if err != nil {
		return nil, err
	}
	m.InterSec[MScala] = time.Since(t0).Seconds()

	t0 = time.Now()
	ms2, err := scalatrace.MergeAll(tr2, scalatrace.V2, cfg.Workers)
	if err != nil {
		return nil, err
	}
	m.InterSec[MScala2] = time.Since(t0).Seconds()

	// Final trace sizes.
	m.Sizes[MCypress], err = merged.Encode(io.Discard)
	if err != nil {
		return nil, err
	}
	m.Sizes[MCypressGzip], err = merged.EncodeGzip(io.Discard)
	if err != nil {
		return nil, err
	}
	m.Sizes[MScala], err = ms1.Encode(io.Discard)
	if err != nil {
		return nil, err
	}
	m.Sizes[MScala2], err = ms2.Encode(io.Discard)
	if err != nil {
		return nil, err
	}
	m.Sizes[MScala2Gzip], err = ms2.EncodeGzip(io.Discard)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// parallelRanks runs fn(i) for every i in [0, n) on at most `workers`
// goroutines (0 = GOMAXPROCS). Work is distributed by an atomic counter so
// stragglers do not serialize behind a static partition.
func parallelRanks(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// cell is one (workload, process count) point of an experiment grid.
type cell struct {
	wl *npb.Workload
	n  int
}

// cells expands the configured process-count axis of each workload.
func cells(wls []*npb.Workload, cfg Config) []cell {
	var out []cell
	for _, wl := range wls {
		for _, n := range cfg.procsFor(wl) {
			out = append(out, cell{wl, n})
		}
	}
	return out
}

// measureCells evaluates every cell under Measure and returns results in
// input order. Sequential by default; with cfg.ParallelCells the cells run
// under a bounded worker pool (cfg.Workers, 0 = GOMAXPROCS). Parallel cells
// contend for cores, so the InterSec timings of concurrent cells are noisy —
// callers that print timing columns should document that -par trades timing
// fidelity for wall-clock speed. The first error wins; remaining cells still
// finish (each worker drains its queue) but their results are discarded.
func measureCells(cs []cell, cfg Config) ([]*Measured, error) {
	out := make([]*Measured, len(cs))
	if !cfg.ParallelCells || len(cs) < 2 {
		for i, c := range cs {
			m, err := Measure(c.wl, c.n, cfg)
			if err != nil {
				return nil, err
			}
			out[i] = m
		}
		return out, nil
	}
	var firstErr atomic.Pointer[error]
	parallelRanks(len(cs), cfg.Workers, func(i int) {
		m, err := Measure(cs[i].wl, cs[i].n, cfg)
		if err != nil {
			err = fmt.Errorf("%s/%d: %w", cs[i].wl.Name, cs[i].n, err)
			firstErr.CompareAndSwap(nil, &err)
			return
		}
		out[i] = m
	})
	if ep := firstErr.Load(); ep != nil {
		return nil, *ep
	}
	return out, nil
}

func kb(b int64) float64 { return float64(b) / 1024 }
