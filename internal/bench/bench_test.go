package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/npb"
)

func TestRegistryAndGet(t *testing.T) {
	exps := Experiments()
	if len(exps) != 9 {
		t.Fatalf("experiments = %d", len(exps))
	}
	for _, e := range exps {
		got, err := Get(e.ID)
		if err != nil || got.ID != e.ID {
			t.Fatalf("Get(%q) = %v, %v", e.ID, got.ID, err)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestEveryExperimentRunsQuick executes each experiment end to end at smoke
// scale and sanity-checks its report.
func TestEveryExperimentRunsQuick(t *testing.T) {
	mustContain := map[string][]string{
		"table1": {"Overhead(%)", "LESlie3d"},
		"fig15":  {"Cypress+Gzip", "SP", "LU"},
		"fig16":  {"Cypress t%", "MG"},
		"fig17":  {"nonzero pairs"},
		"fig18":  {"vs ST1"},
		"fig19":  {"Procs"},
		"fig20":  {"distinct message sizes"},
		"fig21":  {"average prediction error"},
		"ablate": {"relative OFF", "parallel", "histogram"},
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, Config{Quick: true}); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) < 40 {
				t.Fatalf("%s produced almost no output:\n%s", e.ID, out)
			}
			for _, frag := range mustContain[e.ID] {
				if !strings.Contains(out, frag) {
					t.Fatalf("%s output missing %q:\n%s", e.ID, frag, out)
				}
			}
		})
	}
}

func TestProcsForRespectsModes(t *testing.T) {
	wl := npb.Get("LU")
	quick := Config{Quick: true}.procsFor(wl)
	if len(quick) != 1 || quick[0] > 16 {
		t.Fatalf("quick procs = %v", quick)
	}
	def := Config{}.procsFor(wl)
	if len(def) != 3 {
		t.Fatalf("default procs = %v", def)
	}
	full := Config{Full: true}.procsFor(wl)
	if len(full) != len(wl.Procs) {
		t.Fatalf("full procs = %v", full)
	}
}

func TestMeasureConservesEvents(t *testing.T) {
	wl := npb.Get("CG")
	m, err := Measure(wl, 8, Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Events == 0 || m.SimSec <= 0 {
		t.Fatalf("bad measurement: %+v", m)
	}
	for _, meth := range SizeMethods {
		if m.Sizes[meth] <= 0 {
			t.Fatalf("method %s has no size", meth)
		}
	}
	// Cypress must beat raw Gzip on a regular workload.
	if m.Sizes[MCypress] >= m.Sizes[MGzip] {
		t.Fatalf("Cypress %d >= Gzip %d on CG", m.Sizes[MCypress], m.Sizes[MGzip])
	}
}

func TestMeasureIntraShapes(t *testing.T) {
	wl := npb.Get("FT")
	m, err := MeasureIntra(wl, 8, Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.BaseSec <= 0 {
		t.Fatal("no base time")
	}
	for _, meth := range []string{MCypress, MScala, MScala2} {
		if m.SlowdownPct[meth] < 0 {
			t.Fatalf("%s slowdown negative", meth)
		}
	}
	if m.MemBytes[MCypress] <= 0 || m.MemBytes[MScala] <= 0 {
		t.Fatal("memory probes missing")
	}
}
