package bench

// Flight-recorder capture of the observed pipeline: the same 64-rank
// wraparound-ring pass that backs the -benchjson obs report, but with a
// trace recorder wired into every stage so the result is a Perfetto-loadable
// timeline exercising every category (compress, merge, codec, blockio
// enc/dec, corpus, replay, sim) with real worker swimlanes. Shared by
// `cypressbench -trace` and the fixture-capture CI test.

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"repro/internal/blockio"
	"repro/internal/corpus"
	"repro/internal/ctt"
	"repro/internal/merge"
	"repro/internal/mpisim"
	ftrace "repro/internal/obs/trace"
	"repro/internal/simmpi"
)

// EnableTrace attaches r to every pipeline stage the bench harness
// exercises, mirroring EnableObs. Pass nil to detach.
func EnableTrace(r *ftrace.Recorder) {
	ctt.SetTrace(r)
	merge.SetTrace(r)
	simmpi.SetTrace(r)
	blockio.SetTrace(r)
	corpus.SetTrace(r)
}

// Worker counts of the traced pipeline's parallel stages. Small fixed values
// rather than GOMAXPROCS so the captured swimlane set is stable across
// machines (the CI fixture asserts per-worker lanes exist).
const (
	captureEncWorkers = 4
	captureDecWorkers = 2
	captureSimWorkers = 4
	captureFrameSize  = 1 << 12 // small frames so several flow through every worker
)

// TracedPipeline runs one full pipeline pass — compress, merge, blocked
// container encode/decode (parallel frame workers), corpus ingest/get,
// streaming replay, parallel LogGP simulation — with r recording, and
// detaches the recorder before returning. The pass mirrors observePipeline;
// it is deliberately its traced twin so the timeline corresponds to the
// counters the obs report shows.
func TracedPipeline(r *ftrace.Recorder) error {
	EnableTrace(r)
	defer EnableTrace(nil)
	ctts, err := ringCTTs(64, 24)
	if err != nil {
		return err
	}
	m, err := merge.All(ctts, 0)
	if err != nil {
		return err
	}
	// Blocked container round-trip: deflate lanes on encode, inflate lanes
	// on decode.
	var blocked bytes.Buffer
	if _, err := m.EncodeBlockedFrames(&blocked, captureEncWorkers, captureFrameSize); err != nil {
		return err
	}
	if _, err := merge.DecodePar(bytes.NewReader(blocked.Bytes()), captureDecWorkers); err != nil {
		return err
	}
	// The merged fixture trace compresses to under one frame, so the real
	// round-trip above exercises the container code path but lights up only
	// one worker swimlane. Soak the container with enough incompressible
	// frames that every deflate and inflate worker records traffic.
	if err := containerSoak(); err != nil {
		return err
	}
	// Corpus pass: two structurally-identical runs (full then delta ingest),
	// then a cold and a warm Get.
	if err := tracedCorpus(); err != nil {
		return err
	}
	// Replay skeletons + parallel simulation windows.
	st := merge.NewStreamer(m)
	if err := st.Prepare(0); err != nil {
		return err
	}
	srcs := make([]simmpi.EventSource, st.NumRanks())
	for rk := range srcs {
		cur, err := st.Cursor(rk)
		if err != nil {
			return err
		}
		srcs[rk] = cur
	}
	_, err = simmpi.SimulateStreamPar(srcs, mpisim.DefaultParams(), captureSimWorkers)
	return err
}

// containerSoak round-trips a deterministic pseudo-random payload through a
// blocked container: 32 frames of LCG noise resist deflate enough that the
// worker pools stay busy and every enc/dec lane shows up in the capture.
func containerSoak() error {
	const frames = 32
	payload := make([]byte, frames*captureFrameSize)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range payload {
		x = x*6364136223846793005 + 1442695040888963407
		payload[i] = byte(x >> 56)
	}
	var buf bytes.Buffer
	w, err := blockio.NewWriter(&buf, blockio.WriterOptions{FrameSize: captureFrameSize, Workers: captureEncWorkers})
	if err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	r, err := blockio.NewReader(bytes.NewReader(buf.Bytes()), blockio.ReaderOptions{Workers: captureDecWorkers})
	if err != nil {
		return err
	}
	got, err := io.ReadAll(r)
	if cerr := r.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if !bytes.Equal(got, payload) {
		return fmt.Errorf("bench: container soak round-trip mismatch")
	}
	return nil
}

// tracedCorpus is observeCorpus's traced twin: two offset runs of the ring
// (the second ingests as a delta), then a miss Get and a hit Get.
func tracedCorpus() error {
	dir, err := os.MkdirTemp("", "cypress-corpus-trace-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := corpus.Open(dir, corpus.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	var last uint64
	for run := 0; run < 2; run++ {
		ctts, err := ringCTTsOff(64, 24, int64(3*run))
		if err != nil {
			return err
		}
		m, err := merge.All(ctts, 0)
		if err != nil {
			return err
		}
		if last, err = st.Ingest(m); err != nil {
			return err
		}
	}
	for i := 0; i < 2; i++ { // miss, then hit
		tr, err := st.Get(last)
		if err != nil {
			return err
		}
		tr.Release()
	}
	return nil
}
