package bench

// Corpus microbenchmarks (internal/corpus): cross-run structural dedup
// sizing, ingest throughput, and cold-versus-warm serving of decoded
// traces. The sizing fixture is a record-rich 1024-rank multi-phase
// exchange re-run eight times with shifted network constants — identical
// communication structure, different timing payload, the repeated-campaign
// shape the corpus exists for. The prediction benchmarks use the wraparound
// ring instead, because its sends and recvs pair up into a simulatable
// schedule.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/cst"
	"repro/internal/ctt"
	"repro/internal/merge"
	"repro/internal/mpisim"
	"repro/internal/simmpi"
	"repro/internal/timestat"
	"repro/internal/trace"
)

// corpusRuns is the run count of the sizing and ingest benchmarks, matching
// the PR's acceptance criterion (8 same-workload runs).
const corpusRuns = 8

// observeCorpus runs a small corpus pass under the currently-enabled sink —
// two offset runs of the 64-rank ring plus a cold and a warm Get — so dedup
// ratios and cache hit rates appear in the -benchjson counter report next to
// the pipeline stages.
func observeCorpus() error {
	dir, err := os.MkdirTemp("", "cypress-corpus-obs-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := corpus.Open(dir, corpus.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	var last uint64
	for run := 0; run < 2; run++ {
		ctts, err := ringCTTsOff(64, 24, int64(3*run))
		if err != nil {
			return err
		}
		m, err := merge.All(ctts, 0)
		if err != nil {
			return err
		}
		if last, err = st.Ingest(m); err != nil {
			return err
		}
	}
	for i := 0; i < 2; i++ { // miss, then hit
		tr, err := st.Get(last)
		if err != nil {
			return err
		}
		tr.Release()
	}
	return nil
}

// corpusSrc is the structure-rich multi-phase exchange behind the sizing
// and serving benchmarks — the same workload shape as the acceptance tests
// in internal/corpus (13 communication sites across seven phases, so the
// payload stream is large enough that per-run record overheads do not
// dominate the dedup arithmetic the way they would on the 3-site ring).
const corpusSrc = `
func main() {
	for var k = 0; k < 16; k = k + 1 {
		send((rank + 1) % size, 512, 1);
		compute(20000);
		recv((rank + size - 1) % size, 512, 1);
		send((rank + 2) % size, 1024, 2);
		compute(20000);
		recv((rank + size - 2) % size, 1024, 2);
		send((rank + 3) % size, 256, 3);
		compute(20000);
		recv((rank + size - 3) % size, 256, 3);
		allreduce(8);
		send((rank + 1) % size, 2048, 4);
		compute(20000);
		recv((rank + size - 1) % size, 2048, 4);
		bcast(0, 4096);
		send((rank + 2) % size, 128, 5);
		compute(20000);
		recv((rank + size - 2) % size, 128, 5);
		reduce(0, 16);
		send((rank + 4) % size, 768, 6);
		compute(20000);
		recv((rank + size - 4) % size, 768, 6);
		send((rank + 5) % size, 1536, 7);
		compute(20000);
		recv((rank + size - 5) % size, 1536, 7);
		allreduce(64);
	}
	barrier();
}`

// multiPhaseCTTs drives every rank's compressor directly over the corpusSrc
// tree — 4 loop iterations over all non-barrier comm sites, barrier after
// the loop — with all durations shifted by offNS, like ringCTTsOff but on
// the record-rich fixture. Peers wrap modulo n but tags are per-site, so
// the trace measures codec and store costs, not a simulatable schedule.
func multiPhaseCTTs(n int, offNS int64) ([]*ctt.RankCTT, error) {
	_, tree, err := compileSrc(corpusSrc)
	if err != nil {
		return nil, err
	}
	var loop *cst.Vertex
	var sites []*cst.Vertex
	tree.Walk(func(v *cst.Vertex, _ int) {
		switch v.Kind {
		case cst.KindLoop:
			if loop == nil {
				loop = v
			}
		case cst.KindComm:
			sites = append(sites, v)
		}
	})
	if loop == nil || len(sites) == 0 {
		return nil, fmt.Errorf("micro: multi-phase tree missing vertices")
	}
	off := float64(offNS)
	out := make([]*ctt.RankCTT, n)
	var ev trace.Event
	for r := 0; r < n; r++ {
		c := ctt.NewCompressor(tree, r, timestat.ModeMeanStddev)
		c.LoopEnter(int32(loop.Site))
		for k := 0; k < 4; k++ {
			c.LoopIter(int32(loop.Site))
			for si, v := range sites {
				if v.Op == trace.OpBarrier {
					continue // emitted after the loop
				}
				peer := trace.NoPeer
				switch v.Op {
				case trace.OpSend:
					peer = (r + 1 + si) % n
				case trace.OpRecv:
					peer = (r + n - 1 - si) % n
				}
				c.CommSite(int32(v.Site))
				ev = trace.Event{
					Op: v.Op, Peer: peer, Size: 256 + 16*si, Tag: si, ReqID: -1,
					DurationNS: 1500 + float64(100*si) + off, ComputeNS: 40,
				}
				c.Event(&ev)
			}
		}
		c.StructExit()
		for _, v := range sites {
			if v.Op != trace.OpBarrier {
				continue
			}
			c.CommSite(int32(v.Site))
			ev = trace.Event{Op: trace.OpBarrier, Peer: trace.NoPeer, ReqID: -1,
				DurationNS: 900 + off}
			c.Event(&ev)
		}
		c.Finalize()
		out[r] = c.Finish()
	}
	return out, nil
}

// multiPhaseRunEncodings returns the standalone v1 encodings of `runs`
// repeated 1024-rank multi-phase runs, durations shifted by 3ns per run.
func multiPhaseRunEncodings(b *testing.B, runs int) [][]byte {
	b.Helper()
	encs := make([][]byte, runs)
	for run := 0; run < runs; run++ {
		ctts, err := multiPhaseCTTs(1024, int64(3*run))
		if err != nil {
			b.Fatal(err)
		}
		m, err := merge.All(ctts, 0)
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := m.Encode(&buf); err != nil {
			b.Fatal(err)
		}
		encs[run] = buf.Bytes()
	}
	return encs
}

// BenchCorpusIngest1024 measures ingest throughput: eight pre-encoded
// 1024-rank runs pushed through split, class lookup, delta verification,
// and the store's append log per op, into a fresh corpus each time. The
// bytes/op metric is the logical trace volume ingested per op.
func BenchCorpusIngest1024(b *testing.B) {
	encs := multiPhaseRunEncodings(b, corpusRuns)
	var logical int64
	for _, e := range encs {
		logical += int64(len(e))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		st, err := corpus.Open(dir, corpus.Options{CacheBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range encs {
			if _, err := st.IngestBytes(e); err != nil {
				b.Fatal(err)
			}
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(logical), "bytes/op")
}

// BenchCorpusBytes1024 reports the sizing comparison behind the PR's
// acceptance criterion rather than a meaningful time: each op stores the
// eight runs and measures the sealed corpus directory, and the ratio/op
// metric is (8 standalone blocked encodings) / (corpus bytes) — ≥4 means
// structural dedup plus payload deltas beat per-run files at least
// fourfold.
func BenchCorpusBytes1024(b *testing.B) {
	encs := multiPhaseRunEncodings(b, corpusRuns)
	var standalone int64
	for _, e := range encs {
		m, err := merge.Decode(bytes.NewReader(e))
		if err != nil {
			b.Fatal(err)
		}
		var blocked bytes.Buffer
		if _, err := m.EncodeBlocked(&blocked, 1); err != nil {
			b.Fatal(err)
		}
		standalone += int64(blocked.Len())
	}
	var corpusBytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		st, err := corpus.Open(dir, corpus.Options{CacheBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range encs {
			if _, err := st.IngestBytes(e); err != nil {
				b.Fatal(err)
			}
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		corpusBytes = dirSize(b, dir)
		b.StartTimer()
	}
	b.ReportMetric(float64(corpusBytes), "corpus_bytes/op")
	b.ReportMetric(float64(standalone), "standalone_bytes/op")
	b.ReportMetric(float64(standalone)/float64(corpusBytes), "ratio/op")
}

func dirSize(b *testing.B, dir string) int64 {
	b.Helper()
	var total int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			total += info.Size()
		}
		return err
	})
	if err != nil {
		b.Fatal(err)
	}
	return total
}

// ringRunEncoding returns the standalone encoding of one 1024-rank ring
// run, the simulatable fixture behind the corpus prediction benchmarks.
func ringRunEncoding(b *testing.B) []byte {
	b.Helper()
	ctts, err := ringCTTs(1024, 24)
	if err != nil {
		b.Fatal(err)
	}
	m, err := merge.All(ctts, 0)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.Encode(&buf); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// corpusWith ingests one encoded trace into a fresh store and returns the
// store and the trace's content address.
func corpusWith(b *testing.B, cacheBytes int64, enc []byte) (*corpus.Store, uint64) {
	b.Helper()
	st, err := corpus.Open(b.TempDir(), corpus.Options{CacheBytes: cacheBytes})
	if err != nil {
		b.Fatal(err)
	}
	h, err := st.IngestBytes(enc)
	if err != nil {
		b.Fatal(err)
	}
	return st, h
}

// BenchCorpusGetCold1024 measures a cache-disabled Get: every op pays the
// full reconstruct-and-decode path (segment read, payload patch, v1
// decode).
func BenchCorpusGetCold1024(b *testing.B) {
	st, h := corpusWith(b, -1, multiPhaseRunEncodings(b, 1)[0])
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := st.Get(h)
		if err != nil {
			b.Fatal(err)
		}
		tr.Release()
	}
}

// BenchCorpusGetWarm1024 measures a warm Get against the resident cache
// entry: a map lookup and a pin under one mutex — zero allocations, no
// decode.
func BenchCorpusGetWarm1024(b *testing.B) {
	st, h := corpusWith(b, 64<<20, multiPhaseRunEncodings(b, 1)[0])
	defer st.Close()
	tr, err := st.Get(h) // decode once; stays resident after release
	if err != nil {
		b.Fatal(err)
	}
	tr.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := st.Get(h)
		if err != nil {
			b.Fatal(err)
		}
		tr.Release()
	}
}

// benchCorpusPredict runs the full corpus-served prediction pipeline per
// op: Get, streamer, per-rank cursors, LogGP simulation. Cold serving
// (cache disabled) re-decodes and rebuilds selection-class skeletons every
// op; warm serving shares the resident decode and its memoized streamer, so
// an op pays only cursor pulls and simulation — the difference is the
// serving cache's whole value proposition.
func benchCorpusPredict(b *testing.B, cacheBytes int64) {
	st, h := corpusWith(b, cacheBytes, ringRunEncoding(b))
	defer st.Close()
	if cacheBytes > 0 {
		tr, err := st.Get(h)
		if err != nil {
			b.Fatal(err)
		}
		if err := tr.Streamer().Prepare(0); err != nil {
			b.Fatal(err)
		}
		tr.Release()
	}
	params := mpisim.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := st.Get(h)
		if err != nil {
			b.Fatal(err)
		}
		s := tr.Streamer()
		if err := s.Prepare(0); err != nil {
			b.Fatal(err)
		}
		n := tr.Merged.NumRanks
		srcs := make([]simmpi.EventSource, n)
		for rank := range srcs {
			cur, err := s.Cursor(rank)
			if err != nil {
				b.Fatal(err)
			}
			srcs[rank] = cur
		}
		if _, err := simmpi.SimulateStream(srcs, params); err != nil {
			b.Fatal(err)
		}
		tr.Release()
	}
	b.ReportMetric(1024, "ranks/op")
}

// BenchCorpusPredictCold1024 predicts from an uncached corpus Get.
func BenchCorpusPredictCold1024(b *testing.B) { benchCorpusPredict(b, -1) }

// BenchCorpusPredictWarm1024 predicts from a warm corpus Get.
func BenchCorpusPredictWarm1024(b *testing.B) { benchCorpusPredict(b, 64<<20) }
