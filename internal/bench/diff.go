package bench

// Bench regression diffing: parse two benchmark JSON documents — a fresh
// `cypressbench -benchjson` MicroReport or a checked-in BENCH_pr*.json
// trajectory file, both schemas accepted — match benchmarks by name, and
// report per-benchmark ns/op and allocs/op deltas against a threshold. This
// is the repo's first automated perf-regression signal: scripts/benchdiff.go
// and `cypressbench -compare` are thin CLIs over this package.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// BenchPoint is one benchmark's measurements, schema-normalized.
type BenchPoint struct {
	Name        string
	NsPerOp     float64
	AllocsPerOp int64
	BytesPerOp  int64
}

// benchEntry covers both on-disk schemas for one benchmark element:
//   - MicroReport v2 / v1: {"name", "ns_per_op", "allocs_per_op", ...} flat
//   - BENCH_pr* trajectory: {"name", "before": {...}, "after": {...}} nested
//
// When an "after" object is present it wins (the trajectory files record the
// PR's end state there); otherwise the flat fields are used.
type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	After       *struct {
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
	} `json:"after"`
}

func (e *benchEntry) point() BenchPoint {
	p := BenchPoint{Name: e.Name, NsPerOp: e.NsPerOp, AllocsPerOp: e.AllocsPerOp, BytesPerOp: e.BytesPerOp}
	if e.After != nil {
		p.NsPerOp = e.After.NsPerOp
		p.AllocsPerOp = e.After.AllocsPerOp
		p.BytesPerOp = e.After.BytesPerOp
	}
	return p
}

// ParseBenchJSON reads one benchmark document in any of the three layouts
// the repo has shipped: a v1 bare array of results, a v2 MicroReport with a
// "benchmarks" array, or a BENCH_pr* trajectory (also a "benchmarks" array,
// with nested before/after). Returns the normalized points keyed by name.
func ParseBenchJSON(r io.Reader) (map[string]BenchPoint, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var entries []benchEntry
	var doc struct {
		Benchmarks []benchEntry `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err == nil && doc.Benchmarks != nil {
		entries = doc.Benchmarks
	} else if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("bench: unrecognized benchmark JSON: %w", err)
	}
	out := make(map[string]BenchPoint, len(entries))
	for i := range entries {
		if entries[i].Name == "" {
			return nil, fmt.Errorf("bench: benchmark entry %d has no name", i)
		}
		out[entries[i].Name] = entries[i].point()
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: no benchmarks in document")
	}
	return out, nil
}

// ParseBenchFile is ParseBenchJSON over a file path.
func ParseBenchFile(path string) (map[string]BenchPoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pts, err := ParseBenchJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return pts, nil
}

// PointsOf normalizes an in-process micro run for diffing, keyed by name.
func PointsOf(results []MicroResult) map[string]BenchPoint {
	out := make(map[string]BenchPoint, len(results))
	for _, r := range results {
		out[r.Name] = BenchPoint{Name: r.Name, NsPerOp: r.NsPerOp, AllocsPerOp: r.AllocsPerOp, BytesPerOp: r.BytesPerOp}
	}
	return out
}

// DiffEntry is one matched benchmark's delta.
type DiffEntry struct {
	Name       string
	Base, Cur  BenchPoint
	NsRatio    float64 // cur/base ns_per_op (1.0 = unchanged; +Inf when base 0)
	AllocDelta int64   // cur - base allocs_per_op
}

// Regressed reports whether the entry breaches the thresholds: ns/op grew by
// more than nsFrac (e.g. 0.25 = +25%) or allocs/op grew at all beyond
// allocSlack.
func (d *DiffEntry) Regressed(nsFrac float64, allocSlack int64) bool {
	return d.NsRatio > 1+nsFrac || d.AllocDelta > allocSlack
}

// BenchDiff is the comparison of a current run against a baseline.
type BenchDiff struct {
	Matched  []DiffEntry // name-matched benchmarks, sorted by worst ns ratio
	BaseOnly []string    // in baseline but missing from the current run
	CurOnly  []string    // new benchmarks with no baseline
}

// Diff matches cur against base by benchmark name.
func Diff(base, cur map[string]BenchPoint) *BenchDiff {
	d := &BenchDiff{}
	for name, b := range base {
		c, ok := cur[name]
		if !ok {
			d.BaseOnly = append(d.BaseOnly, name)
			continue
		}
		e := DiffEntry{Name: name, Base: b, Cur: c, AllocDelta: c.AllocsPerOp - b.AllocsPerOp}
		switch {
		case b.NsPerOp > 0:
			e.NsRatio = c.NsPerOp / b.NsPerOp
		case c.NsPerOp == 0:
			e.NsRatio = 1
		default:
			e.NsRatio = math.Inf(1)
		}
		d.Matched = append(d.Matched, e)
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			d.CurOnly = append(d.CurOnly, name)
		}
	}
	sort.Slice(d.Matched, func(i, j int) bool {
		if d.Matched[i].NsRatio != d.Matched[j].NsRatio {
			return d.Matched[i].NsRatio > d.Matched[j].NsRatio
		}
		return d.Matched[i].Name < d.Matched[j].Name
	})
	sort.Strings(d.BaseOnly)
	sort.Strings(d.CurOnly)
	return d
}

// Regressions returns the matched entries breaching the thresholds.
func (d *BenchDiff) Regressions(nsFrac float64, allocSlack int64) []DiffEntry {
	var out []DiffEntry
	for _, e := range d.Matched {
		if e.Regressed(nsFrac, allocSlack) {
			out = append(out, e)
		}
	}
	return out
}

// WriteText renders the diff as an aligned table, flagging entries beyond
// the thresholds. Returns the number of regressions.
func (d *BenchDiff) WriteText(w io.Writer, nsFrac float64, allocSlack int64) (int, error) {
	regressed := 0
	if len(d.Matched) > 0 {
		fmt.Fprintf(w, "%-28s %14s %14s %8s %9s %9s\n",
			"benchmark", "base ns/op", "cur ns/op", "ratio", "allocs Δ", "")
		for _, e := range d.Matched {
			flag := ""
			if e.Regressed(nsFrac, allocSlack) {
				flag = "REGRESSED"
				regressed++
			} else if e.NsRatio < 1-nsFrac {
				flag = "improved"
			}
			fmt.Fprintf(w, "%-28s %14.1f %14.1f %8.3f %+9d %9s\n",
				e.Name, e.Base.NsPerOp, e.Cur.NsPerOp, e.NsRatio, e.AllocDelta, flag)
		}
	}
	for _, name := range d.BaseOnly {
		fmt.Fprintf(w, "%-28s missing from current run\n", name)
	}
	for _, name := range d.CurOnly {
		fmt.Fprintf(w, "%-28s new (no baseline)\n", name)
	}
	fmt.Fprintf(w, "%d compared, %d regressions (threshold ns/op +%.0f%%, allocs/op +%d)\n",
		len(d.Matched), regressed, nsFrac*100, allocSlack)
	return regressed, nil
}
