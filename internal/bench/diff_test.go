package bench

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchJSONMicroReport(t *testing.T) {
	doc := `{
	  "schema": 2,
	  "benchmarks": [
	    {"name": "CompressorEvent", "iterations": 100, "ns_per_op": 250.5, "allocs_per_op": 24, "bytes_per_op": 512},
	    {"name": "ReplayRank", "ns_per_op": 9000, "allocs_per_op": 0, "bytes_per_op": 0}
	  ]
	}`
	pts, err := ParseBenchJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("parsed %d points, want 2", len(pts))
	}
	p := pts["CompressorEvent"]
	if p.NsPerOp != 250.5 || p.AllocsPerOp != 24 || p.BytesPerOp != 512 {
		t.Fatalf("flat schema parsed wrong: %+v", p)
	}
}

func TestParseBenchJSONTrajectory(t *testing.T) {
	// BENCH_pr* layout: nested before/after; "after" must win.
	doc := `{
	  "benchmarks": [
	    {"name": "MergeAll1024",
	     "before": {"ns_per_op": 900000, "allocs_per_op": 5000},
	     "after":  {"ns_per_op": 450000, "allocs_per_op": 2086, "bytes_per_op": 7}}
	  ]
	}`
	pts, err := ParseBenchJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	p := pts["MergeAll1024"]
	if p.NsPerOp != 450000 || p.AllocsPerOp != 2086 || p.BytesPerOp != 7 {
		t.Fatalf("nested after not preferred: %+v", p)
	}
}

func TestParseBenchJSONBareArray(t *testing.T) {
	doc := `[{"name": "Encode", "ns_per_op": 10, "allocs_per_op": 1}]`
	pts, err := ParseBenchJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if pts["Encode"].NsPerOp != 10 {
		t.Fatalf("v1 bare array parsed wrong: %+v", pts["Encode"])
	}
}

func TestParseBenchJSONRejectsMalformed(t *testing.T) {
	for name, doc := range map[string]string{
		"not json":   "nope",
		"empty":      `{"benchmarks": []}`,
		"unnamed":    `[{"ns_per_op": 10}]`,
		"wrong kind": `{"benchmarks": 3}`,
	} {
		if _, err := ParseBenchJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("ParseBenchJSON accepted %s", name)
		}
	}
}

// TestParseCheckedInBaseline pins the real BENCH_pr8.json the CI benchdiff
// job diffs against: it must stay parseable with non-zero measurements.
func TestParseCheckedInBaseline(t *testing.T) {
	pts, err := ParseBenchFile(filepath.Join("..", "..", "BENCH_pr8.json"))
	if err != nil {
		if os.IsNotExist(err) {
			t.Skip("BENCH_pr8.json not present")
		}
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("baseline parsed to zero benchmarks")
	}
	for name, p := range pts {
		if p.NsPerOp <= 0 {
			t.Errorf("baseline %s has ns_per_op %f", name, p.NsPerOp)
		}
	}
}

func TestDiffRatiosAndRegressions(t *testing.T) {
	base := map[string]BenchPoint{
		"steady":  {Name: "steady", NsPerOp: 100, AllocsPerOp: 5},
		"slower":  {Name: "slower", NsPerOp: 100, AllocsPerOp: 5},
		"faster":  {Name: "faster", NsPerOp: 100, AllocsPerOp: 5},
		"allocs":  {Name: "allocs", NsPerOp: 100, AllocsPerOp: 5},
		"removed": {Name: "removed", NsPerOp: 100},
	}
	cur := map[string]BenchPoint{
		"steady": {Name: "steady", NsPerOp: 105, AllocsPerOp: 5},
		"slower": {Name: "slower", NsPerOp: 200, AllocsPerOp: 5},
		"faster": {Name: "faster", NsPerOp: 40, AllocsPerOp: 5},
		"allocs": {Name: "allocs", NsPerOp: 100, AllocsPerOp: 9},
		"added":  {Name: "added", NsPerOp: 7},
	}
	d := Diff(base, cur)
	if len(d.Matched) != 4 {
		t.Fatalf("matched %d, want 4", len(d.Matched))
	}
	// Sorted worst ns ratio first.
	if d.Matched[0].Name != "slower" || math.Abs(d.Matched[0].NsRatio-2.0) > 1e-9 {
		t.Fatalf("worst entry = %+v, want slower at 2.0", d.Matched[0])
	}
	if got := d.BaseOnly; len(got) != 1 || got[0] != "removed" {
		t.Fatalf("BaseOnly = %v", got)
	}
	if got := d.CurOnly; len(got) != 1 || got[0] != "added" {
		t.Fatalf("CurOnly = %v", got)
	}
	regs := d.Regressions(0.25, 0)
	if len(regs) != 2 {
		t.Fatalf("Regressions = %v, want slower and allocs", regs)
	}
	names := map[string]bool{}
	for _, r := range regs {
		names[r.Name] = true
	}
	if !names["slower"] || !names["allocs"] {
		t.Fatalf("wrong regressions: %v", names)
	}
	// Alloc slack forgives the alloc-only regression.
	if regs := d.Regressions(0.25, 4); len(regs) != 1 || regs[0].Name != "slower" {
		t.Fatalf("alloc slack not honored: %v", regs)
	}

	var buf bytes.Buffer
	n, err := d.WriteText(&buf, 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("WriteText regression count = %d, want 2", n)
	}
	out := buf.String()
	for _, want := range []string{"REGRESSED", "improved", "missing from current run", "new (no baseline)", "4 compared, 2 regressions"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff report missing %q:\n%s", want, out)
		}
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	base := map[string]BenchPoint{"z": {Name: "z", NsPerOp: 0}}
	cur := map[string]BenchPoint{"z": {Name: "z", NsPerOp: 10}}
	d := Diff(base, cur)
	if !math.IsInf(d.Matched[0].NsRatio, 1) {
		t.Fatalf("zero baseline ratio = %f, want +Inf", d.Matched[0].NsRatio)
	}
	base["z"] = BenchPoint{Name: "z", NsPerOp: 0}
	cur["z"] = BenchPoint{Name: "z", NsPerOp: 0}
	if d := Diff(base, cur); d.Matched[0].NsRatio != 1 {
		t.Fatalf("zero/zero ratio = %f, want 1", d.Matched[0].NsRatio)
	}
}

func TestPointsOf(t *testing.T) {
	pts := PointsOf([]MicroResult{{Name: "X", NsPerOp: 5, AllocsPerOp: 2, BytesPerOp: 64}})
	if p := pts["X"]; p.NsPerOp != 5 || p.AllocsPerOp != 2 || p.BytesPerOp != 64 {
		t.Fatalf("PointsOf wrong: %+v", p)
	}
}
