package bench

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"
	"time"

	"repro/internal/cst"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/npb"
	"repro/internal/replay"
	"repro/internal/simmpi"
	"repro/internal/trace"

	"repro/internal/ctt"
	"repro/internal/interp"
	"repro/internal/merge"
	"repro/internal/mpisim"
	"repro/internal/timestat"
)

// nominal CLASS-D-ish application footprints (bytes, whole job) used to
// normalize per-process memory overhead like the paper's Figure 16.
var appFootprint = map[string]int64{
	"BT": 120 << 30, "CG": 60 << 30, "DT": 10 << 30, "EP": 1 << 30,
	"FT": 80 << 30, "LU": 100 << 30, "MG": 150 << 30, "SP": 120 << 30,
	"LESlie3d": 20 << 30,
}

// Table1 regenerates the compilation-overhead table: time to compile each
// NPB skeleton without and with the CST construction pass.
func Table1(w io.Writer, cfg Config) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table I: compilation overhead of the CST pass")
	fmt.Fprintln(tw, "Program\tw/o Cypress\tw/ Cypress\tOverhead(%)\tCST vertices")
	reps := 25
	if cfg.Quick {
		reps = 5
	}
	for _, wl := range npb.All() {
		n := cfg.procsFor(wl)[0]
		src := wl.Source(n, cfg.scale())
		base := time.Duration(math.MaxInt64)
		withCST := time.Duration(math.MaxInt64)
		var vertices int
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			prog, err := lang.Parse(src)
			if err != nil {
				return err
			}
			if _, err := lang.Check(prog); err != nil {
				return err
			}
			irProg, err := ir.Lower(prog)
			if err != nil {
				return err
			}
			if d := time.Since(t0); d < base {
				base = d
			}
			tree, err := cst.Build(irProg)
			if err != nil {
				return err
			}
			vertices = tree.NumVertices()
			if d := time.Since(t0); d < withCST {
				withCST = d
			}
		}
		ovh := 100 * float64(withCST-base) / float64(base)
		fmt.Fprintf(tw, "%s\t%.3fms\t%.3fms\t%.2f\t%d\n",
			wl.Name, base.Seconds()*1e3, withCST.Seconds()*1e3, ovh, vertices)
	}
	return tw.Flush()
}

// Fig15 regenerates the total-trace-size comparison across all NPB codes.
func Fig15(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "Figure 15: total communication trace sizes (KB)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "Prog\tProcs\tEvents\t")
	for _, m := range SizeMethods {
		fmt.Fprintf(tw, "%s\t", m)
	}
	fmt.Fprintln(tw)
	var wls []*npb.Workload
	for _, wl := range npb.All() {
		if wl.Name == "LESlie3d" {
			continue // Figure 19's subject
		}
		wls = append(wls, wl)
	}
	// Size-only figure: safe to fan out cells with -par.
	ms, err := measureCells(cells(wls, cfg), cfg)
	if err != nil {
		return err
	}
	for _, m := range ms {
		fmt.Fprintf(tw, "%s\t%d\t%d\t", m.Workload, m.Procs, m.Events)
		for _, meth := range SizeMethods {
			fmt.Fprintf(tw, "%.1f\t", kb(m.Sizes[meth]))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Fig16 regenerates the intra-process overhead comparison (time and memory).
// Time overhead is the wall-clock slowdown of the traced run relative to an
// untraced run — the paper's own metric; memory is the compressor's live
// footprint per process, normalized against the nominal application memory.
func Fig16(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "Figure 16: intra-process compression overhead per process")
	fmt.Fprintln(w, "(time% = run slowdown vs untraced; mem% = compressor bytes / nominal app bytes per process)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Prog\tProcs\tScalaTrace t%\tScalaTrace2 t%\tCypress t%\tST mem/proc\tCyp mem/proc\tST mem%\tCyp mem%\t")
	subjects := []string{"BT", "CG", "FT", "LU", "MG", "SP"}
	for _, name := range subjects {
		wl := npb.Get(name)
		for _, n := range cfg.procsFor(wl) {
			m, err := MeasureIntra(wl, n, cfg)
			if err != nil {
				return err
			}
			appPerRank := float64(appFootprint[name]) / float64(n)
			mp := func(meth string) float64 { return 100 * float64(m.MemBytes[meth]) / appPerRank }
			fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%.2f\t%.1fKB\t%.1fKB\t%.5f\t%.5f\t\n",
				name, n,
				m.SlowdownPct[MScala], m.SlowdownPct[MScala2], m.SlowdownPct[MCypress],
				kb(m.MemBytes[MScala]), kb(m.MemBytes[MCypress]),
				mp(MScala), mp(MCypress))
		}
	}
	return tw.Flush()
}

// Fig18 regenerates the inter-process merge cost comparison. The merge
// timings are only clean when cells run one at a time, so this figure always
// measures sequentially even under -par (the cell fan-out would make
// concurrent cells compete for the cores the parallel reduction itself uses).
func Fig18(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "Figure 18: inter-process trace compression overhead (seconds)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Prog\tProcs\tScalaTrace\tScalaTrace2\tCypress\tvs ST1\tvs ST2\t")
	subjects := []string{"BT", "CG", "LU", "MG", "SP"}
	var wls []*npb.Workload
	for _, name := range subjects {
		wls = append(wls, npb.Get(name))
	}
	seqCfg := cfg
	seqCfg.ParallelCells = false
	ms, err := measureCells(cells(wls, cfg), seqCfg)
	if err != nil {
		return err
	}
	for _, m := range ms {
		s1 := m.InterSec[MScala] / math.Max(m.InterSec[MCypress], 1e-9)
		s2 := m.InterSec[MScala2] / math.Max(m.InterSec[MCypress], 1e-9)
		fmt.Fprintf(tw, "%s\t%d\t%.4f\t%.4f\t%.4f\t%.1fx\t%.1fx\t\n",
			m.Workload, m.Procs, m.InterSec[MScala], m.InterSec[MScala2], m.InterSec[MCypress], s1, s2)
	}
	return tw.Flush()
}

// Fig19 regenerates the LESlie3d trace-size comparison.
func Fig19(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "Figure 19: LESlie3d compressed trace sizes (KB)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Procs\tGzip\tScalaTrace\tCypress\tCypress+Gzip\t")
	wl := npb.Get("LESlie3d")
	// Size-only figure: safe to fan out cells with -par.
	ms, err := measureCells(cells([]*npb.Workload{wl}, cfg), cfg)
	if err != nil {
		return err
	}
	for _, m := range ms {
		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%.1f\t%.1f\t\n",
			m.Procs, kb(m.Sizes[MGzip]), kb(m.Sizes[MScala]), kb(m.Sizes[MCypress]), kb(m.Sizes[MCypressGzip]))
	}
	return tw.Flush()
}

// traceWorkload runs one workload under CYPRESS only and returns the merged
// tree plus the simulated time (helper for matrix and prediction figures).
func traceWorkload(wl *npb.Workload, n int, cfg Config) (*merge.Merged, float64, error) {
	prog, tree, err := compileWorkload(wl, n, cfg.scale())
	if err != nil {
		return nil, 0, err
	}
	comps := make([]*ctt.Compressor, n)
	sinks := make([]trace.Sink, n)
	for i := range sinks {
		comps[i] = ctt.NewCompressor(tree, i, timestat.ModeMeanStddev)
		comps[i].SetObs(obsSink)
		sinks[i] = comps[i]
	}
	simNS, err := mpisim.Run(n, mpisim.DefaultParams(), sinks, func(r *mpisim.Rank) {
		interp.Execute(prog, r)
	})
	if err != nil {
		return nil, 0, err
	}
	ctts := make([]*ctt.RankCTT, n)
	for i, c := range comps {
		ctts[i] = c.Finish()
	}
	m, err := merge.All(ctts, cfg.Workers)
	if err != nil {
		return nil, 0, err
	}
	return m, simNS, nil
}

// commMatrix accumulates sent bytes per (src, dst) from decompressed traces.
func commMatrix(m *merge.Merged) ([][]int64, error) {
	n := m.NumRanks
	mat := make([][]int64, n)
	for i := range mat {
		mat[i] = make([]int64, n)
	}
	for rank := 0; rank < n; rank++ {
		err := replay.Events(m.ForRank(rank), rank, func(e *trace.Event) {
			if e.Op.IsSendLike() && e.Peer >= 0 && e.Peer < n {
				mat[rank][e.Peer] += int64(e.Size)
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return mat, nil
}

// renderMatrix prints an ASCII heat map of the communication volume matrix,
// the textual equivalent of the paper's gray-scale plots.
func renderMatrix(w io.Writer, title string, mat [][]int64) {
	shades := []byte(" .:-=+*#%@")
	var maxV int64
	nnz := 0
	for _, row := range mat {
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
			if v > 0 {
				nnz++
			}
		}
	}
	fmt.Fprintf(w, "%s  (ranks=%d, nonzero pairs=%d, max volume=%.1fKB)\n",
		title, len(mat), nnz, kb(maxV))
	if maxV == 0 {
		fmt.Fprintln(w, "  (no point-to-point traffic)")
		return
	}
	// Downsample large matrices to at most 64 columns for readability.
	n := len(mat)
	step := (n + 63) / 64
	for r := 0; r < n; r += step {
		fmt.Fprint(w, "  ")
		for c := 0; c < n; c += step {
			var block int64
			for dr := 0; dr < step && r+dr < n; dr++ {
				for dc := 0; dc < step && c+dc < n; dc++ {
					block += mat[r+dr][c+dc]
				}
			}
			idx := 0
			if block > 0 {
				frac := math.Log1p(float64(block)) / math.Log1p(float64(maxV)*float64(step*step))
				idx = 1 + int(frac*float64(len(shades)-2))
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			fmt.Fprintf(w, "%c", shades[idx])
		}
		fmt.Fprintln(w)
	}
}

// Fig17 regenerates the MG and SP communication-pattern matrices.
func Fig17(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "Figure 17: communication patterns (volume per rank pair)")
	n := 64
	if cfg.Quick {
		n = 16
	}
	for _, name := range []string{"MG", "SP"} {
		wl := npb.Get(name)
		pn := n
		if !wl.ValidProcs(pn) {
			pn = wl.Procs[0]
		}
		m, _, err := traceWorkload(wl, pn, cfg)
		if err != nil {
			return err
		}
		mat, err := commMatrix(m)
		if err != nil {
			return err
		}
		renderMatrix(w, fmt.Sprintf("(%s, %d processes)", name, pn), mat)
	}
	return nil
}

// Fig20 regenerates the LESlie3d communication-pattern matrices, including
// the locality analysis the paper's case study highlights.
func Fig20(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "Figure 20: LESlie3d communication patterns")
	wl := npb.Get("LESlie3d")
	procs := []int{32, 64}
	if cfg.Quick {
		procs = []int{8, 16}
	}
	for _, n := range procs {
		m, _, err := traceWorkload(wl, n, cfg)
		if err != nil {
			return err
		}
		mat, err := commMatrix(m)
		if err != nil {
			return err
		}
		renderMatrix(w, fmt.Sprintf("(LESlie3d, %d processes)", n), mat)
		// Per-paper analysis: neighbor count of rank 0 and distinct sizes.
		neighbors := 0
		for c, v := range mat[0] {
			if v > 0 && c != 0 {
				neighbors++
			}
		}
		sizes := map[int]bool{}
		err = replay.Events(m.ForRank(0), 0, func(e *trace.Event) {
			if e.Op.IsPointToPoint() {
				sizes[e.Size] = true
			}
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  rank 0 communicates with %d peers; %d distinct message sizes: ", neighbors, len(sizes))
		for s := range sizes {
			fmt.Fprintf(w, "%.0fKB ", kb(int64(s)))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig21 regenerates the LESlie3d performance-prediction study.
func Fig21(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "Figure 21: LESlie3d execution time prediction via decompressed traces")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Procs\tMeasured(ms)\tPredicted(ms)\tError(%)\tComm time(%)\t")
	wl := npb.Get("LESlie3d")
	var sumErr float64
	var rows int
	for _, n := range cfg.procsFor(wl) {
		m, simNS, err := traceWorkload(wl, n, cfg)
		if err != nil {
			return err
		}
		seqs := make([][]trace.Event, n)
		for rank := 0; rank < n; rank++ {
			seqs[rank], err = replay.Sequence(m.ForRank(rank), rank)
			if err != nil {
				return err
			}
		}
		pred, err := simmpi.Simulate(seqs, mpisim.DefaultParams())
		if err != nil {
			return err
		}
		errPct := 100 * math.Abs(pred.TotalNS-simNS) / simNS
		sumErr += errPct
		rows++
		fmt.Fprintf(tw, "%d\t%.2f\t%.2f\t%.2f\t%.1f\t\n",
			n, simNS/1e6, pred.TotalNS/1e6, errPct, 100*pred.CommFraction())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "average prediction error: %.2f%%\n", sumErr/float64(rows))
	return nil
}
