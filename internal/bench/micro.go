package bench

// Component-level microbenchmarks for the compression hot paths, shared
// between `go test -bench` (see the wrappers in the repo-root bench_test.go)
// and `cypressbench -benchjson`, which runs them via testing.Benchmark and
// emits machine-readable JSON for trajectory tracking and benchstat-style
// regression comparisons.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/blockio"
	"repro/internal/corpus"
	"repro/internal/cst"
	"repro/internal/ctt"
	"repro/internal/encpool"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/merge"
	"repro/internal/mpisim"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/simmpi"
	"repro/internal/timestat"
	"repro/internal/trace"
)

// obsSink, when non-nil, is attached to every compressor the bench harness
// builds (ringCTTs, runRanks). It is nil during timed benchmarks — the
// observed pipeline pass behind -benchjson sets it, harvests a report, and
// clears it, so published timings stay sink-off and comparable across PRs.
var obsSink *obs.Sink

// EnableObs attaches s to every pipeline stage the bench harness exercises:
// the package-level sinks (merge, replay, simmpi, encpool, blockio, corpus)
// and the compressors the harness constructs afterwards. Pass nil to detach.
func EnableObs(s *obs.Sink) {
	obsSink = s
	merge.SetObs(s)
	replay.SetObs(s)
	simmpi.SetObs(s)
	encpool.SetObs(s)
	blockio.SetObs(s)
	corpus.SetObs(s)
}

// sink-call opcodes for recorded streams.
const (
	kLoopEnter = iota
	kLoopIter
	kBranchEnter
	kBranchSkip
	kCallEnter
	kStructExit
	kCommSite
	kEvent
	kFinalize
)

type sinkOp struct {
	kind uint8
	site int32
	arm  int8
	ev   trace.Event
}

// SinkStream is one rank's recorded sequence of trace.Sink calls. Replaying
// it into a fresh compressor reproduces the exact instrumentation stream the
// runtime produced, which lets microbenchmarks measure compressor cost in
// isolation from the MPI simulator.
type SinkStream struct {
	ops    []sinkOp
	events int
}

// Events returns the number of MPI events in the stream.
func (s *SinkStream) Events() int { return s.events }

// Replay drives every recorded call into dst. Events are passed as shallow
// copies so dst may canonicalize its copy freely. The copy buffer is hoisted
// out of the loop: passing a loop-local event through the Sink interface
// would heap-allocate one copy per event and drown out the compressor's own
// allocation behavior in microbenchmarks.
func (s *SinkStream) Replay(dst trace.Sink) {
	var evBuf trace.Event
	for i := range s.ops {
		op := &s.ops[i]
		switch op.kind {
		case kLoopEnter:
			dst.LoopEnter(op.site)
		case kLoopIter:
			dst.LoopIter(op.site)
		case kBranchEnter:
			dst.BranchEnter(op.site, op.arm)
		case kBranchSkip:
			dst.BranchSkip(op.site)
		case kCallEnter:
			dst.CallEnter(op.site)
		case kStructExit:
			dst.StructExit()
		case kCommSite:
			dst.CommSite(op.site)
		case kEvent:
			evBuf = op.ev
			dst.Event(&evBuf)
		case kFinalize:
			dst.Finalize()
		}
	}
}

// recorder captures the sink calls of one rank.
type recorder struct{ s SinkStream }

func (r *recorder) LoopEnter(site int32) {
	r.s.ops = append(r.s.ops, sinkOp{kind: kLoopEnter, site: site})
}
func (r *recorder) LoopIter(site int32) {
	r.s.ops = append(r.s.ops, sinkOp{kind: kLoopIter, site: site})
}
func (r *recorder) BranchEnter(site int32, arm int8) {
	r.s.ops = append(r.s.ops, sinkOp{kind: kBranchEnter, site: site, arm: arm})
}
func (r *recorder) BranchSkip(site int32) {
	r.s.ops = append(r.s.ops, sinkOp{kind: kBranchSkip, site: site})
}
func (r *recorder) CallEnter(site int32) {
	r.s.ops = append(r.s.ops, sinkOp{kind: kCallEnter, site: site})
}
func (r *recorder) StructExit() { r.s.ops = append(r.s.ops, sinkOp{kind: kStructExit}) }
func (r *recorder) CommSite(site int32) {
	r.s.ops = append(r.s.ops, sinkOp{kind: kCommSite, site: site})
}
func (r *recorder) Event(e *trace.Event) {
	ev := *e
	if e.Reqs != nil {
		ev.Reqs = append([]int32(nil), e.Reqs...)
	}
	if e.ReqSrcs != nil {
		ev.ReqSrcs = append([]int32(nil), e.ReqSrcs...)
	}
	r.s.ops = append(r.s.ops, sinkOp{kind: kEvent, ev: ev})
	r.s.events++
}
func (r *recorder) Finalize() { r.s.ops = append(r.s.ops, sinkOp{kind: kFinalize}) }

// compileSrc builds the CST for an MPL source string.
func compileSrc(src string) (*lang.Program, *cst.Tree, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, nil, fmt.Errorf("micro: parse: %w", err)
	}
	if _, err := lang.Check(prog); err != nil {
		return nil, nil, fmt.Errorf("micro: check: %w", err)
	}
	irProg, err := ir.Lower(prog)
	if err != nil {
		return nil, nil, fmt.Errorf("micro: lower: %w", err)
	}
	tree, err := cst.Build(irProg)
	if err != nil {
		return nil, nil, fmt.Errorf("micro: cst: %w", err)
	}
	return prog, tree, nil
}

// RecordStream compiles src, runs it on n simulated ranks, and returns the
// CST plus rank 0's recorded sink stream.
func RecordStream(src string, n int) (*cst.Tree, *SinkStream, error) {
	prog, tree, err := compileSrc(src)
	if err != nil {
		return nil, nil, err
	}
	recs := make([]*recorder, n)
	sinks := make([]trace.Sink, n)
	for i := range sinks {
		recs[i] = &recorder{}
		sinks[i] = recs[i]
	}
	if _, err := mpisim.Run(n, mpisim.DefaultParams(), sinks, func(r *mpisim.Rank) {
		interp.Execute(prog, r)
	}); err != nil {
		return nil, nil, err
	}
	return tree, &recs[0].s, nil
}

// ringSrc exercises the non-blocking hot path: every iteration posts an
// irecv and an isend around the ring and waits on both, so the compressor's
// request table and completion resolution run once per event in steady state.
const ringSrc = `
func main() {
	for var k = 0; k < 256; k = k + 1 {
		var r1 = irecv((rank + size - 1) % size, 4096, 7);
		var r2 = isend((rank + 1) % size, 4096, 7);
		wait(r1);
		wait(r2);
	}
}`

// bcastSrc exercises the pure record-merge fast path: one leaf, repeated
// identical parameters, everything folds into a single run-length record.
const bcastSrc = `
func main() {
	for var k = 0; k < 1024; k = k + 1 {
		bcast(0, 4096);
	}
}`

// stencilSrc produces a few records per leaf with rank-dependent peers, the
// shape the inter-process merge and encoder see in practice.
const stencilSrc = `
func main() {
	for var k = 0; k < 64; k = k + 1 {
		if rank > 0 { var a = irecv(rank - 1, 2048, 3); wait(a); }
		if rank < size - 1 { var b = isend(rank + 1, 2048, 3); wait(b); }
		allreduce(8);
	}
}`

func mustStream(b *testing.B, src string, n int) (*cst.Tree, *SinkStream) {
	b.Helper()
	tree, s, err := RecordStream(src, n)
	if err != nil {
		b.Fatal(err)
	}
	return tree, s
}

// runRanks executes src on n ranks under CYPRESS and returns finished CTTs.
func runRanks(b *testing.B, src string, n int) []*ctt.RankCTT {
	b.Helper()
	prog, tree, err := compileSrc(src)
	if err != nil {
		b.Fatal(err)
	}
	comps := make([]*ctt.Compressor, n)
	sinks := make([]trace.Sink, n)
	for i := range sinks {
		comps[i] = ctt.NewCompressor(tree, i, timestat.ModeMeanStddev)
		comps[i].SetObs(obsSink)
		sinks[i] = comps[i]
	}
	if _, err := mpisim.Run(n, mpisim.DefaultParams(), sinks, func(r *mpisim.Rank) {
		interp.Execute(prog, r)
	}); err != nil {
		b.Fatal(err)
	}
	out := make([]*ctt.RankCTT, n)
	for i, c := range comps {
		out[i] = c.Finish()
	}
	return out
}

// BenchCompressorEvent measures the full Compressor.Event hot path on a
// mixed non-blocking stream (irecv/isend/wait ring). One op replays the
// whole recorded stream into a fresh compressor.
func BenchCompressorEvent(b *testing.B) {
	tree, stream := mustStream(b, ringSrc, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := ctt.NewCompressor(tree, 0, timestat.ModeMeanStddev)
		stream.Replay(c)
	}
	b.ReportMetric(float64(stream.Events()), "events/op")
}

// BenchCompressorEventObs is BenchCompressorEvent with a live metrics sink
// attached to the compressor. Comparing the pair quantifies the cost of the
// observability layer on the hottest path; the budget is <3% ns/op over the
// sink-off run (the counters are plain atomics behind one nil check).
func BenchCompressorEventObs(b *testing.B) {
	tree, stream := mustStream(b, ringSrc, 4)
	s := obs.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := ctt.NewCompressor(tree, 0, timestat.ModeMeanStddev)
		c.SetObs(s)
		stream.Replay(c)
	}
	b.ReportMetric(float64(stream.Events()), "events/op")
}

// BenchRecordMerge measures the run-length record-merge fast path: repeated
// identical events folding into one record.
func BenchRecordMerge(b *testing.B) {
	tree, stream := mustStream(b, bcastSrc, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := ctt.NewCompressor(tree, 0, timestat.ModeMeanStddev)
		stream.Replay(c)
	}
	b.ReportMetric(float64(stream.Events()), "events/op")
}

// BenchMergePair measures the lockstep pairwise CTT merge.
func BenchMergePair(b *testing.B) {
	ctts := runRanks(b, stencilSrc, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := merge.Pair(merge.FromRank(ctts[1]), merge.FromRank(ctts[2])); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchEncode measures serialization of a merged tree.
func BenchEncode(b *testing.B) {
	ctts := runRanks(b, stencilSrc, 8)
	m, err := merge.All(ctts, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Encode(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// spmdSrc is the program shape behind the large-rank merge benchmarks: an
// open-chain stencil whose peers are rank-relative constants plus one
// collective. Driven directly (see spmdCTTs), every rank's tree is identical
// modulo the relative peer encoding — the SPMD uniformity the fingerprint
// merge fast path exploits.
const spmdSrc = `
func main() {
	for var k = 0; k < 24; k = k + 1 {
		send(rank + 1, 4096, 7);
		recv(rank + size - 1, 4096, 7);
	}
	allreduce(8);
}`

// spmdCTTs builds n per-rank CTTs by driving each rank's compressor directly
// with a synthetic identical-SPMD event stream — no simulator, so merge
// benchmarks scale to thousands of ranks without drowning setup time in
// goroutine scheduling. Every rank sends to rank+1 and receives from rank-1
// (no wraparound guard: the stream is synthetic), making PeerRel uniformly
// +1/-1 across all ranks.
func spmdCTTs(n, iters int) ([]*ctt.RankCTT, error) {
	_, tree, err := compileSrc(spmdSrc)
	if err != nil {
		return nil, err
	}
	var loop, sendLeaf, recvLeaf, redLeaf *cst.Vertex
	tree.Walk(func(v *cst.Vertex, _ int) {
		switch {
		case loop == nil && v.Kind == cst.KindLoop:
			loop = v
		case sendLeaf == nil && v.Kind == cst.KindComm && v.Op == trace.OpSend:
			sendLeaf = v
		case recvLeaf == nil && v.Kind == cst.KindComm && v.Op == trace.OpRecv:
			recvLeaf = v
		case redLeaf == nil && v.Kind == cst.KindComm && v.Op == trace.OpAllreduce:
			redLeaf = v
		}
	})
	if loop == nil || sendLeaf == nil || recvLeaf == nil || redLeaf == nil {
		return nil, fmt.Errorf("micro: spmd tree missing vertices")
	}
	out := make([]*ctt.RankCTT, n)
	var ev trace.Event
	for r := 0; r < n; r++ {
		c := ctt.NewCompressor(tree, r, timestat.ModeMeanStddev)
		ev = trace.Event{Op: trace.OpInit, Peer: trace.NoPeer, ReqID: -1, DurationNS: 120, ComputeNS: 10}
		c.Event(&ev)
		c.LoopEnter(int32(loop.Site))
		for k := 0; k < iters; k++ {
			c.LoopIter(int32(loop.Site))
			c.CommSite(int32(sendLeaf.Site))
			ev = trace.Event{Op: trace.OpSend, Peer: r + 1, Size: 4096, Tag: 7, ReqID: -1, DurationNS: 1500, ComputeNS: 40}
			c.Event(&ev)
			c.CommSite(int32(recvLeaf.Site))
			ev = trace.Event{Op: trace.OpRecv, Peer: r - 1, Size: 4096, Tag: 7, ReqID: -1, DurationNS: 1600, ComputeNS: 55}
			c.Event(&ev)
		}
		c.StructExit()
		c.CommSite(int32(redLeaf.Site))
		ev = trace.Event{Op: trace.OpAllreduce, Peer: trace.NoPeer, Size: 8, ReqID: -1, DurationNS: 2200, ComputeNS: 70}
		c.Event(&ev)
		ev = trace.Event{Op: trace.OpFinalize, Peer: trace.NoPeer, ReqID: -1, DurationNS: 90}
		c.Event(&ev)
		c.Finalize()
		out[r] = c.Finish()
	}
	return out, nil
}

// benchMergeAll measures the full parallel binary reduction over n
// identical-SPMD rank trees. All re-wraps the same CTTs each iteration
// (FromRank allocates fresh entry lists); merging only folds time statistics
// into the left operands, so per-iteration work is uniform.
func benchMergeAll(b *testing.B, n int) {
	ctts, err := spmdCTTs(n, 24)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := merge.All(ctts, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "ranks/op")
}

// BenchMergeAll256 merges 256 identical-SPMD rank trees.
func BenchMergeAll256(b *testing.B) { benchMergeAll(b, 256) }

// BenchMergeAll1024 merges 1024 identical-SPMD rank trees (the PR 2
// acceptance benchmark).
func BenchMergeAll1024(b *testing.B) { benchMergeAll(b, 1024) }

// BenchMergeAll4096 merges 4096 identical-SPMD rank trees.
func BenchMergeAll4096(b *testing.B) { benchMergeAll(b, 4096) }

// BenchDecode measures deserialization of a merged 64-rank stencil trace
// (the realistic shape: relative-encoded records, branch arms, collectives).
func BenchDecode(b *testing.B) {
	ctts := runRanks(b, stencilSrc, 64)
	m, err := merge.All(ctts, 0)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.Encode(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	rd := bytes.NewReader(data)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(data)
		if _, err := merge.Decode(rd); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(data)), "bytes/op")
}

// blockedBenchFrame is the frame target of the block-container benchmarks. A
// merged trace is tiny by design, so the default 128KB frame would put the
// whole payload in one frame and the worker sweep would measure nothing; 256
// bytes cuts the 1024-rank SPMD trace into several frames so the encode pool
// and the decode pipeline actually see per-frame work.
const blockedBenchFrame = 256

// spmd1024 builds the 1024-rank SPMD merged tree shared by the container
// benchmarks.
func spmd1024(b *testing.B) *merge.Merged {
	b.Helper()
	ctts, err := spmdCTTs(1024, 24)
	if err != nil {
		b.Fatal(err)
	}
	m, err := merge.All(ctts, 0)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchEncodeGzip1024 measures the paper's Cypress+Gzip serialization of the
// 1024-rank SPMD trace — the single-stream baseline the block container
// competes with.
func BenchEncodeGzip1024(b *testing.B) {
	m := spmd1024(b)
	var n int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if n, err = m.EncodeGzip(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "bytes/op")
}

// benchEncodeBlocked measures CYPB container encode of the 1024-rank SPMD
// trace at a fixed frame size and the given worker count; the emitted bytes
// are identical at every worker count, so the sweep isolates the pool's
// coordination cost (and, on multi-core hosts, its speedup).
func benchEncodeBlocked(b *testing.B, workers int) {
	m := spmd1024(b)
	var n int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if n, err = m.EncodeBlockedFrames(io.Discard, workers, blockedBenchFrame); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "bytes/op")
}

// BenchEncodeBlocked1024W1 encodes with one inline worker (no goroutines).
func BenchEncodeBlocked1024W1(b *testing.B) { benchEncodeBlocked(b, 1) }

// BenchEncodeBlocked1024W2 encodes with a two-worker pool.
func BenchEncodeBlocked1024W2(b *testing.B) { benchEncodeBlocked(b, 2) }

// BenchEncodeBlocked1024W4 encodes with a four-worker pool.
func BenchEncodeBlocked1024W4(b *testing.B) { benchEncodeBlocked(b, 4) }

// benchDecodeBlocked measures sniffing decode of the CYPB-wrapped 1024-rank
// SPMD trace with the given inflate worker count.
func benchDecodeBlocked(b *testing.B, workers int) {
	m := spmd1024(b)
	var buf bytes.Buffer
	if _, err := m.EncodeBlockedFrames(&buf, 1, blockedBenchFrame); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	rd := bytes.NewReader(data)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(data)
		if _, err := merge.DecodePar(rd, workers); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(data)), "bytes/op")
}

// BenchDecodeBlocked1024W1 decodes with a one-worker inflate pipeline.
func BenchDecodeBlocked1024W1(b *testing.B) { benchDecodeBlocked(b, 1) }

// BenchDecodeBlocked1024W2 decodes with a two-worker inflate pipeline.
func BenchDecodeBlocked1024W2(b *testing.B) { benchDecodeBlocked(b, 2) }

// Micro is one registered microbenchmark.
type Micro struct {
	Name  string
	Bench func(b *testing.B)
}

// Micros returns the microbenchmark registry in stable order.
func Micros() []Micro {
	return []Micro{
		{"CompressorEvent", BenchCompressorEvent},
		{"CompressorEventObs", BenchCompressorEventObs},
		{"RecordMerge", BenchRecordMerge},
		{"MergePair", BenchMergePair},
		{"Encode", BenchEncode},
		{"MergeAll256", BenchMergeAll256},
		{"MergeAll1024", BenchMergeAll1024},
		{"MergeAll4096", BenchMergeAll4096},
		{"Decode", BenchDecode},
		{"EncodeGzip1024", BenchEncodeGzip1024},
		{"EncodeBlocked1024W1", BenchEncodeBlocked1024W1},
		{"EncodeBlocked1024W2", BenchEncodeBlocked1024W2},
		{"EncodeBlocked1024W4", BenchEncodeBlocked1024W4},
		{"DecodeBlocked1024W1", BenchDecodeBlocked1024W1},
		{"DecodeBlocked1024W2", BenchDecodeBlocked1024W2},
		{"ReplayRank", BenchReplayRank},
		{"ReplayRankWalk", BenchReplayRankWalk},
		{"Predict256", BenchPredict256},
		{"Predict1024", BenchPredict1024},
		{"Predict1024W2", BenchPredict1024W2},
		{"Predict1024W4", BenchPredict1024W4},
		{"Simulate1024W1", BenchSimulate1024W1},
		{"Simulate1024W2", BenchSimulate1024W2},
		{"Simulate1024W4", BenchSimulate1024W4},
		{"PredictMaterialized256", BenchPredictMaterialized256},
		{"PredictMaterialized1024", BenchPredictMaterialized1024},
		{"CommMatrix1024", BenchCommMatrix1024},
		{"CommMatrixMaterialized1024", BenchCommMatrixMaterialized1024},
		{"CorpusIngest1024", BenchCorpusIngest1024},
		{"CorpusBytes1024", BenchCorpusBytes1024},
		{"CorpusGetCold1024", BenchCorpusGetCold1024},
		{"CorpusGetWarm1024", BenchCorpusGetWarm1024},
		{"CorpusPredictCold1024", BenchCorpusPredictCold1024},
		{"CorpusPredictWarm1024", BenchCorpusPredictWarm1024},
		{"DecodeSharded1024", BenchDecodeSharded1024},
		{"DecodeSelect1024Rank1", BenchDecodeSelect1024Rank1},
		{"CorpusGetProjected1024", BenchCorpusGetProjected1024},
		{"ReplayRankProjected1024", BenchReplayRankProjected1024},
		{"ReplayRankFullDecode1024", BenchReplayRankFullDecode1024},
	}
}

// MicroResult is one benchmark outcome in the -benchjson output.
type MicroResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// RunMicros executes every microbenchmark via testing.Benchmark and returns
// the results.
func RunMicros() []MicroResult {
	out := make([]MicroResult, 0, len(Micros()))
	for _, m := range Micros() {
		r := testing.Benchmark(m.Bench)
		out = append(out, MicroResult{
			Name:        m.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out
}

// MicroEnv records where the benchmarks ran.
type MicroEnv struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	Cores  int    `json:"cores"`
}

// MicroReport is the -benchjson v2 document: a versioned schema wrapping the
// per-benchmark timings (schema v1 was the bare array) plus one observed
// pipeline pass's counter report, so BENCH_*.json files carry fast-path hit
// rates and byte accounting alongside ns/op. Timed benchmarks still run with
// the sink detached; only the separate observation pass pays for counting.
type MicroReport struct {
	SchemaVersion int           `json:"schema_version"`
	Environment   MicroEnv      `json:"environment"`
	Benchmarks    []MicroResult `json:"benchmarks"`
	Obs           *obs.Report   `json:"obs,omitempty"`
}

// observePipeline runs one full compress→merge→encode→decode→replay→simulate
// pass over the 64-rank wraparound ring with every stage reporting into s.
// It restores the detached state before returning.
func observePipeline(s *obs.Sink) error {
	EnableObs(s)
	defer EnableObs(nil)
	ctts, err := ringCTTs(64, 24)
	if err != nil {
		return err
	}
	m, err := merge.All(ctts, 0)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if _, err := m.Encode(&buf); err != nil {
		return err
	}
	if _, err := merge.Decode(&buf); err != nil {
		return err
	}
	st := merge.NewStreamer(m)
	if err := st.Prepare(0); err != nil {
		return err
	}
	srcs := make([]simmpi.EventSource, st.NumRanks())
	for r := range srcs {
		cur, err := st.Cursor(r)
		if err != nil {
			return err
		}
		srcs[r] = cur
	}
	if _, err = simmpi.SimulateStream(srcs, mpisim.DefaultParams()); err != nil {
		return err
	}
	return observeCorpus()
}

// RunMicroReport executes the microbenchmarks (sink-off) and the observed
// pipeline pass, returning the v2 report.
func RunMicroReport() (*MicroReport, error) {
	rep := &MicroReport{
		SchemaVersion: 2,
		Environment:   MicroEnv{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, Cores: runtime.NumCPU()},
		Benchmarks:    RunMicros(),
	}
	s := obs.New()
	if err := observePipeline(s); err != nil {
		return nil, err
	}
	rep.Obs = s.Report()
	return rep, nil
}

// WriteMicroJSON runs every microbenchmark plus the observed pipeline pass
// and writes the v2 JSON report.
func WriteMicroJSON(w io.Writer) error {
	rep, err := RunMicroReport()
	if err != nil {
		return err
	}
	return WriteMicroReport(w, rep)
}

// WriteMicroReport writes an already-computed report as indented JSON.
func WriteMicroReport(w io.Writer, rep *MicroReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
