package bench

import (
	"testing"

	"repro/internal/obs"
)

// TestObservePipelineReport checks the -benchjson observation pass: one ring
// run through compress→merge→encode→decode→replay→simulate must light up
// every stage's counters, and the harness must detach the sink afterwards so
// subsequent timed benchmarks run sink-off.
func TestObservePipelineReport(t *testing.T) {
	s := obs.New()
	if err := observePipeline(s); err != nil {
		t.Fatal(err)
	}
	if obsSink != nil {
		t.Error("observePipeline left obsSink attached")
	}
	r := s.Report()
	for _, key := range []string{
		"comp_events", "stride_values", "merge_pairs",
		"enc_traces", "dec_traces", "sim_events_processed",
		"corpus_ingests", "corpus_delta_runs", "corpus_stored_bytes",
		"corpus_cache_hits", "corpus_cache_misses",
	} {
		if r.Counters[key] == 0 {
			t.Errorf("observation pass left %s empty", key)
		}
	}
	if len(r.Stages) == 0 {
		t.Error("observation pass recorded no stage timings")
	}
}
