package bench

// Decompression-side microbenchmarks (paper Section V): streaming replay
// through resolved views and shared skeletons, and the trace-driven LogGP
// prediction pipeline, each paired with its pre-streaming reference
// implementation (the rankView walk / full materialization) so before/after
// comparisons stay runnable from one tree.

import (
	"fmt"
	"testing"

	"repro/internal/cst"
	"repro/internal/ctt"
	"repro/internal/merge"
	"repro/internal/mpisim"
	"repro/internal/replay"
	"repro/internal/simmpi"
	"repro/internal/timestat"
	"repro/internal/trace"
)

// ringCTTs builds n per-rank CTTs for a wraparound ring by driving each
// compressor directly, like spmdCTTs but with peers taken modulo n: every
// recv has a matching send, so the merged trace is simulatable under simmpi,
// and the wraparound edges split the ranks into three selection classes
// (interior, rank 0, rank n-1) — the realistic SPMD shape for streaming
// replay benchmarks.
func ringCTTs(n, iters int) ([]*ctt.RankCTT, error) {
	return ringCTTsOff(n, iters, 0)
}

// ringCTTsOff is ringCTTs with every duration shifted by offNS — distinct
// offsets model repeated runs of the same workload on slightly different
// machines (identical structure, shifted timing payload), the input shape
// the corpus benchmarks dedup across.
func ringCTTsOff(n, iters int, offNS int64) ([]*ctt.RankCTT, error) {
	_, tree, err := compileSrc(spmdSrc)
	if err != nil {
		return nil, err
	}
	var loop, sendLeaf, recvLeaf, redLeaf *cst.Vertex
	tree.Walk(func(v *cst.Vertex, _ int) {
		switch {
		case loop == nil && v.Kind == cst.KindLoop:
			loop = v
		case sendLeaf == nil && v.Kind == cst.KindComm && v.Op == trace.OpSend:
			sendLeaf = v
		case recvLeaf == nil && v.Kind == cst.KindComm && v.Op == trace.OpRecv:
			recvLeaf = v
		case redLeaf == nil && v.Kind == cst.KindComm && v.Op == trace.OpAllreduce:
			redLeaf = v
		}
	})
	if loop == nil || sendLeaf == nil || recvLeaf == nil || redLeaf == nil {
		return nil, fmt.Errorf("micro: ring tree missing vertices")
	}
	out := make([]*ctt.RankCTT, n)
	var ev trace.Event
	for r := 0; r < n; r++ {
		c := ctt.NewCompressor(tree, r, timestat.ModeMeanStddev)
		c.SetObs(obsSink)
		ev = trace.Event{Op: trace.OpInit, Peer: trace.NoPeer, ReqID: -1, DurationNS: 120 + float64(offNS), ComputeNS: 10}
		c.Event(&ev)
		c.LoopEnter(int32(loop.Site))
		for k := 0; k < iters; k++ {
			c.LoopIter(int32(loop.Site))
			c.CommSite(int32(sendLeaf.Site))
			ev = trace.Event{Op: trace.OpSend, Peer: (r + 1) % n, Size: 4096, Tag: 7, ReqID: -1, DurationNS: 1500 + float64(offNS), ComputeNS: 40}
			c.Event(&ev)
			c.CommSite(int32(recvLeaf.Site))
			ev = trace.Event{Op: trace.OpRecv, Peer: (r + n - 1) % n, Size: 4096, Tag: 7, ReqID: -1, DurationNS: 1600 + float64(offNS), ComputeNS: 55}
			c.Event(&ev)
		}
		c.StructExit()
		c.CommSite(int32(redLeaf.Site))
		ev = trace.Event{Op: trace.OpAllreduce, Peer: trace.NoPeer, Size: 8, ReqID: -1, DurationNS: 2200 + float64(offNS), ComputeNS: 70}
		c.Event(&ev)
		ev = trace.Event{Op: trace.OpFinalize, Peer: trace.NoPeer, ReqID: -1, DurationNS: 90 + float64(offNS)}
		c.Event(&ev)
		c.Finalize()
		out[r] = c.Finish()
	}
	return out, nil
}

// mergedRing returns the merged trace of an n-rank wraparound ring.
func mergedRing(b *testing.B, n, iters int) *merge.Merged {
	b.Helper()
	ctts, err := ringCTTs(n, iters)
	if err != nil {
		b.Fatal(err)
	}
	m, err := merge.All(ctts, 0)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchReplayRank measures steady-state single-rank decompression through
// the streaming replayer: skeletons are memoized during setup, so each op is
// a flat scan over the rank's shared skeleton with O(1) accessors.
func BenchReplayRank(b *testing.B) {
	m := mergedRing(b, 1024, 24)
	s := merge.NewStreamer(m)
	if err := s.Prepare(0); err != nil {
		b.Fatal(err)
	}
	sink := func(*trace.Event) {}
	events := perRankEvents(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Replay(i%1024, sink); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(events, "events/op")
}

// BenchReplayRankWalk is the pre-streaming reference: the same single-rank
// decompression through the rankView tree walk, paying the O(groups) linear
// scan at all four Source accessors of every vertex visit.
func BenchReplayRankWalk(b *testing.B) {
	m := mergedRing(b, 1024, 24)
	sink := func(*trace.Event) {}
	events := perRankEvents(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rank := i % 1024
		if err := replay.Events(m.ForRank(rank), rank, sink); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(events, "events/op")
}

// perRankEvents reports the mean decompressed events per rank, for the
// events/op metric.
func perRankEvents(m *merge.Merged) float64 {
	return float64(m.EventCount) / float64(m.NumRanks)
}

// benchPredict measures the full streaming prediction pipeline per op:
// skeleton preparation (parallel), one pull cursor per rank, and the LogGP
// simulation — end to end from the merged tree, nothing materialized.
// workers bounds the simulation's worker pool; the prediction is identical
// at every value.
func benchPredict(b *testing.B, n, workers int) {
	m := mergedRing(b, n, 24)
	params := mpisim.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := merge.NewStreamer(m)
		if err := s.Prepare(0); err != nil {
			b.Fatal(err)
		}
		srcs := make([]simmpi.EventSource, n)
		for rank := range srcs {
			cur, err := s.Cursor(rank)
			if err != nil {
				b.Fatal(err)
			}
			srcs[rank] = cur
		}
		if _, err := simmpi.SimulateStreamPar(srcs, params, workers); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "ranks/op")
}

// BenchPredict256 predicts a 256-rank ring from the merged trace.
func BenchPredict256(b *testing.B) { benchPredict(b, 256, 1) }

// BenchPredict1024 predicts a 1024-rank ring from the merged trace (the PR 3
// acceptance benchmark; workers=1 keeps it comparable across PRs).
func BenchPredict1024(b *testing.B) { benchPredict(b, 1024, 1) }

// BenchPredict1024W2 is BenchPredict1024 with the simulation epoch-parallel
// across 2 workers.
func BenchPredict1024W2(b *testing.B) { benchPredict(b, 1024, 2) }

// BenchPredict1024W4 is BenchPredict1024 with the simulation epoch-parallel
// across 4 workers.
func BenchPredict1024W4(b *testing.B) { benchPredict(b, 1024, 4) }

// benchSimulate isolates the LogGP engine from skeleton preparation: cursors
// are prepared once and rewound every op, so the measured loop is purely the
// simulator's event processing, matching, and (for workers > 1) window
// scheduling.
func benchSimulate(b *testing.B, n, workers int) {
	m := mergedRing(b, n, 24)
	s := merge.NewStreamer(m)
	if err := s.Prepare(0); err != nil {
		b.Fatal(err)
	}
	curs := make([]*replay.Cursor, n)
	srcs := make([]simmpi.EventSource, n)
	for rank := range curs {
		cur, err := s.Cursor(rank)
		if err != nil {
			b.Fatal(err)
		}
		curs[rank] = cur
		srcs[rank] = cur
	}
	params := mpisim.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range curs {
			c.Rewind()
		}
		if _, err := simmpi.SimulateStreamPar(srcs, params, workers); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "ranks/op")
}

// BenchSimulate1024W1 runs the engine-only 1024-rank simulation on the
// sequential driver.
func BenchSimulate1024W1(b *testing.B) { benchSimulate(b, 1024, 1) }

// BenchSimulate1024W2 runs the engine-only 1024-rank simulation epoch-
// parallel across 2 workers.
func BenchSimulate1024W2(b *testing.B) { benchSimulate(b, 1024, 2) }

// BenchSimulate1024W4 runs the engine-only 1024-rank simulation epoch-
// parallel across 4 workers.
func BenchSimulate1024W4(b *testing.B) { benchSimulate(b, 1024, 4) }

// benchPredictMaterialized is the pre-streaming reference pipeline:
// decompress all n ranks into full event slices through the rankView walk,
// then simulate.
func benchPredictMaterialized(b *testing.B, n int) {
	m := mergedRing(b, n, 24)
	params := mpisim.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seqs := make([][]trace.Event, n)
		for rank := 0; rank < n; rank++ {
			seq, err := replay.Sequence(m.ForRank(rank), rank)
			if err != nil {
				b.Fatal(err)
			}
			seqs[rank] = seq
		}
		if _, err := simmpi.Simulate(seqs, params); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "ranks/op")
}

// BenchPredictMaterialized256 is the 256-rank materializing reference.
func BenchPredictMaterialized256(b *testing.B) { benchPredictMaterialized(b, 256) }

// BenchPredictMaterialized1024 is the 1024-rank materializing reference (the
// "before" twin of the PR 3 acceptance benchmark).
func BenchPredictMaterialized1024(b *testing.B) { benchPredictMaterialized(b, 1024) }

// benchCommMatrix accumulates the 1024-rank send-volume matrix, either
// through the parallel streaming fan-out (ReplayAll, one row per rank,
// in-flight) or through the serial materializing reference.
func benchCommMatrix(b *testing.B, streaming bool) {
	const n = 1024
	m := mergedRing(b, n, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat := make([][]int64, n)
		rows := make([]int64, n*n)
		for r := range mat {
			mat[r] = rows[r*n : (r+1)*n]
		}
		if streaming {
			s := merge.NewStreamer(m)
			err := s.ReplayAll(0, func(rank int, e *trace.Event) {
				if e.Op.IsSendLike() && e.Peer >= 0 && e.Peer < n {
					mat[rank][e.Peer] += int64(e.Size)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		} else {
			for rank := 0; rank < n; rank++ {
				seq, err := replay.Sequence(m.ForRank(rank), rank)
				if err != nil {
					b.Fatal(err)
				}
				for j := range seq {
					e := &seq[j]
					if e.Op.IsSendLike() && e.Peer >= 0 && e.Peer < n {
						mat[rank][e.Peer] += int64(e.Size)
					}
				}
			}
		}
	}
	b.ReportMetric(float64(n), "ranks/op")
}

// BenchCommMatrix1024 accumulates the communication matrix through the
// streaming parallel fan-out.
func BenchCommMatrix1024(b *testing.B) { benchCommMatrix(b, true) }

// BenchCommMatrixMaterialized1024 is the serial materializing reference.
func BenchCommMatrixMaterialized1024(b *testing.B) { benchCommMatrix(b, false) }
