package bench

// Selective-decode microbenchmarks: the PR acceptance pair is
// DecodeSharded1024 (full decode) vs DecodeSelect1024Rank1 (rank-projected
// decode of the same encoding), which must show the >=3x reduction in both
// decoded payload bytes/op and allocs/op that projection pushdown promises
// for single-rank serving.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cst"
	"repro/internal/ctt"
	"repro/internal/merge"
	"repro/internal/obs"
	"repro/internal/timestat"
	"repro/internal/trace"
)

// shardedCTTs builds n per-rank CTTs over the spmd stencil shape but with
// per-rank-distinct message sizes, so no two ranks' comm records are
// compatible and the merged tree keeps one entry per rank at every comm
// vertex. This is the sharded regime where a rank projection has real work
// to skip — the spmdCTTs fixture merges to one entry spanning all ranks,
// which a projection must materialize anyway.
func shardedCTTs(n, iters int) ([]*ctt.RankCTT, error) {
	_, tree, err := compileSrc(spmdSrc)
	if err != nil {
		return nil, err
	}
	var loop, sendLeaf, recvLeaf, redLeaf *cst.Vertex
	tree.Walk(func(v *cst.Vertex, _ int) {
		switch {
		case loop == nil && v.Kind == cst.KindLoop:
			loop = v
		case sendLeaf == nil && v.Kind == cst.KindComm && v.Op == trace.OpSend:
			sendLeaf = v
		case recvLeaf == nil && v.Kind == cst.KindComm && v.Op == trace.OpRecv:
			recvLeaf = v
		case redLeaf == nil && v.Kind == cst.KindComm && v.Op == trace.OpAllreduce:
			redLeaf = v
		}
	})
	if loop == nil || sendLeaf == nil || recvLeaf == nil || redLeaf == nil {
		return nil, fmt.Errorf("micro: spmd tree missing vertices")
	}
	out := make([]*ctt.RankCTT, n)
	var ev trace.Event
	for r := 0; r < n; r++ {
		c := ctt.NewCompressor(tree, r, timestat.ModeMeanStddev)
		ev = trace.Event{Op: trace.OpInit, Peer: trace.NoPeer, ReqID: -1, DurationNS: 120, ComputeNS: 10}
		c.Event(&ev)
		c.LoopEnter(int32(loop.Site))
		for k := 0; k < iters; k++ {
			c.LoopIter(int32(loop.Site))
			// The tag cycles across iterations, so each leaf holds several
			// distinct comm records per rank — the multi-record payload shape
			// real sites produce — all of it skippable under a projection.
			c.CommSite(int32(sendLeaf.Site))
			ev = trace.Event{Op: trace.OpSend, Peer: r + 1, Size: 4096 + r, Tag: k % 8, ReqID: -1, DurationNS: 1500, ComputeNS: 40}
			c.Event(&ev)
			c.CommSite(int32(recvLeaf.Site))
			ev = trace.Event{Op: trace.OpRecv, Peer: r - 1, Size: 4096 + r, Tag: k % 8, ReqID: -1, DurationNS: 1600, ComputeNS: 55}
			c.Event(&ev)
		}
		c.StructExit()
		c.CommSite(int32(redLeaf.Site))
		ev = trace.Event{Op: trace.OpAllreduce, Peer: trace.NoPeer, Size: 8 + r, ReqID: -1, DurationNS: 2200, ComputeNS: 70}
		c.Event(&ev)
		ev = trace.Event{Op: trace.OpFinalize, Peer: trace.NoPeer, ReqID: -1, DurationNS: 90}
		c.Event(&ev)
		c.Finalize()
		out[r] = c.Finish()
	}
	return out, nil
}

// The sharded 1024-rank fixture is expensive to merge (one entry per rank
// per comm vertex), so both encodings are built once per process and shared
// by every selective-decode benchmark.
var (
	shardedOnce    sync.Once
	shardedPlain   []byte
	shardedIndexed []byte
	shardedErr     error
)

func shardedEncodings(b *testing.B) (plain, indexed []byte) {
	b.Helper()
	shardedOnce.Do(func() {
		ctts, err := shardedCTTs(1024, 24)
		if err != nil {
			shardedErr = err
			return
		}
		m, err := merge.All(ctts, 0)
		if err != nil {
			shardedErr = err
			return
		}
		var pb, ib bytes.Buffer
		if _, err := m.Encode(&pb); err != nil {
			shardedErr = err
			return
		}
		if _, err := m.EncodeIndexed(&ib); err != nil {
			shardedErr = err
			return
		}
		shardedPlain, shardedIndexed = pb.Bytes(), ib.Bytes()
	})
	if shardedErr != nil {
		b.Fatal(shardedErr)
	}
	return shardedPlain, shardedIndexed
}

// selPayloadBytes reports the payload-byte economics of decoding enc under
// sel, via one observed selective pass outside the timed loop.
func selPayloadBytes(b *testing.B, enc []byte, sel merge.Selection) (materialized, skipped int64) {
	b.Helper()
	s := obs.New()
	merge.SetObs(s)
	defer merge.SetObs(obsSink) // restore whatever the harness had attached
	if _, err := merge.DecodeSelect(enc, sel); err != nil {
		b.Fatal(err)
	}
	if s.Value(obs.SelFallbacks) != 0 {
		b.Fatal("selective decode of the bench fixture fell back to a full decode")
	}
	return s.Value(obs.SelBytesMaterialized), s.Value(obs.SelBytesSkipped)
}

// BenchDecodeSharded1024 is the full-decode baseline over the sharded
// 1024-rank encoding: every rank's payload sections are materialized. The
// payload_bytes/op metric is the total payload volume, measured once via an
// all-ranks selective pass.
func BenchDecodeSharded1024(b *testing.B) {
	plain, _ := shardedEncodings(b)
	mat, skip := selPayloadBytes(b, plain, merge.SelectAll())
	if skip != 0 {
		b.Fatal("SelectAll skipped payload sections")
	}
	var rd bytes.Reader
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(plain)
		if _, err := merge.Decode(&rd); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(mat), "payload_bytes/op")
}

// BenchDecodeSelect1024Rank1 decodes the same sharded 1024-rank encoding
// with a single-rank projection against the CYPI section index: structure
// decodes fully, rank 1's payload sections materialize, the other ~1023/1024
// of the payload volume is skipped in O(1) per entry.
func BenchDecodeSelect1024Rank1(b *testing.B) {
	_, indexed := shardedEncodings(b)
	sel := merge.SelectRanks(1)
	mat, skip := selPayloadBytes(b, indexed, sel)
	if skip == 0 {
		b.Fatal("rank projection skipped nothing; fixture is not sharded")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := merge.DecodeSelect(indexed, sel); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(mat), "payload_bytes/op")
}

// BenchCorpusGetProjected1024 measures a cache-disabled rank-projected get:
// reconstruct the encoding, decode it selectively for one rank. The
// comparison baseline is CorpusGetCold1024's full decode.
func BenchCorpusGetProjected1024(b *testing.B) {
	plain, _ := shardedEncodings(b)
	st, h := corpusWith(b, -1, plain)
	defer st.Close()
	ranks := []int{1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := st.GetProjected(h, ranks)
		if err != nil {
			b.Fatal(err)
		}
		tr.Release()
	}
}

// benchReplayRank1024 serves one rank end to end per op — decode the trace,
// then stream-replay the rank — through either the projected or the full
// decode path. This is the query-sliced serving shape the projection exists
// for: decode cost should scale with the slice served, not the trace.
func benchReplayRank1024(b *testing.B, projected bool) {
	plain, indexed := shardedEncodings(b)
	sel := merge.SelectRanks(1)
	var rd bytes.Reader
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var m *merge.Merged
		var err error
		if projected {
			m, err = merge.DecodeSelect(indexed, sel)
		} else {
			rd.Reset(plain)
			m, err = merge.Decode(&rd)
		}
		if err != nil {
			b.Fatal(err)
		}
		events := 0
		if err := merge.NewStreamer(m).Replay(1, func(*trace.Event) { events++ }); err != nil {
			b.Fatal(err)
		}
		if events == 0 {
			b.Fatal("rank 1 replayed no events")
		}
	}
}

// BenchReplayRankProjected1024 serves rank 1 of the sharded 1024-rank trace
// through the rank-projected decode.
func BenchReplayRankProjected1024(b *testing.B) { benchReplayRank1024(b, true) }

// BenchReplayRankFullDecode1024 serves rank 1 through a full decode — the
// pre-projection serving cost, kept as the regression baseline.
func BenchReplayRankFullDecode1024(b *testing.B) { benchReplayRank1024(b, false) }
