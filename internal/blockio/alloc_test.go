package blockio

import (
	"bytes"
	"io"
	"testing"
)

// TestFrameEncodeAllocs pins the steady-state allocation cost of the inline
// frame path: once the accumulator, the inline job, and the pooled flate
// writer are warm, pushing another frame through should stay within a tiny
// budget (index append amortization and pool slack).
func TestFrameEncodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse; allocation counts are not meaningful")
	}
	payload := testPayload(4 << 10)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterOptions{FrameSize: 4 << 10, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the accumulator, inline job buffers, and index slice.
	for i := 0; i < 8; i++ {
		if _, err := w.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := w.Write(payload); err != nil {
			t.Fatal(err)
		}
	})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	const budget = 4
	if avg > budget {
		t.Fatalf("steady-state frame encode allocs = %.1f, budget %d", avg, budget)
	}
}

// TestFrameDecodeAllocs pins the steady-state allocation cost of pipelined
// decode: with the frame recycling channel and pooled inflaters warm, each
// additional container read should cost a bounded number of allocations per
// frame.
func TestFrameDecodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse; allocation counts are not meaningful")
	}
	payload := testPayload(64 << 10)
	enc := encode(t, payload, WriterOptions{FrameSize: 4 << 10, Workers: 1})
	nFrames := 16.0
	out := make([]byte, len(payload))
	for _, workers := range []int{0, 2} {
		avg := testing.AllocsPerRun(20, func() {
			r, err := NewReader(bytes.NewReader(enc), ReaderOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := io.ReadFull(r, out); err != nil {
				t.Fatal(err)
			}
			// Drain terminator + footer so the container fully validates.
			if _, err := r.Read(out[:1]); err != io.EOF {
				t.Fatalf("expected EOF, got %v", err)
			}
			r.Close()
		})
		perFrame := avg / nFrames
		// Inline decode reuses one frame; pipelined decode pays goroutine and
		// channel setup per reader plus fresh frames until recycling kicks in.
		budget := 4.0
		if workers > 0 {
			budget = 16.0
		}
		if perFrame > budget {
			t.Fatalf("workers=%d: decode allocs/frame = %.1f (%.0f total), budget %.0f",
				workers, perFrame, avg, budget)
		}
	}
}
