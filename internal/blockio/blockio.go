// Package blockio implements the CYPB block-compressed container: a framed,
// indexed wrapper that splits an arbitrary payload stream (in this repo, the
// CYPR merged-trace encoding) into fixed-target-size frames, compresses each
// frame independently with raw deflate, and appends a varint frame index in a
// footer. Because frames are independent, encoding fans out across a bounded
// worker pool and decoding pipelines (inflate frame N+1 while the consumer
// parses frame N) — the last single-threaded stage of the pipeline, byte
// serialization, becomes block-parallel the way Recorder-style tracing
// systems and pgzip do it.
//
// Container layout (all integers varint unless noted):
//
//	"CYPB"  4-byte magic
//	version         (currently 1)
//	frame target    (uncompressed bytes per frame the writer aimed for)
//	frame*          repeated, in payload order:
//	    usize+1     uncompressed frame length plus one (0 terminates)
//	    csize       compressed length
//	    crc         CRC-32 (IEEE) of the uncompressed frame bytes
//	    csize bytes of raw deflate data
//	0               body terminator
//	footer index:
//	    nframes
//	    per frame: offset (from container start), usize, csize, crc
//	footerLen       8-byte little-endian length of the footer index
//	"BPYC"  4-byte trailing magic
//
// The trailing fixed-width length plus magic make the index reachable from
// the end of the file (ReadIndex), so a consumer with an io.ReaderAt can
// seek to, inflate, and verify any single frame without touching the rest.
// Streaming readers cross-check the footer against the frames they actually
// consumed, so a mangled index is an error even when every frame inflated.
//
// Determinism: frames are cut purely by uncompressed payload offset (every
// FrameSize bytes) and each frame is compressed at the fixed encpool.FlateLevel,
// so the emitted container is byte-identical for a given frame size
// regardless of the worker count or the caller's Write chunking.
package blockio

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Magic is the 4-byte container header magic.
var Magic = [4]byte{'C', 'Y', 'P', 'B'}

// trailerMagic closes the container; its reversal of Magic makes a truncated
// copy detectable from either end.
var trailerMagic = [4]byte{'B', 'P', 'Y', 'C'}

const (
	version = 1

	// DefaultFrameSize is the target uncompressed frame length. 128KB is
	// large enough that deflate's window (32KB) sees essentially the same
	// context it would in a single stream — the size penalty versus one gzip
	// member stays in the low percents — while still cutting a paper-scale
	// trace into enough frames to occupy a small worker pool.
	DefaultFrameSize = 128 << 10

	// maxFrameSize bounds declared frame lengths (compressed and
	// uncompressed). Frame headers are untrusted input: a few bytes can
	// declare a multi-gigabyte frame, so anything implausibly large is an
	// error before any buffer is sized to it.
	maxFrameSize = 1 << 27

	// maxFrames bounds the declared frame count in the footer.
	maxFrames = 1 << 24

	// trailerLen is the fixed-width container suffix: the 8-byte footer
	// length plus the trailing magic.
	trailerLen = 12
)

// frameMeta is one frame's index entry as tracked by writers and readers.
type frameMeta struct {
	off   int64  // container offset of the frame's usize+1 header
	usize uint32 // uncompressed length
	csize uint32 // compressed length
	crc   uint32 // CRC-32 (IEEE) of the uncompressed bytes
}

// uvarintLen returns the encoded length of x, for offset accounting without
// re-encoding.
func uvarintLen(x uint64) int64 {
	n := int64(1)
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// readEarned reads exactly n bytes from r into dst (reused and returned),
// growing the buffer geometrically so each growth step is earned by bytes
// actually read: a hostile header declaring a huge length dies with a small
// allocation when the stream runs dry, instead of sizing a buffer to the lie
// up front.
func readEarned(r io.Reader, dst []byte, n int) ([]byte, error) {
	dst = dst[:0]
	for len(dst) < n {
		want := n - len(dst)
		if want > 64<<10 {
			want = 64 << 10
		}
		if cap(dst)-len(dst) < want {
			newCap := 2 * cap(dst)
			if newCap < len(dst)+want {
				newCap = len(dst) + want
			}
			nb := make([]byte, len(dst), newCap)
			copy(nb, dst)
			dst = nb
		}
		k, err := io.ReadFull(r, dst[len(dst):len(dst)+want])
		dst = dst[:len(dst)+k]
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return dst, err
		}
	}
	return dst, nil
}

// byteReader adapts an io.Reader for binary.ReadUvarint without buffering,
// used on the random-access index path where the source is a section reader.
type byteReader struct {
	r   io.Reader
	n   int64 // bytes consumed
	one [1]byte
}

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	b.n++
	return b.one[0], nil
}

// readUvarint reads one uvarint via ReadByte, wrapping overflow errors.
func readUvarint(br io.ByteReader) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err == io.EOF {
		// EOF mid-structure is truncation from the container's perspective.
		return 0, io.ErrUnexpectedEOF
	}
	return v, err
}

// frameHeaderError builds the common malformed-header error.
func frameHeaderError(frame int, what string, v uint64) error {
	return fmt.Errorf("blockio: frame %d: implausible %s %d", frame, what, v)
}
