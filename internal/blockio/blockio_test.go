package blockio

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"math/rand"
	"testing"
)

// testPayload builds a deterministic pseudo-random payload with enough
// structure (repeated 64-byte motifs) that deflate actually compresses it.
func testPayload(n int) []byte {
	rng := rand.New(rand.NewSource(42))
	motifs := make([][]byte, 16)
	for i := range motifs {
		motifs[i] = make([]byte, 64)
		rng.Read(motifs[i])
	}
	out := make([]byte, 0, n)
	for len(out) < n {
		m := motifs[rng.Intn(len(motifs))]
		if rem := n - len(out); rem < len(m) {
			m = m[:rem]
		}
		out = append(out, m...)
	}
	return out
}

// encode round-trips payload through a container with the given options.
func encode(t testing.TB, payload []byte, opt WriterOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Write in awkward chunk sizes to prove framing ignores call chunking.
	for off := 0; off < len(payload); {
		k := 1000
		if off+k > len(payload) {
			k = len(payload) - off
		}
		if _, err := w.Write(payload[off : off+k]); err != nil {
			t.Fatal(err)
		}
		off += k
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := w.BytesWritten(); got != int64(buf.Len()) {
		t.Fatalf("BytesWritten %d, buffer has %d", got, buf.Len())
	}
	return buf.Bytes()
}

// decode reads a container back with the given worker setting.
func decode(enc []byte, workers int) ([]byte, error) {
	r, err := NewReader(bytes.NewReader(enc), ReaderOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

func TestRoundTripSizes(t *testing.T) {
	const frame = 4 << 10
	for _, n := range []int{0, 1, 100, frame - 1, frame, frame + 1, 3 * frame, 10*frame + 137} {
		for _, encW := range []int{1, 3} {
			for _, decW := range []int{0, 1, 2} {
				payload := testPayload(n)
				enc := encode(t, payload, WriterOptions{FrameSize: frame, Workers: encW})
				got, err := decode(enc, decW)
				if err != nil {
					t.Fatalf("n=%d encW=%d decW=%d: %v", n, encW, decW, err)
				}
				if !bytes.Equal(got, payload) {
					t.Fatalf("n=%d encW=%d decW=%d: payload mismatch (%d vs %d bytes)",
						n, encW, decW, len(got), len(payload))
				}
			}
		}
	}
}

// TestDeterministicAcrossWorkers pins the format's central determinism
// claim: for a fixed frame size, the emitted container bytes are identical
// at every worker count.
func TestDeterministicAcrossWorkers(t *testing.T) {
	payload := testPayload(300 << 10)
	base := encode(t, payload, WriterOptions{FrameSize: 32 << 10, Workers: 1})
	for _, workers := range []int{2, 4, 7} {
		got := encode(t, payload, WriterOptions{FrameSize: 32 << 10, Workers: workers})
		if !bytes.Equal(base, got) {
			t.Fatalf("workers=%d: container differs from workers=1 (%d vs %d bytes)",
				workers, len(got), len(base))
		}
	}
	// A different frame size legitimately produces different bytes (frame
	// boundaries move), but still round-trips.
	other := encode(t, payload, WriterOptions{FrameSize: 16 << 10, Workers: 2})
	if bytes.Equal(base, other) {
		t.Fatal("different frame sizes produced identical containers")
	}
	got, err := decode(other, 1)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("16KB-frame container failed to round-trip: %v", err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	payload := testPayload(40 << 10)
	enc := encode(t, payload, WriterOptions{FrameSize: 8 << 10, Workers: 2})
	for _, workers := range []int{0, 2} {
		// Flip one byte at every offset band: header, frame bodies, footer.
		for _, off := range []int{0, 3, 10, len(enc) / 4, len(enc) / 2, len(enc) - 20, len(enc) - 3} {
			mut := append([]byte(nil), enc...)
			mut[off] ^= 0x5a
			got, err := decode(mut, workers)
			if err == nil && bytes.Equal(got, payload) {
				// Flips inside deflate padding bits can be harmless; only a
				// silent wrong payload is a failure.
				continue
			}
			if err == nil {
				t.Fatalf("workers=%d off=%d: corruption decoded silently to %d differing bytes",
					workers, off, len(got))
			}
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	payload := testPayload(40 << 10)
	enc := encode(t, payload, WriterOptions{FrameSize: 8 << 10, Workers: 1})
	for _, workers := range []int{0, 1} {
		for cut := 0; cut < len(enc); cut += 97 {
			got, err := decode(enc[:cut], workers)
			if err == nil {
				t.Fatalf("workers=%d: truncation at %d/%d decoded silently (%d bytes)",
					workers, cut, len(enc), len(got))
			}
		}
	}
}

// TestMangledFooter verifies the streaming reader cross-checks the footer
// index against the frames it consumed: every field disagreement errors even
// though the payload itself inflated fine.
func TestMangledFooter(t *testing.T) {
	payload := testPayload(20 << 10)
	enc := encode(t, payload, WriterOptions{FrameSize: 8 << 10, Workers: 1})
	// The footer starts after the body terminator; rewrite its frame count.
	ix, err := ReadIndex(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Frames) != 3 {
		t.Fatalf("fixture has %d frames, want 3", len(ix.Frames))
	}
	// Locate the footer: it spans [len-12-footerLen, len-12).
	footerLen := int(uint64(enc[len(enc)-12]) | uint64(enc[len(enc)-11])<<8) // small footer: low bytes suffice
	footerStart := len(enc) - trailerLen - footerLen
	for off := footerStart; off < len(enc); off++ {
		mut := append([]byte(nil), enc...)
		mut[off] ^= 0x11
		for _, workers := range []int{0, 2} {
			if _, err := decode(mut, workers); err == nil {
				t.Fatalf("workers=%d: mangled footer byte %d accepted", workers, off)
			}
		}
	}
}

func TestIndexSelectiveDecode(t *testing.T) {
	payload := testPayload(100<<10 + 77)
	enc := encode(t, payload, WriterOptions{FrameSize: 16 << 10, Workers: 2})
	ra := bytes.NewReader(enc)
	ix, err := ReadIndex(ra, int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ix.UncompressedSize(), int64(len(payload)); got != want {
		t.Fatalf("UncompressedSize %d, want %d", got, want)
	}
	if ix.FrameTarget != 16<<10 {
		t.Fatalf("FrameTarget %d, want %d", ix.FrameTarget, 16<<10)
	}
	// Read frames out of order; each must verify and match its span.
	var buf []byte
	for _, i := range []int{len(ix.Frames) - 1, 0, len(ix.Frames) / 2} {
		e := ix.Frames[i]
		buf, err = ix.ReadFrame(ra, i, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		want := payload[e.UOff : e.UOff+int64(e.USize)]
		if !bytes.Equal(buf, want) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
	if _, err := ix.ReadFrame(ra, len(ix.Frames), nil); err == nil {
		t.Fatal("out-of-range frame index accepted")
	}
	// Corrupt one frame body: only that frame's selective read fails.
	mid := ix.Frames[1]
	mut := append([]byte(nil), enc...)
	mut[int(mid.Off)+8] ^= 0xff
	mra := bytes.NewReader(mut)
	if _, err := ix.ReadFrame(mra, 1, nil); err == nil {
		t.Fatal("corrupted frame body verified")
	}
	if _, err := ix.ReadFrame(mra, 0, nil); err != nil {
		t.Fatalf("untouched frame failed after sibling corruption: %v", err)
	}
}

func TestSniffFormats(t *testing.T) {
	payload := []byte("CYPRnot really, but enough payload to sniff")
	blocked := encode(t, payload, WriterOptions{FrameSize: 1 << 10, Workers: 1})

	var gzBuf bytes.Buffer
	gw := gzip.NewWriter(&gzBuf)
	gw.Write(payload)
	gw.Close()

	cases := []struct {
		name string
		in   []byte
		want Format
	}{
		{"raw", payload, FormatRaw},
		{"gzip", gzBuf.Bytes(), FormatGzip},
		{"blocked", blocked, FormatBlocked},
		{"short", []byte{'C'}, FormatRaw},
	}
	for _, tc := range cases {
		sn, err := SniffReader(bytes.NewReader(tc.in), 1)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if sn.Format != tc.want {
			t.Fatalf("%s: sniffed %v, want %v", tc.name, sn.Format, tc.want)
		}
		if tc.name != "short" {
			got, err := io.ReadAll(sn.R)
			if err != nil {
				t.Fatalf("%s: reading payload: %v", tc.name, err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("%s: payload mismatch", tc.name)
			}
			if err := sn.Finish(); err != nil {
				t.Fatalf("%s: Finish: %v", tc.name, err)
			}
		}
		if err := sn.Close(); err != nil {
			t.Fatalf("%s: Close: %v", tc.name, err)
		}
	}
}

// TestAbandonedReaderShutsDown pins the pipeline teardown path: closing a
// pipelined reader mid-payload must not deadlock or leak (the race job
// watches the goroutines).
func TestAbandonedReaderShutsDown(t *testing.T) {
	payload := testPayload(256 << 10)
	enc := encode(t, payload, WriterOptions{FrameSize: 4 << 10, Workers: 2})
	for _, workers := range []int{1, 4} {
		r, err := NewReader(bytes.NewReader(enc), ReaderOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var first [100]byte
		if _, err := io.ReadFull(r, first[:]); err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFinishReportsLateFooterError(t *testing.T) {
	// A consumer that stops exactly at the payload boundary never reads the
	// footer through Read; Finish must still surface a mangled index.
	payload := testPayload(12 << 10)
	enc := encode(t, payload, WriterOptions{FrameSize: 4 << 10, Workers: 1})
	mut := append([]byte(nil), enc...)
	mut[len(mut)-2] ^= 0x40 // inside the trailing magic
	sn, err := SniffReader(bytes.NewReader(mut), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(sn.R, got); err != nil {
		// The pipelined fetcher may have already tripped on the footer; that
		// is the same detection, just earlier.
		return
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch before footer check")
	}
	if err := sn.Finish(); err == nil {
		t.Fatal("Finish accepted a mangled trailer")
	}
}

func ExampleWriter() {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, WriterOptions{FrameSize: 8 << 10, Workers: 4})
	io.WriteString(w, "payload bytes")
	w.Close()
	r, _ := NewReader(bytes.NewReader(buf.Bytes()), ReaderOptions{Workers: 1})
	defer r.Close()
	out, _ := io.ReadAll(r)
	fmt.Println(string(out))
	// Output: payload bytes
}
