package blockio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// IndexEntry describes one frame for random access.
type IndexEntry struct {
	// Off is the container offset of the frame's header.
	Off int64
	// UOff is the payload (uncompressed) offset the frame starts at.
	UOff int64
	// USize and CSize are the uncompressed and compressed lengths.
	USize uint32
	CSize uint32
	// CRC is the CRC-32 (IEEE) of the uncompressed frame bytes.
	CRC uint32
}

// Index is a parsed footer: enough to locate, inflate, and verify any single
// frame of a container without reading the others — the selective-decode
// path of the format.
type Index struct {
	// FrameTarget is the writer's target uncompressed frame size.
	FrameTarget int
	// Frames lists the frames in payload order.
	Frames []IndexEntry
}

// UncompressedSize returns the total payload length.
func (ix *Index) UncompressedSize() int64 {
	if n := len(ix.Frames); n > 0 {
		last := ix.Frames[n-1]
		return last.UOff + int64(last.USize)
	}
	return 0
}

// ReadIndex parses a container's footer from the end of ra (size is the
// total container length) and sanity-checks the header at offset 0.
func ReadIndex(ra io.ReaderAt, size int64) (*Index, error) {
	// Header: magic + version + frame target.
	var head [4 + 2*binary.MaxVarintLen64]byte
	hn := len(head)
	if int64(hn) > size {
		hn = int(size)
	}
	if _, err := ra.ReadAt(head[:hn], 0); err != nil && err != io.EOF {
		return nil, fmt.Errorf("blockio: reading header: %w", err)
	}
	if hn < len(Magic) || [4]byte(head[:4]) != Magic {
		return nil, fmt.Errorf("blockio: bad magic")
	}
	hr := bytes.NewReader(head[4:hn])
	v, err := readUvarint(hr)
	if err != nil || v != version {
		return nil, fmt.Errorf("blockio: unsupported version")
	}
	ft, err := readUvarint(hr)
	if err != nil || ft == 0 || ft > maxFrameSize {
		return nil, fmt.Errorf("blockio: implausible frame target")
	}

	// Trailer: fixed-width footer length + magic.
	if size < trailerLen {
		return nil, fmt.Errorf("blockio: container too short for trailer")
	}
	var trailer [trailerLen]byte
	if _, err := ra.ReadAt(trailer[:], size-trailerLen); err != nil {
		return nil, fmt.Errorf("blockio: reading trailer: %w", err)
	}
	if [4]byte(trailer[8:12]) != trailerMagic {
		return nil, fmt.Errorf("blockio: bad trailing magic %q", trailer[8:12])
	}
	footerLen := binary.LittleEndian.Uint64(trailer[:8])
	if footerLen > uint64(size-trailerLen) || footerLen > (4*binary.MaxVarintLen64+1)*maxFrames {
		return nil, fmt.Errorf("blockio: implausible footer length %d", footerLen)
	}

	footer := make([]byte, footerLen)
	if _, err := ra.ReadAt(footer, size-trailerLen-int64(footerLen)); err != nil {
		return nil, fmt.Errorf("blockio: reading footer: %w", err)
	}
	fr := bytes.NewReader(footer)
	count, err := readUvarint(fr)
	if err != nil {
		return nil, fmt.Errorf("blockio: footer frame count: %w", err)
	}
	if count > maxFrames {
		return nil, fmt.Errorf("blockio: implausible footer frame count %d", count)
	}
	ix := &Index{FrameTarget: int(ft)}
	var uoff int64
	for i := uint64(0); i < count; i++ {
		var e IndexEntry
		vals := [4]uint64{}
		for k := range vals {
			v, err := readUvarint(fr)
			if err != nil {
				return nil, fmt.Errorf("blockio: footer frame %d: %w", i, err)
			}
			vals[k] = v
		}
		if vals[0] > uint64(size) || vals[1] > maxFrameSize || vals[2] > maxFrameSize || vals[3] > 0xffffffff {
			return nil, fmt.Errorf("blockio: footer frame %d out of range", i)
		}
		e.Off = int64(vals[0])
		e.USize = uint32(vals[1])
		e.CSize = uint32(vals[2])
		e.CRC = uint32(vals[3])
		e.UOff = uoff
		uoff += int64(e.USize)
		ix.Frames = append(ix.Frames, e)
	}
	if fr.Len() != 0 {
		return nil, fmt.Errorf("blockio: %d trailing footer bytes", fr.Len())
	}
	return ix, nil
}

// ReadFrame inflates and verifies frame i from ra into dst (reused when
// large enough) and returns the payload bytes. The frame's on-disk header
// must agree with the index entry; any mismatch, checksum failure, or length
// disagreement is an error.
func (ix *Index) ReadFrame(ra io.ReaderAt, i int, dst []byte) ([]byte, error) {
	if i < 0 || i >= len(ix.Frames) {
		return nil, fmt.Errorf("blockio: frame %d out of range [0,%d)", i, len(ix.Frames))
	}
	e := ix.Frames[i]
	maxHdr := int64(3 * binary.MaxVarintLen64)
	sr := io.NewSectionReader(ra, e.Off, maxHdr+int64(e.CSize))
	br := byteReader{r: sr}
	u, err := readUvarint(&br)
	if err != nil {
		return nil, fmt.Errorf("blockio: frame %d header: %w", i, err)
	}
	csize, err := readUvarint(&br)
	if err != nil {
		return nil, fmt.Errorf("blockio: frame %d header: %w", i, err)
	}
	crc, err := readUvarint(&br)
	if err != nil {
		return nil, fmt.Errorf("blockio: frame %d header: %w", i, err)
	}
	if u != uint64(e.USize)+1 || csize != uint64(e.CSize) || crc != uint64(e.CRC) {
		return nil, fmt.Errorf("blockio: frame %d header disagrees with index", i)
	}
	comp, err := readEarned(sr, nil, int(e.CSize))
	if err != nil {
		return nil, fmt.Errorf("blockio: frame %d body: %w", i, err)
	}
	f := decFrame{comp: comp, out: dst, usize: int(e.USize), crc: e.CRC}
	inflateInto(&f, 0)
	if f.err != nil {
		return nil, fmt.Errorf("blockio: frame %d: %w", i, f.err)
	}
	return f.out, nil
}
