package blockio

import (
	"repro/internal/obs"
	ftrace "repro/internal/obs/trace"
)

// sink is the package's attached metrics sink; nil (the default) disables
// observation. Wired once at startup (cypress.EnableObs) and only read
// afterwards, like the other package-level pipeline sinks.
var sink *obs.Sink

// SetObs attaches a metrics sink recording frame counts, per-frame byte and
// timing histograms, and (via encpool) flate pool traffic. A nil sink
// disables observation. Not safe to call concurrently with container use.
func SetObs(s *obs.Sink) { sink = s }

// rec is the package's attached flight recorder: one deflate span per frame
// on the "blockio.enc" track and one inflate span per frame on
// "blockio.dec", with the worker index as the lane so parallel codecs render
// as real swimlanes. nil (the default) records nothing. Same wiring
// discipline as sink.
var rec *ftrace.Recorder

// SetTrace attaches a flight recorder to the blockio package. Not safe to
// call concurrently with container use.
func SetTrace(r *ftrace.Recorder) { rec = r }
