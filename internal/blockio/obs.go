package blockio

import "repro/internal/obs"

// sink is the package's attached metrics sink; nil (the default) disables
// observation. Wired once at startup (cypress.EnableObs) and only read
// afterwards, like the other package-level pipeline sinks.
var sink *obs.Sink

// SetObs attaches a metrics sink recording frame counts, per-frame byte and
// timing histograms, and (via encpool) flate pool traffic. A nil sink
// disables observation. Not safe to call concurrently with container use.
func SetObs(s *obs.Sink) { sink = s }
