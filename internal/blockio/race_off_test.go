//go:build !race

package blockio

// raceEnabled reports whether the race detector instruments this build. The
// detector makes sync.Pool drop items at random, so pooled paths allocate and
// allocation-count assertions become meaningless under -race.
const raceEnabled = false
