//go:build race

package blockio

const raceEnabled = true
