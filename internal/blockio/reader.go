package blockio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"

	"repro/internal/encpool"
	"repro/internal/obs"
	ftrace "repro/internal/obs/trace"
)

// ReaderOptions configures a container reader.
type ReaderOptions struct {
	// Workers bounds the concurrent inflate workers. Values <= 0 inflate
	// inline on the Read caller with no goroutines; values >= 1 run a fetch
	// goroutine plus that many inflate workers, so frame N+1 decompresses
	// while the consumer parses frame N. The decoded bytes are identical
	// either way.
	Workers int
}

// decFrame is one frame moving through the decode pipeline. Frames are
// recycled reader-locally, so steady-state decode does not allocate per
// frame.
type decFrame struct {
	comp  []byte
	out   []byte
	usize int
	crc   uint32
	err   error
	ready chan struct{} // 1-buffered completion signal, reused across frames
	brd   bytes.Reader
}

// Reader streams the payload back out of a CYPB container, verifying each
// frame's checksum and, at the terminator, the footer index against the
// frames actually consumed. Close stops the pipeline; it is required for
// Workers >= 1 if the payload is abandoned before EOF.
type Reader struct {
	br    *bufio.Reader
	ownBR bool

	frameTarget int
	off         int64 // container offset consumed by the fetch side
	idx         []frameMeta

	cur    *decFrame
	curPos int
	err    error
	fin    bool

	// Pipelined state (Workers >= 1).
	workers  int
	work     chan *decFrame
	ordered  chan *decFrame
	freeF    chan *decFrame
	quit     chan struct{}
	quitOnce sync.Once
	wg       sync.WaitGroup
	fetchErr error // published before ordered closes

	inline decFrame // Workers <= 0 reuses one frame inline
	nDec   int64
}

// NewReader parses the container header from r and returns the payload
// reader. If r is already a *bufio.Reader it is used directly (the caller
// keeps ownership); otherwise a pooled buffered reader wraps it and is
// returned to the pool on Close.
func NewReader(r io.Reader, opt ReaderOptions) (*Reader, error) {
	br, ok := r.(*bufio.Reader)
	own := false
	if !ok {
		br = encpool.GetBufioReader(r)
		own = true
	}
	d := &Reader{br: br, ownBR: own, workers: opt.Workers}
	if err := d.readHeader(); err != nil {
		if own {
			encpool.PutBufioReader(br)
		}
		return nil, err
	}
	if d.workers >= 1 {
		d.work = make(chan *decFrame, d.workers)
		d.ordered = make(chan *decFrame, d.workers+2)
		d.freeF = make(chan *decFrame, d.workers+2)
		d.quit = make(chan struct{})
		d.wg.Add(1 + d.workers)
		go d.fetcher()
		for i := 0; i < d.workers; i++ {
			go d.inflateWorker(int32(i))
		}
	}
	return d, nil
}

func (d *Reader) readHeader() error {
	var magic [4]byte
	if _, err := io.ReadFull(d.br, magic[:]); err != nil {
		return fmt.Errorf("blockio: reading magic: %w", err)
	}
	if magic != Magic {
		return fmt.Errorf("blockio: bad magic %q", magic)
	}
	d.off = int64(len(Magic))
	v, err := readUvarint(d.br)
	if err != nil {
		return fmt.Errorf("blockio: reading version: %w", err)
	}
	if v != version {
		return fmt.Errorf("blockio: unsupported version %d", v)
	}
	d.off += uvarintLen(v)
	ft, err := readUvarint(d.br)
	if err != nil {
		return fmt.Errorf("blockio: reading frame target: %w", err)
	}
	if ft == 0 || ft > maxFrameSize {
		return fmt.Errorf("blockio: implausible frame target %d", ft)
	}
	d.off += uvarintLen(ft)
	d.frameTarget = int(ft)
	return nil
}

// FrameTarget returns the frame size recorded in the container header.
func (d *Reader) FrameTarget() int { return d.frameTarget }

// fetchFrame reads the next frame header and compressed body into f, or
// reports done=true after validating the footer. It runs on the fetch
// goroutine (pipelined) or the Read caller (inline).
func (d *Reader) fetchFrame(f *decFrame) (done bool, err error) {
	u, err := readUvarint(d.br)
	if err != nil {
		return false, fmt.Errorf("blockio: frame %d header: %w", len(d.idx), err)
	}
	if u == 0 {
		return true, d.checkFooter()
	}
	hdrOff := d.off
	usize := u - 1
	if usize > maxFrameSize {
		return false, frameHeaderError(len(d.idx), "frame size", usize)
	}
	csize, err := readUvarint(d.br)
	if err != nil {
		return false, fmt.Errorf("blockio: frame %d header: %w", len(d.idx), err)
	}
	if csize > maxFrameSize {
		return false, frameHeaderError(len(d.idx), "compressed size", csize)
	}
	crc, err := readUvarint(d.br)
	if err != nil {
		return false, fmt.Errorf("blockio: frame %d header: %w", len(d.idx), err)
	}
	if crc > 0xffffffff {
		return false, frameHeaderError(len(d.idx), "checksum", crc)
	}
	if len(d.idx) >= maxFrames {
		return false, fmt.Errorf("blockio: more than %d frames", maxFrames)
	}
	f.usize = int(usize)
	f.crc = uint32(crc)
	f.err = nil
	f.comp, err = readEarned(d.br, f.comp, int(csize))
	if err != nil {
		return false, fmt.Errorf("blockio: frame %d body: %w", len(d.idx), err)
	}
	d.off = hdrOff + uvarintLen(u) + uvarintLen(csize) + uvarintLen(crc) + int64(csize)
	d.idx = append(d.idx, frameMeta{off: hdrOff, usize: uint32(usize), csize: uint32(csize), crc: uint32(crc)})
	return false, nil
}

// inflateInto decompresses f.comp into f.out and verifies length and
// checksum. lane is the inflate worker's index for the flight-recorder
// swimlane (0 for inline and random-access decodes).
func inflateInto(f *decFrame, lane int32) {
	var t0 time.Time
	if sink.Enabled() {
		t0 = time.Now()
	}
	tsp := rec.Begin(ftrace.CatIODec, ftrace.NameInflate, lane)
	f.brd.Reset(f.comp)
	fr := encpool.GetFlateReader(&f.brd)
	out, err := readEarned(fr, f.out, f.usize)
	f.out = out
	if err == nil {
		// The deflate stream must produce exactly usize bytes.
		var one [1]byte
		if k, _ := fr.Read(one[:]); k != 0 {
			err = fmt.Errorf("blockio: frame longer than declared %d bytes", f.usize)
		}
	}
	encpool.PutFlateReader(fr)
	switch {
	case err != nil:
		f.err = fmt.Errorf("blockio: inflating frame: %w", err)
	case crc32.ChecksumIEEE(f.out) != f.crc:
		f.err = fmt.Errorf("blockio: frame checksum mismatch")
	}
	tsp.End(int64(len(f.comp)), int64(len(f.out)))
	if sink.Enabled() {
		sink.Inc(obs.IOFramesDec)
		sink.ObserveSince(obs.HistIOInflateNS, t0)
	}
}

// checkFooter reads the footer index and cross-checks it against the frames
// the reader actually consumed; any disagreement is an error even though the
// payload itself decoded.
func (d *Reader) checkFooter() error {
	var n int64 // footer bytes consumed
	rd := func(what string) (uint64, error) {
		v, err := readUvarint(d.br)
		if err != nil {
			return 0, fmt.Errorf("blockio: footer %s: %w", what, err)
		}
		n += uvarintLen(v)
		return v, nil
	}
	count, err := rd("frame count")
	if err != nil {
		return err
	}
	if count != uint64(len(d.idx)) {
		return fmt.Errorf("blockio: footer frame count %d, consumed %d frames", count, len(d.idx))
	}
	for i := range d.idx {
		m := d.idx[i]
		for _, fld := range []struct {
			name string
			want uint64
		}{
			{"offset", uint64(m.off)},
			{"usize", uint64(m.usize)},
			{"csize", uint64(m.csize)},
			{"crc", uint64(m.crc)},
		} {
			got, err := rd(fld.name)
			if err != nil {
				return err
			}
			if got != fld.want {
				return fmt.Errorf("blockio: footer frame %d %s %d, consumed %d", i, fld.name, got, fld.want)
			}
		}
	}
	var trailer [trailerLen]byte
	if _, err := io.ReadFull(d.br, trailer[:]); err != nil {
		return fmt.Errorf("blockio: reading trailer: %w", err)
	}
	if got := binary.LittleEndian.Uint64(trailer[:8]); got != uint64(n) {
		return fmt.Errorf("blockio: footer length %d, consumed %d", got, n)
	}
	if [4]byte(trailer[8:12]) != trailerMagic {
		return fmt.Errorf("blockio: bad trailing magic %q", trailer[8:12])
	}
	return nil
}

// fetcher streams frame headers and compressed bodies off the underlying
// reader, fanning inflate work out to the pool while preserving payload
// order through the ordered queue.
func (d *Reader) fetcher() {
	defer d.wg.Done()
	for {
		f := d.getFrame()
		done, err := d.fetchFrame(f)
		if done || err != nil {
			d.fetchErr = err
			close(d.work)
			close(d.ordered)
			return
		}
		select {
		case d.work <- f:
		case <-d.quit:
			close(d.work)
			return
		}
		select {
		case d.ordered <- f:
		case <-d.quit:
			close(d.work)
			return
		}
	}
}

func (d *Reader) inflateWorker(lane int32) {
	defer d.wg.Done()
	for f := range d.work {
		inflateInto(f, lane)
		f.ready <- struct{}{}
	}
}

func (d *Reader) getFrame() *decFrame {
	select {
	case f := <-d.freeF:
		return f
	default:
		return &decFrame{ready: make(chan struct{}, 1)}
	}
}

// next advances to the next decoded frame; it returns io.EOF after the
// terminator and a validated footer.
func (d *Reader) next() error {
	if d.fin {
		return io.EOF
	}
	if d.workers >= 1 {
		f, ok := <-d.ordered
		if !ok {
			d.fin = true
			if d.fetchErr != nil {
				return d.fetchErr
			}
			return io.EOF
		}
		<-f.ready
		if f.err != nil {
			return f.err
		}
		d.cur, d.curPos = f, 0
		return nil
	}
	f := &d.inline
	done, err := d.fetchFrame(f)
	if err != nil {
		return err
	}
	if done {
		d.fin = true
		return io.EOF
	}
	inflateInto(f, 0)
	if f.err != nil {
		return f.err
	}
	d.cur, d.curPos = f, 0
	return nil
}

// Read implements io.Reader over the concatenated frame payloads.
func (d *Reader) Read(p []byte) (int, error) {
	if d.err != nil {
		return 0, d.err
	}
	n := 0
	for n < len(p) {
		if d.cur == nil || d.curPos >= len(d.cur.out) {
			if d.cur != nil && d.workers >= 1 {
				// Recycle the consumed frame if the pipeline wants it.
				select {
				case d.freeF <- d.cur:
				default:
				}
			}
			d.cur = nil
			if err := d.next(); err != nil {
				if err != io.EOF {
					d.err = err
				}
				if n > 0 && err == io.EOF {
					return n, nil
				}
				return n, err
			}
			continue
		}
		k := copy(p[n:], d.cur.out[d.curPos:])
		d.curPos += k
		n += k
	}
	return n, nil
}

// Close shuts the decode pipeline down and releases pooled resources. It is
// safe to call after EOF or mid-stream; it does not close the underlying
// reader.
func (d *Reader) Close() error {
	if d.quit != nil {
		// The fetcher's queue sends all select on quit, and worker completion
		// signals are buffered, so closing quit is enough to let every
		// pipeline goroutine run to exit without the consumer draining.
		d.quitOnce.Do(func() { close(d.quit) })
		d.wg.Wait()
	}
	if d.ownBR {
		encpool.PutBufioReader(d.br)
		d.ownBR = false
		d.br = nil
	}
	return nil
}
