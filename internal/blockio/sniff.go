package blockio

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"

	"repro/internal/encpool"
)

// Format identifies a trace container layer, sniffed from its leading magic.
type Format uint8

const (
	// FormatRaw is a bare payload (for trace files, the CYPR stream).
	FormatRaw Format = iota
	// FormatGzip is the payload inside a gzip member (Cypress+Gzip).
	FormatGzip
	// FormatBlocked is the payload inside a CYPB block container.
	FormatBlocked
)

// String returns the format's stable name.
func (f Format) String() string {
	switch f {
	case FormatRaw:
		return "raw"
	case FormatGzip:
		return "gzip"
	case FormatBlocked:
		return "blocked"
	}
	return "unknown"
}

// Sniffed is a trace stream with its container layer unwrapped: R reads the
// bare payload whatever the outer format was. It replaces the per-command
// hand-rolled gzip magic peeks with one shared helper that also recognizes
// the CYPB container.
type Sniffed struct {
	// R reads the unwrapped payload.
	R io.Reader
	// Format records which container layer (if any) was removed.
	Format Format

	br    *bufio.Reader
	ownBR bool
	gz    *gzip.Reader
	blk   *Reader
}

// Sniff peeks br's leading bytes and unwraps the container layer it finds:
// gzip (0x1f 0x8b), CYPB, or nothing (raw). br must be positioned at the
// start of the stream; the caller keeps ownership of it. workers configures
// the decode pipeline when the stream turns out to be a CYPB container (see
// ReaderOptions.Workers); it is ignored for the other formats.
func Sniff(br *bufio.Reader, workers int) (Sniffed, error) {
	magic, err := br.Peek(2)
	if err != nil {
		// Too short to hold any container magic: hand it to the payload
		// parser raw, whose own magic check produces the canonical error.
		return Sniffed{R: br, Format: FormatRaw}, nil
	}
	if magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return Sniffed{}, fmt.Errorf("blockio: gzip layer: %w", err)
		}
		return Sniffed{R: gz, Format: FormatGzip, gz: gz}, nil
	}
	if m4, err := br.Peek(4); err == nil && [4]byte(m4) == Magic {
		blk, err := NewReader(br, ReaderOptions{Workers: workers})
		if err != nil {
			return Sniffed{}, err
		}
		return Sniffed{R: blk, Format: FormatBlocked, blk: blk}, nil
	}
	return Sniffed{R: br, Format: FormatRaw}, nil
}

// SniffReader is Sniff over an arbitrary reader: it wraps r in a pooled
// buffered reader first (released by Close). Use Sniff directly when the
// caller already buffers.
func SniffReader(r io.Reader, workers int) (Sniffed, error) {
	br := encpool.GetBufioReader(r)
	sn, err := Sniff(br, workers)
	if err != nil {
		encpool.PutBufioReader(br)
		return Sniffed{}, err
	}
	sn.br = br
	sn.ownBR = true
	return sn, nil
}

// Finish verifies whatever container trailer the payload parser's early stop
// may have left unread. For a CYPB stream it drains the remaining frames
// through checksum verification and validates the footer index — so a
// mangled footer fails the read even when the parser consumed everything it
// needed. For gzip and raw streams it is a no-op, preserving their
// historical trailing-garbage tolerance.
func (s *Sniffed) Finish() error {
	if s.blk == nil {
		return nil
	}
	if _, err := io.Copy(io.Discard, s.blk); err != nil {
		return err
	}
	return nil
}

// Unwrap strips the container layer from an in-memory trace file and returns
// the bare payload bytes plus the format that was removed. Raw input is
// returned as-is (zero copy — the result aliases data); gzip and CYPB inputs
// are decompressed into a fresh buffer, with the CYPB footer index verified.
// This is the whole-file analogue of Sniff for callers that need random
// access to the payload (merge.DecodeSelectAuto).
func Unwrap(data []byte, workers int) ([]byte, Format, error) {
	sn, err := SniffReader(bytes.NewReader(data), workers)
	if err != nil {
		return nil, FormatRaw, err
	}
	defer sn.Close()
	if sn.Format == FormatRaw {
		return data, FormatRaw, nil
	}
	payload, err := io.ReadAll(sn.R)
	if err != nil {
		return nil, sn.Format, err
	}
	if err := sn.Finish(); err != nil {
		return nil, sn.Format, err
	}
	return payload, sn.Format, nil
}

// Close releases the container layer (and the pooled buffered reader when
// SniffReader created one). It does not close the underlying stream.
func (s *Sniffed) Close() error {
	var err error
	if s.gz != nil {
		err = s.gz.Close()
		s.gz = nil
	}
	if s.blk != nil {
		if cerr := s.blk.Close(); err == nil {
			err = cerr
		}
		s.blk = nil
	}
	if s.ownBR {
		encpool.PutBufioReader(s.br)
		s.ownBR = false
		s.br = nil
	}
	return err
}
