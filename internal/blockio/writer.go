package blockio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"

	"repro/internal/encpool"
	"repro/internal/obs"
	ftrace "repro/internal/obs/trace"
)

// WriterOptions configures a container writer.
type WriterOptions struct {
	// FrameSize is the target uncompressed bytes per frame; 0 means
	// DefaultFrameSize. The emitted bytes depend on this value (it decides
	// the frame boundaries) but never on Workers.
	FrameSize int
	// Workers bounds the concurrent frame compressors. Values <= 1 compress
	// inline on the caller's goroutine with no pool at all — the bytes are
	// identical either way, so single-worker callers pay zero concurrency
	// overhead.
	Workers int
}

func (o WriterOptions) normalized() WriterOptions {
	if o.FrameSize <= 0 {
		o.FrameSize = DefaultFrameSize
	}
	if o.FrameSize > maxFrameSize {
		o.FrameSize = maxFrameSize
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// encJob is one frame moving through the compression pool. The struct (and
// its source/destination buffers) is recycled writer-locally, so steady-state
// frame encode does not allocate per frame.
type encJob struct {
	src  []byte       // filled uncompressed frame
	dst  bytes.Buffer // compressed output
	crc  uint32       // CRC-32 of src
	err  error
	done chan struct{} // 1-buffered completion signal, reused across jobs
}

// Writer writes a CYPB container around a payload stream. Close finishes the
// last frame and appends the footer index; abandoning a parallel writer
// without Close leaks its worker goroutines.
type Writer struct {
	dst  io.Writer
	opt  WriterOptions
	buf  []byte // current frame accumulator (cap == FrameSize)
	off  int64  // container bytes emitted
	idx  []frameMeta
	err  error
	done bool

	// Parallel state (Workers > 1): jobs flow to the pool through jobs and
	// are drained strictly in submission order through pending, so frames
	// land on dst in payload order no matter which worker finishes first.
	jobs    chan *encJob
	pending []*encJob
	freeJob []*encJob
	freeBuf [][]byte
	wg      sync.WaitGroup
	inline  encJob // Workers <= 1 reuses one job inline

	var64   [binary.MaxVarintLen64]byte
	nFrames int64
	frameLH obs.LocalHist // compressed frame sizes, flushed once at Close
}

// NewWriter writes the container header to w and returns the framing writer.
func NewWriter(w io.Writer, opt WriterOptions) (*Writer, error) {
	opt = opt.normalized()
	bw := &Writer{dst: w, opt: opt}
	bw.buf = bw.getBuf()
	if _, err := w.Write(Magic[:]); err != nil {
		return nil, fmt.Errorf("blockio: writing header: %w", err)
	}
	bw.off = int64(len(Magic))
	bw.u(version)
	bw.u(uint64(opt.FrameSize))
	if bw.err != nil {
		return nil, bw.err
	}
	if opt.Workers > 1 {
		bw.jobs = make(chan *encJob, opt.Workers)
		bw.wg.Add(opt.Workers)
		for i := 0; i < opt.Workers; i++ {
			go bw.worker(int32(i))
		}
	}
	return bw, nil
}

// u emits one uvarint with sticky error handling and offset accounting.
func (w *Writer) u(x uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.var64[:], x)
	_, w.err = w.dst.Write(w.var64[:n])
	w.off += int64(n)
}

// raw emits p with sticky error handling and offset accounting.
func (w *Writer) raw(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.dst.Write(p)
	w.off += int64(len(p))
}

// Write cuts p into frames at FrameSize boundaries. Frame boundaries depend
// only on the cumulative payload offset, never on the chunking of Write
// calls.
func (w *Writer) Write(p []byte) (int, error) {
	if w.done {
		return 0, fmt.Errorf("blockio: write after Close")
	}
	n := 0
	for len(p) > 0 {
		if w.err != nil {
			return n, w.err
		}
		k := w.opt.FrameSize - len(w.buf)
		if k > len(p) {
			k = len(p)
		}
		w.buf = append(w.buf, p[:k]...)
		p = p[k:]
		n += k
		if len(w.buf) == w.opt.FrameSize {
			w.flushFrame()
		}
	}
	return n, w.err
}

// flushFrame hands the current accumulator to the compressor and starts a
// fresh one.
func (w *Writer) flushFrame() {
	if w.opt.Workers <= 1 {
		j := &w.inline
		j.src = w.buf
		compressFrame(j, 0)
		w.writeFrame(j)
		w.buf = j.src[:0]
		return
	}
	j := w.getJob()
	j.src = w.buf
	w.buf = w.getBuf()
	w.pending = append(w.pending, j)
	w.jobs <- j
	// Bound in-flight frames to keep memory at O(workers), not O(payload).
	if len(w.pending) >= 2*w.opt.Workers {
		w.drainOne()
	}
}

// drainOne waits for the oldest in-flight frame and writes it out.
func (w *Writer) drainOne() {
	j := w.pending[0]
	copy(w.pending, w.pending[1:])
	w.pending = w.pending[:len(w.pending)-1]
	<-j.done
	w.writeFrame(j)
	w.freeBuf = append(w.freeBuf, j.src[:0])
	j.src = nil
	w.freeJob = append(w.freeJob, j)
}

// writeFrame emits one compressed frame and records its index entry.
func (w *Writer) writeFrame(j *encJob) {
	if j.err != nil && w.err == nil {
		w.err = j.err
	}
	if w.err != nil {
		return
	}
	meta := frameMeta{
		off:   w.off,
		usize: uint32(len(j.src)),
		csize: uint32(j.dst.Len()),
		crc:   j.crc,
	}
	w.u(uint64(meta.usize) + 1)
	w.u(uint64(meta.csize))
	w.u(uint64(meta.crc))
	w.raw(j.dst.Bytes())
	if w.err != nil {
		return
	}
	w.idx = append(w.idx, meta)
	w.nFrames++
	if sink.Enabled() {
		w.frameLH.Observe(int64(meta.csize))
	}
}

// compressFrame deflates one frame at the fixed pool level and records its
// checksum. Runs on pool workers (or inline for Workers <= 1); lane is the
// worker index for the flight-recorder swimlane (0 inline).
func compressFrame(j *encJob, lane int32) {
	var t0 time.Time
	if sink.Enabled() {
		t0 = time.Now()
	}
	tsp := rec.Begin(ftrace.CatIOEnc, ftrace.NameDeflate, lane)
	j.dst.Reset()
	fw := encpool.GetFlate(&j.dst)
	_, werr := fw.Write(j.src)
	cerr := fw.Close()
	encpool.PutFlate(fw)
	if werr == nil {
		werr = cerr
	}
	j.err = werr
	j.crc = crc32.ChecksumIEEE(j.src)
	tsp.End(int64(len(j.src)), int64(j.dst.Len()))
	if sink.Enabled() {
		sink.ObserveSince(obs.HistIOCompressNS, t0)
	}
}

func (w *Writer) worker(lane int32) {
	defer w.wg.Done()
	for j := range w.jobs {
		compressFrame(j, lane)
		j.done <- struct{}{}
	}
}

func (w *Writer) getJob() *encJob {
	if n := len(w.freeJob); n > 0 {
		j := w.freeJob[n-1]
		w.freeJob = w.freeJob[:n-1]
		return j
	}
	return &encJob{done: make(chan struct{}, 1)}
}

func (w *Writer) getBuf() []byte {
	if n := len(w.freeBuf); n > 0 {
		b := w.freeBuf[n-1]
		w.freeBuf = w.freeBuf[:n-1]
		return b
	}
	return make([]byte, 0, w.opt.FrameSize)
}

// BytesWritten returns the container bytes emitted so far.
func (w *Writer) BytesWritten() int64 { return w.off }

// Close flushes the final (ragged) frame, stops the worker pool, and appends
// the terminator plus the footer index. It must be called exactly once; the
// container is invalid without it.
func (w *Writer) Close() error {
	if w.done {
		return w.err
	}
	w.done = true
	if len(w.buf) > 0 {
		w.flushFrame()
	}
	for len(w.pending) > 0 {
		w.drainOne()
	}
	if w.jobs != nil {
		close(w.jobs)
		w.wg.Wait()
	}
	w.u(0) // body terminator
	footerStart := w.off
	w.u(uint64(len(w.idx)))
	for _, m := range w.idx {
		w.u(uint64(m.off))
		w.u(uint64(m.usize))
		w.u(uint64(m.csize))
		w.u(uint64(m.crc))
	}
	var trailer [trailerLen]byte
	binary.LittleEndian.PutUint64(trailer[:8], uint64(w.off-footerStart))
	copy(trailer[8:], trailerMagic[:])
	w.raw(trailer[:])
	if sink.Enabled() {
		sink.Add(obs.IOFramesEnc, w.nFrames)
		sink.FlushHist(obs.HistIOFrameBytes, &w.frameLH)
	}
	return w.err
}
