package corpus

import (
	"sync"

	"repro/internal/merge"
	"repro/internal/obs"
)

// Trace is one decoded trace pinned in the serving cache. It stays valid
// after eviction or store close — eviction only removes the cache's own
// reference — so holders never observe a trace disappearing under them.
type Trace struct {
	// Merged is the decoded trace tree, shared by every holder. Treat it as
	// read-only.
	Merged *merge.Merged

	hash  uint64
	cost  int64
	cache *Cache
	refs  int // guarded by cache.mu

	// LRU links among evictable (refs == 0) resident entries.
	prev, next *Trace

	streamOnce sync.Once
	stream     *merge.Streamer
}

// Hash returns the trace's content address.
func (t *Trace) Hash() uint64 { return t.hash }

// Streamer returns the trace's memoized streaming replayer. All holders of
// the same cached trace share one streamer, so selection classes and replay
// skeletons are discovered once per residency, not once per Get.
func (t *Trace) Streamer() *merge.Streamer {
	t.streamOnce.Do(func() { t.stream = merge.NewStreamer(t.Merged) })
	return t.stream
}

// Release returns the caller's pin. After the last release the trace becomes
// evictable (it is not dropped eagerly — a re-Get before eviction is a hit).
func (t *Trace) Release() {
	c := t.cache
	if c == nil {
		return
	}
	c.mu.Lock()
	if t.refs > 0 {
		t.refs--
		if t.refs == 0 && c.entries[t.hash] == t {
			c.pushFront(t)
			c.evictLocked()
		}
	}
	c.mu.Unlock()
}

// Cache is a size-bounded, ref-counted LRU of decoded traces keyed by
// content hash. Size is accounted in standalone-encoding bytes (the cost
// passed to Insert); only entries with no outstanding pins are evictable, so
// the cache can exceed its budget while every resident trace is in use.
type Cache struct {
	mu      sync.Mutex
	max     int64
	used    int64
	entries map[uint64]*Trace
	// Doubly-linked LRU of refs==0 entries; head is most recent.
	head, tail *Trace
}

// NewCache returns a cache bounded to max cost bytes. A non-positive max
// disables residency: Insert hands back unmanaged traces and Acquire always
// misses.
func NewCache(max int64) *Cache {
	return &Cache{max: max, entries: make(map[uint64]*Trace)}
}

// Acquire pins and returns the resident trace for hash, if any.
func (c *Cache) Acquire(hash uint64) (*Trace, bool) {
	c.mu.Lock()
	t, ok := c.entries[hash]
	if ok {
		if t.refs == 0 {
			c.unlink(t)
		}
		t.refs++
	}
	c.mu.Unlock()
	return t, ok
}

// Insert adds a decoded trace with the given cost and returns it pinned. If
// a trace with the same hash is already resident (a concurrent miss decoded
// it first), that one is returned instead and the new decode is discarded.
func (c *Cache) Insert(hash uint64, m *merge.Merged, cost int64) *Trace {
	if c.max <= 0 {
		return &Trace{Merged: m, hash: hash, cost: cost}
	}
	c.mu.Lock()
	if t, ok := c.entries[hash]; ok {
		if t.refs == 0 {
			c.unlink(t)
		}
		t.refs++
		c.mu.Unlock()
		return t
	}
	t := &Trace{Merged: m, hash: hash, cost: cost, cache: c, refs: 1}
	c.entries[hash] = t
	c.used += cost
	c.evictLocked()
	c.mu.Unlock()
	return t
}

// Invalidate drops the entry for hash if resident. Outstanding pins keep the
// trace itself alive; it just can no longer be acquired.
func (c *Cache) Invalidate(hash uint64) {
	c.mu.Lock()
	if t, ok := c.entries[hash]; ok {
		if t.refs == 0 {
			c.unlink(t)
		}
		delete(c.entries, hash)
		c.used -= t.cost
		t.cache = nil
	}
	c.mu.Unlock()
}

// Clear drops every resident entry.
func (c *Cache) Clear() {
	c.mu.Lock()
	for h, t := range c.entries {
		delete(c.entries, h)
		t.cache = nil
	}
	c.head, c.tail = nil, nil
	c.used = 0
	c.mu.Unlock()
}

// Stats returns resident entry count and summed cost.
func (c *Cache) Stats() (entries int, bytes int64) {
	c.mu.Lock()
	entries, bytes = len(c.entries), c.used
	c.mu.Unlock()
	return
}

// evictLocked drops least-recently-released unpinned entries until the cache
// fits its budget (or nothing evictable remains).
func (c *Cache) evictLocked() {
	for c.used > c.max && c.tail != nil {
		t := c.tail
		c.unlink(t)
		delete(c.entries, t.hash)
		c.used -= t.cost
		t.cache = nil
		sink.Inc(obs.CorpusCacheEvicts)
	}
}

func (c *Cache) pushFront(t *Trace) {
	t.prev, t.next = nil, c.head
	if c.head != nil {
		c.head.prev = t
	}
	c.head = t
	if c.tail == nil {
		c.tail = t
	}
}

func (c *Cache) unlink(t *Trace) {
	if t.prev != nil {
		t.prev.next = t.next
	} else if c.head == t {
		c.head = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	} else if c.tail == t {
		c.tail = t.prev
	}
	t.prev, t.next = nil, nil
}
