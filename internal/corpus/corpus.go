// Package corpus is the content-addressed trace store behind the fleet
// serving path: many runs of the same program share one stored copy of their
// communication structure, and each run costs only its dynamic residue.
//
// Ingest splits a standalone v1 encoding into its structure and payload
// streams (merge.SplitEncoded), keys the structure by the structural class
// key (a fingerprint fold over the header and every per-vertex structure
// section), and stores the first run of a class as the class representative.
// Every later run of the class stores only merge.DeltaPayload against the
// representative payload — typically a few bytes per volatile field. Byte
// identity is unconditional: ingest re-derives the standalone encoding from
// what it is about to store (patch + join) and falls back to storing the full
// encoding verbatim whenever the reconstruction is not byte-identical (odd
// producers, non-minimal varints, fingerprint collisions).
//
// On-disk layout (all inside one directory):
//
//	class-<key>.cyps  "CYPS" u1 | classKey | structLen | repLen | CYPB(structure ++ repPayload)
//	seg-<n>.cypd      "CYPD" u1 | CYPB(record*)
//	active.cypl       "CYPA" u1 | record*
//
// where each run record is
//
//	u total | contentHash(8B LE) | u flags | u classKey | u fullLen |
//	u bodyLen | body | crc32(8B-hash .. body, IEEE, 4B LE)
//
// New runs append to the raw active log; Close (and GC) seal the log into a
// deflate-framed CYPB segment. Deletion appends a tombstone record; GC
// compacts every segment, dropping tombstoned runs and unreferenced classes.
//
// The read side is Get: a size-bounded, ref-counted LRU of decoded traces
// (see Cache) fronts reconstruction, so repeated Predict/CommMatrix/replay
// on a hot trace skip the patch+join+decode entirely.
package corpus

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/blockio"
	"repro/internal/fp"
	"repro/internal/merge"
	"repro/internal/obs"
	ftrace "repro/internal/obs/trace"
)

// File magics. The class/segment/log formats are versioned independently of
// the trace encoding they carry.
var (
	classMagic = [4]byte{'C', 'Y', 'P', 'S'}
	segMagic   = [4]byte{'C', 'Y', 'P', 'D'}
	logMagic   = [4]byte{'C', 'Y', 'P', 'A'}
)

const (
	formatVersion = 1

	flagDelta     = 1 // body is DeltaPayload against the class representative
	flagFull      = 2 // body is the complete standalone encoding
	flagTombstone = 4 // run deleted; no body

	// maxRecordLen bounds one run record; anything larger is corruption.
	maxRecordLen = 1 << 30
)

var sink *obs.Sink

// SetObs installs the package-wide metrics sink (nil disables).
func SetObs(s *obs.Sink) { sink = s }

// frec is the package's attached flight recorder: one span per ingest
// (annotated full/delta/dup) and per get (annotated hit/miss) on the
// "corpus" track. nil records nothing.
var frec *ftrace.Recorder

// SetTrace installs the package-wide flight recorder (nil disables).
func SetTrace(r *ftrace.Recorder) { frec = r }

// ContentHash is the content address of one ingested trace: a fingerprint
// fold over its exact standalone v1 encoding bytes.
func ContentHash(enc []byte) uint64 { return uint64(fp.New().Bytes(enc)) }

// Options configures an opened store.
type Options struct {
	// CacheBytes bounds the decoded-trace cache by the summed standalone
	// encoding size of resident traces; 0 means 64 MiB, negative disables
	// the cache.
	CacheBytes int64
	// Workers bounds the CYPB frame codecs used for class and segment
	// containers; 0 picks the blockio default.
	Workers int
}

// class is one structural equivalence class resident in memory.
type class struct {
	key        uint64
	structure  []byte
	repPayload []byte
}

// runLoc locates one live run record. Records in sealed segments are
// addressed by offset into the segment's uncompressed payload; records still
// in the active log by file offset.
type runLoc struct {
	seg     int // -1 = active log
	off     int64
	flags   uint64
	classK  uint64
	fullLen int
	bodyLen int
}

// Store is an open corpus directory. All methods are safe for concurrent
// use.
type Store struct {
	dir string
	opt Options

	mu      sync.RWMutex
	classes map[uint64]*class
	index   map[uint64]runLoc
	segs    []int // sealed segment numbers, ascending
	nextSeg int

	activeF   *os.File
	activeOff int64

	// aggregate byte accounting for Stats (live runs only)
	logicalBytes int64
	storedBytes  int64
	deltaRuns    int64
	fullRuns     int64

	cache  *Cache
	closed bool
}

// Open opens (creating if needed) the corpus directory and loads its index.
func Open(dir string, opt Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("corpus: open: %w", err)
	}
	cacheBytes := opt.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = 64 << 20
	}
	s := &Store{
		dir:     dir,
		opt:     opt,
		classes: make(map[uint64]*class),
		index:   make(map[uint64]runLoc),
		cache:   NewCache(cacheBytes),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) classPath(key uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("class-%016x.cyps", key))
}

func (s *Store) segPath(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%06d.cypd", n))
}

func (s *Store) logPath() string { return filepath.Join(s.dir, "active.cypl") }

// load scans class files, sealed segments (numeric order), and the active
// log, rebuilding the in-memory index. Tombstones drop earlier entries.
func (s *Store) load() error {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("corpus: open: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "class-") && strings.HasSuffix(name, ".cyps"):
			c, err := readClassFile(filepath.Join(s.dir, name), s.opt.Workers)
			if err != nil {
				return fmt.Errorf("corpus: %s: %w", name, err)
			}
			s.classes[c.key] = c
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".cypd"):
			var n int
			if _, err := fmt.Sscanf(name, "seg-%d.cypd", &n); err != nil {
				return fmt.Errorf("corpus: segment name %q: %w", name, err)
			}
			s.segs = append(s.segs, n)
			if n >= s.nextSeg {
				s.nextSeg = n + 1
			}
		}
	}
	sort.Ints(s.segs)
	for _, n := range s.segs {
		payload, err := s.readSegPayload(n)
		if err != nil {
			return err
		}
		if err := s.indexRecords(payload, n, 0); err != nil {
			return fmt.Errorf("corpus: seg-%06d.cypd: %w", n, err)
		}
	}
	if err := s.openActive(); err != nil {
		return err
	}
	return nil
}

// openActive opens (creating if absent) the active log, verifies its header,
// and indexes its records.
func (s *Store) openActive() error {
	f, err := os.OpenFile(s.logPath(), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("corpus: active log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("corpus: active log: %w", err)
	}
	if st.Size() == 0 {
		hdr := append(append([]byte{}, logMagic[:]...), formatVersion)
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return fmt.Errorf("corpus: active log: %w", err)
		}
		s.activeF, s.activeOff = f, int64(len(hdr))
		return nil
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return fmt.Errorf("corpus: active log: %w", err)
	}
	if len(raw) < 5 || !bytes.Equal(raw[:4], logMagic[:]) || raw[4] != formatVersion {
		f.Close()
		return errors.New("corpus: active log: bad header")
	}
	if err := s.indexRecords(raw[5:], -1, 5); err != nil {
		f.Close()
		return fmt.Errorf("corpus: active log: %w", err)
	}
	s.activeF, s.activeOff = f, int64(len(raw))
	return nil
}

// record is one parsed run record.
type record struct {
	hash    uint64
	flags   uint64
	classK  uint64
	fullLen int
	body    []byte
	raw     []byte // complete record bytes including length prefix and crc
}

// parseRecord decodes one record at the head of b, returning it and the
// remaining bytes.
func parseRecord(b []byte) (record, []byte, error) {
	var r record
	total, n := binary.Uvarint(b)
	if n <= 0 || total > maxRecordLen || uint64(len(b)-n) < total {
		return r, nil, errors.New("truncated record")
	}
	r.raw = b[:n+int(total)]
	rest := b[n+int(total):]
	body := b[n : n+int(total)]
	if len(body) < 12 { // hash + crc at minimum
		return r, nil, errors.New("short record")
	}
	crcWant := binary.LittleEndian.Uint32(body[len(body)-4:])
	hashed := body[:len(body)-4]
	if crc32.ChecksumIEEE(hashed) != crcWant {
		return r, nil, errors.New("record crc mismatch")
	}
	r.hash = binary.LittleEndian.Uint64(hashed[:8])
	c := hashed[8:]
	var k int
	if r.flags, k = binary.Uvarint(c); k <= 0 {
		return r, nil, errors.New("bad record flags")
	}
	c = c[k:]
	if r.classK, k = binary.Uvarint(c); k <= 0 {
		return r, nil, errors.New("bad record class key")
	}
	c = c[k:]
	fl, k := binary.Uvarint(c)
	if k <= 0 || fl > maxRecordLen {
		return r, nil, errors.New("bad record full length")
	}
	r.fullLen = int(fl)
	c = c[k:]
	bl, k := binary.Uvarint(c)
	if k <= 0 || uint64(len(c)-k) != bl {
		return r, nil, errors.New("bad record body length")
	}
	r.body = c[k : k+int(bl)]
	return r, rest, nil
}

// appendRecord serializes a record (without filling raw).
func appendRecord(dst []byte, r record) []byte {
	var inner []byte
	inner = binary.LittleEndian.AppendUint64(inner, r.hash)
	inner = binary.AppendUvarint(inner, r.flags)
	inner = binary.AppendUvarint(inner, r.classK)
	inner = binary.AppendUvarint(inner, uint64(r.fullLen))
	inner = binary.AppendUvarint(inner, uint64(len(r.body)))
	inner = append(inner, r.body...)
	inner = binary.LittleEndian.AppendUint32(inner, crc32.ChecksumIEEE(inner))
	dst = binary.AppendUvarint(dst, uint64(len(inner)))
	return append(dst, inner...)
}

// indexRecords walks a concatenated record stream, applying each record to
// the index. seg is the segment number (-1 = active log); base is the byte
// offset of the stream's first record within its file or segment payload.
func (s *Store) indexRecords(b []byte, seg int, base int64) error {
	off := base
	for len(b) > 0 {
		r, rest, err := parseRecord(b)
		if err != nil {
			return err
		}
		if r.flags&flagTombstone != 0 {
			s.dropAccounting(s.index[r.hash])
			delete(s.index, r.hash)
		} else {
			if old, ok := s.index[r.hash]; ok {
				s.dropAccounting(old)
			}
			loc := runLoc{
				seg: seg, off: off, flags: r.flags, classK: r.classK,
				fullLen: r.fullLen, bodyLen: len(r.body),
			}
			s.index[r.hash] = loc
			s.addAccounting(loc)
		}
		off += int64(len(r.raw))
		b = rest
	}
	return nil
}

func (s *Store) addAccounting(loc runLoc) {
	s.logicalBytes += int64(loc.fullLen)
	s.storedBytes += int64(loc.bodyLen)
	if loc.flags&flagDelta != 0 {
		s.deltaRuns++
	} else {
		s.fullRuns++
	}
}

func (s *Store) dropAccounting(loc runLoc) {
	if loc == (runLoc{}) {
		return
	}
	s.logicalBytes -= int64(loc.fullLen)
	s.storedBytes -= int64(loc.bodyLen)
	if loc.flags&flagDelta != 0 {
		s.deltaRuns--
	} else {
		s.fullRuns--
	}
}

// readClassFile loads and validates one class file.
func readClassFile(path string, workers int) (*class, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < 5 || !bytes.Equal(raw[:4], classMagic[:]) || raw[4] != formatVersion {
		return nil, errors.New("bad class header")
	}
	b := raw[5:]
	var vals [3]uint64
	for i := range vals {
		v, n := binary.Uvarint(b)
		if n <= 0 || (i > 0 && v > maxRecordLen) {
			return nil, errors.New("bad class header field")
		}
		vals[i], b = v, b[n:]
	}
	rd, err := blockio.NewReader(bytes.NewReader(b), blockio.ReaderOptions{Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("class container: %w", err)
	}
	payload, err := io.ReadAll(rd)
	if err != nil {
		return nil, fmt.Errorf("class container: %w", err)
	}
	structLen, repLen := int(vals[1]), int(vals[2])
	if structLen+repLen != len(payload) {
		return nil, errors.New("class payload length mismatch")
	}
	c := &class{key: vals[0], structure: payload[:structLen], repPayload: payload[structLen:]}
	// The declared key must match the structure it carries — a mismatch means
	// the file was corrupted in a crc-colliding way or renamed.
	sp, err := merge.SplitEncoded(append(append([]byte{}, c.structure...), c.repPayload...))
	if err == nil && sp.ClassKey() != c.key {
		return nil, errors.New("class key does not match stored structure")
	}
	return c, nil
}

// writeClassFile persists a new class.
func (s *Store) writeClassFile(c *class) error {
	var buf bytes.Buffer
	buf.Write(classMagic[:])
	buf.WriteByte(formatVersion)
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range []uint64{c.key, uint64(len(c.structure)), uint64(len(c.repPayload))} {
		buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
	}
	w, err := blockio.NewWriter(&buf, blockio.WriterOptions{Workers: s.opt.Workers})
	if err != nil {
		return err
	}
	if _, err := w.Write(c.structure); err != nil {
		return err
	}
	if _, err := w.Write(c.repPayload); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	return os.WriteFile(s.classPath(c.key), buf.Bytes(), 0o644)
}

// readSegPayload inflates one sealed segment's record stream.
func (s *Store) readSegPayload(n int) ([]byte, error) {
	raw, err := os.ReadFile(s.segPath(n))
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	if len(raw) < 5 || !bytes.Equal(raw[:4], segMagic[:]) || raw[4] != formatVersion {
		return nil, fmt.Errorf("corpus: seg-%06d.cypd: bad header", n)
	}
	rd, err := blockio.NewReader(bytes.NewReader(raw[5:]), blockio.ReaderOptions{Workers: s.opt.Workers})
	if err != nil {
		return nil, fmt.Errorf("corpus: seg-%06d.cypd: %w", n, err)
	}
	payload, err := io.ReadAll(rd)
	if err != nil {
		return nil, fmt.Errorf("corpus: seg-%06d.cypd: %w", n, err)
	}
	return payload, nil
}

// Ingest adds a merged trace, storing it against its structural class, and
// returns its content hash. Ingesting a trace whose standalone encoding is
// already present is a no-op returning the existing hash.
func (s *Store) Ingest(m *merge.Merged) (uint64, error) {
	var buf bytes.Buffer
	if _, err := m.Encode(&buf); err != nil {
		return 0, fmt.Errorf("corpus: ingest: %w", err)
	}
	return s.IngestBytes(buf.Bytes())
}

// IngestBytes adds a trace given its standalone v1 encoding. The bytes are
// the unit of identity: Get and GetBytes reproduce them exactly.
func (s *Store) IngestBytes(enc []byte) (uint64, error) {
	sink.Inc(obs.CorpusIngests)
	tsp := frec.Begin(ftrace.CatCorpus, ftrace.NameIngest, 0)
	h := ContentHash(enc)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errors.New("corpus: store is closed")
	}
	if _, ok := s.index[h]; ok {
		sink.Inc(obs.CorpusDuplicates)
		tsp.End(int64(len(enc)), ftrace.IngestDup)
		return h, nil
	}

	rec := record{hash: h, flags: flagFull, fullLen: len(enc), body: enc}
	if sp, err := merge.SplitEncoded(enc); err == nil {
		key := sp.ClassKey()
		c, ok := s.classes[key]
		switch {
		case ok && bytes.Equal(c.structure, sp.Structure):
			// Established class: store the payload residue.
			if d, err := merge.DeltaPayload(sp.Payload, c.repPayload); err == nil &&
				s.verifyDelta(c, d, enc) {
				rec = record{hash: h, flags: flagDelta, classK: key, fullLen: len(enc), body: d}
			}
		case !ok:
			// First run of its class: the class file carries the structure and
			// this payload as representative; the run itself is a self-delta.
			c = &class{key: key, structure: sp.Structure, repPayload: sp.Payload}
			if d, err := merge.DeltaPayload(sp.Payload, c.repPayload); err == nil &&
				s.verifyDelta(c, d, enc) {
				if err := s.writeClassFile(c); err != nil {
					return 0, fmt.Errorf("corpus: ingest: %w", err)
				}
				s.classes[key] = c
				sink.Inc(obs.CorpusClasses)
				rec = record{hash: h, flags: flagDelta, classK: key, fullLen: len(enc), body: d}
			}
			// ok && structure differs: a 64-bit class-key collision between
			// different structures — fall through and store the run in full.
		}
	}

	loc, err := s.appendActive(rec)
	if err != nil {
		return 0, fmt.Errorf("corpus: ingest: %w", err)
	}
	s.index[h] = loc
	s.addAccounting(loc)
	mode := int64(ftrace.IngestFull)
	if rec.flags&flagDelta != 0 {
		sink.Inc(obs.CorpusDeltaRuns)
		mode = ftrace.IngestDelta
	} else {
		sink.Inc(obs.CorpusFullRuns)
	}
	tsp.End(int64(len(enc)), mode)
	sink.Add(obs.CorpusLogicalBytes, int64(len(enc)))
	sink.Add(obs.CorpusStoredBytes, int64(len(rec.body)))
	if len(enc) > 0 {
		sink.Observe(obs.HistCorpusDeltaPermille, int64(len(rec.body))*1000/int64(len(enc)))
	}
	return h, nil
}

// verifyDelta proves byte identity before committing to delta storage: the
// exact reconstruction path of Get must reproduce enc.
func (s *Store) verifyDelta(c *class, delta, enc []byte) bool {
	p, err := merge.PatchPayload(delta, c.repPayload)
	if err != nil {
		return false
	}
	got, err := merge.JoinEncoded(c.structure, p)
	return err == nil && bytes.Equal(got, enc)
}

// appendActive writes one record to the active log and returns its location.
func (s *Store) appendActive(rec record) (runLoc, error) {
	raw := appendRecord(nil, rec)
	if _, err := s.activeF.WriteAt(raw, s.activeOff); err != nil {
		return runLoc{}, err
	}
	loc := runLoc{
		seg: -1, off: s.activeOff, flags: rec.flags, classK: rec.classK,
		fullLen: rec.fullLen, bodyLen: len(rec.body),
	}
	s.activeOff += int64(len(raw))
	return loc, nil
}

// readRecordAt fetches and re-validates the record at loc.
func (s *Store) readRecordAt(loc runLoc) (record, error) {
	var stream []byte
	if loc.seg < 0 {
		// Active log: read just this record. Its full length is bounded by
		// the serialized form of loc.
		max := int64(binary.MaxVarintLen64+12+3*binary.MaxVarintLen64) + int64(loc.bodyLen) + binary.MaxVarintLen64
		buf := make([]byte, max)
		n, err := s.activeF.ReadAt(buf, loc.off)
		if err != nil && err != io.EOF {
			return record{}, fmt.Errorf("corpus: active log: %w", err)
		}
		stream = buf[:n]
	} else {
		payload, err := s.readSegPayload(loc.seg)
		if err != nil {
			return record{}, err
		}
		if loc.off > int64(len(payload)) {
			return record{}, errors.New("corpus: record offset past segment end")
		}
		stream = payload[loc.off:]
	}
	rec, _, err := parseRecord(stream)
	if err != nil {
		return record{}, fmt.Errorf("corpus: record: %w", err)
	}
	return rec, nil
}

// GetBytes reconstructs the standalone v1 encoding of the trace addressed by
// hash. The result is byte-identical to the ingested encoding; any
// divergence (corrupt store) is an error.
func (s *Store) GetBytes(hash uint64) ([]byte, error) {
	sink.Inc(obs.CorpusGets)
	s.mu.RLock()
	enc, err := s.getBytesLocked(hash)
	s.mu.RUnlock()
	return enc, err
}

func (s *Store) getBytesLocked(hash uint64) ([]byte, error) {
	loc, ok := s.index[hash]
	if !ok {
		return nil, fmt.Errorf("corpus: no trace %016x", hash)
	}
	rec, err := s.readRecordAt(loc)
	if err != nil {
		return nil, err
	}
	if rec.hash != hash {
		return nil, fmt.Errorf("corpus: record hash %016x does not match requested %016x", rec.hash, hash)
	}
	var enc []byte
	switch {
	case rec.flags&flagFull != 0:
		enc = append([]byte{}, rec.body...)
	case rec.flags&flagDelta != 0:
		c, ok := s.classes[rec.classK]
		if !ok {
			return nil, fmt.Errorf("corpus: trace %016x references missing class %016x", hash, rec.classK)
		}
		p, err := merge.PatchPayload(rec.body, c.repPayload)
		if err != nil {
			return nil, fmt.Errorf("corpus: trace %016x: %w", hash, err)
		}
		enc, err = merge.JoinEncoded(c.structure, p)
		if err != nil {
			return nil, fmt.Errorf("corpus: trace %016x: %w", hash, err)
		}
	default:
		return nil, fmt.Errorf("corpus: trace %016x has no stored form (flags %#x)", hash, rec.flags)
	}
	if ContentHash(enc) != hash {
		return nil, fmt.Errorf("corpus: trace %016x reconstruction does not match its content hash", hash)
	}
	return enc, nil
}

// Get returns the decoded trace addressed by hash, pinned in the serving
// cache. The caller must Release the returned Trace when done with it; until
// then it cannot be evicted. Repeated gets of a resident trace do no decode
// work.
func (s *Store) Get(hash uint64) (*Trace, error) {
	return s.get(hash, decodeFull)
}

// decodeFull is Get's decode step. A package-level func (not a per-call
// closure) so the warm path stays allocation-free.
func decodeFull(enc []byte) (*merge.Merged, error) {
	return merge.Decode(bytes.NewReader(enc))
}

// GetProjected is Get with a rank projection pushed into the decode: on a
// cache miss the trace is reconstructed once but only the selected ranks'
// timing payloads are materialized (merge.DecodeSelect); the rest fill lazily
// from the retained encoding on first touch. The projected tree enters the
// same serving cache at the same cost as the full tree (the lazy form retains
// the whole encoding), so a later Get or differently-ranked GetProjected of a
// resident trace is a cache hit that self-heals payload coverage on demand.
func (s *Store) GetProjected(hash uint64, ranks []int) (*Trace, error) {
	return s.get(hash, func(enc []byte) (*merge.Merged, error) {
		return merge.DecodeSelect(enc, merge.SelectRanks(ranks...))
	})
}

// get is the shared body of Get and GetProjected: cache acquire, else
// reconstruct bytes, decode via decode, and insert.
func (s *Store) get(hash uint64, decode func([]byte) (*merge.Merged, error)) (*Trace, error) {
	var t0 time.Time
	if sink != nil {
		t0 = time.Now()
	}
	tsp := frec.Begin(ftrace.CatCorpus, ftrace.NameCorpusGet, 0)
	if t, ok := s.cache.Acquire(hash); ok {
		sink.Inc(obs.CorpusGets)
		sink.Inc(obs.CorpusCacheHits)
		if sink != nil {
			sink.Observe(obs.HistCorpusGetNS, time.Since(t0).Nanoseconds())
		}
		tsp.End(1, t.cost)
		return t, nil
	}
	sink.Inc(obs.CorpusCacheMisses)
	enc, err := s.GetBytes(hash)
	if err != nil {
		return nil, err
	}
	m, err := decode(enc)
	if err != nil {
		return nil, fmt.Errorf("corpus: trace %016x: %w", hash, err)
	}
	t := s.cache.Insert(hash, m, int64(len(enc)))
	if sink != nil {
		sink.Observe(obs.HistCorpusGetNS, time.Since(t0).Nanoseconds())
	}
	tsp.End(0, int64(len(enc)))
	return t, nil
}

// Delete removes a trace from the corpus by appending a tombstone. The bytes
// are reclaimed at the next GC.
func (s *Store) Delete(hash uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("corpus: store is closed")
	}
	loc, ok := s.index[hash]
	if !ok {
		return fmt.Errorf("corpus: no trace %016x", hash)
	}
	if _, err := s.appendActive(record{hash: hash, flags: flagTombstone}); err != nil {
		return fmt.Errorf("corpus: delete: %w", err)
	}
	s.dropAccounting(loc)
	delete(s.index, hash)
	s.cache.Invalidate(hash)
	return nil
}

// seal moves the active log's records into a new CYPB segment and truncates
// the log. Callers hold s.mu.
func (s *Store) seal() error {
	if s.activeOff <= 5 {
		return nil
	}
	raw := make([]byte, s.activeOff-5)
	if _, err := s.activeF.ReadAt(raw, 5); err != nil {
		return err
	}
	n := s.nextSeg
	var buf bytes.Buffer
	buf.Write(segMagic[:])
	buf.WriteByte(formatVersion)
	w, err := blockio.NewWriter(&buf, blockio.WriterOptions{Workers: s.opt.Workers})
	if err != nil {
		return err
	}
	if _, err := w.Write(raw); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := os.WriteFile(s.segPath(n), buf.Bytes(), 0o644); err != nil {
		return err
	}
	s.nextSeg++
	s.segs = append(s.segs, n)
	// Live locations in the log keep their record offsets relative to the
	// stream start; the segment payload is that stream verbatim.
	for h, loc := range s.index {
		if loc.seg < 0 {
			loc.seg, loc.off = n, loc.off-5
			s.index[h] = loc
		}
	}
	if err := s.activeF.Truncate(5); err != nil {
		return err
	}
	s.activeOff = 5
	return nil
}

// GC seals the active log, then compacts the corpus: live run records are
// rewritten into one fresh segment, tombstones and superseded records are
// dropped, and class files no longer referenced by any delta run are
// deleted.
func (s *Store) GC() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("corpus: store is closed")
	}
	if err := s.seal(); err != nil {
		return fmt.Errorf("corpus: gc: %w", err)
	}
	type liveRun struct {
		hash uint64
		rec  record
	}
	var live []liveRun
	for h, loc := range s.index {
		rec, err := s.readRecordAt(loc)
		if err != nil {
			return fmt.Errorf("corpus: gc: trace %016x: %w", h, err)
		}
		live = append(live, liveRun{h, rec})
	}
	sort.Slice(live, func(i, j int) bool { return live[i].hash < live[j].hash })

	oldSegs := s.segs
	s.segs = nil
	newIndex := make(map[uint64]runLoc, len(live))
	if len(live) > 0 {
		n := s.nextSeg
		var stream []byte
		for _, lr := range live {
			off := int64(len(stream))
			stream = append(stream, lr.rec.raw...)
			newIndex[lr.hash] = runLoc{
				seg: n, off: off, flags: lr.rec.flags, classK: lr.rec.classK,
				fullLen: lr.rec.fullLen, bodyLen: len(lr.rec.body),
			}
		}
		var buf bytes.Buffer
		buf.Write(segMagic[:])
		buf.WriteByte(formatVersion)
		w, err := blockio.NewWriter(&buf, blockio.WriterOptions{Workers: s.opt.Workers})
		if err != nil {
			return fmt.Errorf("corpus: gc: %w", err)
		}
		if _, err := w.Write(stream); err != nil {
			return fmt.Errorf("corpus: gc: %w", err)
		}
		if err := w.Close(); err != nil {
			return fmt.Errorf("corpus: gc: %w", err)
		}
		if err := os.WriteFile(s.segPath(n), buf.Bytes(), 0o644); err != nil {
			return fmt.Errorf("corpus: gc: %w", err)
		}
		s.nextSeg++
		s.segs = []int{n}
	}
	s.index = newIndex
	for _, n := range oldSegs {
		if err := os.Remove(s.segPath(n)); err != nil {
			return fmt.Errorf("corpus: gc: %w", err)
		}
	}
	// Drop classes with no remaining delta reference.
	referenced := make(map[uint64]bool)
	for _, loc := range s.index {
		if loc.flags&flagDelta != 0 {
			referenced[loc.classK] = true
		}
	}
	for key := range s.classes {
		if !referenced[key] {
			if err := os.Remove(s.classPath(key)); err != nil {
				return fmt.Errorf("corpus: gc: %w", err)
			}
			delete(s.classes, key)
		}
	}
	return nil
}

// Stats summarizes the store.
type Stats struct {
	Classes      int   `json:"classes"`
	Runs         int   `json:"runs"`
	DeltaRuns    int   `json:"delta_runs"`
	FullRuns     int   `json:"full_runs"`
	Segments     int   `json:"segments"`
	LogicalBytes int64 `json:"logical_bytes"` // summed standalone encodings
	StoredBytes  int64 `json:"stored_bytes"`  // summed live record bodies
	DiskBytes    int64 `json:"disk_bytes"`    // bytes on disk right now
	CacheEntries int   `json:"cache_entries"`
	CacheBytes   int64 `json:"cache_bytes"`
}

// Stats reports current store totals. DiskBytes walks the directory.
func (s *Store) Stats() (Stats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Classes:      len(s.classes),
		Runs:         len(s.index),
		DeltaRuns:    int(s.deltaRuns),
		FullRuns:     int(s.fullRuns),
		Segments:     len(s.segs),
		LogicalBytes: s.logicalBytes,
		StoredBytes:  s.storedBytes,
	}
	st.CacheEntries, st.CacheBytes = s.cache.Stats()
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return Stats{}, fmt.Errorf("corpus: stats: %w", err)
	}
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			return Stats{}, fmt.Errorf("corpus: stats: %w", err)
		}
		st.DiskBytes += info.Size()
	}
	return st, nil
}

// Hashes lists the content hashes of every live trace, ascending.
func (s *Store) Hashes() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]uint64, 0, len(s.index))
	for h := range s.index {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Close seals the active log into a segment and closes the store. The
// serving cache is dropped; outstanding Trace references stay usable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.seal()
	if cerr := s.activeF.Close(); err == nil {
		err = cerr
	}
	s.cache.Clear()
	if err != nil {
		return fmt.Errorf("corpus: close: %w", err)
	}
	return nil
}
