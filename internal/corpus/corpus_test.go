package corpus_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/cst"
	"repro/internal/ctt"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/merge"
	"repro/internal/mpisim"
	"repro/internal/obs"
	"repro/internal/timestat"
	"repro/internal/trace"
)

// multiPhaseSrc is the corpus acceptance workload: a structure-rich
// multi-phase exchange whose op durations are constant in steady state
// (eager sends, compute-padded recvs that always find their message
// arrived, deterministic collectives). Across runs on slightly different
// machines (see runParams) every time statistic shifts by a small exact
// amount, which is the regime the payload delta codec is built for.
const multiPhaseSrc = `
func main() {
	for var k = 0; k < 16; k = k + 1 {
		send((rank + 1) % size, 512, 1);
		compute(20000);
		recv((rank + size - 1) % size, 512, 1);
		send((rank + 2) % size, 1024, 2);
		compute(20000);
		recv((rank + size - 2) % size, 1024, 2);
		send((rank + 3) % size, 256, 3);
		compute(20000);
		recv((rank + size - 3) % size, 256, 3);
		allreduce(8);
		send((rank + 1) % size, 2048, 4);
		compute(20000);
		recv((rank + size - 1) % size, 2048, 4);
		bcast(0, 4096);
		send((rank + 2) % size, 128, 5);
		compute(20000);
		recv((rank + size - 2) % size, 128, 5);
		reduce(0, 16);
		send((rank + 4) % size, 768, 6);
		compute(20000);
		recv((rank + size - 4) % size, 768, 6);
		send((rank + 5) % size, 1536, 7);
		compute(20000);
		recv((rank + size - 5) % size, 1536, 7);
		allreduce(64);
	}
	barrier();
}`

// runParams models "same workload, fresh timings": run r executes on a
// machine whose latency/overhead differ by small integer nanoseconds.
func runParams(run int) mpisim.Params {
	p := mpisim.DefaultParams()
	p.NoiseFrac = 0
	p.LatencyNS += float64(run) * 3
	p.OverheadNS += float64(run)
	return p
}

// simMerged traces src on ranks simulated processes under run's params and
// merges the per-rank trees.
func simMerged(t testing.TB, src string, ranks, run int) *merge.Merged {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lang.Check(prog); err != nil {
		t.Fatal(err)
	}
	irProg, err := ir.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := cst.Build(irProg)
	if err != nil {
		t.Fatal(err)
	}
	comps := make([]*ctt.Compressor, ranks)
	sinks := make([]trace.Sink, ranks)
	for i := range sinks {
		comps[i] = ctt.NewCompressor(tree, i, timestat.ModeMeanStddev)
		sinks[i] = comps[i]
	}
	if _, err := mpisim.Run(ranks, runParams(run), sinks, func(r *mpisim.Rank) {
		interp.Execute(prog, r)
	}); err != nil {
		t.Fatal(err)
	}
	ctts := make([]*ctt.RankCTT, ranks)
	for i := range comps {
		ctts[i] = comps[i].Finish()
	}
	m, err := merge.All(ctts, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func encodeBytes(t testing.TB, m *merge.Merged) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func blockedLen(t testing.TB, m *merge.Merged) int {
	t.Helper()
	var buf bytes.Buffer
	if _, err := m.EncodeBlocked(&buf, 1); err != nil {
		t.Fatal(err)
	}
	return buf.Len()
}

func dirBytes(t testing.TB, dir string) int64 {
	t.Helper()
	var total int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

// TestIngestGetByteIdentity: GetBytes must reproduce every ingested
// encoding exactly, duplicates are no-ops, and distinct runs of one
// workload land in one structural class as delta runs.
func TestIngestGetByteIdentity(t *testing.T) {
	for _, ranks := range []int{7, 64} {
		st, err := corpus.Open(t.TempDir(), corpus.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var hashes []uint64
		var encs [][]byte
		for run := 0; run < 3; run++ {
			enc := encodeBytes(t, simMerged(t, multiPhaseSrc, ranks, run))
			h, err := st.IngestBytes(enc)
			if err != nil {
				t.Fatal(err)
			}
			hashes = append(hashes, h)
			encs = append(encs, enc)
		}
		for i, h := range hashes {
			got, err := st.GetBytes(h)
			if err != nil {
				t.Fatalf("ranks=%d run=%d: %v", ranks, i, err)
			}
			if !bytes.Equal(got, encs[i]) {
				t.Fatalf("ranks=%d run=%d: GetBytes differs from standalone encoding", ranks, i)
			}
		}
		dup, err := st.IngestBytes(encs[1])
		if err != nil {
			t.Fatal(err)
		}
		if dup != hashes[1] {
			t.Fatalf("duplicate ingest returned %016x, want %016x", dup, hashes[1])
		}
		stats, err := st.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Runs != 3 || stats.Classes != 1 || stats.DeltaRuns != 3 {
			t.Fatalf("ranks=%d: stats = %+v, want 3 runs in 1 class, all delta", ranks, stats)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorpusRatio is the PR acceptance bound: a corpus of 8 same-workload
// runs with fresh timings must be at least 4x smaller on disk than the 8
// standalone blocked encodings, while reconstructing each run byte-exactly
// — including after a close/reopen cycle (sealed-segment read path).
func TestCorpusRatio(t *testing.T) {
	for _, ranks := range []int{7, 64} {
		dir := t.TempDir()
		st, err := corpus.Open(dir, corpus.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var blockedTotal int
		var hashes []uint64
		var encs [][]byte
		for run := 0; run < 8; run++ {
			m := simMerged(t, multiPhaseSrc, ranks, run)
			blockedTotal += blockedLen(t, m)
			enc := encodeBytes(t, m)
			h, err := st.IngestBytes(enc)
			if err != nil {
				t.Fatal(err)
			}
			hashes = append(hashes, h)
			encs = append(encs, enc)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		disk := dirBytes(t, dir)
		ratio := float64(blockedTotal) / float64(disk)
		t.Logf("ranks=%d: blocked8=%dB corpus=%dB ratio=%.2f", ranks, blockedTotal, disk, ratio)
		if ratio < 4 {
			t.Fatalf("ranks=%d: corpus ratio %.2f < 4 (corpus %dB vs blocked %dB)",
				ranks, ratio, disk, blockedTotal)
		}

		st, err = corpus.Open(dir, corpus.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hashes {
			got, err := st.GetBytes(h)
			if err != nil {
				t.Fatalf("ranks=%d run=%d after reopen: %v", ranks, i, err)
			}
			if !bytes.Equal(got, encs[i]) {
				t.Fatalf("ranks=%d run=%d after reopen: bytes differ", ranks, i)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// spmdMerged builds a merged 1024-rank trace by driving the compressors
// directly (no simulator) with constant per-site durations offset by small
// integers per run — the large-scale variant of "fresh timings".
func spmdMerged(t testing.TB, ranks, run int) *merge.Merged {
	t.Helper()
	prog, err := lang.Parse(multiPhaseSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lang.Check(prog); err != nil {
		t.Fatal(err)
	}
	irProg, err := ir.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := cst.Build(irProg)
	if err != nil {
		t.Fatal(err)
	}
	var loop *cst.Vertex
	var sites []*cst.Vertex
	tree.Walk(func(v *cst.Vertex, _ int) {
		switch v.Kind {
		case cst.KindLoop:
			if loop == nil {
				loop = v
			}
		case cst.KindComm:
			sites = append(sites, v)
		}
	})
	if loop == nil || len(sites) == 0 {
		t.Fatal("spmd tree missing vertices")
	}
	off := float64(run * 3)
	ctts := make([]*ctt.RankCTT, ranks)
	var ev trace.Event
	for r := 0; r < ranks; r++ {
		c := ctt.NewCompressor(tree, r, timestat.ModeMeanStddev)
		c.LoopEnter(int32(loop.Site))
		for k := 0; k < 4; k++ {
			c.LoopIter(int32(loop.Site))
			for si, v := range sites {
				if v.Op == trace.OpBarrier {
					continue // emitted after the loop
				}
				peer := trace.NoPeer
				switch v.Op {
				case trace.OpSend:
					peer = (r + 1 + si) % ranks
				case trace.OpRecv:
					peer = (r + ranks - 1 - si) % ranks
				}
				c.CommSite(int32(v.Site))
				ev = trace.Event{
					Op: v.Op, Peer: peer, Size: 256 + 16*si, Tag: si, ReqID: -1,
					DurationNS: 1500 + float64(100*si) + off, ComputeNS: 40,
				}
				c.Event(&ev)
			}
		}
		c.StructExit()
		for _, v := range sites {
			if v.Op != trace.OpBarrier {
				continue
			}
			c.CommSite(int32(v.Site))
			ev = trace.Event{Op: trace.OpBarrier, Peer: trace.NoPeer, ReqID: -1,
				DurationNS: 900 + off}
			c.Event(&ev)
		}
		c.Finalize()
		ctts[r] = c.Finish()
	}
	m, err := merge.All(ctts, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCorpusRatio1024 asserts the acceptance bound and byte identity at
// 1024 ranks, using the direct-driven SPMD fixture.
func TestCorpusRatio1024(t *testing.T) {
	dir := t.TempDir()
	st, err := corpus.Open(dir, corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var blockedTotal int
	var hashes []uint64
	var encs [][]byte
	for run := 0; run < 8; run++ {
		m := spmdMerged(t, 1024, run)
		blockedTotal += blockedLen(t, m)
		enc := encodeBytes(t, m)
		h, err := st.IngestBytes(enc)
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, h)
		encs = append(encs, enc)
	}
	stats, err := st.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Classes != 1 || stats.DeltaRuns != 8 {
		t.Fatalf("stats = %+v, want 8 delta runs in 1 class", stats)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	disk := dirBytes(t, dir)
	ratio := float64(blockedTotal) / float64(disk)
	t.Logf("ranks=1024: blocked8=%dB corpus=%dB ratio=%.2f", blockedTotal, disk, ratio)
	if ratio < 4 {
		t.Fatalf("corpus ratio %.2f < 4 (corpus %dB vs blocked %dB)", ratio, disk, blockedTotal)
	}
	st, err = corpus.Open(dir, corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i, h := range hashes {
		got, err := st.GetBytes(h)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !bytes.Equal(got, encs[i]) {
			t.Fatalf("run %d: bytes differ after reopen", i)
		}
	}
}

// TestDeleteGC: tombstoned runs disappear, GC compacts them away, and a
// class whose last delta run is deleted is dropped with its file.
func TestDeleteGC(t *testing.T) {
	dir := t.TempDir()
	st, err := corpus.Open(dir, corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var hashes []uint64
	var encs [][]byte
	for run := 0; run < 3; run++ {
		enc := encodeBytes(t, simMerged(t, multiPhaseSrc, 7, run))
		h, err := st.IngestBytes(enc)
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, h)
		encs = append(encs, enc)
	}
	if err := st.Delete(hashes[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.GetBytes(hashes[1]); err == nil {
		t.Fatal("deleted trace still served")
	}
	if err := st.GC(); err != nil {
		t.Fatal(err)
	}
	stats, err := st.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 2 || stats.Segments != 1 || stats.Classes != 1 {
		t.Fatalf("after gc: stats = %+v, want 2 runs, 1 segment, 1 class", stats)
	}
	for _, i := range []int{0, 2} {
		got, err := st.GetBytes(hashes[i])
		if err != nil {
			t.Fatalf("run %d after gc: %v", i, err)
		}
		if !bytes.Equal(got, encs[i]) {
			t.Fatalf("run %d after gc: bytes differ", i)
		}
	}
	for _, i := range []int{0, 2} {
		if err := st.Delete(hashes[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.GC(); err != nil {
		t.Fatal(err)
	}
	stats, err = st.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 0 || stats.Classes != 0 || stats.Segments != 0 {
		t.Fatalf("after full gc: stats = %+v, want empty store", stats)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "class-") || strings.HasPrefix(e.Name(), "seg-") {
			t.Fatalf("file %s survived full gc", e.Name())
		}
	}
}

// TestCacheLRU: unpinned traces are evicted in LRU order under budget
// pressure, pinned traces never are, and hits share the resident decode.
func TestCacheLRU(t *testing.T) {
	s := obs.New()
	corpus.SetObs(s)
	defer corpus.SetObs(nil)

	var encs [][]byte
	for run := 0; run < 3; run++ {
		encs = append(encs, encodeBytes(t, simMerged(t, multiPhaseSrc, 7, run)))
	}
	// Budget fits one decoded trace (cost = encoding length).
	st, err := corpus.Open(t.TempDir(), corpus.Options{CacheBytes: int64(len(encs[0])) + 16})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var hashes []uint64
	for _, enc := range encs {
		h, err := st.IngestBytes(enc)
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, h)
	}

	t0, err := st.Get(hashes[0])
	if err != nil {
		t.Fatal(err)
	}
	// Pinned: inserting a second trace overflows the budget but must not
	// evict the pinned one.
	t1, err := st.Get(hashes[1])
	if err != nil {
		t.Fatal(err)
	}
	again, err := st.Get(hashes[0])
	if err != nil {
		t.Fatal(err)
	}
	if again != t0 {
		t.Fatal("pinned trace was not served from cache")
	}
	again.Release()
	if evicts := s.Value(obs.CorpusCacheEvicts); evicts != 0 {
		t.Fatalf("evicted %d pinned traces", evicts)
	}
	// Release both; now the cache holds two evictable traces over budget:
	// releasing trims to the newest.
	t1.Release()
	t0.Release()
	if hits, misses := s.Value(obs.CorpusCacheHits), s.Value(obs.CorpusCacheMisses); hits != 1 || misses != 2 {
		t.Fatalf("hit/miss = %d/%d, want 1/2", hits, misses)
	}
	if s.Value(obs.CorpusCacheEvicts) == 0 {
		t.Fatal("no eviction after releasing over-budget traces")
	}
	// t0 was released last, so it is the resident one.
	warm, err := st.Get(hashes[0])
	if err != nil {
		t.Fatal(err)
	}
	if warm != t0 {
		t.Fatal("most recently released trace was evicted")
	}
	warm.Release()
	// The evicted trace still works, it just decodes again.
	cold, err := st.Get(hashes[1])
	if err != nil {
		t.Fatal(err)
	}
	if cold == t1 {
		t.Fatal("evicted trace was served from cache")
	}
	cold.Release()
}

// TestWarmGetNoAllocs: a cache hit is allocation-free — the warm serving
// path does no decode work at all.
func TestWarmGetNoAllocs(t *testing.T) {
	st, err := corpus.Open(t.TempDir(), corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	h, err := st.IngestBytes(encodeBytes(t, simMerged(t, multiPhaseSrc, 7, 0)))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := st.Get(h)
	if err != nil {
		t.Fatal(err)
	}
	tr.Release()
	allocs := testing.AllocsPerRun(200, func() {
		g, err := st.Get(h)
		if err != nil {
			t.Fatal(err)
		}
		g.Release()
	})
	if allocs > 0 {
		t.Fatalf("warm Get allocates %.1f objects/op, want 0", allocs)
	}
}

// TestCorruptStoreErrors: flipping or truncating store files makes Open or
// Get fail with an error — never a panic, never silently wrong bytes.
func TestCorruptStoreErrors(t *testing.T) {
	dir := t.TempDir()
	st, err := corpus.Open(dir, corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	enc := encodeBytes(t, simMerged(t, multiPhaseSrc, 7, 0))
	h, err := st.IngestBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.IngestBytes(encodeBytes(t, simMerged(t, multiPhaseSrc, 7, 1))); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		path := filepath.Join(dir, e.Name())
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for pos := 0; pos < len(orig); pos += 1 + len(orig)/13 {
			mut := append([]byte(nil), orig...)
			mut[pos] ^= 0x10
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			st, err := corpus.Open(dir, corpus.Options{})
			if err == nil {
				got, gerr := st.GetBytes(h)
				if gerr == nil && !bytes.Equal(got, enc) {
					t.Fatalf("%s pos %d: corrupt store served wrong bytes", e.Name(), pos)
				}
				st.Close()
			}
		}
		for _, cut := range []int{0, 3, len(orig) / 2, len(orig) - 1} {
			if err := os.WriteFile(path, orig[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			st, err := corpus.Open(dir, corpus.Options{})
			if err == nil {
				if got, gerr := st.GetBytes(h); gerr == nil && !bytes.Equal(got, enc) {
					t.Fatalf("%s cut %d: truncated store served wrong bytes", e.Name(), cut)
				}
				st.Close()
			}
		}
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// replayRank replays one rank of a served trace through its shared streamer.
func replayRank(t testing.TB, tr *corpus.Trace, rank int) []trace.Event {
	t.Helper()
	var out []trace.Event
	if err := tr.Streamer().Replay(rank, func(e *trace.Event) {
		out = append(out, *e)
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestGetProjected: a rank-projected get replays the selected rank
// identically to a full get, shares the full tree's cache residency (one
// decode, one cost accounting), and self-heals when an unselected rank of
// the resident projected tree is touched later.
func TestGetProjected(t *testing.T) {
	st, err := corpus.Open(t.TempDir(), corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const ranks = 8
	h, err := st.IngestBytes(encodeBytes(t, simMerged(t, multiPhaseSrc, ranks, 0)))
	if err != nil {
		t.Fatal(err)
	}

	s := obs.New()
	corpus.SetObs(s)
	defer corpus.SetObs(nil)

	// Cold projected get: decodes selectively, enters the serving cache.
	proj, err := st.GetProjected(h, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	defer proj.Release()
	if misses := s.Value(obs.CorpusCacheMisses); misses != 1 {
		t.Fatalf("cache misses = %d, want 1", misses)
	}

	// A full Get of the resident trace is a cache hit on the same tree.
	full, err := st.Get(h)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Release()
	if hits := s.Value(obs.CorpusCacheHits); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
	if full.Merged != proj.Merged {
		t.Fatal("projected and full gets of a resident trace do not share one tree")
	}

	// Reference sequences from an independent full decode.
	ref, err := merge.Decode(bytes.NewReader(mustGetBytes(t, st, h)))
	if err != nil {
		t.Fatal(err)
	}
	for _, rank := range []int{3, 0, ranks - 1} {
		var want []trace.Event
		if err := merge.NewStreamer(ref).Replay(rank, func(e *trace.Event) {
			want = append(want, *e)
		}); err != nil {
			t.Fatal(err)
		}
		// rank 3 is the selected slice; the others exercise lazy self-healing
		// of the shared resident tree.
		got := replayRank(t, proj, rank)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rank %d: projected replay diverges (%d vs %d events)", rank, len(got), len(want))
		}
	}
}

func mustGetBytes(t testing.TB, st *corpus.Store, h uint64) []byte {
	t.Helper()
	enc, err := st.GetBytes(h)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}
