package corpus_test

import (
	"bytes"
	"testing"

	"repro/internal/corpus"
)

// FuzzCorpusRoundTrip feeds arbitrary bytes through the full store cycle and
// checks the corpus's two load-bearing properties:
//
//  1. Byte identity: whatever IngestBytes accepts — well-formed v1 traces
//     that take the delta path, and arbitrary junk that falls back to full
//     storage — GetBytes must reproduce exactly, both from the live store
//     and after a close/reopen cycle (sealed-segment read path).
//  2. Robustness: no input may panic the store; Get on undecodable content
//     returns an error.
//
// The seed corpus holds canonical encodings of the workload fixtures (which
// exercise split/delta/patch/join end to end) plus short corrupt prefixes.
func FuzzCorpusRoundTrip(f *testing.F) {
	for _, ranks := range []int{2, 7} {
		f.Add(encodeBytes(f, simMerged(f, multiPhaseSrc, ranks, 0)))
	}
	enc := encodeBytes(f, simMerged(f, `func main() { barrier(); }`, 2, 1))
	f.Add(enc)
	f.Add(enc[:len(enc)/2])
	mut := append([]byte(nil), enc...)
	mut[len(mut)/3] ^= 0x40
	f.Add(mut)
	f.Add([]byte("CYPR"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		st, err := corpus.Open(dir, corpus.Options{})
		if err != nil {
			t.Fatal(err)
		}
		h, err := st.IngestBytes(data)
		if err != nil {
			// Ingest may only fail on I/O problems, not on input shape.
			t.Fatalf("ingest rejected input: %v", err)
		}
		got, err := st.GetBytes(h)
		if err != nil {
			t.Fatalf("GetBytes: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("GetBytes differs from ingested bytes")
		}
		if tr, err := st.Get(h); err == nil {
			tr.Release()
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}

		st, err = corpus.Open(dir, corpus.Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		got, err = st.GetBytes(h)
		if err != nil {
			t.Fatalf("GetBytes after reopen: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("GetBytes differs after reopen")
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
