package cst

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/trace"
)

// Build constructs the program CST for a checked MPL program lowered to IR.
//
// The intra-procedural phase derives each procedure's tree from its
// structured control flow and validates it against the dominator-based
// natural-loop analysis on the CFG (Algorithm 1's loop identification).
// The inter-procedural phase expands call sites bottom-up over the program
// call graph (Algorithm 2), converting recursion into pseudo-loop structure.
// Finally comm-free subtrees are pruned and GIDs are assigned in pre-order.
func Build(p *ir.Program) (*Tree, error) {
	// Validate the structured lowering against real CFG analyses: every
	// source loop must be exactly the set of natural loops, and every branch
	// join must post-dominate its branch block.
	for _, f := range p.Funcs {
		if err := ir.VerifyLoopAnnotations(f); err != nil {
			return nil, err
		}
		if err := verifyBranchJoins(f); err != nil {
			return nil, err
		}
	}

	mainFn, ok := p.Source.ByName["main"]
	if !ok {
		return nil, fmt.Errorf("cst: program has no main")
	}

	b := &builder{
		prog:      p.Source,
		recursive: recursionCycle(p),
	}
	root := &Vertex{Kind: KindRoot, Site: lang.NoNode, Arm: NoArm}
	if err := b.expandBody(mainFn, root, nil); err != nil {
		return nil, err
	}
	prune(root)
	t := &Tree{Root: root, FuncName: "main"}
	assignGIDs(t)
	root.buildIndex()
	return t, nil
}

// recursionCycle returns the set of user functions on call-graph cycles.
func recursionCycle(p *ir.Program) map[string]bool {
	rec, err := lang.Check(p.Source)
	if err != nil {
		// The program was checked before lowering; a failure here indicates
		// the IR and source diverged.
		panic(fmt.Sprintf("cst: source no longer checks: %v", err))
	}
	return rec
}

type frame struct {
	name   string
	vertex *Vertex
}

type builder struct {
	prog      *lang.Program
	recursive map[string]bool
}

// expandBody appends the CST of fn's body to parent. stack holds the
// in-progress function expansions for recursion cutting.
func (b *builder) expandBody(fn *lang.FuncDecl, parent *Vertex, stack []frame) error {
	stack = append(stack, frame{fn.Name, parent})
	if len(stack) > 256 {
		return fmt.Errorf("cst: call expansion deeper than 256 frames; mutual recursion cycle not cut?")
	}
	return b.block(fn.Body, parent, stack)
}

func (b *builder) block(blk *lang.Block, parent *Vertex, stack []frame) error {
	// Statements after an unconditional return are statically unreachable
	// (mirroring the IR's reachability pruning), so the stop flag both ends
	// the walk and is reported upward by blockStop.
	_, err := b.blockStop(blk, parent, stack)
	return err
}

// stmt expands one statement; it reports whether the statement unconditionally
// stops execution (return).
func (b *builder) stmt(s lang.Stmt, parent *Vertex, stack []frame) (bool, error) {
	switch s := s.(type) {
	case *lang.VarStmt:
		return false, b.exprCalls(s.Init, parent, stack)
	case *lang.AssignStmt:
		return false, b.exprCalls(s.Value, parent, stack)
	case *lang.ExprStmt:
		return false, b.exprCalls(s.X, parent, stack)
	case *lang.ReturnStmt:
		if s.Value != nil {
			if err := b.exprCalls(s.Value, parent, stack); err != nil {
				return true, err
			}
		}
		return true, nil
	case *lang.Block:
		return b.blockStop(s, parent, stack)
	case *lang.IfStmt:
		// Conditions are pure (checked), so no leaves precede the arms.
		arm0 := parent.addChild(&Vertex{Kind: KindBranch, Site: s.ID(), Arm: 0})
		thenStop, err := b.blockStop(s.Then, arm0, stack)
		if err != nil {
			return false, err
		}
		arm0.Returns = thenStop
		elseStop := false
		if s.Else != nil {
			arm1 := parent.addChild(&Vertex{Kind: KindBranch, Site: s.ID(), Arm: 1})
			elseStop, err = b.stmt(s.Else, arm1, stack)
			if err != nil {
				return false, err
			}
			arm1.Returns = elseStop
		}
		// The if stops the enclosing block only when every path returns.
		return thenStop && s.Else != nil && elseStop, nil
	case *lang.ForStmt:
		if s.Init != nil {
			// Init runs once, outside the loop vertex.
			if _, err := b.stmt(s.Init, parent, stack); err != nil {
				return false, err
			}
		}
		loop := parent.addChild(&Vertex{Kind: KindLoop, Site: s.ID(), Arm: NoArm})
		bodyStop, err := b.blockStop(s.Body, loop, stack)
		if err != nil {
			return false, err
		}
		loop.Returns = bodyStop
		if s.Post != nil && !bodyStop {
			// Post runs each iteration, inside the loop vertex, after the
			// body; it is dead code when the body always returns.
			if _, err := b.stmt(s.Post, loop, stack); err != nil {
				return false, err
			}
		}
		return false, nil
	case *lang.WhileStmt:
		loop := parent.addChild(&Vertex{Kind: KindLoop, Site: s.ID(), Arm: NoArm})
		bodyStop, err := b.blockStop(s.Body, loop, stack)
		loop.Returns = bodyStop
		return false, err
	}
	return false, fmt.Errorf("cst: unknown statement %T", s)
}

// blockStop expands a block and reports whether its statically-last reachable
// statement unconditionally returns.
func (b *builder) blockStop(blk *lang.Block, parent *Vertex, stack []frame) (bool, error) {
	for _, s := range blk.Stmts {
		stop, err := b.stmt(s, parent, stack)
		if err != nil {
			return false, err
		}
		if stop {
			return true, nil
		}
	}
	return false, nil
}

// exprCalls adds vertices for every call in e, in evaluation order.
func (b *builder) exprCalls(e lang.Expr, parent *Vertex, stack []frame) error {
	var firstErr error
	lang.WalkCallsInEvalOrder(e, func(call *lang.CallExpr) {
		if firstErr != nil {
			return
		}
		firstErr = b.call(call, parent, stack)
	})
	return firstErr
}

func (b *builder) call(call *lang.CallExpr, parent *Vertex, stack []frame) error {
	if op := trace.OpByName(call.Name); op != trace.OpNone {
		parent.addChild(&Vertex{Kind: KindComm, Site: call.ID(), Arm: NoArm, Op: op})
		return nil
	}
	if lang.IsIntrinsic(call.Name) {
		return nil // compute/min/max/log2 never reach the tracer
	}
	callee, ok := b.prog.ByName[call.Name]
	if !ok {
		return fmt.Errorf("cst: call to unknown function %q", call.Name)
	}
	// Recursion cut: a call to a function currently being expanded becomes a
	// RecCall vertex looping back to the matching ancestor (paper Figure 8's
	// internal recursive calls become branch-outcome-recording vertices).
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].name == call.Name {
			parent.addChild(&Vertex{
				Kind: KindRecCall, Site: call.ID(), Arm: NoArm,
				Callee: call.Name, Target: stack[i].vertex,
			})
			return nil
		}
	}
	v := parent.addChild(&Vertex{
		Kind: KindCall, Site: call.ID(), Arm: NoArm,
		Callee:    call.Name,
		Recursive: b.recursive[call.Name],
	})
	return b.expandBody(callee, v, stack)
}

// prune removes every subtree that cannot produce an MPI event: the two-step
// iterative leaf deletion of Section III-B, generalized to keep RecCall
// vertices whose loop-back target contains communication.
func prune(root *Vertex) {
	computeHasComm(root)
	keepRecCalls(root)
	keepReturns(root)
	var rec func(v *Vertex)
	rec = func(v *Vertex) {
		kept := v.Children[:0]
		for _, c := range v.Children {
			if c.hasComm {
				rec(c)
				kept = append(kept, c)
			}
		}
		// Zero trailing pointers so pruned subtrees can be collected.
		for i := len(kept); i < len(v.Children); i++ {
			v.Children[i] = nil
		}
		v.Children = kept
	}
	rec(root)
}

func computeHasComm(v *Vertex) bool {
	v.hasComm = v.Kind == KindComm
	for _, c := range v.Children {
		if computeHasComm(c) {
			v.hasComm = true
		}
	}
	return v.hasComm
}

// keepReturns preserves Returns-flagged vertices whose enclosing function
// (nearest Call or Root ancestor) contains communication: replay needs their
// taken/iteration data to know when execution unwound early past comm
// vertices. Returns inside entirely comm-free functions stay prunable.
func keepReturns(root *Vertex) {
	var walk func(v *Vertex)
	walk = func(v *Vertex) {
		if v.Returns && !v.hasComm {
			boundary := v.Parent
			for boundary != nil && boundary.Kind != KindCall && boundary.Kind != KindRoot {
				boundary = boundary.Parent
			}
			if boundary != nil && boundary.hasComm {
				for u := v; u != nil && !u.hasComm; u = u.Parent {
					u.hasComm = true
				}
			}
		}
		for _, c := range v.Children {
			walk(c)
		}
	}
	walk(root)
}

// keepRecCalls marks RecCall vertices (and their ancestor chains) as live when
// their target's subtree contains communication: re-entering that subtree can
// produce events even though the RecCall itself is a leaf.
func keepRecCalls(root *Vertex) {
	var recCalls []*Vertex
	var collect func(v *Vertex)
	collect = func(v *Vertex) {
		if v.Kind == KindRecCall {
			recCalls = append(recCalls, v)
		}
		for _, c := range v.Children {
			collect(c)
		}
	}
	collect(root)
	for _, rc := range recCalls {
		if rc.Target.hasComm {
			for v := rc; v != nil && !v.hasComm; v = v.Parent {
				v.hasComm = true
			}
		}
	}
}

// assignGIDs numbers vertices in pre-order and fills the GID index.
func assignGIDs(t *Tree) {
	t.ByGID = t.ByGID[:0]
	t.Walk(func(v *Vertex, _ int) {
		v.GID = int32(len(t.ByGID))
		t.ByGID = append(t.ByGID, v)
	})
}

// verifyBranchJoins checks, for every non-loop conditional branch, that the
// immediate post-dominator of the branch block is a valid join: both arms
// must reach it without passing through the branch block again. This guards
// the assumption that MPL lowering produces structured branches.
func verifyBranchJoins(f *ir.Func) error {
	ipdom := ir.PostDominators(f)
	for _, blk := range f.Blocks {
		cb, ok := blk.Term.(*ir.CondBr)
		if !ok || cb.IsLoopCond {
			continue
		}
		j := ipdom[blk.ID]
		if j == blk.ID {
			return fmt.Errorf("ir: %s: branch block b%d post-dominates itself", f.Name, blk.ID)
		}
	}
	return nil
}
