// Package cst implements the Communication Structure Tree, the static data
// structure at the heart of CYPRESS (paper Section III).
//
// The CST is an ordered tree extracted at compile time. Leaf vertices are MPI
// communication invocations; interior vertices are loop, branch, and call
// structures. A pre-order traversal of the CST matches the static structure
// of the program, so the runtime can track the currently-executing vertex
// with a cursor and "fill in" event details top-down.
//
// Construction follows the paper:
//   - an intra-procedural pass builds one tree per procedure from its control
//     structure (Algorithm 1); the dominator-based loop identification over
//     the CFG (ir.NaturalLoops) validates every loop vertex;
//   - a bottom-up inter-procedural pass over the program call graph expands
//     user-function call sites with copies of their callees' trees
//     (Algorithm 2);
//   - recursive calls are converted into pseudo-loop structures: the call
//     vertex that enters a recursion cycle acts as a loop recording recursion
//     depth, and calls back to an in-progress function become RecCall
//     vertices that "loop back" to the matching ancestor (paper Figure 8);
//   - a pruning pass removes every subtree that cannot produce an MPI event.
//
// One deliberate representation difference from the paper: call vertices are
// retained rather than spliced away during inlining. Each call site owns a
// distinct subtree either way; keeping the vertex gives the runtime cursor an
// unambiguous descent key when the same function is called twice in a row.
package cst

import (
	"fmt"
	"strings"

	"repro/internal/lang"
	"repro/internal/trace"
)

// Kind classifies a CST vertex.
type Kind uint8

const (
	KindRoot Kind = iota
	KindLoop
	KindBranch
	KindCall
	KindComm
	KindRecCall
)

var kindNames = [...]string{"Root", "Loop", "Br", "Call", "Comm", "RecCall"}

func (k Kind) String() string { return kindNames[k] }

// NoArm marks vertices that are not branch arms.
const NoArm int8 = -1

// Vertex is one node of the CST.
type Vertex struct {
	Kind Kind
	// GID is the unique pre-order global id (paper Section III-A), assigned
	// after pruning. The instrumented runtime reports GIDs to the compressor.
	GID int32
	// Site is the AST node of the source construct: the loop statement, the
	// if statement, or the call expression. Together with Arm it uniquely
	// keys a child under its parent.
	Site lang.NodeID
	// Arm is the branch path index for KindBranch (0 = then, 1 = else);
	// NoArm otherwise.
	Arm int8
	// Op is the MPI operation for KindComm leaves.
	Op trace.Op
	// Callee is the function name for KindCall and KindRecCall.
	Callee string
	// Recursive marks call vertices that enter a recursion cycle; such a
	// vertex doubles as the paper's pseudo-loop, recording recursion depth.
	Recursive bool
	// Returns marks a branch arm whose statically-last statement is an
	// unconditional return, or a loop whose body always returns. Replay
	// unwinds to the enclosing call boundary after traversing such a vertex,
	// keeping the decompressed sequence aligned with what actually ran.
	// Vertices with Returns set survive pruning even when comm-free.
	Returns bool
	// Target is the ancestor vertex a RecCall loops back to.
	Target *Vertex

	Parent   *Vertex
	Children []*Vertex

	childIdx map[childKey]*Vertex
	hasComm  bool
}

type childKey struct {
	site lang.NodeID
	arm  int8
}

// Child returns the child with the given site and arm, or nil. The runtime
// cursor uses this for descent; nil means the subtree was pruned (comm-free).
func (v *Vertex) Child(site lang.NodeID, arm int8) *Vertex {
	if v.childIdx == nil {
		return nil
	}
	return v.childIdx[childKey{site, arm}]
}

func (v *Vertex) addChild(c *Vertex) *Vertex {
	c.Parent = v
	v.Children = append(v.Children, c)
	return c
}

func (v *Vertex) buildIndex() {
	if err := v.buildIndexChecked(); err != nil {
		// Build-time callers construct the tree themselves, so a duplicate
		// child key is an internal invariant violation there. The decoder,
		// which consumes untrusted files, uses buildIndexChecked directly.
		panic(err.Error())
	}
}

func (v *Vertex) buildIndexChecked() error {
	if len(v.Children) == 0 {
		return nil
	}
	v.childIdx = make(map[childKey]*Vertex, len(v.Children))
	for _, c := range v.Children {
		key := childKey{c.Site, c.Arm}
		if _, dup := v.childIdx[key]; dup {
			// Comm leaves may repeat a site only if the same call expression
			// appears twice under one parent, which the expansion never
			// produces.
			return fmt.Errorf("cst: duplicate child key %+v under GID %d", key, v.GID)
		}
		v.childIdx[key] = c
	}
	for _, c := range v.Children {
		if err := c.buildIndexChecked(); err != nil {
			return err
		}
	}
	return nil
}

// Tree is a complete program CST.
type Tree struct {
	Root *Vertex
	// ByGID indexes vertices by GID in pre-order; ByGID[0] is the root.
	ByGID []*Vertex
	// FuncName records the program entry function ("main").
	FuncName string
}

// NumVertices returns the number of vertices after pruning.
func (t *Tree) NumVertices() int { return len(t.ByGID) }

// Walk visits vertices in pre-order.
func (t *Tree) Walk(f func(v *Vertex, depth int)) {
	var rec func(v *Vertex, d int)
	rec = func(v *Vertex, d int) {
		f(v, d)
		for _, c := range v.Children {
			rec(c, d+1)
		}
	}
	rec(t.Root, 0)
}

// Dump renders the tree in the indentation style of paper Figures 6-7.
func (t *Tree) Dump() string {
	var b strings.Builder
	t.Walk(func(v *Vertex, d int) {
		b.WriteString(strings.Repeat("  ", d))
		fmt.Fprintf(&b, "%d:%s", v.GID, v.Kind)
		switch v.Kind {
		case KindComm:
			fmt.Fprintf(&b, ":%s", v.Op)
		case KindCall:
			fmt.Fprintf(&b, ":%s", v.Callee)
			if v.Recursive {
				b.WriteString(" (pseudo-loop)")
			}
		case KindRecCall:
			fmt.Fprintf(&b, ":%s -> %d", v.Callee, v.Target.GID)
		case KindBranch:
			fmt.Fprintf(&b, "[arm %d]", v.Arm)
		}
		b.WriteByte('\n')
	})
	return b.String()
}

// Stats summarizes the tree for tooling.
type Stats struct {
	Vertices, Loops, Branches, Calls, CommLeaves, RecCalls int
}

// Stats computes vertex-kind counts.
func (t *Tree) Stats() Stats {
	var s Stats
	t.Walk(func(v *Vertex, _ int) {
		s.Vertices++
		switch v.Kind {
		case KindLoop:
			s.Loops++
		case KindBranch:
			s.Branches++
		case KindCall:
			s.Calls++
		case KindComm:
			s.CommLeaves++
		case KindRecCall:
			s.RecCalls++
		}
	})
	return s
}
