package cst

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/trace"
)

func build(t *testing.T, src string) *Tree {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := lang.Check(ast); err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := ir.Lower(ast)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	tree, err := Build(p)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return tree
}

// Paper Figure 5.
const fig5Src = `
func main() {
	for var i = 0; i < 4; i = i + 1 {
		if rank % 2 == 0 {
			send(rank + 1, 64, 0);
		} else {
			recv(rank - 1, 64, 0);
		}
		bar();
	}
	foo();
	if rank % 2 == 0 {
		reduce(0, 8);
	}
}
func bar() {
	for var k = 0; k < 3; k = k + 1 {
		bcast(0, 64);
	}
}
func foo() {
	var sum = 0;
	for var j = 0; j < 5; j = j + 1 {
		sum = sum + j;
	}
}
`

func TestFig5CompleteCST(t *testing.T) {
	tree := build(t, fig5Src)
	// Paper Figure 7 (with call vertices retained): Root{ Loop{ Br0{Send},
	// Br1{Recv}, Call bar{ Loop{Bcast} } }, Br0{Reduce} }.
	// foo() is comm-free and must be pruned entirely.
	st := tree.Stats()
	if st.CommLeaves != 4 {
		t.Fatalf("comm leaves = %d, want 4\n%s", st.CommLeaves, tree.Dump())
	}
	if st.Loops != 2 {
		t.Fatalf("loops = %d, want 2\n%s", st.Loops, tree.Dump())
	}
	if st.Branches != 3 {
		t.Fatalf("branches = %d, want 3\n%s", st.Branches, tree.Dump())
	}
	if st.Calls != 1 {
		t.Fatalf("calls = %d, want 1 (bar)\n%s", st.Calls, tree.Dump())
	}
	if strings.Contains(tree.Dump(), "foo") {
		t.Fatalf("comm-free foo not pruned:\n%s", tree.Dump())
	}
	// Pre-order GIDs are dense and match ByGID.
	for i, v := range tree.ByGID {
		if v.GID != int32(i) {
			t.Fatalf("ByGID[%d].GID = %d", i, v.GID)
		}
	}
	// Root's first child is the outer loop; its children in order are
	// Br0, Br1, Call(bar).
	loop := tree.Root.Children[0]
	if loop.Kind != KindLoop {
		t.Fatalf("first child = %v", loop.Kind)
	}
	kinds := []Kind{}
	for _, c := range loop.Children {
		kinds = append(kinds, c.Kind)
	}
	if len(kinds) != 3 || kinds[0] != KindBranch || kinds[1] != KindBranch || kinds[2] != KindCall {
		t.Fatalf("loop children = %v\n%s", kinds, tree.Dump())
	}
	if loop.Children[0].Arm != 0 || loop.Children[1].Arm != 1 {
		t.Fatal("branch arms mislabeled")
	}
	// Send under then-arm, Recv under else-arm.
	if loop.Children[0].Children[0].Op != trace.OpSend {
		t.Fatal("then arm must contain send")
	}
	if loop.Children[1].Children[0].Op != trace.OpRecv {
		t.Fatal("else arm must contain recv")
	}
	// bar's loop contains the bcast.
	barLoop := loop.Children[2].Children[0]
	if barLoop.Kind != KindLoop || barLoop.Children[0].Op != trace.OpBcast {
		t.Fatalf("bar expansion wrong:\n%s", tree.Dump())
	}
	// Second top-level child: branch arm 0 holding reduce (no else arm since
	// there is no else).
	br := tree.Root.Children[1]
	if br.Kind != KindBranch || br.Arm != 0 || br.Children[0].Op != trace.OpReduce {
		t.Fatalf("trailing branch wrong:\n%s", tree.Dump())
	}
}

func TestChildLookup(t *testing.T) {
	tree := build(t, fig5Src)
	loop := tree.Root.Children[0]
	if got := tree.Root.Child(loop.Site, NoArm); got != loop {
		t.Fatal("Child lookup failed for loop")
	}
	arm0 := loop.Children[0]
	if got := loop.Child(arm0.Site, 0); got != arm0 {
		t.Fatal("Child lookup failed for arm 0")
	}
	if got := loop.Child(arm0.Site, 1); got != loop.Children[1] {
		t.Fatal("Child lookup failed for arm 1")
	}
	if loop.Child(12345, NoArm) != nil {
		t.Fatal("lookup of unknown site must be nil")
	}
}

func TestPruneBranchArmWithoutComm(t *testing.T) {
	tree := build(t, `
func main() {
	if rank == 0 {
		send(1, 8, 0);
	} else {
		var x = 1;
		compute(x);
	}
}`)
	// Only arm 0 survives.
	if len(tree.Root.Children) != 1 {
		t.Fatalf("children = %d\n%s", len(tree.Root.Children), tree.Dump())
	}
	if tree.Root.Children[0].Arm != 0 {
		t.Fatal("surviving arm must be arm 0")
	}
}

func TestPruneCommFreeProgramLeavesRootOnly(t *testing.T) {
	tree := build(t, `func main() { var x = 1; compute(x); }`)
	if tree.NumVertices() != 1 || len(tree.Root.Children) != 0 {
		t.Fatalf("comm-free program should prune to bare root:\n%s", tree.Dump())
	}
}

func TestSelfRecursionPseudoLoop(t *testing.T) {
	// Paper Figure 8 shape: recursion becomes a pseudo-loop; internal
	// recursive calls become loop-back vertices.
	tree := build(t, `
func main() { f(3); }
func f(n) {
	if n == 0 { return; }
	if n > 1 {
		bcast(0, 8);
		reduce(0, 8);
		f(n - 1);
	} else {
		bcast(0, 8);
		f(n - 1);
		reduce(0, 8);
	}
}`)
	callF := tree.Root.Children[0]
	if callF.Kind != KindCall || !callF.Recursive {
		t.Fatalf("f call site must be a recursive (pseudo-loop) vertex:\n%s", tree.Dump())
	}
	st := tree.Stats()
	if st.RecCalls != 2 {
		t.Fatalf("rec calls = %d, want 2\n%s", st.RecCalls, tree.Dump())
	}
	// Every RecCall targets the pseudo-loop call vertex.
	tree.Walk(func(v *Vertex, _ int) {
		if v.Kind == KindRecCall && v.Target != callF {
			t.Fatalf("RecCall target = GID %d, want %d", v.Target.GID, callF.GID)
		}
	})
	if st.CommLeaves != 4 {
		t.Fatalf("comm leaves = %d, want 4\n%s", st.CommLeaves, tree.Dump())
	}
}

func TestMutualRecursion(t *testing.T) {
	tree := build(t, `
func main() { ping(4); }
func ping(n) { if n > 0 { send(1, 8, 0); pong(n - 1); } }
func pong(n) { if n > 0 { recv(0, 8, 0); ping(n - 1); } }`)
	st := tree.Stats()
	if st.RecCalls != 1 {
		t.Fatalf("rec calls = %d, want 1 (pong->ping)\n%s", st.RecCalls, tree.Dump())
	}
	// ping is expanded once under main, pong once under ping; pong's call to
	// ping loops back to ping's call vertex.
	var recCall *Vertex
	tree.Walk(func(v *Vertex, _ int) {
		if v.Kind == KindRecCall {
			recCall = v
		}
	})
	if recCall.Callee != "ping" || recCall.Target.Callee != "ping" || !recCall.Target.Recursive {
		t.Fatalf("rec call wiring wrong:\n%s", tree.Dump())
	}
}

func TestRepeatedCallSitesGetDistinctSubtrees(t *testing.T) {
	tree := build(t, `
func main() { halo(); halo(); }
func halo() { send(rank + 1, 8, 0); recv(rank - 1, 8, 0); }`)
	if len(tree.Root.Children) != 2 {
		t.Fatalf("want two call vertices:\n%s", tree.Dump())
	}
	a, b := tree.Root.Children[0], tree.Root.Children[1]
	if a.Site == b.Site {
		t.Fatal("distinct call sites must have distinct Site ids")
	}
	if len(a.Children) != 2 || len(b.Children) != 2 {
		t.Fatal("each call vertex owns a full copy of the callee tree")
	}
}

func TestCallsInsideConditionArgumentsAndPost(t *testing.T) {
	tree := build(t, `
func main() {
	for var i = 0; i < 3; i = next(i) {
		compute(1);
	}
}
func next(i) { allreduce(8); return i + 1; }`)
	// next() runs per iteration inside the loop vertex.
	loop := tree.Root.Children[0]
	if loop.Kind != KindLoop {
		t.Fatalf("want loop first:\n%s", tree.Dump())
	}
	if len(loop.Children) != 1 || loop.Children[0].Kind != KindCall || loop.Children[0].Callee != "next" {
		t.Fatalf("post call must live inside the loop:\n%s", tree.Dump())
	}
}

func TestReturnStopsExpansion(t *testing.T) {
	tree := build(t, `
func main() { f(); }
func f() {
	barrier();
	return;
	send(1, 8, 0);
}`)
	st := tree.Stats()
	if st.CommLeaves != 1 {
		t.Fatalf("unreachable send must not appear:\n%s", tree.Dump())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, src := range []string{fig5Src, `
func main() { f(2); }
func f(n) { if n > 0 { bcast(0, 8); f(n - 1); } }`} {
		tree := build(t, src)
		var buf bytes.Buffer
		if err := tree.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode: %v\n%s", err, tree.Dump())
		}
		if got.Hash() != tree.Hash() {
			t.Fatalf("hash mismatch after round trip:\n%s\nvs\n%s", tree.Dump(), got.Dump())
		}
		if got.NumVertices() != tree.NumVertices() {
			t.Fatal("vertex count changed")
		}
		// Child lookup still works on the decoded tree.
		if len(got.Root.Children) > 0 {
			c := got.Root.Children[0]
			if got.Root.Child(c.Site, c.Arm) != c {
				t.Fatal("decoded tree lost child index")
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"",
		"WRONG MAGIC\n",
		"CYPRESS-CST v1 nonsense\n",
		"CYPRESS-CST v1 99999999999 main\n",
		"CYPRESS-CST v1 2 main\n0 0 -1 -1 0 0 -1 \"\"\n1\n", // truncated: missing child
	}
	for _, s := range cases {
		if _, err := Decode(strings.NewReader(s)); err == nil {
			t.Errorf("Decode(%q) should fail", s)
		}
	}
}

func TestHashDiffersForDifferentPrograms(t *testing.T) {
	a := build(t, `func main() { send(1, 8, 0); }`)
	b := build(t, `func main() { recv(1, 8, 0); }`)
	if a.Hash() == b.Hash() {
		t.Fatal("different programs should hash differently")
	}
}

func TestDumpMentionsStructure(t *testing.T) {
	tree := build(t, fig5Src)
	d := tree.Dump()
	for _, frag := range []string{"Root", "Loop", "Br[arm 0]", "Br[arm 1]", "Comm:MPI_Send", "Call:bar"} {
		if !strings.Contains(d, frag) {
			t.Fatalf("Dump missing %q:\n%s", frag, d)
		}
	}
}

func TestJacobiShape(t *testing.T) {
	// Paper Figure 3: one loop with four single-arm branches.
	tree := build(t, `
func main() {
	for var k = 0; k < 10; k = k + 1 {
		if rank < size - 1 { send(rank + 1, 8000, 0); }
		if rank > 0 { recv(rank - 1, 8000, 0); }
		if rank > 0 { send(rank - 1, 8000, 0); }
		if rank < size - 1 { recv(rank + 1, 8000, 0); }
	}
}`)
	loop := tree.Root.Children[0]
	if len(loop.Children) != 4 {
		t.Fatalf("want 4 branch arms:\n%s", tree.Dump())
	}
	for _, c := range loop.Children {
		if c.Kind != KindBranch || len(c.Children) != 1 || c.Children[0].Kind != KindComm {
			t.Fatalf("jacobi arm malformed:\n%s", tree.Dump())
		}
	}
}
