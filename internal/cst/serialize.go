package cst

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"strings"

	"repro/internal/lang"
	"repro/internal/trace"
)

// The paper stores the program CST "in a compressed text file". This codec
// writes one line per vertex in pre-order; child counts make the structure
// self-delimiting, so decode is a single pass.

const magic = "CYPRESS-CST v1"

// Encode writes t to w in the text format.
func (t *Tree) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s %d %s\n", magic, t.NumVertices(), t.FuncName)
	var err error
	t.Walk(func(v *Vertex, _ int) {
		if err != nil {
			return
		}
		target := int32(-1)
		if v.Target != nil {
			target = v.Target.GID
		}
		rec := 0
		if v.Recursive {
			rec = 1
		}
		ret := 0
		if v.Returns {
			ret = 1
		}
		_, err = fmt.Fprintf(bw, "%d %d %d %d %d %d %d %d %q\n",
			v.GID, v.Kind, v.Site, v.Arm, v.Op, rec, ret, target, v.Callee)
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(bw, "%d\n", len(v.Children))
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Decode reads a tree written by Encode.
func Decode(r io.Reader) (*Tree, error) {
	br := bufio.NewReader(r)
	var n int
	var fn string
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("cst: reading header: %w", err)
	}
	if !strings.HasPrefix(header, magic) {
		return nil, fmt.Errorf("cst: bad magic %q", strings.TrimSpace(header))
	}
	if _, err := fmt.Sscanf(header[len(magic):], "%d %s", &n, &fn); err != nil {
		return nil, fmt.Errorf("cst: bad header %q: %w", strings.TrimSpace(header), err)
	}
	if n < 1 || n > 1<<24 {
		return nil, fmt.Errorf("cst: implausible vertex count %d", n)
	}
	t := &Tree{FuncName: fn, ByGID: make([]*Vertex, 0, n)}
	type pending struct {
		v         *Vertex
		remaining int
	}
	var stack []pending
	targets := map[*Vertex]int32{}
	for i := 0; i < n; i++ {
		var gid, site int32
		var kind, arm, op, rec, ret int
		var target int32
		var callee string
		if _, err := fmt.Fscanf(br, "%d %d %d %d %d %d %d %d %q\n",
			&gid, &kind, &site, &arm, &op, &rec, &ret, &target, &callee); err != nil {
			return nil, fmt.Errorf("cst: vertex %d: %w", i, err)
		}
		var nchild int
		if _, err := fmt.Fscanf(br, "%d\n", &nchild); err != nil {
			return nil, fmt.Errorf("cst: vertex %d child count: %w", i, err)
		}
		if gid != int32(i) {
			return nil, fmt.Errorf("cst: vertex %d has GID %d; file not in pre-order", i, gid)
		}
		v := &Vertex{
			Kind: Kind(kind), GID: gid, Site: lang.NodeID(site), Arm: int8(arm),
			Op: trace.Op(op), Recursive: rec != 0, Returns: ret != 0, Callee: callee,
		}
		if target >= 0 {
			targets[v] = target
		}
		if len(stack) == 0 {
			if i != 0 {
				return nil, fmt.Errorf("cst: multiple roots")
			}
			t.Root = v
		} else {
			top := &stack[len(stack)-1]
			top.v.addChild(v)
			top.remaining--
			for len(stack) > 0 && stack[len(stack)-1].remaining == 0 {
				stack = stack[:len(stack)-1]
			}
		}
		t.ByGID = append(t.ByGID, v)
		if nchild > 0 {
			stack = append(stack, pending{v, nchild})
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("cst: truncated tree: %d vertices still expect children", len(stack))
	}
	for v, tg := range targets {
		if int(tg) >= len(t.ByGID) {
			return nil, fmt.Errorf("cst: RecCall target %d out of range", tg)
		}
		v.Target = t.ByGID[tg]
	}
	t.Root.buildIndex()
	return t, nil
}

// Hash returns a structural fingerprint. All ranks of an SPMD job share one
// binary, hence one CST; merge refuses trees with different hashes.
func (t *Tree) Hash() uint64 {
	h := fnv.New64a()
	t.Walk(func(v *Vertex, d int) {
		target := int32(-1)
		if v.Target != nil {
			target = v.Target.GID
		}
		fmt.Fprintf(h, "%d/%d/%d/%d/%d/%d/%s/%v/%v;", d, v.Kind, v.Site, v.Arm, v.Op, target, v.Callee, v.Recursive, v.Returns)
	})
	return h.Sum64()
}
