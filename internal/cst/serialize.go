package cst

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"

	"repro/internal/encpool"
	"repro/internal/lang"
	"repro/internal/trace"
)

// The paper stores the program CST "in a compressed text file". This codec
// writes one line per vertex in pre-order; child counts make the structure
// self-delimiting, so decode is a single pass.

const magic = "CYPRESS-CST v1"

// Encode writes t to w in the text format.
func (t *Tree) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s %d %s\n", magic, t.NumVertices(), t.FuncName)
	var err error
	t.Walk(func(v *Vertex, _ int) {
		if err != nil {
			return
		}
		target := int32(-1)
		if v.Target != nil {
			target = v.Target.GID
		}
		rec := 0
		if v.Recursive {
			rec = 1
		}
		ret := 0
		if v.Returns {
			ret = 1
		}
		_, err = fmt.Fprintf(bw, "%d %d %d %d %d %d %d %d %q\n",
			v.GID, v.Kind, v.Site, v.Arm, v.Op, rec, ret, target, v.Callee)
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(bw, "%d\n", len(v.Children))
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// parseInt parses a decimal integer with an optional leading '-' from b.
// Hand-rolled so the decoder's per-vertex hot loop parses fields straight out
// of the read buffer, with no string conversions and none of fmt's scan-state
// machinery (formerly two thirds of a trace decode's allocations).
func parseInt(b []byte) (int64, bool) {
	if len(b) == 0 || len(b) > 19 {
		return 0, false
	}
	neg := false
	i := 0
	if b[0] == '-' {
		if len(b) == 1 {
			return 0, false
		}
		neg = true
		i = 1
	}
	var v int64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}

// readLine returns the next newline-terminated line without the terminator.
// The slice aliases the reader's buffer and is valid until the next read.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	switch {
	case err == nil:
		return line[:len(line)-1], nil
	case err == io.EOF && len(line) > 0:
		return line, nil
	case err == bufio.ErrBufferFull:
		return nil, fmt.Errorf("cst: line too long")
	default:
		return nil, err
	}
}

// Decode reads a tree written by Encode. The parser is hand-rolled over the
// line format and builds all vertices in one slab: decoding is part of every
// downstream consumer's open path (replay, prediction, the bench harness),
// so it stays allocation-lean.
func Decode(r io.Reader) (*Tree, error) {
	br := encpool.GetBufioReader(r)
	defer encpool.PutBufioReader(br)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("cst: reading header: %w", err)
	}
	if !strings.HasPrefix(header, magic) {
		return nil, fmt.Errorf("cst: bad magic %q", strings.TrimSpace(header))
	}
	fields := strings.Fields(header[len(magic):])
	if len(fields) != 2 {
		return nil, fmt.Errorf("cst: bad header %q", strings.TrimSpace(header))
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil {
		return nil, fmt.Errorf("cst: bad header %q: %w", strings.TrimSpace(header), err)
	}
	fn := fields[1]
	if n < 1 || n > 1<<24 {
		return nil, fmt.Errorf("cst: implausible vertex count %d", n)
	}
	verts := make([]Vertex, n)
	t := &Tree{FuncName: fn, ByGID: make([]*Vertex, 0, n)}
	type pending struct {
		v         *Vertex
		remaining int
	}
	var stack []pending
	var targets map[*Vertex]int32
	for i := 0; i < n; i++ {
		line, err := readLine(br)
		if err != nil {
			return nil, fmt.Errorf("cst: vertex %d: %w", i, err)
		}
		// Eight space-separated integers, then the %q-quoted callee.
		var nums [8]int64
		for j := range nums {
			sp := bytes.IndexByte(line, ' ')
			if sp < 0 {
				return nil, fmt.Errorf("cst: vertex %d: short line", i)
			}
			v, ok := parseInt(line[:sp])
			if !ok {
				return nil, fmt.Errorf("cst: vertex %d: bad field %q", i, line[:sp])
			}
			nums[j] = v
			line = line[sp+1:]
		}
		callee := ""
		if !bytes.Equal(line, quotedEmpty) {
			if callee, err = strconv.Unquote(string(line)); err != nil {
				return nil, fmt.Errorf("cst: vertex %d: bad callee %q: %w", i, line, err)
			}
		}
		cline, err := readLine(br)
		if err != nil {
			return nil, fmt.Errorf("cst: vertex %d child count: %w", i, err)
		}
		nc, ok := parseInt(cline)
		if !ok || nc < 0 {
			return nil, fmt.Errorf("cst: vertex %d: bad child count %q", i, cline)
		}
		nchild := int(nc)
		gid, kind, site, arm := nums[0], nums[1], nums[2], nums[3]
		op, rec, ret, target := nums[4], nums[5], nums[6], nums[7]
		if gid != int64(i) {
			return nil, fmt.Errorf("cst: vertex %d has GID %d; file not in pre-order", i, gid)
		}
		v := &verts[i]
		*v = Vertex{
			Kind: Kind(kind), GID: int32(gid), Site: lang.NodeID(site), Arm: int8(arm),
			Op: trace.Op(op), Recursive: rec != 0, Returns: ret != 0, Callee: callee,
		}
		if target >= 0 {
			if targets == nil {
				targets = map[*Vertex]int32{}
			}
			targets[v] = int32(target)
		}
		if len(stack) == 0 {
			if i != 0 {
				return nil, fmt.Errorf("cst: multiple roots")
			}
			t.Root = v
		} else {
			top := &stack[len(stack)-1]
			top.v.addChild(v)
			top.remaining--
			for len(stack) > 0 && stack[len(stack)-1].remaining == 0 {
				stack = stack[:len(stack)-1]
			}
		}
		t.ByGID = append(t.ByGID, v)
		if nchild > 0 {
			stack = append(stack, pending{v, nchild})
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("cst: truncated tree: %d vertices still expect children", len(stack))
	}
	for v, tg := range targets {
		if int(tg) >= len(t.ByGID) {
			return nil, fmt.Errorf("cst: RecCall target %d out of range", tg)
		}
		v.Target = t.ByGID[tg]
	}
	if err := t.Root.buildIndexChecked(); err != nil {
		return nil, err
	}
	return t, nil
}

// quotedEmpty is the %q encoding of the empty callee, the overwhelmingly
// common case, matched directly so non-call vertices skip Unquote.
var quotedEmpty = []byte(`""`)

// Hash returns a structural fingerprint. All ranks of an SPMD job share one
// binary, hence one CST; merge refuses trees with different hashes.
func (t *Tree) Hash() uint64 {
	h := fnv.New64a()
	t.Walk(func(v *Vertex, d int) {
		target := int32(-1)
		if v.Target != nil {
			target = v.Target.GID
		}
		fmt.Fprintf(h, "%d/%d/%d/%d/%d/%d/%s/%v/%v;", d, v.Kind, v.Site, v.Arm, v.Op, target, v.Callee, v.Recursive, v.Returns)
	})
	return h.Sum64()
}
