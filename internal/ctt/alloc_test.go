package ctt

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/timestat"
	"repro/internal/trace"
)

// TestEventSteadyStateAllocs pins the allocation-free hot path: once a comm
// leaf's record exists, every further matching event must fold into it
// without touching the heap. The budget is 1 alloc/op to absorb runtime
// noise (GC assists, map growth in unrelated goroutines); the path itself is
// designed for 0 and typically measures 0.
//
// The compressor is driven directly (no simulator) so AllocsPerRun sees only
// Event-path allocations: one loop iteration marker, one comm-site marker,
// one point-to-point event with constant parameters per step.
func TestEventSteadyStateAllocs(t *testing.T) {
	_, tree := compile(t, `
func main() {
	for var i = 0; i < 10; i = i + 1 {
		send(1, 2048, 5);
	}
}`)
	loop := tree.Root.Children[0]
	leaf := findLeaf(tree, trace.OpSend)
	if leaf == nil {
		t.Fatal("no send leaf")
	}
	c := NewCompressor(tree, 0, timestat.ModeMeanStddev)
	c.LoopEnter(int32(loop.Site))

	tmpl := trace.Event{
		Op: trace.OpSend, Peer: 1, Size: 2048, Tag: 5, Comm: 0,
		ReqID: -1, DurationNS: 1500, ComputeNS: 100,
	}
	var evBuf trace.Event // hoisted: a loop-local copy would escape and be counted
	step := func() {
		c.LoopIter(int32(loop.Site))
		c.CommSite(int32(leaf.Site))
		evBuf = tmpl
		c.Event(&evBuf)
	}

	// Warm up: first event creates the record, early iterations settle the
	// stride runs and any one-time growth.
	for i := 0; i < 64; i++ {
		step()
	}
	allocs := testing.AllocsPerRun(500, step)
	if allocs > 1 {
		t.Errorf("steady-state Event path allocates %.1f allocs/op, want <= 1", allocs)
	}
}

// TestEventSteadyStateAllocsObserved re-runs the steady-state Event budget
// with a live metrics sink attached. The observability layer is plain atomic
// counters behind one nil check, so enabling it must not add a single
// allocation to the hot path — the budget is identical to the sink-off test.
func TestEventSteadyStateAllocsObserved(t *testing.T) {
	_, tree := compile(t, `
func main() {
	for var i = 0; i < 10; i = i + 1 {
		send(1, 2048, 5);
	}
}`)
	loop := tree.Root.Children[0]
	leaf := findLeaf(tree, trace.OpSend)
	if leaf == nil {
		t.Fatal("no send leaf")
	}
	c := NewCompressor(tree, 0, timestat.ModeMeanStddev)
	c.SetObs(obs.New())
	c.LoopEnter(int32(loop.Site))

	tmpl := trace.Event{
		Op: trace.OpSend, Peer: 1, Size: 2048, Tag: 5, Comm: 0,
		ReqID: -1, DurationNS: 1500, ComputeNS: 100,
	}
	var evBuf trace.Event
	step := func() {
		c.LoopIter(int32(loop.Site))
		c.CommSite(int32(leaf.Site))
		evBuf = tmpl
		c.Event(&evBuf)
	}
	for i := 0; i < 64; i++ {
		step()
	}
	allocs := testing.AllocsPerRun(500, step)
	if allocs > 1 {
		t.Errorf("observed Event path allocates %.1f allocs/op, want <= 1 (same as sink-off)", allocs)
	}
}

// TestWildcardSteadyStateAllocs covers the other per-event storage path: the
// wildcard-receive cache. Cached events land in recycled slots, so a
// post-warm-up irecv(ANY)+wait cycle must also stay allocation-free.
func TestWildcardSteadyStateAllocs(t *testing.T) {
	_, tree := compile(t, `
func main() {
	for var i = 0; i < 10; i = i + 1 {
		var r = irecv(ANY, 512, 3);
		wait(r);
	}
}`)
	loop := tree.Root.Children[0]
	irecvLeaf := findLeaf(tree, trace.OpIrecv)
	waitLeaf := findLeaf(tree, trace.OpWait)
	if irecvLeaf == nil || waitLeaf == nil {
		t.Fatal("missing leaves")
	}
	c := NewCompressor(tree, 0, timestat.ModeMeanStddev)
	c.LoopEnter(int32(loop.Site))

	nextReq := int32(0)
	var evBuf trace.Event
	reqBuf := make([]int32, 1)
	srcBuf := make([]int32, 1)
	step := func() {
		id := nextReq
		nextReq++
		c.LoopIter(int32(loop.Site))
		c.CommSite(int32(irecvLeaf.Site))
		evBuf = trace.Event{
			Op: trace.OpIrecv, Peer: 2, Size: 512, Tag: 3, Wildcard: true,
			ReqID: id, DurationNS: 10,
		}
		c.Event(&evBuf)
		c.CommSite(int32(waitLeaf.Site))
		reqBuf[0] = id
		srcBuf[0] = 2
		evBuf = trace.Event{
			Op: trace.OpWait, Peer: trace.NoPeer, ReqID: -1,
			Reqs: reqBuf, ReqSrcs: srcBuf, DurationNS: 20,
		}
		c.Event(&evBuf)
	}
	for i := 0; i < 64; i++ {
		step()
	}
	allocs := testing.AllocsPerRun(500, step)
	if allocs > 1 {
		t.Errorf("steady-state wildcard irecv+wait allocates %.1f allocs/op, want <= 1", allocs)
	}
}
