package ctt

// arenaChunk is the allocation granularity of RecordArena.
const arenaChunk = 256

// RecordArena is a chunked allocator for record lists, used by the streaming
// decoder. Unlike the per-vertex recordSlab — which is tuned for unknown
// final sizes during compression — the decoder knows each vertex's record
// count up front, so the arena carves exact-length pointer slices backed by
// shared value chunks: two heap allocations per ~256 records instead of one
// value chunk plus one pointer slice per vertex.
//
// Record pointers remain stable for the lifetime of the arena (chunks are
// never moved), matching the *CommRecord aliasing the rest of the package
// relies on.
type RecordArena struct {
	recs []CommRecord  // current value chunk; len = used, cap = chunk size
	ptrs []*CommRecord // current pointer chunk; carved into returned slices
}

// Alloc returns a length-n list of pointers to n zeroed records. The
// returned slice has capacity n (appending to it never clobbers later
// allocations). Requests larger than the chunk size get a dedicated chunk.
func (a *RecordArena) Alloc(n int) []*CommRecord {
	if n == 0 {
		return nil
	}
	if cap(a.recs)-len(a.recs) < n {
		size := arenaChunk
		if n > size {
			size = n
		}
		a.recs = make([]CommRecord, 0, size)
	}
	if cap(a.ptrs)-len(a.ptrs) < n {
		size := arenaChunk
		if n > size {
			size = n
		}
		a.ptrs = make([]*CommRecord, 0, size)
	}
	rbase, pbase := len(a.recs), len(a.ptrs)
	a.recs = a.recs[:rbase+n]
	a.ptrs = a.ptrs[:pbase+n]
	out := a.ptrs[pbase : pbase+n : pbase+n]
	for i := range out {
		out[i] = &a.recs[rbase+i]
	}
	return out
}
