// Package ctt implements the Compressed Trace Tree and CYPRESS's intra-process
// on-the-fly trace compression (paper Section IV-A).
//
// A Compressor mirrors the static CST: one data slot per CST vertex, plus a
// cursor that always points at the vertex currently being executed, driven by
// the structure markers the instrumented program emits. Each incoming MPI
// event is "filled in" at its leaf and merged with the previous record when
// all parameters except time match. Loop vertices record per-activation
// iteration counts and branch-arm vertices record taken indices, both
// stride-compressed. Request handles of non-blocking operations are mapped to
// their poster's GID so completion records are replayable, and wildcard
// receives are cached until their source is resolved at completion.
package ctt

import (
	"fmt"

	"repro/internal/cst"
	"repro/internal/fp"
	"repro/internal/lang"
	"repro/internal/obs"
	ftrace "repro/internal/obs/trace"
	"repro/internal/stride"
	"repro/internal/timestat"
	"repro/internal/trace"
)

// CommRecord is one run-length record on a comm leaf: Count consecutive
// executions with identical parameters. Ev holds the canonical parameters
// (Peer absolute, Reqs rewritten to poster GIDs, times zeroed); PeerRel holds
// the rank-relative peer encoding used for inter-process merging.
type CommRecord struct {
	Ev      trace.Event
	PeerRel int
	Count   int64
	// Time and Compute are embedded by value: a fresh record costs zero
	// timestat heap allocations (timestat.Make), and records pack densely in
	// the slab chunks below.
	Time timestat.Stat
	// Compute summarizes the sequential computation time preceding each
	// folded event. The paper feeds SIM-MPI a separately-acquired
	// computation time; recording it alongside the communication time keeps
	// replayed traces simulation-ready (cf. Ratn et al. on preserving time).
	Compute timestat.Stat
	// RelEncoded is set by the inter-process merge when ranks were unified
	// under the relative ranking encoding: the record's true peer for rank r
	// is r + PeerRel, and Ev.Peer is no longer meaningful.
	RelEncoded bool
	// RelUnsafe is set by the inter-process merge when ranks were unified
	// under the absolute encoding even though their relative encodings
	// differed: Ev.Peer is the (shared) true peer, and PeerRel is stale — it
	// was computed for whichever rank contributed the record first and is not
	// valid for the group. Such a record must never be unified relatively in
	// a later merge level, or the stale PeerRel would silently misattribute
	// peers (lossy output). RelUnsafe and RelEncoded are mutually exclusive.
	// The flag is not serialized: it is a merge-time invariant, recomputed
	// from scratch on every merge, and decoded trees are never re-merged.
	RelUnsafe bool
	// Peers, when non-nil, means the record's occurrences cycle through
	// several peers (e.g. butterfly exchanges); PeerRel and Ev.Peer are then
	// unused. Peer offsets are rank-relative.
	Peers *PeerPattern
}

// PeerFor returns the record's peer rank from the perspective of rank r.
// For peer-pattern records use PeerForAt with the occurrence index.
func (r *CommRecord) PeerFor(rank int) int {
	if r.Peers != nil {
		return rank + int(r.Peers.At(0))
	}
	if r.RelEncoded {
		return rank + r.PeerRel
	}
	return r.Ev.Peer
}

// PeerForAt returns the peer of the record's k-th occurrence (0-based) from
// the perspective of rank r.
func (r *CommRecord) PeerForAt(rank int, k int64) int {
	if r.Peers != nil {
		return rank + int(r.Peers.At(k))
	}
	return r.PeerFor(rank)
}

// SizeBytes estimates the serialized footprint of the record.
func (r *CommRecord) SizeBytes() int64 {
	n := int64(2 + 4 + 4 + 4 + 2 + 4) // op, size, peer, tag, comm, count (varints, upper bound)
	n += int64(4 * len(r.Ev.Reqs))
	n += r.Time.SizeBytes()
	n += 16 // compute-time mean and count (varints, upper bound)
	if r.Peers != nil {
		n += r.Peers.SizeBytes()
	}
	return n
}

// VData is the runtime data of one CTT vertex.
type VData struct {
	// Records is the run-length event list for comm leaves (and for the
	// root, which holds the MPI_Init and MPI_Finalize events).
	Records []*CommRecord
	// Counts holds per-activation iteration counts for loop vertices and
	// recursion depths for recursive (pseudo-loop) call vertices.
	Counts stride.Vector
	// Taken holds, for branch-arm vertices, the branch-site reach indices at
	// which this arm was taken.
	Taken stride.Set
	// Cycles marks repeating record blocks (see Cycle).
	Cycles []Cycle

	// open is the in-progress activation's iteration count.
	open int64
	// cyc tracks in-progress record-cycle folding.
	cyc cycleState
	// reach maps branch sites to their reach counters (stored on the parent
	// vertex of the arms). Dropped after Finish; replay recomputes them.
	reach map[lang.NodeID]int64
	// slab backs the records pointed at by Records: records are carved out
	// of chunked arrays instead of being allocated one by one, so appending
	// a record costs one heap allocation per chunk instead of three per
	// record (record + two stats) as the pointer-per-record layout did.
	slab recordSlab
	// fpc memoizes FingerprintRel (see FingerprintRelCached). Valid only
	// while fpcOK; the merge invalidates it on mutations that change the
	// fingerprint (RelUnsafe poisoning).
	fpc   fp.Hash
	fpcOK bool
}

// recordChunkMax caps slab chunk growth.
const recordChunkMax = 256

// recordSlab is a per-vertex chunked arena for CommRecords. Chunks have
// fixed capacity, so record pointers stay stable as the slab grows; chunk
// sizes grow geometrically (2, 8, 32, 128, 256, 256, ...) so one-record
// leaves — the common case — pay for two slots, while hot leaves amortize
// allocation across hundreds of records.
type recordSlab struct {
	chunks [][]CommRecord
}

func (s *recordSlab) alloc() *CommRecord {
	k := len(s.chunks)
	if k == 0 || len(s.chunks[k-1]) == cap(s.chunks[k-1]) {
		size := 2 << uint(2*k) // 2, 8, 32, 128, then capped
		if size > recordChunkMax {
			size = recordChunkMax
		}
		s.chunks = append(s.chunks, make([]CommRecord, 0, size))
		k++
	}
	c := &s.chunks[k-1]
	*c = append(*c, CommRecord{})
	return &(*c)[len(*c)-1]
}

// NewRecord carves a zeroed record out of the vertex's slab and appends it
// to Records. Callers fill in the fields afterwards.
func (d *VData) NewRecord() *CommRecord {
	r := d.slab.alloc()
	d.Records = append(d.Records, r)
	return r
}

// Executed reports whether the vertex holds any dynamic data.
func (d *VData) Executed() bool {
	return len(d.Records) != 0 || d.Counts.Len() != 0 || d.Taken.Len() != 0
}

// SizeBytes estimates the serialized footprint of the vertex data.
func (d *VData) SizeBytes() int64 {
	var n int64
	for _, r := range d.Records {
		n += r.SizeBytes()
	}
	n += d.Counts.SizeBytes()
	n += d.Taken.SizeBytes()
	n += 24 * int64(len(d.Cycles))
	return n
}

// RankCTT is a finished per-rank compressed trace tree, ready for
// inter-process merging or replay.
type RankCTT struct {
	Rank     int
	Tree     *cst.Tree
	TreeHash uint64
	// Data is indexed by CST vertex GID.
	Data []VData
	// EventCount is the number of MPI events the rank produced (for
	// compression-ratio accounting).
	EventCount int64
	// Executed counts vertices holding dynamic data, precomputed at Finish
	// so the inter-process merge can size its slabs without rescanning.
	Executed int
	// span memoizes SpanRel (valid while spanOK).
	span   fp.Hash
	spanOK bool
}

// SizeBytes estimates the serialized footprint of the whole rank CTT
// (excluding the shared CST, which is stored once per job).
func (c *RankCTT) SizeBytes() int64 {
	var n int64
	for i := range c.Data {
		n += c.Data[i].SizeBytes()
	}
	return n
}

type frameKind uint8

const (
	fSkip frameKind = iota
	fLoop
	fBranch
	fCall
	fRecCall
)

type frame struct {
	kind    frameKind
	prev    *cst.Vertex
	entered *cst.Vertex
	// savedOpen preserves the entered vertex's in-progress activation count:
	// recursion can re-enter a loop vertex while an outer activation of the
	// same vertex is still open.
	savedOpen int64
}

// Compressor is the per-rank intra-process compression sink.
type Compressor struct {
	tree   *cst.Tree
	rank   int
	mode   timestat.Mode
	window int

	data   []VData
	cursor *cst.Vertex
	stack  []frame
	skip   int

	site int32 // pending comm site from CommSite
	// reqs maps outstanding request ids to poster GIDs and cached wildcard
	// receives (ring-indexed dense table; see reqtable.go).
	reqs reqTable
	// reqScratch is the reusable buffer resolveCompletion rewrites request
	// ids into; records that keep a Reqs slice copy it out on the (rare)
	// new-record path, so the steady state is allocation-free.
	reqScratch []int32

	events   int64
	finished bool

	// obs is the attached metrics sink; nil (the default) disables all
	// observation at the cost of one predictable branch per counter site.
	// Per-event tallies accumulate in tal (plain adds, no atomics) and flush
	// to the sink once, at Finish — the event hot path never pays an atomic.
	obs *obs.Sink
	tal compTally
}

// compTally is the compressor's local, single-goroutine event accounting.
// Fields mirror the obs.Comp* counters; Finish folds them into the shared
// sink in one batch so the per-event cost of observation is a register
// increment instead of an atomic RMW.
type compTally struct {
	mergeHits, newRecords    int64
	patternFolds, cycleFolds int64
	wildCached, wildResolved int64
	reqPeak, wildPeak        int64
	reqOcc, wildDepth        obs.LocalHist
}

// NewCompressor returns a compression sink for one rank. All ranks must share
// the same tree (SPMD single-binary assumption).
func NewCompressor(tree *cst.Tree, rank int, mode timestat.Mode) *Compressor {
	return &Compressor{
		tree:   tree,
		rank:   rank,
		mode:   mode,
		window: 1,
		data:   make([]VData, tree.NumVertices()),
		cursor: tree.Root,
		site:   -1,
	}
}

// SetWindow widens the per-leaf record matching window (paper Section IV-A:
// "Potentially one can set a larger sliding window for each leaf vertex, to
// find more similar communication patterns. There is clearly a trade-off
// between cost and compression effectiveness."). Windows larger than 1 merge
// an incoming event into any of the last k records, which improves
// compression for alternating parameters but makes the replayed ordering of
// those records approximate. The default window of 1 is lossless.
func (c *Compressor) SetWindow(k int) {
	if k < 1 {
		k = 1
	}
	c.window = k
}

// SetObs attaches a metrics sink. A nil sink (the default) disables
// observation; the hot paths then pay a single nil check per site and keep
// their allocation-free budgets. Attach before tracing starts.
func (c *Compressor) SetObs(s *obs.Sink) { c.obs = s }

func (c *Compressor) d(v *cst.Vertex) *VData { return &c.data[v.GID] }

// LoopEnter implements trace.Sink.
func (c *Compressor) LoopEnter(site int32) {
	if c.skip > 0 {
		c.skip++
		c.stack = append(c.stack, frame{kind: fSkip})
		return
	}
	child := c.cursor.Child(lang.NodeID(site), cst.NoArm)
	if child == nil {
		c.skip++
		c.stack = append(c.stack, frame{kind: fSkip})
		return
	}
	d := c.d(child)
	c.stack = append(c.stack, frame{kind: fLoop, prev: c.cursor, entered: child, savedOpen: d.open})
	c.cursor = child
	d.open = 0
}

// LoopIter implements trace.Sink.
func (c *Compressor) LoopIter(site int32) {
	if c.skip > 0 {
		return
	}
	if c.cursor.Kind != cst.KindLoop || c.cursor.Site != lang.NodeID(site) {
		panic(fmt.Sprintf("ctt: loop iteration marker for site %d at vertex %d (%v)",
			site, c.cursor.GID, c.cursor.Kind))
	}
	c.d(c.cursor).open++
}

// BranchEnter implements trace.Sink.
func (c *Compressor) BranchEnter(site int32, arm int8) {
	if c.skip > 0 {
		c.skip++
		c.stack = append(c.stack, frame{kind: fSkip})
		return
	}
	s := lang.NodeID(site)
	armV := c.cursor.Child(s, arm)
	other := c.cursor.Child(s, 1-arm)
	if armV == nil && other == nil {
		// Whole branch pruned: no reach bookkeeping needed.
		c.skip++
		c.stack = append(c.stack, frame{kind: fSkip})
		return
	}
	pd := c.d(c.cursor)
	if pd.reach == nil {
		pd.reach = map[lang.NodeID]int64{}
	}
	idx := pd.reach[s]
	pd.reach[s] = idx + 1
	if armV == nil {
		// This arm was pruned (comm-free); the reach counter still advanced.
		c.skip++
		c.stack = append(c.stack, frame{kind: fSkip})
		return
	}
	c.d(armV).Taken.Add(idx)
	c.stack = append(c.stack, frame{kind: fBranch, prev: c.cursor, entered: armV})
	c.cursor = armV
}

// BranchSkip implements trace.Sink.
func (c *Compressor) BranchSkip(site int32) {
	if c.skip > 0 {
		return
	}
	s := lang.NodeID(site)
	if c.cursor.Child(s, 0) == nil && c.cursor.Child(s, 1) == nil {
		return
	}
	pd := c.d(c.cursor)
	if pd.reach == nil {
		pd.reach = map[lang.NodeID]int64{}
	}
	pd.reach[s]++
}

// CallEnter implements trace.Sink.
func (c *Compressor) CallEnter(site int32) {
	if c.skip > 0 {
		c.skip++
		c.stack = append(c.stack, frame{kind: fSkip})
		return
	}
	child := c.cursor.Child(lang.NodeID(site), cst.NoArm)
	if child == nil {
		c.skip++
		c.stack = append(c.stack, frame{kind: fSkip})
		return
	}
	switch child.Kind {
	case cst.KindCall:
		c.stack = append(c.stack, frame{kind: fCall, prev: c.cursor, entered: child})
		c.cursor = child
		if child.Recursive {
			// Pseudo-loop activation: recursion depth starts at one level.
			c.d(child).open = 1
		}
	case cst.KindRecCall:
		// Loop back: one more recursion level on the matching ancestor.
		c.d(child.Target).open++
		c.stack = append(c.stack, frame{kind: fRecCall, prev: c.cursor, entered: child})
		c.cursor = child.Target
	default:
		panic(fmt.Sprintf("ctt: call marker resolved to %v vertex %d", child.Kind, child.GID))
	}
}

// StructExit implements trace.Sink.
func (c *Compressor) StructExit() {
	if len(c.stack) == 0 {
		panic("ctt: unbalanced structure exit")
	}
	f := c.stack[len(c.stack)-1]
	c.stack = c.stack[:len(c.stack)-1]
	switch f.kind {
	case fSkip:
		c.skip--
	case fLoop:
		d := c.d(f.entered)
		d.Counts.Append(d.open)
		d.open = f.savedOpen
		c.cursor = f.prev
	case fCall:
		if f.entered.Recursive {
			d := c.d(f.entered)
			d.Counts.Append(d.open)
		}
		c.cursor = f.prev
	default:
		c.cursor = f.prev
	}
}

// CommSite implements trace.Sink.
func (c *Compressor) CommSite(site int32) { c.site = site }

// Event implements trace.Sink.
func (c *Compressor) Event(e *trace.Event) {
	c.events++
	if c.skip > 0 {
		panic(fmt.Sprintf("ctt: event %v inside pruned region", e.Op))
	}
	switch e.Op {
	case trace.OpInit, trace.OpFinalize:
		// No call site: these bracket the program and live on the root.
		c.record(c.tree.Root, e)
		return
	}
	if c.site < 0 {
		panic(fmt.Sprintf("ctt: event %v without a preceding CommSite marker", e.Op))
	}
	leaf := c.cursor.Child(lang.NodeID(c.site), cst.NoArm)
	c.site = -1
	if leaf == nil || leaf.Kind != cst.KindComm {
		panic(fmt.Sprintf("ctt: no comm leaf for site under vertex %d (op %v)", c.cursor.GID, e.Op))
	}
	ev := *e
	ev.GID = leaf.GID

	if ev.Op.IsNonBlocking() {
		c.reqs.put(ev.ReqID, leaf.GID)
		if c.obs != nil {
			occ := int64(c.reqs.live)
			c.tal.reqOcc.Observe(occ)
			if occ > c.tal.reqPeak {
				c.tal.reqPeak = occ
			}
		}
		if ev.Op == trace.OpIrecv && ev.Wildcard {
			// Paper Section IV-A, non-deterministic events: cache wildcard
			// receives; compression is delayed until the checking function
			// resolves the source. The cache copies the event into recycled
			// slot storage, so repeated wildcard receives do not allocate.
			c.reqs.putWild(ev.ReqID, &ev)
			if c.obs != nil {
				c.tal.wildCached++
				depth := int64(c.reqs.wildLive)
				c.tal.wildDepth.Observe(depth)
				if depth > c.tal.wildPeak {
					c.tal.wildPeak = depth
				}
			}
			return
		}
	}
	if ev.Op.IsCompletion() {
		c.resolveCompletion(&ev)
	}
	c.record(leaf, &ev)
}

// resolveCompletion rewrites request ids to poster GIDs and flushes any
// cached wildcard receives whose sources this completion resolved. The
// rewritten ids land in a reusable scratch buffer; record() copies them out
// only when a new record actually retains them.
func (c *Compressor) resolveCompletion(ev *trace.Event) {
	if cap(c.reqScratch) < len(ev.Reqs) {
		c.reqScratch = make([]int32, len(ev.Reqs), 2*len(ev.Reqs))
	}
	reqs := c.reqScratch[:len(ev.Reqs)]
	for i, id := range ev.Reqs {
		gid, ok := c.reqs.get(id)
		if !ok {
			panic(fmt.Sprintf("ctt: completion of unknown request %d", id))
		}
		reqs[i] = gid
		if cached, isWild := c.reqs.takeWild(id); isWild {
			if ev.ReqSrcs == nil {
				panic("ctt: wildcard completion without resolved sources")
			}
			cached.Peer = int(ev.ReqSrcs[i])
			leaf := c.tree.ByGID[cached.GID]
			c.tal.wildResolved++
			rec.Instant(ftrace.CatCompress, ftrace.NameWildcard,
				int32(c.rank), int64(cached.GID), int64(c.reqs.wildLive))
			c.record(leaf, &cached)
		}
		c.reqs.del(id)
	}
	ev.Reqs = reqs
	// Resolved sources live on the receive records; dropping them from the
	// completion record keeps completions identical across iterations.
	ev.ReqSrcs = nil
}

// record merges ev into the last record of v or appends a new one.
func (c *Compressor) record(v *cst.Vertex, ev *trace.Event) {
	d := c.d(v)
	dur := ev.DurationNS
	canon := *ev
	canon.DurationNS = 0
	canon.ComputeNS = 0
	canon.ReqID = -1
	comp := ev.ComputeNS
	// Open record cycles consume matching events first; a mismatch closes
	// the cycle and falls through to the ordinary paths.
	if d.cyc.open != nil && d.tryFoldCycle(&d.cyc, &canon, dur, comp) {
		c.tal.cycleFolds++
		return
	}
	n := len(d.Records)
	lo := n - c.window
	if lo < d.cyc.frozen {
		lo = d.cyc.frozen
	}
	if lo < 0 {
		lo = 0
	}
	for i := n - 1; i >= lo; i-- {
		cand := d.Records[i]
		if cand.Peers == nil && cand.Ev.SameParams(&canon) {
			cand.Count++
			cand.Time.Add(dur)
			cand.Compute.Add(comp)
			c.tal.mergeHits++
			return
		}
	}
	rel := 0
	if canon.Op.IsPointToPoint() {
		rel = canon.Peer - c.rank
	}
	// Peer-pattern folding: a point-to-point record whose parameters match
	// except for the partner extends the last record's peer cycle instead
	// of opening a new record (CG butterflies, MG level neighbors).
	if n > d.cyc.frozen && n > 0 && canon.Op.IsPointToPoint() {
		last := d.Records[n-1]
		if last.Ev.Op.IsPointToPoint() && last.Ev.SameParamsExceptPeer(&canon) {
			if last.Peers == nil {
				last.Peers = newPeerPattern(int32(last.PeerRel), last.Count)
			}
			if last.Peers != nil {
				last.Peers.Append(int32(rel))
				last.Count++
				last.Time.Add(dur)
				last.Compute.Add(comp)
				c.tal.patternFolds++
				return
			}
		}
	}
	rec := d.NewRecord()
	rec.Ev = canon
	if len(canon.Reqs) > 0 {
		// canon.Reqs may alias the compressor's completion scratch buffer;
		// a retained record must own its copy. New records are rare (cold
		// path), so this copy does not affect steady-state allocation.
		rec.Ev.Reqs = append([]int32(nil), canon.Reqs...)
	}
	rec.PeerRel = rel
	rec.Count = 1
	rec.Time = timestat.Make(c.mode)
	rec.Time.Add(dur)
	rec.Compute = timestat.Make(timestat.ModeMeanStddev)
	rec.Compute.Add(comp)
	c.tal.newRecords++
	d.tryOpenCycle(&d.cyc)
}

// Finalize implements trace.Sink.
func (c *Compressor) Finalize() {
	if len(c.stack) != 0 || c.skip != 0 {
		panic(fmt.Sprintf("ctt: finalize with %d open structures (skip=%d)", len(c.stack), c.skip))
	}
	if c.reqs.wildLive != 0 {
		panic(fmt.Sprintf("ctt: finalize with %d unresolved wildcard receives", c.reqs.wildLive))
	}
	c.finished = true
}

// Finish extracts the rank's compressed trace tree. It must be called after
// the run completes (Finalize observed).
func (c *Compressor) Finish() *RankCTT {
	if !c.finished {
		panic("ctt: Finish before Finalize")
	}
	sp := c.obs.Start(obs.StageFinish)
	defer sp.End()
	tsp := rec.Begin(ftrace.CatCompress, ftrace.NameFinish, int32(c.rank))
	exec := 0
	for i := range c.data {
		d := &c.data[i]
		d.reach = nil
		if d.cyc.open != nil {
			d.closeCycle(&d.cyc)
		}
		for _, r := range d.Records {
			if r.Peers != nil {
				r.Peers.Compress()
			}
		}
		if d.Executed() {
			exec++
		}
		if c.obs.Enabled() {
			c.strideStats(&d.Counts)
			c.strideStats(&d.Taken.Vector)
		}
	}
	c.flushTally()
	tsp.End(c.events, int64(exec))
	return &RankCTT{
		Rank:       c.rank,
		Tree:       c.tree,
		TreeHash:   c.tree.Hash(),
		Data:       c.data,
		EventCount: c.events,
		Executed:   exec,
	}
}

// flushTally folds the per-event tallies into the shared sink in one batch
// of atomic adds. Called once, at Finish; until then the compressor's event
// counters are local to the rank (the -debug.addr live view therefore shows
// compressor counters per finished rank, while merge/encode/replay counters
// stream in continuously).
func (c *Compressor) flushTally() {
	if c.obs == nil {
		return
	}
	c.obs.Add(obs.CompEvents, c.events)
	c.obs.Add(obs.CompMergeHits, c.tal.mergeHits)
	c.obs.Add(obs.CompNewRecords, c.tal.newRecords)
	c.obs.Add(obs.CompPeerPatternFolds, c.tal.patternFolds)
	c.obs.Add(obs.CompCycleFolds, c.tal.cycleFolds)
	c.obs.Add(obs.CompWildcardCached, c.tal.wildCached)
	c.obs.Add(obs.CompWildcardResolved, c.tal.wildResolved)
	c.obs.SetMax(obs.CompReqPeak, c.tal.reqPeak)
	c.obs.SetMax(obs.CompWildPeak, c.tal.wildPeak)
	c.obs.FlushHist(obs.HistReqOccupancy, &c.tal.reqOcc)
	c.obs.FlushHist(obs.HistWildcardDepth, &c.tal.wildDepth)
	c.tal = compTally{}
}

// strideStats folds one finished stride vector into the sink's compression
// accounting: values stored, runs holding them, and the bytes the run
// encoding saved over (or wasted against) the raw 8-bytes-per-value layout.
// Called only at Finish, off every hot path, and only with a sink attached.
func (c *Compressor) strideStats(v *stride.Vector) {
	n := v.Len()
	if n == 0 {
		return
	}
	c.obs.Add(obs.StrideValues, n)
	c.obs.Add(obs.StrideRuns, int64(v.RunCount()))
	if saved := v.RawBytes() - v.SizeBytes(); saved > 0 {
		c.obs.Add(obs.StrideBytesSaved, saved)
	} else {
		c.obs.Inc(obs.StrideIncompressible)
	}
}

// MemoryBytes estimates the live memory the compressor holds, for the
// intra-process overhead experiment (paper Figure 16's memory curves).
func (c *Compressor) MemoryBytes() int64 {
	var n int64 = int64(len(c.data)) * 64 // VData headers
	for i := range c.data {
		n += c.data[i].SizeBytes()
		n += int64(len(c.data[i].reach)) * 16
	}
	n += int64(len(c.stack)) * 24
	n += c.reqs.memoryBytes()
	n += int64(cap(c.reqScratch)) * 4
	return n
}
