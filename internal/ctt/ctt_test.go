package ctt

import (
	"testing"

	"repro/internal/cst"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/mpisim"
	"repro/internal/timestat"
	"repro/internal/trace"
)

// compile builds the CST for src.
func compile(t testing.TB, src string) (*lang.Program, *cst.Tree) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := lang.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	irProg, err := ir.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	tree, err := cst.Build(irProg)
	if err != nil {
		t.Fatalf("cst: %v", err)
	}
	return prog, tree
}

// run executes src on n ranks under CYPRESS compression and returns the
// per-rank CTTs.
func run(t testing.TB, src string, n int) (*cst.Tree, []*RankCTT) {
	t.Helper()
	prog, tree := compile(t, src)
	comps := make([]*Compressor, n)
	sinks := make([]trace.Sink, n)
	for i := range comps {
		comps[i] = NewCompressor(tree, i, timestat.ModeMeanStddev)
		sinks[i] = comps[i]
	}
	_, err := mpisim.Run(n, mpisim.DefaultParams(), sinks, func(r *mpisim.Rank) {
		interp.Execute(prog, r)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	ctts := make([]*RankCTT, n)
	for i, c := range comps {
		ctts[i] = c.Finish()
	}
	return tree, ctts
}

// findLeaf returns the first comm leaf with the given op.
func findLeaf(tree *cst.Tree, op trace.Op) *cst.Vertex {
	var out *cst.Vertex
	tree.Walk(func(v *cst.Vertex, _ int) {
		if out == nil && v.Kind == cst.KindComm && v.Op == op {
			out = v
		}
	})
	return out
}

func TestRepeatedIdenticalOpsMergeToOneRecord(t *testing.T) {
	tree, ctts := run(t, `
func main() {
	for var i = 0; i < 100; i = i + 1 {
		bcast(0, 4096);
	}
}`, 2)
	leaf := findLeaf(tree, trace.OpBcast)
	d := ctts[0].Data[leaf.GID]
	if len(d.Records) != 1 {
		t.Fatalf("records = %d, want 1", len(d.Records))
	}
	r := d.Records[0]
	if r.Count != 100 || r.Ev.Size != 4096 || r.Ev.Peer != 0 {
		t.Fatalf("record = %+v", r)
	}
	if r.Time.N != 100 || r.Time.Mean <= 0 {
		t.Fatalf("time stat = %+v", r.Time)
	}
	// Loop vertex has one activation of 100 iterations.
	loop := tree.Root.Children[0]
	ld := ctts[0].Data[loop.GID]
	if ld.Counts.Len() != 1 || ld.Counts.At(0) != 100 {
		t.Fatalf("loop counts = %s", ld.Counts.String())
	}
}

func TestVaryingSizeCreatesRecords(t *testing.T) {
	tree, ctts := run(t, `
func main() {
	for var i = 0; i < 10; i = i + 1 {
		bcast(0, 100 + i);
	}
}`, 1)
	leaf := findLeaf(tree, trace.OpBcast)
	d := ctts[0].Data[leaf.GID]
	if len(d.Records) != 10 {
		t.Fatalf("records = %d, want 10 (sizes all differ)", len(d.Records))
	}
}

func TestPaperFig10NestedLoop(t *testing.T) {
	// for i in 0..k: bcast; for j in 0..i: isend irecv waitall
	const k = 8
	tree, ctts := run(t, `
func main() {
	for var i = 0; i < 8; i = i + 1 {
		bcast(0, 64);
		for var j = 0; j < i; j = j + 1 {
			var r1 = isend((rank + 1) % size, 32, 0);
			var r2 = irecv((rank + size - 1) % size, 32, 0);
			waitall();
			compute(r1 + r2);
		}
	}
}`, 2)
	outer := tree.Root.Children[0]
	var inner *cst.Vertex
	for _, c := range outer.Children {
		if c.Kind == cst.KindLoop {
			inner = c
		}
	}
	od := ctts[0].Data[outer.GID]
	id := ctts[0].Data[inner.GID]
	if od.Counts.String() != "[<8>]" {
		t.Fatalf("outer counts = %s", od.Counts.String())
	}
	// Inner iteration counts 0,1,...,7 compress to a single stride run
	// (paper Figure 10's <0,k-1,1>).
	if id.Counts.String() != "[<0,7,1>]" {
		t.Fatalf("inner counts = %s", id.Counts.String())
	}
	// n = k(k-1)/2 total inner executions on the isend leaf.
	leaf := findLeaf(tree, trace.OpIsend)
	ld := ctts[0].Data[leaf.GID]
	var total int64
	for _, r := range ld.Records {
		total += r.Count
	}
	if total != k*(k-1)/2 {
		t.Fatalf("isend executions = %d, want %d", total, k*(k-1)/2)
	}
	if len(ld.Records) != 1 {
		t.Fatalf("isend records = %d, want 1", len(ld.Records))
	}
}

func TestPaperFig11BranchAlternation(t *testing.T) {
	tree, ctts := run(t, `
func main() {
	for var i = 0; i < 10; i = i + 1 {
		if i % 2 == 0 {
			var r = isend((rank + 1) % size, 16, 0);
			compute(r);
		} else {
			var r = irecv((rank + size - 1) % size, 16, 0);
			compute(r);
		}
		waitall();
	}
}`, 2)
	loop := tree.Root.Children[0]
	arm0 := loop.Children[0]
	arm1 := loop.Children[1]
	d0 := ctts[0].Data[arm0.GID]
	d1 := ctts[0].Data[arm1.GID]
	if d0.Taken.String() != "[<0,8,2>]" {
		t.Fatalf("arm0 taken = %s, want [<0,8,2>]", d0.Taken.String())
	}
	if d1.Taken.String() != "[<1,9,2>]" {
		t.Fatalf("arm1 taken = %s, want [<1,9,2>]", d1.Taken.String())
	}
	// Waitall executed 10 times; its request lists alternate between
	// {isend} and {irecv}. Record-cycle folding collapses the alternation
	// into a 2-record block repeated 5 times.
	wa := findLeaf(tree, trace.OpWaitall)
	wd := ctts[0].Data[wa.GID]
	if len(wd.Records) != 2 {
		t.Fatalf("waitall records = %d, want 2 (cycle-folded)", len(wd.Records))
	}
	if len(wd.Cycles) != 1 || wd.Cycles[0] != (Cycle{Start: 0, Len: 2, Reps: 5}) {
		t.Fatalf("waitall cycles = %+v, want one {0,2,5}", wd.Cycles)
	}
	var total int64
	for _, r := range wd.Records {
		total += r.Count * wd.Cycles[0].Reps
	}
	if total != 10 {
		t.Fatalf("waitall executions = %d", total)
	}
	// Request ids must have been rewritten to the poster leaves' GIDs.
	isendGID := findLeaf(tree, trace.OpIsend).GID
	irecvGID := findLeaf(tree, trace.OpIrecv).GID
	for i, r := range wd.Records {
		want := isendGID
		if i%2 == 1 {
			want = irecvGID
		}
		if len(r.Ev.Reqs) != 1 || r.Ev.Reqs[0] != want {
			t.Fatalf("waitall record %d reqs = %v, want [%d]", i, r.Ev.Reqs, want)
		}
		if r.Time.N != 5 {
			t.Fatalf("waitall record %d time samples = %d, want 5", i, r.Time.N)
		}
	}
}

func TestBranchSkipKeepsReachAligned(t *testing.T) {
	// The branch is taken only on iterations 3,4; skipped otherwise. The
	// taken set must reflect absolute reach indices.
	tree, ctts := run(t, `
func main() {
	for var i = 0; i < 6; i = i + 1 {
		if i >= 3 && i <= 4 {
			allreduce(8);
		}
	}
}`, 1)
	loop := tree.Root.Children[0]
	arm := loop.Children[0]
	d := ctts[0].Data[arm.GID]
	if d.Taken.String() != "[<3,4,1>]" {
		t.Fatalf("taken = %s, want [<3,4,1>]", d.Taken.String())
	}
}

func TestInitFinalizeOnRoot(t *testing.T) {
	tree, ctts := run(t, `func main() { barrier(); }`, 2)
	rd := ctts[0].Data[tree.Root.GID]
	if len(rd.Records) != 2 {
		t.Fatalf("root records = %d, want 2 (init+finalize)", len(rd.Records))
	}
	if rd.Records[0].Ev.Op != trace.OpInit || rd.Records[1].Ev.Op != trace.OpFinalize {
		t.Fatalf("root records = %v, %v", rd.Records[0].Ev.Op, rd.Records[1].Ev.Op)
	}
}

func TestPeerRelativeEncoding(t *testing.T) {
	tree, ctts := run(t, `
func main() {
	if rank < size - 1 { send(rank + 1, 64, 0); }
	if rank > 0 { recv(rank - 1, 64, 0); }
}`, 4)
	sendLeaf := findLeaf(tree, trace.OpSend)
	for rank := 0; rank < 3; rank++ {
		d := ctts[rank].Data[sendLeaf.GID]
		if len(d.Records) != 1 {
			t.Fatalf("rank %d send records = %d", rank, len(d.Records))
		}
		r := d.Records[0]
		if r.PeerRel != 1 {
			t.Fatalf("rank %d PeerRel = %d, want +1", rank, r.PeerRel)
		}
		if r.Ev.Peer != rank+1 {
			t.Fatalf("rank %d absolute peer = %d", rank, r.Ev.Peer)
		}
	}
	// Rank 3 never executes the send arm.
	if len(ctts[3].Data[sendLeaf.GID].Records) != 0 {
		t.Fatal("rank 3 must have no send records")
	}
}

func TestWildcardDelayedCompression(t *testing.T) {
	tree, ctts := run(t, `
func main() {
	if rank == 0 {
		var r1 = irecv(ANY, 8, 0);
		var r2 = irecv(ANY, 8, 0);
		compute(r1 + r2);
		waitall();
	} else {
		send(0, 8, 0);
	}
}`, 3)
	var total int64
	peers := map[int]bool{}
	tree.Walk(func(v *cst.Vertex, _ int) {
		if v.Kind != cst.KindComm || v.Op != trace.OpIrecv {
			return
		}
		for _, r := range ctts[0].Data[v.GID].Records {
			total += r.Count
			peers[r.Ev.Peer] = true
			if !r.Ev.Wildcard {
				t.Fatal("wildcard flag must be preserved on resolved records")
			}
			if r.Ev.Peer == trace.AnySource {
				t.Fatal("wildcard source not resolved")
			}
		}
	})
	if total != 2 {
		t.Fatalf("irecv records total = %d", total)
	}
	if len(peers) != 2 || !peers[1] || !peers[2] {
		t.Fatalf("resolved peers = %v", peers)
	}
	// The waitall record must not retain per-rank resolved sources.
	wa := findLeaf(tree, trace.OpWaitall)
	for _, r := range ctts[0].Data[wa.GID].Records {
		if r.Ev.ReqSrcs != nil {
			t.Fatal("completion record kept ReqSrcs")
		}
	}
}

func TestRecursionPseudoLoopCounts(t *testing.T) {
	tree, ctts := run(t, `
func main() {
	f(4);
	f(2);
}
func f(n) {
	if n == 0 { return; }
	bcast(0, 8);
	f(n - 1);
}`, 1)
	// Two pseudo-loop call vertices (distinct call sites): each activated
	// once, with depths 5 and 3 (levels include the n==0 base call).
	var callVs []*cst.Vertex
	tree.Walk(func(v *cst.Vertex, _ int) {
		if v.Kind == cst.KindCall && v.Recursive {
			callVs = append(callVs, v)
		}
	})
	if len(callVs) != 2 {
		t.Fatalf("recursive call vertices = %d\n%s", len(callVs), tree.Dump())
	}
	d0 := ctts[0].Data[callVs[0].GID]
	d1 := ctts[0].Data[callVs[1].GID]
	if d0.Counts.String() != "[<5>]" {
		t.Fatalf("f(4) levels = %s, want [<5>]", d0.Counts.String())
	}
	if d1.Counts.String() != "[<3>]" {
		t.Fatalf("f(2) levels = %s, want [<3>]", d1.Counts.String())
	}
	// Total bcasts recorded: 4 + 2.
	leaf := findLeaf(tree, trace.OpBcast)
	var total int64
	for _, v := range tree.ByGID {
		if v.Kind == cst.KindComm && v.Op == trace.OpBcast {
			for _, r := range ctts[0].Data[v.GID].Records {
				total += r.Count
			}
		}
	}
	_ = leaf
	if total != 6 {
		t.Fatalf("bcast executions = %d, want 6", total)
	}
}

func TestCompressionRatioJacobi(t *testing.T) {
	// 200 iterations of Jacobi: the CTT must stay tiny while the raw trace
	// grows linearly.
	_, ctts := run(t, `
func main() {
	for var k = 0; k < 200; k = k + 1 {
		if rank < size - 1 { send(rank + 1, 8000, 0); }
		if rank > 0 { recv(rank - 1, 8000, 0); }
		if rank > 0 { send(rank - 1, 8000, 0); }
		if rank < size - 1 { recv(rank + 1, 8000, 0); }
	}
}`, 8)
	c := ctts[3] // interior rank
	if c.EventCount != 2+200*4 {
		t.Fatalf("event count = %d", c.EventCount)
	}
	size := c.SizeBytes()
	rawEstimate := c.EventCount * 20 // ~20B/event raw
	if size >= rawEstimate/10 {
		t.Fatalf("CTT size %dB not ≪ raw %dB", size, rawEstimate)
	}
}

func TestFinishBeforeFinalizePanics(t *testing.T) {
	_, tree := compile(t, `func main() { barrier(); }`)
	c := NewCompressor(tree, 0, timestat.ModeMeanStddev)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Finish()
}

func TestHistogramMode(t *testing.T) {
	prog, tree := compile(t, `
func main() {
	for var i = 0; i < 50; i = i + 1 { allreduce(8); }
}`)
	comp := NewCompressor(tree, 0, timestat.ModeHistogram)
	_, err := mpisim.Run(1, mpisim.DefaultParams(), []trace.Sink{comp}, func(r *mpisim.Rank) {
		interp.Execute(prog, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	c := comp.Finish()
	leaf := findLeaf(tree, trace.OpAllreduce)
	rec := c.Data[leaf.GID].Records[0]
	if rec.Time.Hist == nil {
		t.Fatal("histogram mode lost the histogram")
	}
	var histN uint32
	for _, h := range rec.Time.Hist {
		histN += h
	}
	if histN != 50 {
		t.Fatalf("histogram total = %d", histN)
	}
}

func TestMemoryBytesGrowsWithRecords(t *testing.T) {
	prog, tree := compile(t, `
func main() {
	for var i = 0; i < 64; i = i + 1 { bcast(0, 100 + i); }
}`)
	comp := NewCompressor(tree, 0, timestat.ModeMeanStddev)
	before := comp.MemoryBytes()
	_, err := mpisim.Run(1, mpisim.DefaultParams(), []trace.Sink{comp}, func(r *mpisim.Rank) {
		interp.Execute(prog, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	if comp.MemoryBytes() <= before {
		t.Fatal("memory accounting did not grow")
	}
}

func TestEarlyReturnArmRecorded(t *testing.T) {
	// The return arm is comm-free but must survive pruning (Returns flag)
	// and record its taken indices for replay alignment.
	tree, ctts := run(t, `
func main() {
	for var i = 0; i < 5; i = i + 1 { f(i); }
}
func f(n) {
	if n >= 3 { return; }
	barrier();
}`, 2)
	var retArm *cst.Vertex
	tree.Walk(func(v *cst.Vertex, _ int) {
		if v.Kind == cst.KindBranch && v.Returns {
			retArm = v
		}
	})
	if retArm == nil {
		t.Fatalf("return arm pruned:\n%s", tree.Dump())
	}
	d := ctts[0].Data[retArm.GID]
	if d.Taken.String() != "[<3,4,1>]" {
		t.Fatalf("return arm taken = %s", d.Taken.String())
	}
}

func BenchmarkCompressJacobiEvent(b *testing.B) {
	src := `
func main() {
	for var k = 0; k < 500; k = k + 1 {
		if rank < size - 1 { send(rank + 1, 8000, 0); }
		if rank > 0 { recv(rank - 1, 8000, 0); }
		if rank > 0 { send(rank - 1, 8000, 0); }
		if rank < size - 1 { recv(rank + 1, 8000, 0); }
	}
}`
	prog, tree := compile(b, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comps := make([]trace.Sink, 4)
		for j := range comps {
			comps[j] = NewCompressor(tree, j, timestat.ModeMeanStddev)
		}
		if _, err := mpisim.Run(4, mpisim.Params{}, comps, func(r *mpisim.Rank) {
			interp.Execute(prog, r)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSlidingWindowMergesAlternatingParams(t *testing.T) {
	// Window 1 keeps SP-style alternating sizes as separate records (further
	// folded by record cycles); a wider window merges across the alternation
	// at the cost of exact ordering — the paper's stated tradeoff.
	srcAlt := `
func main() {
	for var i = 0; i < 30; i = i + 1 {
		bcast(0, 100 + (i % 2) * 100);
	}
}`
	progAlt, treeAlt := compile(t, srcAlt)
	countAlt := func(window int) int {
		comp := NewCompressor(treeAlt, 0, timestat.ModeMeanStddev)
		comp.SetWindow(window)
		if _, err := mpisim.Run(1, mpisim.Params{}, []trace.Sink{comp}, func(r *mpisim.Rank) {
			interp.Execute(progAlt, r)
		}); err != nil {
			t.Fatal(err)
		}
		c := comp.Finish()
		leaf := findLeaf(treeAlt, trace.OpBcast)
		return len(c.Data[leaf.GID].Records)
	}
	w1, w4 := countAlt(1), countAlt(4)
	if w4 > w1 {
		t.Fatalf("wider window must not increase records: w1=%d w4=%d", w1, w4)
	}
	if w4 != 2 {
		t.Fatalf("window 4 should merge the alternation into 2 records, got %d", w4)
	}
}

func TestDeepRecursionGuard(t *testing.T) {
	prog, tree := compile(t, `
func main() { f(100000); }
func f(n) { if n > 0 { bcast(0, 8); f(n - 1); } }`)
	comp := NewCompressor(tree, 0, timestat.ModeMeanStddev)
	_, err := mpisim.Run(1, mpisim.Params{}, []trace.Sink{comp}, func(r *mpisim.Rank) {
		interp.Execute(prog, r)
	})
	if err == nil {
		t.Fatal("recursion guard did not trip")
	}
}
