package ctt

import (
	"repro/internal/timestat"
	"repro/internal/trace"
)

// Record-cycle folding. A leaf whose parameters change with an enclosing
// loop variable (MG's per-level halo sizes, a V-cycle's level sequence)
// produces a periodic sequence of records: [L0 L1 ... Lk-1] repeated once
// per outer iteration. Comparing only against the last record (the paper's
// default) re-records the whole block every iteration. Cycle folding
// detects two consecutive equal record blocks and collapses subsequent
// repetitions into a repetition count, the same move the paper sketches as
// the "larger sliding window" extension — but implemented losslessly: the
// block order and per-cycle counts are retained, so replay reproduces the
// exact sequence by iterating the block Reps times.

// Cycle marks a repeating block of records: Records[Start : Start+Len]
// repeat Reps times, each record occurring Count times per repetition.
// Cycle ranges within one VData are disjoint and ascending.
type Cycle struct {
	Start, Len int32
	Reps       int64
}

// openCycle is the in-progress tail cycle of a leaf during compression.
type openCycle struct {
	start, length int
	pos           int   // index within the block of the expected record
	occ           int64 // occurrences consumed of the expected record
	reps          int64 // completed repetitions
}

// maxCycleLen bounds detection; deeper nests than this fall back to plain
// record appends (MG-style level counts are well under it).
const maxCycleLen = 16

// cycleState lives beside VData during compression.
type cycleState struct {
	open *openCycle
	// frozen is the index past the last closed cycle: records below it are
	// part of a committed cycle and must not absorb further events.
	frozen int
}

// recordsCycleEqual reports whether two records can be twins in a cycle:
// identical parameters and counts; peer-pattern records are excluded
// (patterns and cycles compose poorly and never co-occur in practice).
func recordsCycleEqual(a, b *CommRecord) bool {
	return a.Peers == nil && b.Peers == nil &&
		a.Count == b.Count && a.Ev.SameParams(&b.Ev)
}

// tryFoldCycle attempts to consume ev as the next occurrence of an open
// cycle. It reports whether the event was absorbed.
func (d *VData) tryFoldCycle(cs *cycleState, canon *trace.Event, dur, comp float64) bool {
	oc := cs.open
	if oc == nil {
		return false
	}
	target := d.Records[oc.start+oc.pos]
	if target.Peers != nil || !target.Ev.SameParams(canon) {
		d.closeCycle(cs)
		return false
	}
	target.Time.Add(dur)
	target.Compute.Add(comp)
	oc.occ++
	if oc.occ == target.Count {
		oc.occ = 0
		oc.pos++
		if oc.pos == oc.length {
			oc.pos = 0
			oc.reps++
		}
	}
	return true
}

// closeCycle commits an open cycle: the completed repetitions become a Cycle
// annotation, and any partial final repetition is materialized as fresh
// trailing records so occurrence counts stay exact.
func (d *VData) closeCycle(cs *cycleState) {
	oc := cs.open
	cs.open = nil
	if oc == nil {
		return
	}
	d.Cycles = append(d.Cycles, Cycle{Start: int32(oc.start), Len: int32(oc.length), Reps: oc.reps})
	cs.frozen = oc.start + oc.length
	// Materialize the partial repetition (records fully consumed, then the
	// one partially consumed). Their time statistics were folded into the
	// block records; the copies carry mean-seeded stats so sample counts
	// stay consistent with occurrence counts.
	appendPartial := func(src *CommRecord, count int64) {
		cp := d.NewRecord()
		cp.Ev = src.Ev
		cp.PeerRel = src.PeerRel
		cp.Count = count
		cp.RelEncoded = src.RelEncoded
		cp.Time = timestat.MeanSeeded(src.Time.Mean, count)
		cp.Compute = timestat.MeanSeeded(src.Compute.Mean, count)
	}
	for i := 0; i < oc.pos; i++ {
		src := d.Records[oc.start+i]
		appendPartial(src, src.Count)
	}
	if oc.occ > 0 {
		appendPartial(d.Records[oc.start+oc.pos], oc.occ)
	}
}

// tryOpenCycle checks, after a fresh record was appended at index n-1,
// whether the tail now shows two equal consecutive blocks followed by the
// new record matching the block head; if so it collapses the duplicate
// block and opens a cycle.
func (d *VData) tryOpenCycle(cs *cycleState) {
	n := len(d.Records)
	newest := d.Records[n-1]
	if newest.Peers != nil {
		return
	}
	for k := 1; k <= maxCycleLen; k++ {
		// Layout: [block X][block Y][newest], X and Y of length k.
		start := n - 1 - 2*k
		if start < cs.frozen {
			return
		}
		head := d.Records[n-1-k]
		if head.Peers != nil || !head.Ev.SameParams(&newest.Ev) {
			continue
		}
		equal := true
		for i := 0; i < k; i++ {
			if !recordsCycleEqual(d.Records[start+i], d.Records[start+k+i]) {
				equal = false
				break
			}
		}
		if !equal {
			continue
		}
		// Fold block Y into block X and drop it; the newest record becomes
		// the first occurrence of repetition three.
		for i := 0; i < k; i++ {
			x, y := d.Records[start+i], d.Records[start+k+i]
			x.Time.Merge(&y.Time)
			x.Compute.Merge(&y.Compute)
		}
		// newest's single occurrence folds into the block head.
		d.Records[start].Time.Merge(&newest.Time)
		d.Records[start].Compute.Merge(&newest.Compute)
		d.Records = d.Records[:start+k]
		oc := &openCycle{start: start, length: k, reps: 2, pos: 0, occ: 1}
		if d.Records[start].Count == 1 {
			oc.occ = 0
			oc.pos = 1
			if oc.pos == oc.length {
				oc.pos = 0
				oc.reps++
			}
		}
		cs.open = oc
		return
	}
}
