// Fingerprints for merge-time hash-consing of vertex data.
//
// The inter-process merge groups rank CTTs whose vertex data is structurally
// identical. The exhaustive check (merge.compatible) walks every record of
// both payloads; the fingerprints below let the merge compare two payloads in
// O(1) instead: equal fingerprints (plus O(1) shape guards maintained by the
// caller) imply the exhaustive walk would succeed, with the SAME per-record
// relative/absolute unification decisions. A fingerprint mismatch decides
// nothing — the merge falls back to the exhaustive walk — so fingerprinting
// is purely an accelerator and cannot change grouping.
//
// Two fingerprints per payload, mirroring the two ways point-to-point records
// unify (paper Section IV-B):
//
//   - FingerprintRel folds each record under its rel-unification class: the
//     constant offset PeerRel for plain and rel-encoded p2p records, the
//     cyclic offset period for peer-pattern records, and the absolute peer
//     for collectives and for records poisoned RelUnsafe. Equal rel
//     fingerprints mean every record pair unifies exactly as the exhaustive
//     walk would (see the class-tag analysis in DESIGN.md).
//   - FingerprintAbs folds absolute peers for p2p records instead. It is
//     only valid while no plain p2p record is rel-encoded (once one is, its
//     absolute peer is stale); validity is returned alongside the hash.
//
// Volatile payload — the time statistics folded together by unification — is
// deliberately excluded (only the storage shape is folded, so histogram and
// moment-only records defer to the exhaustive path instead of fast-merging
// and silently dropping a histogram... which the exhaustive path would also
// do; excluding shape entirely would be equally lossless, but folding it
// keeps the fast path byte-for-byte aligned with existing behavior).
package ctt

import "repro/internal/fp"

// Fingerprint class tags. Distinct classes must never fast-match each other
// unless the exhaustive walk would unify them identically, so classes that
// ARE mutually rel-unifiable (plain and rel-encoded p2p records with the
// same PeerRel) deliberately share fpClassRel.
const (
	fpClassCollective = 1 // non-p2p: unifies only on equal absolute Peer
	fpClassPattern    = 2 // peer-pattern: unifies on equal offset period
	fpClassRel        = 3 // p2p, rel-capable: unifies on equal PeerRel
	fpClassAbsOnly    = 4 // p2p, RelUnsafe: unifies only on equal Peer
	fpClassAbsPeer    = 5 // p2p under the absolute fingerprint
)

// hashCommon folds the parameters every unification class requires to match:
// the full operation signature, run length, request list, and stat shape.
// The four booleans (wildcard, the two stat storage shapes, pattern
// presence) pack into disjoint bits of one word — injective, and three
// fewer mix rounds per record on the FromRank hot path.
func (r *CommRecord) hashCommon(h fp.Hash) fp.Hash {
	e := &r.Ev
	var flags uint64
	if e.Wildcard {
		flags |= 1
	}
	if r.Time.Hist != nil {
		flags |= 2
	}
	if r.Compute.Hist != nil {
		flags |= 4
	}
	if r.Peers != nil {
		flags |= 8
	}
	h = h.Int(int64(e.Op)).Int(int64(e.Size)).Int(int64(e.Tag)).
		Int(int64(e.Comm)).Int(r.Count).Word(flags)
	h = h.Word(uint64(len(e.Reqs)))
	for _, q := range e.Reqs {
		h = h.Int(int64(q))
	}
	return h
}

// hashPattern folds a peer-pattern's smallest period, the exact value
// PeerPattern.Equal compares.
func hashPattern(h fp.Hash, p *PeerPattern) fp.Hash {
	h = h.Word(uint64(len(p.Period)))
	for _, v := range p.Period {
		h = h.Int(int64(v))
	}
	return h
}

// HashRel folds the record under its relative-unification class.
func (r *CommRecord) HashRel(h fp.Hash) fp.Hash {
	h = r.hashCommon(h)
	switch {
	case !r.Ev.Op.IsPointToPoint():
		return h.Word(fpClassCollective).Int(int64(r.Ev.Peer))
	case r.Peers != nil:
		return hashPattern(h.Word(fpClassPattern), r.Peers)
	case r.RelUnsafe:
		return h.Word(fpClassAbsOnly).Int(int64(r.Ev.Peer))
	default:
		// Plain and rel-encoded records share the class: either pairing
		// rel-unifies on equal PeerRel. (Two plain records with equal PeerRel
		// and equal absolute Peer would abs-unify instead, but plain records
		// only survive in single-rank groups — any merge rel-encodes or
		// poisons them — and distinct ranks with equal PeerRel force distinct
		// absolute peers, so the case cannot arise.)
		return h.Word(fpClassRel).Int(int64(r.PeerRel))
	}
}

// HashAbs folds the record under the absolute-unification class. ok is false
// when the record is a rel-encoded plain p2p record, whose absolute peer is
// stale; the caller must then avoid the absolute fast path entirely.
func (r *CommRecord) HashAbs(h fp.Hash) (_ fp.Hash, ok bool) {
	h = r.hashCommon(h)
	switch {
	case !r.Ev.Op.IsPointToPoint():
		return h.Word(fpClassCollective).Int(int64(r.Ev.Peer)), true
	case r.Peers != nil:
		// Pattern records unify by period under both encodings; a
		// rel-encoded mark on a pattern record is irrelevant to matching.
		return hashPattern(h.Word(fpClassPattern), r.Peers), true
	case r.RelEncoded:
		return h, false
	default:
		// Plain and RelUnsafe records share the class: either pairing
		// abs-unifies on equal absolute Peer (poisoning is the caller's job).
		return h.Word(fpClassAbsPeer).Int(int64(r.Ev.Peer)), true
	}
}

// SpanRel returns the whole-tree relative fingerprint of the rank's executed
// vertices: for each vertex holding dynamic data, in GID order, the vertex
// id, an entry count of one, and the payload's relative fingerprint. This is
// exactly the merge's single-rank tree summary (the schema of
// merge.refreshSummary), memoized on the CTT alongside the per-vertex
// fingerprints it folds — each rank hashes its own finished tree once, and
// the reduction never recomputes leaf summaries. Staleness after merge-time
// poisoning is harmless: the span only routes tree pairs toward or away from
// the entry-level fast path, and every entry-level merge decision re-checks
// per-payload fingerprints or falls back to the exhaustive walk.
func (c *RankCTT) SpanRel() fp.Hash {
	if !c.spanOK {
		h := fp.New()
		for gid := range c.Data {
			d := &c.Data[gid]
			if !d.Executed() {
				continue
			}
			h = h.Word(uint64(gid)).Word(1).Word(uint64(d.FingerprintRelCached()))
		}
		c.span = h
		c.spanOK = true
	}
	return c.span
}

// hashControl folds the control-flow payload and record/cycle shape shared by
// both fingerprints.
func (d *VData) hashControl(h fp.Hash) fp.Hash {
	// Manual empty-vector folds: comm leaves — the bulk of all vertices —
	// have empty Counts and Taken, and the single length word the Hash
	// method would fold is cheaper produced inline than via the call.
	if d.Counts.Len() == 0 {
		h = h.Word(0)
	} else {
		h = d.Counts.Hash(h)
	}
	if d.Taken.Len() == 0 {
		h = h.Word(0)
	} else {
		h = d.Taken.Vector.Hash(h)
	}
	h = h.Word(uint64(len(d.Cycles)))
	for _, c := range d.Cycles {
		h = h.Word(uint64(c.Start)).Word(uint64(c.Len)).Int(c.Reps)
	}
	return h.Word(uint64(len(d.Records)))
}

// FingerprintRel returns the payload's relative-unification fingerprint.
func (d *VData) FingerprintRel() fp.Hash {
	h := d.hashControl(fp.New())
	for _, r := range d.Records {
		h = r.HashRel(h)
	}
	return h
}

// FingerprintRelCached returns FingerprintRel, memoized on the payload.
//
// Rank trees are fingerprinted once when collection finalizes them, not once
// per merge: in the distributed setting each rank hashes its own tree before
// the gather, so the reduction should never recompute leaf fingerprints
// serially. The memo stays valid across rel-encoding — plain and rel-encoded
// p2p records share fpClassRel, so marking a record RelEncoded does not move
// its fold — and across stat merging, which touches only volatile payload the
// fingerprint excludes. The one mutation that does move a record's class,
// RelUnsafe poisoning, must call InvalidateFingerprint first. Callers must
// not use this on vertex data still being appended to.
func (d *VData) FingerprintRelCached() fp.Hash {
	if !d.fpcOK {
		d.fpc = d.FingerprintRel()
		d.fpcOK = true
	}
	return d.fpc
}

// InvalidateFingerprint drops the memoized relative fingerprint after a
// mutation that changes it (the merge's RelUnsafe poisoning).
func (d *VData) InvalidateFingerprint() { d.fpcOK = false }

// FingerprintAbs returns the payload's absolute-unification fingerprint; ok
// is false when any record's absolute peer is stale (rel-encoded).
func (d *VData) FingerprintAbs() (_ fp.Hash, ok bool) {
	h := d.hashControl(fp.New())
	for _, r := range d.Records {
		var rok bool
		h, rok = r.HashAbs(h)
		if !rok {
			return 0, false
		}
	}
	return h, true
}
