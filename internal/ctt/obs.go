package ctt

import (
	ftrace "repro/internal/obs/trace"
)

// rec is the package's attached flight recorder: one span per rank Finish on
// the "compress" track (lane = rank) and one instant per resolved wildcard
// receive. nil (the default) records nothing. Unlike the metrics sink —
// which is per-compressor so each rank can tally locally — the recorder is a
// package variable wired once at startup (cypress.EnableTrace), matching the
// other pipeline layers.
var rec *ftrace.Recorder

// SetTrace attaches a flight recorder to the compressor layer. Not safe to
// call concurrently with running compressors.
func SetTrace(r *ftrace.Recorder) { rec = r }
