package ctt

import "sync"

// peerBufPool recycles the transient int32 buffers of pattern detection: the
// raw occurrence buffer (alive from conversion until Compress) and the KMP
// failure-function scratch (alive only during Compress). Both are bounded by
// convertLimit-scale sizes and are dropped the moment a pattern is found, so
// without pooling every pattern-bearing record costs two short-lived slices.
var peerBufPool = sync.Pool{
	New: func() any { return new([]int32) },
}

// getPeerBuf returns a length-n buffer with UNSPECIFIED contents; callers
// must overwrite every element they read.
func getPeerBuf(n int) []int32 {
	bp := peerBufPool.Get().(*[]int32)
	b := *bp
	if cap(b) < n {
		b = make([]int32, n)
	}
	return b[:n]
}

// putPeerBuf recycles a buffer obtained from getPeerBuf (or grown from one by
// append). Oversized buffers are dropped so one pathological record does not
// pin its high-water mark.
func putPeerBuf(b []int32) {
	if cap(b) == 0 || cap(b) > 4*convertLimit {
		return
	}
	b = b[:0]
	peerBufPool.Put(&b)
}

// PeerPattern compresses the peer sequence of a comm leaf whose occurrences
// alternate among several peers in a repeating order — the butterfly
// exchanges of CG (partner = rank ± 2^level) and the level-dependent
// neighbors of MG. The sequence of rank-relative peers is stored as its
// smallest period; occurrence k's peer is rank + Period[k mod len(Period)].
//
// This is the structural analog of the relative-ranking constant: instead of
// one constant offset, a record carries a short cyclic sequence of offsets.
// It preserves losslessness (the occurrence index fully determines the peer)
// while keeping records O(period) instead of O(occurrences).
type PeerPattern struct {
	// Period holds rank-relative peer offsets; the generating rule is
	// peer(k) = rank + Period[k % len(Period)].
	Period []int32
	// raw accumulates offsets until Compress; dropped afterwards.
	raw        []int32
	compressed bool
}

// convertLimit bounds how many identical occurrences are materialized when a
// constant-peer record first sees a different peer. Beyond it, conversion is
// refused and a fresh record starts instead.
const convertLimit = 1 << 13

// newPeerPattern seeds a pattern from a constant-peer prefix.
func newPeerPattern(rel int32, count int64) *PeerPattern {
	if count > convertLimit {
		return nil
	}
	raw := getPeerBuf(int(count))
	for i := range raw {
		raw[i] = rel
	}
	return &PeerPattern{raw: raw}
}

// Append adds the next occurrence's relative peer.
func (p *PeerPattern) Append(rel int32) {
	if p.compressed {
		panic("ctt: PeerPattern append after Compress")
	}
	p.raw = append(p.raw, rel)
}

// Compress finds the smallest period generating the sequence cyclically:
// the least p with raw[i] == raw[i-p] for all i >= p (equivalently
// raw[i] == raw[i mod p]). Uses the KMP failure function, O(n).
func (p *PeerPattern) Compress() {
	n := len(p.raw)
	p.compressed = true
	if n == 0 {
		p.Period = nil
		putPeerBuf(p.raw)
		p.raw = nil
		return
	}
	fail := getPeerBuf(n)
	fail[0] = 0 // pooled buffer arrives with unspecified contents
	for i := 1; i < n; i++ {
		k := fail[i-1]
		for k > 0 && p.raw[i] != p.raw[k] {
			k = fail[k-1]
		}
		if p.raw[i] == p.raw[k] {
			k++
		}
		fail[i] = k
	}
	period := n - int(fail[n-1])
	putPeerBuf(fail)
	// The failure-function period only generates the sequence cyclically
	// when every position satisfies raw[i] == raw[i mod period]; the KMP
	// border guarantees raw[i] == raw[i-period] for i >= period, which is
	// the same condition, so period is always valid here.
	p.Period = append([]int32(nil), p.raw[:period]...)
	putPeerBuf(p.raw)
	p.raw = nil
}

// At returns the relative peer of occurrence k. Routing on raw (non-nil only
// between conversion and Compress) rather than the compressed flag keeps At
// correct for decoded patterns, which carry a Period but were built by struct
// literal and never saw Compress.
func (p *PeerPattern) At(k int64) int32 {
	if p.raw != nil {
		return p.raw[k]
	}
	return p.Period[k%int64(len(p.Period))]
}

// Equal reports whether two compressed patterns generate the same sequence
// for records of equal length (periods must match exactly: both are the
// smallest generator).
func (p *PeerPattern) Equal(o *PeerPattern) bool {
	if len(p.Period) != len(o.Period) {
		return false
	}
	for i := range p.Period {
		if p.Period[i] != o.Period[i] {
			return false
		}
	}
	return true
}

// SizeBytes estimates the serialized footprint.
func (p *PeerPattern) SizeBytes() int64 { return 2 + 4*int64(len(p.Period)) }
