package ctt

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestPeerPatternCompressConstant(t *testing.T) {
	p := newPeerPattern(3, 5)
	p.Append(3)
	p.Compress()
	if len(p.Period) != 1 || p.Period[0] != 3 {
		t.Fatalf("period = %v", p.Period)
	}
	for k := int64(0); k < 6; k++ {
		if p.At(k) != 3 {
			t.Fatalf("At(%d) = %d", k, p.At(k))
		}
	}
}

func TestPeerPatternCompressButterfly(t *testing.T) {
	p := &PeerPattern{}
	seq := []int32{1, 2, 4, 8}
	for rep := 0; rep < 20; rep++ {
		for _, v := range seq {
			p.Append(v)
		}
	}
	p.Compress()
	if len(p.Period) != 4 {
		t.Fatalf("period = %v, want len 4", p.Period)
	}
	for k := int64(0); k < 80; k++ {
		if p.At(k) != seq[k%4] {
			t.Fatalf("At(%d) = %d", k, p.At(k))
		}
	}
}

func TestPeerPatternPartialLastCycle(t *testing.T) {
	p := &PeerPattern{}
	for _, v := range []int32{1, -1, 1, -1, 1} { // ends mid-cycle
		p.Append(v)
	}
	p.Compress()
	if len(p.Period) != 2 {
		t.Fatalf("period = %v", p.Period)
	}
	if p.At(4) != 1 {
		t.Fatalf("At(4) = %d", p.At(4))
	}
}

func TestPeerPatternAperiodic(t *testing.T) {
	p := &PeerPattern{}
	vals := []int32{5, 3, 9, 1, 7}
	for _, v := range vals {
		p.Append(v)
	}
	p.Compress()
	if len(p.Period) != len(vals) {
		t.Fatalf("aperiodic input compressed to %v", p.Period)
	}
}

func TestPeerPatternEqual(t *testing.T) {
	a := &PeerPattern{Period: []int32{1, 2}}
	b := &PeerPattern{Period: []int32{1, 2}}
	c := &PeerPattern{Period: []int32{1, 3}}
	d := &PeerPattern{Period: []int32{1}}
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Fatal("Equal wrong")
	}
}

func TestPeerPatternConvertLimit(t *testing.T) {
	if newPeerPattern(1, convertLimit+1) != nil {
		t.Fatal("conversion limit not enforced")
	}
	if newPeerPattern(1, 10) == nil {
		t.Fatal("small conversion refused")
	}
}

// Property: Compress never changes the generated sequence.
func TestQuickPeerPatternFaithful(t *testing.T) {
	f := func(vals []int8, reps uint8) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 16 {
			vals = vals[:16]
		}
		n := int(reps%8) + 1
		p := &PeerPattern{}
		var want []int32
		for r := 0; r < n; r++ {
			for _, v := range vals {
				p.Append(int32(v))
				want = append(want, int32(v))
			}
		}
		p.Compress()
		for k := range want {
			if p.At(int64(k)) != want[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestButterflyLeafCompressesToOnePatternRecord(t *testing.T) {
	// CG-style butterfly: partner cycles through +-2^l. One leaf, one
	// record with a peer pattern, instead of O(iterations) records.
	tree, ctts := run(t, `
func main() {
	for var it = 0; it < 30; it = it + 1 {
		var l = 1;
		while l < size {
			var partner = rank + l;
			if (rank / l) % 2 == 1 { partner = rank - l; }
			var r = irecv(partner, 512, 30);
			send(partner, 512, 30);
			wait(r);
			l = l * 2;
		}
	}
}`, 8)
	leaf := findLeaf(tree, trace.OpSend)
	d := ctts[0].Data[leaf.GID]
	if len(d.Records) != 1 {
		t.Fatalf("send records = %d, want 1 (peer pattern)", len(d.Records))
	}
	rec := d.Records[0]
	if rec.Peers == nil {
		t.Fatal("record lacks a peer pattern")
	}
	if rec.Count != 30*3 {
		t.Fatalf("count = %d", rec.Count)
	}
	// Rank 0's partner cycle: +1, +2, +4.
	if len(rec.Peers.Period) != 3 {
		t.Fatalf("period = %v", rec.Peers.Period)
	}
	if rec.SizeBytes() > 200 {
		t.Fatalf("pattern record too large: %dB", rec.SizeBytes())
	}
}

func TestVaryingSizeDoesNotPeerFold(t *testing.T) {
	// Sizes vary with the partner: parameters other than peer differ, so
	// records must stay separate (CYPRESS does not fold sizes; that is
	// ScalaTrace-2's elastic behavior, which loses information).
	tree, ctts := run(t, `
func main() {
	for var it = 0; it < 10; it = it + 1 {
		var l = 1;
		while l < size {
			var partner = rank + l;
			if (rank / l) % 2 == 1 { partner = rank - l; }
			var r = irecv(partner, 512 * l, 30);
			send(partner, 512 * l, 30);
			wait(r);
			l = l * 2;
		}
	}
}`, 4)
	leaf := findLeaf(tree, trace.OpSend)
	d := ctts[0].Data[leaf.GID]
	if len(d.Records) < 2 {
		t.Fatalf("varying sizes must split records, got %d", len(d.Records))
	}
	for _, r := range d.Records {
		if r.Peers != nil {
			t.Fatal("size-varying occurrences must not fold into one pattern")
		}
	}
}
