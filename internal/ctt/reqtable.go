package ctt

import "repro/internal/trace"

// reqTable maps live (outstanding) non-blocking request ids to their poster's
// CST leaf GID and, for wildcard receives, to a cached event awaiting source
// resolution at completion time.
//
// Request ids are rank-local monotonically increasing sequence numbers, and
// the set of ids live at any instant is small — bounded by the number of
// outstanding non-blocking operations, not by the run length. A map keyed by
// id therefore pays hashing plus (for the wildcard cache) one heap-allocated
// event per cached receive, on the hottest path of the tracer. The table is
// instead a power-of-two ring indexed by id&mask: insert, lookup and delete
// are one shift-free index plus a compare, and never allocate in steady
// state. A slot occupied by a *different* live id (only possible when one
// request stays open while a full ring of newer ones is issued) falls back to
// a small map, so correctness never depends on the ring geometry.
//
// Cached wildcard events live in a recycled slot array (freelist), so a
// steady stream of wildcard receives reuses the same storage instead of
// allocating one event per receive.

type reqSlot struct {
	id   int32 // -1 = empty
	gid  int32
	wild int32 // index+1 into wildSlots; 0 = no cached wildcard event
}

type reqTable struct {
	slots []reqSlot
	mask  int32
	live  int // live requests in ring + overflow

	wildSlots []trace.Event
	freeWild  []int32
	wildLive  int // cached wildcard events in slots + overflow

	overflowGID  map[int32]int32
	overflowWild map[int32]trace.Event
}

const reqTableInitSize = 64

func (t *reqTable) grow() {
	old := t.slots
	size := 2 * len(old)
	if size < reqTableInitSize {
		size = reqTableInitSize
	}
	t.slots = make([]reqSlot, size)
	for i := range t.slots {
		t.slots[i].id = -1
	}
	t.mask = int32(size - 1)
	for _, s := range old {
		if s.id < 0 {
			continue
		}
		ns := &t.slots[s.id&t.mask]
		if ns.id < 0 {
			*ns = s
			continue
		}
		// Doubling collision (two live ids congruent mod the new size):
		// demote to the overflow map.
		if t.overflowGID == nil {
			t.overflowGID = map[int32]int32{}
		}
		t.overflowGID[s.id] = s.gid
		if s.wild != 0 {
			if t.overflowWild == nil {
				t.overflowWild = map[int32]trace.Event{}
			}
			t.overflowWild[s.id] = t.wildSlots[s.wild-1]
			t.freeWild = append(t.freeWild, s.wild-1)
		}
	}
}

// put registers id as posted by the leaf with the given gid.
func (t *reqTable) put(id, gid int32) {
	if id < 0 {
		panic("ctt: negative request id")
	}
	if 2*(t.live+1) > len(t.slots) {
		t.grow()
	}
	s := &t.slots[id&t.mask]
	switch s.id {
	case -1:
		*s = reqSlot{id: id, gid: gid}
		t.live++
	case id:
		s.gid = gid
	default:
		if t.overflowGID == nil {
			t.overflowGID = map[int32]int32{}
		}
		t.overflowGID[id] = gid
		t.live++
	}
}

// get returns the poster gid of a live request.
func (t *reqTable) get(id int32) (int32, bool) {
	if len(t.slots) == 0 {
		return 0, false
	}
	s := &t.slots[id&t.mask]
	if s.id == id {
		return s.gid, true
	}
	gid, ok := t.overflowGID[id]
	return gid, ok
}

// del removes a live request (and any still-cached wildcard event).
func (t *reqTable) del(id int32) {
	if len(t.slots) == 0 {
		return
	}
	s := &t.slots[id&t.mask]
	if s.id == id {
		if s.wild != 0 {
			t.freeWild = append(t.freeWild, s.wild-1)
			t.wildLive--
		}
		*s = reqSlot{id: -1}
		t.live--
		return
	}
	if _, ok := t.overflowGID[id]; ok {
		delete(t.overflowGID, id)
		t.live--
		if _, w := t.overflowWild[id]; w {
			delete(t.overflowWild, id)
			t.wildLive--
		}
	}
}

// putWild caches a wildcard receive event for a request already registered
// with put. The event is copied into recycled slot storage.
func (t *reqTable) putWild(id int32, ev *trace.Event) {
	s := &t.slots[id&t.mask]
	if s.id != id {
		if t.overflowWild == nil {
			t.overflowWild = map[int32]trace.Event{}
		}
		t.overflowWild[id] = *ev
		t.wildLive++
		return
	}
	var idx int32
	if n := len(t.freeWild); n > 0 {
		idx = t.freeWild[n-1]
		t.freeWild = t.freeWild[:n-1]
	} else {
		t.wildSlots = append(t.wildSlots, trace.Event{})
		idx = int32(len(t.wildSlots) - 1)
	}
	t.wildSlots[idx] = *ev
	s.wild = idx + 1
	t.wildLive++
}

// takeWild removes and returns the cached wildcard event of id, if any.
func (t *reqTable) takeWild(id int32) (trace.Event, bool) {
	if len(t.slots) == 0 {
		return trace.Event{}, false
	}
	s := &t.slots[id&t.mask]
	if s.id == id {
		if s.wild == 0 {
			return trace.Event{}, false
		}
		idx := s.wild - 1
		ev := t.wildSlots[idx]
		t.freeWild = append(t.freeWild, idx)
		s.wild = 0
		t.wildLive--
		return ev, true
	}
	ev, ok := t.overflowWild[id]
	if ok {
		delete(t.overflowWild, id)
		t.wildLive--
	}
	return ev, ok
}

// memoryBytes estimates the table's live memory for MemoryBytes.
func (t *reqTable) memoryBytes() int64 {
	n := int64(cap(t.slots)) * 12
	n += int64(cap(t.wildSlots)) * 112
	n += int64(cap(t.freeWild)) * 4
	n += int64(len(t.overflowGID)) * 16
	n += int64(len(t.overflowWild)) * 120
	return n
}
