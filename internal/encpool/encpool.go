// Package encpool provides shared sync.Pools for the codec-side allocation
// hot spots: gzip and raw-deflate writers (whose Reset makes them fully
// reusable but whose construction allocates ~1.4MB of deflate state), flate
// readers, bufio writers/readers, and byte buffers. Measure's per-rank
// artifact finishing constructs one gzip stream per rank per method, and the
// blocked container compresses one deflate frame per ~frame-size bytes;
// pooling turns both from allocator round-trips per use into a handful of
// long-lived objects shared across the run.
package encpool

import (
	"bufio"
	"bytes"
	"compress/flate"
	"compress/gzip"
	"io"
	"sync"

	"repro/internal/obs"
)

// sink is the package's attached metrics sink; nil (the default) disables
// observation. Wired once at startup via SetObs and only read afterwards.
var sink *obs.Sink

// SetObs attaches a metrics sink recording pool checkout/miss traffic. A nil
// sink disables observation. Not safe to call concurrently with pool use.
func SetObs(s *obs.Sink) { sink = s }

var gzipPool = sync.Pool{
	New: func() any {
		sink.Inc(obs.PoolGzipNews)
		return gzip.NewWriter(io.Discard)
	},
}

// GetGzip returns a pooled gzip writer reset to stream into w.
func GetGzip(w io.Writer) *gzip.Writer {
	sink.Inc(obs.PoolGzipGets)
	gz := gzipPool.Get().(*gzip.Writer)
	gz.Reset(w)
	return gz
}

// PutGzip returns a gzip writer to the pool. The caller must have Closed (or
// otherwise finished with) it; the next GetGzip resets all state.
func PutGzip(gz *gzip.Writer) {
	if gz != nil {
		gzipPool.Put(gz)
	}
}

// FlateLevel is the deflate level every pooled flate.Writer is constructed
// with. It matches gzip.NewWriter's default so the blocked container trades
// like-for-like against Cypress+Gzip, and it is part of the CYPB determinism
// contract: frames are byte-identical across worker counts only because every
// worker compresses at the same fixed level.
const FlateLevel = flate.DefaultCompression

var flatePool = sync.Pool{
	New: func() any {
		sink.Inc(obs.PoolFlateNews)
		fw, err := flate.NewWriter(io.Discard, FlateLevel)
		if err != nil {
			// Unreachable: FlateLevel is a compile-time valid constant.
			panic(err)
		}
		return fw
	},
}

// GetFlate returns a pooled raw-deflate writer reset to stream into w. Like
// the gzip pool, this amortizes the ~1.4MB of deflate state per writer across
// every frame the blocked encoder compresses.
func GetFlate(w io.Writer) *flate.Writer {
	sink.Inc(obs.PoolFlateGets)
	fw := flatePool.Get().(*flate.Writer)
	fw.Reset(w)
	return fw
}

// PutFlate returns a flate writer to the pool. The caller must have Closed
// (or otherwise finished with) it; the next GetFlate resets all state.
func PutFlate(fw *flate.Writer) {
	if fw != nil {
		flatePool.Put(fw)
	}
}

// emptySrc parks pooled flate readers between uses. It is never read from:
// every GetFlateReader resets the reader onto a live source first.
var emptySrc = bytes.NewReader(nil)

var inflatePool = sync.Pool{
	New: func() any {
		sink.Inc(obs.PoolInflateNews)
		return flate.NewReader(emptySrc)
	},
}

// GetFlateReader returns a pooled raw-deflate reader reset to r with no
// preset dictionary. The stdlib guarantees the value implements
// flate.Resetter, which is what makes the pool possible.
func GetFlateReader(r io.Reader) io.ReadCloser {
	sink.Inc(obs.PoolInflateGets)
	fr := inflatePool.Get().(io.ReadCloser)
	if err := fr.(flate.Resetter).Reset(r, nil); err != nil {
		// Reset with a nil dictionary cannot fail; keep the reader usable
		// anyway by falling back to a fresh one.
		fr = flate.NewReader(r)
	}
	return fr
}

// PutFlateReader returns a flate reader to the pool, dropping its source so
// the pool does not pin the underlying stream.
func PutFlateReader(fr io.ReadCloser) {
	if fr == nil {
		return
	}
	if res, ok := fr.(flate.Resetter); ok {
		_ = res.Reset(emptySrc, nil)
		inflatePool.Put(fr)
	}
}

const bufioSize = 1 << 16

var bufioPool = sync.Pool{
	New: func() any {
		sink.Inc(obs.PoolBufioNews)
		return bufio.NewWriterSize(io.Discard, bufioSize)
	},
}

// GetBufio returns a pooled 64KB bufio.Writer reset to w.
func GetBufio(w io.Writer) *bufio.Writer {
	sink.Inc(obs.PoolBufioGets)
	bw := bufioPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw
}

// PutBufio returns a bufio writer to the pool. The caller must have Flushed;
// Reset on reuse discards any unflushed state.
func PutBufio(bw *bufio.Writer) {
	if bw != nil {
		bw.Reset(io.Discard)
		bufioPool.Put(bw)
	}
}

var bufioReaderPool = sync.Pool{
	New: func() any {
		sink.Inc(obs.PoolReaderNews)
		return bufio.NewReaderSize(nil, bufioSize)
	},
}

// GetBufioReader returns a pooled 64KB bufio.Reader reset to r. The decode
// path constructs one buffered reader per trace file; pooling keeps repeated
// decodes (bench harness cells, round-trip tests) from re-allocating the
// buffer each time.
func GetBufioReader(r io.Reader) *bufio.Reader {
	sink.Inc(obs.PoolReaderGets)
	br := bufioReaderPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

// PutBufioReader returns a reader to the pool, dropping its source so the
// pool does not pin the underlying stream.
func PutBufioReader(br *bufio.Reader) {
	if br != nil {
		br.Reset(nil)
		bufioReaderPool.Put(br)
	}
}

var bufPool = sync.Pool{
	New: func() any {
		sink.Inc(obs.PoolBufferNews)
		return new(bytes.Buffer)
	},
}

// GetBuffer returns a pooled empty bytes.Buffer.
func GetBuffer() *bytes.Buffer {
	sink.Inc(obs.PoolBufferGets)
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// PutBuffer returns a buffer to the pool. Oversized buffers are dropped so a
// single huge encode does not pin its high-water mark forever.
func PutBuffer(b *bytes.Buffer) {
	if b == nil || b.Cap() > 1<<22 {
		return
	}
	bufPool.Put(b)
}
