// Package fp implements the 64-bit structural fingerprint fold used by the
// inter-process merge (hash-consing of vertex data): a splitmix64-style
// pre-mix of each word followed by an FNV-1a-style combine. The pre-mix
// spreads the small integers that dominate trace data (ranks, tags, sizes,
// run counts) across the whole word before combining, so sequences differing
// only in low bits still diverge across the full 64-bit state.
//
// Fingerprint equality is used as a stand-in for structural equality during
// merging: two different canonical streams collide with probability ~2^-64
// per comparison, and every fast-path use additionally guards on O(1) shape
// counters (record/run/cycle counts), so a silent collision requires both a
// 64-bit hash collision and identical shape. See DESIGN.md ("Fingerprint
// merge") for the losslessness argument.
package fp

import "encoding/binary"

// Hash is an accumulating 64-bit fingerprint state. Fold values with Word,
// Int, and Bool; the zero value is NOT a valid initial state — use New.
type Hash uint64

const (
	offset64 Hash   = 14695981039346656037
	prime64  Hash   = 1099511628211
	mixA     uint64 = 0xbf58476d1ce4e5b9 // splitmix64 finalizer constants
)

// New returns the initial fold state.
func New() Hash { return offset64 }

// Word folds one 64-bit word into the state.
func (h Hash) Word(x uint64) Hash {
	x ^= x >> 30
	x *= mixA
	x ^= x >> 27
	return (h ^ Hash(x)) * prime64
}

// Int folds a signed value.
func (h Hash) Int(x int64) Hash { return h.Word(uint64(x)) }

// Bool folds a flag.
func (h Hash) Bool(b bool) Hash {
	if b {
		return h.Word(1)
	}
	return h.Word(0)
}

// Bytes folds a byte slice into the state: 8-byte little-endian words, a
// zero-padded tail word, and finally the length, so slices that differ only
// in trailing zero bytes (or in length) still diverge. One Bytes call folds
// one logical value — chaining calls over a split buffer is not equivalent to
// folding the concatenation, by design (each call seals its length).
func (h Hash) Bytes(b []byte) Hash {
	n := len(b)
	for len(b) >= 8 {
		h = h.Word(binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) > 0 {
		var tail [8]byte
		copy(tail[:], b)
		h = h.Word(binary.LittleEndian.Uint64(tail[:]))
	}
	return h.Word(uint64(n))
}
