package inspect

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	cypress "repro"
)

var update = flag.Bool("update", false, "rewrite golden files")

// jacobi is the canonical open-chain stencil fixture shared with the root
// package's tests: a 10-iteration nearest-neighbor exchange plus a reduce.
const jacobi = `
func main() {
	for var k = 0; k < 10; k = k + 1 {
		if rank < size - 1 { send(rank + 1, 8000, 0); }
		if rank > 0 { recv(rank - 1, 8000, 0); }
		if rank > 0 { send(rank - 1, 8000, 0); }
		if rank < size - 1 { recv(rank + 1, 8000, 0); }
		compute(100000);
	}
	reduce(0, 8);
}`

// analyzeFixture traces jacobi at n ranks and analyzes the merged tree.
func analyzeFixture(t *testing.T, n int) *Analysis {
	t.Helper()
	p, err := cypress.Compile(jacobi)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Trace(n, cypress.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(res.Merged)
}

// checkGolden compares got against testdata/name, rewriting under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/inspect -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGolden pins the inspector's text and JSON output on the 7- and 64-rank
// jacobi fixtures. The analysis reports only structural counts, so the output
// is byte-stable across merge schedules and machines.
func TestGolden(t *testing.T) {
	for _, n := range []int{7, 64} {
		t.Run(fmt.Sprintf("ranks=%d", n), func(t *testing.T) {
			a := analyzeFixture(t, n)
			var txt bytes.Buffer
			if err := a.WriteText(&txt); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, fmt.Sprintf("jacobi%d.txt", n), txt.Bytes())
			var js bytes.Buffer
			if err := a.WriteJSON(&js); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, fmt.Sprintf("jacobi%d.json", n), js.Bytes())
		})
	}
}

// TestGoldenJSONRoundTrips guards the JSON schema: the golden JSON must
// unmarshal back into an Analysis with the same summary.
func TestGoldenJSONRoundTrips(t *testing.T) {
	a := analyzeFixture(t, 7)
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Analysis
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Summary != a.Summary {
		t.Errorf("summary round-trip mismatch:\n got %+v\nwant %+v", back.Summary, a.Summary)
	}
	if len(back.Leaves) != len(a.Leaves) {
		t.Errorf("leaves round-trip: %d vs %d", len(back.Leaves), len(a.Leaves))
	}
}

// TestAnalyzeInvariants cross-checks the analysis against the trace: the
// leaf-table event total must equal the job's event count, and the 64-rank
// stencil must compress into rank-relative records (rel > 0 after merging).
func TestAnalyzeInvariants(t *testing.T) {
	a := analyzeFixture(t, 64)
	var events, rel int64
	for _, l := range a.Leaves {
		events += l.Events
		rel += l.RelEncoded
	}
	if events != a.Summary.EventCount {
		t.Errorf("leaf events sum %d != trace event count %d", events, a.Summary.EventCount)
	}
	if rel == 0 {
		t.Error("no rel-encoded records in a 64-rank stencil merge")
	}
	if a.Summary.EventsPerRecord <= 1 {
		t.Errorf("events/record = %.2f, expected compression", a.Summary.EventsPerRecord)
	}
}
