// Package inspect derives the paper's evaluation tables from a merged
// compressed trace tree: per-leaf compression ratios (Table 3's "structures"
// breakdown), rank-group fragmentation, and stride-compression health for the
// control vectors. It works on any *merge.Merged — freshly traced or decoded
// from a trace file — and deliberately reports only structural counts (no
// wall-clock, no schedule-dependent counters), so its output is byte-stable
// for a given trace and suitable for golden-file testing.
package inspect

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cst"
	"repro/internal/merge"
)

// Summary is the whole-trace roll-up.
type Summary struct {
	// NumRanks is the job size.
	NumRanks int `json:"num_ranks"`
	// EventCount is the total number of MPI events the job produced.
	EventCount int64 `json:"event_count"`
	// Vertices and ExecutedVertices size the CST and its populated part.
	Vertices         int `json:"vertices"`
	ExecutedVertices int `json:"executed_vertices"`
	// Groups is the total number of rank-group entries; Records the total
	// comm records stored across all groups.
	Groups  int   `json:"groups"`
	Records int64 `json:"records"`
	// SizeBytes is the estimated serialized footprint of the vertex data.
	SizeBytes int64 `json:"size_bytes"`
	// EventsPerRecord is the trace-wide fold ratio: how many original events
	// each stored record stands for (higher is better compression).
	EventsPerRecord float64 `json:"events_per_record"`
}

// LeafRow is one comm leaf's compression accounting.
type LeafRow struct {
	GID int32  `json:"gid"`
	Op  string `json:"op"`
	// Groups is the number of rank groups at this leaf (1 = perfectly SPMD).
	Groups int `json:"groups"`
	// Records is the number of stored records summed over groups.
	Records int64 `json:"records"`
	// Events is the number of original events the leaf's records stand for,
	// weighted by each group's rank count.
	Events int64 `json:"events"`
	// RelEncoded / Patterns / RelUnsafe count records by peer encoding:
	// relative (rank±k), cyclic peer pattern, and absolute-only.
	RelEncoded int64 `json:"rel_encoded"`
	Patterns   int64 `json:"patterns"`
	// Bytes estimates the leaf's serialized footprint (all groups).
	Bytes int64 `json:"bytes"`
	// Ratio is Events/Records for this leaf.
	Ratio float64 `json:"ratio"`
	// Ranks renders the first group's rank set (and "+k more" when
	// fragmented) for orientation.
	Ranks string `json:"ranks"`
}

// StrideRow is one control vertex's stride-compression health.
type StrideRow struct {
	GID  int32  `json:"gid"`
	Kind string `json:"kind"`
	// Values is the number of control values stored (loop activation counts
	// or branch taken-indices), summed over groups; Runs the stride runs
	// holding them.
	Values int64 `json:"values"`
	Runs   int64 `json:"runs"`
	// RawBytes/EncBytes compare the 8-bytes-per-value raw layout against the
	// run encoding; Saved is their difference (negative = incompressible).
	RawBytes int64 `json:"raw_bytes"`
	EncBytes int64 `json:"enc_bytes"`
	Saved    int64 `json:"saved"`
}

// GroupBucket is one bar of the groups-per-vertex histogram: Vertices
// executed vertices carry exactly Groups rank groups.
type GroupBucket struct {
	Groups   int `json:"groups"`
	Vertices int `json:"vertices"`
}

// Analysis is the full structural breakdown of one merged trace.
type Analysis struct {
	Summary Summary `json:"summary"`
	// Leaves lists comm leaves in GID order (root included when it holds
	// records: Init/Finalize live there).
	Leaves []LeafRow `json:"leaves"`
	// Strides lists loop/branch-arm/recursive-call vertices with control
	// vectors, in GID order.
	Strides []StrideRow `json:"strides,omitempty"`
	// GroupHist is the groups-per-vertex distribution over executed vertices,
	// in ascending group-count order (1 group = perfectly SPMD-uniform).
	GroupHist []GroupBucket `json:"group_hist"`
}

// Analyze derives the structural breakdown of m. The result depends only on
// the merged data, never on merge schedule or timing.
func Analyze(m *merge.Merged) *Analysis {
	// Analyze reads every payload, so a selectively decoded tree (corpus
	// GetProjected, merge.DecodeSelect) is materialized up front. A fill
	// error leaves that entry's Data nil and the guard below keeps it out
	// of the tally; trees whose encoding full Decode accepts cannot hit it.
	_ = m.Materialize()
	a := &Analysis{}
	a.Summary.NumRanks = m.NumRanks
	a.Summary.EventCount = m.EventCount
	a.Summary.Vertices = len(m.Entries)
	groupsOf := map[int]int{}
	for gid, es := range m.Entries {
		if len(es) == 0 {
			continue
		}
		v := m.Tree.ByGID[gid]
		a.Summary.ExecutedVertices++
		a.Summary.Groups += len(es)
		groupsOf[len(es)]++

		var leaf LeafRow
		var st StrideRow
		for _, e := range es {
			if e.Data == nil {
				continue
			}
			nr := e.Ranks.Len()
			a.Summary.SizeBytes += e.Data.SizeBytes() + e.Ranks.SizeBytes()
			for _, r := range e.Data.Records {
				leaf.Records++
				leaf.Events += r.Count * int64(nr)
				if r.Peers != nil {
					leaf.Patterns++
				} else if r.RelEncoded {
					leaf.RelEncoded++
				}
				leaf.Bytes += r.SizeBytes()
			}
			if n := e.Data.Counts.Len(); n > 0 {
				st.Values += n
				st.Runs += int64(e.Data.Counts.RunCount())
				st.RawBytes += e.Data.Counts.RawBytes()
				st.EncBytes += e.Data.Counts.SizeBytes()
			}
			if n := e.Data.Taken.Len(); n > 0 {
				st.Values += n
				st.Runs += int64(e.Data.Taken.RunCount())
				st.RawBytes += e.Data.Taken.RawBytes()
				st.EncBytes += e.Data.Taken.SizeBytes()
			}
		}
		a.Summary.Records += leaf.Records
		if leaf.Records > 0 {
			leaf.GID = int32(gid)
			leaf.Op = leafOp(v)
			leaf.Groups = len(es)
			leaf.Ratio = ratio(leaf.Events, leaf.Records)
			leaf.Ranks = es[0].Ranks.String()
			if len(es) > 1 {
				leaf.Ranks += fmt.Sprintf(" +%d more", len(es)-1)
			}
			a.Leaves = append(a.Leaves, leaf)
		}
		if st.Values > 0 {
			st.GID = int32(gid)
			st.Kind = v.Kind.String()
			st.Saved = st.RawBytes - st.EncBytes
			a.Strides = append(a.Strides, st)
		}
	}
	a.Summary.EventsPerRecord = ratio(a.Summary.EventCount, a.Summary.Records)
	maxG := 0
	for g := range groupsOf {
		if g > maxG {
			maxG = g
		}
	}
	for g := 1; g <= maxG; g++ {
		if n := groupsOf[g]; n > 0 {
			a.GroupHist = append(a.GroupHist, GroupBucket{Groups: g, Vertices: n})
		}
	}
	return a
}

// leafOp names the operation a record-bearing vertex holds.
func leafOp(v *cst.Vertex) string {
	if v.Kind == cst.KindComm {
		return v.Op.String()
	}
	return v.Kind.String() // root: Init/Finalize records
}

func ratio(n, d int64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// WriteJSON writes the analysis as indented JSON.
func (a *Analysis) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// WriteText renders the analysis as aligned tables (the Table-3-style
// breakdown the paper reports).
func (a *Analysis) WriteText(w io.Writer) error {
	s := a.Summary
	fmt.Fprintf(w, "trace: %d ranks, %d events, %d/%d vertices executed\n",
		s.NumRanks, s.EventCount, s.ExecutedVertices, s.Vertices)
	fmt.Fprintf(w, "       %d groups, %d records, %.1f events/record, ~%d bytes\n",
		s.Groups, s.Records, s.EventsPerRecord, s.SizeBytes)

	if len(a.Leaves) > 0 {
		fmt.Fprintf(w, "\nleaves:\n")
		fmt.Fprintf(w, "  %6s %-12s %7s %8s %10s %8s %5s %5s %9s  %s\n",
			"gid", "op", "groups", "records", "events", "ratio", "rel", "pat", "bytes", "ranks")
		for _, l := range a.Leaves {
			fmt.Fprintf(w, "  %6d %-12s %7d %8d %10d %8.1f %5d %5d %9d  %s\n",
				l.GID, l.Op, l.Groups, l.Records, l.Events, l.Ratio,
				l.RelEncoded, l.Patterns, l.Bytes, l.Ranks)
		}
	}
	if len(a.Strides) > 0 {
		fmt.Fprintf(w, "\nstride vectors:\n")
		fmt.Fprintf(w, "  %6s %-8s %10s %8s %10s %10s %10s\n",
			"gid", "kind", "values", "runs", "raw_b", "enc_b", "saved")
		for _, st := range a.Strides {
			fmt.Fprintf(w, "  %6d %-8s %10d %8d %10d %10d %10d\n",
				st.GID, st.Kind, st.Values, st.Runs, st.RawBytes, st.EncBytes, st.Saved)
		}
	}
	if len(a.GroupHist) > 0 {
		fmt.Fprintf(w, "\nrank groups per executed vertex:\n")
		for _, b := range a.GroupHist {
			fmt.Fprintf(w, "  %3d group(s): %5d vertices\n", b.Groups, b.Vertices)
		}
	}
	return nil
}
