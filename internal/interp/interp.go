// Package interp executes MPL programs on simulated MPI ranks. It is the
// stand-in for running the compiled, instrumented binary: every MPI intrinsic
// is forwarded to the mpisim runtime (whose tracer observes the event), and
// every control structure is bracketed with the structure markers the paper's
// compiler inserts (PMPI_COMM_Structure / _Exit, Figure 9), following the
// trace.Sink protocol.
package interp

import (
	"fmt"
	"math/bits"

	"repro/internal/lang"
	"repro/internal/mpisim"
	"repro/internal/trace"
)

// RunProgram parses, checks, and executes MPL source on n simulated ranks,
// returning the simulated job time in nanoseconds. sinks may be nil (no
// tracing) or contain one Sink per rank.
func RunProgram(src string, n int, params mpisim.Params, sinks []trace.Sink) (float64, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return 0, err
	}
	if _, err := lang.Check(prog); err != nil {
		return 0, err
	}
	return mpisim.Run(n, params, sinks, func(r *mpisim.Rank) {
		Execute(prog, r)
	})
}

// Execute runs prog's main function on rank r. The program must have passed
// lang.Check. Runtime errors (division by zero, bad message sizes, undefined
// behavior) panic; mpisim.Run converts rank panics into errors.
func Execute(prog *lang.Program, r *mpisim.Rank) {
	ex := &executor{
		prog: prog,
		rank: r,
		sink: r.Sink(),
		reqs: map[int64]*mpisim.Request{},
	}
	r.Init()
	mainFn := prog.ByName["main"]
	if mainFn == nil {
		panic("interp: program has no main")
	}
	ex.callUser(mainFn, nil)
	r.Finalize()
}

type executor struct {
	prog  *lang.Program
	rank  *mpisim.Rank
	sink  trace.Sink
	reqs  map[int64]*mpisim.Request
	depth int
}

// scope is a lexical environment frame.
type scope struct {
	vars   map[string]int64
	parent *scope
}

func (s *scope) lookup(name string) (*scope, bool) {
	for e := s; e != nil; e = e.parent {
		if _, ok := e.vars[name]; ok {
			return e, true
		}
	}
	return nil, false
}

func (ex *executor) callUser(fn *lang.FuncDecl, args []int64) int64 {
	ex.depth++
	if ex.depth > 1<<16 {
		panic(fmt.Sprintf("interp: recursion deeper than %d in %s", 1<<16, fn.Name))
	}
	defer func() { ex.depth-- }()
	env := &scope{vars: make(map[string]int64, len(fn.Params)+4)}
	for i, p := range fn.Params {
		env.vars[p] = args[i]
	}
	_, val := ex.block(fn.Body, env)
	return val
}

// block executes a statement list in a fresh child scope; it reports whether
// a return unwound and the return value.
func (ex *executor) block(b *lang.Block, parent *scope) (bool, int64) {
	env := &scope{vars: map[string]int64{}, parent: parent}
	for _, s := range b.Stmts {
		if ret, v := ex.stmt(s, env); ret {
			return true, v
		}
	}
	return false, 0
}

func (ex *executor) stmt(s lang.Stmt, env *scope) (bool, int64) {
	switch s := s.(type) {
	case *lang.VarStmt:
		env.vars[s.Name] = ex.eval(s.Init, env)
		return false, 0
	case *lang.AssignStmt:
		v := ex.eval(s.Value, env)
		target, ok := env.lookup(s.Name)
		if !ok {
			panic(fmt.Sprintf("interp: assignment to undeclared %q", s.Name))
		}
		target.vars[s.Name] = v
		return false, 0
	case *lang.ExprStmt:
		ex.eval(s.X, env)
		return false, 0
	case *lang.ReturnStmt:
		if s.Value != nil {
			return true, ex.eval(s.Value, env)
		}
		return true, 0
	case *lang.Block:
		return ex.block(s, env)
	case *lang.IfStmt:
		site := int32(s.ID())
		if truthy(ex.eval(s.Cond, env)) {
			ex.sink.BranchEnter(site, 0)
			ret, v := ex.block(s.Then, env)
			ex.sink.StructExit()
			return ret, v
		}
		if s.Else != nil {
			ex.sink.BranchEnter(site, 1)
			ret, v := ex.stmt(s.Else, env)
			ex.sink.StructExit()
			return ret, v
		}
		ex.sink.BranchSkip(site)
		return false, 0
	case *lang.ForStmt:
		site := int32(s.ID())
		loopEnv := &scope{vars: map[string]int64{}, parent: env}
		if s.Init != nil {
			if ret, v := ex.stmt(s.Init, loopEnv); ret {
				return ret, v
			}
		}
		ex.sink.LoopEnter(site)
		for truthy(ex.eval(s.Cond, loopEnv)) {
			ex.sink.LoopIter(site)
			if ret, v := ex.block(s.Body, loopEnv); ret {
				ex.sink.StructExit()
				return ret, v
			}
			if s.Post != nil {
				if ret, v := ex.stmt(s.Post, loopEnv); ret {
					ex.sink.StructExit()
					return ret, v
				}
			}
		}
		ex.sink.StructExit()
		return false, 0
	case *lang.WhileStmt:
		site := int32(s.ID())
		ex.sink.LoopEnter(site)
		for truthy(ex.eval(s.Cond, env)) {
			ex.sink.LoopIter(site)
			if ret, v := ex.block(s.Body, env); ret {
				ex.sink.StructExit()
				return ret, v
			}
		}
		ex.sink.StructExit()
		return false, 0
	}
	panic(fmt.Sprintf("interp: unknown statement %T", s))
}

func truthy(v int64) bool { return v != 0 }

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (ex *executor) eval(e lang.Expr, env *scope) int64 {
	switch e := e.(type) {
	case *lang.IntLit:
		return e.Value
	case *lang.AnyLit:
		return int64(trace.AnySource)
	case *lang.Ident:
		switch e.Name {
		case "rank":
			return int64(ex.rank.ID())
		case "size":
			return int64(ex.rank.Size())
		}
		sc, ok := env.lookup(e.Name)
		if !ok {
			panic(fmt.Sprintf("interp: undeclared variable %q", e.Name))
		}
		return sc.vars[e.Name]
	case *lang.UnaryExpr:
		v := ex.eval(e.X, env)
		if e.Neg {
			return -v
		}
		return boolToInt(v == 0)
	case *lang.BinaryExpr:
		l := ex.eval(e.L, env)
		r := ex.eval(e.R, env)
		switch e.Op {
		case lang.OpAdd:
			return l + r
		case lang.OpSub:
			return l - r
		case lang.OpMul:
			return l * r
		case lang.OpDiv:
			if r == 0 {
				panic(fmt.Sprintf("interp: %s: division by zero", e.Pos()))
			}
			return l / r
		case lang.OpMod:
			if r == 0 {
				panic(fmt.Sprintf("interp: %s: modulo by zero", e.Pos()))
			}
			return l % r
		case lang.OpLt:
			return boolToInt(l < r)
		case lang.OpGt:
			return boolToInt(l > r)
		case lang.OpLe:
			return boolToInt(l <= r)
		case lang.OpGe:
			return boolToInt(l >= r)
		case lang.OpEq:
			return boolToInt(l == r)
		case lang.OpNe:
			return boolToInt(l != r)
		case lang.OpAnd:
			return boolToInt(truthy(l) && truthy(r))
		case lang.OpOr:
			return boolToInt(truthy(l) || truthy(r))
		}
		panic(fmt.Sprintf("interp: unknown operator %v", e.Op))
	case *lang.CallExpr:
		return ex.call(e, env)
	}
	panic(fmt.Sprintf("interp: unknown expression %T", e))
}

func (ex *executor) call(e *lang.CallExpr, env *scope) int64 {
	args := make([]int64, len(e.Args))
	for i, a := range e.Args {
		args[i] = ex.eval(a, env)
	}
	if lang.IsIntrinsic(e.Name) {
		return ex.intrinsic(e, args)
	}
	fn := ex.prog.ByName[e.Name]
	if fn == nil {
		panic(fmt.Sprintf("interp: call to undefined %q", e.Name))
	}
	ex.sink.CallEnter(int32(e.ID()))
	v := ex.callUser(fn, args)
	ex.sink.StructExit()
	return v
}

const maxMsgSize = 1 << 30

func (ex *executor) msgSize(e *lang.CallExpr, v int64) int {
	if v < 0 || v > maxMsgSize {
		panic(fmt.Sprintf("interp: %s: message size %d out of range", e.Pos(), v))
	}
	return int(v)
}

func (ex *executor) intrinsic(e *lang.CallExpr, args []int64) int64 {
	r := ex.rank
	if lang.IsCommIntrinsic(e.Name) {
		ex.sink.CommSite(int32(e.ID()))
	}
	switch e.Name {
	case "send":
		r.Send(int(args[0]), ex.msgSize(e, args[1]), int(args[2]))
	case "recv":
		r.Recv(int(args[0]), ex.msgSize(e, args[1]), int(args[2]))
	case "isend":
		req := r.Isend(int(args[0]), ex.msgSize(e, args[1]), int(args[2]))
		ex.reqs[int64(req.ID)] = req
		return int64(req.ID)
	case "irecv":
		req := r.Irecv(int(args[0]), ex.msgSize(e, args[1]), int(args[2]))
		ex.reqs[int64(req.ID)] = req
		return int64(req.ID)
	case "wait":
		req, ok := ex.reqs[args[0]]
		if !ok {
			panic(fmt.Sprintf("interp: %s: wait on unknown request %d", e.Pos(), args[0]))
		}
		r.Wait(req)
		delete(ex.reqs, args[0])
	case "waitall":
		r.Waitall()
		clear(ex.reqs)
	case "waitsome":
		return int64(r.Waitsome())
	case "testany":
		return int64(r.Testany())
	case "barrier":
		r.Barrier()
	case "bcast":
		r.Bcast(int(args[0]), ex.msgSize(e, args[1]))
	case "reduce":
		r.Reduce(int(args[0]), ex.msgSize(e, args[1]))
	case "allreduce":
		r.Allreduce(ex.msgSize(e, args[0]))
	case "gather":
		r.Gather(int(args[0]), ex.msgSize(e, args[1]))
	case "scatter":
		r.Scatter(int(args[0]), ex.msgSize(e, args[1]))
	case "allgather":
		r.Allgather(ex.msgSize(e, args[0]))
	case "alltoall":
		r.Alltoall(ex.msgSize(e, args[0]))
	case "compute":
		if args[0] < 0 {
			panic(fmt.Sprintf("interp: %s: negative compute time %d", e.Pos(), args[0]))
		}
		r.Compute(float64(args[0]))
	case "min":
		if args[0] < args[1] {
			return args[0]
		}
		return args[1]
	case "max":
		if args[0] > args[1] {
			return args[0]
		}
		return args[1]
	case "log2":
		if args[0] < 1 {
			panic(fmt.Sprintf("interp: %s: log2 of %d", e.Pos(), args[0]))
		}
		return int64(bits.Len64(uint64(args[0])) - 1)
	default:
		panic(fmt.Sprintf("interp: unknown intrinsic %q", e.Name))
	}
	return 0
}
