package interp

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/mpisim"
	"repro/internal/trace"
)

// markerSink records both structure markers and events as a flat script, so
// tests can assert the exact instrumentation protocol.
type markerSink struct {
	script []string
}

func (m *markerSink) LoopEnter(site int32) { m.script = append(m.script, fmt.Sprintf("L+%d", site)) }
func (m *markerSink) LoopIter(site int32)  { m.script = append(m.script, fmt.Sprintf("I%d", site)) }
func (m *markerSink) BranchEnter(site int32, a int8) {
	m.script = append(m.script, fmt.Sprintf("B+%d/%d", site, a))
}
func (m *markerSink) BranchSkip(site int32) { m.script = append(m.script, fmt.Sprintf("B0%d", site)) }
func (m *markerSink) CallEnter(site int32)  { m.script = append(m.script, fmt.Sprintf("C+%d", site)) }
func (m *markerSink) StructExit()           { m.script = append(m.script, "X") }
func (m *markerSink) CommSite(int32)        {}
func (m *markerSink) Event(e *trace.Event)  { m.script = append(m.script, e.Op.String()) }
func (m *markerSink) Finalize()             { m.script = append(m.script, "FIN") }

func runMarked(t *testing.T, src string, n int) []*markerSink {
	t.Helper()
	sinks := make([]trace.Sink, n)
	ms := make([]*markerSink, n)
	for i := range sinks {
		ms[i] = &markerSink{}
		sinks[i] = ms[i]
	}
	if _, err := RunProgram(src, n, mpisim.Params{}, sinks); err != nil {
		t.Fatalf("RunProgram: %v", err)
	}
	return ms
}

func countOf(script []string, tok string) int {
	n := 0
	for _, s := range script {
		if s == tok {
			n++
		}
	}
	return n
}

func TestLoopMarkerProtocol(t *testing.T) {
	ms := runMarked(t, `
func main() {
	for var i = 0; i < 3; i = i + 1 {
		barrier();
	}
}`, 1)
	script := strings.Join(ms[0].script, " ")
	// Init, LoopEnter, 3x (Iter Barrier), Exit, Finalize event + FIN.
	want := "MPI_Init L+"
	if !strings.HasPrefix(script, "MPI_Init L") {
		t.Fatalf("script = %s (want prefix %q)", script, want)
	}
	if got := countOf(ms[0].script, "MPI_Barrier"); got != 3 {
		t.Fatalf("barriers = %d", got)
	}
	iters := 0
	for _, s := range ms[0].script {
		if strings.HasPrefix(s, "I") {
			iters++
		}
	}
	if iters != 3 {
		t.Fatalf("loop iters = %d, want 3", iters)
	}
	if got := countOf(ms[0].script, "X"); got != 1 {
		t.Fatalf("struct exits = %d, want 1", got)
	}
}

func TestZeroIterationLoopStillBracketted(t *testing.T) {
	ms := runMarked(t, `
func main() {
	for var i = 0; i < 0; i = i + 1 {
		barrier();
	}
	allreduce(8);
}`, 1)
	s := ms[0].script
	// LoopEnter immediately followed by StructExit, no iterations.
	joined := strings.Join(s, " ")
	if !strings.Contains(joined, "L+") || countOf(s, "X") != 1 {
		t.Fatalf("script = %v", s)
	}
	for _, tok := range s {
		if strings.HasPrefix(tok, "I") && tok != "MPI_Init" {
			t.Fatalf("unexpected iteration marker in %v", s)
		}
	}
	if countOf(s, "MPI_Allreduce") != 1 {
		t.Fatalf("allreduce missing: %v", s)
	}
}

func TestBranchMarkersAndSkip(t *testing.T) {
	ms := runMarked(t, `
func main() {
	for var i = 0; i < 4; i = i + 1 {
		if i % 2 == 0 {
			barrier();
		}
	}
}`, 1)
	s := ms[0].script
	taken, skipped := 0, 0
	for _, tok := range s {
		if strings.HasPrefix(tok, "B+") {
			taken++
		}
		if strings.HasPrefix(tok, "B0") {
			skipped++
		}
	}
	if taken != 2 || skipped != 2 {
		t.Fatalf("taken=%d skipped=%d script=%v", taken, skipped, s)
	}
}

func TestElseArmMarker(t *testing.T) {
	ms := runMarked(t, `
func main() {
	if rank == 0 { barrier(); } else { barrier(); }
}`, 2)
	if !strings.Contains(strings.Join(ms[0].script, " "), "/0") {
		t.Fatalf("rank 0 should take arm 0: %v", ms[0].script)
	}
	if !strings.Contains(strings.Join(ms[1].script, " "), "/1") {
		t.Fatalf("rank 1 should take arm 1: %v", ms[1].script)
	}
}

func TestCallMarkersBracketBody(t *testing.T) {
	ms := runMarked(t, `
func main() { f(); }
func f() { barrier(); }`, 1)
	joined := strings.Join(ms[0].script, " ")
	if !strings.Contains(joined, "C+") {
		t.Fatalf("no call marker: %v", ms[0].script)
	}
	// MPI_Barrier must appear between C+ and the matching X.
	var ci, bi int
	for i, tok := range ms[0].script {
		if strings.HasPrefix(tok, "C+") {
			ci = i
		}
		if tok == "MPI_Barrier" {
			bi = i
		}
	}
	if bi < ci {
		t.Fatalf("event outside call bracket: %v", ms[0].script)
	}
}

func TestMarkersBalanced(t *testing.T) {
	ms := runMarked(t, `
func main() {
	for var i = 0; i < 3; i = i + 1 {
		if i == 1 { f(i); } else { barrier(); }
	}
}
func f(n) {
	while n > 0 {
		barrier();
		n = n - 1;
	}
	if n == 0 { return; }
	barrier();
}`, 1)
	depth := 0
	for _, tok := range ms[0].script {
		if strings.HasPrefix(tok, "L+") || strings.HasPrefix(tok, "B+") || strings.HasPrefix(tok, "C+") {
			depth++
		}
		if tok == "X" {
			depth--
			if depth < 0 {
				t.Fatalf("unbalanced exits: %v", ms[0].script)
			}
		}
	}
	if depth != 0 {
		t.Fatalf("depth = %d at end: %v", depth, ms[0].script)
	}
}

func TestEarlyReturnUnwindsMarkers(t *testing.T) {
	ms := runMarked(t, `
func main() { f(); barrier(); }
func f() {
	for var i = 0; i < 10; i = i + 1 {
		if i == 2 { return; }
		barrier();
	}
}`, 1)
	// Loop iterated 3 times (i=0,1,2) then returned.
	iters := 0
	depth := 0
	for _, tok := range ms[0].script {
		if strings.HasPrefix(tok, "I") && tok != "MPI_Init" {
			iters++
		}
		if strings.HasPrefix(tok, "L+") || strings.HasPrefix(tok, "B+") || strings.HasPrefix(tok, "C+") {
			depth++
		}
		if tok == "X" {
			depth--
		}
	}
	if iters != 3 {
		t.Fatalf("iterations = %d, want 3: %v", iters, ms[0].script)
	}
	if depth != 0 {
		t.Fatalf("markers unbalanced after early return: %v", ms[0].script)
	}
	if countOf(ms[0].script, "MPI_Barrier") != 3 {
		t.Fatalf("barriers = %d, want 2 in loop + 1 after", countOf(ms[0].script, "MPI_Barrier"))
	}
}

func TestJacobiEndToEnd(t *testing.T) {
	src := `
func main() {
	for var k = 0; k < 5; k = k + 1 {
		if rank < size - 1 { send(rank + 1, 8000, 0); }
		if rank > 0 { recv(rank - 1, 8000, 0); }
		if rank > 0 { send(rank - 1, 8000, 0); }
		if rank < size - 1 { recv(rank + 1, 8000, 0); }
		compute(1000);
	}
	reduce(0, 8);
}`
	n := 8
	sinks := make([]trace.Sink, n)
	cols := make([]*trace.CollectorSink, n)
	for i := range sinks {
		cols[i] = &trace.CollectorSink{}
		sinks[i] = cols[i]
	}
	tot, err := RunProgram(src, n, mpisim.DefaultParams(), sinks)
	if err != nil {
		t.Fatal(err)
	}
	if tot <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	// Interior ranks: Init + 5*(2 sends + 2 recvs) + reduce + finalize = 23.
	if got := len(cols[3].Events); got != 23 {
		t.Fatalf("interior rank events = %d, want 23", got)
	}
	// Boundary ranks: Init + 5*(1 send + 1 recv) + reduce + finalize = 13.
	if got := len(cols[0].Events); got != 13 {
		t.Fatalf("rank 0 events = %d, want 13", got)
	}
}

func TestRecursionExecution(t *testing.T) {
	ms := runMarked(t, `
func main() { f(3); }
func f(n) {
	if n == 0 { return; }
	bcast(0, 8);
	f(n - 1);
}`, 1)
	if got := countOf(ms[0].script, "MPI_Bcast"); got != 3 {
		t.Fatalf("bcasts = %d, want 3", got)
	}
}

func TestNonblockingAndRequestValues(t *testing.T) {
	src := `
func main() {
	var r1 = isend((rank + 1) % size, 64, 0);
	var r2 = irecv((rank + size - 1) % size, 64, 0);
	wait(r2);
	wait(r1);
}`
	n := 4
	sinks := make([]trace.Sink, n)
	cols := make([]*trace.CollectorSink, n)
	for i := range sinks {
		cols[i] = &trace.CollectorSink{}
		sinks[i] = cols[i]
	}
	if _, err := RunProgram(src, n, mpisim.Params{}, sinks); err != nil {
		t.Fatal(err)
	}
	ev := cols[0].Events
	// Init, Isend, Irecv, Wait, Wait, Finalize.
	ops := []trace.Op{trace.OpInit, trace.OpIsend, trace.OpIrecv, trace.OpWait, trace.OpWait, trace.OpFinalize}
	for i, op := range ops {
		if ev[i].Op != op {
			t.Fatalf("event %d = %v, want %v", i, ev[i].Op, op)
		}
	}
	if ev[3].Reqs[0] != 1 || ev[4].Reqs[0] != 0 {
		t.Fatalf("wait order wrong: %v %v", ev[3].Reqs, ev[4].Reqs)
	}
}

func TestWildcardProgram(t *testing.T) {
	src := `
func main() {
	if rank == 0 {
		for var i = 0; i < size - 1; i = i + 1 {
			recv(ANY, 32, 5);
		}
	} else {
		send(0, 32, 5);
	}
}`
	n := 5
	sinks := make([]trace.Sink, n)
	cols := make([]*trace.CollectorSink, n)
	for i := range sinks {
		cols[i] = &trace.CollectorSink{}
		sinks[i] = cols[i]
	}
	if _, err := RunProgram(src, n, mpisim.Params{}, sinks); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, e := range cols[0].Events {
		if e.Op == trace.OpRecv {
			if !e.Wildcard {
				t.Fatal("wildcard flag lost")
			}
			seen[e.Peer] = true
		}
	}
	if len(seen) != n-1 {
		t.Fatalf("matched %d distinct sources, want %d", len(seen), n-1)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := map[string]string{
		`func main() { var x = 1 / (rank - rank); compute(x); }`: "division by zero",
		`func main() { var x = 1 % (rank * 0); compute(x); }`:    "modulo by zero",
		`func main() { send(0, 0 - 5, 0); }`:                     "size",
		`func main() { wait(42); }`:                              "unknown request",
		`func main() { var x = log2(0); compute(x); }`:           "log2",
	}
	for src, want := range cases {
		_, err := RunProgram(src, 1, mpisim.Params{}, nil)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("RunProgram(%q) err = %v, want %q", src, err, want)
		}
	}
}

func TestBuiltinHelpers(t *testing.T) {
	src := `
func main() {
	var a = min(3, 7) + max(3, 7) * 10 + log2(1024);
	if a != 3 + 70 + 10 { send(0, 0 - 1, 0); }
	compute(a);
}`
	if _, err := RunProgram(src, 1, mpisim.Params{}, nil); err != nil {
		t.Fatalf("helper arithmetic wrong: %v", err)
	}
}

func TestWhileLoopExecution(t *testing.T) {
	ms := runMarked(t, `
func main() {
	var l = 1;
	while l < size {
		allreduce(8);
		l = l * 2;
	}
}`, 8)
	if got := countOf(ms[0].script, "MPI_Allreduce"); got != 3 {
		t.Fatalf("allreduces = %d, want log2(8)=3", got)
	}
}

func TestParseErrorSurfaces(t *testing.T) {
	if _, err := RunProgram("func main( {", 1, mpisim.Params{}, nil); err == nil {
		t.Fatal("parse error not surfaced")
	}
	if _, err := RunProgram("func notmain() { }", 1, mpisim.Params{}, nil); err == nil {
		t.Fatal("check error not surfaced")
	}
}
