package ir

import (
	"fmt"
	"sort"

	"repro/internal/lang"
)

// Dominators computes the immediate-dominator tree of f using the
// Cooper-Harvey-Kennedy iterative algorithm. idom[entry] == entry.
func Dominators(f *Func) []int {
	n := len(f.Blocks)
	if n == 0 {
		return nil
	}
	// Reverse post-order.
	rpo := postOrder(f)
	for i, j := 0, len(rpo)-1; i < j; i, j = i+1, j-1 {
		rpo[i], rpo[j] = rpo[j], rpo[i]
	}
	rpoNum := make([]int, n)
	for i, b := range rpo {
		rpoNum[b.ID] = i
	}
	const undef = -1
	idom := make([]int, n)
	for i := range idom {
		idom[i] = undef
	}
	entry := f.Blocks[0]
	idom[entry.ID] = entry.ID

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			newIdom := undef
			for _, p := range b.Preds {
				if idom[p.ID] == undef {
					continue
				}
				if newIdom == undef {
					newIdom = p.ID
				} else {
					newIdom = intersect(p.ID, newIdom)
				}
			}
			if newIdom != undef && idom[b.ID] != newIdom {
				idom[b.ID] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// PostDominators computes immediate post-dominators over the reversed CFG
// with a virtual exit node. The returned slice has len(f.Blocks) entries;
// entry i holds the block ID of i's immediate post-dominator, or VirtualExit
// when the nearest post-dominator is the function exit itself. The CST
// builder uses this to validate branch join points.
func PostDominators(f *Func) []int {
	n := len(f.Blocks)
	if n == 0 {
		return nil
	}
	// Reverse graph: node n is the virtual exit; edges s->b for every CFG
	// edge b->s, plus exit->b for every Ret block.
	preds := make([][]int, n+1) // preds in the reverse graph = succs in CFG
	for _, b := range f.Blocks {
		if b.Term == nil {
			continue
		}
		ss := b.Term.successors()
		if len(ss) == 0 {
			preds[b.ID] = append(preds[b.ID], n)
		}
		for _, s := range ss {
			preds[b.ID] = append(preds[b.ID], s.ID)
		}
	}
	// Post-order of the reverse graph from the virtual exit.
	radj := make([][]int, n+1) // successors in the reverse graph = CFG preds
	for _, b := range f.Blocks {
		for _, p := range b.Preds {
			radj[b.ID] = append(radj[b.ID], p.ID)
		}
		if b.Term != nil && len(b.Term.successors()) == 0 {
			radj[n] = append(radj[n], b.ID)
		}
	}
	seen := make([]bool, n+1)
	var po []int
	var visit func(v int)
	visit = func(v int) {
		seen[v] = true
		for _, w := range radj[v] {
			if !seen[w] {
				visit(w)
			}
		}
		po = append(po, v)
	}
	visit(n)
	rpoNum := make([]int, n+1)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i := len(po) - 1; i >= 0; i-- {
		rpoNum[po[i]] = len(po) - 1 - i
	}
	const undef = -1
	ipdom := make([]int, n+1)
	for i := range ipdom {
		ipdom[i] = undef
	}
	ipdom[n] = n
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = ipdom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = ipdom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for i := len(po) - 1; i >= 0; i-- {
			v := po[i]
			if v == n {
				continue
			}
			newIpdom := undef
			for _, p := range preds[v] {
				if rpoNum[p] == -1 || ipdom[p] == undef {
					continue
				}
				if newIpdom == undef {
					newIpdom = p
				} else {
					newIpdom = intersect(p, newIpdom)
				}
			}
			if newIpdom != undef && ipdom[v] != newIpdom {
				ipdom[v] = newIpdom
				changed = true
			}
		}
	}
	return ipdom[:n]
}

// VirtualExit is the post-dominator ID representing the function exit.
// PostDominators returns it for blocks whose only post-dominator is the exit.
func VirtualExit(f *Func) int { return len(f.Blocks) }

// postOrder returns the blocks of f in CFG post-order from the entry.
func postOrder(f *Func) []*Block {
	seen := make([]bool, len(f.Blocks))
	var out []*Block
	var visit func(b *Block)
	visit = func(b *Block) {
		seen[b.ID] = true
		// Visit successors in reverse so the reverse post-order lists the
		// true arm / loop body before the false arm / loop exit, which keeps
		// derived orders (e.g. call-graph callee lists) in execution order.
		for i := len(b.Succs) - 1; i >= 0; i-- {
			if s := b.Succs[i]; !seen[s.ID] {
				visit(s)
			}
		}
		out = append(out, b)
	}
	if len(f.Blocks) > 0 {
		visit(f.Blocks[0])
	}
	return out
}

// dominates reports whether block a dominates block b under idom.
func dominates(idom []int, a, b int) bool {
	for {
		if b == a {
			return true
		}
		next := idom[b]
		if next == b {
			return false // reached entry
		}
		b = next
	}
}

// Loop is a natural loop discovered from a back edge.
type Loop struct {
	Header *Block
	// Blocks is the loop body including the header, sorted by block ID.
	Blocks []*Block
	// Site is the AST loop statement annotated on the header.
	Site lang.NodeID
}

// NaturalLoops finds all natural loops of f with the classic dominator-based
// back-edge algorithm (paper Algorithm 1 cites Muchnick). Back edges sharing
// a header are merged into a single loop.
func NaturalLoops(f *Func) []*Loop {
	idom := Dominators(f)
	bodies := map[*Block]map[*Block]bool{} // header -> member set
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if dominates(idom, s.ID, b.ID) {
				// b -> s is a back edge with header s.
				body := bodies[s]
				if body == nil {
					body = map[*Block]bool{s: true}
					bodies[s] = body
				}
				collectNaturalLoop(body, b, s)
			}
		}
	}
	var loops []*Loop
	for header, body := range bodies {
		l := &Loop{Header: header, Site: header.LoopSite}
		for blk := range body {
			l.Blocks = append(l.Blocks, blk)
		}
		sort.Slice(l.Blocks, func(i, j int) bool { return l.Blocks[i].ID < l.Blocks[j].ID })
		loops = append(loops, l)
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Header.ID < loops[j].Header.ID })
	return loops
}

// collectNaturalLoop walks predecessors from the back-edge source n until
// reaching the header h, adding every block on the way.
func collectNaturalLoop(body map[*Block]bool, n, h *Block) {
	if body[n] {
		return
	}
	body[n] = true
	var stack []*Block
	stack = append(stack, n)
	for len(stack) > 0 {
		m := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range m.Preds {
			if !body[p] {
				body[p] = true
				stack = append(stack, p)
			}
		}
	}
	_ = h // header is pre-seeded in body, bounding the walk
}

// VerifyLoopAnnotations cross-checks the dominator-based loop finder against
// the lowering annotations: every annotated loop header must be discovered
// with exactly its annotation, and no unannotated loops may exist (MPL has
// no goto, so all loops are structured). This is a safety net for the static
// analysis, mirroring how the paper trusts LLVM's LoopInfo.
func VerifyLoopAnnotations(f *Func) error {
	loops := NaturalLoops(f)
	found := map[lang.NodeID]bool{}
	for _, l := range loops {
		if l.Site == lang.NoNode {
			return fmt.Errorf("ir: %s: natural loop at b%d has no source annotation", f.Name, l.Header.ID)
		}
		if found[l.Site] {
			return fmt.Errorf("ir: %s: loop site %d discovered twice", f.Name, l.Site)
		}
		found[l.Site] = true
	}
	for _, b := range f.Blocks {
		if b.LoopSite != lang.NoNode && !found[b.LoopSite] {
			// A loop whose body is statically unreachable can drop its back
			// edge; MPL lowering always emits one, so this is an error.
			return fmt.Errorf("ir: %s: annotated loop @%d not found by dominator analysis", f.Name, b.LoopSite)
		}
	}
	return nil
}

// CallGraph is the program call graph (PCG) over user-defined functions.
type CallGraph struct {
	// Callees maps a function to the user functions it may invoke
	// (deduplicated, in first-call order).
	Callees map[string][]string
}

// BuildCallGraph constructs the PCG from call instructions.
func BuildCallGraph(p *Program) *CallGraph {
	cg := &CallGraph{Callees: map[string][]string{}}
	for _, f := range p.Funcs {
		seen := map[string]bool{}
		cg.Callees[f.Name] = nil
		rpo := postOrder(f)
		for i, j := 0, len(rpo)-1; i < j; i, j = i+1, j-1 {
			rpo[i], rpo[j] = rpo[j], rpo[i]
		}
		for _, b := range rpo {
			for _, in := range b.Instrs {
				call, ok := in.(*CallInstr)
				if !ok {
					continue
				}
				if _, user := p.ByName[call.Callee]; user && !seen[call.Callee] {
					seen[call.Callee] = true
					cg.Callees[f.Name] = append(cg.Callees[f.Name], call.Callee)
				}
			}
		}
	}
	return cg
}

// PostOrderFrom returns functions reachable from root in PCG post-order
// (callees before callers), the traversal order Algorithm 2 uses for its
// bottom-up inlining. Cycles (recursion) are broken at the first repeated
// visit.
func (cg *CallGraph) PostOrderFrom(root string) []string {
	var out []string
	seen := map[string]bool{}
	var visit func(name string)
	visit = func(name string) {
		seen[name] = true
		for _, c := range cg.Callees[name] {
			if !seen[c] {
				visit(c)
			}
		}
		out = append(out, name)
	}
	visit(root)
	return out
}
