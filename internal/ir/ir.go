// Package ir lowers MPL ASTs to a control-flow-graph intermediate
// representation and provides the classic analyses CYPRESS's static module
// runs at the LLVM IR level in the paper: dominator computation, natural
// loop identification (the "classic dominator-based algorithm" of
// Algorithm 1), and program call-graph construction for the bottom-up
// inter-procedural pass (Algorithm 2).
//
// Only control structure and invocation sites matter to the trace
// compressor, so instructions carry call sites and AST references rather
// than a full value language.
package ir

import (
	"fmt"
	"strings"

	"repro/internal/lang"
)

// Func is one procedure in CFG form. Blocks[0] is the entry block.
type Func struct {
	Name   string
	Decl   *lang.FuncDecl
	Blocks []*Block
}

// Block is a basic block.
type Block struct {
	ID     int
	Instrs []Instr
	Term   Terminator
	Preds  []*Block
	Succs  []*Block

	// LoopSite is the AST node of the loop statement when this block is
	// the lowered loop header, lang.NoNode otherwise. Used to cross-check
	// the dominator-based loop finder against source structure.
	LoopSite lang.NodeID
}

// Instr is a non-terminator instruction.
type Instr interface {
	instr()
	String() string
}

// CallInstr is an invocation of a user-defined function or an intrinsic.
// Calls embedded in expressions are hoisted in evaluation order, so every
// invocation in the program is visible as a discrete instruction, matching
// Algorithm 1's "for all invocation i ∈ n".
type CallInstr struct {
	Callee string
	Site   lang.NodeID // the lang.CallExpr node
	NArgs  int
}

func (*CallInstr) instr() {}
func (c *CallInstr) String() string {
	return fmt.Sprintf("call %s/%d @%d", c.Callee, c.NArgs, c.Site)
}

// OpInstr stands for straight-line computation (assignments, declarations)
// that the trace compressor never inspects.
type OpInstr struct {
	Site lang.NodeID
}

func (*OpInstr) instr()           {}
func (o *OpInstr) String() string { return fmt.Sprintf("op @%d", o.Site) }

// Terminator ends a basic block.
type Terminator interface {
	term()
	String() string
	successors() []*Block
}

// Jump transfers unconditionally.
type Jump struct {
	Target *Block
}

func (*Jump) term()                  {}
func (j *Jump) String() string       { return fmt.Sprintf("jump b%d", j.Target.ID) }
func (j *Jump) successors() []*Block { return []*Block{j.Target} }

// CondBr transfers on a condition. Site identifies the source construct:
// the lang.IfStmt for branches, the lang.ForStmt/WhileStmt for loop headers.
type CondBr struct {
	Site        lang.NodeID
	True, False *Block
	IsLoopCond  bool
}

func (*CondBr) term() {}
func (c *CondBr) String() string {
	kind := "br"
	if c.IsLoopCond {
		kind = "loopbr"
	}
	return fmt.Sprintf("%s @%d b%d b%d", kind, c.Site, c.True.ID, c.False.ID)
}
func (c *CondBr) successors() []*Block { return []*Block{c.True, c.False} }

// Ret leaves the function.
type Ret struct{}

func (*Ret) term()                {}
func (*Ret) String() string       { return "ret" }
func (*Ret) successors() []*Block { return nil }

// Program is the IR for a whole MPL program.
type Program struct {
	Funcs  []*Func
	ByName map[string]*Func
	Source *lang.Program
}

// String renders the CFG for debugging.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s:\n", f.Name)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "  b%d:", blk.ID)
		if blk.LoopSite != lang.NoNode {
			fmt.Fprintf(&b, " (loop header @%d)", blk.LoopSite)
		}
		b.WriteByte('\n')
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "    %s\n", in.String())
		}
		if blk.Term != nil {
			fmt.Fprintf(&b, "    %s\n", blk.Term.String())
		}
	}
	return b.String()
}

// computeEdges fills Preds/Succs from terminators.
func (f *Func) computeEdges() {
	for _, b := range f.Blocks {
		b.Preds, b.Succs = nil, nil
	}
	for _, b := range f.Blocks {
		if b.Term == nil {
			continue
		}
		for _, s := range b.Term.successors() {
			b.Succs = append(b.Succs, s)
			s.Preds = append(s.Preds, b)
		}
	}
}

// reachableOnly removes blocks unreachable from the entry (e.g. code after
// return) and recomputes edges and IDs.
func (f *Func) reachableOnly() {
	if len(f.Blocks) == 0 {
		return
	}
	seen := map[*Block]bool{}
	var stack []*Block
	stack = append(stack, f.Blocks[0])
	seen[f.Blocks[0]] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b.Term == nil {
			continue
		}
		for _, s := range b.Term.successors() {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	var kept []*Block
	for _, b := range f.Blocks {
		if seen[b] {
			b.ID = len(kept)
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	f.computeEdges()
}
