package ir

import (
	"strings"
	"testing"

	"repro/internal/lang"
)

func lower(t *testing.T, src string) *Program {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := lang.Check(ast); err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := Lower(ast)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

const fig5Src = `
func main() {
	for var i = 0; i < 4; i = i + 1 {
		if rank % 2 == 0 {
			send(rank + 1, 64, 0);
		} else {
			recv(rank - 1, 64, 0);
		}
		bar();
	}
	foo();
	if rank % 2 == 0 {
		reduce(0, 8);
	}
}
func bar() {
	for var k = 0; k < 3; k = k + 1 {
		bcast(0, 64);
	}
}
func foo() {
	var sum = 0;
	for var j = 0; j < 5; j = j + 1 {
		sum = sum + j;
	}
}
`

func TestLowerStraightLine(t *testing.T) {
	p := lower(t, `func main() { send(1, 8, 0); recv(1, 8, 0); }`)
	f := p.ByName["main"]
	if len(f.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1:\n%s", len(f.Blocks), f)
	}
	calls := collectCalls(f)
	if len(calls) != 2 || calls[0].Callee != "send" || calls[1].Callee != "recv" {
		t.Fatalf("calls = %v", calls)
	}
	if _, ok := f.Blocks[0].Term.(*Ret); !ok {
		t.Fatalf("entry must end in ret, got %v", f.Blocks[0].Term)
	}
}

func collectCalls(f *Func) []*CallInstr {
	var out []*CallInstr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*CallInstr); ok {
				out = append(out, c)
			}
		}
	}
	return out
}

func TestLowerIfElseShape(t *testing.T) {
	p := lower(t, `
func main() {
	if rank == 0 { send(1, 8, 0); } else { recv(0, 8, 0); }
	barrier();
}`)
	f := p.ByName["main"]
	// entry(condbr), then, else, join = 4 blocks.
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d:\n%s", len(f.Blocks), f)
	}
	cb, ok := f.Blocks[0].Term.(*CondBr)
	if !ok || cb.IsLoopCond {
		t.Fatalf("entry term = %v", f.Blocks[0].Term)
	}
	if cb.True == cb.False {
		t.Fatal("then and else arms must differ")
	}
	if len(NaturalLoops(f)) != 0 {
		t.Fatal("if/else must produce no loops")
	}
}

func TestLowerLoopShape(t *testing.T) {
	p := lower(t, `func main() { for var i = 0; i < 3; i = i + 1 { barrier(); } }`)
	f := p.ByName["main"]
	loops := NaturalLoops(f)
	if len(loops) != 1 {
		t.Fatalf("loops = %d:\n%s", len(loops), f)
	}
	l := loops[0]
	if l.Site == lang.NoNode {
		t.Fatal("loop lost its source annotation")
	}
	if l.Header.LoopSite != l.Site {
		t.Fatal("header annotation mismatch")
	}
	// Loop body must contain the header and the body block.
	if len(l.Blocks) < 2 {
		t.Fatalf("loop blocks = %d", len(l.Blocks))
	}
	if err := VerifyLoopAnnotations(f); err != nil {
		t.Fatal(err)
	}
}

func TestLowerNestedLoops(t *testing.T) {
	p := lower(t, `
func main() {
	for var i = 0; i < 3; i = i + 1 {
		bcast(0, 8);
		for var j = 0; j < i; j = j + 1 {
			var r1 = isend(rank + 1, 8, 0);
			var r2 = irecv(rank - 1, 8, 0);
			waitall();
			compute(r1 + r2);
		}
	}
}`)
	f := p.ByName["main"]
	loops := NaturalLoops(f)
	if len(loops) != 2 {
		t.Fatalf("loops = %d:\n%s", len(loops), f)
	}
	// The outer loop body must strictly contain the inner loop's blocks.
	outer, inner := loops[0], loops[1]
	if len(outer.Blocks) < len(inner.Blocks) {
		outer, inner = inner, outer
	}
	member := map[*Block]bool{}
	for _, b := range outer.Blocks {
		member[b] = true
	}
	for _, b := range inner.Blocks {
		if !member[b] {
			t.Fatalf("inner loop block b%d not inside outer loop", b.ID)
		}
	}
	if err := VerifyLoopAnnotations(f); err != nil {
		t.Fatal(err)
	}
}

func TestLowerWhile(t *testing.T) {
	p := lower(t, `
func main() {
	var l = 1;
	while l < size {
		send(rank + l, 8, 0);
		l = l * 2;
	}
}`)
	f := p.ByName["main"]
	if len(NaturalLoops(f)) != 1 {
		t.Fatalf("while loop not found:\n%s", f)
	}
	if err := VerifyLoopAnnotations(f); err != nil {
		t.Fatal(err)
	}
}

func TestReturnPrunesUnreachable(t *testing.T) {
	p := lower(t, `
func main() { f(); }
func f() {
	if rank == 0 { return; }
	barrier();
	return;
	send(1, 8, 0);
}`)
	f := p.ByName["f"]
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*CallInstr); ok && c.Callee == "send" {
				t.Fatal("unreachable call not pruned")
			}
		}
	}
	if err := VerifyLoopAnnotations(f); err != nil {
		t.Fatal(err)
	}
}

func TestCallsHoistedInEvaluationOrder(t *testing.T) {
	p := lower(t, `
func main() { var x = g(h(1)) + h(2); compute(x); }
func g(a) { return a; }
func h(a) { return a; }`)
	calls := collectCalls(p.ByName["main"])
	var names []string
	for _, c := range calls {
		names = append(names, c.Callee)
	}
	want := "h g h compute"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("call order = %q, want %q", got, want)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	p := lower(t, `
func main() {
	if rank == 0 { barrier(); } else { barrier(); }
	barrier();
}`)
	f := p.ByName["main"]
	idom := Dominators(f)
	// Entry dominates everything; the join block's idom is the entry.
	entry := f.Blocks[0]
	cb := entry.Term.(*CondBr)
	join := cb.True.Term.(*Jump).Target
	if idom[join.ID] != entry.ID {
		t.Fatalf("idom[join]=%d want %d", idom[join.ID], entry.ID)
	}
	if idom[cb.True.ID] != entry.ID || idom[cb.False.ID] != entry.ID {
		t.Fatal("arms must be dominated directly by the entry")
	}
	for _, b := range f.Blocks {
		if !dominates(idom, entry.ID, b.ID) {
			t.Fatalf("entry must dominate b%d", b.ID)
		}
	}
}

func TestCallGraphAndPostOrder(t *testing.T) {
	p := lower(t, fig5Src)
	cg := BuildCallGraph(p)
	if got := cg.Callees["main"]; len(got) != 2 || got[0] != "bar" || got[1] != "foo" {
		t.Fatalf("main callees = %v", got)
	}
	if len(cg.Callees["bar"]) != 0 {
		t.Fatalf("bar callees = %v", cg.Callees["bar"])
	}
	po := cg.PostOrderFrom("main")
	if po[len(po)-1] != "main" {
		t.Fatalf("post order must end at main: %v", po)
	}
	pos := map[string]int{}
	for i, n := range po {
		pos[n] = i
	}
	if pos["bar"] > pos["main"] || pos["foo"] > pos["main"] {
		t.Fatalf("callees must precede callers: %v", po)
	}
}

func TestCallGraphRecursion(t *testing.T) {
	p := lower(t, `
func main() { f(3); }
func f(n) { if n > 0 { bcast(0, 8); f(n - 1); } }`)
	cg := BuildCallGraph(p)
	if got := cg.Callees["f"]; len(got) != 1 || got[0] != "f" {
		t.Fatalf("f callees = %v", got)
	}
	po := cg.PostOrderFrom("main")
	if len(po) != 2 || po[0] != "f" || po[1] != "main" {
		t.Fatalf("post order = %v", po)
	}
}

func TestVerifyAllNPBLikeShapes(t *testing.T) {
	// Mixed nesting: loop in branch, branch in loop, else-if chains.
	p := lower(t, `
func main() {
	if rank == 0 {
		for var i = 0; i < 3; i = i + 1 { send(1, 8, i); }
	} else if rank == 1 {
		for var i = 0; i < 3; i = i + 1 { recv(0, 8, i); }
	} else {
		while rank > size { barrier(); }
	}
	for var r = 0; r < 2; r = r + 1 {
		if r == 0 { allreduce(8); }
	}
}`)
	for _, f := range p.Funcs {
		if err := VerifyLoopAnnotations(f); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
	}
	loops := NaturalLoops(p.ByName["main"])
	if len(loops) != 4 {
		t.Fatalf("loops = %d, want 4", len(loops))
	}
}

func TestFuncString(t *testing.T) {
	p := lower(t, `func main() { for var i = 0; i < 2; i = i + 1 { barrier(); } }`)
	s := p.ByName["main"].String()
	for _, frag := range []string{"func main", "loop header", "call barrier", "loopbr", "ret"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() missing %q:\n%s", frag, s)
		}
	}
}
