package ir

import (
	"fmt"

	"repro/internal/lang"
)

// Lower translates a checked MPL program to CFG form.
func Lower(prog *lang.Program) (*Program, error) {
	out := &Program{ByName: map[string]*Func{}, Source: prog}
	for _, fd := range prog.Funcs {
		fn, err := lowerFunc(fd)
		if err != nil {
			return nil, err
		}
		out.Funcs = append(out.Funcs, fn)
		out.ByName[fn.Name] = fn
	}
	return out, nil
}

type lowerer struct {
	fn  *Func
	cur *Block
}

func lowerFunc(fd *lang.FuncDecl) (*Func, error) {
	l := &lowerer{fn: &Func{Name: fd.Name, Decl: fd}}
	entry := l.newBlock()
	l.cur = entry
	if err := l.block(fd.Body); err != nil {
		return nil, err
	}
	if l.cur.Term == nil {
		l.cur.Term = &Ret{}
	}
	l.fn.reachableOnly()
	return l.fn, nil
}

func (l *lowerer) newBlock() *Block {
	b := &Block{ID: len(l.fn.Blocks), LoopSite: lang.NoNode}
	l.fn.Blocks = append(l.fn.Blocks, b)
	return b
}

// emitCalls hoists every call in e into discrete CallInstrs, in left-to-right
// evaluation order (MPL evaluates eagerly, including both operands of && and
// ||, so evaluation order is the syntactic order).
func (l *lowerer) emitCalls(e lang.Expr) {
	switch e := e.(type) {
	case *lang.UnaryExpr:
		l.emitCalls(e.X)
	case *lang.BinaryExpr:
		l.emitCalls(e.L)
		l.emitCalls(e.R)
	case *lang.CallExpr:
		for _, a := range e.Args {
			l.emitCalls(a)
		}
		l.cur.Instrs = append(l.cur.Instrs, &CallInstr{Callee: e.Name, Site: e.ID(), NArgs: len(e.Args)})
	}
}

func (l *lowerer) block(b *lang.Block) error {
	for _, s := range b.Stmts {
		if l.cur.Term != nil {
			// Code after return: lower into a fresh unreachable block so the
			// structure is still well formed; reachableOnly prunes it.
			l.cur = l.newBlock()
		}
		if err := l.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (l *lowerer) stmt(s lang.Stmt) error {
	switch s := s.(type) {
	case *lang.VarStmt:
		l.emitCalls(s.Init)
		l.cur.Instrs = append(l.cur.Instrs, &OpInstr{Site: s.ID()})
		return nil
	case *lang.AssignStmt:
		l.emitCalls(s.Value)
		l.cur.Instrs = append(l.cur.Instrs, &OpInstr{Site: s.ID()})
		return nil
	case *lang.ExprStmt:
		l.emitCalls(s.X)
		return nil
	case *lang.ReturnStmt:
		if s.Value != nil {
			l.emitCalls(s.Value)
		}
		l.cur.Term = &Ret{}
		return nil
	case *lang.Block:
		return l.block(s)
	case *lang.IfStmt:
		return l.ifStmt(s)
	case *lang.ForStmt:
		return l.forStmt(s)
	case *lang.WhileStmt:
		return l.whileStmt(s)
	}
	return fmt.Errorf("ir: cannot lower %T", s)
}

func (l *lowerer) ifStmt(s *lang.IfStmt) error {
	l.emitCalls(s.Cond)
	condBlk := l.cur
	thenBlk := l.newBlock()
	var elseBlk *Block
	join := l.newBlock()

	l.cur = thenBlk
	if err := l.block(s.Then); err != nil {
		return err
	}
	if l.cur.Term == nil {
		l.cur.Term = &Jump{Target: join}
	}

	falseTarget := join
	if s.Else != nil {
		elseBlk = l.newBlock()
		falseTarget = elseBlk
		l.cur = elseBlk
		if err := l.stmt(s.Else); err != nil {
			return err
		}
		if l.cur.Term == nil {
			l.cur.Term = &Jump{Target: join}
		}
	}
	condBlk.Term = &CondBr{Site: s.ID(), True: thenBlk, False: falseTarget}
	l.cur = join
	return nil
}

func (l *lowerer) forStmt(s *lang.ForStmt) error {
	if s.Init != nil {
		if err := l.stmt(s.Init); err != nil {
			return err
		}
	}
	header := l.newBlock()
	header.LoopSite = s.ID()
	if l.cur.Term == nil {
		l.cur.Term = &Jump{Target: header}
	}
	body := l.newBlock()
	exit := l.newBlock()

	l.cur = header
	l.emitCalls(s.Cond)
	header.Term = &CondBr{Site: s.ID(), True: body, False: exit, IsLoopCond: true}

	l.cur = body
	if err := l.block(s.Body); err != nil {
		return err
	}
	if s.Post != nil && l.cur.Term == nil {
		if err := l.stmt(s.Post); err != nil {
			return err
		}
	}
	if l.cur.Term == nil {
		l.cur.Term = &Jump{Target: header} // back edge
	}
	l.cur = exit
	return nil
}

func (l *lowerer) whileStmt(s *lang.WhileStmt) error {
	header := l.newBlock()
	header.LoopSite = s.ID()
	if l.cur.Term == nil {
		l.cur.Term = &Jump{Target: header}
	}
	body := l.newBlock()
	exit := l.newBlock()

	l.cur = header
	l.emitCalls(s.Cond)
	header.Term = &CondBr{Site: s.ID(), True: body, False: exit, IsLoopCond: true}

	l.cur = body
	if err := l.block(s.Body); err != nil {
		return err
	}
	if l.cur.Term == nil {
		l.cur.Term = &Jump{Target: header}
	}
	l.cur = exit
	return nil
}
