package lang

import "fmt"

// NodeID identifies an AST node. IDs are assigned densely by the parser in
// creation order and are stable for a given source text; the instrumenter and
// the CST builder use them to link runtime structure markers to static
// vertices (the paper's PMPI_COMM_Structure id argument).
type NodeID int32

// NoNode marks the absence of a node reference.
const NoNode NodeID = -1

// Node is implemented by every AST node.
type Node interface {
	ID() NodeID
	Pos() Pos
}

type base struct {
	id  NodeID
	pos Pos
}

func (b base) ID() NodeID { return b.id }
func (b base) Pos() Pos   { return b.pos }

// Program is a whole MPL translation unit.
type Program struct {
	base
	Funcs []*FuncDecl
	// ByName indexes functions for call resolution.
	ByName map[string]*FuncDecl
	// NumNodes is one past the largest NodeID assigned.
	NumNodes int32
}

// FuncDecl is a function definition.
type FuncDecl struct {
	base
	Name   string
	Params []string
	Body   *Block
}

// Block is a brace-delimited statement list.
type Block struct {
	base
	Stmts []Stmt
}

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	stmt()
}

// VarStmt declares and initializes a variable: var x = expr;
type VarStmt struct {
	base
	Name string
	Init Expr
}

// AssignStmt assigns to an existing variable: x = expr;
type AssignStmt struct {
	base
	Name  string
	Value Expr
}

// IfStmt is a two-way branch; Else may be nil, a *Block, or another *IfStmt
// (else-if chains).
type IfStmt struct {
	base
	Cond Expr
	Then *Block
	Else Stmt
}

// ForStmt is a C-style loop: for init; cond; post { body }.
// Init and Post may be nil; Cond may be nil (infinite loop is rejected by
// the checker since MPL has no break).
type ForStmt struct {
	base
	Init Stmt // VarStmt or AssignStmt
	Cond Expr
	Post Stmt // AssignStmt
	Body *Block
}

// WhileStmt is a condition-controlled loop.
type WhileStmt struct {
	base
	Cond Expr
	Body *Block
}

// ReturnStmt exits the current function; Value may be nil.
type ReturnStmt struct {
	base
	Value Expr
}

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	base
	X Expr
}

func (*VarStmt) stmt()    {}
func (*AssignStmt) stmt() {}
func (*IfStmt) stmt()     {}
func (*ForStmt) stmt()    {}
func (*WhileStmt) stmt()  {}
func (*ReturnStmt) stmt() {}
func (*ExprStmt) stmt()   {}
func (*Block) stmt()      {}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	expr()
}

// IntLit is an integer literal.
type IntLit struct {
	base
	Value int64
}

// Ident references a variable (or the builtins rank/size).
type Ident struct {
	base
	Name string
}

// AnyLit is the ANY wildcard source literal.
type AnyLit struct {
	base
}

// BinOp enumerates binary operators.
type BinOp uint8

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpLt
	OpGt
	OpLe
	OpGe
	OpEq
	OpNe
	OpAnd
	OpOr
)

var binOpNames = [...]string{"+", "-", "*", "/", "%", "<", ">", "<=", ">=", "==", "!=", "&&", "||"}

func (op BinOp) String() string { return binOpNames[op] }

// BinaryExpr applies a binary operator. Logical && and || evaluate both
// operands eagerly (no short-circuit CFG edges), which keeps branch structure
// in the CST one-to-one with source if statements.
type BinaryExpr struct {
	base
	Op   BinOp
	L, R Expr
}

// UnaryExpr applies unary minus or logical not.
type UnaryExpr struct {
	base
	Neg bool // true: -x, false: !x
	X   Expr
}

// CallExpr invokes a user-defined function or an MPI/builtin intrinsic.
type CallExpr struct {
	base
	Name string
	Args []Expr
}

func (*IntLit) expr()     {}
func (*Ident) expr()      {}
func (*AnyLit) expr()     {}
func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}
func (*CallExpr) expr()   {}

// Intrinsic describes a builtin callable.
type Intrinsic struct {
	Name   string
	Arity  int
	IsComm bool // emits an MPI event
	HasRet bool // produces a value
}

// Intrinsics is the builtin table. Communication intrinsics mirror the MPI
// routines the paper's runtime intercepts; compute advances the synthetic
// compute clock; min/max/log2 are arithmetic helpers.
var Intrinsics = map[string]Intrinsic{
	"send":      {"send", 3, true, false},    // send(dest, bytes, tag)
	"recv":      {"recv", 3, true, false},    // recv(src|ANY, bytes, tag)
	"isend":     {"isend", 3, true, true},    // req = isend(dest, bytes, tag)
	"irecv":     {"irecv", 3, true, true},    // req = irecv(src|ANY, bytes, tag)
	"wait":      {"wait", 1, true, false},    // wait(req)
	"waitall":   {"waitall", 0, true, false}, // waits all pending requests
	"waitsome":  {"waitsome", 0, true, true}, // completes >=1 pending, returns count
	"testany":   {"testany", 0, true, true},  // completes <=1 pending, returns 0/1
	"barrier":   {"barrier", 0, true, false},
	"bcast":     {"bcast", 2, true, false},     // bcast(root, bytes)
	"reduce":    {"reduce", 2, true, false},    // reduce(root, bytes)
	"allreduce": {"allreduce", 1, true, false}, // allreduce(bytes)
	"gather":    {"gather", 2, true, false},
	"scatter":   {"scatter", 2, true, false},
	"allgather": {"allgather", 1, true, false},
	"alltoall":  {"alltoall", 1, true, false},
	"compute":   {"compute", 1, false, false}, // compute(ns)
	"min":       {"min", 2, false, true},
	"max":       {"max", 2, false, true},
	"log2":      {"log2", 1, false, true}, // floor(log2(x)), x >= 1
}

// IsIntrinsic reports whether name is a builtin.
func IsIntrinsic(name string) bool {
	_, ok := Intrinsics[name]
	return ok
}

// IsCommIntrinsic reports whether name is a communication intrinsic.
func IsCommIntrinsic(name string) bool {
	in, ok := Intrinsics[name]
	return ok && in.IsComm
}

// Error is a positioned front-end error.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
