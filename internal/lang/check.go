package lang

import "fmt"

// Check performs semantic analysis: name resolution, arity checking, builtin
// misuse detection, and recursion-cycle discovery (recursive functions are
// legal; the CST builder converts them to pseudo-loops per the paper).
// It returns the set of functions that participate in recursion cycles.
func Check(prog *Program) (recursive map[string]bool, err error) {
	if _, ok := prog.ByName["main"]; !ok {
		return nil, fmt.Errorf("program has no func main")
	}
	if n := len(prog.ByName["main"].Params); n != 0 {
		return nil, errf(prog.ByName["main"].Pos(), "func main must take no parameters, has %d", n)
	}
	for _, fn := range prog.Funcs {
		c := &checker{prog: prog, fn: fn}
		if err := c.checkFunc(); err != nil {
			return nil, err
		}
	}
	return findRecursive(prog), nil
}

// Predeclared read-only variables available in every function.
var predeclared = map[string]bool{"rank": true, "size": true}

type checker struct {
	prog   *Program
	fn     *FuncDecl
	scopes []map[string]bool
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]bool{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(pos Pos, name string) error {
	if predeclared[name] {
		return errf(pos, "cannot redeclare builtin variable %q", name)
	}
	top := c.scopes[len(c.scopes)-1]
	if top[name] {
		return errf(pos, "variable %q redeclared in this block", name)
	}
	top[name] = true
	return nil
}

func (c *checker) resolved(name string) bool {
	if predeclared[name] {
		return true
	}
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if c.scopes[i][name] {
			return true
		}
	}
	return false
}

func (c *checker) checkFunc() error {
	c.scopes = nil
	c.push()
	for _, prm := range c.fn.Params {
		if err := c.declare(c.fn.Pos(), prm); err != nil {
			return err
		}
	}
	return c.checkBlock(c.fn.Body)
}

func (c *checker) checkBlock(b *Block) error {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *VarStmt:
		if err := c.checkExpr(s.Init); err != nil {
			return err
		}
		return c.declare(s.Pos(), s.Name)
	case *AssignStmt:
		if predeclared[s.Name] {
			return errf(s.Pos(), "cannot assign to builtin variable %q", s.Name)
		}
		if !c.resolved(s.Name) {
			return errf(s.Pos(), "assignment to undeclared variable %q", s.Name)
		}
		return c.checkExpr(s.Value)
	case *IfStmt:
		if err := c.checkCond(s.Cond); err != nil {
			return err
		}
		if err := c.checkBlock(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkStmt(s.Else)
		}
		return nil
	case *ForStmt:
		c.push()
		defer c.pop()
		if s.Init != nil {
			if err := c.checkStmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond == nil {
			return errf(s.Pos(), "for loop without condition (MPL has no break)")
		}
		if err := c.checkCond(s.Cond); err != nil {
			return err
		}
		if s.Post != nil {
			if err := c.checkStmt(s.Post); err != nil {
				return err
			}
		}
		return c.checkBlock(s.Body)
	case *WhileStmt:
		if err := c.checkCond(s.Cond); err != nil {
			return err
		}
		return c.checkBlock(s.Body)
	case *ReturnStmt:
		if s.Value != nil {
			return c.checkExpr(s.Value)
		}
		return nil
	case *ExprStmt:
		return c.checkExpr(s.X)
	case *Block:
		return c.checkBlock(s)
	}
	return errf(s.Pos(), "unknown statement type %T", s)
}

func (c *checker) checkExpr(e Expr) error {
	switch e := e.(type) {
	case *IntLit:
		return nil
	case *AnyLit:
		return errf(e.Pos(), "ANY is only valid as the source argument of recv/irecv")
	case *Ident:
		if !c.resolved(e.Name) {
			if _, isFn := c.prog.ByName[e.Name]; isFn || IsIntrinsic(e.Name) {
				return errf(e.Pos(), "%q is a function; did you mean %s(...)?", e.Name, e.Name)
			}
			return errf(e.Pos(), "undeclared variable %q", e.Name)
		}
		return nil
	case *UnaryExpr:
		return c.checkExpr(e.X)
	case *BinaryExpr:
		if err := c.checkExpr(e.L); err != nil {
			return err
		}
		return c.checkExpr(e.R)
	case *CallExpr:
		return c.checkCall(e)
	}
	return errf(e.Pos(), "unknown expression type %T", e)
}

// checkCond checks a loop/branch condition. Conditions must be pure: they may
// not call user functions or side-effecting intrinsics (communication,
// compute), because conditions are re-evaluated outside the control
// structure's CST vertex and impure conditions would desynchronize the static
// structure tree from the runtime event stream.
func (c *checker) checkCond(e Expr) error {
	var impure error
	walkExprCalls(e, func(name string) {
		if impure != nil {
			return
		}
		in, ok := Intrinsics[name]
		if !ok || in.IsComm || name == "compute" {
			impure = errf(e.Pos(), "condition must be pure: call to %q not allowed here", name)
		}
	})
	if impure != nil {
		return impure
	}
	return c.checkExpr(e)
}

func (c *checker) checkCall(e *CallExpr) error {
	if in, ok := Intrinsics[e.Name]; ok {
		if len(e.Args) != in.Arity {
			return errf(e.Pos(), "%s takes %d argument(s), got %d", e.Name, in.Arity, len(e.Args))
		}
		for i, a := range e.Args {
			if _, isAny := a.(*AnyLit); isAny {
				wildOK := (e.Name == "recv" || e.Name == "irecv") && i == 0
				if !wildOK {
					return errf(a.Pos(), "ANY is only valid as the source argument of recv/irecv")
				}
				continue
			}
			if err := c.checkExpr(a); err != nil {
				return err
			}
		}
		return nil
	}
	callee, ok := c.prog.ByName[e.Name]
	if !ok {
		return errf(e.Pos(), "call to undefined function %q", e.Name)
	}
	if len(e.Args) != len(callee.Params) {
		return errf(e.Pos(), "%s takes %d argument(s), got %d", e.Name, len(callee.Params), len(e.Args))
	}
	for _, a := range e.Args {
		if err := c.checkExpr(a); err != nil {
			return err
		}
	}
	return nil
}

// findRecursive returns the functions on call-graph cycles (including
// self-recursion) via Tarjan's strongly connected components.
func findRecursive(prog *Program) map[string]bool {
	// Build adjacency: function -> called user functions.
	callees := map[string][]string{}
	for _, fn := range prog.Funcs {
		seen := map[string]bool{}
		walkCalls(fn.Body, func(name string) {
			if _, ok := prog.ByName[name]; ok && !seen[name] {
				seen[name] = true
				callees[fn.Name] = append(callees[fn.Name], name)
			}
		})
	}
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	rec := map[string]bool{}

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range callees[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				for _, w := range comp {
					rec[w] = true
				}
			} else {
				// Self-loop: v calls v directly.
				for _, w := range callees[v] {
					if w == v {
						rec[v] = true
					}
				}
			}
		}
	}
	for _, fn := range prog.Funcs {
		if _, seen := index[fn.Name]; !seen {
			strongconnect(fn.Name)
		}
	}
	return rec
}

// walkCalls visits every call-site name in a statement tree.
func walkCalls(s Stmt, f func(name string)) {
	switch s := s.(type) {
	case *Block:
		for _, st := range s.Stmts {
			walkCalls(st, f)
		}
	case *VarStmt:
		walkExprCalls(s.Init, f)
	case *AssignStmt:
		walkExprCalls(s.Value, f)
	case *IfStmt:
		walkExprCalls(s.Cond, f)
		walkCalls(s.Then, f)
		if s.Else != nil {
			walkCalls(s.Else, f)
		}
	case *ForStmt:
		if s.Init != nil {
			walkCalls(s.Init, f)
		}
		walkExprCalls(s.Cond, f)
		if s.Post != nil {
			walkCalls(s.Post, f)
		}
		walkCalls(s.Body, f)
	case *WhileStmt:
		walkExprCalls(s.Cond, f)
		walkCalls(s.Body, f)
	case *ReturnStmt:
		if s.Value != nil {
			walkExprCalls(s.Value, f)
		}
	case *ExprStmt:
		walkExprCalls(s.X, f)
	}
}

// WalkCallsInEvalOrder visits every call expression within e in evaluation
// order: arguments before the call that consumes them, left to right. This is
// the order the lowerer hoists call instructions and the order the
// interpreter executes them, so the CST builder uses it to lay out leaves.
func WalkCallsInEvalOrder(e Expr, f func(*CallExpr)) {
	switch e := e.(type) {
	case *UnaryExpr:
		WalkCallsInEvalOrder(e.X, f)
	case *BinaryExpr:
		WalkCallsInEvalOrder(e.L, f)
		WalkCallsInEvalOrder(e.R, f)
	case *CallExpr:
		for _, a := range e.Args {
			WalkCallsInEvalOrder(a, f)
		}
		f(e)
	}
}

func walkExprCalls(e Expr, f func(name string)) {
	switch e := e.(type) {
	case *UnaryExpr:
		walkExprCalls(e.X, f)
	case *BinaryExpr:
		walkExprCalls(e.L, f)
		walkExprCalls(e.R, f)
	case *CallExpr:
		f(e.Name)
		for _, a := range e.Args {
			walkExprCalls(a, f)
		}
	}
}
