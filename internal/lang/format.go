package lang

import (
	"fmt"
	"strings"
)

// Format pretty-prints a parsed program in canonical MPL style: tab
// indentation, one statement per line, minimal parentheses (re-inserted only
// where precedence requires them). Formatting a parse of the output yields
// the same AST shape, which the tests verify.
func Format(p *Program) string {
	f := &formatter{}
	for i, fn := range p.Funcs {
		if i > 0 {
			f.b.WriteByte('\n')
		}
		f.funcDecl(fn)
	}
	return f.b.String()
}

type formatter struct {
	b      strings.Builder
	indent int
}

func (f *formatter) line(s string) {
	f.b.WriteString(strings.Repeat("\t", f.indent))
	f.b.WriteString(s)
	f.b.WriteByte('\n')
}

func (f *formatter) funcDecl(fn *FuncDecl) {
	f.line(fmt.Sprintf("func %s(%s) {", fn.Name, strings.Join(fn.Params, ", ")))
	f.indent++
	f.stmts(fn.Body.Stmts)
	f.indent--
	f.line("}")
}

func (f *formatter) stmts(ss []Stmt) {
	for _, s := range ss {
		f.stmt(s)
	}
}

func (f *formatter) stmt(s Stmt) {
	switch s := s.(type) {
	case *VarStmt:
		f.line(fmt.Sprintf("var %s = %s;", s.Name, f.expr(s.Init, 0)))
	case *AssignStmt:
		f.line(fmt.Sprintf("%s = %s;", s.Name, f.expr(s.Value, 0)))
	case *ExprStmt:
		f.line(f.expr(s.X, 0) + ";")
	case *ReturnStmt:
		if s.Value != nil {
			f.line("return " + f.expr(s.Value, 0) + ";")
		} else {
			f.line("return;")
		}
	case *Block:
		f.line("{")
		f.indent++
		f.stmts(s.Stmts)
		f.indent--
		f.line("}")
	case *IfStmt:
		f.ifChain(s, "if ")
	case *ForStmt:
		head := "for "
		if s.Init != nil {
			head += f.simpleStmt(s.Init)
		}
		head += "; " + f.expr(s.Cond, 0) + ";"
		if s.Post != nil {
			head += " " + f.simpleStmt(s.Post)
		}
		f.line(head + " {")
		f.indent++
		f.stmts(s.Body.Stmts)
		f.indent--
		f.line("}")
	case *WhileStmt:
		f.line("while " + f.expr(s.Cond, 0) + " {")
		f.indent++
		f.stmts(s.Body.Stmts)
		f.indent--
		f.line("}")
	default:
		panic(fmt.Sprintf("lang: cannot format %T", s))
	}
}

// ifChain renders if/else-if/else chains without extra nesting.
func (f *formatter) ifChain(s *IfStmt, kw string) {
	f.line(kw + f.expr(s.Cond, 0) + " {")
	f.indent++
	f.stmts(s.Then.Stmts)
	f.indent--
	switch e := s.Else.(type) {
	case nil:
		f.line("}")
	case *IfStmt:
		// "} else if cond {" continuation.
		f.b.WriteString(strings.Repeat("\t", f.indent))
		f.b.WriteString("} else ")
		// Render the chained if without leading indentation.
		saved := f.b.Len()
		f.ifChain(e, "if ")
		// Splice: remove the duplicated indent the recursive call added.
		out := f.b.String()
		head := out[:saved]
		tail := strings.TrimPrefix(out[saved:], strings.Repeat("\t", f.indent))
		f.b.Reset()
		f.b.WriteString(head)
		f.b.WriteString(tail)
	case *Block:
		f.line("} else {")
		f.indent++
		f.stmts(e.Stmts)
		f.indent--
		f.line("}")
	default:
		panic(fmt.Sprintf("lang: cannot format else %T", s.Else))
	}
}

// simpleStmt renders a statement without indentation or trailing semicolon,
// for loop headers.
func (f *formatter) simpleStmt(s Stmt) string {
	switch s := s.(type) {
	case *VarStmt:
		return fmt.Sprintf("var %s = %s", s.Name, f.expr(s.Init, 0))
	case *AssignStmt:
		return fmt.Sprintf("%s = %s", s.Name, f.expr(s.Value, 0))
	case *ExprStmt:
		return f.expr(s.X, 0)
	}
	panic(fmt.Sprintf("lang: %T in loop header", s))
}

// binding powers mirror the parser's precedence table.
func exprPrec(e Expr) int {
	switch e := e.(type) {
	case *BinaryExpr:
		switch e.Op {
		case OpOr:
			return 1
		case OpAnd:
			return 2
		case OpEq, OpNe, OpLt, OpGt, OpLe, OpGe:
			return 3
		case OpAdd, OpSub:
			return 4
		default:
			return 5
		}
	case *UnaryExpr:
		return 6
	default:
		return 7
	}
}

// expr renders e, parenthesizing when its precedence is below min.
func (f *formatter) expr(e Expr, min int) string {
	var out string
	switch e := e.(type) {
	case *IntLit:
		out = fmt.Sprintf("%d", e.Value)
	case *AnyLit:
		out = "ANY"
	case *Ident:
		out = e.Name
	case *UnaryExpr:
		op := "!"
		if e.Neg {
			op = "-"
		}
		out = op + f.expr(e.X, exprPrec(e))
	case *BinaryExpr:
		p := exprPrec(e)
		// Left-associative: the right operand needs strictly higher binding.
		out = f.expr(e.L, p) + " " + e.Op.String() + " " + f.expr(e.R, p+1)
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = f.expr(a, 0)
		}
		out = e.Name + "(" + strings.Join(args, ", ") + ")"
	default:
		panic(fmt.Sprintf("lang: cannot format expr %T", e))
	}
	if exprPrec(e) < min {
		return "(" + out + ")"
	}
	return out
}
