package lang

import (
	"strings"
	"testing"
)

// shape builds a structural fingerprint of a program, used to prove that
// formatting preserves the AST (node IDs change; structure must not).
func shape(p *Program) string {
	var b strings.Builder
	var expr func(e Expr)
	var stmt func(s Stmt)
	expr = func(e Expr) {
		switch e := e.(type) {
		case *IntLit:
			b.WriteString("i")
		case *AnyLit:
			b.WriteString("A")
		case *Ident:
			b.WriteString("v" + e.Name)
		case *UnaryExpr:
			b.WriteString("u")
			expr(e.X)
		case *BinaryExpr:
			b.WriteString("(" + e.Op.String())
			expr(e.L)
			expr(e.R)
			b.WriteString(")")
		case *CallExpr:
			b.WriteString("c" + e.Name + "[")
			for _, a := range e.Args {
				expr(a)
			}
			b.WriteString("]")
		}
	}
	stmt = func(s Stmt) {
		switch s := s.(type) {
		case *Block:
			b.WriteString("{")
			for _, st := range s.Stmts {
				stmt(st)
			}
			b.WriteString("}")
		case *VarStmt:
			b.WriteString("V" + s.Name)
			expr(s.Init)
		case *AssignStmt:
			b.WriteString("=" + s.Name)
			expr(s.Value)
		case *ExprStmt:
			expr(s.X)
		case *ReturnStmt:
			b.WriteString("R")
			if s.Value != nil {
				expr(s.Value)
			}
		case *IfStmt:
			b.WriteString("I")
			expr(s.Cond)
			stmt(s.Then)
			if s.Else != nil {
				b.WriteString("E")
				stmt(s.Else)
			}
		case *ForStmt:
			b.WriteString("F")
			if s.Init != nil {
				stmt(s.Init)
			}
			expr(s.Cond)
			if s.Post != nil {
				stmt(s.Post)
			}
			stmt(s.Body)
		case *WhileStmt:
			b.WriteString("W")
			expr(s.Cond)
			stmt(s.Body)
		}
	}
	for _, fn := range p.Funcs {
		b.WriteString("f" + fn.Name + "(" + strings.Join(fn.Params, ",") + ")")
		stmt(fn.Body)
	}
	return b.String()
}

func assertStable(t *testing.T, src string) string {
	t.Helper()
	p1, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out := Format(p1)
	p2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse of formatted output: %v\n%s", err, out)
	}
	if shape(p1) != shape(p2) {
		t.Fatalf("formatting changed the AST:\noriginal: %s\nformatted: %s\noutput:\n%s",
			shape(p1), shape(p2), out)
	}
	// Idempotence.
	if again := Format(p2); again != out {
		t.Fatalf("formatting not idempotent:\nfirst:\n%s\nsecond:\n%s", out, again)
	}
	return out
}

func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{
		jacobiSrc,
		fig5Src,
		`func main() { var x = (1 + 2) * 3 - -4 / 5 % 6; compute(x); }`,
		`func main() { var b = !(1 < 2) && 3 >= 4 || 5 != 6; compute(b); }`,
		`func main() { if rank == 0 { barrier(); } else if rank == 1 { barrier(); } else { barrier(); } }`,
		`func main() { while 1 < 2 { barrier(); return; } }`,
		`func main() { recv(ANY, 8, 0); }`,
		`func main() { for ; rank < 0; { barrier(); } }`,
		`func f(a, b) { return a + b; } func main() { compute(f(1, 2)); }`,
	}
	for _, src := range srcs {
		assertStable(t, src)
	}
}

func TestFormatPreservesPrecedence(t *testing.T) {
	out := assertStable(t, `func main() { var x = (1 + 2) * 3; compute(x); }`)
	if !strings.Contains(out, "(1 + 2) * 3") {
		t.Fatalf("needed parens dropped:\n%s", out)
	}
	out = assertStable(t, `func main() { var x = 1 + (2 * 3); compute(x); }`)
	if strings.Contains(out, "(") && strings.Contains(out, "(2 * 3)") {
		t.Fatalf("redundant parens kept:\n%s", out)
	}
	// Left associativity: 10 - (3 - 2) must keep its parens.
	out = assertStable(t, `func main() { var x = 10 - (3 - 2); compute(x); }`)
	if !strings.Contains(out, "10 - (3 - 2)") {
		t.Fatalf("associativity parens dropped:\n%s", out)
	}
}

func TestFormatElseIfChainFlat(t *testing.T) {
	out := assertStable(t, `
func main() {
	if rank == 0 { barrier(); }
	else if rank == 1 { allreduce(8); }
	else { reduce(0, 8); }
}`)
	if !strings.Contains(out, "} else if rank == 1 {") {
		t.Fatalf("else-if not flattened:\n%s", out)
	}
}

func TestFormatAllWorkloadsStable(t *testing.T) {
	// Every built-in NPB source must survive format→reparse→format.
	// (Sources live in the npb package; spot-check with fig5+jacobi plus a
	// generated-style program with helpers and nested control flow.)
	assertStable(t, `
func main() {
	var px = 4;
	for var it = 0; it < 10; it = it + 1 {
		faces(rank / px, rank % px, px);
		if it % 2 == 0 { allreduce(8); }
	}
}
func faces(row, col, px) {
	if col < px - 1 { isend(row * px + col + 1, 100, 0); }
	if col > 0 { irecv(row * px + col - 1, 100, 0); }
	waitall();
}`)
}
