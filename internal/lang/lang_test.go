package lang

import (
	"strings"
	"testing"
)

const jacobiSrc = `
// Paper Figure 3: simplified Jacobi iteration.
func main() {
	for var k = 0; k < 10; k = k + 1 {
		if rank < size - 1 {
			send(rank + 1, 8000, 0);
		}
		if rank > 0 {
			recv(rank - 1, 8000, 0);
		}
		if rank > 0 {
			send(rank - 1, 8000, 0);
		}
		if rank < size - 1 {
			recv(rank + 1, 8000, 0);
		}
		compute(1000);
	}
}
`

const fig5Src = `
// Paper Figure 5: loop + branches + user functions.
func main() {
	for var i = 0; i < 4; i = i + 1 {
		if rank % 2 == 0 {
			send(rank + 1, 64, 0);
		} else {
			recv(rank - 1, 64, 0);
		}
		bar();
	}
	foo();
	if rank % 2 == 0 {
		reduce(0, 8);
	}
}
func bar() {
	for var k = 0; k < 3; k = k + 1 {
		bcast(0, 64);
	}
}
func foo() {
	var sum = 0;
	for var j = 0; j < 5; j = j + 1 {
		sum = sum + j;
	}
}
`

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("func main() { var x = 1 + 2; } // comment")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{KwFunc, IDENT, LParen, RParen, LBrace, KwVar, IDENT,
		Assign, INT, Plus, INT, Semicolon, RBrace, EOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i], k)
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	toks, err := Tokenize("<= >= == != && || ! < > = % ANY")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{Le, Ge, EqEq, NotEq, AndAnd, OrOr, Not, Lt, Gt, Assign, Percent, KwAny, EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i], k)
		}
	}
}

func TestTokenizeErrors(t *testing.T) {
	for _, src := range []string{"@", "&x", "|x", "#"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) should fail", src)
		}
	}
}

func TestTokenPositions(t *testing.T) {
	toks, err := Tokenize("func\n  main")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) || toks[1].Pos != (Pos{2, 3}) {
		t.Fatalf("positions: %v %v", toks[0].Pos, toks[1].Pos)
	}
}

func TestParseJacobi(t *testing.T) {
	prog := mustParse(t, jacobiSrc)
	if len(prog.Funcs) != 1 || prog.Funcs[0].Name != "main" {
		t.Fatalf("funcs = %v", prog.Funcs)
	}
	body := prog.Funcs[0].Body
	if len(body.Stmts) != 1 {
		t.Fatalf("main body stmts = %d", len(body.Stmts))
	}
	loop, ok := body.Stmts[0].(*ForStmt)
	if !ok {
		t.Fatalf("expected ForStmt, got %T", body.Stmts[0])
	}
	if len(loop.Body.Stmts) != 5 {
		t.Fatalf("loop body stmts = %d", len(loop.Body.Stmts))
	}
	if _, ok := loop.Body.Stmts[0].(*IfStmt); !ok {
		t.Fatalf("expected IfStmt, got %T", loop.Body.Stmts[0])
	}
}

func TestParseFig5(t *testing.T) {
	prog := mustParse(t, fig5Src)
	if len(prog.Funcs) != 3 {
		t.Fatalf("funcs = %d", len(prog.Funcs))
	}
	if _, err := Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
}

func TestNodeIDsDenseAndUnique(t *testing.T) {
	prog := mustParse(t, fig5Src)
	seen := map[NodeID]bool{}
	var walk func(n Node)
	var walkStmt func(s Stmt)
	var walkExpr func(e Expr)
	walk = func(n Node) {
		if n == nil {
			return
		}
		id := n.ID()
		if id < 0 || int32(id) >= prog.NumNodes {
			t.Fatalf("node id %d out of range [0,%d)", id, prog.NumNodes)
		}
		if seen[id] {
			t.Fatalf("duplicate node id %d", id)
		}
		seen[id] = true
	}
	walkExpr = func(e Expr) {
		if e == nil {
			return
		}
		walk(e)
		switch e := e.(type) {
		case *UnaryExpr:
			walkExpr(e.X)
		case *BinaryExpr:
			walkExpr(e.L)
			walkExpr(e.R)
		case *CallExpr:
			for _, a := range e.Args {
				walkExpr(a)
			}
		}
	}
	walkStmt = func(s Stmt) {
		if s == nil {
			return
		}
		walk(s)
		switch s := s.(type) {
		case *Block:
			for _, st := range s.Stmts {
				walkStmt(st)
			}
		case *VarStmt:
			walkExpr(s.Init)
		case *AssignStmt:
			walkExpr(s.Value)
		case *IfStmt:
			walkExpr(s.Cond)
			walkStmt(s.Then)
			walkStmt(s.Else)
		case *ForStmt:
			walkStmt(s.Init)
			walkExpr(s.Cond)
			walkStmt(s.Post)
			walkStmt(s.Body)
		case *WhileStmt:
			walkExpr(s.Cond)
			walkStmt(s.Body)
		case *ReturnStmt:
			walkExpr(s.Value)
		case *ExprStmt:
			walkExpr(s.X)
		}
	}
	walk(prog)
	for _, fn := range prog.Funcs {
		walk(fn)
		walkStmt(fn.Body)
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := mustParse(t, `func main() { var x = 1 + 2 * 3; if x == 7 { barrier(); } }`)
	v := prog.Funcs[0].Body.Stmts[0].(*VarStmt)
	add := v.Init.(*BinaryExpr)
	if add.Op != OpAdd {
		t.Fatalf("top op = %v", add.Op)
	}
	mul := add.R.(*BinaryExpr)
	if mul.Op != OpMul {
		t.Fatalf("right op = %v", mul.Op)
	}
}

func TestParseLeftAssociativity(t *testing.T) {
	prog := mustParse(t, `func main() { var x = 10 - 3 - 2; }`)
	v := prog.Funcs[0].Body.Stmts[0].(*VarStmt)
	outer := v.Init.(*BinaryExpr)
	if outer.Op != OpSub {
		t.Fatal("expected subtraction")
	}
	if _, ok := outer.L.(*BinaryExpr); !ok {
		t.Fatal("subtraction must be left-associative")
	}
	if lit, ok := outer.R.(*IntLit); !ok || lit.Value != 2 {
		t.Fatalf("right operand = %v", outer.R)
	}
}

func TestParseElseIfChain(t *testing.T) {
	prog := mustParse(t, `
func main() {
	if rank == 0 { barrier(); }
	else if rank == 1 { barrier(); }
	else { barrier(); }
}`)
	s := prog.Funcs[0].Body.Stmts[0].(*IfStmt)
	elseIf, ok := s.Else.(*IfStmt)
	if !ok {
		t.Fatalf("else-if not chained: %T", s.Else)
	}
	if _, ok := elseIf.Else.(*Block); !ok {
		t.Fatalf("final else wrong: %T", elseIf.Else)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`func main( { }`,
		`func main() { var = 3; }`,
		`func main() { if { } }`,
		`func main() { x = ; }`,
		`func main() { for var i = 0 i < 3; i = i + 1 { } }`,
		`func main() `,
		`func main() { var x = 99999999999999999999999; }`,
		`func main() { } func main() { }`,
		`func send() { }`,
		`func main() { else { } }`,
		`func main() { if 1 { } else barrier(); }`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	cases := map[string]string{
		`func notmain() { }`:                             "no func main",
		`func main(a) { }`:                               "must take no parameters",
		`func main() { x = 3; }`:                         "undeclared",
		`func main() { var x = y; }`:                     "undeclared",
		`func main() { var rank = 3; }`:                  "builtin",
		`func main() { rank = 3; }`:                      "builtin",
		`func main() { var x = 1; var x = 2; }`:          "redeclared",
		`func main() { send(1, 2); }`:                    "takes 3 argument",
		`func main() { foo(1); } func foo() { }`:         "takes 0 argument",
		`func main() { foo(); }`:                         "undefined function",
		`func main() { send(ANY, 8, 0); }`:               "ANY is only valid",
		`func main() { var x = ANY; }`:                   "ANY is only valid",
		`func main() { var x = send; }`:                  "is a function",
		`func main() { for ; 1 < 2; { barrier(); } }`:    "", // valid: no init/post
		`func main() { for var i = 0; ; i = i + 1 { } }`: "without condition",
	}
	for src, want := range cases {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		_, err = Check(prog)
		if want == "" {
			if err != nil {
				t.Errorf("Check(%q) unexpected error: %v", src, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("Check(%q) = %v, want error containing %q", src, err, want)
		}
	}
}

func TestCheckScoping(t *testing.T) {
	// Inner blocks may shadow; for-loop variables live in the loop scope
	// and may be redeclared by sibling loops.
	src := `
func main() {
	var x = 1;
	if x > 0 {
		var x = 2;
		compute(x);
	}
	for var i = 0; i < 2; i = i + 1 { compute(i); }
	for var i = 0; i < 2; i = i + 1 { compute(i); }
}`
	prog := mustParse(t, src)
	if _, err := Check(prog); err != nil {
		t.Fatalf("scoping rejected: %v", err)
	}
}

func TestCheckWildcardRecvAllowed(t *testing.T) {
	prog := mustParse(t, `func main() { recv(ANY, 8, 0); var r = irecv(ANY, 8, 0); wait(r); }`)
	if _, err := Check(prog); err != nil {
		t.Fatalf("wildcard recv rejected: %v", err)
	}
}

func TestRecursionDetection(t *testing.T) {
	src := `
func main() { f(3); g(2); solo(); }
func f(n) { if n > 0 { bcast(0, 8); f(n - 1); } }
func g(n) { h(n); }
func h(n) { if n > 0 { g(n - 1); } }
func solo() { barrier(); }
`
	prog := mustParse(t, src)
	rec, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]bool{"f": true, "g": true, "h": true, "solo": false, "main": false} {
		if rec[name] != want {
			t.Errorf("recursive[%q] = %v, want %v", name, rec[name], want)
		}
	}
}

func TestIntrinsicTable(t *testing.T) {
	if !IsIntrinsic("send") || !IsCommIntrinsic("alltoall") {
		t.Fatal("intrinsic lookup broken")
	}
	if IsCommIntrinsic("compute") || IsCommIntrinsic("min") {
		t.Fatal("compute/min must not be comm intrinsics")
	}
	if IsIntrinsic("nosuch") {
		t.Fatal("unknown intrinsic reported")
	}
	for name, in := range Intrinsics {
		if in.Name != name {
			t.Errorf("intrinsic %q has mismatched Name %q", name, in.Name)
		}
	}
}

func TestWhileLoop(t *testing.T) {
	prog := mustParse(t, `
func main() {
	var l = 1;
	while l < size {
		send(rank + l, 8, 0);
		l = l * 2;
	}
}`)
	if _, err := Check(prog); err != nil {
		t.Fatal(err)
	}
	if _, ok := prog.Funcs[0].Body.Stmts[1].(*WhileStmt); !ok {
		t.Fatal("expected WhileStmt")
	}
}

func TestUnaryAndLogic(t *testing.T) {
	prog := mustParse(t, `
func main() {
	var a = -3;
	var b = !(a > 0) && 1 <= 2 || a != 4;
	compute(b);
}`)
	if _, err := Check(prog); err != nil {
		t.Fatal(err)
	}
}
