package lang

import "fmt"

// Lexer turns MPL source text into tokens. Comments run from "//" to end of
// line. Whitespace is insignificant.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// Next returns the next token. At end of input it returns EOF tokens forever.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	pos := Pos{l.line, l.col}
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isDigit(c):
		start := l.off
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		return Token{Kind: INT, Lit: l.src[start:l.off], Pos: pos}, nil
	case isAlpha(c):
		start := l.off
		for l.off < len(l.src) && (isAlpha(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		word := l.src[start:l.off]
		if k, ok := keywords[word]; ok {
			return Token{Kind: k, Lit: word, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Lit: word, Pos: pos}, nil
	}
	l.advance()
	single := map[byte]Kind{
		'(': LParen, ')': RParen, '{': LBrace, '}': RBrace,
		',': Comma, ';': Semicolon, '+': Plus, '-': Minus,
		'*': Star, '/': Slash, '%': Percent,
	}
	if k, ok := single[c]; ok {
		return Token{Kind: k, Pos: pos}, nil
	}
	two := func(next byte, withKind, aloneKind Kind) (Token, error) {
		if l.peek() == next {
			l.advance()
			return Token{Kind: withKind, Pos: pos}, nil
		}
		if aloneKind == EOF {
			return Token{}, fmt.Errorf("%s: unexpected character %q", pos, string(c))
		}
		return Token{Kind: aloneKind, Pos: pos}, nil
	}
	switch c {
	case '=':
		return two('=', EqEq, Assign)
	case '<':
		return two('=', Le, Lt)
	case '>':
		return two('=', Ge, Gt)
	case '!':
		return two('=', NotEq, Not)
	case '&':
		return two('&', AndAnd, EOF)
	case '|':
		return two('|', OrOr, EOF)
	}
	return Token{}, fmt.Errorf("%s: unexpected character %q", pos, string(c))
}

// Tokenize lexes the whole input, for tests and tooling.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return out, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}
