package lang

import "strconv"

// Parser builds an AST from MPL source, assigning dense NodeIDs in creation
// order. It is a straightforward recursive-descent parser with one token of
// lookahead.
type Parser struct {
	lex    *Lexer
	tok    Token
	nextID NodeID
}

// Parse parses a complete MPL program.
func Parse(src string) (*Program, error) {
	p := &Parser{lex: NewLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{base: p.newBase(p.tok.Pos), ByName: map[string]*FuncDecl{}}
	for p.tok.Kind != EOF {
		fn, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		if _, dup := prog.ByName[fn.Name]; dup {
			return nil, errf(fn.Pos(), "function %q redeclared", fn.Name)
		}
		prog.Funcs = append(prog.Funcs, fn)
		prog.ByName[fn.Name] = fn
	}
	prog.NumNodes = int32(p.nextID)
	return prog, nil
}

func (p *Parser) newBase(pos Pos) base {
	b := base{id: p.nextID, pos: pos}
	p.nextID++
	return b
}

func (p *Parser) advance() error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, errf(p.tok.Pos, "expected %s, found %s", k, p.tok)
	}
	t := p.tok
	return t, p.advance()
}

func (p *Parser) parseFunc() (*FuncDecl, error) {
	kw, err := p.expect(KwFunc)
	if err != nil {
		return nil, err
	}
	fn := &FuncDecl{base: p.newBase(kw.Pos)}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	fn.Name = name.Lit
	if IsIntrinsic(fn.Name) {
		return nil, errf(name.Pos, "function %q shadows a builtin", fn.Name)
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	for p.tok.Kind != RParen {
		if len(fn.Params) > 0 {
			if _, err := p.expect(Comma); err != nil {
				return nil, err
			}
		}
		prm, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, prm.Lit)
	}
	if err := p.advance(); err != nil { // consume ')'
		return nil, err
	}
	fn.Body, err = p.parseBlock()
	return fn, err
}

func (p *Parser) parseBlock() (*Block, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	blk := &Block{base: p.newBase(lb.Pos)}
	for p.tok.Kind != RBrace {
		if p.tok.Kind == EOF {
			return nil, errf(p.tok.Pos, "unexpected EOF inside block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	return blk, p.advance()
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.tok.Kind {
	case KwVar:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(Semicolon)
		return s, err
	case KwIf:
		return p.parseIf()
	case KwFor:
		return p.parseFor()
	case KwWhile:
		return p.parseWhile()
	case KwReturn:
		kw := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		ret := &ReturnStmt{base: p.newBase(kw.Pos)}
		if p.tok.Kind != Semicolon {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ret.Value = v
		}
		_, err := p.expect(Semicolon)
		return ret, err
	case LBrace:
		return p.parseBlock()
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(Semicolon)
		return s, err
	}
}

// parseSimpleStmt parses var decls, assignments, and expression statements
// without consuming a trailing semicolon (for loop headers share it).
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	if p.tok.Kind == KwVar {
		kw := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Assign); err != nil {
			return nil, err
		}
		v := &VarStmt{base: p.newBase(kw.Pos), Name: name.Lit}
		v.Init, err = p.parseExpr()
		return v, err
	}
	// Distinguish `x = expr` from an expression statement: an IDENT followed
	// by '=' is an assignment (MPL has no other l-values).
	if p.tok.Kind == IDENT {
		name := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind == Assign {
			if err := p.advance(); err != nil {
				return nil, err
			}
			a := &AssignStmt{base: p.newBase(name.Pos), Name: name.Lit}
			var err error
			a.Value, err = p.parseExpr()
			return a, err
		}
		// Re-parse as an expression starting from the consumed identifier.
		x, err := p.parsePostfix(name)
		if err != nil {
			return nil, err
		}
		x, err = p.parseBinaryFrom(x, 0)
		if err != nil {
			return nil, err
		}
		return &ExprStmt{base: p.newBase(name.Pos), X: x}, nil
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{base: p.newBase(x.Pos()), X: x}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	kw := p.tok
	if err := p.advance(); err != nil {
		return nil, err
	}
	s := &IfStmt{base: p.newBase(kw.Pos)}
	var err error
	s.Cond, err = p.parseExpr()
	if err != nil {
		return nil, err
	}
	s.Then, err = p.parseBlock()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == KwElse {
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch p.tok.Kind {
		case KwIf:
			s.Else, err = p.parseIf()
		case LBrace:
			s.Else, err = p.parseBlock()
		default:
			return nil, errf(p.tok.Pos, "expected 'if' or block after 'else', found %s", p.tok)
		}
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	kw := p.tok
	if err := p.advance(); err != nil {
		return nil, err
	}
	s := &ForStmt{base: p.newBase(kw.Pos)}
	var err error
	if p.tok.Kind != Semicolon {
		s.Init, err = p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	if p.tok.Kind != Semicolon {
		s.Cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	if p.tok.Kind != LBrace {
		s.Post, err = p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
	}
	s.Body, err = p.parseBlock()
	return s, err
}

func (p *Parser) parseWhile() (Stmt, error) {
	kw := p.tok
	if err := p.advance(); err != nil {
		return nil, err
	}
	s := &WhileStmt{base: p.newBase(kw.Pos)}
	var err error
	s.Cond, err = p.parseExpr()
	if err != nil {
		return nil, err
	}
	s.Body, err = p.parseBlock()
	return s, err
}

// Operator precedence, loosest first: || < && < comparisons < + - < * / %.
func precedence(k Kind) (BinOp, int, bool) {
	switch k {
	case OrOr:
		return OpOr, 1, true
	case AndAnd:
		return OpAnd, 2, true
	case EqEq:
		return OpEq, 3, true
	case NotEq:
		return OpNe, 3, true
	case Lt:
		return OpLt, 3, true
	case Gt:
		return OpGt, 3, true
	case Le:
		return OpLe, 3, true
	case Ge:
		return OpGe, 3, true
	case Plus:
		return OpAdd, 4, true
	case Minus:
		return OpSub, 4, true
	case Star:
		return OpMul, 5, true
	case Slash:
		return OpDiv, 5, true
	case Percent:
		return OpMod, 5, true
	}
	return 0, 0, false
}

func (p *Parser) parseExpr() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return p.parseBinaryFrom(l, 0)
}

// parseBinaryFrom continues precedence-climbing with l as the left operand.
func (p *Parser) parseBinaryFrom(l Expr, minPrec int) (Expr, error) {
	for {
		op, prec, ok := precedence(p.tok.Kind)
		if !ok || prec < minPrec {
			return l, nil
		}
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Left associativity: bind tighter operators on the right first.
		for {
			_, nextPrec, ok2 := precedence(p.tok.Kind)
			if !ok2 || nextPrec <= prec {
				break
			}
			r, err = p.parseBinaryFrom(r, nextPrec)
			if err != nil {
				return nil, err
			}
		}
		l = &BinaryExpr{base: p.newBase(pos), Op: op, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.tok.Kind {
	case Minus:
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{base: p.newBase(pos), Neg: true, X: x}, nil
	case Not:
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{base: p.newBase(pos), Neg: false, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.tok.Kind {
	case INT:
		t := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			return nil, errf(t.Pos, "invalid integer literal %q", t.Lit)
		}
		return &IntLit{base: p.newBase(t.Pos), Value: v}, nil
	case KwAny:
		t := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &AnyLit{base: p.newBase(t.Pos)}, nil
	case IDENT:
		t := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.parsePostfix(t)
	case LParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(RParen)
		return x, err
	}
	return nil, errf(p.tok.Pos, "expected expression, found %s", p.tok)
}

// parsePostfix finishes an identifier that may be a call.
func (p *Parser) parsePostfix(name Token) (Expr, error) {
	if p.tok.Kind != LParen {
		return &Ident{base: p.newBase(name.Pos), Name: name.Lit}, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	call := &CallExpr{base: p.newBase(name.Pos), Name: name.Lit}
	for p.tok.Kind != RParen {
		if len(call.Args) > 0 {
			if _, err := p.expect(Comma); err != nil {
				return nil, err
			}
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, a)
	}
	return call, p.advance()
}
