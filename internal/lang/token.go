// Package lang implements MPL, a small C-like message-passing language used
// as the source form of the parallel programs CYPRESS analyzes. MPL replaces
// the paper's C/Fortran + MPI inputs: it has functions, integer variables,
// arithmetic and logical expressions, if/else, for and while loops, recursion,
// and MPI communication intrinsics (send/recv/isend/irecv/wait*/collectives).
//
// The package provides the lexer, parser, AST (with stable node IDs used by
// downstream instrumentation), and semantic checks.
package lang

import "fmt"

// Kind classifies a token.
type Kind uint8

const (
	EOF Kind = iota
	IDENT
	INT
	// Keywords.
	KwFunc
	KwVar
	KwIf
	KwElse
	KwFor
	KwWhile
	KwReturn
	KwAny // wildcard receive source (MPI_ANY_SOURCE)
	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	Comma
	Semicolon
	Assign
	Plus
	Minus
	Star
	Slash
	Percent
	Lt
	Gt
	Le
	Ge
	EqEq
	NotEq
	AndAnd
	OrOr
	Not
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INT: "integer",
	KwFunc: "'func'", KwVar: "'var'", KwIf: "'if'", KwElse: "'else'",
	KwFor: "'for'", KwWhile: "'while'", KwReturn: "'return'", KwAny: "'ANY'",
	LParen: "'('", RParen: "')'", LBrace: "'{'", RBrace: "'}'",
	Comma: "','", Semicolon: "';'", Assign: "'='",
	Plus: "'+'", Minus: "'-'", Star: "'*'", Slash: "'/'", Percent: "'%'",
	Lt: "'<'", Gt: "'>'", Le: "'<='", Ge: "'>='", EqEq: "'=='", NotEq: "'!='",
	AndAnd: "'&&'", OrOr: "'||'", Not: "'!'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"func": KwFunc, "var": KwVar, "if": KwIf, "else": KwElse,
	"for": KwFor, "while": KwWhile, "return": KwReturn, "ANY": KwAny,
}

// Pos is a source location.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token with its source position.
type Token struct {
	Kind Kind
	Lit  string // identifier name or integer literal text
	Pos  Pos
}

func (t Token) String() string {
	if t.Kind == IDENT || t.Kind == INT {
		return fmt.Sprintf("%s(%s)", t.Kind, t.Lit)
	}
	return t.Kind.String()
}
