package merge

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// TestDecodeAllocs pins the slab-backed decode path. Decoding a merged trace
// must carve entries, rank sets, vertex data, and comm records out of chunked
// slabs instead of allocating each object individually: the budget below is a
// small multiple of the chunk count, not of the entry count. Before the slab
// rework this fixture decoded at several hundred allocations; regressions back
// toward per-object allocation trip the bound immediately.
func TestDecodeAllocs(t *testing.T) {
	_, ctts, _ := collect(t, jacobiSrc, 16)
	m, err := All(ctts, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	var rd bytes.Reader // hoisted so the reader itself is not counted
	step := func() {
		rd.Reset(data)
		if _, err := Decode(&rd); err != nil {
			t.Fatal(err)
		}
	}
	step() // warm the bufio reader pool
	allocs := testing.AllocsPerRun(200, step)
	// The fixture has ~50 vertices and ~70 entries; the slab decoder spends
	// ~50 allocations on it (tree, slab chunks, index maps). 80 leaves head-
	// room for runtime noise while still catching any per-entry regression:
	// the pre-slab decoder spent several hundred on this fixture.
	if allocs > 80 {
		t.Errorf("Decode allocates %.1f allocs/op, want <= 80", allocs)
	}
}

// TestMergeAllSteadyStateAllocs pins the merge reduction's slab economy.
// Re-merging the same rank CTTs is steady state after the first pass (the
// first All rel-encodes leaf records in place); from then on every reduction
// must serve its leaves from chunked slabs and its right operands from the
// recycled scratch leaf. The budget scales with ranks/slabChunk, not with
// ranks x vertices: with 64 ranks and ~50 vertices a per-entry scheme would
// show thousands of allocations per op.
func TestMergeAllSteadyStateAllocs(t *testing.T) {
	_, ctts, _ := collect(t, jacobiSrc, 64)
	step := func() {
		if _, err := All(ctts, 0); err != nil {
			t.Fatal(err)
		}
	}
	step() // first pass rel-encodes leaf records in place
	allocs := testing.AllocsPerRun(50, step)
	if allocs > 400 {
		t.Errorf("steady-state All(64 ranks) allocates %.1f allocs/op, want <= 400", allocs)
	}
}

// TestMergeAllSteadyStateAllocsObserved re-runs the merge reduction budget
// with the package sink attached: per-pair tallies accumulate in plain
// mergeState fields and flush to atomics once per pair, and the per-depth
// pair timings are two time.Now calls plus an atomic histogram observe —
// none of which touch the heap, so the budget is unchanged from sink-off.
func TestMergeAllSteadyStateAllocsObserved(t *testing.T) {
	_, ctts, _ := collect(t, jacobiSrc, 64)
	SetObs(obs.New())
	defer SetObs(nil)
	step := func() {
		if _, err := All(ctts, 0); err != nil {
			t.Fatal(err)
		}
	}
	step() // first pass rel-encodes leaf records in place
	allocs := testing.AllocsPerRun(50, step)
	if allocs > 400 {
		t.Errorf("observed All(64 ranks) allocates %.1f allocs/op, want <= 400 (same as sink-off)", allocs)
	}
}

// TestPairFingerprintFastPathAllocs drives the whole-tree fingerprint fast
// path directly: two halves whose rank trees have equal relative spans must
// merge via the span guard, which only appends rank runs to the left operand's
// existing entries. The interior ranks of the jacobi stencil are structurally
// identical, so pairs drawn from them hit the fast path on every vertex.
func TestPairFingerprintFastPathAllocs(t *testing.T) {
	_, ctts, _ := collect(t, jacobiSrc, 16)
	// Warm pass rel-encodes the leaves so fingerprints are in steady state.
	if _, err := All(ctts, 0); err != nil {
		t.Fatal(err)
	}
	// Interior ranks 3..12: identical control flow and relative peers.
	x := &leafCtx{ctts: ctts}
	step := func() {
		left := x.durableLeaf(5)
		right := x.scratchLeaf(6)
		if !left.treeOK || !right.treeOK || left.treeRel != right.treeRel {
			t.Fatal("interior ranks should share a whole-tree fingerprint")
		}
		if _, err := x.pair(left, right); err != nil {
			t.Fatal(err)
		}
	}
	step()
	allocs := testing.AllocsPerRun(200, step)
	// Steady state: the durable left leaf comes out of the chunked slabs
	// (amortized ~3 allocs/op at chunk 64), the scratch right leaf is
	// recycled, and the fast-path pair itself allocates nothing.
	if allocs > 8 {
		t.Errorf("fingerprint fast-path pair allocates %.1f allocs/op, want <= 8", allocs)
	}
}
