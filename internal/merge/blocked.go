package merge

import (
	"io"
	"runtime"

	"repro/internal/blockio"
	"repro/internal/obs"
)

// defaultIOWorkers picks the worker count for block-parallel encode and
// decode when the caller passes 0: the scheduler's parallelism, capped so a
// wide machine does not spin up more compressors than a trace has frames to
// feed.
func defaultIOWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// EncodeBlocked writes the merged tree inside a CYPB block container: the
// CYPR payload is cut into fixed-target-size frames, each compressed
// independently on a pool of workers, with a seekable frame index appended in
// the footer (see package blockio). workers <= 0 picks a default from
// GOMAXPROCS; the emitted bytes are identical at every worker count for a
// given frame size. Returns the compressed (container) byte count.
func (m *Merged) EncodeBlocked(out io.Writer, workers int) (int64, error) {
	return m.EncodeBlockedFrames(out, workers, 0)
}

// EncodeBlockedFrames is EncodeBlocked with an explicit uncompressed frame
// target; frameSize <= 0 means blockio.DefaultFrameSize. Smaller frames give
// the decode pipeline and random access finer granularity at a small size
// cost (deflate restarts its window per frame).
func (m *Merged) EncodeBlockedFrames(out io.Writer, workers, frameSize int) (int64, error) {
	if workers <= 0 {
		workers = defaultIOWorkers()
	}
	cw := &countingWriter{w: out}
	bw, err := blockio.NewWriter(cw, blockio.WriterOptions{FrameSize: frameSize, Workers: workers})
	if err != nil {
		return 0, err
	}
	if _, err := m.Encode(bw); err != nil {
		return 0, err
	}
	if err := bw.Close(); err != nil {
		return 0, err
	}
	if sink.Enabled() {
		sink.Inc(obs.EncBlockedTraces)
		sink.Add(obs.EncBytesBlocked, cw.n)
	}
	return cw.n, nil
}
