package merge

import (
	"bytes"
	"testing"
)

// TestEncodeBlockedAllocs pins the container overhead of the blocked encoder.
// The plain encoder spends ~17 allocations on this fixture; wrapping it in a
// multi-frame CYPB container adds the writer, its frame accumulator, and the
// index slice — all writer-local and amortized, so the total must stay a
// small constant above the plain path, not scale with frame count.
func TestEncodeBlockedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse; allocation counts are not meaningful")
	}
	_, ctts, _ := collect(t, jacobiSrc, 16)
	m, err := All(ctts, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	step := func() {
		buf.Reset()
		// 256-byte frames cut this fixture into several frames, so a
		// per-frame allocation regression multiplies into the measurement.
		if _, err := m.EncodeBlockedFrames(&buf, 1, 256); err != nil {
			t.Fatal(err)
		}
	}
	step() // warm the flate and buffer pools
	allocs := testing.AllocsPerRun(100, step)
	// Measured at 26 allocs/op (plain Encode: 17). 40 leaves headroom while
	// still catching any per-frame or per-byte regression.
	if allocs > 40 {
		t.Errorf("EncodeBlocked allocates %.1f allocs/op, want <= 40", allocs)
	}
}

// TestDecodeBlockedAllocs pins the decode side: inline CYPB decode reuses one
// frame and the pooled inflater (measured 64 allocs/op on this fixture, vs 52
// for the raw path), and the pipelined decoder adds only its fixed goroutine
// and channel setup (measured 85), not a per-frame cost.
func TestDecodeBlockedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse; allocation counts are not meaningful")
	}
	_, ctts, _ := collect(t, jacobiSrc, 16)
	m, err := All(ctts, 0)
	if err != nil {
		t.Fatal(err)
	}
	var blk bytes.Buffer
	if _, err := m.EncodeBlockedFrames(&blk, 1, 256); err != nil {
		t.Fatal(err)
	}
	data := blk.Bytes()
	var rd bytes.Reader // hoisted so the reader itself is not counted
	for _, tc := range []struct {
		workers int
		budget  float64
	}{
		{-1, 90},
		{2, 120},
	} {
		step := func() {
			rd.Reset(data)
			if _, err := DecodePar(&rd, tc.workers); err != nil {
				t.Fatal(err)
			}
		}
		step() // warm the pools
		allocs := testing.AllocsPerRun(100, step)
		if allocs > tc.budget {
			t.Errorf("DecodePar(workers=%d) allocates %.1f allocs/op, want <= %.0f",
				tc.workers, allocs, tc.budget)
		}
	}
}
