package merge

import (
	"bytes"
	"testing"
)

// blockedSeeds wraps the fuzz fixtures in CYPB containers at a small frame
// size (so every fixture spans several frames), plus deliberately damaged
// variants: a truncated container, a corrupted frame body, and a mangled
// footer — the classes of damage the container checks must turn into errors.
func blockedSeeds(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	for _, raw := range fuzzSeeds(f) {
		m, err := Decode(bytes.NewReader(raw))
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := m.EncodeBlockedFrames(&buf, 2, 128); err != nil {
			f.Fatal(err)
		}
		enc := buf.Bytes()
		seeds = append(seeds, enc)
		seeds = append(seeds, enc[:len(enc)*2/3]) // truncated mid-body
		body := append([]byte(nil), enc...)
		body[len(body)/2] ^= 0x41 // corrupted frame byte
		seeds = append(seeds, body)
		foot := append([]byte(nil), enc...)
		foot[len(foot)-7] ^= 0x41 // mangled footer/trailer
		seeds = append(seeds, foot)
	}
	return seeds
}

// FuzzDecodeBlocked feeds arbitrary bytes to the sniffing decoder with the
// CYPB pipeline both inline and parallel, and checks:
//
//  1. Robustness: DecodePar never panics; malformed containers (truncated
//     frames, corrupted bodies, mangled footers) return an error.
//  2. Pipeline identity: the inline and pipelined decoders accept exactly the
//     same inputs and produce trees with identical normal forms — worker
//     count may never change what a container decodes to.
func FuzzDecodeBlocked(f *testing.F) {
	for _, s := range blockedSeeds(f) {
		f.Add(s)
	}
	f.Add([]byte("CYPB"))
	f.Add([]byte("CYPB\x01\x80\x02\x00"))
	f.Fuzz(func(t *testing.T, in []byte) {
		inline, inlineErr := DecodePar(bytes.NewReader(in), -1)
		piped, pipedErr := DecodePar(bytes.NewReader(in), 2)
		if (inlineErr == nil) != (pipedErr == nil) {
			t.Fatalf("inline err=%v, pipelined err=%v", inlineErr, pipedErr)
		}
		if inlineErr != nil {
			return
		}
		var a, b bytes.Buffer
		if _, err := inline.Encode(&a); err != nil {
			t.Fatalf("re-encode of inline decode failed: %v", err)
		}
		if _, err := piped.Encode(&b); err != nil {
			t.Fatalf("re-encode of pipelined decode failed: %v", err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("inline and pipelined decodes diverge: %d vs %d bytes", a.Len(), b.Len())
		}
	})
}
