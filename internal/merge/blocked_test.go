package merge

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/blockio"
	"repro/internal/ctt"
)

// blockedFixture builds a merged tree at the given scale: small counts come
// from the jacobi stencil (interior/edge divergence), 1024 ranks from the
// ring program, which scales without running the simulator per rank pair.
func blockedFixture(t testing.TB, ranks int) *Merged {
	t.Helper()
	var ctts []*ctt.RankCTT
	if ranks > 64 {
		ctts = ringCTTs(t, ranks, 24)
	} else {
		_, ctts, _ = collect(t, jacobiSrc, ranks)
	}
	m, err := All(ctts, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestEncodeBlockedRoundTrip pins the tentpole contract at three scales:
// EncodeBlocked -> Decode yields a tree DeepEqual to the sequential-path
// decode of the plain encoding, for inline and pipelined readers alike, and
// the re-encoded bytes agree exactly.
func TestEncodeBlockedRoundTrip(t *testing.T) {
	for _, ranks := range []int{7, 64, 1024} {
		m := blockedFixture(t, ranks)
		var raw, blocked bytes.Buffer
		if _, err := m.Encode(&raw); err != nil {
			t.Fatal(err)
		}
		n, err := m.EncodeBlocked(&blocked, 2)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(blocked.Len()) {
			t.Fatalf("ranks=%d: EncodeBlocked reported %d bytes, wrote %d", ranks, n, blocked.Len())
		}
		want, err := Decode(bytes.NewReader(raw.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		// One Decode-Encode pass is normalizing (the v1 format drops the
		// second timing moment), so re-encodes compare against the normal
		// form, not the raw bytes.
		var wantRe bytes.Buffer
		if _, err := want.Encode(&wantRe); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{-1, 1, 2} {
			got, err := DecodePar(bytes.NewReader(blocked.Bytes()), workers)
			if err != nil {
				t.Fatalf("ranks=%d workers=%d: %v", ranks, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("ranks=%d workers=%d: blocked decode differs from sequential decode", ranks, workers)
			}
			var re bytes.Buffer
			if _, err := got.Encode(&re); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(re.Bytes(), wantRe.Bytes()) {
				t.Fatalf("ranks=%d workers=%d: re-encode differs from the sequential path's", ranks, workers)
			}
		}
	}
}

// TestEncodeBlockedWorkerIdentity pins the format's determinism criterion at
// the trace level: the CYPB bytes for a merged tree are identical at workers
// 1, 2, and 4 for a fixed frame size.
func TestEncodeBlockedWorkerIdentity(t *testing.T) {
	// A merged trace is tiny by design (the paper's point), so a multi-frame
	// container needs a deliberately small frame target.
	m := blockedFixture(t, 1024)
	const frame = 256
	enc := func(workers int) []byte {
		var buf bytes.Buffer
		if _, err := m.EncodeBlockedFrames(&buf, workers, frame); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := enc(1)
	// Sanity: the fixture must be big enough to exercise multiple frames.
	ix, err := blockio.ReadIndex(bytes.NewReader(base), int64(len(base)))
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Frames) < 2 {
		t.Fatalf("fixture spans %d frame(s); want >= 2", len(ix.Frames))
	}
	for _, workers := range []int{2, 4} {
		if got := enc(workers); !bytes.Equal(base, got) {
			t.Fatalf("workers=%d: CYPB bytes differ from workers=1 (%d vs %d bytes)",
				workers, len(got), len(base))
		}
	}
}

// TestEncodePlainUnchangedByBlockedPath guards the compatibility criterion:
// adding the block container must leave the plain and gzip encoders
// byte-stable. Encode is deterministic, so two independent encodes of the
// same tree must agree exactly, and the plain stream must still open with the
// CYPR magic (no container layer leaked in).
func TestEncodePlainUnchangedByBlockedPath(t *testing.T) {
	m := blockedFixture(t, 16)
	var a, b bytes.Buffer
	if _, err := m.Encode(&a); err != nil {
		t.Fatal(err)
	}
	var blk bytes.Buffer
	if _, err := m.EncodeBlocked(&blk, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("plain Encode is not deterministic across an EncodeBlocked call")
	}
	if !bytes.HasPrefix(a.Bytes(), fileMagic[:]) {
		t.Fatalf("plain encoding starts %q, want CYPR", a.Bytes()[:4])
	}
	if !bytes.HasPrefix(blk.Bytes(), blockio.Magic[:]) {
		t.Fatalf("blocked encoding starts %q, want CYPB", blk.Bytes()[:4])
	}
	var gz bytes.Buffer
	if _, err := m.EncodeGzip(&gz); err != nil {
		t.Fatal(err)
	}
	if gz.Bytes()[0] != 0x1f || gz.Bytes()[1] != 0x8b {
		t.Fatal("gzip encoding lost its magic")
	}
	// All three containers decode to the same tree through the one sniffing
	// entry point.
	want, err := Decode(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for name, in := range map[string][]byte{"gzip": gz.Bytes(), "blocked": blk.Bytes()} {
		got, err := Decode(bytes.NewReader(in))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: decode differs from plain decode", name)
		}
	}
}

// TestDecodeBlockedTruncation feeds every truncation of a blocked trace to
// the sniffing decoder: each must error (the container checks catch what the
// payload parser does not), never panic.
func TestDecodeBlockedTruncation(t *testing.T) {
	m := blockedFixture(t, 7)
	var buf bytes.Buffer
	if _, err := m.EncodeBlockedFrames(&buf, 2, 256); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for cut := 0; cut < len(enc); cut += 61 {
		if _, err := DecodePar(bytes.NewReader(enc[:cut]), 2); err == nil {
			t.Fatalf("truncation at %d/%d decoded silently", cut, len(enc))
		}
	}
}
