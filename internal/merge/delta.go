package merge

// Byte-level split/join transcoding of the v1 CYPR encoding, the substrate of
// the content-addressed corpus (internal/corpus). CYPRESS's premise is that
// the static communication structure is shared across every run of a program
// and only the dynamic payload varies; on the wire that premise is literal:
// the per-record volatile suffix (time statistics — sample count, moments,
// min/max, compute mean, histogram buckets) is the only part of the stream
// that changes between runs of the same workload, everything else (header,
// embedded CST, rank sets, control vectors, record parameters) is a function
// of the program and the rank count.
//
// SplitEncoded walks the v1 grammar over the raw bytes and partitions them
// into a structure stream and a payload stream without re-encoding anything;
// JoinEncoded interleaves the two streams back. Join(Split(x)) == x holds for
// every stream the walker accepts because both sides copy byte ranges of the
// original — no value round-trips through a decode/encode cycle, so the
// decoder's normalizations (it drops the second timing moment) cannot leak
// into reconstruction. DeltaPayload/PatchPayload then compress one run's
// payload stream against a structurally identical representative's.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"

	"repro/internal/cst"
	"repro/internal/fp"
	"repro/internal/timestat"
)

// SplitTrace is a v1 encoding partitioned into its structural skeleton and
// its volatile payload. Structure holds every byte that is a function of the
// program and rank count (header, CST, rank sets, control vectors, record
// parameters) in stream order; Payload holds the per-record time-statistic
// suffixes, also in stream order. Concatenating the two streams back in
// grammar order (JoinEncoded) reproduces the original bytes exactly.
type SplitTrace struct {
	// TreeHash and NumRanks are lifted from the header for indexing.
	TreeHash uint64
	NumRanks int
	// Hist records the header's histogram-mode flag, which decides whether
	// payload records carry bucket lists.
	Hist bool

	Structure []byte
	Payload   []byte

	// HeaderFP fingerprints the header-plus-CST prefix of the structure
	// stream; SectionFP[gid] fingerprints vertex gid's structural section.
	// ClassKey folds them all, so two encodings share a class key exactly when
	// their structure streams are byte-identical (modulo a 2^-64 collision,
	// which ingest guards against by comparing the streams).
	HeaderFP  uint64
	SectionFP []uint64
}

// ClassKey folds the whole-tree structural fingerprint: the header/CST prefix
// fingerprint plus every per-vertex section fingerprint in vertex order.
func (s *SplitTrace) ClassKey() uint64 {
	h := fp.New().Word(s.HeaderFP)
	for _, sf := range s.SectionFP {
		h = h.Word(sf)
	}
	return uint64(h)
}

// bcur is an error-latching varint cursor over an in-memory buffer — the
// byte-slice analogue of the serializer's reader, used where the grammar walk
// needs exact byte offsets rather than streaming reads.
type bcur struct {
	b   []byte
	off int
	err error
}

func (c *bcur) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *bcur) u() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.fail("merge: truncated or oversized uvarint at offset %d", c.off)
		return 0
	}
	c.off += n
	return v
}

func (c *bcur) i() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		c.fail("merge: truncated or oversized varint at offset %d", c.off)
		return 0
	}
	c.off += n
	return v
}

// skipRuns walks one run-length list (rank sets, loop/taken vectors). The
// count cap mirrors the decoder's plausibility bound; the walk itself is
// allocation-free, and each element consumes at least three bytes, so a
// hostile count degrades into a fast cursor error.
func (c *bcur) skipRuns() {
	n := c.u()
	if c.err != nil {
		return
	}
	if n > 1<<20 {
		c.fail("merge: implausible run count %d", n)
		return
	}
	for j := uint64(0); j < n && c.err == nil; j++ {
		c.i()
		c.i()
		c.u()
	}
}

// skipVolatile walks one record's volatile suffix: sample count, four time
// moments, the compute mean, and (in histogram mode) the non-zero bucket
// list. Every field is a uvarint (floats travel as Float64bits), a property
// the payload delta codec relies on.
func skipVolatile(c *bcur, hist bool) {
	for k := 0; k < 6; k++ {
		c.u()
	}
	if !hist {
		return
	}
	nz := c.u()
	if c.err != nil {
		return
	}
	if nz > timestat.HistBuckets {
		c.fail("merge: implausible histogram bucket count %d", nz)
		return
	}
	for j := uint64(0); j < nz && c.err == nil; j++ {
		c.u()
		c.u()
	}
}

// skipRecordStructure walks one record's structural prefix (everything up to
// the volatile suffix) and returns the flags field.
func (c *bcur) skipRecordStructure() {
	c.u() // op
	flags := c.u()
	c.u() // size
	c.i() // peer
	c.i() // peerRel
	c.u() // tag
	c.u() // comm
	c.u() // count
	nq := c.u()
	if c.err != nil {
		return
	}
	if nq > 1<<20 {
		c.fail("merge: implausible req count %d", nq)
		return
	}
	for j := uint64(0); j < nq && c.err == nil; j++ {
		c.i()
	}
	if flags&4 != 0 {
		np := c.u()
		if c.err != nil {
			return
		}
		if np == 0 || np > 1<<20 {
			c.fail("merge: implausible peer period %d", np)
			return
		}
		for j := uint64(0); j < np && c.err == nil; j++ {
			c.i()
		}
	}
}

// splitHeader parses the fixed header (through the embedded CST) and returns
// the vertex count. It is shared by SplitEncoded, which needs the vertex
// count to bound the section loop, and reused structurally by JoinEncoded,
// which only needs the cursor advanced past the CST bytes.
func splitHeader(c *bcur, s *SplitTrace, wantTree bool) (nverts int) {
	if len(c.b) < len(fileMagic) || [4]byte(c.b[:4]) != fileMagic {
		c.fail("merge: bad magic")
		return 0
	}
	c.off = len(fileMagic)
	if v := c.u(); c.err == nil && v != fileVersion {
		c.fail("merge: unsupported version %d", v)
		return 0
	}
	treeHash := c.u()
	numRanks := c.u()
	c.u() // event count
	histFlag := c.u()
	treeLen := c.u()
	if c.err != nil {
		return 0
	}
	if s != nil {
		s.TreeHash = treeHash
		s.NumRanks = int(numRanks)
		s.Hist = histFlag == 1
	}
	if treeLen > 1<<28 || int64(treeLen) > int64(len(c.b)-c.off) {
		c.fail("merge: implausible CST length %d", treeLen)
		return 0
	}
	treeEnd := c.off + int(treeLen)
	if wantTree {
		lr := io.LimitedReader{R: bytes.NewReader(c.b[c.off:treeEnd]), N: int64(treeLen)}
		tree, err := cst.Decode(&lr)
		if err != nil {
			c.fail("merge: embedded CST: %w", err)
			return 0
		}
		// The streaming decoder resumes wherever cst.Decode leaves its reader;
		// the splitter only accepts streams where that point is the declared
		// CST boundary, so the structural grammar walk below stays aligned
		// with what Decode would parse. Ingest falls back to whole-encoding
		// storage for anything rejected here.
		if lr.N != 0 {
			c.fail("merge: embedded CST under-consumed (%d trailing bytes)", lr.N)
			return 0
		}
		nverts = tree.NumVertices()
	}
	c.off = treeEnd
	return nverts
}

// SplitEncoded partitions a standalone v1 encoding into structure and payload
// streams (see SplitTrace). It validates the grammar syntactically — counts
// within the decoder's plausibility caps, varints well-formed, no trailing
// bytes — but not semantically; a stream that splits cleanly may still fail
// Decode, and reconstruction fidelity is byte-level either way.
func SplitEncoded(enc []byte) (*SplitTrace, error) {
	s := &SplitTrace{}
	c := &bcur{b: enc}
	nverts := splitHeader(c, s, true)
	if c.err != nil {
		return nil, c.err
	}
	s.Structure = append(s.Structure, enc[:c.off]...)
	s.HeaderFP = uint64(fp.New().Bytes(s.Structure))
	s.SectionFP = make([]uint64, nverts)
	mark := c.off
	for gid := 0; gid < nverts; gid++ {
		secStart := len(s.Structure)
		n := c.u()
		if c.err != nil {
			return nil, fmt.Errorf("merge: split vertex %d: %w", gid, c.err)
		}
		if n > 1<<24 {
			return nil, fmt.Errorf("merge: split vertex %d: implausible entry count %d", gid, n)
		}
		for k := uint64(0); k < n; k++ {
			c.skipRuns() // rank set
			c.skipRuns() // counts
			c.skipRuns() // taken
			nc := c.u()
			if c.err == nil && nc > 1<<24 {
				c.fail("merge: implausible cycle count %d", nc)
			}
			for j := uint64(0); j < nc && c.err == nil; j++ {
				c.u()
				c.u()
				c.u()
			}
			nr := c.u()
			if c.err == nil && nr > 1<<26 {
				c.fail("merge: implausible record count %d", nr)
			}
			for j := uint64(0); j < nr && c.err == nil; j++ {
				c.skipRecordStructure()
				if c.err != nil {
					break
				}
				vs := c.off
				skipVolatile(c, s.Hist)
				if c.err != nil {
					break
				}
				s.Structure = append(s.Structure, enc[mark:vs]...)
				s.Payload = append(s.Payload, enc[vs:c.off]...)
				mark = c.off
			}
			if c.err != nil {
				return nil, fmt.Errorf("merge: split vertex %d entry %d: %w", gid, k, c.err)
			}
		}
		s.Structure = append(s.Structure, enc[mark:c.off]...)
		mark = c.off
		s.SectionFP[gid] = uint64(fp.New().Bytes(s.Structure[secStart:]))
	}
	if c.off != len(enc) {
		return nil, fmt.Errorf("merge: split: %d trailing bytes", len(enc)-c.off)
	}
	return s, nil
}

// JoinEncoded reassembles the standalone encoding from a structure stream and
// a payload stream produced by SplitEncoded. Both streams must be consumed
// exactly; leftover bytes on either side or a grammar violation is an error.
// The result is
// byte-identical to the original input of SplitEncoded by construction.
func JoinEncoded(structure, payload []byte) ([]byte, error) {
	out := make([]byte, 0, len(structure)+len(payload))
	st := &bcur{b: structure}
	var hdr SplitTrace
	splitHeader(st, &hdr, false)
	if st.err != nil {
		return nil, st.err
	}
	pl := &bcur{b: payload}
	mark := 0
	for st.err == nil && st.off < len(structure) {
		n := st.u()
		if st.err == nil && n > 1<<24 {
			st.fail("merge: implausible entry count %d", n)
		}
		for k := uint64(0); k < n && st.err == nil; k++ {
			st.skipRuns()
			st.skipRuns()
			st.skipRuns()
			nc := st.u()
			if st.err == nil && nc > 1<<24 {
				st.fail("merge: implausible cycle count %d", nc)
			}
			for j := uint64(0); j < nc && st.err == nil; j++ {
				st.u()
				st.u()
				st.u()
			}
			nr := st.u()
			if st.err == nil && nr > 1<<26 {
				st.fail("merge: implausible record count %d", nr)
			}
			for j := uint64(0); j < nr && st.err == nil; j++ {
				st.skipRecordStructure()
				if st.err != nil {
					break
				}
				out = append(out, structure[mark:st.off]...)
				mark = st.off
				vs := pl.off
				skipVolatile(pl, hdr.Hist)
				if pl.err != nil {
					return nil, fmt.Errorf("merge: join payload: %w", pl.err)
				}
				out = append(out, payload[vs:pl.off]...)
			}
		}
	}
	if st.err != nil {
		return nil, fmt.Errorf("merge: join structure: %w", st.err)
	}
	out = append(out, structure[mark:]...)
	if pl.off != len(payload) {
		return nil, fmt.Errorf("merge: join: %d unconsumed payload bytes", len(payload)-pl.off)
	}
	return out, nil
}

// Payload streams are pure uvarint vectors (skipVolatile's invariant), which
// makes the delta codec grammar-free: decode both vectors, XOR element-wise
// against the representative, and pack each difference word as
//
//	0                 — identical words (the common case between runs)
//	(ntz+1, x>>ntz)   — two uvarints: trailing-zero count plus significant bits
//
// The trailing-zero split matters because Float64bits of two nearby values
// can differ either in the low mantissa bits (small XOR, short uvarint on its
// own) or — for values with short mantissas, like integral nanosecond counts
// — in the high bits above a run of trailing zeros, where a bare uvarint of
// the XOR would spend its full ten bytes. Word alignment between run and
// representative is a compression heuristic, not a correctness requirement:
// a misaligned pair just XORs unrelated words and encodes longer.

// DeltaPayload encodes payload as a word-wise XOR delta against ref. Both
// arguments must be well-formed uvarint streams (SplitEncoded payloads always
// are). PatchPayload(DeltaPayload(p, ref), ref) == p whenever p is minimally
// encoded — corpus ingest verifies that round trip before committing a delta.
func DeltaPayload(payload, ref []byte) ([]byte, error) {
	pw, err := uvarintWords(payload)
	if err != nil {
		return nil, fmt.Errorf("merge: delta payload: %w", err)
	}
	rw, err := uvarintWords(ref)
	if err != nil {
		return nil, fmt.Errorf("merge: delta ref: %w", err)
	}
	out := binary.AppendUvarint(nil, uint64(len(pw)))
	for i, v := range pw {
		var r uint64
		if i < len(rw) {
			r = rw[i]
		}
		x := v ^ r
		if x == 0 {
			out = append(out, 0)
			continue
		}
		ntz := bits.TrailingZeros64(x)
		out = binary.AppendUvarint(out, uint64(ntz)+1)
		out = binary.AppendUvarint(out, x>>uint(ntz))
	}
	return out, nil
}

// PatchPayload reconstructs a payload stream from its delta and the same
// representative stream DeltaPayload ran against.
func PatchPayload(delta, ref []byte) ([]byte, error) {
	rw, err := uvarintWords(ref)
	if err != nil {
		return nil, fmt.Errorf("merge: patch ref: %w", err)
	}
	c := &bcur{b: delta}
	n := c.u()
	if c.err != nil {
		return nil, c.err
	}
	// Every encoded word consumes at least one delta byte.
	if n > uint64(len(delta)) {
		return nil, fmt.Errorf("merge: patch: implausible word count %d", n)
	}
	out := make([]byte, 0, len(ref)+len(delta))
	for i := uint64(0); i < n; i++ {
		t := c.u()
		var x uint64
		if t != 0 {
			if t > 64 {
				c.fail("merge: patch: shift %d out of range", t)
			}
			m := c.u()
			if c.err != nil {
				return nil, c.err
			}
			sh := uint(t - 1)
			if sh > 0 && m>>(64-sh) != 0 {
				return nil, fmt.Errorf("merge: patch: word %d overflows shift %d", i, sh)
			}
			x = m << sh
		}
		if c.err != nil {
			return nil, c.err
		}
		var r uint64
		if i < uint64(len(rw)) {
			r = rw[i]
		}
		out = binary.AppendUvarint(out, x^r)
	}
	if c.off != len(delta) {
		return nil, fmt.Errorf("merge: patch: %d trailing delta bytes", len(delta)-c.off)
	}
	return out, nil
}

// uvarintWords decodes a whole buffer as a uvarint vector.
func uvarintWords(b []byte) ([]uint64, error) {
	cap0 := len(b)
	if cap0 > 4096 {
		cap0 = 4096
	}
	out := make([]uint64, 0, cap0)
	for off := 0; off < len(b); {
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return nil, fmt.Errorf("malformed uvarint at offset %d", off)
		}
		out = append(out, v)
		off += n
	}
	return out, nil
}
