package merge

import (
	"bytes"
	"testing"
)

// deltaEncBytes is the standalone v1 encoding of m.
func deltaEncBytes(t testing.TB, m *Merged) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSplitJoinIdentity pins the transcoder's core contract on real traces:
// Join(Split(x)) == x byte-for-byte, with a non-empty payload stream (the
// volatile suffixes exist) and a structure stream that still contains the
// header magic.
func TestSplitJoinIdentity(t *testing.T) {
	for _, tc := range []struct {
		src string
		n   int
	}{
		{jacobiSrc, 7},
		{jacobiSrc, 64},
		{`func main() { barrier(); }`, 2},
	} {
		_, ctts, _ := collect(t, tc.src, tc.n)
		m, err := All(ctts, 0)
		if err != nil {
			t.Fatal(err)
		}
		enc := deltaEncBytes(t, m)
		sp, err := SplitEncoded(enc)
		if err != nil {
			t.Fatalf("n=%d: split: %v", tc.n, err)
		}
		if len(sp.Payload) == 0 {
			t.Fatalf("n=%d: empty payload stream", tc.n)
		}
		if len(sp.Structure)+len(sp.Payload) != len(enc) {
			t.Fatalf("n=%d: split loses bytes: %d+%d != %d",
				tc.n, len(sp.Structure), len(sp.Payload), len(enc))
		}
		if !bytes.HasPrefix(sp.Structure, fileMagic[:]) {
			t.Fatalf("n=%d: structure stream lost the header", tc.n)
		}
		got, err := JoinEncoded(sp.Structure, sp.Payload)
		if err != nil {
			t.Fatalf("n=%d: join: %v", tc.n, err)
		}
		if !bytes.Equal(got, enc) {
			t.Fatalf("n=%d: join(split(x)) != x", tc.n)
		}
	}
}

// TestSplitClassKeyStability: the class key is a pure function of structure —
// identical across re-encodes of the same trace, changed by a different rank
// count, and unchanged under payload-only differences.
func TestSplitClassKeyStability(t *testing.T) {
	_, ctts, _ := collect(t, jacobiSrc, 7)
	m, err := All(ctts, 0)
	if err != nil {
		t.Fatal(err)
	}
	enc := deltaEncBytes(t, m)
	sp1, err := SplitEncoded(enc)
	if err != nil {
		t.Fatal(err)
	}
	sp2, err := SplitEncoded(deltaEncBytes(t, m))
	if err != nil {
		t.Fatal(err)
	}
	if sp1.ClassKey() != sp2.ClassKey() {
		t.Fatal("class key differs across identical re-encodes")
	}
	if len(sp1.SectionFP) == 0 {
		t.Fatal("no per-vertex section fingerprints")
	}

	_, ctts13, _ := collect(t, jacobiSrc, 13)
	m13, err := All(ctts13, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp13, err := SplitEncoded(deltaEncBytes(t, m13))
	if err != nil {
		t.Fatal(err)
	}
	if sp13.ClassKey() == sp1.ClassKey() {
		t.Fatal("class key ignores rank count")
	}
}

// TestDeltaPayloadRoundTrip: Patch(Delta(p, ref), ref) == p, including the
// degenerate self-delta (all-zero words), an empty ref, and mismatched word
// counts in both directions.
func TestDeltaPayloadRoundTrip(t *testing.T) {
	_, ctts, _ := collect(t, jacobiSrc, 7)
	m, err := All(ctts, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SplitEncoded(deltaEncBytes(t, m))
	if err != nil {
		t.Fatal(err)
	}
	p := sp.Payload

	_, ctts2, _ := collect(t, `func main() { barrier(); }`, 2)
	m2, err := All(ctts2, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp2, err := SplitEncoded(deltaEncBytes(t, m2))
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		ref  []byte
	}{
		{"self", p},
		{"empty-ref", nil},
		{"foreign-ref", sp2.Payload},
	} {
		d, err := DeltaPayload(p, tc.ref)
		if err != nil {
			t.Fatalf("%s: delta: %v", tc.name, err)
		}
		got, err := PatchPayload(d, tc.ref)
		if err != nil {
			t.Fatalf("%s: patch: %v", tc.name, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("%s: patch(delta(p)) != p", tc.name)
		}
	}

	// The self-delta must be tiny: one byte per word plus the count header.
	d, err := DeltaPayload(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) >= len(p)/2 {
		t.Fatalf("self-delta %dB not small vs payload %dB", len(d), len(p))
	}
}

// TestSplitRejectsCorrupt: truncations and bit flips must error, never panic,
// and never produce a SplitTrace that fails to rejoin. (Fuzzing hammers this
// further in the corpus package.)
func TestSplitRejectsCorrupt(t *testing.T) {
	_, ctts, _ := collect(t, jacobiSrc, 7)
	m, err := All(ctts, 0)
	if err != nil {
		t.Fatal(err)
	}
	enc := deltaEncBytes(t, m)
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := SplitEncoded(enc[:cut]); err == nil {
			// A clean split of a truncation is only acceptable if it rejoins
			// to exactly the truncated input (i.e. the cut fell on a record
			// boundary of a well-formed prefix — impossible here because the
			// vertex count would disagree, but keep the check honest).
			sp, _ := SplitEncoded(enc[:cut])
			got, jerr := JoinEncoded(sp.Structure, sp.Payload)
			if jerr != nil || !bytes.Equal(got, enc[:cut]) {
				t.Fatalf("cut=%d: split accepted a non-rejoinable truncation", cut)
			}
		}
	}
	for pos := 0; pos < len(enc); pos += 11 {
		mut := append([]byte(nil), enc...)
		mut[pos] ^= 0x40
		sp, err := SplitEncoded(mut)
		if err != nil {
			continue
		}
		got, jerr := JoinEncoded(sp.Structure, sp.Payload)
		if jerr != nil || !bytes.Equal(got, mut) {
			t.Fatalf("pos=%d: split accepted a non-rejoinable mutation", pos)
		}
	}
}
