package merge

import (
	"bytes"
	"testing"

	"repro/internal/cst"
	"repro/internal/ctt"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/replay"
	"repro/internal/timestat"
	"repro/internal/trace"
)

// setFingerprint flips the fingerprint fast-path gate for the duration of a
// test and restores it on cleanup. Tests in this package do not run in
// parallel, so toggling the package var is safe.
func setFingerprint(t *testing.T, on bool) {
	t.Helper()
	prev := fingerprintEnabled
	fingerprintEnabled = on
	t.Cleanup(func() { fingerprintEnabled = prev })
}

func encodeBytes(t *testing.T, m *Merged) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFingerprintEquivalenceSmall checks, at odd rank counts that stress the
// reduction's unbalanced split (7 = 4+3, 13 = 7+6), that the fingerprint fast
// path is invisible: All with fingerprints on produces byte-identical output
// to All with the exhaustive per-record walk, Serial likewise, and every
// rank's replayed event sequence matches the raw trace captured during the
// run. Byte identity is the strongest form of the losslessness claim in
// DESIGN.md: the fast path may only change how a merge decision is reached,
// never the decision or the encoding.
func TestFingerprintEquivalenceSmall(t *testing.T) {
	for _, n := range []int{7, 13} {
		// Reference: exhaustive path. Pair consumes its operands, so every
		// configuration merges a freshly collected set of CTTs.
		setFingerprint(t, false)
		_, ctts, _ := collect(t, jacobiSrc, n)
		refAll, err := All(ctts, 0)
		if err != nil {
			t.Fatalf("n=%d exhaustive All: %v", n, err)
		}
		refBytes := encodeBytes(t, refAll)
		_, ctts2, _ := collect(t, jacobiSrc, n)
		refSerial, err := Serial(ctts2)
		if err != nil {
			t.Fatalf("n=%d exhaustive Serial: %v", n, err)
		}
		refSerialBytes := encodeBytes(t, refSerial)

		// Fast path on: same reduction schedules must yield the same bytes.
		setFingerprint(t, true)
		_, ctts3, raw := collect(t, jacobiSrc, n)
		fpAll, err := All(ctts3, 0)
		if err != nil {
			t.Fatalf("n=%d fingerprint All: %v", n, err)
		}
		if !bytes.Equal(encodeBytes(t, fpAll), refBytes) {
			t.Fatalf("n=%d: fingerprint All output differs from exhaustive All", n)
		}
		_, ctts4, _ := collect(t, jacobiSrc, n)
		fpSerial, err := Serial(ctts4)
		if err != nil {
			t.Fatalf("n=%d fingerprint Serial: %v", n, err)
		}
		if !bytes.Equal(encodeBytes(t, fpSerial), refSerialBytes) {
			t.Fatalf("n=%d: fingerprint Serial output differs from exhaustive Serial", n)
		}
		if fpAll.GroupCount() != refSerial.GroupCount() {
			t.Fatalf("n=%d: All groups %d vs Serial groups %d",
				n, fpAll.GroupCount(), refSerial.GroupCount())
		}
		// Losslessness against the ground truth: replaying the fingerprint-
		// merged tree reproduces each rank's raw event sequence.
		for rank := 0; rank < n; rank++ {
			seq, err := replay.Sequence(fpAll.ForRank(rank), rank)
			if err != nil {
				t.Fatalf("n=%d rank %d: %v", n, rank, err)
			}
			if err := replay.Equivalent(raw[rank], seq); err != nil {
				t.Fatalf("n=%d rank %d: %v", n, rank, err)
			}
		}
	}
}

// equivSrc is the program shape behind the 1000-rank equivalence test: a
// stencil exchange inside one loop, then a collective.
const equivSrc = `
func main() {
	for var i = 0; i < 16; i = i + 1 {
		send(rank + 1, 4096, 7);
		recv(rank - 1, 4096, 7);
	}
	reduce(0, 8);
}`

// directDriveCTTs builds n per-rank CTTs by driving each compressor directly,
// without the simulator, so the test scales to 1000 ranks in milliseconds.
// Iteration counts vary with rank%4, which splits every vertex into four
// groups whose rank sets interleave with stride 4 — exercising both the
// fingerprint mismatch path (across groups) and the stride-set union's
// overlapping layout at scale.
func directDriveCTTs(t *testing.T, n int) []*ctt.RankCTT {
	t.Helper()
	prog, err := lang.Parse(equivSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lang.Check(prog); err != nil {
		t.Fatal(err)
	}
	irProg, err := ir.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := cst.Build(irProg)
	if err != nil {
		t.Fatal(err)
	}
	var loop, sendLeaf, recvLeaf, redLeaf *cst.Vertex
	tree.Walk(func(v *cst.Vertex, _ int) {
		switch {
		case loop == nil && v.Kind == cst.KindLoop:
			loop = v
		case sendLeaf == nil && v.Kind == cst.KindComm && v.Op == trace.OpSend:
			sendLeaf = v
		case recvLeaf == nil && v.Kind == cst.KindComm && v.Op == trace.OpRecv:
			recvLeaf = v
		case redLeaf == nil && v.Kind == cst.KindComm && v.Op == trace.OpReduce:
			redLeaf = v
		}
	})
	if loop == nil || sendLeaf == nil || recvLeaf == nil || redLeaf == nil {
		t.Fatal("equivSrc tree missing vertices")
	}
	out := make([]*ctt.RankCTT, n)
	var ev trace.Event
	for r := 0; r < n; r++ {
		c := ctt.NewCompressor(tree, r, timestat.ModeMeanStddev)
		c.LoopEnter(int32(loop.Site))
		iters := 16 + r%4
		for k := 0; k < iters; k++ {
			c.LoopIter(int32(loop.Site))
			c.CommSite(int32(sendLeaf.Site))
			ev = trace.Event{Op: trace.OpSend, Peer: r + 1, Size: 4096, Tag: 7, ReqID: -1, DurationNS: 1500, ComputeNS: 40}
			c.Event(&ev)
			c.CommSite(int32(recvLeaf.Site))
			ev = trace.Event{Op: trace.OpRecv, Peer: r - 1, Size: 4096, Tag: 7, ReqID: -1, DurationNS: 1600, ComputeNS: 55}
			c.Event(&ev)
		}
		c.StructExit()
		c.CommSite(int32(redLeaf.Site))
		ev = trace.Event{Op: trace.OpReduce, Peer: 0, Size: 8, ReqID: -1, DurationNS: 2200, ComputeNS: 70}
		c.Event(&ev)
		c.Finalize()
		out[r] = c.Finish()
	}
	return out
}

// TestFingerprintEquivalence1000 scales the byte-identity check to 1000
// ranks: the fingerprint-accelerated parallel reduction must encode to
// exactly the bytes of the exhaustive reduction, with the grouped structure
// the rank%4 divergence predicts.
func TestFingerprintEquivalence1000(t *testing.T) {
	const n = 1000
	setFingerprint(t, false)
	ref, err := All(directDriveCTTs(t, n), 0)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := encodeBytes(t, ref)

	setFingerprint(t, true)
	fp, err := All(directDriveCTTs(t, n), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeBytes(t, fp), refBytes) {
		t.Fatal("fingerprint All(1000) output differs from exhaustive All(1000)")
	}
	if fp.NumRanks != n {
		t.Fatalf("NumRanks = %d", fp.NumRanks)
	}
	// rank%4 iteration divergence: vertices whose data depends on the loop
	// count (the loop itself, the send/recv leaves) split into exactly four
	// groups with interleaved stride-4 rank sets; iteration-independent
	// vertices (root, the collective) stay fully shared. Either way the
	// groups partition all n ranks.
	split := 0
	for gid, es := range fp.Entries {
		if es == nil {
			continue
		}
		if len(es) != 1 && len(es) != 4 {
			t.Fatalf("vertex %d: %d groups, want 1 or 4", gid, len(es))
		}
		if len(es) == 4 {
			split++
		}
		total := 0
		for _, e := range es {
			total += e.Ranks.Len()
		}
		if total != n {
			t.Fatalf("vertex %d: groups cover %d ranks", gid, total)
		}
	}
	if split < 3 {
		t.Fatalf("only %d vertices split into 4 groups; loop divergence not captured", split)
	}
}
