package merge

import (
	"bytes"
	"testing"
)

// fuzzSeeds builds encoded merged traces from representative fixtures to seed
// the corpus: a stencil with interior/edge divergence, trivial collectives,
// and a control-flow-divergent pairing where loop counts differ across ranks.
func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	for _, tc := range []struct {
		src   string
		ranks int
	}{
		{jacobiSrc, 7},
		{`func main() { barrier(); }`, 2},
		{`
func main() {
	var pair = rank / 2;
	var k = 5;
	if pair % 2 == 1 { k = 9; }
	if rank % 2 == 0 {
		for var i = 0; i < k; i = i + 1 { send(rank + 1, 64, 0); }
	} else {
		for var i = 0; i < k; i = i + 1 { recv(rank - 1, 64, 0); }
	}
}`, 8},
	} {
		_, ctts, _ := collect(f, tc.src, tc.ranks)
		m, err := All(ctts, 0)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := m.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	return seeds
}

// FuzzDecodeRoundTrip feeds arbitrary bytes to the slab-backed decoder and
// checks two properties:
//
//  1. Robustness: Decode never panics; malformed input returns an error.
//  2. Idempotent round trip: for any input that decodes, one Decode-Encode
//     pass is a normal form — Encode(Decode(Encode(Decode(in)))) is
//     byte-identical to Encode(Decode(in)). (The first pass may legitimately
//     differ from the raw input: the v1 format drops the second timing moment
//     under mean-only mode, so re-encoding is normalizing, not lossy.)
//
// The seed corpus holds well-formed traces from the merge fixtures so the
// mutator starts from deep inside the format rather than fishing for the
// magic header.
func FuzzDecodeRoundTrip(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Add([]byte{})
	f.Add([]byte("CYPRESS-MERGE"))
	f.Fuzz(func(t *testing.T, in []byte) {
		m, err := Decode(bytes.NewReader(in))
		if err != nil {
			return // malformed input must error, not panic
		}
		var b1 bytes.Buffer
		if _, err := m.Encode(&b1); err != nil {
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
		m2, err := Decode(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("decode of re-encoded trace failed: %v", err)
		}
		var b2 bytes.Buffer
		if _, err := m2.Encode(&b2); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("Encode∘Decode not idempotent: %d vs %d bytes", b1.Len(), b2.Len())
		}
	})
}
