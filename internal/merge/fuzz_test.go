package merge

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/replay"
	"repro/internal/trace"
)

// fuzzSeeds builds encoded merged traces from representative fixtures to seed
// the corpus: a stencil with interior/edge divergence, trivial collectives,
// and a control-flow-divergent pairing where loop counts differ across ranks.
func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	for _, tc := range []struct {
		src   string
		ranks int
	}{
		{jacobiSrc, 7},
		{`func main() { barrier(); }`, 2},
		{`
func main() {
	var pair = rank / 2;
	var k = 5;
	if pair % 2 == 1 { k = 9; }
	if rank % 2 == 0 {
		for var i = 0; i < k; i = i + 1 { send(rank + 1, 64, 0); }
	} else {
		for var i = 0; i < k; i = i + 1 { recv(rank - 1, 64, 0); }
	}
}`, 8},
	} {
		_, ctts, _ := collect(f, tc.src, tc.ranks)
		m, err := All(ctts, 0)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := m.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	return seeds
}

// FuzzDecodeRoundTrip feeds arbitrary bytes to the slab-backed decoder and
// checks two properties:
//
//  1. Robustness: Decode never panics; malformed input returns an error.
//  2. Idempotent round trip: for any input that decodes, one Decode-Encode
//     pass is a normal form — Encode(Decode(Encode(Decode(in)))) is
//     byte-identical to Encode(Decode(in)). (The first pass may legitimately
//     differ from the raw input: the v1 format drops the second timing moment
//     under mean-only mode, so re-encoding is normalizing, not lossy.)
//
// The seed corpus holds well-formed traces from the merge fixtures so the
// mutator starts from deep inside the format rather than fishing for the
// magic header.
func FuzzDecodeRoundTrip(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Add([]byte{})
	f.Add([]byte("CYPRESS-MERGE"))
	f.Fuzz(func(t *testing.T, in []byte) {
		m, err := Decode(bytes.NewReader(in))
		if err != nil {
			return // malformed input must error, not panic
		}
		var b1 bytes.Buffer
		if _, err := m.Encode(&b1); err != nil {
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
		m2, err := Decode(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("decode of re-encoded trace failed: %v", err)
		}
		var b2 bytes.Buffer
		if _, err := m2.Encode(&b2); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("Encode∘Decode not idempotent: %d vs %d bytes", b1.Len(), b2.Len())
		}
	})
}

// replayBudget bounds how much replay work a fuzz input may demand: decoded
// trees are untrusted, and a loop vertex with a huge activation count but an
// empty body would spin the walker for 2^60 iterations without emitting a
// single event. Inputs whose total iteration upper bound or vertex count
// exceeds the budget are skipped (they decoded fine, which is all
// FuzzDecodeRoundTrip already guarantees).
const replayBudget = 1 << 10

// replayBounded reports whether m's walk cost is bounded enough to replay:
// every loop/recursion activation count is small and their sum (an upper
// bound on total iterations) stays within budget.
func replayBounded(m *Merged) bool {
	if len(m.Entries) > replayBudget {
		return false
	}
	var total int64
	for _, es := range m.Entries {
		for i := range es {
			for _, r := range es[i].Data.Counts.Runs() {
				if r.Count <= 0 {
					continue
				}
				if r.Count > replayBudget || r.Stride > replayBudget || -r.Stride > replayBudget ||
					r.First > replayBudget || -r.First > replayBudget {
					return false
				}
				hi := r.First
				if l := r.Last(); l > hi {
					hi = l
				}
				if hi > 0 {
					total += hi * r.Count
				}
				if total > replayBudget {
					return false
				}
			}
		}
	}
	return true
}

// FuzzReplayDecoded replays decoded (possibly adversarial) merged trees
// through both decompression paths and checks:
//
//  1. Robustness: neither the rankView walk nor the Streamer panics on any
//     tree the decoder accepts — malformed structure must surface as an
//     error. (This path found the decoded-PeerPattern crash: At() indexed
//     the nil raw buffer because decode never set the compressed flag.)
//  2. Identity: whenever the reference rankView walk replays a rank, the
//     Streamer replays the identical event sequence, and both fail together
//     otherwise — the skeleton-sharing fast path may not diverge from the
//     per-rank walk even on hostile inputs.
func FuzzReplayDecoded(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		m, err := Decode(bytes.NewReader(in))
		if err != nil {
			return
		}
		if m.NumRanks <= 0 || !replayBounded(m) {
			return
		}
		nr := m.NumRanks
		if nr > 8 {
			nr = 8
		}
		s := NewStreamer(m)
		for rank := 0; rank < nr; rank++ {
			var want []trace.Event
			wantErr := replay.Events(m.ForRank(rank), rank, func(e *trace.Event) {
				want = append(want, *e)
			})
			var got []trace.Event
			gotErr := s.Replay(rank, func(e *trace.Event) {
				got = append(got, *e)
			})
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("rank %d: rankView err=%v, streamer err=%v", rank, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("rank %d: streamer sequence differs from rankView (%d vs %d events)",
					rank, len(got), len(want))
			}
		}
	})
}
