package merge

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden v1 encoding fixtures from fresh traces")

// TestEncodeGoldenPin pins the v1 on-disk trace format byte-for-byte. The
// checked-in fixtures are canonical encodings (the Encode∘Decode fixed
// point); the test asserts the current decoder accepts them and the current
// encoder reproduces them exactly. Any grammar, varint, or ordering change
// in serialize.go breaks this test — deliberately, because every stored
// corpus and trace archive depends on these exact bytes. On an intentional
// format-version bump, regenerate with:
//
//	go test ./internal/merge -run TestEncodeGoldenPin -update
func TestEncodeGoldenPin(t *testing.T) {
	cases := []struct {
		name  string
		ranks int
	}{
		{"jacobi7", 7},
		{"jacobi64", 64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", tc.name+".cyp")
			if *updateGolden {
				writeGolden(t, path, tc.ranks)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with -update to generate): %v", err)
			}
			m, err := Decode(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("decoder rejects pinned v1 fixture: %v", err)
			}
			var buf bytes.Buffer
			if _, err := m.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), data) {
				t.Fatalf("encoder output differs from pinned v1 fixture %s (%d vs %d bytes): the on-disk format changed",
					path, buf.Len(), len(data))
			}
			// The corpus delta codec splits these same bytes; the split must
			// rejoin losslessly or stored deltas would corrupt on format
			// drift even when whole-trace encode still round-trips.
			sp, err := SplitEncoded(data)
			if err != nil {
				t.Fatalf("SplitEncoded rejects pinned fixture: %v", err)
			}
			joined, err := JoinEncoded(sp.Structure, sp.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(joined, data) {
				t.Fatal("SplitEncoded/JoinEncoded does not round-trip the pinned fixture")
			}
		})
	}
}

// TestEncodeGoldenPinIndexed pins the CYPI section-index sidecar
// byte-for-byte on top of the pinned v1 bodies. Each .cypi fixture must be
// exactly its .cyp sibling plus the sidecar — that prefix property IS the
// backward-compatibility contract (old decoders read indexed files as v1
// streams with trailing bytes) — and the current EncodeIndexed must
// reproduce the whole file exactly. Regenerates with the same -update flag
// as TestEncodeGoldenPin; the .cyp fixture must exist (or be regenerated in
// the same run, which test ordering guarantees).
func TestEncodeGoldenPinIndexed(t *testing.T) {
	for _, name := range []string{"jacobi7", "jacobi64"} {
		t.Run(name, func(t *testing.T) {
			cypPath := filepath.Join("testdata", "golden", name+".cyp")
			path := filepath.Join("testdata", "golden", name+".cypi")
			plain, err := os.ReadFile(cypPath)
			if err != nil {
				t.Fatalf("missing v1 fixture (run TestEncodeGoldenPin with -update first): %v", err)
			}
			if *updateGolden {
				m, err := Decode(bytes.NewReader(plain))
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if _, err := m.EncodeIndexed(&buf); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes, %d sidecar)", path, buf.Len(), buf.Len()-len(plain))
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with -update to generate): %v", err)
			}
			if !bytes.HasPrefix(data, plain) {
				t.Fatalf("%s does not start with the pinned v1 body %s", path, cypPath)
			}
			if !HasSectionIndex(data) {
				t.Fatalf("%s carries no valid CYPI sidecar", path)
			}
			m, err := Decode(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("v1 decoder rejects pinned indexed fixture: %v", err)
			}
			var buf bytes.Buffer
			if _, err := m.EncodeIndexed(&buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), data) {
				t.Fatalf("EncodeIndexed output differs from pinned fixture %s (%d vs %d bytes): the sidecar format changed",
					path, buf.Len(), len(data))
			}
			ms, err := DecodeSelect(data, SelectAll())
			if err != nil {
				t.Fatal(err)
			}
			buf.Reset()
			if _, err := ms.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), plain) {
				t.Fatal("selective decode of pinned indexed fixture re-encodes differently from the v1 body")
			}
		})
	}
}

// writeGolden regenerates one fixture: trace jacobiSrc, merge, and encode
// twice through a decode so the stored bytes are the codec's normal form
// (derived fields like stddev are normalized away and re-encoding is a
// fixed point).
func writeGolden(t *testing.T, path string, ranks int) {
	t.Helper()
	_, ctts, _ := collect(t, jacobiSrc, ranks)
	m, err := All(ctts, 0)
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if _, err := m.Encode(&first); err != nil {
		t.Fatal(err)
	}
	norm, err := Decode(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var canon bytes.Buffer
	if _, err := norm.Encode(&canon); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, canon.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d bytes)", path, canon.Len())
}
