// Package merge implements CYPRESS's inter-process trace compression (paper
// Section IV-B): per-process compressed trace trees share the structure of
// the single static CST, so merging two trees is a lockstep pre-order walk
// comparing only the data at corresponding vertices — O(n) per pair instead
// of the O(n²) alignment dynamic-only tools need. A parallel binary
// reduction combines P per-rank trees with O(n log P) span.
//
// Merged vertex data is annotated with stride-compressed rank sets; process
// ranks inside point-to-point records are unified with the relative ranking
// encoding (current rank ± constant) whenever absolute peers differ.
//
// The reduction is fingerprint-accelerated (hash-consing of vertex data, see
// DESIGN.md "Fingerprint merge"): each entry caches two 64-bit structural
// fingerprints of its payload, one per unification encoding, so compatible
// payloads — the overwhelmingly common SPMD case — are recognized in O(1)
// instead of walking every record. Fingerprint equality plus O(1) shape
// guards implies the exhaustive walk would succeed with identical per-record
// decisions; a mismatch falls back to the walk, so fingerprinting never
// changes grouping, only the cost of discovering it. Whole trees carry a
// span fingerprint over their entry fingerprints, letting a reduction step
// over two uniform trees skip even the per-vertex compatibility checks.
package merge

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"time"

	"repro/internal/cst"
	"repro/internal/ctt"
	"repro/internal/fp"
	"repro/internal/obs"
	ftrace "repro/internal/obs/trace"
	"repro/internal/rankset"
	"repro/internal/stride"
	"repro/internal/timestat"
)

// fingerprintEnabled gates the fingerprint fast paths. It exists so the
// equivalence tests can force the exhaustive path and compare outputs; the
// fast paths are otherwise always on. Toggling it between FromRank and Pair
// calls over the same trees is not supported (entries built while disabled
// carry no fingerprints and permanently use the exhaustive path).
var fingerprintEnabled = true

// Entry is one rank-group's data for a vertex: every rank in Ranks produced
// exactly this data (paper Figure 13's "<p0,p1: k>" annotations).
type Entry struct {
	Ranks *rankset.Set
	Data  *ctt.VData

	// Fingerprint cache (see DESIGN.md "Fingerprint merge"). fpRel/fpAbs are
	// the payload's structural fingerprints under the relative and absolute
	// unification encodings; they are recomputed incrementally — only when a
	// merge actually changes a record's encoding class — not per comparison.
	// fpAbs is computed lazily on the first relative-fingerprint mismatch:
	// identical-SPMD reductions never need it, and it would otherwise double
	// the leaf fingerprinting cost.
	fpRel   fp.Hash
	fpAbs   fp.Hash
	fpOK    bool // fpRel computed (false for decoded trees)
	absDone bool // fpAbs/absOK computed
	absOK   bool // fpAbs valid: no plain p2p record has been rel-encoded
	// owns marks that Ranks storage belongs exclusively to this entry and may
	// be extended in place. FromRank shares one Set across all vertices of a
	// rank, so entries start not owning; the first union copies.
	owns bool
	// lazy is non-zero for an entry whose payload DecodeSelect skipped: Data
	// stays nil until the section is materialized from slot lazy-1 of the
	// tree's lazyPayloads (see entryData). Zero for eagerly decoded and
	// merge-built entries.
	lazy int32
}

// Merged is a job-wide compressed trace tree.
type Merged struct {
	Tree     *cst.Tree
	TreeHash uint64
	NumRanks int
	// noRel disables the relative-ranking peer encoding (ablation only).
	noRel bool
	// Entries[gid] lists rank-groups in ascending order of first rank.
	Entries [][]Entry
	// EventCount is the total number of MPI events across all ranks.
	EventCount int64

	// treeRel spans the per-entry relative fingerprints of the whole tree
	// (per vertex: entry count, then each entry's fpRel). Two uniform trees
	// with equal spans merge without any per-vertex comparisons. treeOK is
	// false when the span is stale or entries lack fingerprints.
	treeRel fp.Hash
	treeOK  bool
	// uniform reports at most one entry per vertex, the precondition for the
	// whole-tree fast path (positional pairing equals scan-order pairing).
	uniform bool
	// groups caches GroupCount as an O(1) shape guard for the span compare.
	groups int
	// lazy, when non-nil, holds the retained encoding and the byte ranges of
	// the payload sections a selective decode skipped (see DecodeSelect).
	lazy *lazyPayloads
}

// executedCount returns the number of vertices holding dynamic data, using
// the count precomputed by the compressor when available.
func executedCount(c *ctt.RankCTT) int {
	if c.Executed > 0 {
		return c.Executed
	}
	n := 0
	for gid := range c.Data {
		if c.Data[gid].Executed() {
			n++
		}
	}
	return n
}

// FromRank wraps a single rank's CTT as a one-rank merged tree. All entries
// of the rank share one backing slice and one rank-set slab — a handful of
// allocations per rank instead of a few per vertex — and every entry owns
// its set, so the reduction above extends rank sets in place at every level.
// (The parallel reduction batches further, carving leaf trees out of chunked
// slabs and recycling right-leaf storage; see leafCtx.)
func FromRank(c *ctt.RankCTT) *Merged {
	n := executedCount(c)
	m := &Merged{}
	m.initFromRank(c, make([][]Entry, len(c.Data)), make([]Entry, n), make([]rankset.Set, n), true)
	return m
}

// initFromRank populates m as the one-rank tree of c, writing entries into
// the provided backing storage: lists (len(c.Data) slice headers), backing
// and sets (executedCount(c) elements each). fresh says the backing is
// zero-valued; recycled scratch storage (fresh=false) is reset as it is
// rewritten, so every word of m's state after the call is independent of the
// storage's previous use.
func (m *Merged) initFromRank(c *ctt.RankCTT, lists [][]Entry, backing []Entry, sets []rankset.Set, fresh bool) {
	*m = Merged{
		Tree:       c.Tree,
		TreeHash:   c.TreeHash,
		NumRanks:   1,
		Entries:    lists,
		EventCount: c.EventCount,
	}
	fpOn := fingerprintEnabled
	k := 0
	for gid := range c.Data {
		d := &c.Data[gid]
		if !d.Executed() {
			m.Entries[gid] = nil
			continue
		}
		e := &backing[k]
		if fresh {
			sets[k].SeedSingle(c.Rank)
		} else {
			sets[k].InitSingle(c.Rank)
		}
		*e = Entry{Ranks: &sets[k], Data: d, owns: true}
		if fpOn {
			e.fpRel = d.FingerprintRelCached()
			e.fpOK = true
		}
		m.Entries[gid] = backing[k : k+1 : k+1]
		k++
	}
	if fpOn {
		// The rank tree's memoized span matches refreshSummary's schema
		// (vertex id, entry count, entry fingerprint per executed vertex).
		m.treeRel = c.SpanRel()
	}
	m.treeOK = fpOn
	m.uniform = true
	m.groups = k
}

// slabChunk is the number of ranks whose durable leaf trees share one set of
// slabs in leafCtx. Chunking balances allocation count (a handful per 64
// ranks instead of per rank) against garbage-collector liveness: the
// reduction consumes most leaf storage quickly — only the left spine
// survives — and per-chunk slabs let the collector reclaim consumed chunks
// mid-reduction instead of keeping one job-wide slab pinned by the
// survivors.
const slabChunk = 64

// leafCtx builds the leaf trees of one reduction lane lazily, as the
// depth-first recursion reaches them. Left-hand leaves — the accumulators
// that survive as the left spine — are carved durably out of chunked slabs.
// Right-hand leaves are consumed by the very next Pair and almost never leave
// anything behind (the fast path copies rank-set values and folds statistics
// by value), so they are all built into one recycled scratch tree; only when
// a Pair's exhaustive fallback copies an unmergeable scratch entry — whose
// rank-set pointer then survives inside the left tree — is the scratch
// retired and reallocated. This halves leaf storage: the dominant term in the
// reduction's allocation footprint.
//
// A leafCtx is single-goroutine state: the parallel reduction hands each
// spawned lane its own.
type leafCtx struct {
	ctts  []*ctt.RankCTT
	noRel bool

	// Durable slab cursors, refilled a chunk at a time.
	merged  []Merged
	lists   [][]Entry
	entries []Entry
	sets    []rankset.Set

	// Recycled right-leaf storage; scratch is nil when retired or not yet
	// allocated.
	scratch        *Merged
	scratchLists   [][]Entry
	scratchEntries []Entry
	scratchSets    []rankset.Set
}

// durableLeaf builds rank i's leaf tree out of the chunked slabs.
func (x *leafCtx) durableLeaf(i int) *Merged {
	c := x.ctts[i]
	nl, ne := len(c.Data), executedCount(c)
	if len(x.merged) == 0 {
		x.merged = make([]Merged, slabChunk)
	}
	if len(x.lists) < nl {
		x.lists = make([][]Entry, nl*slabChunk)
	}
	if len(x.entries) < ne {
		// Entry and set slabs are sized by the current leaf's entry count;
		// jobs whose ranks execute different vertex sets just refill sooner.
		x.entries = make([]Entry, ne*slabChunk)
		x.sets = make([]rankset.Set, ne*slabChunk)
	}
	m := &x.merged[0]
	x.merged = x.merged[1:]
	lists := x.lists[:nl:nl]
	x.lists = x.lists[nl:]
	entries := x.entries[:ne:ne]
	x.entries = x.entries[ne:]
	sets := x.sets[:ne:ne]
	x.sets = x.sets[ne:]
	m.initFromRank(c, lists, entries, sets, true)
	m.noRel = x.noRel
	return m
}

// scratchLeaf builds rank i's leaf tree into the recycled scratch storage.
func (x *leafCtx) scratchLeaf(i int) *Merged {
	c := x.ctts[i]
	nl, ne := len(c.Data), executedCount(c)
	fresh := false
	if x.scratch == nil || len(x.scratchLists) < nl || len(x.scratchEntries) < ne {
		x.scratch = new(Merged)
		x.scratchLists = make([][]Entry, nl)
		x.scratchEntries = make([]Entry, ne)
		x.scratchSets = make([]rankset.Set, ne)
		fresh = true
	} else {
		sink.Inc(obs.MergeScratchReuses)
	}
	x.scratch.initFromRank(c,
		x.scratchLists[:nl:nl],
		x.scratchEntries[:ne:ne],
		x.scratchSets[:ne:ne], fresh)
	x.scratch.noRel = x.noRel
	return x.scratch
}

// pair merges b into a, retiring the scratch tree when an unmergeable
// scratch entry escaped into the survivor.
func (x *leafCtx) pair(a, b *Merged) (*Merged, error) {
	m, escaped, err := pairEsc(a, b)
	if escaped && b == x.scratch {
		x.scratch = nil
		sink.Inc(obs.MergeScratchRetires)
	}
	return m, err
}

// refreshSummary recomputes the whole-tree span and shape guards from the
// cached entry fingerprints. O(vertices + groups); called only after a merge
// step that changed the entry structure.
func (m *Merged) refreshSummary() {
	h := fp.New()
	ok := true
	uniform := true
	groups := 0
	for gid, es := range m.Entries {
		if len(es) == 0 {
			continue
		}
		h = h.Word(uint64(gid)).Word(uint64(len(es)))
		if len(es) > 1 {
			uniform = false
		}
		groups += len(es)
		for i := range es {
			if !es[i].fpOK {
				ok = false
			}
			h = h.Word(uint64(es[i].fpRel))
		}
	}
	m.treeRel = h
	m.treeOK = ok
	m.uniform = uniform
	m.groups = groups
}

// Pair merges b into a and returns a. Both operands are consumed: the
// result aliases and mutates their data. Trees must be identical (SPMD).
func Pair(a, b *Merged) (*Merged, error) {
	m, _, err := pairEsc(a, b)
	return m, err
}

// pairEsc is Pair, additionally reporting whether any of b's entries escaped
// into the survivor (an unmergeable entry copied by the exhaustive fallback,
// whose rank-set pointer then stays reachable from a). The reduction uses
// this to decide whether b's scratch storage is safe to recycle.
func pairEsc(a, b *Merged) (_ *Merged, escaped bool, _ error) {
	if a.TreeHash != b.TreeHash {
		return nil, false, fmt.Errorf("merge: CST hash mismatch: %x vs %x", a.TreeHash, b.TreeHash)
	}
	if len(a.Entries) != len(b.Entries) {
		return nil, false, fmt.Errorf("merge: vertex count mismatch: %d vs %d", len(a.Entries), len(b.Entries))
	}
	// Merging reads and mutates payloads in place, so projected trees must be
	// whole first.
	if err := a.Materialize(); err != nil {
		return nil, false, err
	}
	if err := b.Materialize(); err != nil {
		return nil, false, err
	}
	noRel := a.noRel || b.noRel
	a.noRel = noRel
	st := mergeState{noRel: noRel, fpOn: fingerprintEnabled && !noRel}
	sink.Inc(obs.MergePairs)
	ranks := a.NumRanks + b.NumRanks
	// Lane = reduction depth (log2 of the merged span), so Perfetto renders
	// the reduction tree as one swimlane per level.
	tsp := rec.Begin(ftrace.CatMerge, ftrace.NamePair, int32(bits.Len(uint(ranks))-1))
	treeFast := st.fpOn && a.uniform && b.uniform && a.treeOK && b.treeOK &&
		a.treeRel == b.treeRel && a.groups == b.groups
	if treeFast {
		sink.Inc(obs.MergeTreeFastHits)
		st.pairFast(a, b)
	} else {
		st.dirty = true
		for gid := range a.Entries {
			a.Entries[gid] = st.entryLists(a.Entries[gid], b.Entries[gid])
		}
	}
	st.flush()
	path := int64(ftrace.PairPathWalk)
	switch {
	case treeFast:
		path = ftrace.PairPathTreeFast
	case st.walks == 0:
		path = ftrace.PairPathFP
	}
	tsp.End(int64(ranks), path)
	if st.dirty {
		a.refreshSummary()
	}
	a.NumRanks += b.NumRanks
	a.EventCount += b.EventCount
	return a, st.escaped, nil
}

// mergeState carries per-Pair scratch: the reusable rel buffer of the
// exhaustive compatibility walk (previously allocated per comparison) and
// the fast-path configuration.
type mergeState struct {
	noRel   bool
	fpOn    bool
	dirty   bool // entry structure changed; whole-tree span needs refresh
	escaped bool // an entry of b was copied into a (see pairEsc)
	relBuf  []bool

	// Per-Pair observation tallies, accumulated in plain fields on the hot
	// entry loops and flushed to the package sink once per Pair (see obs.go).
	fpRelHits  int64 // relative-fingerprint fast-path unifications
	fpAbsHits  int64 // absolute-fingerprint fast-path unifications
	walks      int64 // comparisons that fell back to the exhaustive walk
	unmerged   int64 // right entries appended unmerged (new rank group)
	poisonings int64 // records poisoned RelUnsafe by an absolute unification
}

// pairFast merges two uniform trees whose span fingerprints matched. Every
// vertex is expected to hit the O(1) fast path; a vertex that does not
// (possible only under a 64-bit span collision) falls back to the exhaustive
// list merge, preserving correctness.
func (st *mergeState) pairFast(a, b *Merged) {
	for gid := range a.Entries {
		la, lb := a.Entries[gid], b.Entries[gid]
		if len(lb) == 0 {
			continue
		}
		if len(la) == 1 && len(lb) == 1 {
			ea, eb := &la[0], &lb[0]
			// The whole-tree span compare already guarded on the total group
			// count, so the per-entry shape guard is redundant here; the
			// entry fingerprint alone decides.
			if ea.fpRel == eb.fpRel {
				if unifyFastRel(ea.Data, eb.Data) {
					ea.invalidateAbs()
				}
				mergeRanks(ea, eb)
				st.fpRelHits++
				continue
			}
		}
		a.Entries[gid] = st.entryLists(la, lb)
		st.dirty = true
	}
}

// entryLists folds right-hand entries into the left-hand list, unifying
// rank groups whose data is compatible. Left entries are probed in order and
// the first compatible one wins, exactly as the exhaustive-only merge did.
func (st *mergeState) entryLists(left, right []Entry) []Entry {
	for ri := range right {
		re := &right[ri]
		merged := false
		for i := range left {
			if st.tryMerge(&left[i], re) {
				merged = true
				break
			}
		}
		if !merged {
			left = append(left, *re)
			st.escaped = true
			st.unmerged++
		}
	}
	return left
}

// shapeEq is the O(1) shape guard accompanying every fingerprint compare:
// a silent fingerprint collision must also exhibit identical record, cycle,
// and control-vector counts to be accepted (see DESIGN.md).
func shapeEq(a, b *ctt.VData) bool {
	return len(a.Records) == len(b.Records) && len(a.Cycles) == len(b.Cycles) &&
		a.Counts.Len() == b.Counts.Len() && a.Taken.Len() == b.Taken.Len()
}

// tryMerge unifies re into le when their payloads are compatible, reporting
// whether it did. Fingerprint equality takes the O(1) fast paths; any
// mismatch falls back to the exhaustive walk, so the merge decision is
// always exactly the one compatible() would make.
func (st *mergeState) tryMerge(le, re *Entry) bool {
	if st.fpOn && le.fpOK && re.fpOK && shapeEq(le.Data, re.Data) {
		if le.fpRel == re.fpRel {
			if unifyFastRel(le.Data, re.Data) {
				le.invalidateAbs()
			}
			mergeRanks(le, re)
			st.fpRelHits++
			return true
		}
		le.ensureAbs()
		re.ensureAbs()
		if le.absOK && re.absOK && le.fpAbs == re.fpAbs {
			if unifyFastAbs(le.Data, re.Data) {
				// Poisoned records changed class; recompute the stale
				// relative fingerprint (absolute peers are unchanged).
				le.Data.InvalidateFingerprint()
				le.fpRel = le.Data.FingerprintRelCached()
				st.poisonings++
			}
			mergeRanks(le, re)
			st.fpAbsHits++
			return true
		}
	}
	st.walks++
	rel, ok := st.compatible(le.Data, re.Data)
	if !ok {
		return false
	}
	poisoned, relSet := unify(le.Data, re.Data, rel)
	if relSet {
		le.invalidateAbs()
	}
	if poisoned {
		st.poisonings++
		if st.fpOn && le.fpOK {
			le.Data.InvalidateFingerprint()
			le.fpRel = le.Data.FingerprintRelCached()
		}
	}
	mergeRanks(le, re)
	return true
}

// ensureAbs computes the entry's absolute fingerprint on first use.
func (e *Entry) ensureAbs() {
	if !e.absDone {
		e.fpAbs, e.absOK = e.Data.FingerprintAbs()
		e.absDone = true
	}
}

// invalidateAbs marks the absolute fingerprint stale after a record was
// rel-encoded (its absolute peer no longer identifies the group).
func (e *Entry) invalidateAbs() {
	e.absDone = true
	e.absOK = false
}

// mergeRanks extends le's rank set with re's. The reduction always merges a
// lower-rank half with a higher-rank half, so the in-place append fast path
// applies at every level once the entry owns its storage; the append's run
// structure is canonical (identical to rebuilding from sorted members), so
// serialized rank sets are byte-stable regardless of which path ran.
func mergeRanks(le, re *Entry) {
	if le.owns && le.Ranks.TryAppend(re.Ranks) {
		return
	}
	le.Ranks = rankset.Union(le.Ranks, re.Ranks)
	le.owns = true
}

// unifyFastRel applies the relative-encoding unification to a payload pair
// whose relative fingerprints matched, mirroring unify()'s flag discipline
// per encoding class, and folds b's time statistics into a. It reports
// whether a plain p2p record became rel-encoded (invalidating fpAbs).
func unifyFastRel(a, b *ctt.VData) (absInvalid bool) {
	rb := b.Records
	for i, r := range a.Records {
		o := rb[i]
		// Records already rel-encoded by an earlier reduction level — the
		// steady state from level 1 up — need no class decision at all.
		if !r.RelEncoded {
			switch {
			case r.Peers != nil:
				// Peer-pattern records rel-unify (offsets are rank-relative).
				r.RelEncoded = true
			case r.Ev.Op.IsPointToPoint() && !r.RelUnsafe:
				// Plain: equal PeerRel, rel-unify.
				r.RelEncoded = true
				absInvalid = true
				// RelUnsafe records matched on absolute peer: no change.
				// Collectives matched on absolute peer: no change.
			}
		}
		r.Time.Merge(&o.Time)
		r.Compute.Merge(&o.Compute)
	}
	return absInvalid
}

// unifyFastAbs applies the absolute-encoding unification to a payload pair
// whose absolute fingerprints matched: patterns still rel-unify, plain p2p
// records keep their absolute peer but are poisoned RelUnsafe when their
// relative encodings disagree (the surviving PeerRel would be stale for the
// widened group). Reports whether any record was poisoned.
func unifyFastAbs(a, b *ctt.VData) (poisoned bool) {
	rb := b.Records
	for i, r := range a.Records {
		o := rb[i]
		if r.Peers != nil {
			r.RelEncoded = true
		} else if r.Ev.Op.IsPointToPoint() && !r.RelUnsafe {
			if o.RelUnsafe || r.PeerRel != o.PeerRel {
				r.RelUnsafe = true
				poisoned = true
			}
		}
		r.Time.Merge(&o.Time)
		r.Compute.Merge(&o.Compute)
	}
	return poisoned
}

// compatible reports whether two vertex-data payloads are mergeable, and for
// which records the relative-ranking encoding is required (rel[i] true means
// record i unifies relatively). Compatibility requires identical control
// data (loop counts, taken sets) and pairwise-compatible records. The
// returned slice aliases the state's scratch buffer and is valid until the
// next call.
func (st *mergeState) compatible(a, b *ctt.VData) ([]bool, bool) {
	if !a.Counts.Equal(&b.Counts) || !a.Taken.Vector.Equal(&b.Taken.Vector) {
		return nil, false
	}
	if len(a.Records) != len(b.Records) || len(a.Cycles) != len(b.Cycles) {
		return nil, false
	}
	for i := range a.Cycles {
		if a.Cycles[i] != b.Cycles[i] {
			return nil, false
		}
	}
	if cap(st.relBuf) < len(a.Records) {
		st.relBuf = make([]bool, len(a.Records))
	}
	rel := st.relBuf[:len(a.Records)]
	for i := range a.Records {
		r, ok := recordCompatible(a.Records[i], b.Records[i], st.noRel)
		if !ok {
			return nil, false
		}
		rel[i] = r
	}
	return rel, true
}

// recordCompatible reports whether two records carry the same operation
// stream, and whether unification needs the relative peer encoding.
func recordCompatible(a, b *ctt.CommRecord, noRel bool) (rel, ok bool) {
	ea, eb := &a.Ev, &b.Ev
	if a.Count != b.Count || ea.Op != eb.Op || ea.Size != eb.Size ||
		ea.Tag != eb.Tag || ea.Comm != eb.Comm || ea.Wildcard != eb.Wildcard ||
		len(ea.Reqs) != len(eb.Reqs) {
		return false, false
	}
	for i := range ea.Reqs {
		if ea.Reqs[i] != eb.Reqs[i] {
			return false, false
		}
	}
	if !ea.Op.IsPointToPoint() {
		// Roots of collectives and NoPeer sentinels must match absolutely.
		return false, ea.Peer == eb.Peer
	}
	if (a.Peers != nil) != (b.Peers != nil) {
		return false, false
	}
	if a.Peers != nil {
		// Peer-pattern records are rank-relative by construction.
		return true, a.Peers.Equal(b.Peers)
	}
	switch {
	case a.RelEncoded || b.RelEncoded:
		// A record poisoned RelUnsafe carries a PeerRel valid only for the
		// first rank of its group; unifying it relatively would silently
		// misattribute peers, so the pairing is rejected outright.
		if a.RelUnsafe || b.RelUnsafe {
			return false, false
		}
		return true, a.PeerRel == b.PeerRel
	case ea.Peer == eb.Peer:
		return false, true
	case noRel, a.RelUnsafe, b.RelUnsafe:
		return false, false
	default:
		// Absolute peers differ; the relative encoding may still unify them
		// (paper: "current process rank plus or minus a constant").
		return true, a.PeerRel == b.PeerRel
	}
}

// unify folds b's volatile payload (time statistics) into a and applies the
// relative encoding where needed. Records that unify absolutely despite
// disagreeing relative encodings are poisoned RelUnsafe (their PeerRel is
// stale for the widened group; see recordCompatible). It reports whether any
// record was poisoned and whether any plain p2p record became rel-encoded,
// so the caller can refresh the entry's fingerprint cache incrementally.
func unify(a, b *ctt.VData, rel []bool) (poisoned, relSet bool) {
	for i := range a.Records {
		ra, rb := a.Records[i], b.Records[i]
		if rel[i] {
			if !ra.RelEncoded && ra.Peers == nil {
				relSet = true
			}
			ra.RelEncoded = true
		} else if ra.Ev.Op.IsPointToPoint() && ra.Peers == nil && !ra.RelUnsafe {
			if rb.RelUnsafe || ra.PeerRel != rb.PeerRel {
				ra.RelUnsafe = true
				poisoned = true
			}
		}
		ra.Time.Merge(&rb.Time)
		ra.Compute.Merge(&rb.Compute)
	}
	return poisoned, relSet
}

// AllNoRelative is All with the relative-ranking encoding disabled, for the
// ablation benchmark quantifying how much that encoding contributes. It uses
// the same parallel binary reduction as All, so the ablation isolates the
// encoding's effect rather than also changing the merge schedule. (The
// fingerprint fast paths are also bypassed: they encode the relative-first
// unification policy, which is exactly what this ablation removes.)
func AllNoRelative(ctts []*ctt.RankCTT, workers int) (*Merged, error) {
	return all(ctts, workers, true)
}

// All merges the per-rank trees of a job into one tree using a parallel
// binary reduction (paper: "We can use a parallel algorithm to merge all the
// CTTs", giving O(n log P)). workers <= 0 uses GOMAXPROCS.
func All(ctts []*ctt.RankCTT, workers int) (*Merged, error) {
	return all(ctts, workers, false)
}

// all is the shared reduction behind All and AllNoRelative. A bounded
// semaphore admits at most `workers` concurrent goroutines; when the
// semaphore is saturated the left half is reduced inline, so the recursion
// degrades gracefully to the serial schedule instead of blocking.
//
// Leaves are built lazily as the depth-first recursion reaches them (see
// leafCtx), so right-hand leaf storage is recycled and consumed leaf trees
// die young instead of sitting in an up-front array until the reduction
// passes them. Each spawned goroutine gets its own leafCtx; the recursion's
// in-order schedule guarantees a lane's scratch leaf is consumed by the very
// next Pair on that lane before another scratch leaf is built.
func all(ctts []*ctt.RankCTT, workers int, noRel bool) (*Merged, error) {
	if len(ctts) == 0 {
		return nil, fmt.Errorf("merge: no trees")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	var reduce func(x *leafCtx, lo, hi int, rightRole bool) (*Merged, error)
	reduce = func(x *leafCtx, lo, hi int, rightRole bool) (*Merged, error) {
		if hi-lo == 1 {
			if rightRole {
				return x.scratchLeaf(lo), nil
			}
			return x.durableLeaf(lo), nil
		}
		mid := (lo + hi) / 2
		var left, right *Merged
		var lerr, rerr error
		if workers > 1 {
			var wg sync.WaitGroup
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					left, lerr = reduce(&leafCtx{ctts: ctts, noRel: noRel}, lo, mid, false)
				}()
			default:
				left, lerr = reduce(x, lo, mid, false)
			}
			right, rerr = reduce(x, mid, hi, true)
			wg.Wait()
		} else {
			// Single-worker schedule: skip the goroutine machinery entirely
			// (one closure + waitgroup per internal node otherwise).
			left, lerr = reduce(x, lo, mid, false)
			right, rerr = reduce(x, mid, hi, true)
		}
		if lerr != nil {
			return nil, lerr
		}
		if rerr != nil {
			return nil, rerr
		}
		if sink.Enabled() {
			// Reduction level: 1 merges two leaves, k merges two 2^(k-1)-rank
			// halves. Spans wider than 2^8 ranks fold into the L8 histogram.
			t0 := time.Now()
			m, err := x.pair(left, right)
			sink.ObserveSince(obs.MergePairHist(bits.Len(uint(hi-lo))-1), t0)
			return m, err
		}
		return x.pair(left, right)
	}
	sp := sink.Start(obs.StageMerge)
	defer sp.End()
	return reduce(&leafCtx{ctts: ctts, noRel: noRel}, 0, len(ctts), false)
}

// Serial merges without parallelism, for the ablation benchmark.
func Serial(ctts []*ctt.RankCTT) (*Merged, error) {
	if len(ctts) == 0 {
		return nil, fmt.Errorf("merge: no trees")
	}
	acc := FromRank(ctts[0])
	for _, c := range ctts[1:] {
		var err error
		acc, err = Pair(acc, FromRank(c))
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// GroupCount returns the total number of rank-group entries, a measure of
// how SPMD-uniform the job was (1 group per executed vertex is ideal).
func (m *Merged) GroupCount() int {
	n := 0
	for _, es := range m.Entries {
		n += len(es)
	}
	return n
}

// rankView adapts one rank's view of the merged tree to replay.Source.
type rankView struct {
	m    *Merged
	rank int
}

// ForRank returns a replay source for one rank of the merged tree.
func (m *Merged) ForRank(rank int) rankView { return rankView{m, rank} }

func (v rankView) data(gid int32) *ctt.VData {
	es := v.m.Entries[gid]
	for i := range es {
		if es[i].Ranks.Contains(v.rank) {
			d, err := v.m.entryData(&es[i])
			if err != nil {
				// replay.Source has no error channel; a corrupt lazy section
				// reads as unexecuted here. The Streamer path surfaces the
				// error instead, and Materialize reports it directly.
				return nil
			}
			return d
		}
	}
	return nil
}

// Tree implements replay.Source.
func (v rankView) Tree() *cst.Tree { return v.m.Tree }

// Counts implements replay.Source.
func (v rankView) Counts(gid int32) *stride.Vector {
	if d := v.data(gid); d != nil {
		return &d.Counts
	}
	return nil
}

// Taken implements replay.Source.
func (v rankView) Taken(gid int32) *stride.Set {
	if d := v.data(gid); d != nil {
		return &d.Taken
	}
	return nil
}

// Records implements replay.Source.
func (v rankView) Records(gid int32) []*ctt.CommRecord {
	if d := v.data(gid); d != nil {
		return d.Records
	}
	return nil
}

// Cycles implements replay.Source.
func (v rankView) Cycles(gid int32) []ctt.Cycle {
	if d := v.data(gid); d != nil {
		return d.Cycles
	}
	return nil
}

// statMode guesses the timestat mode from the first record (for encode).
func (m *Merged) statMode() timestat.Mode {
	for _, es := range m.Entries {
		for _, e := range es {
			if e.Data == nil {
				// Unmaterialized lazy payload; encode materializes the whole
				// tree before calling here.
				continue
			}
			for _, r := range e.Data.Records {
				if r.Time.Hist != nil {
					return timestat.ModeHistogram
				}
				return timestat.ModeMeanStddev
			}
		}
	}
	return timestat.ModeMeanStddev
}
