// Package merge implements CYPRESS's inter-process trace compression (paper
// Section IV-B): per-process compressed trace trees share the structure of
// the single static CST, so merging two trees is a lockstep pre-order walk
// comparing only the data at corresponding vertices — O(n) per pair instead
// of the O(n²) alignment dynamic-only tools need. A parallel binary
// reduction combines P per-rank trees with O(n log P) span.
//
// Merged vertex data is annotated with stride-compressed rank sets; process
// ranks inside point-to-point records are unified with the relative ranking
// encoding (current rank ± constant) whenever absolute peers differ.
package merge

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cst"
	"repro/internal/ctt"
	"repro/internal/rankset"
	"repro/internal/stride"
	"repro/internal/timestat"
)

// Entry is one rank-group's data for a vertex: every rank in Ranks produced
// exactly this data (paper Figure 13's "<p0,p1: k>" annotations).
type Entry struct {
	Ranks *rankset.Set
	Data  *ctt.VData
}

// Merged is a job-wide compressed trace tree.
type Merged struct {
	Tree     *cst.Tree
	TreeHash uint64
	NumRanks int
	// noRel disables the relative-ranking peer encoding (ablation only).
	noRel bool
	// Entries[gid] lists rank-groups in ascending order of first rank.
	Entries [][]Entry
	// EventCount is the total number of MPI events across all ranks.
	EventCount int64
}

// FromRank wraps a single rank's CTT as a one-rank merged tree.
func FromRank(c *ctt.RankCTT) *Merged {
	m := &Merged{
		Tree:       c.Tree,
		TreeHash:   c.TreeHash,
		NumRanks:   1,
		Entries:    make([][]Entry, len(c.Data)),
		EventCount: c.EventCount,
	}
	rs := rankset.Single(c.Rank)
	for gid := range c.Data {
		d := &c.Data[gid]
		if len(d.Records) == 0 && d.Counts.Len() == 0 && d.Taken.Len() == 0 {
			continue // vertex never executed by this rank
		}
		m.Entries[gid] = []Entry{{Ranks: rs, Data: d}}
	}
	return m
}

// Pair merges b into a and returns a. Both operands are consumed: the
// result aliases and mutates their data. Trees must be identical (SPMD).
func Pair(a, b *Merged) (*Merged, error) {
	if a.TreeHash != b.TreeHash {
		return nil, fmt.Errorf("merge: CST hash mismatch: %x vs %x", a.TreeHash, b.TreeHash)
	}
	if len(a.Entries) != len(b.Entries) {
		return nil, fmt.Errorf("merge: vertex count mismatch: %d vs %d", len(a.Entries), len(b.Entries))
	}
	noRel := a.noRel || b.noRel
	for gid := range a.Entries {
		a.Entries[gid] = mergeEntryLists(a.Entries[gid], b.Entries[gid], noRel)
	}
	a.NumRanks += b.NumRanks
	a.EventCount += b.EventCount
	return a, nil
}

// mergeEntryLists folds right-hand entries into the left-hand list, unifying
// rank groups whose data is compatible.
func mergeEntryLists(left, right []Entry, noRel bool) []Entry {
	for _, re := range right {
		merged := false
		for i := range left {
			if rel, ok := compatible(left[i].Data, re.Data, noRel); ok {
				unify(left[i].Data, re.Data, rel)
				left[i].Ranks = rankset.Union(left[i].Ranks, re.Ranks)
				merged = true
				break
			}
		}
		if !merged {
			left = append(left, re)
		}
	}
	return left
}

// compatible reports whether two vertex-data payloads are mergeable, and for
// which records the relative-ranking encoding is required (rel[i] true means
// record i unifies relatively). Compatibility requires identical control
// data (loop counts, taken sets) and pairwise-compatible records.
func compatible(a, b *ctt.VData, noRel bool) ([]bool, bool) {
	if !a.Counts.Equal(&b.Counts) || !a.Taken.Vector.Equal(&b.Taken.Vector) {
		return nil, false
	}
	if len(a.Records) != len(b.Records) || len(a.Cycles) != len(b.Cycles) {
		return nil, false
	}
	for i := range a.Cycles {
		if a.Cycles[i] != b.Cycles[i] {
			return nil, false
		}
	}
	rel := make([]bool, len(a.Records))
	for i := range a.Records {
		r, ok := recordCompatible(a.Records[i], b.Records[i], noRel)
		if !ok {
			return nil, false
		}
		rel[i] = r
	}
	return rel, true
}

// recordCompatible reports whether two records carry the same operation
// stream, and whether unification needs the relative peer encoding.
func recordCompatible(a, b *ctt.CommRecord, noRel bool) (rel, ok bool) {
	ea, eb := &a.Ev, &b.Ev
	if a.Count != b.Count || ea.Op != eb.Op || ea.Size != eb.Size ||
		ea.Tag != eb.Tag || ea.Comm != eb.Comm || ea.Wildcard != eb.Wildcard ||
		len(ea.Reqs) != len(eb.Reqs) {
		return false, false
	}
	for i := range ea.Reqs {
		if ea.Reqs[i] != eb.Reqs[i] {
			return false, false
		}
	}
	if !ea.Op.IsPointToPoint() {
		// Roots of collectives and NoPeer sentinels must match absolutely.
		return false, ea.Peer == eb.Peer
	}
	if (a.Peers != nil) != (b.Peers != nil) {
		return false, false
	}
	if a.Peers != nil {
		// Peer-pattern records are rank-relative by construction.
		return true, a.Peers.Equal(b.Peers)
	}
	switch {
	case a.RelEncoded || b.RelEncoded:
		return true, a.PeerRel == b.PeerRel
	case ea.Peer == eb.Peer:
		return false, true
	case noRel:
		return false, false
	default:
		// Absolute peers differ; the relative encoding may still unify them
		// (paper: "current process rank plus or minus a constant").
		return true, a.PeerRel == b.PeerRel
	}
}

// unify folds b's volatile payload (time statistics) into a and applies the
// relative encoding where needed.
func unify(a, b *ctt.VData, rel []bool) {
	for i := range a.Records {
		if rel[i] {
			a.Records[i].RelEncoded = true
		}
		a.Records[i].Time.Merge(&b.Records[i].Time)
		a.Records[i].Compute.Merge(&b.Records[i].Compute)
	}
}

// AllNoRelative is All with the relative-ranking encoding disabled, for the
// ablation benchmark quantifying how much that encoding contributes. It uses
// the same parallel binary reduction as All, so the ablation isolates the
// encoding's effect rather than also changing the merge schedule.
func AllNoRelative(ctts []*ctt.RankCTT, workers int) (*Merged, error) {
	return all(ctts, workers, true)
}

// All merges the per-rank trees of a job into one tree using a parallel
// binary reduction (paper: "We can use a parallel algorithm to merge all the
// CTTs", giving O(n log P)). workers <= 0 uses GOMAXPROCS.
func All(ctts []*ctt.RankCTT, workers int) (*Merged, error) {
	return all(ctts, workers, false)
}

// all is the shared reduction behind All and AllNoRelative. A bounded
// semaphore admits at most `workers` concurrent goroutines; when the
// semaphore is saturated the left half is reduced inline, so the recursion
// degrades gracefully to the serial schedule instead of blocking.
func all(ctts []*ctt.RankCTT, workers int, noRel bool) (*Merged, error) {
	if len(ctts) == 0 {
		return nil, fmt.Errorf("merge: no trees")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ms := make([]*Merged, len(ctts))
	for i, c := range ctts {
		ms[i] = FromRank(c)
		ms[i].noRel = noRel
	}
	sem := make(chan struct{}, workers)
	var reduce func(lo, hi int) (*Merged, error)
	reduce = func(lo, hi int) (*Merged, error) {
		if hi-lo == 1 {
			return ms[lo], nil
		}
		mid := (lo + hi) / 2
		var left, right *Merged
		var lerr, rerr error
		var wg sync.WaitGroup
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				left, lerr = reduce(lo, mid)
			}()
		default:
			left, lerr = reduce(lo, mid)
		}
		right, rerr = reduce(mid, hi)
		wg.Wait()
		if lerr != nil {
			return nil, lerr
		}
		if rerr != nil {
			return nil, rerr
		}
		return Pair(left, right)
	}
	return reduce(0, len(ms))
}

// Serial merges without parallelism, for the ablation benchmark.
func Serial(ctts []*ctt.RankCTT) (*Merged, error) {
	if len(ctts) == 0 {
		return nil, fmt.Errorf("merge: no trees")
	}
	acc := FromRank(ctts[0])
	for _, c := range ctts[1:] {
		var err error
		acc, err = Pair(acc, FromRank(c))
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// GroupCount returns the total number of rank-group entries, a measure of
// how SPMD-uniform the job was (1 group per executed vertex is ideal).
func (m *Merged) GroupCount() int {
	n := 0
	for _, es := range m.Entries {
		n += len(es)
	}
	return n
}

// rankView adapts one rank's view of the merged tree to replay.Source.
type rankView struct {
	m    *Merged
	rank int
}

// ForRank returns a replay source for one rank of the merged tree.
func (m *Merged) ForRank(rank int) rankView { return rankView{m, rank} }

func (v rankView) data(gid int32) *ctt.VData {
	for _, e := range v.m.Entries[gid] {
		if e.Ranks.Contains(v.rank) {
			return e.Data
		}
	}
	return nil
}

// Tree implements replay.Source.
func (v rankView) Tree() *cst.Tree { return v.m.Tree }

// Counts implements replay.Source.
func (v rankView) Counts(gid int32) *stride.Vector {
	if d := v.data(gid); d != nil {
		return &d.Counts
	}
	return nil
}

// Taken implements replay.Source.
func (v rankView) Taken(gid int32) *stride.Set {
	if d := v.data(gid); d != nil {
		return &d.Taken
	}
	return nil
}

// Records implements replay.Source.
func (v rankView) Records(gid int32) []*ctt.CommRecord {
	if d := v.data(gid); d != nil {
		return d.Records
	}
	return nil
}

// Cycles implements replay.Source.
func (v rankView) Cycles(gid int32) []ctt.Cycle {
	if d := v.data(gid); d != nil {
		return d.Cycles
	}
	return nil
}

// statMode guesses the timestat mode from the first record (for encode).
func (m *Merged) statMode() timestat.Mode {
	for _, es := range m.Entries {
		for _, e := range es {
			for _, r := range e.Data.Records {
				if r.Time.Hist != nil {
					return timestat.ModeHistogram
				}
				return timestat.ModeMeanStddev
			}
		}
	}
	return timestat.ModeMeanStddev
}
