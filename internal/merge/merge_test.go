package merge

import (
	"bytes"
	"testing"

	"repro/internal/cst"
	"repro/internal/ctt"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/mpisim"
	"repro/internal/replay"
	"repro/internal/timestat"
	"repro/internal/trace"
)

const jacobiSrc = `
func main() {
	for var k = 0; k < 10; k = k + 1 {
		if rank < size - 1 { send(rank + 1, 8000, 0); }
		if rank > 0 { recv(rank - 1, 8000, 0); }
		if rank > 0 { send(rank - 1, 8000, 0); }
		if rank < size - 1 { recv(rank + 1, 8000, 0); }
	}
	reduce(0, 8);
}`

// collect runs src on n ranks under CYPRESS compression.
func collect(t testing.TB, src string, n int) (*cst.Tree, []*ctt.RankCTT, [][]trace.Event) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := lang.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	irProg, err := ir.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	tree, err := cst.Build(irProg)
	if err != nil {
		t.Fatalf("cst: %v", err)
	}
	comps := make([]*ctt.Compressor, n)
	raws := make([]*trace.CollectorSink, n)
	sinks := make([]trace.Sink, n)
	for i := range sinks {
		comps[i] = ctt.NewCompressor(tree, i, timestat.ModeMeanStddev)
		raws[i] = &trace.CollectorSink{}
		sinks[i] = teeSink{raws[i], comps[i]}
	}
	if _, err := mpisim.Run(n, mpisim.DefaultParams(), sinks, func(r *mpisim.Rank) {
		interp.Execute(prog, r)
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	ctts := make([]*ctt.RankCTT, n)
	rawEvents := make([][]trace.Event, n)
	for i := range comps {
		ctts[i] = comps[i].Finish()
		rawEvents[i] = raws[i].Events
	}
	return tree, ctts, rawEvents
}

type teeSink struct {
	raw  *trace.CollectorSink
	comp *ctt.Compressor
}

func (t teeSink) LoopEnter(s int32)           { t.comp.LoopEnter(s) }
func (t teeSink) LoopIter(s int32)            { t.comp.LoopIter(s) }
func (t teeSink) BranchEnter(s int32, a int8) { t.comp.BranchEnter(s, a) }
func (t teeSink) BranchSkip(s int32)          { t.comp.BranchSkip(s) }
func (t teeSink) CallEnter(s int32)           { t.comp.CallEnter(s) }
func (t teeSink) StructExit()                 { t.comp.StructExit() }
func (t teeSink) CommSite(s int32)            { t.comp.CommSite(s) }
func (t teeSink) Event(e *trace.Event)        { t.raw.Event(e); t.comp.Event(e) }
func (t teeSink) Finalize()                   { t.comp.Finalize() }

func TestJacobiMergeGroups(t *testing.T) {
	n := 16
	tree, ctts, _ := collect(t, jacobiSrc, n)
	m, err := All(ctts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRanks != n {
		t.Fatalf("NumRanks = %d", m.NumRanks)
	}
	// The paper's Figure 4/13 grouping: interior ranks share one group on
	// the send/recv leaves; loop counts are identical for all ranks.
	loop := tree.Root.Children[0]
	loopEntries := m.Entries[loop.GID]
	if len(loopEntries) != 1 {
		t.Fatalf("loop entries = %d, want 1 (all ranks same count)", len(loopEntries))
	}
	if loopEntries[0].Ranks.Len() != n {
		t.Fatalf("loop group covers %d ranks", loopEntries[0].Ranks.Len())
	}
	if loopEntries[0].Data.Counts.String() != "[<10>]" {
		t.Fatalf("merged loop counts = %s", loopEntries[0].Data.Counts.String())
	}
	// The first send leaf (rank < size-1): ranks 0..n-2 share one relative-
	// encoded record group.
	var sendLeaf *cst.Vertex
	tree.Walk(func(v *cst.Vertex, _ int) {
		if sendLeaf == nil && v.Kind == cst.KindComm && v.Op == trace.OpSend {
			sendLeaf = v
		}
	})
	se := m.Entries[sendLeaf.GID]
	if len(se) != 1 {
		t.Fatalf("send leaf entries = %d, want 1", len(se))
	}
	if se[0].Ranks.Len() != n-1 {
		t.Fatalf("send group covers %d ranks, want %d", se[0].Ranks.Len(), n-1)
	}
	rec := se[0].Data.Records[0]
	if !rec.RelEncoded || rec.PeerRel != 1 {
		t.Fatalf("send record not relative-encoded: %+v", rec)
	}
	if rec.Count != 10 {
		t.Fatalf("send count = %d", rec.Count)
	}
	// Time stats aggregated across the group.
	if rec.Time.N != 10*(int64(n)-1) {
		t.Fatalf("merged time samples = %d", rec.Time.N)
	}
}

func TestMergedSizeNearConstantInP(t *testing.T) {
	sizes := map[int]int64{}
	for _, n := range []int{4, 16, 64} {
		_, ctts, _ := collect(t, jacobiSrc, n)
		m, err := All(ctts, 0)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		sz, err := m.Encode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		sizes[n] = sz
	}
	// Near-constant: 16x more ranks must grow the file by far less than 4x.
	if sizes[64] > sizes[4]*4 {
		t.Fatalf("merged trace grows with P: %v", sizes)
	}
}

func TestReplayFromMergedLossless(t *testing.T) {
	n := 8
	_, ctts, raw := collect(t, jacobiSrc, n)
	m, err := All(ctts, 0)
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < n; rank++ {
		seq, err := replay.Sequence(m.ForRank(rank), rank)
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		if err := replay.Equivalent(raw[rank], seq); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestParallelSerialAgree(t *testing.T) {
	_, ctts, _ := collect(t, jacobiSrc, 12)
	// Serial consumes the CTTs, so collect twice.
	_, ctts2, _ := collect(t, jacobiSrc, 12)
	mp, err := All(ctts, 4)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Serial(ctts2)
	if err != nil {
		t.Fatal(err)
	}
	if mp.GroupCount() != ms.GroupCount() {
		t.Fatalf("group counts differ: parallel %d vs serial %d", mp.GroupCount(), ms.GroupCount())
	}
	for rank := 0; rank < 12; rank++ {
		a, err := replay.Sequence(mp.ForRank(rank), rank)
		if err != nil {
			t.Fatal(err)
		}
		b, err := replay.Sequence(ms.ForRank(rank), rank)
		if err != nil {
			t.Fatal(err)
		}
		if err := replay.Equivalent(a, b); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	n := 6
	_, ctts, raw := collect(t, jacobiSrc, n)
	m, err := All(ctts, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRanks != n || got.EventCount != m.EventCount {
		t.Fatalf("header mismatch: %+v", got)
	}
	for rank := 0; rank < n; rank++ {
		seq, err := replay.Sequence(got.ForRank(rank), rank)
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		if err := replay.Equivalent(raw[rank], seq); err != nil {
			t.Fatalf("rank %d after decode: %v", rank, err)
		}
	}
}

func TestGzipSmallerOrClose(t *testing.T) {
	_, ctts, _ := collect(t, jacobiSrc, 16)
	m, err := All(ctts, 0)
	if err != nil {
		t.Fatal(err)
	}
	var plain, zipped bytes.Buffer
	ps, err := m.Encode(&plain)
	if err != nil {
		t.Fatal(err)
	}
	zs, err := m.EncodeGzip(&zipped)
	if err != nil {
		t.Fatal(err)
	}
	if zs <= 0 || ps <= 0 {
		t.Fatal("zero sizes")
	}
	if zs > ps+64 {
		t.Fatalf("gzip hurt badly: %d vs %d", zs, ps)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncation anywhere must error, not panic.
	_, ctts, _ := collect(t, `func main() { barrier(); }`, 2)
	m, _ := All(ctts, 0)
	var buf bytes.Buffer
	if _, err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 20, len(full) / 2, len(full) - 1} {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestHashMismatchRejected(t *testing.T) {
	_, a, _ := collect(t, `func main() { barrier(); }`, 1)
	_, b, _ := collect(t, `func main() { allreduce(8); }`, 1)
	if _, err := Pair(FromRank(a[0]), FromRank(b[0])); err == nil {
		t.Fatal("different programs merged")
	}
}

func TestDivergentDataKeptSeparate(t *testing.T) {
	// Rank pairs exchange either 5 or 9 messages: the send loop's iteration
	// counts split the even ranks into two groups.
	src := `
func main() {
	var pair = rank / 2;
	var k = 5;
	if pair % 2 == 1 { k = 9; }
	if rank % 2 == 0 {
		for var i = 0; i < k; i = i + 1 { send(rank + 1, 64, 0); }
	} else {
		for var i = 0; i < k; i = i + 1 { recv(rank - 1, 64, 0); }
	}
}`
	tree, ctts, _ := collect(t, src, 8)
	m, err := All(ctts, 0)
	if err != nil {
		t.Fatal(err)
	}
	var loopV *cst.Vertex
	tree.Walk(func(v *cst.Vertex, _ int) {
		if loopV == nil && v.Kind == cst.KindLoop {
			loopV = v
		}
	})
	es := m.Entries[loopV.GID]
	if len(es) != 2 {
		t.Fatalf("send-loop entries = %d, want 2 (k=5 vs k=9)", len(es))
	}
	if es[0].Ranks.Len() != 2 || es[1].Ranks.Len() != 2 {
		t.Fatalf("groups not 2/2: %v vs %v", es[0].Ranks, es[1].Ranks)
	}
}

func TestCollectiveRootsStayAbsolute(t *testing.T) {
	tree, ctts, _ := collect(t, `func main() { bcast(0, 512); }`, 8)
	m, err := All(ctts, 0)
	if err != nil {
		t.Fatal(err)
	}
	var leaf *cst.Vertex
	tree.Walk(func(v *cst.Vertex, _ int) {
		if leaf == nil && v.Kind == cst.KindComm && v.Op == trace.OpBcast {
			leaf = v
		}
	})
	es := m.Entries[leaf.GID]
	if len(es) != 1 {
		t.Fatalf("bcast entries = %d, want 1", len(es))
	}
	rec := es[0].Data.Records[0]
	if rec.RelEncoded || rec.Ev.Peer != 0 {
		t.Fatalf("collective root mishandled: %+v", rec)
	}
}

func TestAllNoRelativeSplitsStencilGroups(t *testing.T) {
	// Without the relative ranking encoding, every interior rank's records
	// keep distinct absolute peers, so groups cannot merge (the ablation the
	// paper's adopted encoding avoids).
	_, withRel, _ := collect(t, jacobiSrc, 10)
	m1, err := All(withRel, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, withoutRel, _ := collect(t, jacobiSrc, 10)
	m2, err := AllNoRelative(withoutRel, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m2.GroupCount() <= m1.GroupCount() {
		t.Fatalf("no-relative groups %d should exceed relative groups %d",
			m2.GroupCount(), m1.GroupCount())
	}
	// Replay must still be lossless: absolute peers are kept per group.
	for rank := 0; rank < 10; rank++ {
		a, err := replay.Sequence(m1.ForRank(rank), rank)
		if err != nil {
			t.Fatal(err)
		}
		b, err := replay.Sequence(m2.ForRank(rank), rank)
		if err != nil {
			t.Fatal(err)
		}
		if err := replay.Equivalent(a, b); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}
