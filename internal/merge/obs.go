package merge

import (
	"repro/internal/obs"
	ftrace "repro/internal/obs/trace"
)

// sink is the package's attached metrics sink. nil (the default) disables
// observation. It is wired once at startup via SetObs; the reduction's worker
// goroutines only ever read it, so no synchronization is needed.
var sink *obs.Sink

// SetObs attaches a metrics sink to the merge package (reduction, codec, and
// streamer counters). Call before starting a merge; a nil sink disables
// observation. Not safe to call concurrently with a running reduction.
func SetObs(s *obs.Sink) { sink = s }

// rec is the package's attached flight recorder (merge-pair spans on the
// "merge" track, codec spans on "codec", skeleton/memo events on "replay").
// nil (the default) records nothing. Same wiring discipline as sink.
var rec *ftrace.Recorder

// SetTrace attaches a flight recorder to the merge package. Call before
// starting a merge; nil disables recording. Not safe to call concurrently
// with a running reduction.
func SetTrace(r *ftrace.Recorder) { rec = r }

// NameMemoHit arg1 annotations: which memo level answered a replay class
// lookup.
const (
	memoHitRank  = 0 // the rank's own cached class pointer
	memoHitClass = 1 // a structural class first resolved by another rank
)

// flush folds the mergeState's locally-accumulated per-Pair tallies into the
// sink in one batch. The hot entry loops bump plain int64 fields — no atomics,
// no nil checks beyond this single call — so instrumentation stays invisible
// on the per-record fast paths.
func (st *mergeState) flush() {
	if sink == nil {
		return
	}
	sink.Add(obs.MergeFPRelHits, st.fpRelHits)
	sink.Add(obs.MergeFPAbsHits, st.fpAbsHits)
	sink.Add(obs.MergeExhaustiveWalks, st.walks)
	sink.Add(obs.MergeEntriesUnmerged, st.unmerged)
	sink.Add(obs.MergePoisonings, st.poisonings)
}
