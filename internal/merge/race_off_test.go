//go:build !race

package merge

// raceEnabled reports whether the race detector is active. The detector
// makes sync.Pool drop items at random, so pooled paths allocate and
// allocation-count assertions become meaningless under -race.
const raceEnabled = false
