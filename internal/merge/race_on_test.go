//go:build race

package merge

const raceEnabled = true
