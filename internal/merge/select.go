package merge

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/blockio"
	"repro/internal/ctt"
	"repro/internal/encpool"
	"repro/internal/obs"
	ftrace "repro/internal/obs/trace"
	"repro/internal/rankset"
	"repro/internal/timestat"
)

// Selective decode with projection pushdown. The v1 encoding interleaves the
// (tiny) structure stream — header, CST, rank sets — with the (large) per-entry
// VData timing payloads, so even a single-rank query historically paid a
// full-tree payload decode. DecodeSelect pushes the rank projection into the
// decoder: structure decodes fully, but a payload section is materialized only
// when its entry's rank set intersects the selection; everything else is
// recorded as a byte range against the retained encoding and filled lazily on
// first touch.
//
// The section index that makes skipping O(1) per entry is a versioned sidecar
// appended AFTER the complete v1 body (see EncodeIndexed), so indexed files
// remain bit-compatible with every existing decoder: raw and gzip streams have
// always tolerated trailing bytes, and the golden pins cover the body bytes
// unchanged. Index-less encodings still decode selectively — the skip offsets
// are derived with an allocation-free grammar walk over the raw bytes.

// Selection names the ranks a selective decode must materialize payloads for.
// The zero value selects nothing (structure-only decode).
type Selection struct {
	all   bool
	ranks []int // sorted, deduplicated
}

// SelectAll selects every rank: DecodeSelect materializes all payloads
// eagerly, matching a full Decode.
func SelectAll() Selection { return Selection{all: true} }

// SelectRanks selects the given ranks. With no arguments the selection is
// empty and DecodeSelect decodes structure only, leaving every payload lazy.
func SelectRanks(ranks ...int) Selection {
	rs := append([]int(nil), ranks...)
	sort.Ints(rs)
	n := 0
	for i, r := range rs {
		if i == 0 || r != rs[n-1] {
			rs[n] = r
			n++
		}
	}
	return Selection{ranks: rs[:n]}
}

// All reports whether the selection covers every rank.
func (s Selection) All() bool { return s.all }

// Ranks returns the selected ranks, sorted and deduplicated (nil when All).
func (s Selection) Ranks() []int { return append([]int(nil), s.ranks...) }

// Contains reports whether rank is selected.
func (s Selection) Contains(rank int) bool {
	if s.all {
		return true
	}
	i := sort.SearchInts(s.ranks, rank)
	return i < len(s.ranks) && s.ranks[i] == rank
}

// matches reports whether any selected rank is a member of set.
func (s Selection) matches(set *rankset.Set) bool {
	if s.all {
		return true
	}
	for _, r := range s.ranks {
		if set.Contains(r) {
			return true
		}
	}
	return false
}

// The sidecar layout:
//
//	"CYPI"  u(version=1)  u(entryCount)  entryCount x u(vdataLen)
//	u32le(sidecar length from magic through last varint)  "IPYC"
//
// The fixed 8-byte trailer makes the index discoverable from the END of the
// encoding, so DecodeSelect needs no body length up front; the validation in
// parseIndex (magic, version, length walk landing exactly on the trailer)
// makes body bytes that merely end in "IPYC" fail closed into the index-less
// path rather than misparse.
var (
	indexMagic   = [4]byte{'C', 'Y', 'P', 'I'}
	indexTrailer = [4]byte{'I', 'P', 'Y', 'C'}
)

const indexVersion = 1

// appendIndex serializes the section-index sidecar for the given per-entry
// VData section lengths.
func appendIndex(dst []byte, lens []uint64) []byte {
	start := len(dst)
	dst = append(dst, indexMagic[:]...)
	dst = binary.AppendUvarint(dst, indexVersion)
	dst = binary.AppendUvarint(dst, uint64(len(lens)))
	for _, l := range lens {
		dst = binary.AppendUvarint(dst, l)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(dst)-start))
	return append(dst, indexTrailer[:]...)
}

// parseIndex validates and reads a CYPI sidecar anchored at the end of enc,
// returning the per-entry section lengths and the offset where the v1 body
// ends. ok is false when enc carries no (valid) sidecar, in which case
// bodyEnd is len(enc).
func parseIndex(enc []byte) (lens []uint64, bodyEnd int, ok bool) {
	n := len(enc)
	const trailer = 8 // u32le sidecar length + "IPYC"
	const minSidecar = 6
	if n < trailer+minSidecar {
		return nil, n, false
	}
	if [4]byte(enc[n-4:]) != indexTrailer {
		return nil, n, false
	}
	sideLen := int(binary.LittleEndian.Uint32(enc[n-trailer : n-4]))
	start := n - trailer - sideLen
	if sideLen < minSidecar || start < 0 {
		return nil, n, false
	}
	if [4]byte(enc[start:start+4]) != indexMagic {
		return nil, n, false
	}
	c := &bcur{b: enc[:n-trailer], off: start + 4}
	if v := c.u(); c.err != nil || v != indexVersion {
		return nil, n, false
	}
	cnt := c.u()
	// Each length costs at least one byte, so a valid count is bounded by the
	// sidecar itself — a hostile count cannot force a large allocation.
	if c.err != nil || cnt > uint64(sideLen) {
		return nil, n, false
	}
	lens = make([]uint64, cnt)
	for i := range lens {
		lens[i] = c.u()
	}
	if c.err != nil || c.off != n-trailer {
		return nil, n, false
	}
	return lens, start, true
}

// HasSectionIndex reports whether enc (a bare CYPR payload, container already
// unwrapped) carries a valid CYPI section-index sidecar.
func HasSectionIndex(enc []byte) bool {
	_, _, ok := parseIndex(enc)
	return ok
}

// EncodeIndexed writes the merged tree as a standard v1 encoding followed by
// the CYPI section index and returns the total byte count. The body bytes are
// identical to Encode's output, so existing decoders read indexed files
// unchanged (the sidecar rides in the historical trailing-bytes tolerance of
// raw and gzip streams); DecodeSelect uses the index to skip unselected
// payload sections in O(1) instead of walking their grammar. Indexed output
// composes with gzip (EncodeIndexedGzip) but not with the CYPB block
// container, whose footer index already pins the framed payload length.
func (m *Merged) EncodeIndexed(out io.Writer) (int64, error) {
	var lens []uint64
	n, err := m.encode(out, &lens)
	if err != nil {
		return 0, err
	}
	side := appendIndex(nil, lens)
	if _, err := out.Write(side); err != nil {
		return 0, err
	}
	return n + int64(len(side)), nil
}

// EncodeIndexedGzip is EncodeIndexed wrapped in a gzip member, mirroring
// EncodeGzip.
func (m *Merged) EncodeIndexedGzip(out io.Writer) (int64, error) {
	cw := &countingWriter{w: out}
	gz := encpool.GetGzip(cw)
	defer encpool.PutGzip(gz)
	if _, err := m.EncodeIndexed(gz); err != nil {
		return 0, err
	}
	if err := gz.Close(); err != nil {
		return 0, err
	}
	return cw.n, nil
}

// lazySlot is one unmaterialized payload: the byte range of its VData section
// within the retained encoding.
type lazySlot struct {
	start, end int64
}

// lazyPayloads is the decoder-owned arena behind a selectively decoded tree:
// the retained body bytes, one slot per skipped entry, and the fill decoder
// whose slabs every on-demand fill is carved from.
type lazyPayloads struct {
	body  []byte // enc[:bodyEnd]; aliases DecodeSelect's input
	mode  timestat.Mode
	slots []lazySlot
	// filled publishes completed fills; entryData's fast path is one atomic
	// load, so concurrent replay over a projected tree stays lock-free after
	// first touch.
	filled []atomic.Pointer[ctt.VData]

	mu  sync.Mutex
	dec decoder // fill decoder, guarded by mu (fills share its slabs)
}

// fill decodes slot's payload section on first touch and publishes it.
func (lp *lazyPayloads) fill(slot int) (*ctt.VData, error) {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	if vd := lp.filled[slot].Load(); vd != nil {
		return vd, nil
	}
	s := lp.slots[slot]
	br := bytes.NewReader(lp.body[s.start:s.end])
	d := &lp.dec
	d.reader = reader{r: br} // resets the latched error from any prior fill
	vd := d.vdata()
	d.decodeVData(vd, lp.mode)
	if d.err != nil {
		return nil, fmt.Errorf("merge: lazy payload fill: %w", d.err)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("merge: lazy payload fill: %d trailing bytes in section", br.Len())
	}
	if sink.Enabled() {
		sink.Inc(obs.SelLazyFills)
		sink.Add(obs.SelLazyFillBytes, s.end-s.start)
	}
	rec.Instant(ftrace.CatCodec, ftrace.NameLazyFill, 0, int64(slot), s.end-s.start)
	lp.filled[slot].Store(vd)
	return vd, nil
}

// entryData returns e's payload, filling it from the retained encoding on
// first touch when the tree was decoded selectively. The fast paths — an
// eagerly decoded entry, or a lazy entry already filled — are a field check
// plus at most one atomic load, so replay loops stay allocation-free.
func (m *Merged) entryData(e *Entry) (*ctt.VData, error) {
	if e.lazy == 0 {
		return e.Data, nil
	}
	slot := int(e.lazy - 1)
	if vd := m.lazy.filled[slot].Load(); vd != nil {
		return vd, nil
	}
	return m.lazy.fill(slot)
}

// Materialize fills every unmaterialized payload of a selectively decoded
// tree and publishes each into its Entry.Data, after which the tree behaves
// exactly like a full Decode. It is NOT safe to call concurrently with
// readers of the same tree (Entry.Data is plain-written); Encode and Pair,
// which call it implicitly, already require exclusive access. Concurrent
// replay never needs it — the Streamer routes through entryData's atomic
// path. On a fully decoded tree Materialize returns immediately.
func (m *Merged) Materialize() error {
	if m.lazy == nil {
		return nil
	}
	for gid := range m.Entries {
		es := m.Entries[gid]
		for i := range es {
			if es[i].lazy == 0 || es[i].Data != nil {
				continue
			}
			vd, err := m.entryData(&es[i])
			if err != nil {
				return err
			}
			es[i].Data = vd
		}
	}
	return nil
}

// skipVData walks one entry's VData section over the raw bytes without
// decoding it, mirroring decodeVData's grammar and plausibility caps, so the
// index-less selective path can derive section boundaries as it goes.
func skipVData(c *bcur, hist bool) {
	c.skipRuns() // loop counts
	c.skipRuns() // taken branches
	nc := c.u()
	if c.err != nil {
		return
	}
	if nc > 1<<24 {
		c.fail("merge: implausible cycle count %d", nc)
		return
	}
	for j := uint64(0); j < nc && c.err == nil; j++ {
		c.u()
		c.u()
		c.u()
	}
	nr := c.u()
	if c.err != nil {
		return
	}
	if nr > 1<<26 {
		c.fail("merge: implausible record count %d", nr)
		return
	}
	for j := uint64(0); j < nr && c.err == nil; j++ {
		c.skipRecordStructure()
		skipVolatile(c, hist)
	}
}

// DecodeSelect decodes the standalone encoding enc (bare CYPR or CYPR+CYPI,
// container already unwrapped — see DecodeSelectAuto) with the rank
// projection sel pushed into the decoder. The structure stream is decoded
// fully, but a timing payload is materialized only when its entry's rank set
// intersects sel; every other entry records its payload's byte range and is
// filled lazily on first touch through entryData. The returned tree therefore
// retains enc — the caller must not modify it afterwards.
//
// Skipped sections are validated for framing only; their contents are
// re-validated when (if ever) they are filled, so a projected decode of a
// corrupt file can surface the corruption at replay time rather than decode
// time. Any failure in the selective walk itself — including index-less
// inputs whose grammar walk trips — falls back to a plain full Decode of the
// same bytes, so DecodeSelect succeeds on everything Decode succeeds on.
func DecodeSelect(enc []byte, sel Selection) (*Merged, error) {
	m, err := decodeSelect(enc, sel)
	if err == nil {
		return m, nil
	}
	sink.Inc(obs.SelFallbacks)
	return Decode(bytes.NewReader(enc))
}

// DecodeSelectAuto is DecodeSelect over a trace file held in memory in any
// container cypresstrace writes: bare CYPR, gzip, or the CYPB block container
// (unwrapped via blockio; workers as in DecodePar). Containered inputs pay
// one unwrap into a fresh payload buffer; bare input is served zero-copy.
func DecodeSelectAuto(data []byte, sel Selection, workers int) (*Merged, error) {
	if workers == 0 {
		workers = defaultIOWorkers()
	}
	payload, _, err := blockio.Unwrap(data, workers)
	if err != nil {
		return nil, err
	}
	return DecodeSelect(payload, sel)
}

// decodeSelect is the selective path proper: any error falls back to a full
// decode in DecodeSelect.
func decodeSelect(enc []byte, sel Selection) (*Merged, error) {
	sp := sink.Start(obs.StageDecode)
	defer sp.End()
	tsp := rec.Begin(ftrace.CatCodec, ftrace.NameDecodeSelect, 0)
	lens, bodyEnd, indexed := parseIndex(enc)
	body := enc[:bodyEnd]
	br := bytes.NewReader(body)
	d := &decoder{reader: reader{r: br}}
	m, mode, err := d.decodeHeader()
	if err != nil {
		return nil, err
	}
	hist := mode == timestat.ModeHistogram
	pos := func() int64 { return int64(len(body) - br.Len()) }
	lz := &lazyPayloads{body: body, mode: mode}
	if indexed {
		// The index bounds the slot count up front; without it the slice
		// grows with the skip walk.
		lz.slots = make([]lazySlot, 0, len(lens))
	}
	var eager, skipped int64   // entries
	var eagerB, skippedB int64 // payload bytes
	li := 0
	for gid := range m.Entries {
		n := d.u()
		if d.err != nil {
			return nil, fmt.Errorf("merge: vertex %d: %w", gid, d.err)
		}
		if n > 1<<24 {
			return nil, fmt.Errorf("merge: vertex %d: implausible entry count %d", gid, n)
		}
		if n == 0 {
			continue
		}
		var es []Entry
		if n > decodeEager {
			es = make([]Entry, 0, decodeEager)
		}
		decoded := 0
		for rem := n; rem > 0; {
			b := umin(rem, decodeEager)
			chunk := d.entries(int(b))
			for k := range chunk {
				e := &chunk[k]
				e.Ranks.Load(d.setRuns())
				if d.err != nil {
					return nil, fmt.Errorf("merge: vertex %d entry %d: %w", gid, decoded+k, d.err)
				}
				start := pos()
				sectionLen := int64(-1)
				if indexed {
					if li >= len(lens) {
						return nil, fmt.Errorf("merge: section index lists %d entries, stream has more", len(lens))
					}
					sectionLen = int64(lens[li])
					li++
					if sectionLen < 0 || start+sectionLen > int64(len(body)) {
						return nil, fmt.Errorf("merge: section index length %d overruns body", sectionLen)
					}
				}
				if sel.matches(e.Ranks) {
					e.Data = d.vdata()
					d.decodeVData(e.Data, mode)
					if d.err != nil {
						return nil, fmt.Errorf("merge: vertex %d entry %d: %w", gid, decoded+k, d.err)
					}
					got := pos() - start
					if sectionLen >= 0 && got != sectionLen {
						return nil, fmt.Errorf("merge: section index length %d disagrees with decoded section (%d bytes)", sectionLen, got)
					}
					eager++
					eagerB += got
					continue
				}
				var end int64
				if sectionLen >= 0 {
					end = start + sectionLen
				} else {
					// Index-less input: derive the section boundary with a
					// grammar walk over the raw bytes.
					c := &bcur{b: body, off: int(start)}
					skipVData(c, hist)
					if c.err != nil {
						return nil, fmt.Errorf("merge: vertex %d entry %d: %w", gid, decoded+k, c.err)
					}
					end = int64(c.off)
				}
				if _, err := br.Seek(end, io.SeekStart); err != nil {
					return nil, err
				}
				lz.slots = append(lz.slots, lazySlot{start: start, end: end})
				e.lazy = int32(len(lz.slots))
				skipped++
				skippedB += end - start
			}
			if es == nil {
				es = chunk
			} else {
				es = append(es, chunk...)
			}
			decoded += int(b)
			rem -= b
		}
		m.Entries[gid] = es
		d.nEnt += int64(n)
	}
	if indexed {
		// The index is trusted for seeks, so it must agree with the stream
		// exactly; mismatches fall back to the full decode.
		if li != len(lens) {
			return nil, fmt.Errorf("merge: section index lists %d entries, stream has %d", len(lens), li)
		}
		if pos() != int64(len(body)) {
			return nil, fmt.Errorf("merge: %d stray bytes between entries and section index", int64(len(body))-pos())
		}
	}
	if len(lz.slots) > 0 {
		lz.filled = make([]atomic.Pointer[ctt.VData], len(lz.slots))
		m.lazy = lz
	}
	if sink.Enabled() {
		sink.Inc(obs.DecTraces)
		sink.Inc(obs.SelDecodes)
		sink.Add(obs.DecEntries, d.nEnt)
		sink.Add(obs.DecRecords, d.nRec)
		sink.Add(obs.SelEntriesEager, eager)
		sink.Add(obs.SelEntriesSkipped, skipped)
		sink.Add(obs.SelBytesMaterialized, eagerB)
		sink.Add(obs.SelBytesSkipped, skippedB)
	}
	tsp.End(eager, skippedB)
	return m, nil
}
