package merge

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/trace"
)

// divergentSrc pairs ranks with different loop trip counts, so the merged
// tree has several rank groups per vertex — the regime where a rank
// projection actually skips payload sections.
const divergentSrc = `
func main() {
	var pair = rank / 2;
	var k = 5;
	if pair % 2 == 1 { k = 9; }
	if rank % 2 == 0 {
		for var i = 0; i < k; i = i + 1 { send(rank + 1, 64, 0); }
	} else {
		for var i = 0; i < k; i = i + 1 { recv(rank - 1, 64, 0); }
	}
}`

// buildMerged traces src and merges the per-rank trees.
func buildMerged(t testing.TB, src string, ranks int) *Merged {
	t.Helper()
	_, ctts, _ := collect(t, src, ranks)
	m, err := All(ctts, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func encodePlain(t testing.TB, m *Merged) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodeIndexed(t testing.TB, m *Merged) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := m.EncodeIndexed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("EncodeIndexed reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// replaySeq replays one rank through the reference per-rank walk.
func replaySeq(t testing.TB, m *Merged, rank int) []trace.Event {
	t.Helper()
	var out []trace.Event
	if err := replay.Events(m.ForRank(rank), rank, func(e *trace.Event) {
		out = append(out, *e)
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// streamSeq replays one rank through the Streamer (the path that surfaces
// lazy-fill errors).
func streamSeq(t testing.TB, m *Merged, rank int) []trace.Event {
	t.Helper()
	var out []trace.Event
	if err := NewStreamer(m).Replay(rank, func(e *trace.Event) {
		out = append(out, *e)
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func countEntries(m *Merged) (n int) {
	for _, es := range m.Entries {
		n += len(es)
	}
	return n
}

func TestSelection(t *testing.T) {
	all := SelectAll()
	if !all.All() || !all.Contains(0) || !all.Contains(1<<20) {
		t.Fatal("SelectAll must contain every rank")
	}
	s := SelectRanks(5, 1, 5, 3)
	if s.All() {
		t.Fatal("SelectRanks must not report All")
	}
	if got := s.Ranks(); !reflect.DeepEqual(got, []int{1, 3, 5}) {
		t.Fatalf("Ranks() = %v, want sorted dedup [1 3 5]", got)
	}
	for _, r := range []int{1, 3, 5} {
		if !s.Contains(r) {
			t.Fatalf("Contains(%d) = false", r)
		}
	}
	for _, r := range []int{0, 2, 4, 6} {
		if s.Contains(r) {
			t.Fatalf("Contains(%d) = true", r)
		}
	}
	empty := SelectRanks()
	if empty.All() || empty.Contains(0) || len(empty.Ranks()) != 0 {
		t.Fatal("empty selection must contain nothing")
	}
}

// TestEncodeIndexedBackwardCompat pins the compatibility contract of the CYPI
// sidecar: an indexed encoding is the plain v1 body byte-for-byte, followed by
// the sidecar, and the existing full decoder reads it unchanged.
func TestEncodeIndexedBackwardCompat(t *testing.T) {
	m := buildMerged(t, jacobiSrc, 7)
	plain := encodePlain(t, m)
	indexed := encodeIndexed(t, m)

	if !bytes.HasPrefix(indexed, plain) {
		t.Fatal("indexed encoding does not start with the plain v1 body")
	}
	if !HasSectionIndex(indexed) {
		t.Fatal("HasSectionIndex(indexed) = false")
	}
	if HasSectionIndex(plain) {
		t.Fatal("HasSectionIndex(plain) = true")
	}

	// The v1 decoder must accept the indexed file (the sidecar rides in the
	// historical trailing-bytes tolerance) and normalize to the same bytes.
	want := encodePlain(t, mustDecode(t, plain))
	got := encodePlain(t, mustDecode(t, indexed))
	if !bytes.Equal(want, got) {
		t.Fatal("full Decode of indexed encoding diverges from plain")
	}

	// Gzip composition: EncodeIndexedGzip -> DecodeGzip-capable full decoder.
	var gz bytes.Buffer
	if _, err := m.EncodeIndexedGzip(&gz); err != nil {
		t.Fatal(err)
	}
	got = encodePlain(t, mustDecode(t, gz.Bytes()))
	if !bytes.Equal(want, got) {
		t.Fatal("full Decode of gzip-indexed encoding diverges from plain")
	}
}

func mustDecode(t testing.TB, enc []byte) *Merged {
	t.Helper()
	m, err := Decode(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestDecodeSelectEquivalence is the core projection contract: for any
// selection, over both indexed and index-less encodings, a selective decode
// replays every rank identically to a full decode — selected ranks from
// eagerly materialized payloads, unselected ranks through lazy fills — and
// materializing the projected tree re-encodes to the full tree's exact bytes.
func TestDecodeSelectEquivalence(t *testing.T) {
	fixtures := []struct {
		name  string
		src   string
		ranks int
	}{
		{"jacobi7", jacobiSrc, 7},
		{"divergent8", divergentSrc, 8},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			m0 := buildMerged(t, fx.src, fx.ranks)
			plain := encodePlain(t, m0)
			indexed := encodeIndexed(t, m0)
			full := mustDecode(t, plain)
			canon := encodePlain(t, full)
			wantSeq := make([][]trace.Event, fx.ranks)
			for r := 0; r < fx.ranks; r++ {
				wantSeq[r] = replaySeq(t, full, r)
			}

			sels := []struct {
				name string
				sel  Selection
			}{
				{"all", SelectAll()},
				{"none", SelectRanks()},
				{"first", SelectRanks(0)},
				{"last", SelectRanks(fx.ranks - 1)},
				{"pair", SelectRanks(0, fx.ranks/2)},
			}
			encs := []struct {
				name string
				enc  []byte
			}{
				{"plain", plain},
				{"indexed", indexed},
			}
			for _, sc := range sels {
				for _, ec := range encs {
					t.Run(sc.name+"/"+ec.name, func(t *testing.T) {
						m, err := DecodeSelect(ec.enc, sc.sel)
						if err != nil {
							t.Fatal(err)
						}
						if m.NumRanks != full.NumRanks || len(m.Entries) != len(full.Entries) {
							t.Fatalf("projected shape %d ranks/%d vertices, want %d/%d",
								m.NumRanks, len(m.Entries), full.NumRanks, len(full.Entries))
						}
						// Selected ranks replay from eager payloads.
						for r := 0; r < fx.ranks; r++ {
							if !sc.sel.Contains(r) {
								continue
							}
							if got := replaySeq(t, m, r); !reflect.DeepEqual(got, wantSeq[r]) {
								t.Fatalf("selected rank %d: %d events, want %d", r, len(got), len(wantSeq[r]))
							}
						}
						// Unselected ranks replay through on-demand lazy fills,
						// on both the Streamer and the rankView path.
						for r := 0; r < fx.ranks; r++ {
							if sc.sel.Contains(r) {
								continue
							}
							if got := streamSeq(t, m, r); !reflect.DeepEqual(got, wantSeq[r]) {
								t.Fatalf("lazy rank %d via streamer: %d events, want %d", r, len(got), len(wantSeq[r]))
							}
							if got := replaySeq(t, m, r); !reflect.DeepEqual(got, wantSeq[r]) {
								t.Fatalf("lazy rank %d via rankView: %d events, want %d", r, len(got), len(wantSeq[r]))
							}
							break // one lazy rank exercises the fill path
						}
						if err := m.Materialize(); err != nil {
							t.Fatal(err)
						}
						if got := encodePlain(t, m); !bytes.Equal(got, canon) {
							t.Fatalf("materialized projected tree re-encodes to %d bytes, want the full tree's %d",
								len(got), len(canon))
						}
					})
				}
			}
		})
	}
}

// TestDecodeSelectCounters pins the projection telemetry: every entry is
// either eager or skipped, skipped bytes are real, and replaying an
// unselected rank fills lazily.
func TestDecodeSelectCounters(t *testing.T) {
	m0 := buildMerged(t, divergentSrc, 8)
	enc := encodeIndexed(t, m0)

	s := obs.New()
	SetObs(s)
	defer SetObs(nil)

	m, err := DecodeSelect(enc, SelectRanks(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Value(obs.SelDecodes); got != 1 {
		t.Fatalf("sel_decodes = %d, want 1", got)
	}
	if got := s.Value(obs.SelFallbacks); got != 0 {
		t.Fatalf("sel_fallbacks = %d, want 0", got)
	}
	eager, skipped := s.Value(obs.SelEntriesEager), s.Value(obs.SelEntriesSkipped)
	if total := int64(countEntries(m)); eager+skipped != total {
		t.Fatalf("eager %d + skipped %d != %d entries", eager, skipped, total)
	}
	if eager == 0 || skipped == 0 {
		t.Fatalf("rank-0 projection of divergent tree: eager=%d skipped=%d, want both > 0", eager, skipped)
	}
	if b := s.Value(obs.SelBytesSkipped); b == 0 {
		t.Fatal("sel_bytes_skipped = 0 with skipped entries")
	}
	if b := s.Value(obs.SelBytesMaterialized); b == 0 {
		t.Fatal("sel_bytes_materialized = 0 with eager entries")
	}

	// Touching an unselected rank fills its payloads from the retained bytes.
	streamSeq(t, m, 3)
	fills := s.Value(obs.SelLazyFills)
	if fills == 0 || s.Value(obs.SelLazyFillBytes) == 0 {
		t.Fatal("replaying an unselected rank recorded no lazy fills")
	}
	// Fills are once-per-slot: replaying again must not re-fill.
	streamSeq(t, m, 3)
	if got := s.Value(obs.SelLazyFills); got != fills {
		t.Fatalf("second replay re-filled: %d fills, want %d", got, fills)
	}

	// The counters must also surface in the rendered report.
	var rep bytes.Buffer
	if err := s.Report().WriteText(&rep); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sel_decodes", "sel_entries_skipped", "sel_lazy_fills"} {
		if !bytes.Contains(rep.Bytes(), []byte(name)) {
			t.Fatalf("report omits %s:\n%s", name, rep.String())
		}
	}
}

// TestDecodeSelectFallback: damaged or lying sidecars must never fail a
// selective decode — a sidecar that parses but disagrees with the stream
// falls back to the full decoder, and one that no longer parses is treated
// as trailing junk by the index-less walk.
func TestDecodeSelectFallback(t *testing.T) {
	m0 := buildMerged(t, jacobiSrc, 7)
	plain := encodePlain(t, m0)
	canon := encodePlain(t, mustDecode(t, plain))
	want := replaySeq(t, mustDecode(t, plain), 2)

	check := func(t *testing.T, enc []byte, wantFallback bool) {
		t.Helper()
		s := obs.New()
		SetObs(s)
		defer SetObs(nil)
		m, err := DecodeSelect(enc, SelectRanks(2))
		if err != nil {
			t.Fatal(err)
		}
		if wantFallback && s.Value(obs.SelFallbacks) == 0 {
			t.Fatal("expected a fallback to the full decoder")
		}
		if got := replaySeq(t, m, 2); !reflect.DeepEqual(got, want) {
			t.Fatalf("rank 2 replay diverges (%d vs %d events)", len(got), len(want))
		}
		if err := m.Materialize(); err != nil {
			t.Fatal(err)
		}
		if got := encodePlain(t, m); !bytes.Equal(got, canon) {
			t.Fatal("re-encode diverges from canonical bytes")
		}
	}

	t.Run("lying-index", func(t *testing.T) {
		// A structurally valid sidecar whose entry count disagrees with the
		// stream: the selective walk must reject it and fall back.
		enc := append(append([]byte(nil), plain...), appendIndex(nil, []uint64{3, 1, 4})...)
		check(t, enc, true)
	})
	t.Run("truncated-sidecar", func(t *testing.T) {
		indexed := encodeIndexed(t, m0)
		check(t, indexed[:len(indexed)-1], false)
	})
	t.Run("corrupt-sidecar", func(t *testing.T) {
		indexed := encodeIndexed(t, m0)
		enc := append([]byte(nil), indexed...)
		enc[len(plain)+1] ^= 0xff // inside the sidecar, after the body
		check(t, enc, false)
	})
}

// TestDecodeSelectAuto covers the container sniffing wrapper: gzip-indexed
// and CYPB-blocked files both reach the selective decoder.
func TestDecodeSelectAuto(t *testing.T) {
	m0 := buildMerged(t, divergentSrc, 8)
	plain := encodePlain(t, m0)
	want := replaySeq(t, mustDecode(t, plain), 5)

	var gz bytes.Buffer
	if _, err := m0.EncodeIndexedGzip(&gz); err != nil {
		t.Fatal(err)
	}
	var blocked bytes.Buffer
	if _, err := m0.EncodeBlocked(&blocked, 1); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"raw", plain},
		{"gzip-indexed", gz.Bytes()},
		{"blocked", blocked.Bytes()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, err := DecodeSelectAuto(tc.data, SelectRanks(5), 0)
			if err != nil {
				t.Fatal(err)
			}
			if got := replaySeq(t, m, 5); !reflect.DeepEqual(got, want) {
				t.Fatalf("rank 5 replay diverges (%d vs %d events)", len(got), len(want))
			}
		})
	}
}

// TestDecodeSelectStructureAllocs pins the projection's serving economics: a
// structure-only selective decode must not allocate per skipped payload, so
// its allocation count stays flat as the rank count (and payload volume)
// grows. The jacobi tree has the same ~3 rank groups per vertex at any rank
// count, which isolates exactly the per-payload cost.
func TestDecodeSelectStructureAllocs(t *testing.T) {
	measure := func(ranks int) float64 {
		enc := encodeIndexed(t, buildMerged(t, jacobiSrc, ranks))
		step := func() {
			if _, err := DecodeSelect(enc, SelectRanks()); err != nil {
				t.Fatal(err)
			}
		}
		step()
		return testing.AllocsPerRun(100, step)
	}
	small, large := measure(16), measure(64)
	// Full Decode of the 16-rank fixture budgets 80 allocs (TestDecodeAllocs);
	// structure-only decode replaces every VData materialization with slot
	// bookkeeping and must come in under the same bound at 4x the ranks.
	if small > 80 || large > 80 {
		t.Errorf("structure-only DecodeSelect allocates %.1f (16 ranks) / %.1f (64 ranks) allocs/op, want <= 80", small, large)
	}
	if large > small+16 {
		t.Errorf("structure-only allocs grew with rank count: %.1f at 16 ranks -> %.1f at 64", small, large)
	}
}

// FuzzDecodeSelect checks the selective decoder against the full decoder on
// arbitrary bytes: whenever full Decode accepts an input, DecodeSelect must
// accept it too (the fallback guarantees this), replay selected ranks
// identically, and materialize back to the full tree's exact re-encoding.
// When full Decode rejects an input the only requirement is no panic —
// skipped sections are framing-validated only, so the selective path may
// legitimately accept streams whose payload contents are corrupt.
func FuzzDecodeSelect(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s, uint8(0), uint8(1))
		m, err := Decode(bytes.NewReader(s))
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := m.EncodeIndexed(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes(), uint8(2), uint8(6))
	}
	f.Add([]byte("CYPI"), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, in []byte, ra, rb uint8) {
		full, ferr := Decode(bytes.NewReader(in))
		sel := SelectRanks(int(ra), int(rb))
		m, err := DecodeSelect(in, sel)
		if ferr != nil {
			return // robustness only: neither decoder may panic
		}
		if err != nil {
			t.Fatalf("DecodeSelect rejects input Decode accepts: %v", err)
		}
		if full.NumRanks > 0 && replayBounded(full) {
			for _, r := range sel.Ranks() {
				if r >= full.NumRanks {
					continue
				}
				var want, got []trace.Event
				wantErr := replay.Events(full.ForRank(r), r, func(e *trace.Event) {
					want = append(want, *e)
				})
				gotErr := replay.Events(m.ForRank(r), r, func(e *trace.Event) {
					got = append(got, *e)
				})
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("rank %d: full err=%v, projected err=%v", r, wantErr, gotErr)
				}
				if wantErr == nil && !reflect.DeepEqual(want, got) {
					t.Fatalf("rank %d: projected replay diverges (%d vs %d events)", r, len(got), len(want))
				}
			}
		}
		if err := m.Materialize(); err != nil {
			t.Fatalf("Materialize failed on input full Decode accepts: %v", err)
		}
		var bFull, bSel bytes.Buffer
		if _, err := full.Encode(&bFull); err != nil {
			t.Fatalf("re-encode of full tree failed: %v", err)
		}
		if _, err := m.Encode(&bSel); err != nil {
			t.Fatalf("re-encode of projected tree failed: %v", err)
		}
		if !bytes.Equal(bFull.Bytes(), bSel.Bytes()) {
			t.Fatalf("projected re-encode diverges from full (%d vs %d bytes)", bSel.Len(), bFull.Len())
		}
	})
}
