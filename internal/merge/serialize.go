package merge

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/cst"
	"repro/internal/ctt"
	"repro/internal/encpool"
	"repro/internal/rankset"
	"repro/internal/stride"
	"repro/internal/timestat"
	"repro/internal/trace"
)

// The merged compressed trace file is CYPRESS's final output (paper:
// "Compressed Communication Traces"). The format embeds the program CST
// (stored once per job) followed by varint-packed vertex data entries.
// EncodeGzip wraps the same stream in gzip, the paper's "Cypress+Gzip"
// variant.

var fileMagic = [4]byte{'C', 'Y', 'P', 'R'}

const fileVersion = 1

type writer struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (w *writer) u(x uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.buf[:], x)
	_, w.err = w.w.Write(w.buf[:n])
}

func (w *writer) i(x int64) {
	if w.err != nil {
		return
	}
	n := binary.PutVarint(w.buf[:], x)
	_, w.err = w.w.Write(w.buf[:n])
}

func (w *writer) f(x float64) { w.u(math.Float64bits(x)) }

func (w *writer) runs(rs []stride.Run) {
	w.u(uint64(len(rs)))
	for _, r := range rs {
		w.i(r.First)
		w.i(r.Stride)
		w.u(uint64(r.Count))
	}
}

// Encode writes the merged tree to w and returns the byte count. The bufio
// writer and CST staging buffer come from shared pools, so repeated encodes
// (per-cell artifact finishing in the bench harness) do not re-allocate 64KB
// of buffering each time.
func (m *Merged) Encode(out io.Writer) (int64, error) {
	cw := &countingWriter{w: out}
	bw := encpool.GetBufio(cw)
	defer encpool.PutBufio(bw)
	w := &writer{w: bw}
	if _, err := cw.Write(fileMagic[:]); err != nil {
		return 0, err
	}
	w.u(fileVersion)
	w.u(m.TreeHash)
	w.u(uint64(m.NumRanks))
	w.u(uint64(m.EventCount))
	hist := m.statMode() == timestat.ModeHistogram
	if hist {
		w.u(1)
	} else {
		w.u(0)
	}
	// Embed the CST text form, length-prefixed.
	treeBuf := encpool.GetBuffer()
	defer encpool.PutBuffer(treeBuf)
	if err := m.Tree.Encode(treeBuf); err != nil {
		return 0, err
	}
	w.u(uint64(treeBuf.Len()))
	if w.err == nil {
		_, w.err = w.w.Write(treeBuf.Bytes())
	}
	for gid := range m.Entries {
		es := m.Entries[gid]
		w.u(uint64(len(es)))
		for _, e := range es {
			w.runs(e.Ranks.Runs())
			encodeVData(w, e.Data, hist)
		}
	}
	if w.err != nil {
		return 0, w.err
	}
	if err := w.w.Flush(); err != nil {
		return 0, err
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func encodeVData(w *writer, d *ctt.VData, hist bool) {
	w.runs(d.Counts.Runs())
	w.runs(d.Taken.Runs())
	w.u(uint64(len(d.Cycles)))
	for _, cy := range d.Cycles {
		w.u(uint64(cy.Start))
		w.u(uint64(cy.Len))
		w.u(uint64(cy.Reps))
	}
	w.u(uint64(len(d.Records)))
	for _, r := range d.Records {
		flags := uint64(0)
		if r.Ev.Wildcard {
			flags |= 1
		}
		if r.RelEncoded {
			flags |= 2
		}
		if r.Peers != nil {
			flags |= 4
		}
		w.u(uint64(r.Ev.Op))
		w.u(flags)
		w.u(uint64(r.Ev.Size))
		w.i(int64(r.Ev.Peer))
		w.i(int64(r.PeerRel))
		w.u(uint64(r.Ev.Tag))
		w.u(uint64(r.Ev.Comm))
		w.u(uint64(r.Count))
		w.u(uint64(len(r.Ev.Reqs)))
		for _, q := range r.Ev.Reqs {
			w.i(int64(q))
		}
		if r.Peers != nil {
			w.u(uint64(len(r.Peers.Period)))
			for _, off := range r.Peers.Period {
				w.i(int64(off))
			}
		}
		// Time statistics: moments always, histogram buckets when present.
		w.u(uint64(r.Time.N))
		w.f(r.Time.Mean)
		w.f(r.Time.Stddev())
		w.f(r.Time.Min)
		w.f(r.Time.Max)
		w.f(r.Compute.Mean)
		if hist {
			nz := 0
			for _, h := range r.Time.Hist {
				if h != 0 {
					nz++
				}
			}
			w.u(uint64(nz))
			for i, h := range r.Time.Hist {
				if h != 0 {
					w.u(uint64(i))
					w.u(uint64(h))
				}
			}
		}
	}
}

// EncodeGzip writes the gzip-compressed form and returns the byte count.
// The gzip writer is pooled.
func (m *Merged) EncodeGzip(out io.Writer) (int64, error) {
	cw := &countingWriter{w: out}
	gz := encpool.GetGzip(cw)
	defer encpool.PutGzip(gz)
	if _, err := m.Encode(gz); err != nil {
		return 0, err
	}
	if err := gz.Close(); err != nil {
		return 0, err
	}
	return cw.n, nil
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) u() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	r.err = err
	return v
}

func (r *reader) i() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.r)
	r.err = err
	return v
}

func (r *reader) f() float64 { return math.Float64frombits(r.u()) }

func (r *reader) runs() []stride.Run {
	n := r.u()
	if r.err != nil || n > 1<<24 {
		if r.err == nil {
			r.err = fmt.Errorf("merge: implausible run count %d", n)
		}
		return nil
	}
	out := make([]stride.Run, n)
	for i := range out {
		out[i].First = r.i()
		out[i].Stride = r.i()
		out[i].Count = int64(r.u())
	}
	return out
}

// Decode reads a merged tree written by Encode.
func Decode(in io.Reader) (*Merged, error) {
	br := bufio.NewReaderSize(in, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("merge: reading magic: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("merge: bad magic %q", magic)
	}
	r := &reader{r: br}
	if v := r.u(); v != fileVersion {
		return nil, fmt.Errorf("merge: unsupported version %d", v)
	}
	m := &Merged{}
	m.TreeHash = r.u()
	m.NumRanks = int(r.u())
	m.EventCount = int64(r.u())
	hist := r.u() == 1
	mode := timestat.ModeMeanStddev
	if hist {
		mode = timestat.ModeHistogram
	}
	treeLen := r.u()
	if r.err != nil {
		return nil, r.err
	}
	if treeLen > 1<<28 {
		return nil, fmt.Errorf("merge: implausible CST length %d", treeLen)
	}
	tree, err := cst.Decode(io.LimitReader(br, int64(treeLen)))
	if err != nil {
		return nil, fmt.Errorf("merge: embedded CST: %w", err)
	}
	m.Tree = tree
	if got := tree.Hash(); got != m.TreeHash {
		return nil, fmt.Errorf("merge: CST hash mismatch: header %x vs decoded %x", m.TreeHash, got)
	}
	m.Entries = make([][]Entry, tree.NumVertices())
	for gid := range m.Entries {
		n := r.u()
		if r.err != nil {
			return nil, fmt.Errorf("merge: vertex %d: %w", gid, r.err)
		}
		if n > 1<<24 {
			return nil, fmt.Errorf("merge: vertex %d: implausible entry count %d", gid, n)
		}
		for k := uint64(0); k < n; k++ {
			e := Entry{Ranks: rankset.FromRuns(r.runs()), Data: &ctt.VData{}}
			decodeVData(r, e.Data, mode)
			if r.err != nil {
				return nil, fmt.Errorf("merge: vertex %d entry %d: %w", gid, k, r.err)
			}
			m.Entries[gid] = append(m.Entries[gid], e)
		}
	}
	return m, nil
}

func decodeVData(r *reader, d *ctt.VData, mode timestat.Mode) {
	for _, run := range r.runs() {
		d.Counts.AppendRun(run)
	}
	for _, run := range r.runs() {
		d.Taken.AppendRun(run)
	}
	nc := r.u()
	if r.err != nil || nc > 1<<24 {
		if r.err == nil {
			r.err = fmt.Errorf("implausible cycle count %d", nc)
		}
		return
	}
	for j := uint64(0); j < nc; j++ {
		d.Cycles = append(d.Cycles, ctt.Cycle{
			Start: int32(r.u()), Len: int32(r.u()), Reps: int64(r.u()),
		})
	}
	n := r.u()
	if r.err != nil || n > 1<<26 {
		if r.err == nil {
			r.err = fmt.Errorf("implausible record count %d", n)
		}
		return
	}
	for k := uint64(0); k < n; k++ {
		// Records decode straight into the vertex's chunked slab, matching
		// the runtime layout (and its allocation economics).
		rec := d.NewRecord()
		rec.Ev.Op = trace.Op(r.u())
		flags := r.u()
		rec.Ev.Wildcard = flags&1 != 0
		rec.RelEncoded = flags&2 != 0
		hasPeers := flags&4 != 0
		rec.Ev.Size = int(r.u())
		rec.Ev.Peer = int(r.i())
		rec.PeerRel = int(r.i())
		rec.Ev.Tag = int(r.u())
		rec.Ev.Comm = int(r.u())
		rec.Count = int64(r.u())
		rec.Ev.ReqID = -1
		nq := r.u()
		if r.err != nil || nq > 1<<24 {
			if r.err == nil {
				r.err = fmt.Errorf("implausible req count %d", nq)
			}
			return
		}
		for j := uint64(0); j < nq; j++ {
			rec.Ev.Reqs = append(rec.Ev.Reqs, int32(r.i()))
		}
		if hasPeers {
			np := r.u()
			if r.err != nil || np > 1<<24 {
				if r.err == nil {
					r.err = fmt.Errorf("implausible peer period %d", np)
				}
				return
			}
			period := make([]int32, np)
			for j := range period {
				period[j] = int32(r.i())
			}
			rec.Peers = &ctt.PeerPattern{Period: period}
		}
		st := timestat.Make(mode)
		st.N = int64(r.u())
		st.Mean = r.f()
		_ = r.f() // stddev is recomputable only approximately; keep mean/min/max
		st.Min = r.f()
		st.Max = r.f()
		rec.Compute = timestat.MeanSeeded(r.f(), st.N)
		if mode == timestat.ModeHistogram {
			nz := r.u()
			if r.err != nil || nz > timestat.HistBuckets {
				if r.err == nil {
					r.err = fmt.Errorf("implausible histogram bucket count %d", nz)
				}
				return
			}
			for j := uint64(0); j < nz; j++ {
				idx := r.u()
				cnt := r.u()
				if idx < timestat.HistBuckets {
					st.Hist[idx] = uint32(cnt)
				}
			}
		}
		rec.Time = st
	}
}
