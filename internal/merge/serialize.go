package merge

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/blockio"
	"repro/internal/cst"
	"repro/internal/ctt"
	"repro/internal/encpool"
	"repro/internal/obs"
	ftrace "repro/internal/obs/trace"
	"repro/internal/rankset"
	"repro/internal/stride"
	"repro/internal/timestat"
	"repro/internal/trace"
)

// The merged compressed trace file is CYPRESS's final output (paper:
// "Compressed Communication Traces"). The format embeds the program CST
// (stored once per job) followed by varint-packed vertex data entries.
// EncodeGzip wraps the same stream in gzip, the paper's "Cypress+Gzip"
// variant.

var fileMagic = [4]byte{'C', 'Y', 'P', 'R'}

const fileVersion = 1

type writer struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	// n counts logical bytes emitted through the writer, independent of the
	// bufio layer's flush schedule, so Encode can attribute bytes to sections
	// for the obs per-section accounting.
	n   int64
	err error
}

func (w *writer) u(x uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.buf[:], x)
	_, w.err = w.w.Write(w.buf[:n])
	w.n += int64(n)
}

func (w *writer) i(x int64) {
	if w.err != nil {
		return
	}
	n := binary.PutVarint(w.buf[:], x)
	_, w.err = w.w.Write(w.buf[:n])
	w.n += int64(n)
}

func (w *writer) f(x float64) { w.u(math.Float64bits(x)) }

func (w *writer) runs(rs []stride.Run) {
	w.u(uint64(len(rs)))
	for _, r := range rs {
		w.i(r.First)
		w.i(r.Stride)
		w.u(uint64(r.Count))
	}
}

// Encode writes the merged tree to w and returns the byte count. The bufio
// writer and CST staging buffer come from shared pools, so repeated encodes
// (per-cell artifact finishing in the bench harness) do not re-allocate 64KB
// of buffering each time.
func (m *Merged) Encode(out io.Writer) (int64, error) {
	return m.encode(out, nil)
}

// encode is the shared body of Encode and EncodeIndexed. When entryLens is
// non-nil, the byte length of each entry's VData section is appended to it in
// stream order — the raw material of the CYPI section index. A selectively
// decoded tree is materialized first: encoding visits every payload.
func (m *Merged) encode(out io.Writer, entryLens *[]uint64) (int64, error) {
	if m.lazy != nil {
		if err := m.Materialize(); err != nil {
			return 0, err
		}
	}
	sp := sink.Start(obs.StageEncode)
	defer sp.End()
	tsp := rec.Begin(ftrace.CatCodec, ftrace.NameEncode, 0)
	cw := &countingWriter{w: out}
	bw := encpool.GetBufio(cw)
	defer encpool.PutBufio(bw)
	w := &writer{w: bw}
	if _, err := cw.Write(fileMagic[:]); err != nil {
		return 0, err
	}
	w.u(fileVersion)
	w.u(m.TreeHash)
	w.u(uint64(m.NumRanks))
	w.u(uint64(m.EventCount))
	hist := m.statMode() == timestat.ModeHistogram
	if hist {
		w.u(1)
	} else {
		w.u(0)
	}
	// Embed the CST text form, length-prefixed.
	treeBuf := encpool.GetBuffer()
	defer encpool.PutBuffer(treeBuf)
	if err := m.Tree.Encode(treeBuf); err != nil {
		return 0, err
	}
	w.u(uint64(treeBuf.Len()))
	if w.err == nil {
		_, w.err = w.w.Write(treeBuf.Bytes())
		w.n += int64(treeBuf.Len())
	}
	preEntries := w.n
	for gid := range m.Entries {
		es := m.Entries[gid]
		w.u(uint64(len(es)))
		for _, e := range es {
			w.runs(e.Ranks.Runs())
			pre := w.n
			encodeVData(w, e.Data, hist)
			if entryLens != nil {
				*entryLens = append(*entryLens, uint64(w.n-pre))
			}
		}
	}
	if w.err != nil {
		return 0, w.err
	}
	if err := w.w.Flush(); err != nil {
		return 0, err
	}
	if sink.Enabled() {
		sink.Inc(obs.EncTraces)
		sink.Add(obs.EncBytesRaw, cw.n)
		sink.Add(obs.EncBytesCST, int64(treeBuf.Len()))
		sink.Add(obs.EncBytesRecords, w.n-preEntries)
	}
	tsp.End(cw.n, int64(m.NumRanks))
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func encodeVData(w *writer, d *ctt.VData, hist bool) {
	w.runs(d.Counts.Runs())
	w.runs(d.Taken.Runs())
	w.u(uint64(len(d.Cycles)))
	for _, cy := range d.Cycles {
		w.u(uint64(cy.Start))
		w.u(uint64(cy.Len))
		w.u(uint64(cy.Reps))
	}
	w.u(uint64(len(d.Records)))
	for _, r := range d.Records {
		flags := uint64(0)
		if r.Ev.Wildcard {
			flags |= 1
		}
		if r.RelEncoded {
			flags |= 2
		}
		if r.Peers != nil {
			flags |= 4
		}
		w.u(uint64(r.Ev.Op))
		w.u(flags)
		w.u(uint64(r.Ev.Size))
		w.i(int64(r.Ev.Peer))
		w.i(int64(r.PeerRel))
		w.u(uint64(r.Ev.Tag))
		w.u(uint64(r.Ev.Comm))
		w.u(uint64(r.Count))
		w.u(uint64(len(r.Ev.Reqs)))
		for _, q := range r.Ev.Reqs {
			w.i(int64(q))
		}
		if r.Peers != nil {
			w.u(uint64(len(r.Peers.Period)))
			for _, off := range r.Peers.Period {
				w.i(int64(off))
			}
		}
		// Time statistics: moments always, histogram buckets when present.
		w.u(uint64(r.Time.N))
		w.f(r.Time.Mean)
		w.f(r.Time.Stddev())
		w.f(r.Time.Min)
		w.f(r.Time.Max)
		w.f(r.Compute.Mean)
		if hist {
			nz := 0
			for _, h := range r.Time.Hist {
				if h != 0 {
					nz++
				}
			}
			w.u(uint64(nz))
			for i, h := range r.Time.Hist {
				if h != 0 {
					w.u(uint64(i))
					w.u(uint64(h))
				}
			}
		}
	}
}

// EncodeGzip writes the gzip-compressed form and returns the byte count.
// The gzip writer is pooled.
func (m *Merged) EncodeGzip(out io.Writer) (int64, error) {
	cw := &countingWriter{w: out}
	gz := encpool.GetGzip(cw)
	defer encpool.PutGzip(gz)
	if _, err := m.Encode(gz); err != nil {
		return 0, err
	}
	if err := gz.Close(); err != nil {
		return 0, err
	}
	if sink.Enabled() {
		sink.Inc(obs.EncGzipTraces)
		sink.Add(obs.EncBytesGzip, cw.n)
	}
	return cw.n, nil
}

// byteScanner is the decoder's input: the streaming paths hand it a pooled
// *bufio.Reader, the selective decoder an in-memory *bytes.Reader (which it
// can additionally Seek to skip unselected payload sections).
type byteScanner interface {
	io.Reader
	io.ByteReader
}

type reader struct {
	r   byteScanner
	err error
}

func (r *reader) u() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	r.err = err
	return v
}

func (r *reader) i() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.r)
	r.err = err
	return v
}

func (r *reader) f() float64 { return math.Float64frombits(r.u()) }

// decodeChunk is the allocation granularity of the decoder's slabs.
const decodeChunk = 64

// decodeEager caps how many list elements the decoder allocates before any of
// them has decoded successfully. Element counts in the file are untrusted: a
// few bytes can declare 2^26 records (~19GB of CommRecord storage), so lists
// above this size are decoded in batches that each earn their allocation by
// parsing, turning a tiny malicious input into a fast error instead of an
// allocation storm. Well-formed lists below the cap take the exact-size path.
const decodeEager = 4096

func umin(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// decoder carries the varint reader plus the slab arenas the decoded tree is
// carved from. A merged trace is decoded into a handful of shared chunks —
// entries, rank sets, vertex payloads, records, int32 lists — instead of a
// few heap objects per entry, mirroring the slab economics of the merge's
// encode side. The scratch run buffer is reused across every run list in the
// file; callers consume it before the next read.
type decoder struct {
	reader
	runsBuf []stride.Run
	entSlab []Entry
	setSlab []rankset.Set
	vdSlab  []ctt.VData
	i32Slab []int32
	arena   ctt.RecordArena

	// Observation tallies, flushed to the sink once per Decode.
	nEnt int64
	nRec int64
}

// runs reads a run list into the shared scratch buffer. The result is valid
// until the next call.
func (d *decoder) runs() []stride.Run {
	n := d.u()
	if d.err != nil || n > 1<<20 {
		if d.err == nil {
			d.err = fmt.Errorf("merge: implausible run count %d", n)
		}
		return nil
	}
	if uint64(cap(d.runsBuf)) < n {
		d.runsBuf = make([]stride.Run, n)
	}
	out := d.runsBuf[:n]
	for i := range out {
		out[i].First = d.i()
		out[i].Stride = d.i()
		out[i].Count = int64(d.u())
		if d.err != nil {
			return nil
		}
		if out[i].Count < 1 {
			d.err = fmt.Errorf("merge: malformed run count %d", out[i].Count)
			return nil
		}
	}
	return out
}

// setRuns reads a run list that must form a valid strictly-increasing set:
// positive strides (a multi-element run with stride 0 would divide by zero in
// Set.Contains — fuzz-found) and disjoint runs in increasing order, the
// invariants the binary search over decoded Taken and rank sets relies on.
func (d *decoder) setRuns() []stride.Run {
	runs := d.runs()
	if d.err != nil {
		return nil
	}
	for i := range runs {
		r := runs[i]
		if r.Count > 1 && r.Stride < 1 {
			d.err = fmt.Errorf("merge: malformed set run stride %d", r.Stride)
			return nil
		}
		if i > 0 && r.First <= runs[i-1].Last() {
			d.err = fmt.Errorf("merge: set runs out of order at %d", i)
			return nil
		}
	}
	return runs
}

// entries carves a length-n entry list out of the entry slab.
func (d *decoder) entries(n int) []Entry {
	if len(d.entSlab) < n {
		size := decodeChunk
		if n > size {
			size = n
		}
		d.entSlab = make([]Entry, size)
		d.setSlab = make([]rankset.Set, size)
	}
	out := d.entSlab[:n:n]
	d.entSlab = d.entSlab[n:]
	for k := range out {
		out[k].Ranks = &d.setSlab[k]
	}
	d.setSlab = d.setSlab[n:]
	return out
}

// vdata carves one vertex payload out of the payload slab.
func (d *decoder) vdata() *ctt.VData {
	if len(d.vdSlab) == 0 {
		d.vdSlab = make([]ctt.VData, decodeChunk)
	}
	v := &d.vdSlab[0]
	d.vdSlab = d.vdSlab[1:]
	return v
}

// ints carves a length-n int32 list (request lists, peer periods) out of the
// shared int32 slab.
func (d *decoder) ints(n int) []int32 {
	if len(d.i32Slab) < n {
		size := 4 * decodeChunk
		if n > size {
			size = n
		}
		d.i32Slab = make([]int32, size)
	}
	out := d.i32Slab[:n:n]
	d.i32Slab = d.i32Slab[n:]
	return out
}

// Decode reads a merged tree written by Encode, EncodeGzip, or EncodeBlocked
// — the container layer (gzip member, CYPB block container, or none) is
// sniffed from the leading magic. The buffered reader is pooled and the
// result is slab-backed (see decoder), so decoding allocates a few chunks per
// tree rather than a few objects per entry.
func Decode(in io.Reader) (*Merged, error) {
	return DecodePar(in, 0)
}

// DecodePar is Decode with an explicit inflate worker count for CYPB inputs:
// workers < 0 inflates inline on the caller, 0 picks a default from
// GOMAXPROCS, and >= 1 pipelines that many workers so frame N+1 decompresses
// while the parser consumes frame N (see blockio.ReaderOptions). The worker
// count never changes the decoded tree; raw and gzip inputs ignore it.
func DecodePar(in io.Reader, workers int) (*Merged, error) {
	sp := sink.Start(obs.StageDecode)
	defer sp.End()
	tsp := rec.Begin(ftrace.CatCodec, ftrace.NameDecode, 0)
	if workers == 0 {
		workers = defaultIOWorkers()
	}
	br := encpool.GetBufioReader(in)
	defer encpool.PutBufioReader(br)
	sn, err := blockio.Sniff(br, workers)
	if err != nil {
		return nil, err
	}
	defer sn.Close()
	pbr := br
	if sn.Format != blockio.FormatRaw {
		// The unwrapped payload needs its own varint buffering.
		pbr = encpool.GetBufioReader(sn.R)
		defer encpool.PutBufioReader(pbr)
	}
	m, err := decodeStream(pbr)
	if err != nil {
		return nil, err
	}
	// A CYPB container's footer index must validate even when the payload
	// parser stopped at its own logical end; raw and gzip streams keep their
	// historical trailing-garbage tolerance.
	if err := sn.Finish(); err != nil {
		return nil, err
	}
	tsp.End(int64(len(m.Entries)), int64(m.EventCount))
	return m, nil
}

// decodeHeader parses the v1 header — magic through the embedded CST — from
// d's reader into a fresh Merged with its entry lists allocated, returning
// the stat mode implied by the histogram flag. Shared by the streaming
// decoder and the selective decoder.
func (d *decoder) decodeHeader() (*Merged, timestat.Mode, error) {
	var magic [4]byte
	if _, err := io.ReadFull(d.r, magic[:]); err != nil {
		return nil, 0, fmt.Errorf("merge: reading magic: %w", err)
	}
	if magic != fileMagic {
		return nil, 0, fmt.Errorf("merge: bad magic %q", magic)
	}
	if v := d.u(); v != fileVersion {
		if d.err != nil {
			return nil, 0, d.err
		}
		return nil, 0, fmt.Errorf("merge: unsupported version %d", v)
	}
	m := &Merged{}
	m.TreeHash = d.u()
	m.NumRanks = int(d.u())
	m.EventCount = int64(d.u())
	hist := d.u() == 1
	mode := timestat.ModeMeanStddev
	if hist {
		mode = timestat.ModeHistogram
	}
	treeLen := d.u()
	if d.err != nil {
		return nil, 0, d.err
	}
	if treeLen > 1<<28 {
		return nil, 0, fmt.Errorf("merge: implausible CST length %d", treeLen)
	}
	lr := io.LimitedReader{R: d.r, N: int64(treeLen)}
	tree, err := cst.Decode(&lr)
	if err != nil {
		return nil, 0, fmt.Errorf("merge: embedded CST: %w", err)
	}
	m.Tree = tree
	if got := tree.Hash(); got != m.TreeHash {
		return nil, 0, fmt.Errorf("merge: CST hash mismatch: header %x vs decoded %x", m.TreeHash, got)
	}
	m.Entries = make([][]Entry, tree.NumVertices())
	return m, mode, nil
}

// decodeStream parses the bare CYPR payload from br.
func decodeStream(br *bufio.Reader) (*Merged, error) {
	d := &decoder{reader: reader{r: br}}
	m, mode, err := d.decodeHeader()
	if err != nil {
		return nil, err
	}
	for gid := range m.Entries {
		n := d.u()
		if d.err != nil {
			return nil, fmt.Errorf("merge: vertex %d: %w", gid, d.err)
		}
		if n > 1<<24 {
			return nil, fmt.Errorf("merge: vertex %d: implausible entry count %d", gid, n)
		}
		if n == 0 {
			continue
		}
		// Lists up to decodeEager carve an exact-length block; larger declared
		// counts earn their storage batch by batch (see decodeEager).
		var es []Entry
		if n > decodeEager {
			es = make([]Entry, 0, decodeEager)
		}
		decoded := 0
		for rem := n; rem > 0; {
			b := umin(rem, decodeEager)
			chunk := d.entries(int(b))
			for k := range chunk {
				d.entry(&chunk[k], mode)
				if d.err != nil {
					return nil, fmt.Errorf("merge: vertex %d entry %d: %w", gid, decoded+k, d.err)
				}
			}
			if es == nil {
				es = chunk
			} else {
				es = append(es, chunk...)
			}
			decoded += int(b)
			rem -= b
		}
		m.Entries[gid] = es
		d.nEnt += int64(n)
	}
	if sink.Enabled() {
		sink.Inc(obs.DecTraces)
		sink.Add(obs.DecEntries, d.nEnt)
		sink.Add(obs.DecRecords, d.nRec)
	}
	return m, nil
}

// entry decodes one vertex-data entry in place.
func (d *decoder) entry(e *Entry, mode timestat.Mode) {
	e.Ranks.Load(d.setRuns())
	e.Data = d.vdata()
	d.decodeVData(e.Data, mode)
}

func (d *decoder) decodeVData(vd *ctt.VData, mode timestat.Mode) {
	for _, run := range d.runs() {
		vd.Counts.AppendRun(run)
	}
	for _, run := range d.setRuns() {
		vd.Taken.AppendRun(run)
	}
	nc := d.u()
	if d.err != nil || nc > 1<<24 {
		if d.err == nil {
			d.err = fmt.Errorf("implausible cycle count %d", nc)
		}
		return
	}
	if nc > 0 {
		vd.Cycles = make([]ctt.Cycle, 0, umin(nc, decodeEager))
		for j := uint64(0); j < nc; j++ {
			cy := ctt.Cycle{
				Start: int32(d.u()), Len: int32(d.u()), Reps: int64(d.u()),
			}
			if d.err != nil {
				return
			}
			vd.Cycles = append(vd.Cycles, cy)
		}
	}
	n := d.u()
	if d.err != nil || n > 1<<26 {
		if d.err == nil {
			d.err = fmt.Errorf("implausible record count %d", n)
		}
		return
	}
	d.nRec += int64(n)
	// Records decode into the decoder's shared arena: each vertex's record
	// count is known up front, so the arena carves exact-length pointer lists
	// backed by chunked record storage. Counts above decodeEager are earned
	// batch by batch like entry lists.
	if n > decodeEager {
		vd.Records = make([]*ctt.CommRecord, 0, decodeEager)
	}
	for rem := n; rem > 0; {
		b := umin(rem, decodeEager)
		chunk := d.arena.Alloc(int(b))
		for _, rec := range chunk {
			d.record(rec, mode)
			if d.err != nil {
				return
			}
		}
		if vd.Records == nil {
			vd.Records = chunk
		} else {
			vd.Records = append(vd.Records, chunk...)
		}
		rem -= b
	}
}

// record decodes one comm record in place.
func (d *decoder) record(rec *ctt.CommRecord, mode timestat.Mode) {
	rec.Ev.Op = trace.Op(d.u())
	flags := d.u()
	rec.Ev.Wildcard = flags&1 != 0
	rec.RelEncoded = flags&2 != 0
	hasPeers := flags&4 != 0
	rec.Ev.Size = int(d.u())
	rec.Ev.Peer = int(d.i())
	rec.PeerRel = int(d.i())
	rec.Ev.Tag = int(d.u())
	rec.Ev.Comm = int(d.u())
	rec.Count = int64(d.u())
	rec.Ev.ReqID = -1
	nq := d.u()
	if d.err != nil || nq > 1<<20 {
		if d.err == nil {
			d.err = fmt.Errorf("implausible req count %d", nq)
		}
		return
	}
	if nq > 0 {
		rec.Ev.Reqs = d.ints(int(nq))
		for j := range rec.Ev.Reqs {
			rec.Ev.Reqs[j] = int32(d.i())
		}
	}
	if hasPeers {
		np := d.u()
		if d.err != nil || np == 0 || np > 1<<20 {
			if d.err == nil {
				d.err = fmt.Errorf("implausible peer period %d", np)
			}
			return
		}
		period := d.ints(int(np))
		for j := range period {
			period[j] = int32(d.i())
		}
		rec.Peers = &ctt.PeerPattern{Period: period}
	}
	st := timestat.Make(mode)
	st.N = int64(d.u())
	st.Mean = d.f()
	_ = d.f() // stddev is recomputable only approximately; keep mean/min/max
	st.Min = d.f()
	st.Max = d.f()
	rec.Compute = timestat.MeanSeeded(d.f(), st.N)
	if mode == timestat.ModeHistogram {
		nz := d.u()
		if d.err != nil || nz > timestat.HistBuckets {
			if d.err == nil {
				d.err = fmt.Errorf("implausible histogram bucket count %d", nz)
			}
			return
		}
		for j := uint64(0); j < nz; j++ {
			idx := d.u()
			cnt := d.u()
			if idx < timestat.HistBuckets {
				st.Hist[idx] = uint32(cnt)
			}
		}
	}
	rec.Time = st
}
