// Streaming, group-aware decompression of merged trace trees.
//
// rankView (merge.go) answers every replay.Source accessor with a linear scan
// of the vertex's entry list, so a tree walk pays O(4·groups) per visited
// vertex — once per Counts, Taken, Records, and Cycles call, at every vertex
// visit of every loop iteration. The Streamer below replaces that with a
// per-rank RESOLVED VIEW: one pass over Merged.Entries produces a flat
// []*ctt.VData indexed by gid, turning every accessor into an O(1) index.
// View storage is pooled and reused across ranks, so resolving rank r+1
// costs zero allocations after rank r.
//
// The resolver also exploits the SPMD structure the merge itself discovered:
// while resolving it records WHICH entry each vertex selected (the selection
// vector). Ranks with identical selection vectors see identical resolved
// data, so their tree walks emit the same sequence of (record, occurrence)
// steps — only the rank-relative peer fields differ. The Streamer therefore
// memoizes one REPLAY SKELETON ([]replay.Step) per selection class and
// replays all other ranks of the class by a flat scan over the shared steps
// (replay.EmitSkeleton / replay.Cursor), skipping the tree walk entirely.
// For a P-rank SPMD job with k classes (k ≈ 1–3 in practice) the tree is
// walked k times instead of P times.
//
// Sequence preservation: a skeleton build IS the ordinary replay walk (the
// same walkSteps recursion Events uses), and walk decisions depend only on
// the resolved payloads — Counts, Taken, Records, Cycles — never on the rank
// itself (the rank only parameterizes PeerForAt and error text). Skeleton
// classes are keyed by the exact selection vector (a 64-bit fingerprint
// routes to a class; membership is confirmed by comparing the vectors
// element-wise), so two ranks share steps only when their resolved views are
// identical, and the emitted sequences are byte-identical to per-rank walks.
package merge

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cst"
	"repro/internal/ctt"
	"repro/internal/fp"
	"repro/internal/obs"
	ftrace "repro/internal/obs/trace"
	"repro/internal/replay"
	"repro/internal/stride"
	"repro/internal/trace"
)

// Resolved is one rank's flattened view of a merged tree: vertex data indexed
// directly by gid. It implements replay.Source with O(1) accessors, replacing
// rankView's per-accessor scan over the vertex's entry list.
type Resolved struct {
	tree *cst.Tree
	data []*ctt.VData // indexed by gid; nil when the rank never executed it
	rank int
}

// Tree implements replay.Source.
func (r *Resolved) Tree() *cst.Tree { return r.tree }

// Counts implements replay.Source.
func (r *Resolved) Counts(gid int32) *stride.Vector {
	if d := r.data[gid]; d != nil {
		return &d.Counts
	}
	return nil
}

// Taken implements replay.Source.
func (r *Resolved) Taken(gid int32) *stride.Set {
	if d := r.data[gid]; d != nil {
		return &d.Taken
	}
	return nil
}

// Records implements replay.Source.
func (r *Resolved) Records(gid int32) []*ctt.CommRecord {
	if d := r.data[gid]; d != nil {
		return d.Records
	}
	return nil
}

// Cycles implements replay.Source.
func (r *Resolved) Cycles(gid int32) []ctt.Cycle {
	if d := r.data[gid]; d != nil {
		return d.Cycles
	}
	return nil
}

// replayClass is one selection class: the set of ranks whose resolved views
// are identical, sharing one memoized replay skeleton.
type replayClass struct {
	sel   []int32       // entry index per gid (-1 = not executed); exact identity
	steps []replay.Step // memoized skeleton (record, occurrence) sequence
}

// resolveScratch is the pooled per-resolve working set.
type resolveScratch struct {
	data []*ctt.VData
	sel  []int32
}

// Streamer replays ranks of a merged tree through resolved views and
// memoized, group-shared replay skeletons. It is safe for concurrent use;
// scratch storage is pooled and skeletons are built at most once per
// selection class (modulo benign warm-up races, where the first stored
// skeleton wins).
//
// Memory: the Streamer retains one selection vector (4 bytes per vertex) and
// one skeleton (16 bytes per event of one rank's sequence) per class — for
// SPMD jobs a constant independent of P, and always at most the cost of
// materializing the distinct per-rank sequences once.
type Streamer struct {
	m       *Merged
	scratch sync.Pool // *resolveScratch

	mu      sync.Mutex
	classes map[fp.Hash][]*replayClass // hash → collision chain
	byRank  []*replayClass             // memoized rank → class
}

// NewStreamer returns a streaming replayer for m. The Streamer aliases m's
// entries; m must not be merged further while the Streamer is in use.
func NewStreamer(m *Merged) *Streamer {
	s := &Streamer{
		m:       m,
		classes: make(map[fp.Hash][]*replayClass),
		byRank:  make([]*replayClass, m.NumRanks),
	}
	nv := len(m.Entries)
	s.scratch.New = func() any {
		return &resolveScratch{data: make([]*ctt.VData, nv), sel: make([]int32, nv)}
	}
	return s
}

// NumRanks returns the number of ranks in the underlying tree.
func (s *Streamer) NumRanks() int { return s.m.NumRanks }

// EventCount returns the total event count of the underlying tree.
func (s *Streamer) EventCount() int64 { return s.m.EventCount }

// resolve fills sc with rank's resolved view and selection vector and returns
// the selection fingerprint. One pass over the entry lists: O(groups scanned)
// total, instead of O(groups) per accessor call during the walk. On a
// selectively decoded tree this is where lazy payload sections are filled
// (and where a corrupt skipped section surfaces its error).
func (s *Streamer) resolve(rank int, sc *resolveScratch) (fp.Hash, error) {
	h := fp.New()
	for gid, es := range s.m.Entries {
		sc.data[gid] = nil
		sc.sel[gid] = -1
		for i := range es {
			if es[i].Ranks.Contains(rank) {
				d, err := s.m.entryData(&es[i])
				if err != nil {
					return h, fmt.Errorf("merge: resolving rank %d at vertex %d: %w", rank, gid, err)
				}
				sc.data[gid] = d
				sc.sel[gid] = int32(i)
				h = h.Word(uint64(gid)).Word(uint64(i))
				break
			}
		}
	}
	return h, nil
}

// lookup returns the memoized class whose selection vector equals sel, or nil.
// Caller holds s.mu.
func (s *Streamer) lookup(h fp.Hash, sel []int32) *replayClass {
	for _, c := range s.classes[h] {
		if selEqual(c.sel, sel) {
			return c
		}
	}
	return nil
}

func selEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// classFor resolves rank and returns its selection class, building and
// memoizing the replay skeleton on first contact with the class. When emit is
// non-nil and the class was not yet memoized, the skeleton-building walk
// streams rank's events into emit and the returned bool is true (the caller
// must not emit again).
func (s *Streamer) classFor(rank int, emit func(*trace.Event)) (*replayClass, bool, error) {
	if rank < 0 || rank >= s.m.NumRanks {
		return nil, false, fmt.Errorf("merge: replay rank %d out of range [0,%d)", rank, s.m.NumRanks)
	}
	s.mu.Lock()
	if c := s.byRank[rank]; c != nil {
		s.mu.Unlock()
		sink.Inc(obs.ReplayRankMemoHits)
		rec.Instant(ftrace.CatReplay, ftrace.NameMemoHit, 0, int64(rank), memoHitRank)
		return c, false, nil
	}
	s.mu.Unlock()

	sc := s.scratch.Get().(*resolveScratch)
	defer s.scratch.Put(sc)
	h, err := s.resolve(rank, sc)
	if err != nil {
		return nil, false, err
	}

	s.mu.Lock()
	if c := s.lookup(h, sc.sel); c != nil {
		s.byRank[rank] = c
		s.mu.Unlock()
		sink.Inc(obs.ReplayClassReuses)
		rec.Instant(ftrace.CatReplay, ftrace.NameMemoHit, 0, int64(rank), memoHitClass)
		return c, false, nil
	}
	s.mu.Unlock()

	// Build outside the lock: skeleton construction is the expensive part and
	// other classes' ranks should not serialize behind it. A concurrent
	// builder of the same class loses the insert race below and discards its
	// duplicate — correctness is unaffected (both walks produce equal steps).
	view := &Resolved{tree: s.m.Tree, data: sc.data, rank: rank}
	bsp := sink.Start(obs.StageSkeleton)
	tsp := rec.Begin(ftrace.CatReplay, ftrace.NameSkeleton, 0)
	steps, err := replay.Skeleton(view, rank, emit)
	tsp.End(int64(rank), int64(len(steps)))
	bsp.End()
	sink.Inc(obs.ReplaySkeletonBuilds)
	if err != nil {
		return nil, emit != nil, err
	}
	c := &replayClass{sel: append([]int32(nil), sc.sel...), steps: steps}

	s.mu.Lock()
	if prior := s.lookup(h, sc.sel); prior != nil {
		c = prior
	} else {
		s.classes[h] = append(s.classes[h], c)
	}
	s.byRank[rank] = c
	s.mu.Unlock()
	return c, emit != nil, nil
}

// Replay streams rank's exact event sequence into emit. The first rank of
// each selection class pays one tree walk (which doubles as the skeleton
// build); every later rank of the class is a flat scan over the shared
// skeleton. The event pointer is only valid during the callback. The emitted
// sequence is byte-identical to replay.Events over ForRank(rank).
func (s *Streamer) Replay(rank int, emit func(e *trace.Event)) error {
	c, emitted, err := s.classFor(rank, emit)
	if err != nil || emitted {
		return err
	}
	replay.EmitSkeleton(c.steps, rank, emit)
	return nil
}

// Cursor returns a pull iterator over rank's event sequence, backed by the
// rank's (possibly shared) replay skeleton: O(1) per-rank state, suitable for
// feeding simmpi.SimulateStream without materializing the sequence.
func (s *Streamer) Cursor(rank int) (*replay.Cursor, error) {
	c, _, err := s.classFor(rank, nil)
	if err != nil {
		return nil, err
	}
	return replay.NewCursor(c.steps, rank), nil
}

// Prepare resolves every rank and builds every selection class's skeleton
// under a bounded worker pool (workers <= 0 uses GOMAXPROCS). Calling it
// first makes subsequent Cursor calls O(1); Replay and Cursor also build
// lazily, so Prepare is an optimization, not a requirement.
func (s *Streamer) Prepare(workers int) error {
	return s.forEachRank(workers, func(rank int) error {
		_, _, err := s.classFor(rank, nil)
		return err
	})
}

// ReplayAll streams every rank's sequence under a bounded worker pool
// (workers <= 0 uses GOMAXPROCS). fn is invoked concurrently from multiple
// goroutines, but events of one rank arrive in order on a single goroutine;
// per-rank accumulation (one matrix row per rank, say) needs no locking. The
// first error stops no other lanes but is the one returned.
func (s *Streamer) ReplayAll(workers int, fn func(rank int, e *trace.Event)) error {
	return s.forEachRank(workers, func(rank int) error {
		return s.Replay(rank, func(e *trace.Event) { fn(rank, e) })
	})
}

// forEachRank fans fn out over ranks with an atomic work counter, so
// stragglers do not serialize behind a static partition.
func (s *Streamer) forEachRank(workers int, fn func(rank int) error) error {
	n := s.m.NumRanks
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for rank := 0; rank < n; rank++ {
			if err := fn(rank); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	next.Store(-1)
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				rank := int(next.Add(1))
				if rank >= n {
					return
				}
				if err := fn(rank); err != nil {
					firstErr.CompareAndSwap(nil, &err)
				}
			}
		}()
	}
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return *ep
	}
	return nil
}

// ClassCount reports how many selection classes have been discovered so far
// (a measure of SPMD uniformity: 1 means every resolved rank shares one
// skeleton). Only ranks already replayed or prepared are counted.
func (s *Streamer) ClassCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, chain := range s.classes {
		n += len(chain)
	}
	return n
}
