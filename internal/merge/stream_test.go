package merge

import (
	"reflect"
	"testing"

	"repro/internal/cst"
	"repro/internal/ctt"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/mpisim"
	"repro/internal/replay"
	"repro/internal/simmpi"
	"repro/internal/timestat"
	"repro/internal/trace"
)

// ringSrcStream is the wraparound-ring shape behind the large-rank streaming
// tests: every rank sends to (rank+1)%size and receives from (rank-1+size)%size,
// so the trace both simulates under simmpi (sends complete locally; every recv
// has a matching send) and splits into three selection classes (interior,
// rank 0, rank size-1 — the wraparound edges break the relative encoding).
const ringSrcStream = `
func main() {
	for var i = 0; i < 16; i = i + 1 {
		send((rank + 1) % size, 4096, 7);
		recv((rank + size - 1) % size, 4096, 7);
	}
	allreduce(8);
}`

// ringCTTs builds n per-rank CTTs by driving each compressor directly with a
// synthetic wraparound-ring event stream — no simulator, so streaming tests
// scale to 1024 ranks in milliseconds. Unlike directDriveCTTs it emits
// MPI_Init/Finalize events (replay expects them on the root's record list)
// and keeps iteration counts uniform so the trace is simulatable.
func ringCTTs(t testing.TB, n, iters int) []*ctt.RankCTT {
	t.Helper()
	prog, err := lang.Parse(ringSrcStream)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lang.Check(prog); err != nil {
		t.Fatal(err)
	}
	tree := buildTree(t, prog)
	var loop, sendLeaf, recvLeaf, redLeaf *cst.Vertex
	tree.Walk(func(v *cst.Vertex, _ int) {
		switch {
		case loop == nil && v.Kind == cst.KindLoop:
			loop = v
		case sendLeaf == nil && v.Kind == cst.KindComm && v.Op == trace.OpSend:
			sendLeaf = v
		case recvLeaf == nil && v.Kind == cst.KindComm && v.Op == trace.OpRecv:
			recvLeaf = v
		case redLeaf == nil && v.Kind == cst.KindComm && v.Op == trace.OpAllreduce:
			redLeaf = v
		}
	})
	if loop == nil || sendLeaf == nil || recvLeaf == nil || redLeaf == nil {
		t.Fatal("ring tree missing vertices")
	}
	out := make([]*ctt.RankCTT, n)
	var ev trace.Event
	for r := 0; r < n; r++ {
		c := ctt.NewCompressor(tree, r, timestat.ModeMeanStddev)
		ev = trace.Event{Op: trace.OpInit, Peer: trace.NoPeer, ReqID: -1, DurationNS: 120, ComputeNS: 10}
		c.Event(&ev)
		c.LoopEnter(int32(loop.Site))
		for k := 0; k < iters; k++ {
			c.LoopIter(int32(loop.Site))
			c.CommSite(int32(sendLeaf.Site))
			ev = trace.Event{Op: trace.OpSend, Peer: (r + 1) % n, Size: 4096, Tag: 7, ReqID: -1, DurationNS: 1500, ComputeNS: 40}
			c.Event(&ev)
			c.CommSite(int32(recvLeaf.Site))
			ev = trace.Event{Op: trace.OpRecv, Peer: (r + n - 1) % n, Size: 4096, Tag: 7, ReqID: -1, DurationNS: 1600, ComputeNS: 55}
			c.Event(&ev)
		}
		c.StructExit()
		c.CommSite(int32(redLeaf.Site))
		ev = trace.Event{Op: trace.OpAllreduce, Peer: trace.NoPeer, Size: 8, ReqID: -1, DurationNS: 2200, ComputeNS: 70}
		c.Event(&ev)
		ev = trace.Event{Op: trace.OpFinalize, Peer: trace.NoPeer, ReqID: -1, DurationNS: 90}
		c.Event(&ev)
		c.Finalize()
		out[r] = c.Finish()
	}
	return out
}

func buildTree(t testing.TB, prog *lang.Program) *cst.Tree {
	t.Helper()
	irProg, err := ir.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := cst.Build(irProg)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// rankViewSeq is the reference decompression: the O(groups)-per-accessor
// rankView path the Streamer replaces.
func rankViewSeq(t testing.TB, m *Merged, rank int) []trace.Event {
	t.Helper()
	seq, err := replay.Sequence(m.ForRank(rank), rank)
	if err != nil {
		t.Fatalf("rankView replay rank %d: %v", rank, err)
	}
	return seq
}

// streamerSeqs materializes every rank's sequence three ways through s —
// callback Replay, pull Cursor — and checks them against each other before
// returning the Replay result.
func streamerSeqs(t testing.TB, s *Streamer, rank int) []trace.Event {
	t.Helper()
	var cb []trace.Event
	if err := s.Replay(rank, func(e *trace.Event) { cb = append(cb, *e) }); err != nil {
		t.Fatalf("streamer replay rank %d: %v", rank, err)
	}
	cur, err := s.Cursor(rank)
	if err != nil {
		t.Fatalf("streamer cursor rank %d: %v", rank, err)
	}
	var pulled []trace.Event
	for {
		e, ok := cur.Next()
		if !ok {
			break
		}
		pulled = append(pulled, *e)
	}
	if !reflect.DeepEqual(cb, pulled) {
		t.Fatalf("rank %d: cursor sequence differs from callback sequence", rank)
	}
	return cb
}

// TestStreamerMatchesRankView pins the sequence-preservation guarantee: for
// every rank of every fixture, the Streamer's replay (both the skeleton-build
// walk of the first rank of a class and the skeleton scans of its followers,
// and the pull-cursor path) is event-identical to the reference rankView walk.
func TestStreamerMatchesRankView(t *testing.T) {
	fixtures := []struct {
		name string
		m    *Merged
	}{}
	for _, n := range []int{7, 64} {
		_, ctts, _ := collect(t, jacobiSrc, n)
		m, err := All(ctts, 0)
		if err != nil {
			t.Fatal(err)
		}
		fixtures = append(fixtures, struct {
			name string
			m    *Merged
		}{name: "jacobi", m: m})
	}
	{
		// Divergent iteration counts: multiple selection classes with
		// interleaved rank sets.
		src := `
func main() {
	var pair = rank / 2;
	var k = 5;
	if pair % 2 == 1 { k = 9; }
	if rank % 2 == 0 {
		for var i = 0; i < k; i = i + 1 { send(rank + 1, 64, 0); }
	} else {
		for var i = 0; i < k; i = i + 1 { recv(rank - 1, 64, 0); }
	}
}`
		_, ctts, _ := collect(t, src, 8)
		m, err := All(ctts, 0)
		if err != nil {
			t.Fatal(err)
		}
		fixtures = append(fixtures, struct {
			name string
			m    *Merged
		}{name: "divergent", m: m})
	}
	for _, fx := range fixtures {
		s := NewStreamer(fx.m)
		for rank := 0; rank < fx.m.NumRanks; rank++ {
			want := rankViewSeq(t, fx.m, rank)
			got := streamerSeqs(t, s, rank)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: rank %d/%d: streamer sequence differs from rankView",
					fx.name, rank, fx.m.NumRanks)
			}
		}
		if cc := s.ClassCount(); cc < 1 || cc >= fx.m.NumRanks {
			t.Errorf("%s: ClassCount %d outside (0,%d): skeleton sharing broken",
				fx.name, cc, fx.m.NumRanks)
		}
	}
}

// TestStreamerRing1024 is the at-scale identity check: 1024 synthetic ring
// ranks must replay byte-identically through the Streamer and collapse to the
// three wraparound selection classes, and the streaming simulation over pull
// cursors must produce exactly the result of the materializing simulation.
func TestStreamerRing1024(t *testing.T) {
	const n = 1024
	ctts := ringCTTs(t, n, 16)
	m, err := All(ctts, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStreamer(m)
	if err := s.Prepare(0); err != nil {
		t.Fatal(err)
	}
	if cc := s.ClassCount(); cc != 3 {
		t.Errorf("ring ClassCount = %d, want 3 (interior + two wraparound edges)", cc)
	}
	// Spot-check full sequences at the class boundaries and a few interiors.
	for _, rank := range []int{0, 1, 2, 511, 1022, 1023} {
		want := rankViewSeq(t, m, rank)
		got := streamerSeqs(t, s, rank)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("rank %d: streamer sequence differs from rankView", rank)
		}
	}
	// Streaming simulation == materializing simulation, exactly.
	params := mpisim.DefaultParams()
	seqs := make([][]trace.Event, n)
	srcs := make([]simmpi.EventSource, n)
	for rank := 0; rank < n; rank++ {
		seqs[rank] = rankViewSeq(t, m, rank)
		cur, err := s.Cursor(rank)
		if err != nil {
			t.Fatal(err)
		}
		srcs[rank] = cur
	}
	want, err := simmpi.Simulate(seqs, params)
	if err != nil {
		t.Fatal(err)
	}
	got, err := simmpi.SimulateStream(srcs, params)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("streaming simulation differs from materializing simulation:\n got %+v\nwant %+v", got, want)
	}
}

// TestStreamerReplayAll pins the parallel fan-out: per-rank event order under
// concurrent replay equals the serial order, for worker counts around the
// rank count.
func TestStreamerReplayAll(t *testing.T) {
	_, ctts, _ := collect(t, jacobiSrc, 12)
	m, err := All(ctts, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStreamer(m)
	want := make([][]trace.Event, m.NumRanks)
	for rank := range want {
		want[rank] = rankViewSeq(t, m, rank)
	}
	for _, workers := range []int{1, 3, 12, 64, 0} {
		got := make([][]trace.Event, m.NumRanks)
		err := s.ReplayAll(workers, func(rank int, e *trace.Event) {
			got[rank] = append(got[rank], *e)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: parallel replay differs from serial", workers)
		}
	}
}

// TestStreamerRankOutOfRange pins the error path.
func TestStreamerRankOutOfRange(t *testing.T) {
	_, ctts, _ := collect(t, jacobiSrc, 4)
	m, err := All(ctts, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStreamer(m)
	if err := s.Replay(4, func(*trace.Event) {}); err == nil {
		t.Error("Replay(4) on 4 ranks: want error, got nil")
	}
	if _, err := s.Cursor(-1); err == nil {
		t.Error("Cursor(-1): want error, got nil")
	}
}

// TestStreamerSteadyStateAllocs pins the streaming replay's steady state:
// once every selection class's skeleton is memoized, replaying a rank must
// not allocate at all — the walk is a flat scan over shared steps with one
// stack-reused event buffer — and opening a cursor costs exactly the cursor.
func TestStreamerSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse; allocation counts are not meaningful")
	}
	_, ctts, _ := collect(t, jacobiSrc, 16)
	m, err := All(ctts, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStreamer(m)
	if err := s.Prepare(1); err != nil {
		t.Fatal(err)
	}
	sink := func(e *trace.Event) {}
	allocs := testing.AllocsPerRun(100, func() {
		for rank := 0; rank < m.NumRanks; rank++ {
			if err := s.Replay(rank, sink); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state Replay over 16 ranks allocates %.1f allocs/op, want 0", allocs)
	}
	cursorAllocs := testing.AllocsPerRun(100, func() {
		if _, err := s.Cursor(3); err != nil {
			t.Fatal(err)
		}
	})
	if cursorAllocs > 1 {
		t.Errorf("steady-state Cursor allocates %.1f allocs/op, want <= 1", cursorAllocs)
	}
}
