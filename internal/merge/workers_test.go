package merge

import (
	"strings"
	"testing"

	"repro/internal/replay"
)

// TestAllWorkerEdges exercises the bounded-semaphore reduction at its edge
// configurations: workers=0 (GOMAXPROCS default), workers=1 (fully inline
// recursion), and workers far beyond both the rank count and any sensible
// core count. Every configuration must produce a tree replay-equivalent to
// the serial schedule. Pair consumes its operands, so each configuration
// merges a freshly collected set of CTTs.
func TestAllWorkerEdges(t *testing.T) {
	const n = 12
	_, refCtts, _ := collect(t, jacobiSrc, n)
	ref, err := Serial(refCtts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 64} {
		_, ctts, _ := collect(t, jacobiSrc, n)
		m, err := All(ctts, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if m.NumRanks != n || m.EventCount != ref.EventCount {
			t.Fatalf("workers=%d: header %d ranks / %d events, want %d / %d",
				workers, m.NumRanks, m.EventCount, n, ref.EventCount)
		}
		if m.GroupCount() != ref.GroupCount() {
			t.Fatalf("workers=%d: group count %d, want %d", workers, m.GroupCount(), ref.GroupCount())
		}
		for rank := 0; rank < n; rank++ {
			a, err := replay.Sequence(m.ForRank(rank), rank)
			if err != nil {
				t.Fatalf("workers=%d rank %d: %v", workers, rank, err)
			}
			b, err := replay.Sequence(ref.ForRank(rank), rank)
			if err != nil {
				t.Fatal(err)
			}
			if err := replay.Equivalent(a, b); err != nil {
				t.Fatalf("workers=%d rank %d: %v", workers, rank, err)
			}
		}
	}
}

// TestAllSingleRank checks the reduction's base case: one rank means no Pair
// call at all, under both All and AllNoRelative.
func TestAllSingleRank(t *testing.T) {
	_, ctts, _ := collect(t, jacobiSrc, 1)
	m, err := All(ctts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRanks != 1 {
		t.Fatalf("NumRanks = %d, want 1", m.NumRanks)
	}
	_, ctts2, _ := collect(t, jacobiSrc, 1)
	m2, err := AllNoRelative(ctts2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumRanks != 1 || m2.GroupCount() != m.GroupCount() {
		t.Fatalf("AllNoRelative single rank: %d ranks, %d groups (want %d)",
			m2.NumRanks, m2.GroupCount(), m.GroupCount())
	}
}

// TestAllEmptyInput checks that both entry points reject an empty job.
func TestAllEmptyInput(t *testing.T) {
	if _, err := All(nil, 0); err == nil {
		t.Fatal("All(nil) succeeded")
	}
	if _, err := AllNoRelative(nil, 4); err == nil {
		t.Fatal("AllNoRelative(nil) succeeded")
	}
}

// TestAllHashMismatchPropagates runs the parallel reduction over CTTs from
// two different programs and requires the CST-hash error to surface from
// whatever goroutine hit it, for every worker setting.
func TestAllHashMismatchPropagates(t *testing.T) {
	const n = 8
	for _, workers := range []int{0, 1, 32} {
		_, a, _ := collect(t, jacobiSrc, n)
		_, b, _ := collect(t, `func main() { allreduce(8); }`, n)
		mixed := append(a[:n/2:n/2], b[n/2:]...)
		_, err := All(mixed, workers)
		if err == nil {
			t.Fatalf("workers=%d: merged CTTs from different programs", workers)
		}
		if !strings.Contains(err.Error(), "hash mismatch") {
			t.Fatalf("workers=%d: error %q does not mention the hash mismatch", workers, err)
		}
	}
}

// TestAllNoRelativeParallelMatchesSerialSchedule verifies that running the
// ablation through the parallel reduction does not change its outcome: the
// noRel flag must reach every Pair regardless of schedule.
func TestAllNoRelativeParallelMatchesSerialSchedule(t *testing.T) {
	const n = 8
	src := `
func main() {
	for var k = 0; k < 6; k = k + 1 {
		if rank < size - 1 { send(rank + 1, 256, 0); }
		if rank > 0 { recv(rank - 1, 256, 0); }
	}
}`
	_, ctts1, _ := collect(t, src, n)
	one, err := AllNoRelative(ctts1, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, ctts2, _ := collect(t, src, n)
	many, err := AllNoRelative(ctts2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if one.GroupCount() != many.GroupCount() {
		t.Fatalf("ablation group count depends on workers: %d vs %d",
			one.GroupCount(), many.GroupCount())
	}
	// And the ablation must actually differ from the relative-enabled merge:
	// absolute peers differ across ranks, so groups cannot unify.
	_, ctts3, _ := collect(t, src, n)
	rel, err := All(ctts3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if one.GroupCount() <= rel.GroupCount() {
		t.Fatalf("noRel groups (%d) should exceed relative-encoding groups (%d)",
			one.GroupCount(), rel.GroupCount())
	}
}
