package mpisim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/trace"
)

// collSync synchronizes collectives: every rank in the world communicator
// must call the same collective with the same root and size; the runtime
// aborts on mismatched operations, which in real MPI would deadlock or
// corrupt data.
type collSync struct {
	rt      *Runtime
	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	gen     uint64
	op      trace.Op
	root    int
	size    int
	maxNow  float64
	finish  float64
}

func newCollSync(rt *Runtime) *collSync {
	c := &collSync{rt: rt}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// enter blocks rank r until all ranks join the collective and returns the
// common finish time of the operation.
func (c *collSync) enter(r *Rank, op trace.Op, root, size int) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.arrived == 0 {
		c.op, c.root, c.size = op, root, size
	} else if c.op != op || c.root != root || c.size != size {
		err := fmt.Errorf("mpisim: collective mismatch: rank %d called %v(root=%d,size=%d) while others called %v(root=%d,size=%d)",
			r.id, op, root, size, c.op, c.root, c.size)
		c.mu.Unlock()
		c.rt.abort(err)
		c.mu.Lock()
		panic(errAborted)
	}
	c.arrived++
	c.maxNow = math.Max(c.maxNow, r.nowNS)
	if c.arrived == c.rt.n {
		c.finish = c.maxNow + c.cost(op, size)
		c.arrived = 0
		c.maxNow = 0
		c.gen++
		c.rt.noteProgress()
		c.cond.Broadcast()
		return c.finish
	}
	myGen := c.gen
	for c.gen == myGen {
		c.rt.markBlocked(+1)
		c.cond.Wait()
		c.rt.markBlocked(-1)
		if c.rt.failureErr() != nil {
			panic(errAborted)
		}
	}
	return c.finish
}

// cost models collective completion time with binomial-tree decompositions,
// the same decomposition the LogGP replay simulator applies (paper Section V
// cites [23] for decomposing collectives into point-to-point operations).
func (c *collSync) cost(op trace.Op, size int) float64 {
	return CollectiveCostNS(c.rt.params, c.rt.n, op, size)
}

// CollectiveCostNS is the shared binomial-tree LogGP cost model for
// collective operations; the SIM-MPI replay simulator uses the same formulas
// so predictions are model-consistent with the synthetic "measurements".
func CollectiveCostNS(p Params, nRanks int, op trace.Op, size int) float64 {
	n := float64(nRanks)
	logn := math.Ceil(math.Log2(math.Max(n, 2)))
	perMsg := p.OverheadNS + p.LatencyNS + p.GapPerByteNS*float64(size)
	switch op {
	case trace.OpBarrier, trace.OpFinalize:
		return 2*p.LatencyNS + p.OverheadNS*logn
	case trace.OpBcast, trace.OpReduce, trace.OpScatter, trace.OpGather:
		return logn * perMsg
	case trace.OpAllreduce:
		return 2 * logn * perMsg
	case trace.OpAllgather:
		return (n-1)*(p.OverheadNS+p.GapPerByteNS*float64(size)) + logn*p.LatencyNS
	case trace.OpAlltoall:
		return (n-1)*(p.OverheadNS+p.GapPerByteNS*float64(size)) + p.LatencyNS
	}
	panic(fmt.Sprintf("mpisim: no cost model for %v", op))
}

// collective runs the synchronization and advances the local clock with
// per-rank jitter.
func (r *Rank) collective(op trace.Op, root, size int) {
	finish := r.rt.coll.enter(r, op, root, size)
	r.seq++
	r.nowNS = finish + (finish-r.nowNS)*(r.rt.params.noise(r.id, r.seq)-1)
	if r.nowNS < finish {
		r.nowNS = finish
	}
}

func (r *Rank) rootedCollective(op trace.Op, root, size int) {
	r.checkPeer(root, false)
	start := r.nowNS
	r.collective(op, root, size)
	r.emit(&trace.Event{Op: op, Size: size, Peer: root, ReqID: -1}, start)
}

func (r *Rank) rootlessCollective(op trace.Op, size int) {
	start := r.nowNS
	r.collective(op, 0, size)
	r.emit(&trace.Event{Op: op, Size: size, Peer: trace.NoPeer, ReqID: -1}, start)
}

// Barrier synchronizes all ranks.
func (r *Rank) Barrier() { r.rootlessCollective(trace.OpBarrier, 0) }

// Bcast broadcasts size bytes from root.
func (r *Rank) Bcast(root, size int) { r.rootedCollective(trace.OpBcast, root, size) }

// Reduce reduces size bytes to root.
func (r *Rank) Reduce(root, size int) { r.rootedCollective(trace.OpReduce, root, size) }

// Allreduce reduces size bytes to all ranks.
func (r *Rank) Allreduce(size int) { r.rootlessCollective(trace.OpAllreduce, size) }

// Gather gathers size bytes per rank to root.
func (r *Rank) Gather(root, size int) { r.rootedCollective(trace.OpGather, root, size) }

// Scatter scatters size bytes per rank from root.
func (r *Rank) Scatter(root, size int) { r.rootedCollective(trace.OpScatter, root, size) }

// Allgather gathers size bytes per rank to all ranks.
func (r *Rank) Allgather(size int) { r.rootlessCollective(trace.OpAllgather, size) }

// Alltoall exchanges size bytes between every pair of ranks.
func (r *Rank) Alltoall(size int) { r.rootlessCollective(trace.OpAlltoall, size) }
