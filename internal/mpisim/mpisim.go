// Package mpisim is a deterministic-enough MPI runtime simulator: it runs one
// goroutine per rank, matches point-to-point messages by (source, tag) with
// wildcard-source support, synchronizes collectives, tracks request handles
// for non-blocking operations, and advances a per-rank LogGP-based synthetic
// clock. A trace.Sink attached to each rank observes every communication
// event, playing the role of the paper's PMPI interposition layer.
//
// The simulator substitutes for the real MPI library the paper's runtime
// intercepts. The compressors only consume the observed event stream, so
// fidelity of the *pattern* (matching, ordering, wildcard nondeterminism,
// request completion) is what matters, not byte transport.
package mpisim

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/trace"
)

// Params is the synthetic communication cost model (LogGP: latency L,
// per-message overhead o, per-byte gap G) plus a deterministic noise term.
type Params struct {
	LatencyNS    float64 // L: wire latency per message
	OverheadNS   float64 // o: CPU overhead per send/recv posting
	GapPerByteNS float64 // G: per-byte cost
	NoiseFrac    float64 // +-fraction of deterministic pseudo-noise per op
}

// DefaultParams models a QDR-InfiniBand-class network, the paper's testbed
// fabric: ~1.5us latency, ~3GB/s effective per-byte cost.
func DefaultParams() Params {
	return Params{LatencyNS: 1500, OverheadNS: 400, GapPerByteNS: 0.33, NoiseFrac: 0.02}
}

// InjectNS is the sender-side cost of injecting one message of size bytes
// (LogGP: o + G·size), before noise. It is shared by the runtime's p2pCost
// and the simmpi trace-driven engine so both sides of a prediction
// experiment price point-to-point traffic from one formula.
func (p Params) InjectNS(size int) float64 {
	return p.OverheadNS + p.GapPerByteNS*float64(size)
}

// LookaheadNS is the conservative parallel-simulation lookahead: a message
// injected at local virtual time t is never visible to its receiver before
// t + o + L, so simulated ranks whose clocks sit inside a window of this
// span can be advanced concurrently without ever missing a message that an
// in-window rank could still produce for an earlier in-window consumer
// (see simmpi's epoch-parallel engine).
func (p Params) LookaheadNS() float64 { return p.OverheadNS + p.LatencyNS }

// ErrDeadlock is returned by Run when no rank can make progress.
var ErrDeadlock = errors.New("mpisim: deadlock: all active ranks blocked")

// message is an in-flight point-to-point payload descriptor.
type message struct {
	src, tag, size int
	availNS        float64 // earliest time the payload is visible at the receiver
}

// mailbox holds arrived-but-unconsumed messages for one destination rank.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []message
}

// Runtime is one simulated MPI job.
type Runtime struct {
	n      int
	params Params
	boxes  []*mailbox
	coll   *collSync

	mu       sync.Mutex
	active   int
	blocked  int
	progress uint64
	failure  error
	done     chan struct{}
}

// Run executes body on n ranks and returns the maximum synthetic clock (ns)
// across ranks, i.e. the simulated job execution time. sinks may be nil or
// hold one Sink per rank. Run returns an error if any rank panics or the job
// deadlocks.
func Run(n int, params Params, sinks []trace.Sink, body func(r *Rank)) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("mpisim: need at least 1 rank, got %d", n)
	}
	if sinks != nil && len(sinks) != n {
		return 0, fmt.Errorf("mpisim: %d sinks for %d ranks", len(sinks), n)
	}
	rt := &Runtime{n: n, params: params, active: n, done: make(chan struct{})}
	rt.boxes = make([]*mailbox, n)
	for i := range rt.boxes {
		mb := &mailbox{}
		mb.cond = sync.NewCond(&mb.mu)
		rt.boxes[i] = mb
	}
	rt.coll = newCollSync(rt)

	var wg sync.WaitGroup
	finals := make([]float64, n)
	panics := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if r == errAborted {
						panics[id] = rt.failureErr()
					} else {
						panics[id] = fmt.Errorf("mpisim: rank %d panicked: %v", id, r)
						rt.abort(panics[id])
					}
				}
				rt.mu.Lock()
				rt.active--
				rt.progress++
				rt.mu.Unlock()
				rt.wakeAll()
			}()
			rank := &Rank{rt: rt, id: id}
			if sinks != nil {
				rank.sink = sinks[id]
			} else {
				rank.sink = trace.NopSink{}
			}
			body(rank)
			finals[id] = rank.nowNS
		}(i)
	}

	watchdogDone := make(chan struct{})
	go rt.watchdog(watchdogDone)
	wg.Wait()
	close(watchdogDone)

	for _, err := range panics {
		if err != nil {
			return 0, err
		}
	}
	if err := rt.failureErr(); err != nil {
		return 0, err
	}
	maxT := 0.0
	for _, t := range finals {
		maxT = math.Max(maxT, t)
	}
	return maxT, nil
}

var errAborted = errors.New("mpisim: aborted")

func (rt *Runtime) failureErr() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.failure
}

func (rt *Runtime) abort(err error) {
	rt.mu.Lock()
	if rt.failure == nil {
		rt.failure = err
	}
	rt.mu.Unlock()
	rt.wakeAll()
}

func (rt *Runtime) wakeAll() {
	for _, mb := range rt.boxes {
		mb.cond.Broadcast()
	}
	rt.coll.cond.Broadcast()
}

// watchdog declares deadlock when every active rank stays blocked with no
// progress across two consecutive samples.
func (rt *Runtime) watchdog(done chan struct{}) {
	var lastProgress uint64
	var stuck int
	for {
		select {
		case <-done:
			return
		case <-time.After(25 * time.Millisecond):
		}
		rt.mu.Lock()
		allBlocked := rt.active > 0 && rt.blocked >= rt.active
		progress := rt.progress
		rt.mu.Unlock()
		if allBlocked && progress == lastProgress {
			stuck++
			if stuck >= 3 {
				rt.abort(ErrDeadlock)
				return
			}
		} else {
			stuck = 0
		}
		lastProgress = progress
	}
}

// markBlocked adjusts the blocked-rank count around condition waits.
func (rt *Runtime) markBlocked(delta int) {
	rt.mu.Lock()
	rt.blocked += delta
	if delta < 0 {
		rt.progress++
	}
	rt.mu.Unlock()
}

func (rt *Runtime) noteProgress() {
	rt.mu.Lock()
	rt.progress++
	rt.mu.Unlock()
}

// noise returns a deterministic pseudo-random factor in [1-f, 1+f] derived
// from (rank, seq) with a splitmix64 hash, keeping runs reproducible without
// math/rand global state.
func (p Params) noise(rank int, seq uint64) float64 {
	if p.NoiseFrac == 0 {
		return 1
	}
	x := uint64(rank+1)*0x9E3779B97F4A7C15 ^ seq*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	u := float64(x>>11) / float64(1<<53) // [0,1)
	return 1 + p.NoiseFrac*(2*u-1)
}
