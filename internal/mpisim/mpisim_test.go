package mpisim

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// runCollect runs body on n ranks and returns per-rank event lists.
func runCollect(t *testing.T, n int, body func(r *Rank)) ([][]trace.Event, float64) {
	t.Helper()
	sinks := make([]trace.Sink, n)
	cols := make([]*trace.CollectorSink, n)
	for i := range sinks {
		cols[i] = &trace.CollectorSink{}
		sinks[i] = cols[i]
	}
	tot, err := Run(n, DefaultParams(), sinks, body)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := make([][]trace.Event, n)
	for i, c := range cols {
		out[i] = c.Events
	}
	return out, tot
}

func TestSendRecvPair(t *testing.T) {
	evs, tot := runCollect(t, 2, func(r *Rank) {
		r.Init()
		if r.ID() == 0 {
			r.Send(1, 1024, 7)
		} else {
			src := r.Recv(0, 1024, 7)
			if src != 0 {
				t.Errorf("matched src = %d", src)
			}
		}
		r.Finalize()
	})
	if tot <= 0 {
		t.Fatal("job time must be positive")
	}
	if evs[0][1].Op != trace.OpSend || evs[0][1].Peer != 1 || evs[0][1].Size != 1024 || evs[0][1].Tag != 7 {
		t.Fatalf("send event = %+v", evs[0][1])
	}
	recv := evs[1][1]
	if recv.Op != trace.OpRecv || recv.Peer != 0 || recv.Wildcard {
		t.Fatalf("recv event = %+v", recv)
	}
	if recv.DurationNS <= 0 {
		t.Fatal("recv duration must be positive")
	}
}

func TestTagMatchingOrder(t *testing.T) {
	// Two messages with different tags: the receiver asks for tag 2 first,
	// so matching must be by tag, not arrival order.
	evs, _ := runCollect(t, 2, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 10, 1)
			r.Send(1, 20, 2)
		} else {
			r.Recv(0, 20, 2)
			r.Recv(0, 10, 1)
		}
	})
	if evs[1][0].Size != 20 || evs[1][1].Size != 10 {
		t.Fatalf("tag matching broken: %+v", evs[1])
	}
}

func TestFIFOPerTag(t *testing.T) {
	// Same (src, tag): arrival order must be preserved.
	runCollect(t, 2, func(r *Rank) {
		if r.ID() == 0 {
			for i := 0; i < 5; i++ {
				r.Send(1, 100+i, 0)
			}
		} else {
			for i := 0; i < 5; i++ {
				r.Recv(0, 100+i, 0) // panics on size mismatch if order broken
			}
		}
	})
}

func TestWildcardRecv(t *testing.T) {
	evs, _ := runCollect(t, 3, func(r *Rank) {
		if r.ID() != 0 {
			r.Send(0, 64, 0)
		} else {
			s1 := r.Recv(trace.AnySource, 64, 0)
			s2 := r.Recv(trace.AnySource, 64, 0)
			if s1 == s2 {
				t.Errorf("wildcard matched same source twice: %d", s1)
			}
		}
	})
	for _, e := range evs[0] {
		if e.Op == trace.OpRecv {
			if !e.Wildcard {
				t.Fatal("wildcard flag missing")
			}
			if e.Peer != 1 && e.Peer != 2 {
				t.Fatalf("resolved peer = %d", e.Peer)
			}
		}
	}
}

func TestIsendIrecvWaitall(t *testing.T) {
	evs, _ := runCollect(t, 2, func(r *Rank) {
		peer := 1 - r.ID()
		r.Isend(peer, 256, 3)
		r.Irecv(peer, 256, 3)
		r.Waitall()
		if r.PendingCount() != 0 {
			t.Errorf("pending after waitall: %d", r.PendingCount())
		}
	})
	for rank, es := range evs {
		if len(es) != 3 {
			t.Fatalf("rank %d events = %d", rank, len(es))
		}
		wa := es[2]
		if wa.Op != trace.OpWaitall || len(wa.Reqs) != 2 {
			t.Fatalf("waitall = %+v", wa)
		}
		// Posted order: isend req 0, irecv req 1.
		if wa.Reqs[0] != 0 || wa.Reqs[1] != 1 {
			t.Fatalf("completion order = %v", wa.Reqs)
		}
		// ReqSrcs: -1 for the send, peer for the receive.
		if len(wa.ReqSrcs) != 2 || wa.ReqSrcs[0] != -1 || int(wa.ReqSrcs[1]) != 1-rank {
			t.Fatalf("req srcs = %v", wa.ReqSrcs)
		}
	}
}

func TestWaitSingle(t *testing.T) {
	evs, _ := runCollect(t, 2, func(r *Rank) {
		peer := 1 - r.ID()
		req := r.Irecv(peer, 8, 0)
		r.Send(peer, 8, 0)
		r.Wait(req)
	})
	w := evs[0][2]
	if w.Op != trace.OpWait || len(w.Reqs) != 1 || w.Reqs[0] != 0 {
		t.Fatalf("wait event = %+v", w)
	}
}

func TestWaitsomeAndTestany(t *testing.T) {
	runCollect(t, 2, func(r *Rank) {
		peer := 1 - r.ID()
		r.Irecv(peer, 8, 0)
		r.Irecv(peer, 8, 1)
		r.Send(peer, 8, 0)
		r.Send(peer, 8, 1)
		done := 0
		for done < 2 {
			done += r.Waitsome()
		}
		if r.Testany() != 0 {
			t.Error("testany on empty pending must return 0")
		}
	})
}

func TestCollectives(t *testing.T) {
	n := 4
	evs, _ := runCollect(t, n, func(r *Rank) {
		r.Barrier()
		r.Bcast(0, 4096)
		r.Reduce(0, 8)
		r.Allreduce(8)
		r.Gather(2, 100)
		r.Scatter(1, 100)
		r.Allgather(64)
		r.Alltoall(32)
	})
	wantOps := []trace.Op{trace.OpBarrier, trace.OpBcast, trace.OpReduce,
		trace.OpAllreduce, trace.OpGather, trace.OpScatter, trace.OpAllgather, trace.OpAlltoall}
	for rank := 0; rank < n; rank++ {
		if len(evs[rank]) != len(wantOps) {
			t.Fatalf("rank %d: %d events", rank, len(evs[rank]))
		}
		for i, op := range wantOps {
			if evs[rank][i].Op != op {
				t.Fatalf("rank %d event %d = %v, want %v", rank, i, evs[rank][i].Op, op)
			}
		}
		if evs[rank][1].Peer != 0 || evs[rank][4].Peer != 2 || evs[rank][5].Peer != 1 {
			t.Fatalf("rank %d roots wrong: %+v", rank, evs[rank])
		}
	}
}

func TestCollectiveMismatchAborts(t *testing.T) {
	_, err := Run(2, DefaultParams(), nil, func(r *Rank) {
		if r.ID() == 0 {
			r.Bcast(0, 8)
		} else {
			r.Reduce(0, 8)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "collective mismatch") {
		t.Fatalf("err = %v", err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	_, err := Run(2, DefaultParams(), nil, func(r *Rank) {
		r.Recv(1-r.ID(), 8, 0) // both block forever
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v", err)
	}
}

func TestPartialExitDeadlockDetected(t *testing.T) {
	_, err := Run(2, DefaultParams(), nil, func(r *Rank) {
		if r.ID() == 0 {
			return // exits immediately
		}
		r.Recv(0, 8, 0)
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v", err)
	}
}

func TestBodyPanicPropagates(t *testing.T) {
	_, err := Run(2, DefaultParams(), nil, func(r *Rank) {
		if r.ID() == 1 {
			panic("boom")
		}
		r.Recv(1, 8, 0) // would block forever without abort
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	_, err := Run(2, DefaultParams(), nil, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 100, 0)
		} else {
			r.Recv(0, 999, 0)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "size mismatch") {
		t.Fatalf("err = %v", err)
	}
}

func TestPeerRangeValidation(t *testing.T) {
	_, err := Run(1, DefaultParams(), nil, func(r *Rank) {
		r.Send(5, 8, 0)
	})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v", err)
	}
}

func TestFinalizeWithPendingPanics(t *testing.T) {
	_, err := Run(2, DefaultParams(), nil, func(r *Rank) {
		r.Irecv(1-r.ID(), 8, 0)
		r.Send(1-r.ID(), 8, 0)
		r.Finalize() // pending irecv never waited
	})
	if err == nil || !strings.Contains(err.Error(), "incomplete requests") {
		t.Fatalf("err = %v", err)
	}
}

func TestComputeAdvancesClockAndComputeNS(t *testing.T) {
	evs, _ := runCollect(t, 1, func(r *Rank) {
		r.Compute(5000)
		r.Barrier()
		r.Barrier()
	})
	b1, b2 := evs[0][0], evs[0][1]
	if b1.ComputeNS < 4000 || b1.ComputeNS > 6000 {
		t.Fatalf("first barrier ComputeNS = %f", b1.ComputeNS)
	}
	if b2.ComputeNS != 0 {
		t.Fatalf("second barrier ComputeNS = %f, want 0", b2.ComputeNS)
	}
}

func TestCausalTiming(t *testing.T) {
	// The receiver cannot complete before the sender's injection + latency.
	_, tot := runCollect(t, 2, func(r *Rank) {
		if r.ID() == 0 {
			r.Compute(1e6) // 1ms before sending
			r.Send(1, 8, 0)
		} else {
			r.Recv(0, 8, 0)
		}
	})
	if tot < 1e6 {
		t.Fatalf("job time %f must include sender compute", tot)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() [][]trace.Event {
		evs, _ := runCollect(t, 4, func(r *Rank) {
			r.Init()
			for i := 0; i < 10; i++ {
				peer := (r.ID() + 1) % r.Size()
				r.Isend(peer, 128, i)
				r.Irecv((r.ID()+r.Size()-1)%r.Size(), 128, i)
				r.Waitall()
				r.Allreduce(8)
			}
			r.Finalize()
		})
		return evs
	}
	a, b := run(), run()
	for rank := range a {
		if len(a[rank]) != len(b[rank]) {
			t.Fatalf("rank %d lengths differ", rank)
		}
		for i := range a[rank] {
			x, y := a[rank][i], b[rank][i]
			if !x.SameParams(&y) || x.DurationNS != y.DurationNS {
				t.Fatalf("rank %d event %d differs: %+v vs %+v", rank, i, x, y)
			}
		}
	}
}

func TestNoiseDeterministicAndBounded(t *testing.T) {
	p := DefaultParams()
	for seq := uint64(0); seq < 1000; seq++ {
		f := p.noise(3, seq)
		if f < 1-p.NoiseFrac || f > 1+p.NoiseFrac {
			t.Fatalf("noise %f out of bounds", f)
		}
		if f != p.noise(3, seq) {
			t.Fatal("noise not deterministic")
		}
	}
	z := Params{}
	if z.noise(1, 1) != 1 {
		t.Fatal("zero noise must be exactly 1")
	}
}

func TestManyRanksRing(t *testing.T) {
	n := 64
	evs, _ := runCollect(t, n, func(r *Rank) {
		right := (r.ID() + 1) % n
		left := (r.ID() + n - 1) % n
		for i := 0; i < 5; i++ {
			r.Isend(right, 4096, 0)
			r.Irecv(left, 4096, 0)
			r.Waitall()
		}
		r.Barrier()
	})
	for rank := 0; rank < n; rank++ {
		if len(evs[rank]) != 16 {
			t.Fatalf("rank %d events = %d, want 16", rank, len(evs[rank]))
		}
	}
}

func BenchmarkPingPong(b *testing.B) {
	_, err := Run(2, DefaultParams(), nil, func(r *Rank) {
		peer := 1 - r.ID()
		for i := 0; i < b.N; i++ {
			if r.ID() == 0 {
				r.Send(peer, 64, 0)
				r.Recv(peer, 64, 0)
			} else {
				r.Recv(peer, 64, 0)
				r.Send(peer, 64, 0)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
