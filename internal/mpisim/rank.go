package mpisim

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// Rank is the per-process MPI handle passed to the job body.
type Rank struct {
	rt   *Runtime
	id   int
	sink trace.Sink

	nowNS     float64 // synthetic local clock
	computeNS float64 // compute time since the previous MPI event
	seq       uint64  // per-rank op sequence, feeds deterministic noise

	nextReq int32
	pending []*Request
}

// Request is a non-blocking operation handle.
type Request struct {
	ID       int32
	isSend   bool
	src      int // requested source (possibly trace.AnySource) for receives
	tag      int
	size     int
	done     bool
	matched  int     // resolved source for receives, -1 for sends
	availNS  float64 // completion availability time
	wildcard bool
}

// ID returns the rank id.
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks in the world communicator.
func (r *Rank) Size() int { return r.rt.n }

// Sink returns the attached tracer (used by the interpreter to emit
// structure markers alongside the runtime's communication events).
func (r *Rank) Sink() trace.Sink { return r.sink }

// NowNS returns the rank's synthetic clock.
func (r *Rank) NowNS() float64 { return r.nowNS }

// Compute advances the local clock by ns of computation.
func (r *Rank) Compute(ns float64) {
	if ns < 0 {
		panic(fmt.Sprintf("mpisim: negative compute time %f", ns))
	}
	r.seq++
	d := ns * r.rt.params.noise(r.id, r.seq)
	r.nowNS += d
	r.computeNS += d
}

func (r *Rank) checkPeer(peer int, wildcardOK bool) {
	if peer == trace.AnySource && wildcardOK {
		return
	}
	if peer < 0 || peer >= r.rt.n {
		panic(fmt.Sprintf("mpisim: rank %d: peer %d out of range [0,%d)", r.id, peer, r.rt.n))
	}
}

// emit finishes an event: stamps compute/duration, resets the compute
// accumulator, and forwards to the sink.
func (r *Rank) emit(e *trace.Event, startNS float64) {
	e.DurationNS = r.nowNS - startNS
	e.ComputeNS = r.computeNS
	e.GID = -1
	r.computeNS = 0
	r.sink.Event(e)
}

// p2pCost is the sender-side cost of injecting a message: the shared LogGP
// injection formula with this rank's deterministic noise applied.
func (r *Rank) p2pCost(size int) float64 {
	p := r.rt.params
	r.seq++
	return p.InjectNS(size) * p.noise(r.id, r.seq)
}

// Send performs a blocking standard-mode send. Sends are eager: the payload
// is buffered at the receiver's mailbox and the call returns after the local
// injection cost, matching small-message MPI behavior.
func (r *Rank) Send(dest, size, tag int) {
	r.checkPeer(dest, false)
	start := r.nowNS
	r.deliver(dest, size, tag)
	r.emit(&trace.Event{Op: trace.OpSend, Size: size, Peer: dest, Tag: tag, ReqID: -1}, start)
}

func (r *Rank) deliver(dest, size, tag int) {
	cost := r.p2pCost(size)
	r.nowNS += cost
	avail := r.nowNS + r.rt.params.LatencyNS
	mb := r.rt.boxes[dest]
	mb.mu.Lock()
	mb.msgs = append(mb.msgs, message{src: r.id, tag: tag, size: size, availNS: avail})
	mb.mu.Unlock()
	mb.cond.Broadcast()
	r.rt.noteProgress()
}

// Recv performs a blocking receive; src may be trace.AnySource. It returns
// the matched source rank.
func (r *Rank) Recv(src, size, tag int) int {
	r.checkPeer(src, true)
	start := r.nowNS
	msg := r.match(src, tag, size)
	p := r.rt.params
	r.seq++
	r.nowNS = math.Max(r.nowNS+p.OverheadNS*p.noise(r.id, r.seq), msg.availNS)
	e := &trace.Event{Op: trace.OpRecv, Size: size, Peer: msg.src, Tag: tag, ReqID: -1,
		Wildcard: src == trace.AnySource}
	r.emit(e, start)
	return msg.src
}

// match blocks until a message matching (src, tag, size) is available and
// consumes the first match in arrival order.
func (r *Rank) match(src, tag, size int) message {
	mb := r.rt.boxes[r.id]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.msgs {
			if (src == trace.AnySource || m.src == src) && m.tag == tag {
				if m.size != size {
					panic(fmt.Sprintf("mpisim: rank %d: size mismatch recv(%d) vs send(%d) from %d tag %d",
						r.id, size, m.size, m.src, tag))
				}
				mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
				return m
			}
		}
		r.rt.markBlocked(+1)
		mb.cond.Wait()
		r.rt.markBlocked(-1)
		if r.rt.failureErr() != nil {
			panic(errAborted)
		}
	}
}

// Isend posts a non-blocking send and returns its request.
func (r *Rank) Isend(dest, size, tag int) *Request {
	r.checkPeer(dest, false)
	start := r.nowNS
	r.deliver(dest, size, tag)
	req := &Request{ID: r.nextReq, isSend: true, tag: tag, size: size,
		done: true, matched: -1, availNS: r.nowNS}
	r.nextReq++
	r.pending = append(r.pending, req)
	r.emit(&trace.Event{Op: trace.OpIsend, Size: size, Peer: dest, Tag: tag, ReqID: req.ID}, start)
	return req
}

// Irecv posts a non-blocking receive; src may be trace.AnySource.
func (r *Rank) Irecv(src, size, tag int) *Request {
	r.checkPeer(src, true)
	start := r.nowNS
	p := r.rt.params
	r.seq++
	r.nowNS += p.OverheadNS * p.noise(r.id, r.seq) / 2
	req := &Request{ID: r.nextReq, src: src, tag: tag, size: size, matched: -1,
		wildcard: src == trace.AnySource}
	r.nextReq++
	r.pending = append(r.pending, req)
	e := &trace.Event{Op: trace.OpIrecv, Size: size, Peer: src, Tag: tag, ReqID: req.ID,
		Wildcard: req.wildcard}
	r.emit(e, start)
	return req
}

// complete blocks until req is done, consuming its message if a receive.
func (r *Rank) complete(req *Request) {
	if req.done {
		return
	}
	msg := r.match(req.src, req.tag, req.size)
	req.done = true
	req.matched = msg.src
	req.availNS = msg.availNS
	r.nowNS = math.Max(r.nowNS, msg.availNS)
}

// tryComplete attempts non-blocking completion; it reports success.
func (r *Rank) tryComplete(req *Request) bool {
	if req.done {
		return true
	}
	mb := r.rt.boxes[r.id]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i, m := range mb.msgs {
		if (req.src == trace.AnySource || m.src == req.src) && m.tag == req.tag {
			if m.size != req.size {
				panic(fmt.Sprintf("mpisim: rank %d: size mismatch irecv(%d) vs send(%d)",
					r.id, req.size, m.size))
			}
			mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
			req.done = true
			req.matched = m.src
			req.availNS = m.availNS
			r.nowNS = math.Max(r.nowNS, m.availNS)
			return true
		}
	}
	return false
}

// removePending drops completed requests from the pending list.
func (r *Rank) removePending(done map[*Request]bool) {
	kept := r.pending[:0]
	for _, q := range r.pending {
		if !done[q] {
			kept = append(kept, q)
		}
	}
	for i := len(kept); i < len(r.pending); i++ {
		r.pending[i] = nil
	}
	r.pending = kept
}

// completionEvent builds the Reqs/ReqSrcs lists for a completion operation.
func completionEvent(op trace.Op, reqs []*Request) *trace.Event {
	e := &trace.Event{Op: op, Peer: trace.NoPeer, ReqID: -1}
	hasRecv := false
	for _, q := range reqs {
		e.Reqs = append(e.Reqs, q.ID)
		if !q.isSend {
			hasRecv = true
		}
	}
	if hasRecv {
		for _, q := range reqs {
			e.ReqSrcs = append(e.ReqSrcs, int32(q.matched))
		}
	}
	return e
}

// Wait blocks until req completes.
func (r *Rank) Wait(req *Request) {
	start := r.nowNS
	r.complete(req)
	r.removePending(map[*Request]bool{req: true})
	r.emit(completionEvent(trace.OpWait, []*Request{req}), start)
}

// Waitall blocks until every pending request completes, in posted order.
func (r *Rank) Waitall() {
	start := r.nowNS
	reqs := append([]*Request(nil), r.pending...)
	for _, q := range reqs {
		r.complete(q)
	}
	r.pending = r.pending[:0]
	r.emit(completionEvent(trace.OpWaitall, reqs), start)
}

// Waitsome blocks until at least one pending request completes, then also
// reaps every other request that can complete without blocking. It returns
// the number completed (0 only when nothing was pending).
func (r *Rank) Waitsome() int {
	start := r.nowNS
	if len(r.pending) == 0 {
		r.emit(completionEvent(trace.OpWaitsome, nil), start)
		return 0
	}
	var doneReqs []*Request
	// Block on the first pending request, then sweep the rest.
	first := r.pending[0]
	r.complete(first)
	doneReqs = append(doneReqs, first)
	for _, q := range r.pending[1:] {
		if r.tryComplete(q) {
			doneReqs = append(doneReqs, q)
		}
	}
	doneSet := map[*Request]bool{}
	for _, q := range doneReqs {
		doneSet[q] = true
	}
	r.removePending(doneSet)
	r.emit(completionEvent(trace.OpWaitsome, doneReqs), start)
	return len(doneReqs)
}

// Testany attempts to complete at most one pending request without blocking.
// It returns 1 on completion, 0 otherwise.
func (r *Rank) Testany() int {
	start := r.nowNS
	for _, q := range r.pending {
		if r.tryComplete(q) {
			r.removePending(map[*Request]bool{q: true})
			r.emit(completionEvent(trace.OpTestany, []*Request{q}), start)
			return 1
		}
	}
	r.emit(completionEvent(trace.OpTestany, nil), start)
	return 0
}

// PendingCount returns the number of incomplete request handles, used by
// tests and by the interpreter to validate programs.
func (r *Rank) PendingCount() int { return len(r.pending) }

// Init emits the MPI_Init event.
func (r *Rank) Init() {
	start := r.nowNS
	r.emit(&trace.Event{Op: trace.OpInit, Peer: trace.NoPeer, ReqID: -1}, start)
}

// Finalize synchronizes all ranks (real MPI_Finalize is collective in
// effect), emits the final event, and notifies the sink.
func (r *Rank) Finalize() {
	if n := len(r.pending); n != 0 {
		panic(fmt.Sprintf("mpisim: rank %d finalized with %d incomplete requests", r.id, n))
	}
	start := r.nowNS
	r.collective(trace.OpFinalize, 0, 0)
	r.emit(&trace.Event{Op: trace.OpFinalize, Peer: trace.NoPeer, ReqID: -1}, start)
	r.sink.Finalize()
}
