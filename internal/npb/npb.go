// Package npb generates MPL re-implementations of the communication
// skeletons of the NAS Parallel Benchmarks (BT, CG, DT, EP, FT, LU, MG, SP)
// and the LESlie3d CFD application, the workloads of the paper's evaluation
// (Section VII). Trace compression observes only the communication pattern,
// so each skeleton reproduces the pattern class of its benchmark:
//
//	BT/SP — ADI solvers on a square process grid; face exchanges per
//	        dimension per iteration. SP additionally varies message sizes
//	        and tags across stages and iterations, the behavior that makes
//	        it the hardest case for exact-matching compressors (Fig 15h).
//	CG   — power-of-two butterfly sum-exchanges plus dot-product
//	        allreduces.
//	DT   — a shuffled feeder graph with wildcard receives; few, large
//	        messages.
//	EP   — almost no communication: final statistics reductions.
//	FT   — iterated all-to-all transposes.
//	LU   — SSOR wavefront pipelining: many small messages per plane, both
//	        sweep directions.
//	MG   — V-cycle multigrid: level-dependent halo exchanges where coarse
//	        levels involve only a shrinking subset of ranks (the "nested 3D
//	        torus" irregularity of Fig 17a).
//	LESlie3d — 3D stencil halo exchange with exactly two message sizes
//	        (43KB/83KB per the paper's Section VII-D) and strong locality.
//
// Sources are generated per process count: grid dimensions are computed here
// and embedded as literals, exactly as the benchmarks' compile-time
// parameterization does.
package npb

import (
	"fmt"
	"sort"
	"strings"
)

// Scale selects problem duration. Small keeps unit tests fast; Paper
// approximates the relative event volumes of the paper's CLASS D runs.
type Scale int

const (
	Small Scale = iota
	Paper
)

// Workload describes one benchmark skeleton.
type Workload struct {
	Name string
	// Procs are the process counts used in the paper's figures.
	Procs []int
	// Source generates the MPL program for n ranks.
	Source func(n int, s Scale) string
	// ValidProcs reports whether the skeleton supports n ranks.
	ValidProcs func(n int) bool
}

// All returns the workload registry in the paper's figure order.
func All() []*Workload {
	return []*Workload{BT(), CG(), DT(), EP(), FT(), LU(), MG(), SP(), Leslie3d()}
}

// Get returns a workload by (case-insensitive) name, or nil.
func Get(name string) *Workload {
	for _, w := range All() {
		if strings.EqualFold(w.Name, name) {
			return w
		}
	}
	return nil
}

// Names lists the registry names.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Name)
	}
	sort.Strings(out)
	return out
}

func iters(s Scale, small, paper int) int {
	if s == Paper {
		return paper
	}
	return small
}

// isqrt returns floor(sqrt(n)).
func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func isSquare(n int) bool { s := isqrt(n); return s*s == n }

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// grid2 factors n into the most-square px*py with px >= py.
func grid2(n int) (px, py int) {
	py = isqrt(n)
	for n%py != 0 {
		py--
	}
	return n / py, py
}

// grid3 factors n into a near-cubic px*py*pz.
func grid3(n int) (px, py, pz int) {
	pz = 1
	for d := 2; d*d*d <= n; d++ {
		if n%d == 0 {
			pz = d
		}
	}
	for n%pz != 0 {
		pz--
	}
	px, py = grid2(n / pz)
	return px, py, pz
}

// BT returns the block-tridiagonal ADI solver skeleton.
func BT() *Workload {
	return &Workload{
		Name:       "BT",
		Procs:      []int{64, 121, 256, 400},
		ValidProcs: isSquare,
		Source: func(n int, s Scale) string {
			px := isqrt(n)
			it := iters(s, 6, 60)
			// Face sizes: CLASS-D-ish cells shrink with the grid.
			face := 408 * 1024 / px
			return fmt.Sprintf(`
// NPB BT communication skeleton: %dx%d process grid.
func main() {
	var px = %d;
	var row = rank / px;
	var col = rank %% px;
	for var it = 0; it < %d; it = it + 1 {
		copyfaces(row, col, px, %d);
		solve(row, col, px, %d, 1);
		solve(row, col, px, %d, 2);
		solve(row, col, px, %d, 3);
		compute(600000);
	}
	allreduce(40);
}
func copyfaces(row, col, px, bytes) {
	// Exchange all four faces with non-blocking pairs.
	if col < px - 1 { isend(row * px + col + 1, bytes, 10); }
	if col > 0 { isend(row * px + col - 1, bytes, 11); }
	if row < px - 1 { isend((row + 1) * px + col, bytes, 12); }
	if row > 0 { isend((row - 1) * px + col, bytes, 13); }
	if col > 0 { irecv(row * px + col - 1, bytes, 10); }
	if col < px - 1 { irecv(row * px + col + 1, bytes, 11); }
	if row > 0 { irecv((row - 1) * px + col, bytes, 12); }
	if row < px - 1 { irecv((row + 1) * px + col, bytes, 13); }
	waitall();
}
func solve(row, col, px, bytes, dim) {
	// ADI line sweep: forward substitution down the grid dimension, then
	// back substitution up it.
	var tag = 20 + dim;
	if dim == 1 {
		if col > 0 { recv(row * px + col - 1, bytes, tag); }
		compute(120000);
		if col < px - 1 { send(row * px + col + 1, bytes, tag); }
		if col < px - 1 { recv(row * px + col + 1, bytes, tag + 10); }
		compute(120000);
		if col > 0 { send(row * px + col - 1, bytes, tag + 10); }
	} else {
		if row > 0 { recv((row - 1) * px + col, bytes, tag); }
		compute(120000);
		if row < px - 1 { send((row + 1) * px + col, bytes, tag); }
		if row < px - 1 { recv((row + 1) * px + col, bytes, tag + 10); }
		compute(120000);
		if row > 0 { send((row - 1) * px + col, bytes, tag + 10); }
	}
}
`, px, px, px, it, face, face/2, face/2, face/2)
		},
	}
}

// CG returns the conjugate-gradient skeleton.
func CG() *Workload {
	return &Workload{
		Name:       "CG",
		Procs:      []int{64, 128, 256, 512},
		ValidProcs: isPow2,
		Source: func(n int, s Scale) string {
			it := iters(s, 5, 75)
			bytes := 600 * 1024 / n * 8
			if bytes < 64 {
				bytes = 64
			}
			return fmt.Sprintf(`
// NPB CG communication skeleton: butterfly sum-exchange + dot products.
func main() {
	for var it = 0; it < %d; it = it + 1 {
		// Sparse matrix-vector product: hypercube transpose exchange.
		var l = 1;
		while l < size {
			var partner = rank + l;
			if (rank / l) %% 2 == 1 { partner = rank - l; }
			var r = irecv(partner, %d, 30);
			send(partner, %d, 30);
			wait(r);
			compute(90000);
			l = l * 2;
		}
		// Two dot products per iteration.
		allreduce(8);
		allreduce(8);
		compute(250000);
	}
	allreduce(8);
}
`, it, bytes, bytes)
		},
	}
}

// DT returns the data-traffic graph skeleton.
func DT() *Workload {
	return &Workload{
		Name:       "DT",
		Procs:      []int{48, 64, 128, 256},
		ValidProcs: func(n int) bool { return n >= 4 && n%2 == 0 && (n/2)%7 != 0 },
		Source: func(n int, s Scale) string {
			msg := 2 * 1024 * 1024
			if s == Small {
				msg = 64 * 1024
			}
			return fmt.Sprintf(`
// NPB DT communication skeleton: shuffled feeder graph, wildcard consumers.
func main() {
	var half = size / 2;
	if rank < half {
		// Source nodes: generate data, feed a shuffled consumer.
		compute(2000000);
		send(half + (rank * 7 + 3) %% half, %d, 40);
	} else {
		// Consumer nodes: the producer is not known statically.
		recv(ANY, %d, 40);
		compute(1500000);
	}
	reduce(0, 8);
}
`, msg, msg)
		},
	}
}

// EP returns the embarrassingly-parallel skeleton.
func EP() *Workload {
	return &Workload{
		Name:       "EP",
		Procs:      []int{64, 128, 256, 512},
		ValidProcs: func(n int) bool { return n >= 2 },
		Source: func(n int, s Scale) string {
			comp := iters(s, 2, 20)
			return fmt.Sprintf(`
// NPB EP communication skeleton: pure computation, final reductions.
func main() {
	for var b = 0; b < %d; b = b + 1 {
		compute(5000000);
	}
	// Gaussian pair counts and sums.
	allreduce(8);
	allreduce(16);
	allreduce(80);
}
`, comp)
		},
	}
}

// FT returns the 3D FFT skeleton.
func FT() *Workload {
	return &Workload{
		Name:       "FT",
		Procs:      []int{64, 128, 256, 512},
		ValidProcs: isPow2,
		Source: func(n int, s Scale) string {
			it := iters(s, 4, 25)
			bytes := 1 << 30 / (n * n) * 16
			if bytes < 256 {
				bytes = 256
			}
			return fmt.Sprintf(`
// NPB FT communication skeleton: iterated all-to-all transposes.
func main() {
	alltoall(%d);
	for var it = 0; it < %d; it = it + 1 {
		compute(1200000);
		alltoall(%d);
		allreduce(16);
	}
}
`, bytes, it, bytes)
		},
	}
}

// LU returns the SSOR wavefront skeleton.
func LU() *Workload {
	return &Workload{
		Name:       "LU",
		Procs:      []int{64, 128, 256, 512},
		ValidProcs: func(n int) bool { return n >= 4 },
		Source: func(n int, s Scale) string {
			px, py := grid2(n)
			planes := iters(s, 8, 48)
			it := iters(s, 4, 40)
			small := 10 * 1024 / px * 8
			if small < 40 {
				small = 40
			}
			return fmt.Sprintf(`
// NPB LU communication skeleton: %dx%d grid, pipelined wavefront sweeps.
func main() {
	var px = %d;
	var py = %d;
	var row = rank / px;
	var col = rank %% px;
	for var it = 0; it < %d; it = it + 1 {
		// Lower-triangular sweep: wavefront from (0,0).
		for var k = 0; k < %d; k = k + 1 {
			if row > 0 { recv((row - 1) * px + col, %d, 50); }
			if col > 0 { recv(row * px + col - 1, %d, 51); }
			compute(15000);
			if row < py - 1 { send((row + 1) * px + col, %d, 50); }
			if col < px - 1 { send(row * px + col + 1, %d, 51); }
		}
		// Upper-triangular sweep: wavefront from (py-1, px-1).
		for var k = 0; k < %d; k = k + 1 {
			if row < py - 1 { recv((row + 1) * px + col, %d, 52); }
			if col < px - 1 { recv(row * px + col + 1, %d, 53); }
			compute(15000);
			if row > 0 { send((row - 1) * px + col, %d, 52); }
			if col > 0 { send(row * px + col - 1, %d, 53); }
		}
		// Residual norm every iteration.
		allreduce(40);
	}
}
`, px, py, px, py, it, planes, small, small, small, small,
				planes, small, small, small, small)
		},
	}
}

// MG returns the V-cycle multigrid skeleton.
func MG() *Workload {
	return &Workload{
		Name:       "MG",
		Procs:      []int{64, 128, 256, 512},
		ValidProcs: isPow2,
		Source: func(n int, s Scale) string {
			levels := 0
			for 1<<levels < n {
				levels++
			}
			it := iters(s, 3, 25)
			base := 128 * 1024
			if s == Small {
				base = 8 * 1024
			}
			return fmt.Sprintf(`
// NPB MG communication skeleton: V-cycles over %d levels; coarse levels
// involve only every 2^l-th rank, producing the irregular nested pattern.
func main() {
	for var it = 0; it < %d; it = it + 1 {
		// Downward: restrict to coarser grids.
		for var l = 0; l < %d; l = l + 1 {
			var step = 1;
			for var x = 0; x < l; x = x + 1 { step = step * 2; }
			if rank %% step == 0 {
				halo(step, %d / (l + 1));
				// Dying ranks hand off to the survivor below them.
				if rank %% (step * 2) != 0 {
					send(rank - step, %d / (l + 1), 61);
				} else {
					if rank + step < size {
						recv(rank + step, %d / (l + 1), 61);
					}
				}
			}
			compute(40000);
		}
		// Upward: prolongate back to finer grids.
		for var u = 0; u < %d; u = u + 1 {
			var l = %d - 1 - u;
			var step = 1;
			for var x = 0; x < l; x = x + 1 { step = step * 2; }
			if rank %% step == 0 {
				if rank %% (step * 2) != 0 {
					recv(rank - step, %d / (l + 2), 62);
				} else {
					if rank + step < size {
						send(rank + step, %d / (l + 2), 62);
					}
				}
				halo(step, %d / (l + 1));
			}
			compute(40000);
		}
		// Convergence check.
		allreduce(8);
	}
}
func halo(step, bytes) {
	// Exchange with active neighbors at this level.
	if rank + step < size {
		isend(rank + step, bytes, 60);
	}
	if rank - step >= 0 {
		isend(rank - step, bytes, 60);
	}
	if rank - step >= 0 {
		irecv(rank - step, bytes, 60);
	}
	if rank + step < size {
		irecv(rank + step, bytes, 60);
	}
	waitall();
}
`, levels, it, levels, base, base, base, levels, levels, base, base, base)
		},
	}
}

// SP returns the scalar-pentadiagonal ADI skeleton.
func SP() *Workload {
	return &Workload{
		Name:       "SP",
		Procs:      []int{64, 121, 256, 400},
		ValidProcs: isSquare,
		Source: func(n int, s Scale) string {
			px := isqrt(n)
			it := iters(s, 6, 100)
			face := 300 * 1024 / px
			return fmt.Sprintf(`
// NPB SP communication skeleton: %dx%d grid. Cell counts are distributed
// with remainders, so message sizes and tags vary per process (paper
// Section VII-B: "the message sizes and the message tags of sending and
// receiving communications are varied for each process") — the non-uniform
// pattern that makes SP the hardest compression target (Fig 15h).
func main() {
	var px = %d;
	var row = rank / px;
	var col = rank %% px;
	for var it = 0; it < %d; it = it + 1 {
		faces(row, col, px);
		for var stage = 0; stage < 3; stage = stage + 1 {
			if stage %% 2 == 0 {
				// X-direction line solve: sizes/tags follow the owning
				// column's cell counts.
				if col > 0 { recv(row * px + col - 1, xsz(row, col - 1) / 3 + stage * 64, xtag(row, col - 1) + 20); }
				compute(80000);
				if col < px - 1 { send(row * px + col + 1, xsz(row, col) / 3 + stage * 64, xtag(row, col) + 20); }
			} else {
				if row > 0 { recv((row - 1) * px + col, ysz(row - 1, col) / 3 + stage * 64, xtag(row - 1, col) + 40); }
				compute(80000);
				if row < px - 1 { send((row + 1) * px + col, ysz(row, col) / 3 + stage * 64, xtag(row, col) + 40); }
			}
		}
		compute(300000);
	}
	allreduce(40);
}
// Per-process face sizes: the non-uniform decomposition leaves each column
// and row class with different cell counts.
func xsz(row, col) { return %d + col * 24 + (row %% 3) * 512; }
func ysz(row, col) { return %d + row * 24 + (col %% 3) * 512; }
// Per-process tags: keyed by the sending process's grid position.
func xtag(row, col) { return 70 + (col * 5 + row * 3) %% 11; }
func faces(row, col, px) {
	if col < px - 1 { isend(row * px + col + 1, xsz(row, col), xtag(row, col)); }
	if col > 0 { irecv(row * px + col - 1, xsz(row, col - 1), xtag(row, col - 1)); }
	if col > 0 { isend(row * px + col - 1, xsz(row, col), xtag(row, col) + 5); }
	if col < px - 1 { irecv(row * px + col + 1, xsz(row, col + 1), xtag(row, col + 1) + 5); }
	if row < px - 1 { isend((row + 1) * px + col, ysz(row, col), xtag(row, col) + 10); }
	if row > 0 { irecv((row - 1) * px + col, ysz(row - 1, col), xtag(row - 1, col) + 10); }
	if row > 0 { isend((row - 1) * px + col, ysz(row, col), xtag(row, col) + 15); }
	if row < px - 1 { irecv((row + 1) * px + col, ysz(row + 1, col), xtag(row + 1, col) + 15); }
	waitall();
}
`, px, px, px, it, face, face)
		},
	}
}

// Leslie3d returns the LESlie3d CFD skeleton.
func Leslie3d() *Workload {
	return &Workload{
		Name:       "LESlie3d",
		Procs:      []int{32, 64, 128, 256, 512},
		ValidProcs: func(n int) bool { return n >= 8 && n%2 == 0 },
		Source: func(n int, s Scale) string {
			px, py, pz := grid3(n)
			it := iters(s, 5, 60)
			// Exactly two halo sizes, as the paper observes (43KB and 83KB).
			small := 43 * 1024
			big := 83 * 1024
			return fmt.Sprintf(`
// LESlie3d communication skeleton: %dx%dx%d grid, 3D halo exchange with two
// message sizes and strong communication locality.
func main() {
	var px = %d;
	var py = %d;
	var x = rank %% px;
	var y = (rank / px) %% py;
	var z = rank / (px * py);
	var pz = %d;
	for var it = 0; it < %d; it = it + 1 {
		// X-direction: big faces.
		if x < px - 1 { isend(rank + 1, %d, 80); }
		if x > 0 { isend(rank - 1, %d, 80); }
		if x > 0 { irecv(rank - 1, %d, 80); }
		if x < px - 1 { irecv(rank + 1, %d, 80); }
		waitall();
		// Y-direction: small faces.
		if y < py - 1 { isend(rank + px, %d, 81); }
		if y > 0 { isend(rank - px, %d, 81); }
		if y > 0 { irecv(rank - px, %d, 81); }
		if y < py - 1 { irecv(rank + px, %d, 81); }
		waitall();
		// Z-direction: small faces.
		if z < pz - 1 { isend(rank + px * py, %d, 82); }
		if z > 0 { isend(rank - px * py, %d, 82); }
		if z > 0 { irecv(rank - px * py, %d, 82); }
		if z < pz - 1 { irecv(rank + px * py, %d, 82); }
		waitall();
		// Strong scaling: the fixed global grid leaves each rank 1/P of the
		// computation (the paper runs a fixed 193^3 problem at every P).
		compute(80000000 / size);
		// Time-step stability reduction.
		allreduce(8);
	}
}
`, px, py, pz, px, py, pz, it,
				big, big, big, big,
				small, small, small, small,
				small, small, small, small)
		},
	}
}
