package npb

import (
	"strings"
	"testing"

	"repro/internal/cst"
	"repro/internal/ctt"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/merge"
	"repro/internal/mpisim"
	"repro/internal/replay"
	"repro/internal/timestat"
	"repro/internal/trace"
)

// smallProcs picks a fast-but-valid rank count per workload for unit tests.
func smallProcs(w *Workload) int {
	for _, n := range []int{16, 12, 9, 8} {
		if w.ValidProcs(n) {
			return n
		}
	}
	return w.Procs[0]
}

func TestRegistry(t *testing.T) {
	if len(All()) != 9 {
		t.Fatalf("registry has %d workloads", len(All()))
	}
	if Get("mg") == nil || Get("LESLIE3D") == nil {
		t.Fatal("case-insensitive lookup broken")
	}
	if Get("nosuch") != nil {
		t.Fatal("unknown workload returned")
	}
	if len(Names()) != 9 {
		t.Fatal("Names incomplete")
	}
}

func TestValidProcsMatchPaperCounts(t *testing.T) {
	for _, w := range All() {
		for _, n := range w.Procs {
			if !w.ValidProcs(n) {
				t.Errorf("%s: paper proc count %d rejected", w.Name, n)
			}
		}
	}
	if BT().ValidProcs(63) || CG().ValidProcs(60) || SP().ValidProcs(65) {
		t.Error("invalid counts accepted")
	}
}

func TestGridHelpers(t *testing.T) {
	if isqrt(121) != 11 || isqrt(120) != 10 {
		t.Fatal("isqrt wrong")
	}
	px, py := grid2(128)
	if px*py != 128 || px < py {
		t.Fatalf("grid2(128) = %d x %d", px, py)
	}
	a, b, c := grid3(64)
	if a*b*c != 64 {
		t.Fatalf("grid3(64) = %d %d %d", a, b, c)
	}
}

// TestAllWorkloadsRunCompressAndReplay is the package's core guarantee:
// every skeleton parses, checks, builds a CST, executes deadlock-free under
// CYPRESS compression, merges, and replays losslessly.
func TestAllWorkloadsRunCompressAndReplay(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			n := smallProcs(w)
			src := w.Source(n, Small)
			prog, err := lang.Parse(src)
			if err != nil {
				t.Fatalf("parse: %v\n%s", err, src)
			}
			if _, err := lang.Check(prog); err != nil {
				t.Fatalf("check: %v\n%s", err, src)
			}
			irProg, err := ir.Lower(prog)
			if err != nil {
				t.Fatalf("lower: %v", err)
			}
			tree, err := cst.Build(irProg)
			if err != nil {
				t.Fatalf("cst: %v", err)
			}
			comps := make([]*ctt.Compressor, n)
			raws := make([]*trace.CollectorSink, n)
			sinks := make([]trace.Sink, n)
			for i := range sinks {
				comps[i] = ctt.NewCompressor(tree, i, timestat.ModeMeanStddev)
				raws[i] = &trace.CollectorSink{}
				sinks[i] = teeSink{raws[i], comps[i]}
			}
			if _, err := mpisim.Run(n, mpisim.DefaultParams(), sinks, func(r *mpisim.Rank) {
				interp.Execute(prog, r)
			}); err != nil {
				t.Fatalf("run: %v", err)
			}
			ctts := make([]*ctt.RankCTT, n)
			var events int64
			for i, c := range comps {
				ctts[i] = c.Finish()
				events += ctts[i].EventCount
			}
			if events < int64(n)*3 {
				t.Fatalf("suspiciously few events: %d", events)
			}
			m, err := merge.All(ctts, 0)
			if err != nil {
				t.Fatalf("merge: %v", err)
			}
			for rank := 0; rank < n; rank++ {
				seq, err := replay.Sequence(m.ForRank(rank), rank)
				if err != nil {
					t.Fatalf("replay rank %d: %v\n%s", rank, err, tree.Dump())
				}
				if w.Name == "DT" {
					// DT uses non-blocking-free wildcard receives via recv(ANY):
					// Equivalent handles blocking wildcards (raw already has the
					// resolved source), so full equivalence still applies.
					if err := replay.Equivalent(raws[rank].Events, seq); err != nil {
						t.Fatalf("rank %d: %v", rank, err)
					}
					continue
				}
				if err := replay.Equivalent(raws[rank].Events, seq); err != nil {
					t.Fatalf("rank %d: %v", rank, err)
				}
			}
		})
	}
}

type teeSink struct {
	raw  *trace.CollectorSink
	comp *ctt.Compressor
}

func (t teeSink) LoopEnter(s int32)           { t.comp.LoopEnter(s) }
func (t teeSink) LoopIter(s int32)            { t.comp.LoopIter(s) }
func (t teeSink) BranchEnter(s int32, a int8) { t.comp.BranchEnter(s, a) }
func (t teeSink) BranchSkip(s int32)          { t.comp.BranchSkip(s) }
func (t teeSink) CallEnter(s int32)           { t.comp.CallEnter(s) }
func (t teeSink) StructExit()                 { t.comp.StructExit() }
func (t teeSink) CommSite(s int32)            { t.comp.CommSite(s) }
func (t teeSink) Event(e *trace.Event)        { t.raw.Event(e); t.comp.Event(e) }
func (t teeSink) Finalize()                   { t.comp.Finalize() }

func TestSPVariesSizesAndTagsPerProcess(t *testing.T) {
	// Paper Section VII-B: SP's message sizes and tags vary per process.
	n := 9
	src := SP().Source(n, Small)
	if !strings.Contains(src, "func xsz") {
		t.Fatal("SP lost its per-process size functions")
	}
	sinks := make([]trace.Sink, n)
	cols := make([]*trace.CollectorSink, n)
	for i := range sinks {
		cols[i] = &trace.CollectorSink{}
		sinks[i] = cols[i]
	}
	if _, err := interp.RunProgram(src, n, mpisim.Params{}, sinks); err != nil {
		t.Fatal(err)
	}
	sizes := map[int]bool{}
	tags := map[int]bool{}
	for _, c := range cols {
		for _, e := range c.Events {
			if e.Op.IsSendLike() {
				sizes[e.Size] = true
				tags[e.Tag] = true
			}
		}
	}
	if len(sizes) < 4 || len(tags) < 4 {
		t.Fatalf("SP should vary sizes/tags across processes: %d sizes, %d tags", len(sizes), len(tags))
	}
}

func TestLeslieTwoMessageSizes(t *testing.T) {
	n := 16
	w := Leslie3d()
	src := w.Source(n, Small)
	sinks := make([]trace.Sink, n)
	cols := make([]*trace.CollectorSink, n)
	for i := range sinks {
		cols[i] = &trace.CollectorSink{}
		sinks[i] = cols[i]
	}
	if _, err := interp.RunProgram(src, n, mpisim.Params{}, sinks); err != nil {
		t.Fatal(err)
	}
	sizes := map[int]bool{}
	for _, c := range cols {
		for _, e := range c.Events {
			if e.Op.IsPointToPoint() {
				sizes[e.Size] = true
			}
		}
	}
	if len(sizes) != 2 || !sizes[43*1024] || !sizes[83*1024] {
		t.Fatalf("message sizes = %v, want {43KB, 83KB}", sizes)
	}
}

func TestEPNearlySilent(t *testing.T) {
	n := 8
	src := EP().Source(n, Small)
	sinks := make([]trace.Sink, n)
	cols := make([]*trace.CollectorSink, n)
	for i := range sinks {
		cols[i] = &trace.CollectorSink{}
		sinks[i] = cols[i]
	}
	if _, err := interp.RunProgram(src, n, mpisim.Params{}, sinks); err != nil {
		t.Fatal(err)
	}
	// Init + 3 allreduce + finalize only.
	if got := len(cols[0].Events); got != 5 {
		t.Fatalf("EP events = %d, want 5", got)
	}
}

func TestDTShuffleIsBijective(t *testing.T) {
	for _, n := range []int{48, 64, 128, 256} {
		half := n / 2
		seen := map[int]bool{}
		for i := 0; i < half; i++ {
			tgt := (i*7 + 3) % half
			if seen[tgt] {
				t.Fatalf("n=%d: shuffle collides at %d", n, tgt)
			}
			seen[tgt] = true
		}
	}
}

func TestMGIrregularAcrossRanks(t *testing.T) {
	// MG's coarse levels split ranks into multiple merge groups: the merged
	// tree must have more rank-groups than a regular workload like FT.
	countGroups := func(w *Workload, n int) int {
		src := w.Source(n, Small)
		prog, _ := lang.Parse(src)
		if _, err := lang.Check(prog); err != nil {
			t.Fatal(err)
		}
		irProg, _ := ir.Lower(prog)
		tree, err := cst.Build(irProg)
		if err != nil {
			t.Fatal(err)
		}
		comps := make([]*ctt.Compressor, n)
		sinks := make([]trace.Sink, n)
		for i := range sinks {
			comps[i] = ctt.NewCompressor(tree, i, timestat.ModeMeanStddev)
			sinks[i] = comps[i]
		}
		if _, err := mpisim.Run(n, mpisim.DefaultParams(), sinks, func(r *mpisim.Rank) {
			interp.Execute(prog, r)
		}); err != nil {
			t.Fatal(err)
		}
		ctts := make([]*ctt.RankCTT, n)
		for i, c := range comps {
			ctts[i] = c.Finish()
		}
		m, err := merge.All(ctts, 0)
		if err != nil {
			t.Fatal(err)
		}
		return m.GroupCount()
	}
	mg := countGroups(MG(), 16)
	ft := countGroups(FT(), 16)
	if mg <= ft {
		t.Fatalf("MG groups %d should exceed FT groups %d", mg, ft)
	}
}
