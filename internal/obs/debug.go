package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// published guards against double-Publish of the same expvar name (expvar
// panics on duplicates, and tests may wire several sinks in one process).
var (
	publishMu sync.Mutex
	published = map[string]*expvar.Func{}
	current   = map[string]*Sink{}
)

// Publish exposes the sink's live Report as an expvar under name. Publishing
// the same name again rebinds it to the new sink (the expvar layer keeps one
// Func; the Func reads whichever sink is current).
func (s *Sink) Publish(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	current[name] = s
	if published[name] != nil {
		return
	}
	f := expvar.Func(func() any {
		publishMu.Lock()
		sink := current[name]
		publishMu.Unlock()
		return sink.Report()
	})
	published[name] = &f
	expvar.Publish(name, f)
}

// DebugServer is a live pprof/expvar endpoint for the long-running CLIs.
type DebugServer struct {
	srv  *http.Server
	Addr string // concrete listen address (resolves ":0")
}

// ServeDebug starts an HTTP server on addr exposing:
//
//	/debug/pprof/...  the standard net/http/pprof profile endpoints
//	/debug/vars       expvar (including the published "cypress" report)
//	/debug/obs        the sink's Report as standalone indented JSON
//
// The server runs on its own goroutine until Close. The sink may be nil;
// pprof endpoints still work (the process can always be profiled), /debug/obs
// then serves an empty report.
func ServeDebug(addr string, s *Sink) (*DebugServer, error) {
	s.Publish("cypress")
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = s.Report().WriteJSON(w)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ds := &DebugServer{srv: &http.Server{Handler: mux}, Addr: ln.Addr().String()}
	go func() { _ = ds.srv.Serve(ln) }()
	return ds, nil
}

// Close shuts the debug server down.
func (d *DebugServer) Close() error { return d.srv.Close() }
