package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	ftrace "repro/internal/obs/trace"
)

// published guards against double-Publish of the same expvar name (expvar
// panics on duplicates, and tests may wire several sinks in one process).
var (
	publishMu sync.Mutex
	published = map[string]*expvar.Func{}
	current   = map[string]*Sink{}
)

// Publish exposes the sink's live Report as an expvar under name. Publishing
// the same name again rebinds it to the new sink (the expvar layer keeps one
// Func; the Func reads whichever sink is current).
func (s *Sink) Publish(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	current[name] = s
	if published[name] != nil {
		return
	}
	f := expvar.Func(func() any {
		publishMu.Lock()
		sink := current[name]
		publishMu.Unlock()
		return sink.Report()
	})
	published[name] = &f
	expvar.Publish(name, f)
}

// shutdownTimeout bounds how long Close waits for in-flight handlers before
// force-closing their connections. Live trace captures watch the quit channel,
// so they abort well inside this window.
const shutdownTimeout = 5 * time.Second

// DebugServer is a live pprof/expvar endpoint for the long-running CLIs.
type DebugServer struct {
	srv  *http.Server
	ln   net.Listener
	Addr string // concrete listen address (resolves ":0")

	quit      chan struct{} // closed by Close; long-running handlers must watch it
	closeOnce sync.Once
	closeErr  error
}

// ServeDebug starts an HTTP server on addr exposing:
//
//	/debug/pprof/...  the standard net/http/pprof profile endpoints
//	/debug/vars       expvar (including the published "cypress" report)
//	/debug/obs        the sink's Report as standalone indented JSON
//
// The server runs on its own goroutine until Close. The sink may be nil;
// pprof endpoints still work (the process can always be profiled), /debug/obs
// then serves an empty report.
func ServeDebug(addr string, s *Sink) (*DebugServer, error) {
	return ServeDebugTrace(addr, s, nil)
}

// ServeDebugTrace is ServeDebug plus a live flight-recorder capture endpoint:
//
//	/debug/cypress/trace?sec=N
//
// marks the recorder's current time, waits N seconds (default 1, capped at
// 60), and serves the events recorded since the mark as Chrome trace-event
// JSON — a window into the running pipeline, loadable in Perfetto. With a nil
// recorder the endpoint answers 404. The wait aborts early when the server is
// closed, so a pending capture never stalls Close.
func ServeDebugTrace(addr string, s *Sink, rec *ftrace.Recorder) (*DebugServer, error) {
	s.Publish("cypress")
	quit := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = s.Report().WriteJSON(w)
	})
	mux.HandleFunc("/debug/cypress/trace", func(w http.ResponseWriter, r *http.Request) {
		if !rec.Enabled() {
			http.Error(w, "no flight recorder attached", http.StatusNotFound)
			return
		}
		sec := 1
		if v := r.URL.Query().Get("sec"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, fmt.Sprintf("bad sec=%q", v), http.StatusBadRequest)
				return
			}
			sec = n
		}
		if sec > 60 {
			sec = 60
		}
		since := rec.Now()
		if sec > 0 {
			t := time.NewTimer(time.Duration(sec) * time.Second)
			defer t.Stop()
			select {
			case <-t.C:
			case <-quit:
				http.Error(w, "debug server closing", http.StatusServiceUnavailable)
				return
			case <-r.Context().Done():
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = rec.WriteChromeJSONSince(w, since)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ds := &DebugServer{
		srv:  &http.Server{Handler: mux},
		ln:   ln,
		Addr: ln.Addr().String(),
		quit: quit,
	}
	go func() { _ = ds.srv.Serve(ln) }()
	return ds, nil
}

// Close shuts the debug server down gracefully: it stops accepting new
// connections, signals long-running handlers (live trace captures) to abort,
// and waits up to shutdownTimeout for in-flight requests to drain before
// force-closing whatever remains. Safe to call more than once.
func (d *DebugServer) Close() error {
	d.closeOnce.Do(func() {
		close(d.quit)
		// Close the listener directly: Shutdown only closes listeners the
		// serve goroutine has already registered, so shutting down right
		// after ServeDebug returns could otherwise leave the port bound.
		_ = d.ln.Close()
		ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		err := d.srv.Shutdown(ctx)
		if err != nil {
			// Deadline hit with handlers still running: sever them.
			if cerr := d.srv.Close(); err == context.DeadlineExceeded && cerr != nil {
				err = cerr
			}
		}
		d.closeErr = err
	})
	return d.closeErr
}
