package obs

import (
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	ftrace "repro/internal/obs/trace"
)

// TestDebugServerCloseReleasesPort checks Close actually tears the listener
// down: the same concrete address must be immediately re-bindable, and a
// second Close must be a safe no-op.
func TestDebugServerCloseReleasesPort(t *testing.T) {
	ds, err := ServeDebug("127.0.0.1:0", New())
	if err != nil {
		t.Fatal(err)
	}
	addr := ds.Addr
	if err := ds.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("address %s not released after Close: %v", addr, err)
	}
	ln.Close()
}

// TestDebugServerCloseNoGoroutineLeak asserts the serve goroutine (and any
// handler goroutines) are gone after Close.
func TestDebugServerCloseNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ds, err := ServeDebug("127.0.0.1:0", New())
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get(fmt.Sprintf("http://%s/debug/obs", ds.Addr))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if err := ds.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	// Goroutine counts settle asynchronously; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+1 || time.Now().After(deadline) {
			if n > before+1 {
				t.Fatalf("goroutines leaked across Close: %d before, %d after", before, n)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDebugTraceEndpoint checks the live capture endpoint end to end: an
// instant window (sec=0) serves valid Chrome trace JSON of the events
// recorded since the mark, bad parameters answer 400, and without a recorder
// the endpoint answers 404.
func TestDebugTraceEndpoint(t *testing.T) {
	rec := ftrace.New(0)
	rec.Instant(ftrace.CatSim, ftrace.NameTurn, 0, 1, 2)
	ds, err := ServeDebugTrace("127.0.0.1:0", New(), rec)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/cypress/trace?sec=0", ds.Addr))
	if err != nil {
		t.Fatal(err)
	}
	c, perr := ftrace.ReadChromeJSON(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint: status %d", resp.StatusCode)
	}
	if perr != nil {
		t.Fatalf("trace endpoint served unparseable JSON: %v", perr)
	}
	if err := c.Validate(false); err != nil {
		t.Fatalf("trace endpoint capture invalid: %v", err)
	}

	resp, err = http.Get(fmt.Sprintf("http://%s/debug/cypress/trace?sec=banana", ds.Addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad sec: status %d, want 400", resp.StatusCode)
	}

	noRec, err := ServeDebug("127.0.0.1:0", New())
	if err != nil {
		t.Fatal(err)
	}
	defer noRec.Close()
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/cypress/trace", noRec.Addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("recorder-less trace endpoint: status %d, want 404", resp.StatusCode)
	}
}

// TestDebugServerCloseAbortsPendingCapture starts a long capture window and
// closes the server underneath it: the handler must abort promptly with 503
// instead of pinning Close for the full window.
func TestDebugServerCloseAbortsPendingCapture(t *testing.T) {
	rec := ftrace.New(0)
	ds, err := ServeDebugTrace("127.0.0.1:0", New(), rec)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		status int
		body   string
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("http://%s/debug/cypress/trace?sec=60", ds.Addr))
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 1024)
		for {
			n, rerr := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		done <- result{status: resp.StatusCode, body: sb.String()}
	}()

	time.Sleep(100 * time.Millisecond) // let the capture enter its wait
	start := time.Now()
	if err := ds.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > shutdownTimeout {
		t.Fatalf("Close took %v; pending capture pinned it past the drain deadline", elapsed)
	}
	select {
	case r := <-done:
		if r.err == nil && r.status != http.StatusServiceUnavailable {
			t.Fatalf("pending capture finished with status %d (%q), want 503", r.status, r.body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending capture request never completed after Close")
	}
}
