// Package obs is the pipeline's zero-overhead-when-disabled metrics core.
//
// Every instrumented stage holds a *Sink. A nil sink is the disabled state:
// all methods are defined on the pointer receiver and begin with a nil check,
// so the hot paths pay one predictable branch and zero allocations when
// observation is off — no interface dispatch (the sink is a concrete type),
// no atomic loads, no time reads. With a sink attached, counters are single
// atomic adds, histograms are one atomic add into a power-of-two bucket, and
// stage spans are a time.Now pair folded into two atomics; none of it
// allocates, so the PR1–PR3 allocs/op budgets hold with the sink on as well.
//
// The Sink is safe for concurrent use. The data model is deliberately flat:
// a fixed enum of counters, a fixed enum of bounded power-of-two histograms,
// and a fixed enum of stage timers. Report() snapshots everything into a
// JSON/text-serializable Report, and Publish exposes the same snapshot as an
// expvar for the -debug.addr endpoints.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter enumerates the pipeline's monotonic counters. The groups mirror the
// pipeline stages: compressor event intake, stride compression, inter-process
// merge reduction, encode/decode (including buffer-pool traffic), and
// streaming replay/simulation.
type Counter uint8

const (
	// Compressor event intake (internal/ctt).
	CompEvents           Counter = iota // MPI events seen by Compressor.Event
	CompMergeHits                       // events folded into an existing record
	CompNewRecords                      // events that opened a new record
	CompPeerPatternFolds                // events folded by extending a peer cycle
	CompCycleFolds                      // events consumed by an open record cycle
	CompWildcardCached                  // wildcard receives parked until resolution
	CompWildcardResolved                // cached wildcard receives flushed at completion
	CompReqPeak                         // peak live non-blocking requests (gauge)
	CompWildPeak                        // peak cached wildcard events (gauge)

	// Stride compression (aggregated at Compressor.Finish).
	StrideValues         // values stored across loop/taken vectors
	StrideRuns           // stride runs holding them
	StrideBytesSaved     // raw bytes minus encoded bytes (when positive)
	StrideIncompressible // vectors whose run encoding beat raw by nothing

	// Inter-process merge reduction (internal/merge).
	MergePairs           // Pair invocations
	MergeTreeFastHits    // whole-tree span fast-path pairs
	MergeFPRelHits       // per-entry relative-fingerprint fast-path unifications
	MergeFPAbsHits       // per-entry absolute-fingerprint fast-path unifications
	MergeExhaustiveWalks // entry comparisons that fell back to the full walk
	MergeEntriesUnmerged // right-hand entries appended unmerged (new rank group)
	MergePoisonings      // abs-merge RelUnsafe poisonings
	MergeScratchReuses   // recycled right-leaf scratch trees served
	MergeScratchRetires  // scratch trees retired because an entry escaped

	// Encode/decode (internal/merge serialize + internal/encpool).
	EncTraces       // Encode calls
	EncBytesRaw     // total raw encoded bytes
	EncBytesCST     // of which: embedded CST section
	EncBytesRecords // of which: entry/record section
	EncGzipTraces   // EncodeGzip calls
	EncBytesGzip    // gzip-compressed output bytes
	DecTraces       // Decode calls
	DecEntries      // entries decoded
	DecRecords      // comm records decoded
	PoolGzipGets    // encpool gzip-writer checkouts
	PoolGzipNews    // of which: constructed fresh (pool miss)
	PoolBufioGets   // bufio-writer checkouts
	PoolBufioNews   // pool misses
	PoolReaderGets  // bufio-reader checkouts
	PoolReaderNews  // pool misses
	PoolBufferGets  // staging-buffer checkouts
	PoolBufferNews  // pool misses
	PoolFlateGets   // flate-writer checkouts (blocked frame compression)
	PoolFlateNews   // pool misses
	PoolInflateGets // flate-reader checkouts (blocked frame decompression)
	PoolInflateNews // pool misses

	// Block-parallel container I/O (internal/blockio).
	EncBlockedTraces // EncodeBlocked calls
	EncBytesBlocked  // CYPB container output bytes
	IOFramesEnc      // frames compressed into CYPB containers
	IOFramesDec      // frames inflated out of CYPB containers

	// Streaming replay and simulation (internal/merge.Streamer,
	// internal/replay, internal/simmpi).
	ReplayRankMemoHits   // ranks answered from the rank→class memo
	ReplayClassReuses    // resolved ranks that joined an existing class
	ReplaySkeletonBuilds // replay skeletons built (one tree walk each)
	ReplayEventsEmitted  // events synthesized by replay paths
	SimEventsProcessed   // events consumed by the LogGP engine
	SimBlockedCopies     // blocked events copied into rank-local buffers
	SimWindows           // lookahead windows (sequential sweeps count too)
	SimBarrierStalls     // rank visits that reached the window barrier with no progress
	SimMatchDepthPeak    // peak per-key match-table depth (gauge)

	// Content-addressed corpus (internal/corpus).
	CorpusIngests      // traces offered to Store.Ingest
	CorpusDuplicates   // ingests answered by an existing content hash
	CorpusDeltaRuns    // runs stored as payload deltas against a class rep
	CorpusFullRuns     // runs stored as full standalone encodings
	CorpusClasses      // structural classes created
	CorpusLogicalBytes // standalone-encoding bytes represented by the corpus
	CorpusStoredBytes  // run-record body bytes actually written
	CorpusGets         // Store.Get / GetBytes calls
	CorpusCacheHits    // gets served by the decoded-trace cache
	CorpusCacheMisses  // gets that had to reconstruct and decode
	CorpusCacheEvicts  // decoded traces evicted from the cache

	// Selective decode with projection pushdown (merge.DecodeSelect).
	SelDecodes           // selective decodes served by the projection walk
	SelFallbacks         // DecodeSelect calls that fell back to a full decode
	SelEntriesEager      // entries whose payload decoded eagerly (selection hit)
	SelEntriesSkipped    // entries left as lazy payload offsets
	SelBytesMaterialized // payload bytes decoded eagerly
	SelBytesSkipped      // payload bytes skipped at decode time
	SelLazyFills         // skipped payload sections filled on first touch
	SelLazyFillBytes     // payload bytes filled lazily

	NumCounters // sentinel; must be last
)

var counterNames = [NumCounters]string{
	CompEvents:           "comp_events",
	CompMergeHits:        "comp_merge_hits",
	CompNewRecords:       "comp_new_records",
	CompPeerPatternFolds: "comp_peer_pattern_folds",
	CompCycleFolds:       "comp_cycle_folds",
	CompWildcardCached:   "comp_wildcard_cached",
	CompWildcardResolved: "comp_wildcard_resolved",
	CompReqPeak:          "comp_req_table_peak",
	CompWildPeak:         "comp_wildcard_cache_peak",
	StrideValues:         "stride_values",
	StrideRuns:           "stride_runs",
	StrideBytesSaved:     "stride_bytes_saved",
	StrideIncompressible: "stride_incompressible_vectors",
	MergePairs:           "merge_pairs",
	MergeTreeFastHits:    "merge_tree_fast_hits",
	MergeFPRelHits:       "merge_fp_rel_hits",
	MergeFPAbsHits:       "merge_fp_abs_hits",
	MergeExhaustiveWalks: "merge_exhaustive_walks",
	MergeEntriesUnmerged: "merge_entries_unmerged",
	MergePoisonings:      "merge_abs_poisonings",
	MergeScratchReuses:   "merge_scratch_reuses",
	MergeScratchRetires:  "merge_scratch_retires",
	EncTraces:            "enc_traces",
	EncBytesRaw:          "enc_bytes_raw",
	EncBytesCST:          "enc_bytes_cst",
	EncBytesRecords:      "enc_bytes_records",
	EncGzipTraces:        "enc_gzip_traces",
	EncBytesGzip:         "enc_bytes_gzip",
	DecTraces:            "dec_traces",
	DecEntries:           "dec_entries",
	DecRecords:           "dec_records",
	PoolGzipGets:         "pool_gzip_gets",
	PoolGzipNews:         "pool_gzip_news",
	PoolBufioGets:        "pool_bufio_gets",
	PoolBufioNews:        "pool_bufio_news",
	PoolReaderGets:       "pool_reader_gets",
	PoolReaderNews:       "pool_reader_news",
	PoolBufferGets:       "pool_buffer_gets",
	PoolBufferNews:       "pool_buffer_news",
	PoolFlateGets:        "pool_flate_gets",
	PoolFlateNews:        "pool_flate_news",
	PoolInflateGets:      "pool_inflate_gets",
	PoolInflateNews:      "pool_inflate_news",
	EncBlockedTraces:     "enc_blocked_traces",
	EncBytesBlocked:      "enc_bytes_blocked",
	IOFramesEnc:          "io_frames_encoded",
	IOFramesDec:          "io_frames_decoded",
	ReplayRankMemoHits:   "replay_rank_memo_hits",
	ReplayClassReuses:    "replay_class_reuses",
	ReplaySkeletonBuilds: "replay_skeleton_builds",
	ReplayEventsEmitted:  "replay_events_emitted",
	SimEventsProcessed:   "sim_events_processed",
	SimBlockedCopies:     "sim_blocked_copies",
	SimWindows:           "sim_windows",
	SimBarrierStalls:     "sim_barrier_stalls",
	SimMatchDepthPeak:    "sim_match_table_peak",
	CorpusIngests:        "corpus_ingests",
	CorpusDuplicates:     "corpus_duplicates",
	CorpusDeltaRuns:      "corpus_delta_runs",
	CorpusFullRuns:       "corpus_full_runs",
	CorpusClasses:        "corpus_classes",
	CorpusLogicalBytes:   "corpus_logical_bytes",
	CorpusStoredBytes:    "corpus_stored_bytes",
	CorpusGets:           "corpus_gets",
	CorpusCacheHits:      "corpus_cache_hits",
	CorpusCacheMisses:    "corpus_cache_misses",
	CorpusCacheEvicts:    "corpus_cache_evicts",
	SelDecodes:           "sel_decodes",
	SelFallbacks:         "sel_fallbacks",
	SelEntriesEager:      "sel_entries_eager",
	SelEntriesSkipped:    "sel_entries_skipped",
	SelBytesMaterialized: "sel_bytes_materialized",
	SelBytesSkipped:      "sel_bytes_skipped",
	SelLazyFills:         "sel_lazy_fills",
	SelLazyFillBytes:     "sel_lazy_fill_bytes",
}

// String returns the counter's stable snake_case name (the JSON/expvar key).
func (c Counter) String() string {
	if c < NumCounters {
		return counterNames[c]
	}
	return "unknown_counter"
}

// Hist enumerates the bounded power-of-two histograms.
type Hist uint8

const (
	HistReqOccupancy    Hist = iota // live requests at each non-blocking post
	HistWildcardDepth               // cached wildcard events at each cache insert
	HistSimQueueDepth               // in-flight message queue depth at each send
	HistSimWindowEvents             // events processed per lookahead window
	HistSimWindowNS                 // wall time per lookahead window
	HistIOFrameBytes                // compressed bytes per CYPB frame
	HistIOCompressNS                // wall time deflating one frame
	HistIOInflateNS                 // wall time inflating one frame
	// Per-depth merge pair wall times: L1 merges two leaves, L2 merges two
	// 2-rank trees, and so on; L8 absorbs every deeper level.
	HistMergePairL1
	HistMergePairL2
	HistMergePairL3
	HistMergePairL4
	HistMergePairL5
	HistMergePairL6
	HistMergePairL7
	HistMergePairL8
	// Corpus ingest/serve distributions.
	HistCorpusDeltaPermille // stored body bytes per mille of the standalone encoding
	HistCorpusGetNS         // wall time per Store.Get (cache hits and misses)

	NumHists // sentinel; must be last
)

var histNames = [NumHists]string{
	HistReqOccupancy:        "req_table_occupancy",
	HistWildcardDepth:       "wildcard_cache_depth",
	HistSimQueueDepth:       "sim_queue_depth",
	HistSimWindowEvents:     "sim_window_events",
	HistSimWindowNS:         "sim_window_ns",
	HistIOFrameBytes:        "io_frame_bytes",
	HistIOCompressNS:        "io_compress_ns",
	HistIOInflateNS:         "io_inflate_ns",
	HistMergePairL1:         "merge_pair_ns_l1",
	HistMergePairL2:         "merge_pair_ns_l2",
	HistMergePairL3:         "merge_pair_ns_l3",
	HistMergePairL4:         "merge_pair_ns_l4",
	HistMergePairL5:         "merge_pair_ns_l5",
	HistMergePairL6:         "merge_pair_ns_l6",
	HistMergePairL7:         "merge_pair_ns_l7",
	HistMergePairL8:         "merge_pair_ns_l8",
	HistCorpusDeltaPermille: "corpus_delta_permille",
	HistCorpusGetNS:         "corpus_get_ns",
}

// String returns the histogram's stable snake_case name.
func (h Hist) String() string {
	if h < NumHists {
		return histNames[h]
	}
	return "unknown_hist"
}

// MergePairHist maps a reduction level (1 = pair of two leaf trees) to its
// per-depth timing histogram; levels beyond 8 fold into the last bucket.
func MergePairHist(level int) Hist {
	if level < 1 {
		level = 1
	}
	if level > 8 {
		level = 8
	}
	return HistMergePairL1 + Hist(level-1)
}

// Stage enumerates the coarse pipeline stages with span timers.
type Stage uint8

const (
	StageCompress Stage = iota // traced run (event intake)
	StageFinish                // per-rank Compressor.Finish
	StageMerge                 // inter-process reduction (merge.All)
	StageEncode                // trace serialization
	StageDecode                // trace deserialization
	StageSkeleton              // replay skeleton construction
	StageSimulate              // LogGP simulation
	NumStages                  // sentinel; must be last
)

var stageNames = [NumStages]string{
	StageCompress: "compress",
	StageFinish:   "finish",
	StageMerge:    "merge",
	StageEncode:   "encode",
	StageDecode:   "decode",
	StageSkeleton: "skeleton",
	StageSimulate: "simulate",
}

// String returns the stage's stable name.
func (st Stage) String() string {
	if st < NumStages {
		return stageNames[st]
	}
	return "unknown_stage"
}

// HistBuckets bounds every histogram: bucket 0 holds values <= 0, bucket i
// holds values v with bits.Len64(v) == i (i.e. 2^(i-1) <= v < 2^i), and the
// final bucket absorbs everything larger (~2^30 and up).
const HistBuckets = 31

// Histogram is a bounded power-of-two histogram. The zero value is ready for
// use; all methods are safe for concurrent use.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	sum     atomic.Int64
}

// bucketOf maps a value to its power-of-two bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// BucketUpper returns the inclusive upper bound of bucket i.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= HistBuckets-1 {
		return int64(1)<<62 - 1 // effectively unbounded
	}
	return int64(1)<<uint(i) - 1
}

// observe records one value.
func (h *Histogram) observe(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
}

// stageRec is one stage timer's accumulators.
type stageRec struct {
	count   atomic.Int64
	totalNS atomic.Int64
}

// Sink collects pipeline metrics. The zero value is ready for use; a nil
// *Sink is the disabled state and every method on it is a cheap no-op.
type Sink struct {
	counters [NumCounters]atomic.Int64
	hists    [NumHists]Histogram
	stages   [NumStages]stageRec
}

// New returns an empty enabled sink.
func New() *Sink { return &Sink{} }

// Enabled reports whether the sink collects anything (i.e. is non-nil).
func (s *Sink) Enabled() bool { return s != nil }

// Inc adds 1 to a counter.
func (s *Sink) Inc(c Counter) {
	if s == nil {
		return
	}
	s.counters[c].Add(1)
}

// Add adds n to a counter.
func (s *Sink) Add(c Counter, n int64) {
	if s == nil || n == 0 {
		return
	}
	s.counters[c].Add(n)
}

// SetMax raises a gauge-style counter to v if v exceeds its current value.
func (s *Sink) SetMax(c Counter, v int64) {
	if s == nil {
		return
	}
	cur := s.counters[c].Load()
	for v > cur && !s.counters[c].CompareAndSwap(cur, v) {
		cur = s.counters[c].Load()
	}
}

// Observe records v into a histogram.
func (s *Sink) Observe(h Hist, v int64) {
	if s == nil {
		return
	}
	s.hists[h].observe(v)
}

// Value returns a counter's current value (0 on a nil sink).
func (s *Sink) Value(c Counter) int64 {
	if s == nil {
		return 0
	}
	return s.counters[c].Load()
}

// HistCount returns the number of observations a histogram holds.
func (s *Sink) HistCount(h Hist) int64 {
	if s == nil {
		return 0
	}
	var n int64
	for i := range s.hists[h].buckets {
		n += s.hists[h].buckets[i].Load()
	}
	return n
}

// Span is an in-flight stage timer token. The zero value (from a nil sink)
// ends as a no-op.
type Span struct {
	s  *Sink
	st Stage
	t0 time.Time
}

// Start opens a span timer for a stage. End it with End; tokens are values
// and never allocate.
func (s *Sink) Start(st Stage) Span {
	if s == nil {
		return Span{}
	}
	return Span{s: s, st: st, t0: time.Now()}
}

// End closes the span, folding its wall time into the stage's accumulators.
func (sp Span) End() {
	if sp.s == nil {
		return
	}
	r := &sp.s.stages[sp.st]
	r.count.Add(1)
	r.totalNS.Add(time.Since(sp.t0).Nanoseconds())
}

// ObserveSince records the nanoseconds elapsed since t0 into a histogram
// (used by the per-depth merge timings, whose depth is only known at the
// observation site).
func (s *Sink) ObserveSince(h Hist, t0 time.Time) {
	if s == nil {
		return
	}
	s.hists[h].observe(time.Since(t0).Nanoseconds())
}

// LocalHist is a single-goroutine histogram for hot loops that cannot afford
// an atomic per observation: Observe is two plain adds into local memory, and
// FlushHist folds the whole thing into a shared sink histogram with one
// atomic add per non-empty bucket. The zero value is ready for use.
type LocalHist struct {
	buckets [HistBuckets]int64
	sum     int64
}

// Observe records one value locally (not safe for concurrent use).
func (l *LocalHist) Observe(v int64) {
	l.buckets[bucketOf(v)]++
	l.sum += v
}

// FlushHist merges l into histogram h and zeroes l. On a nil sink the local
// tallies are discarded.
func (s *Sink) FlushHist(h Hist, l *LocalHist) {
	if s == nil {
		*l = LocalHist{}
		return
	}
	d := &s.hists[h]
	for i, n := range l.buckets {
		if n != 0 {
			d.buckets[i].Add(n)
		}
	}
	if l.sum != 0 {
		d.sum.Add(l.sum)
	}
	*l = LocalHist{}
}

// Reset zeroes every counter, histogram, and stage timer.
func (s *Sink) Reset() {
	if s == nil {
		return
	}
	for i := range s.counters {
		s.counters[i].Store(0)
	}
	for i := range s.hists {
		h := &s.hists[i]
		for j := range h.buckets {
			h.buckets[j].Store(0)
		}
		h.sum.Store(0)
	}
	for i := range s.stages {
		s.stages[i].count.Store(0)
		s.stages[i].totalNS.Store(0)
	}
}
