package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSinkIsSafeAndFree pins the disabled state: every method on a nil
// sink must be a no-op, and the hot-path methods must not allocate.
func TestNilSinkIsSafeAndFree(t *testing.T) {
	var s *Sink
	allocs := testing.AllocsPerRun(200, func() {
		s.Inc(CompEvents)
		s.Add(MergePairs, 7)
		s.SetMax(CompReqPeak, 42)
		s.Observe(HistReqOccupancy, 3)
		sp := s.Start(StageMerge)
		sp.End()
		s.ObserveSince(HistMergePairL1, time.Time{})
	})
	if allocs != 0 {
		t.Errorf("nil sink allocates %.1f allocs/op, want 0", allocs)
	}
	if s.Enabled() {
		t.Error("nil sink reports Enabled")
	}
	if got := s.Value(CompEvents); got != 0 {
		t.Errorf("nil sink Value = %d", got)
	}
	r := s.Report()
	if r == nil || len(r.Counters) != 0 {
		t.Errorf("nil sink report not empty: %+v", r)
	}
}

// TestEnabledSinkHotPathAllocs pins that the enabled sink's per-event
// operations are allocation-free too (atomics only): attaching a sink must
// not move any hot path off its 0-allocs/op budget.
func TestEnabledSinkHotPathAllocs(t *testing.T) {
	s := New()
	allocs := testing.AllocsPerRun(200, func() {
		s.Inc(CompEvents)
		s.Add(ReplayEventsEmitted, 51)
		s.SetMax(CompReqPeak, 2)
		s.Observe(HistSimQueueDepth, 5)
	})
	if allocs != 0 {
		t.Errorf("enabled sink allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestCountersAndMax(t *testing.T) {
	s := New()
	s.Inc(CompEvents)
	s.Add(CompEvents, 9)
	if got := s.Value(CompEvents); got != 10 {
		t.Errorf("Value = %d, want 10", got)
	}
	s.SetMax(CompReqPeak, 5)
	s.SetMax(CompReqPeak, 3)
	s.SetMax(CompReqPeak, 8)
	if got := s.Value(CompReqPeak); got != 8 {
		t.Errorf("SetMax kept %d, want 8", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	for _, tc := range []struct {
		v    int64
		want int
	}{{-3, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11}, {1 << 40, HistBuckets - 1}} {
		if got := bucketOf(tc.v); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	if BucketUpper(0) != 0 || BucketUpper(1) != 1 || BucketUpper(2) != 3 || BucketUpper(10) != 1023 {
		t.Errorf("BucketUpper bounds wrong: %d %d %d %d",
			BucketUpper(0), BucketUpper(1), BucketUpper(2), BucketUpper(10))
	}
}

func TestReportContents(t *testing.T) {
	s := New()
	s.Add(CompEvents, 100)
	s.Add(CompMergeHits, 90)
	s.Add(CompNewRecords, 10)
	s.Add(MergeFPRelHits, 30)
	s.Add(MergeExhaustiveWalks, 10)
	s.Add(PoolGzipGets, 4)
	s.Add(PoolGzipNews, 1)
	for i := 0; i < 100; i++ {
		s.Observe(HistReqOccupancy, int64(i%7))
	}
	sp := s.Start(StageMerge)
	sp.End()

	r := s.Report()
	if r.Counters["comp_events"] != 100 {
		t.Errorf("comp_events = %d", r.Counters["comp_events"])
	}
	if _, ok := r.Counters["sim_blocked_copies"]; ok {
		t.Error("zero counter should be omitted")
	}
	if got := r.Rates["comp_fold_rate"]; got != 0.9 {
		t.Errorf("comp_fold_rate = %v, want 0.9", got)
	}
	if got := r.Rates["merge_fp_fast_rate"]; got != 0.75 {
		t.Errorf("merge_fp_fast_rate = %v, want 0.75", got)
	}
	if got := r.Rates["pool_gzip_hit_rate"]; got != 0.75 {
		t.Errorf("pool_gzip_hit_rate = %v, want 0.75", got)
	}
	if len(r.Stages) != 1 || r.Stages[0].Name != "merge" || r.Stages[0].Count != 1 {
		t.Errorf("stages = %+v", r.Stages)
	}
	var hist *HistStats
	for i := range r.Histograms {
		if r.Histograms[i].Name == "req_table_occupancy" {
			hist = &r.Histograms[i]
		}
	}
	if hist == nil || hist.Count != 100 {
		t.Fatalf("req_table_occupancy missing or wrong count: %+v", hist)
	}

	// JSON round-trip.
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["comp_merge_hits"] != 90 {
		t.Errorf("round-trip lost comp_merge_hits: %+v", back.Counters)
	}

	// Text rendering mentions the populated sections.
	buf.Reset()
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"counters:", "rates:", "stages:", "histograms:", "comp_events", "merge_fp_fast_rate"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, buf.String())
		}
	}
}

// TestNamesComplete guards the enum/name tables against drift.
func TestNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < NumCounters; c++ {
		n := c.String()
		if n == "" || n == "unknown_counter" {
			t.Errorf("counter %d has no name", c)
		}
		if seen[n] {
			t.Errorf("duplicate counter name %q", n)
		}
		seen[n] = true
	}
	for h := Hist(0); h < NumHists; h++ {
		if h.String() == "" || h.String() == "unknown_hist" {
			t.Errorf("hist %d has no name", h)
		}
	}
	for st := Stage(0); st < NumStages; st++ {
		if st.String() == "" || st.String() == "unknown_stage" {
			t.Errorf("stage %d has no name", st)
		}
	}
}

func TestMergePairHistClamps(t *testing.T) {
	if MergePairHist(0) != HistMergePairL1 || MergePairHist(1) != HistMergePairL1 {
		t.Error("low levels should clamp to L1")
	}
	if MergePairHist(8) != HistMergePairL8 || MergePairHist(99) != HistMergePairL8 {
		t.Error("high levels should clamp to L8")
	}
	if MergePairHist(3) != HistMergePairL3 {
		t.Error("mid levels should map directly")
	}
}

func TestConcurrentSink(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Inc(CompEvents)
				s.Observe(HistSimQueueDepth, int64(i&15))
				s.SetMax(CompReqPeak, int64(i))
			}
		}()
	}
	wg.Wait()
	if got := s.Value(CompEvents); got != 8000 {
		t.Errorf("concurrent Inc lost updates: %d", got)
	}
	if got := s.HistCount(HistSimQueueDepth); got != 8000 {
		t.Errorf("concurrent Observe lost updates: %d", got)
	}
	if got := s.Value(CompReqPeak); got != 999 {
		t.Errorf("concurrent SetMax = %d, want 999", got)
	}
	s.Reset()
	if s.Value(CompEvents) != 0 || s.HistCount(HistSimQueueDepth) != 0 {
		t.Error("Reset did not clear")
	}
}

// TestServeDebug spins the debug endpoint up on an ephemeral port and checks
// that expvar, the standalone obs report, and the pprof index all answer.
func TestServeDebug(t *testing.T) {
	s := New()
	s.Add(CompEvents, 5)
	ds, err := ServeDebug("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", ds.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if body := get("/debug/obs"); !strings.Contains(body, "comp_events") {
		t.Errorf("/debug/obs missing counters: %s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "cypress") {
		t.Errorf("/debug/vars missing published sink: %.200s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ index looks wrong: %.200s", body)
	}

	// Rebinding the published name to a fresh sink must not panic and must
	// serve the new sink's numbers.
	s2 := New()
	s2.Add(CompEvents, 77)
	s2.Publish("cypress")
	if body := get("/debug/vars"); !strings.Contains(body, "77") {
		t.Errorf("rebound expvar still serves old sink: %.300s", body)
	}
}
