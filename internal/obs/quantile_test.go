package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuantileEstimateEmpty(t *testing.T) {
	var counts [HistBuckets]int64
	if got := quantileEstimate(&counts, 0, 0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %f, want 0", got)
	}
}

func TestQuantileEstimateZerosOnly(t *testing.T) {
	var counts [HistBuckets]int64
	counts[0] = 50
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := quantileEstimate(&counts, 50, q); got != 0 {
			t.Fatalf("all-zero histogram q=%.2f = %f, want 0", q, got)
		}
	}
}

func TestQuantileEstimateSingleBucket(t *testing.T) {
	// 100 observations of value 5 all land in bucket 3 (4..7); every
	// quantile must interpolate inside that bucket's band.
	var counts [HistBuckets]int64
	counts[bucketOf(5)] = 100
	lower, upper := float64(BucketUpper(2)), float64(BucketUpper(3))
	prev := 0.0
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := quantileEstimate(&counts, 100, q)
		if got <= lower || got > upper {
			t.Errorf("q=%.2f = %f outside bucket band (%f, %f]", q, got, lower, upper)
		}
		if got < prev {
			t.Errorf("quantiles not monotonic: q=%.2f is %f after %f", q, got, prev)
		}
		prev = got
	}
}

func TestQuantileEstimateUniform(t *testing.T) {
	// Uniform 0..99: estimates carry one-bucket (factor of two) resolution,
	// so each quantile must land in the band of the bucket holding its true
	// order statistic.
	var counts [HistBuckets]int64
	for v := int64(0); v < 100; v++ {
		counts[bucketOf(v)]++
	}
	for _, tc := range []struct {
		q    float64
		true int64 // exact order statistic of uniform 0..99
	}{{0.50, 50}, {0.95, 95}, {0.99, 99}} {
		got := quantileEstimate(&counts, 100, tc.q)
		b := bucketOf(tc.true)
		lower, upper := float64(BucketUpper(b-1)), float64(BucketUpper(b))
		if got < lower || got > upper {
			t.Errorf("q=%.2f = %f, want within (%f, %f] around true value %d",
				tc.q, got, lower, upper, tc.true)
		}
	}
}

func TestQuantileEstimateLastBucket(t *testing.T) {
	// The unbounded last bucket must interpolate toward twice its lower
	// bound, not toward the sentinel 2^62 upper edge.
	var counts [HistBuckets]int64
	counts[HistBuckets-1] = 10
	lower := float64(BucketUpper(HistBuckets - 2))
	got := quantileEstimate(&counts, 10, 0.99)
	if got < lower || got > 2*lower {
		t.Fatalf("last-bucket p99 = %g, want within [%g, %g]", got, lower, 2*lower)
	}
}

func TestReportQuantilesInOutputs(t *testing.T) {
	s := New()
	for i := 0; i < 200; i++ {
		s.Observe(HistReqOccupancy, int64(i))
	}
	r := s.Report()
	var hs *HistStats
	for i := range r.Histograms {
		if r.Histograms[i].Count == 200 {
			hs = &r.Histograms[i]
		}
	}
	if hs == nil {
		t.Fatal("observed histogram missing from report")
	}
	if !(hs.P50 > 0 && hs.P50 <= hs.P95 && hs.P95 <= hs.P99) {
		t.Fatalf("quantiles not ordered: p50=%f p95=%f p99=%f", hs.P50, hs.P95, hs.P99)
	}

	var txt bytes.Buffer
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"p50", "p95", "p99"} {
		if !strings.Contains(txt.String(), col) {
			t.Errorf("WriteText missing %s column:\n%s", col, txt.String())
		}
	}
	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"p50"`, `"p95"`, `"p99"`} {
		if !strings.Contains(js.String(), key) {
			t.Errorf("WriteJSON missing %s key", key)
		}
	}
}
