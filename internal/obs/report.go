package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Report is a point-in-time snapshot of a Sink, serializable to JSON and
// renderable as text. Counters with value zero are omitted so quiet stages do
// not drown the interesting ones; derived Rates are recomputed at snapshot
// time from the counters they summarize.
type Report struct {
	// Counters holds every non-zero counter keyed by its stable name.
	Counters map[string]int64 `json:"counters"`
	// Rates holds derived hit/fold rates in [0,1] (and byte ratios), keyed by
	// a stable name. Only rates whose denominators are non-zero appear.
	Rates map[string]float64 `json:"rates,omitempty"`
	// Stages lists stage span timers that fired at least once.
	Stages []StageStats `json:"stages,omitempty"`
	// Histograms lists histograms with at least one observation.
	Histograms []HistStats `json:"histograms,omitempty"`
}

// StageStats summarizes one stage timer.
type StageStats struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	TotalNS int64   `json:"total_ns"`
	MeanNS  float64 `json:"mean_ns"`
}

// HistStats summarizes one histogram: observation count, value sum/mean, and
// interpolated p50/p95/p99 estimates derived from the power-of-two buckets.
// The quantiles place the target rank inside its bucket and interpolate
// linearly across the bucket's value range, so they are estimates with
// one-bucket resolution (a factor-of-two band), not exact order statistics.
type HistStats struct {
	Name    string        `json:"name"`
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Mean    float64       `json:"mean"`
	P50     float64       `json:"p50"`
	P95     float64       `json:"p95"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty histogram bucket: N observations <= Le (and
// greater than the previous bucket's bound).
type BucketCount struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// ratio returns n/d, reporting ok=false when the denominator is zero.
func ratio(n, d int64) (float64, bool) {
	if d == 0 {
		return 0, false
	}
	return float64(n) / float64(d), true
}

// Report snapshots the sink. A nil sink yields an empty (but non-nil) report.
func (s *Sink) Report() *Report {
	r := &Report{Counters: map[string]int64{}, Rates: map[string]float64{}}
	if s == nil {
		return r
	}
	var vals [NumCounters]int64
	for c := Counter(0); c < NumCounters; c++ {
		vals[c] = s.counters[c].Load()
		if vals[c] != 0 {
			r.Counters[c.String()] = vals[c]
		}
	}
	addRate := func(name string, n, d int64) {
		if v, ok := ratio(n, d); ok {
			r.Rates[name] = v
		}
	}
	addRate("comp_fold_rate",
		vals[CompMergeHits]+vals[CompPeerPatternFolds]+vals[CompCycleFolds], vals[CompEvents])
	fpHits := vals[MergeFPRelHits] + vals[MergeFPAbsHits]
	addRate("merge_fp_fast_rate", fpHits, fpHits+vals[MergeExhaustiveWalks])
	addRate("merge_tree_fast_rate", vals[MergeTreeFastHits], vals[MergePairs])
	skHits := vals[ReplayRankMemoHits] + vals[ReplayClassReuses]
	addRate("replay_skeleton_hit_rate", skHits, skHits+vals[ReplaySkeletonBuilds])
	addRate("stride_values_per_run", vals[StrideValues], vals[StrideRuns])
	addRate("enc_gzip_ratio", vals[EncBytesGzip], vals[EncBytesRaw])
	addRate("enc_blocked_ratio", vals[EncBytesBlocked], vals[EncBytesRaw])
	addRate("pool_gzip_hit_rate", vals[PoolGzipGets]-vals[PoolGzipNews], vals[PoolGzipGets])
	addRate("pool_bufio_hit_rate", vals[PoolBufioGets]-vals[PoolBufioNews], vals[PoolBufioGets])
	addRate("pool_reader_hit_rate", vals[PoolReaderGets]-vals[PoolReaderNews], vals[PoolReaderGets])
	addRate("pool_buffer_hit_rate", vals[PoolBufferGets]-vals[PoolBufferNews], vals[PoolBufferGets])
	addRate("pool_flate_hit_rate", vals[PoolFlateGets]-vals[PoolFlateNews], vals[PoolFlateGets])
	addRate("pool_inflate_hit_rate", vals[PoolInflateGets]-vals[PoolInflateNews], vals[PoolInflateGets])

	for st := Stage(0); st < NumStages; st++ {
		n := s.stages[st].count.Load()
		if n == 0 {
			continue
		}
		tot := s.stages[st].totalNS.Load()
		r.Stages = append(r.Stages, StageStats{
			Name: st.String(), Count: n, TotalNS: tot, MeanNS: float64(tot) / float64(n),
		})
	}
	for h := Hist(0); h < NumHists; h++ {
		hs := s.histStats(h)
		if hs.Count == 0 {
			continue
		}
		r.Histograms = append(r.Histograms, hs)
	}
	return r
}

// histStats summarizes one histogram.
func (s *Sink) histStats(h Hist) HistStats {
	hist := &s.hists[h]
	out := HistStats{Name: h.String(), Sum: hist.sum.Load()}
	var counts [HistBuckets]int64
	for i := range counts {
		counts[i] = hist.buckets[i].Load()
		out.Count += counts[i]
	}
	if out.Count == 0 {
		return out
	}
	out.Mean = float64(out.Sum) / float64(out.Count)
	out.P50 = quantileEstimate(&counts, out.Count, 0.50)
	out.P95 = quantileEstimate(&counts, out.Count, 0.95)
	out.P99 = quantileEstimate(&counts, out.Count, 0.99)
	for i, n := range counts {
		if n != 0 {
			out.Buckets = append(out.Buckets, BucketCount{Le: BucketUpper(i), N: n})
		}
	}
	return out
}

// quantileEstimate interpolates the q-quantile from power-of-two bucket
// counts: it walks to the bucket holding the target rank, then interpolates
// linearly between the bucket's lower and upper value bounds by the rank's
// position among the bucket's observations. Bucket 0 (v <= 0) estimates 0;
// the unbounded last bucket interpolates toward twice its lower bound,
// since its true upper edge carries no information.
func quantileEstimate(counts *[HistBuckets]int64, total int64, q float64) float64 {
	if total <= 0 {
		return 0
	}
	target := q * float64(total-1) // continuous rank in [0, total-1]
	var before int64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		hi := float64(before+n) - 1 // last rank covered by this bucket
		if target <= hi || before+n == total {
			if i == 0 {
				return 0
			}
			lower := float64(BucketUpper(i - 1))
			upper := float64(BucketUpper(i))
			if i == HistBuckets-1 {
				upper = 2 * lower
			}
			frac := (target - float64(before) + 1) / float64(n)
			if frac > 1 {
				frac = 1
			}
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(upper-lower)
		}
		before += n
	}
	return float64(BucketUpper(HistBuckets - 1))
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the report as aligned human-readable text.
func (r *Report) WriteText(w io.Writer) error {
	if len(r.Counters) == 0 && len(r.Stages) == 0 && len(r.Histograms) == 0 {
		_, err := fmt.Fprintln(w, "obs: no metrics recorded")
		return err
	}
	// Counters in enum order (stable, stage-grouped), skipping zeros.
	if len(r.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for c := Counter(0); c < NumCounters; c++ {
			if v, ok := r.Counters[c.String()]; ok {
				fmt.Fprintf(w, "  %-32s %12d\n", c.String(), v)
			}
		}
		// Any keys not matching the enum (future/foreign) in sorted order.
		var extra []string
		for k := range r.Counters {
			if !knownCounter(k) {
				extra = append(extra, k)
			}
		}
		sort.Strings(extra)
		for _, k := range extra {
			fmt.Fprintf(w, "  %-32s %12d\n", k, r.Counters[k])
		}
	}
	if len(r.Rates) > 0 {
		fmt.Fprintln(w, "rates:")
		keys := make([]string, 0, len(r.Rates))
		for k := range r.Rates {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %-32s %12.4f\n", k, r.Rates[k])
		}
	}
	if len(r.Stages) > 0 {
		fmt.Fprintln(w, "stages:")
		fmt.Fprintf(w, "  %-12s %10s %14s %14s\n", "stage", "count", "total_ms", "mean_us")
		for _, st := range r.Stages {
			fmt.Fprintf(w, "  %-12s %10d %14.3f %14.2f\n",
				st.Name, st.Count, float64(st.TotalNS)/1e6, st.MeanNS/1e3)
		}
	}
	if len(r.Histograms) > 0 {
		fmt.Fprintln(w, "histograms:")
		fmt.Fprintf(w, "  %-24s %10s %12s %12s %12s %12s\n", "histogram", "count", "mean", "p50", "p95", "p99")
		for _, h := range r.Histograms {
			fmt.Fprintf(w, "  %-24s %10d %12.1f %12.1f %12.1f %12.1f\n",
				h.Name, h.Count, h.Mean, h.P50, h.P95, h.P99)
		}
	}
	return nil
}

// knownCounter reports whether name is a defined counter name.
func knownCounter(name string) bool {
	for c := Counter(0); c < NumCounters; c++ {
		if c.String() == name {
			return true
		}
	}
	return false
}
