package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The exporters speak the Chrome trace-event JSON "object format": a
// top-level object with a traceEvents array plus metadata keys, which both
// Perfetto and chrome://tracing load directly. Spans are complete events
// (ph "X", microsecond ts/dur with sub-microsecond fractions preserved),
// instants are thread-scoped ph "i". Each Cat becomes one pid with a
// process_name metadata record; each lane becomes a tid with a thread_name,
// so parallel stages (blockio frame workers, simulator engine workers)
// render as real swimlanes.
//
// The header's otherData block makes silent truncation visible: it carries
// the recorder's total emitted event count, the number dropped to ring
// wraparound, and a truncated flag. Consumers that need a complete capture
// (the fixture CI job) must reject truncated files rather than quietly
// analyzing a window with its head cut off.

// header mirrors the exported top-level object.
type header struct {
	DisplayTimeUnit string      `json:"displayTimeUnit"`
	OtherData       otherData   `json:"otherData"`
	TraceEvents     []jsonEvent `json:"traceEvents"`
}

type otherData struct {
	Recorder  string `json:"recorder"`
	Total     uint64 `json:"total_events"`
	Drops     uint64 `json:"drops"`
	Truncated bool   `json:"truncated"`
}

// jsonEvent is one Chrome trace-event record (export and import shape).
// Args holds int64 values for pipeline events and a string "name" for the
// ph "M" process_name/thread_name metadata records.
type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  *float64       `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// usec converts recorder nanoseconds to trace-event microseconds without
// losing sub-microsecond ordering.
func usec(ns int64) float64 { return float64(ns) / 1e3 }

// jsonEventsOf converts a snapshot (already start-sorted) into trace-event
// records, prepending process/thread metadata for every (cat, lane) seen.
func jsonEventsOf(evs []Event) []jsonEvent {
	type pt struct {
		cat  Cat
		lane int32
	}
	out := make([]jsonEvent, 0, len(evs)+16)
	seenCat := map[Cat]bool{}
	seenLane := map[pt]bool{}
	for _, e := range evs {
		if !seenCat[e.Cat] {
			seenCat[e.Cat] = true
			out = append(out, jsonEvent{
				Name: "process_name", Cat: "__metadata", Ph: "M",
				PID: int64(e.Cat),
				Args: map[string]any{
					"name": e.Cat.String(), "sort_index": int64(e.Cat),
				},
			})
		}
		if k := (pt{e.Cat, e.Lane}); !seenLane[k] {
			seenLane[k] = true
			out = append(out, jsonEvent{
				Name: "thread_name", Cat: "__metadata", Ph: "M",
				PID: int64(e.Cat), TID: int64(e.Lane),
				Args: map[string]any{"name": fmt.Sprintf("lane-%d", e.Lane)},
			})
		}
	}
	for _, e := range evs {
		an := ArgNames(e.Name)
		je := jsonEvent{
			Name: e.Name.String(),
			Cat:  e.Cat.String(),
			TS:   usec(e.Start),
			PID:  int64(e.Cat),
			TID:  int64(e.Lane),
			Args: map[string]any{
				an[0]: e.Arg0, an[1]: e.Arg1, "seq": int64(e.Seq),
			},
		}
		if e.Kind == KindInstant {
			je.Ph = "i"
			je.S = "t"
		} else {
			je.Ph = "X"
			d := usec(e.Dur)
			je.Dur = &d
		}
		out = append(out, je)
	}
	return out
}

// WriteChromeJSON exports every currently-retained event as Chrome
// trace-event JSON. A nil recorder writes an empty (but valid) capture.
func (r *Recorder) WriteChromeJSON(w io.Writer) error {
	return r.WriteChromeJSONSince(w, 0)
}

// WriteChromeJSONSince exports only events starting at or after the given
// recorder timestamp (from Now) — the live-capture endpoint uses this to
// serve just the observation window.
func (r *Recorder) WriteChromeJSONSince(w io.Writer, since int64) error {
	evs := r.Snapshot()
	if since > 0 {
		kept := evs[:0]
		for _, e := range evs {
			if e.Start >= since {
				kept = append(kept, e)
			}
		}
		evs = kept
	}
	h := header{
		DisplayTimeUnit: "ns",
		OtherData: otherData{
			Recorder:  "cypress-flight-recorder/1",
			Total:     r.Total(),
			Drops:     r.Drops(),
			Truncated: r.Drops() > 0,
		},
		TraceEvents: jsonEventsOf(evs),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&h)
}

// WriteText renders the retained events as a plain-text timeline.
func (r *Recorder) WriteText(w io.Writer) error {
	c, err := captureOf(r)
	if err != nil {
		return err
	}
	return c.WriteText(w)
}

// captureOf converts a recorder snapshot into the parsed-capture shape, so
// the text renderer has a single implementation for live and on-disk data.
func captureOf(r *Recorder) (*Capture, error) {
	c := &Capture{Total: r.Total(), Drops: r.Drops(), Truncated: r.Drops() > 0}
	for _, e := range r.Snapshot() {
		ph := "X"
		if e.Kind == KindInstant {
			ph = "i"
		}
		an := ArgNames(e.Name)
		c.Events = append(c.Events, CapturedEvent{
			Name: e.Name.String(), Cat: e.Cat.String(), Ph: ph,
			TSUsec: usec(e.Start), DurUsec: usec(e.Dur),
			PID: int64(e.Cat), TID: int64(e.Lane),
			Args: map[string]int64{an[0]: e.Arg0, an[1]: e.Arg1, "seq": int64(e.Seq)},
		})
	}
	return c, nil
}

// CapturedEvent is one non-metadata record of a parsed capture file.
type CapturedEvent struct {
	Name    string
	Cat     string
	Ph      string
	TSUsec  float64
	DurUsec float64
	PID     int64
	TID     int64
	Args    map[string]int64
}

// Capture is a parsed trace capture: the header accounting plus every
// non-metadata event, in file order.
type Capture struct {
	Total     uint64
	Drops     uint64
	Truncated bool
	Events    []CapturedEvent
	// LaneNames maps (pid,tid) keys ("pid/tid") to thread_name metadata.
	LaneNames map[string]string
	// CatNames maps pid to process_name metadata.
	CatNames map[int64]string
}

// ReadChromeJSON parses a capture written by WriteChromeJSON (or any
// object-format Chrome trace with the same otherData header).
func ReadChromeJSON(rd io.Reader) (*Capture, error) {
	var h header
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: parsing capture: %w", err)
	}
	c := &Capture{
		Total: h.OtherData.Total, Drops: h.OtherData.Drops,
		Truncated: h.OtherData.Truncated,
		LaneNames: map[string]string{}, CatNames: map[int64]string{},
	}
	for _, je := range h.TraceEvents {
		if je.Ph == "M" {
			name, _ := je.Args["name"].(string)
			switch je.Name {
			case "process_name":
				c.CatNames[je.PID] = name
			case "thread_name":
				c.LaneNames[fmt.Sprintf("%d/%d", je.PID, je.TID)] = name
			}
			continue
		}
		ev := CapturedEvent{
			Name: je.Name, Cat: je.Cat, Ph: je.Ph,
			TSUsec: je.TS, PID: je.PID, TID: je.TID,
			Args: map[string]int64{},
		}
		for k, v := range je.Args {
			if f, ok := v.(float64); ok {
				ev.Args[k] = int64(f)
			}
		}
		if je.Dur != nil {
			ev.DurUsec = *je.Dur
		}
		c.Events = append(c.Events, ev)
	}
	return c, nil
}

// Validate checks the capture against the invariants the exporter
// guarantees and the fixture CI job asserts: every event carries the
// required trace-event keys, timestamps are monotonically non-decreasing
// within each (pid, tid) lane, span durations are non-negative, and the
// header's accounting is consistent. It does not require Drops == 0; pass
// requireComplete to additionally reject truncated captures.
func (c *Capture) Validate(requireComplete bool) error {
	if requireComplete && (c.Truncated || c.Drops > 0) {
		return fmt.Errorf("trace: capture truncated: %d of %d events dropped to ring wraparound", c.Drops, c.Total)
	}
	if c.Drops > 0 && !c.Truncated {
		return fmt.Errorf("trace: header inconsistency: drops=%d but truncated=false", c.Drops)
	}
	lastTS := map[[2]int64]float64{}
	for i, e := range c.Events {
		if e.Name == "" {
			return fmt.Errorf("trace: event %d: missing name", i)
		}
		if e.Cat == "" {
			return fmt.Errorf("trace: event %d (%s): missing cat", i, e.Name)
		}
		switch e.Ph {
		case "X":
			if e.DurUsec < 0 {
				return fmt.Errorf("trace: event %d (%s): negative dur %f", i, e.Name, e.DurUsec)
			}
		case "i":
		default:
			return fmt.Errorf("trace: event %d (%s): unsupported phase %q", i, e.Name, e.Ph)
		}
		if e.TSUsec < 0 {
			return fmt.Errorf("trace: event %d (%s): negative ts", i, e.Name)
		}
		key := [2]int64{e.PID, e.TID}
		if prev, ok := lastTS[key]; ok && e.TSUsec < prev {
			return fmt.Errorf("trace: event %d (%s): ts %.3f before %.3f on lane %d/%d",
				i, e.Name, e.TSUsec, prev, e.PID, e.TID)
		}
		lastTS[key] = e.TSUsec
	}
	return nil
}

// Cats returns the distinct non-metadata categories present, sorted.
func (c *Capture) Cats() []string {
	set := map[string]bool{}
	for _, e := range c.Events {
		set[e.Cat] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Lanes returns the distinct tids seen for a category name.
func (c *Capture) Lanes(cat string) []int64 {
	set := map[int64]bool{}
	for _, e := range c.Events {
		if e.Cat == cat {
			set[e.TID] = true
		}
	}
	out := make([]int64, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WriteText renders the capture as an aligned timeline, one row per event
// in timestamp order: offset, duration, category/lane, name, args.
func (c *Capture) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "flight recorder: %d events captured, %d emitted, %d dropped (truncated=%v)\n",
		len(c.Events), c.Total, c.Drops, c.Truncated); err != nil {
		return err
	}
	evs := append([]CapturedEvent(nil), c.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TSUsec < evs[j].TSUsec })
	for _, e := range evs {
		dur := "          "
		if e.Ph == "X" {
			dur = fmt.Sprintf("%9.1fus", e.DurUsec)
		}
		lane := fmt.Sprintf("%s/%d", e.Cat, e.TID)
		if _, err := fmt.Fprintf(w, "%12.1fus %s  %-16s %-16s %s\n",
			e.TSUsec, dur, lane, e.Name, formatArgs(e.Args)); err != nil {
			return err
		}
	}
	return nil
}

// formatArgs renders an args map deterministically (seq last).
func formatArgs(args map[string]int64) string {
	if len(args) == 0 {
		return ""
	}
	keys := make([]string, 0, len(args))
	for k := range args {
		if k != "seq" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%s=%d ", k, args[k])
	}
	if v, ok := args["seq"]; ok {
		s += fmt.Sprintf("seq=%d", v)
	}
	return s
}
