package trace_test

// Fixture capture test: run the traced 64-rank pipeline pass that backs
// `cypressbench -trace` and assert the capture the CI job ships to Perfetto
// is complete and structurally rich — every stage category present, real
// per-worker swimlanes for the parallel stages, zero drops, and a clean
// export → parse → validate round-trip. This is the in-process twin of the
// CI fixture job's CLI-level check (cypressstat -timeline -check).

import (
	"bytes"
	"testing"

	"repro/internal/bench"
	ftrace "repro/internal/obs/trace"
)

func TestTracedPipelineFixtureCapture(t *testing.T) {
	rec := ftrace.New(0)
	if err := bench.TracedPipeline(rec); err != nil {
		t.Fatalf("TracedPipeline: %v", err)
	}
	if d := rec.Drops(); d != 0 {
		t.Fatalf("fixture capture dropped %d of %d events; ring too small for the fixture", d, rec.Total())
	}
	if rec.Total() == 0 {
		t.Fatal("traced pipeline recorded nothing")
	}

	var buf bytes.Buffer
	if err := rec.WriteChromeJSON(&buf); err != nil {
		t.Fatalf("WriteChromeJSON: %v", err)
	}
	c, err := ftrace.ReadChromeJSON(&buf)
	if err != nil {
		t.Fatalf("ReadChromeJSON: %v", err)
	}
	if err := c.Validate(true); err != nil {
		t.Fatalf("fixture capture invalid: %v", err)
	}

	// The acceptance bar: at least 6 distinct stage categories in one capture.
	cats := c.Cats()
	if len(cats) < 6 {
		t.Fatalf("capture has %d categories (%v), want >= 6", len(cats), cats)
	}
	for _, want := range []string{"compress", "merge", "codec", "blockio.enc", "blockio.dec", "corpus", "replay", "sim"} {
		found := false
		for _, got := range cats {
			if got == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("category %q missing from fixture capture (have %v)", want, cats)
		}
	}

	// Parallel stages must show real per-worker swimlanes, not one collapsed
	// lane. The pipeline pins 4 enc / 2 dec / 4 sim workers and frames small
	// enough that several flow through each.
	if lanes := c.Lanes("blockio.enc"); len(lanes) < 2 {
		t.Errorf("blockio.enc has lanes %v, want >= 2 worker lanes", lanes)
	}
	if lanes := c.Lanes("blockio.dec"); len(lanes) < 2 {
		t.Errorf("blockio.dec has lanes %v, want >= 2 worker lanes", lanes)
	}
	if lanes := c.Lanes("sim"); len(lanes) < 2 {
		t.Errorf("sim has lanes %v, want >= 2 worker lanes", lanes)
	}

	// Every lane of every category must carry thread_name metadata so
	// Perfetto renders named swimlanes.
	for _, cat := range cats {
		var pid int64 = -1
		for _, e := range c.Events {
			if e.Cat == cat {
				pid = e.PID
				break
			}
		}
		if c.CatNames[pid] != cat {
			t.Errorf("category %q (pid %d) missing process_name metadata", cat, pid)
		}
	}
}
