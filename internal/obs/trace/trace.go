// Package trace is the pipeline's flight recorder: a fixed-size lock-free
// ring buffer of timestamped spans and instants, cheap enough to leave wired
// into every stage and exportable as a Chrome trace-event JSON file
// (loadable in Perfetto or chrome://tracing) or a plain-text timeline.
//
// Where internal/obs answers aggregate questions (how many, how long on
// average), the recorder answers ordering questions: when did this merge
// pair run, which deflate worker was idle, did the corpus cache miss happen
// before or after the simulator stalled. It follows the same discipline as
// obs.Sink: every method is defined on the pointer receiver and starts with
// a nil check, so a nil *Recorder is the disabled state and instrumented
// code pays one predictable branch and zero allocations when recording is
// off.
//
// With a recorder attached, emitting one event is a handful of atomic
// stores into a pre-allocated slot — no locks, no allocation, no channel.
// Writers claim slots from a single atomic cursor; when the ring wraps, the
// oldest events are overwritten (and counted as drops) rather than blocking
// the pipeline. Readers validate each slot's sequence number before and
// after copying it, so a snapshot taken concurrently with writers never
// yields a torn record; under extreme wrap pressure a slot being rewritten
// during the copy is simply skipped. The recorder is a diagnostic ring, not
// an accounting ledger: events on error paths or mid-rewrite may be lost,
// and Drops() reports how many fell off the back.
package trace

import (
	"sort"
	"sync/atomic"
	"time"
)

// Cat enumerates the pipeline stage categories. Each category becomes one
// Perfetto "process" row, with its lanes as threads underneath.
type Cat uint8

const (
	CatCompress Cat = iota // per-rank compression (ctt): lane = rank
	CatMerge               // inter-process reduction: lane = reduction depth
	CatCodec               // trace serialization/deserialization: lane 0
	CatIOEnc               // CYPB frame deflate: lane = writer worker
	CatIODec               // CYPB frame inflate: lane = reader worker
	CatCorpus              // content-addressed store: lane 0
	CatReplay              // streaming replay (skeletons, memo): lane 0
	CatSim                 // LogGP simulation: lane = engine worker
	NumCats                // sentinel; must be last
)

var catNames = [NumCats]string{
	CatCompress: "compress",
	CatMerge:    "merge",
	CatCodec:    "codec",
	CatIOEnc:    "blockio.enc",
	CatIODec:    "blockio.dec",
	CatCorpus:   "corpus",
	CatReplay:   "replay",
	CatSim:      "sim",
}

// String returns the category's stable name (the Perfetto process name).
func (c Cat) String() string {
	if c < NumCats {
		return catNames[c]
	}
	return "unknown_cat"
}

// Name enumerates the recordable event names.
type Name uint8

const (
	NameNone         Name = iota
	NameFinish            // compressor Finish: args events, executed vertices
	NameWildcard          // wildcard receive resolved (instant): args site gid, still-cached
	NamePair              // one merge pair: args ranks merged, path (see PairPath*)
	NameEncode            // trace serialization: args bytes out, ranks
	NameDecode            // trace deserialization: args entries, events
	NameDeflate           // one CYPB frame compressed: args usize, csize
	NameInflate           // one CYPB frame decompressed: args csize, usize
	NameIngest            // corpus ingest: args encoding bytes, mode (see IngestMode*)
	NameCorpusGet         // corpus get: args cache hit (1/0), bytes served
	NameSkeleton          // replay skeleton build: args rank, skeleton events
	NameMemoHit           // replay class memo hit (instant): args rank, 0
	NameWindow            // one worker's share of a lookahead window: args rank visits, events
	NameTurn              // window barrier turn: args window events, live ranks
	NameDecodeSelect      // selective decode: args entries materialized, payload bytes skipped
	NameLazyFill          // lazy payload fill (instant): args slot, section bytes
	NumNames              // sentinel; must be last
)

var nameStrings = [NumNames]string{
	NameNone:         "none",
	NameFinish:       "finish",
	NameWildcard:     "wildcard_resolve",
	NamePair:         "pair",
	NameEncode:       "encode",
	NameDecode:       "decode",
	NameDeflate:      "deflate",
	NameInflate:      "inflate",
	NameIngest:       "ingest",
	NameCorpusGet:    "get",
	NameSkeleton:     "skeleton",
	NameMemoHit:      "memo_hit",
	NameWindow:       "window",
	NameTurn:         "window_turn",
	NameDecodeSelect: "decode_select",
	NameLazyFill:     "lazy_fill",
}

// String returns the event name's stable string.
func (n Name) String() string {
	if n < NumNames {
		return nameStrings[n]
	}
	return "unknown_name"
}

// argNames labels the two int64 args of each event name in exports.
var argNames = [NumNames][2]string{
	NameFinish:       {"events", "executed"},
	NameWildcard:     {"site", "cached"},
	NamePair:         {"ranks", "path"},
	NameEncode:       {"bytes", "ranks"},
	NameDecode:       {"entries", "events"},
	NameDeflate:      {"usize", "csize"},
	NameInflate:      {"csize", "usize"},
	NameIngest:       {"bytes", "mode"},
	NameCorpusGet:    {"hit", "bytes"},
	NameSkeleton:     {"rank", "events"},
	NameMemoHit:      {"rank", "arg1"},
	NameWindow:       {"visits", "events"},
	NameTurn:         {"events", "active"},
	NameDecodeSelect: {"eager", "skipped_bytes"},
	NameLazyFill:     {"slot", "bytes"},
}

// ArgNames returns the export labels for an event name's two args.
func ArgNames(n Name) [2]string {
	if n < NumNames && argNames[n][0] != "" {
		return argNames[n]
	}
	return [2]string{"arg0", "arg1"}
}

// NamePair path annotations (arg1): how the pair was unified.
const (
	PairPathWalk     = 0 // at least one entry fell back to the exhaustive walk
	PairPathFP       = 1 // all unifications took a per-entry fingerprint fast path
	PairPathTreeFast = 2 // whole-tree span short-circuit, no per-entry work
)

// NameIngest mode annotations (arg1).
const (
	IngestFull  = 0 // stored as a full standalone encoding
	IngestDelta = 1 // stored as a payload delta against the class representative
	IngestDup   = 2 // answered by an existing content hash, nothing stored
)

// Kind distinguishes duration spans from point events.
type Kind uint8

const (
	KindSpan    Kind = iota // has a start and a duration
	KindInstant             // a point in time, Dur == 0
)

// slot is one ring entry. Every field is atomic so concurrent writers and
// snapshot readers stay race-free; seq is written last (valid) and checked
// around reads.
type slot struct {
	seq  atomic.Int64 // 0 empty, -i being written, +i valid (i = 1-based claim)
	meta atomic.Int64 // packed kind | cat | name | lane
	t0   atomic.Int64 // start, ns since recorder creation
	dur  atomic.Int64 // duration ns (0 for instants)
	a0   atomic.Int64
	a1   atomic.Int64
}

func packMeta(k Kind, c Cat, n Name, lane int32) int64 {
	return int64(uint64(k)&0xff | uint64(c)<<8 | uint64(n)<<16 | uint64(uint32(lane))<<24)
}

func unpackMeta(m int64) (k Kind, c Cat, n Name, lane int32) {
	u := uint64(m)
	return Kind(u & 0xff), Cat(u >> 8 & 0xff), Name(u >> 16 & 0xff), int32(uint32(u >> 24))
}

// Recorder is the flight recorder. A nil *Recorder is the disabled state;
// every method on it is a cheap no-op. Non-nil recorders are safe for
// concurrent use by any number of writers and snapshot readers.
type Recorder struct {
	slots  []slot
	mask   uint64
	cursor atomic.Uint64 // total events ever claimed
	base   time.Time     // timestamp zero; monotonic via time.Since
}

// DefaultCapacity is the ring size used by New when capacity <= 0: 64 Ki
// events (~3 MiB), several full pipeline runs at the instrumented
// granularity (per rank-finish / merge pair / io frame / sim window, never
// per MPI event).
const DefaultCapacity = 1 << 16

const minCapacity = 1 << 10

// New returns an enabled recorder whose ring holds capacity events, rounded
// up to a power of two (minimum 1024). capacity <= 0 means DefaultCapacity.
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	n := minCapacity
	for n < capacity {
		n <<= 1
	}
	return &Recorder{slots: make([]slot, n), mask: uint64(n - 1), base: time.Now()}
}

// Enabled reports whether the recorder captures anything (i.e. is non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Cap returns the ring capacity in events (0 on a nil recorder).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Now returns the recorder's current timestamp (ns since creation, from the
// monotonic clock). Useful as a since-mark for partial exports.
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return time.Since(r.base).Nanoseconds()
}

// Total returns how many events have ever been emitted (including ones the
// ring has since overwritten).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.cursor.Load()
}

// Drops returns how many events have been overwritten by ring wraparound —
// the capture is truncated (oldest-first) whenever this is non-zero.
func (r *Recorder) Drops() uint64 {
	if r == nil {
		return 0
	}
	total := r.cursor.Load()
	if cap := uint64(len(r.slots)); total > cap {
		return total - cap
	}
	return 0
}

// emit claims the next slot and publishes one record into it.
func (r *Recorder) emit(k Kind, c Cat, n Name, lane int32, t0, dur, a0, a1 int64) {
	i := int64(r.cursor.Add(1)) // 1-based sequence
	s := &r.slots[uint64(i-1)&r.mask]
	s.seq.Store(-i) // invalidate while the fields are in flux
	s.meta.Store(packMeta(k, c, n, lane))
	s.t0.Store(t0)
	s.dur.Store(dur)
	s.a0.Store(a0)
	s.a1.Store(a1)
	s.seq.Store(i)
}

// Span is an in-flight span token. Tokens are values: they never allocate,
// and the zero token (from a nil recorder) ends as a no-op.
type Span struct {
	r    *Recorder
	t0   int64
	cat  Cat
	name Name
	lane int32
}

// Begin opens a span in category c named n on the given lane. Close it with
// End; an abandoned token records nothing.
func (r *Recorder) Begin(c Cat, n Name, lane int32) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, t0: r.Now(), cat: c, name: n, lane: lane}
}

// End records the span with its two argument words.
func (sp Span) End(a0, a1 int64) {
	if sp.r == nil {
		return
	}
	t1 := sp.r.Now()
	sp.r.emit(KindSpan, sp.cat, sp.name, sp.lane, sp.t0, t1-sp.t0, a0, a1)
}

// Instant records a point event.
func (r *Recorder) Instant(c Cat, n Name, lane int32, a0, a1 int64) {
	if r == nil {
		return
	}
	r.emit(KindInstant, c, n, lane, r.Now(), 0, a0, a1)
}

// Event is one decoded ring record.
type Event struct {
	Seq   uint64 // 1-based emission order
	Kind  Kind
	Cat   Cat
	Name  Name
	Lane  int32
	Start int64 // ns since recorder creation
	Dur   int64 // ns; 0 for instants
	Arg0  int64
	Arg1  int64
}

// Snapshot copies every currently-valid ring record, sorted by start time
// (ties by sequence). It is safe to call concurrently with writers: slots
// rewritten mid-copy are skipped, not torn. A nil recorder yields nil.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		seq := s.seq.Load()
		if seq <= 0 {
			continue
		}
		ev := Event{
			Seq:   uint64(seq),
			Start: s.t0.Load(),
			Dur:   s.dur.Load(),
			Arg0:  s.a0.Load(),
			Arg1:  s.a1.Load(),
		}
		ev.Kind, ev.Cat, ev.Name, ev.Lane = unpackMeta(s.meta.Load())
		if s.seq.Load() != seq {
			continue // rewritten while copying
		}
		out = append(out, ev)
	}
	sortEvents(out)
	return out
}

// sortEvents orders events by start time, then emission order.
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Start != evs[j].Start {
			return evs[i].Start < evs[j].Start
		}
		return evs[i].Seq < evs[j].Seq
	})
}
