package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
	if r.Cap() != 0 || r.Now() != 0 || r.Total() != 0 || r.Drops() != 0 {
		t.Fatal("nil recorder accounting not all zero")
	}
	sp := r.Begin(CatMerge, NamePair, 3)
	sp.End(1, 2) // must not panic
	r.Instant(CatSim, NameTurn, 0, 1, 2)
	if evs := r.Snapshot(); evs != nil {
		t.Fatalf("nil recorder Snapshot = %v, want nil", evs)
	}
	var buf bytes.Buffer
	if err := r.WriteChromeJSON(&buf); err != nil {
		t.Fatalf("nil recorder WriteChromeJSON: %v", err)
	}
	c, err := ReadChromeJSON(&buf)
	if err != nil {
		t.Fatalf("parsing nil-recorder capture: %v", err)
	}
	if err := c.Validate(true); err != nil {
		t.Fatalf("empty capture invalid: %v", err)
	}
	if len(c.Events) != 0 || c.Total != 0 || c.Drops != 0 {
		t.Fatalf("empty capture not empty: %+v", c)
	}
}

func TestNilRecorderZeroAlloc(t *testing.T) {
	var r *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		sp := r.Begin(CatCompress, NameFinish, 7)
		sp.End(10, 20)
		r.Instant(CatReplay, NameMemoHit, 0, 1, 0)
	}); n != 0 {
		t.Fatalf("nil recorder allocates %.1f/op, want 0", n)
	}
}

func TestEnabledRecorderZeroAllocEmit(t *testing.T) {
	r := New(minCapacity)
	if n := testing.AllocsPerRun(1000, func() {
		sp := r.Begin(CatCompress, NameFinish, 7)
		sp.End(10, 20)
		r.Instant(CatReplay, NameMemoHit, 0, 1, 0)
	}); n != 0 {
		t.Fatalf("emit allocates %.1f/op, want 0", n)
	}
}

func TestCapacityRounding(t *testing.T) {
	if got := New(0).Cap(); got != DefaultCapacity {
		t.Fatalf("New(0).Cap() = %d, want %d", got, DefaultCapacity)
	}
	if got := New(1).Cap(); got != minCapacity {
		t.Fatalf("New(1).Cap() = %d, want %d", got, minCapacity)
	}
	if got := New(minCapacity + 1).Cap(); got != 2*minCapacity {
		t.Fatalf("New(min+1).Cap() = %d, want %d", got, 2*minCapacity)
	}
}

func TestSpanAndInstantRoundTrip(t *testing.T) {
	r := New(minCapacity)
	sp := r.Begin(CatIOEnc, NameDeflate, 3)
	sp.End(4096, 512)
	r.Instant(CatCompress, NameWildcard, 9, 42, 1)

	evs := r.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("Snapshot has %d events, want 2", len(evs))
	}
	span, inst := evs[0], evs[1]
	if span.Kind != KindSpan || span.Cat != CatIOEnc || span.Name != NameDeflate ||
		span.Lane != 3 || span.Arg0 != 4096 || span.Arg1 != 512 {
		t.Fatalf("span decoded wrong: %+v", span)
	}
	if span.Dur < 0 || span.Start < 0 {
		t.Fatalf("span has negative time: %+v", span)
	}
	if inst.Kind != KindInstant || inst.Cat != CatCompress || inst.Name != NameWildcard ||
		inst.Lane != 9 || inst.Arg0 != 42 || inst.Arg1 != 1 || inst.Dur != 0 {
		t.Fatalf("instant decoded wrong: %+v", inst)
	}
	if r.Total() != 2 || r.Drops() != 0 {
		t.Fatalf("Total=%d Drops=%d, want 2, 0", r.Total(), r.Drops())
	}
}

func TestMetaPackRoundTrip(t *testing.T) {
	for _, lane := range []int32{0, 1, 63, 1 << 20, -1} {
		m := packMeta(KindInstant, CatSim, NameWindow, lane)
		k, c, n, l := unpackMeta(m)
		if k != KindInstant || c != CatSim || n != NameWindow || l != lane {
			t.Fatalf("meta round-trip lane=%d: got %v %v %v %d", lane, k, c, n, l)
		}
	}
}

func TestWraparoundDrops(t *testing.T) {
	r := New(minCapacity)
	const emitted = minCapacity + 500
	for i := 0; i < emitted; i++ {
		r.Instant(CatCorpus, NameIngest, 0, int64(i), IngestFull)
	}
	if got := r.Total(); got != emitted {
		t.Fatalf("Total = %d, want %d", got, emitted)
	}
	if got := r.Drops(); got != 500 {
		t.Fatalf("Drops = %d, want 500", got)
	}
	evs := r.Snapshot()
	if len(evs) != minCapacity {
		t.Fatalf("Snapshot after wrap has %d events, want %d", len(evs), minCapacity)
	}
	// Oldest-first truncation: every surviving event is one of the newest.
	for _, e := range evs {
		if e.Seq <= 500 {
			t.Fatalf("event seq %d survived wraparound; oldest should drop first", e.Seq)
		}
	}
}

// TestConcurrentWriters hammers the ring from several goroutines while a
// reader snapshots continuously. Run under -race this checks the slot
// protocol; the arg encoding (Arg0 == Arg1 for every record) checks that no
// snapshot ever yields a torn record.
func TestConcurrentWriters(t *testing.T) {
	r := New(minCapacity)
	const writers, perWriter = 8, 2000
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent snapshotter
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range r.Snapshot() {
				if e.Arg0 != e.Arg1 {
					t.Errorf("torn record: Arg0=%d Arg1=%d", e.Arg0, e.Arg1)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := int64(g)<<32 | int64(i)
				if i%3 == 0 {
					r.Instant(CatSim, NameTurn, int32(g), v, v)
				} else {
					sp := r.Begin(CatMerge, NamePair, int32(g))
					sp.End(v, v)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if got := r.Total(); got != writers*perWriter {
		t.Fatalf("Total = %d, want %d", got, writers*perWriter)
	}
	for _, e := range r.Snapshot() {
		if e.Cat >= NumCats || e.Name >= NumNames {
			t.Fatalf("corrupt meta in final snapshot: %+v", e)
		}
		if e.Arg0 != e.Arg1 {
			t.Fatalf("torn record in final snapshot: %+v", e)
		}
	}
}

func TestChromeJSONRoundTrip(t *testing.T) {
	r := New(minCapacity)
	sp := r.Begin(CatCodec, NameEncode, 0)
	sp.End(12345, 64)
	r.Instant(CatReplay, NameMemoHit, 0, 7, 0)
	sp = r.Begin(CatIODec, NameInflate, 1)
	sp.End(512, 4096)

	var buf bytes.Buffer
	if err := r.WriteChromeJSON(&buf); err != nil {
		t.Fatalf("WriteChromeJSON: %v", err)
	}
	c, err := ReadChromeJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadChromeJSON: %v", err)
	}
	if err := c.Validate(true); err != nil {
		t.Fatalf("capture invalid: %v", err)
	}
	if c.Total != 3 || c.Drops != 0 || c.Truncated {
		t.Fatalf("header accounting wrong: %+v", c)
	}
	if len(c.Events) != 3 {
		t.Fatalf("capture has %d events, want 3", len(c.Events))
	}
	wantCats := []string{"blockio.dec", "codec", "replay"}
	if got := c.Cats(); len(got) != 3 || got[0] != wantCats[0] || got[1] != wantCats[1] || got[2] != wantCats[2] {
		t.Fatalf("Cats = %v, want %v", got, wantCats)
	}
	if lanes := c.Lanes("blockio.dec"); len(lanes) != 1 || lanes[0] != 1 {
		t.Fatalf("Lanes(blockio.dec) = %v, want [1]", lanes)
	}
	// Args survive with their schema names.
	var enc *CapturedEvent
	for i := range c.Events {
		if c.Events[i].Name == "encode" {
			enc = &c.Events[i]
		}
	}
	if enc == nil {
		t.Fatal("encode event missing from capture")
	}
	if enc.Args["bytes"] != 12345 || enc.Args["ranks"] != 64 {
		t.Fatalf("encode args = %v", enc.Args)
	}
	if c.CatNames[int64(CatCodec)] != "codec" {
		t.Fatalf("process_name metadata missing: %v", c.CatNames)
	}
	if c.LaneNames["4/1"] == "" { // CatIODec=4, lane 1
		t.Fatalf("thread_name metadata missing: %v", c.LaneNames)
	}
}

func TestTruncatedCaptureHeader(t *testing.T) {
	r := New(minCapacity)
	for i := 0; i < minCapacity+100; i++ {
		r.Instant(CatCorpus, NameCorpusGet, 0, 1, int64(i))
	}
	var buf bytes.Buffer
	if err := r.WriteChromeJSON(&buf); err != nil {
		t.Fatalf("WriteChromeJSON: %v", err)
	}
	c, err := ReadChromeJSON(&buf)
	if err != nil {
		t.Fatalf("ReadChromeJSON: %v", err)
	}
	if !c.Truncated || c.Drops != 100 {
		t.Fatalf("truncation not exported: drops=%d truncated=%v", c.Drops, c.Truncated)
	}
	if err := c.Validate(false); err != nil {
		t.Fatalf("truncated capture should pass non-strict validation: %v", err)
	}
	if err := c.Validate(true); err == nil {
		t.Fatal("Validate(true) accepted a truncated capture")
	}
}

func TestWriteChromeJSONSince(t *testing.T) {
	r := New(minCapacity)
	r.Instant(CatSim, NameTurn, 0, 1, 1)
	mark := r.Now()
	r.Instant(CatSim, NameTurn, 0, 2, 2)
	var buf bytes.Buffer
	if err := r.WriteChromeJSONSince(&buf, mark); err != nil {
		t.Fatalf("WriteChromeJSONSince: %v", err)
	}
	c, err := ReadChromeJSON(&buf)
	if err != nil {
		t.Fatalf("ReadChromeJSON: %v", err)
	}
	if len(c.Events) != 1 {
		t.Fatalf("since-export kept %d events, want 1", len(c.Events))
	}
	if c.Events[0].Args["events"] != 2 {
		t.Fatalf("since-export kept the wrong event: %v", c.Events[0].Args)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	base := func() *Capture {
		return &Capture{Events: []CapturedEvent{
			{Name: "pair", Cat: "merge", Ph: "X", TSUsec: 1, DurUsec: 2},
			{Name: "pair", Cat: "merge", Ph: "X", TSUsec: 3, DurUsec: 1},
		}}
	}
	if err := base().Validate(false); err != nil {
		t.Fatalf("well-formed capture rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Capture){
		"missing name":      func(c *Capture) { c.Events[0].Name = "" },
		"missing cat":       func(c *Capture) { c.Events[1].Cat = "" },
		"bad phase":         func(c *Capture) { c.Events[0].Ph = "B" },
		"negative dur":      func(c *Capture) { c.Events[0].DurUsec = -1 },
		"negative ts":       func(c *Capture) { c.Events[0].TSUsec = -1 },
		"non-monotonic":     func(c *Capture) { c.Events[1].TSUsec = 0.5 },
		"drops sans header": func(c *Capture) { c.Drops = 3 },
	} {
		c := base()
		mutate(c)
		if err := c.Validate(false); err == nil {
			t.Errorf("Validate accepted capture with %s", name)
		}
	}
}

func TestCaptureWriteText(t *testing.T) {
	r := New(minCapacity)
	sp := r.Begin(CatCompress, NameFinish, 12)
	sp.End(100, 90)
	r.Instant(CatCompress, NameWildcard, 12, 5, 1)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"flight recorder: 2 events", "compress/12", "finish", "wildcard_resolve", "events=100", "executed=90"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}
