// Package rankset provides stride-compressed sets of MPI process ranks.
//
// After inter-process merging, every vertex-data entry in the merged
// compressed trace tree is annotated with the set of ranks sharing that data
// (paper Figure 13: "<p0,p1: k>"). SPMD programs make these sets dense ranges
// like 1..P-2, so the stride encoding keeps them O(1) regardless of P.
package rankset

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stride"
)

// Set is an immutable-after-build set of ranks. Ranks must be added in
// strictly increasing order (Union handles the general case).
type Set struct {
	s stride.Set
}

// Single returns the set {r}.
func Single(r int) *Set {
	var s Set
	s.s.Add(int64(r))
	return &s
}

// Range returns the set {lo, lo+1, ..., hi}. It panics when hi < lo.
func Range(lo, hi int) *Set {
	if hi < lo {
		panic(fmt.Sprintf("rankset: invalid range [%d,%d]", lo, hi))
	}
	var s Set
	s.s.AppendRun(stride.Run{First: int64(lo), Stride: 1, Count: int64(hi-lo) + 1})
	return &s
}

// FromSorted builds a set from a strictly increasing slice of ranks.
func FromSorted(ranks []int) *Set {
	var s Set
	for _, r := range ranks {
		s.s.Add(int64(r))
	}
	return &s
}

// Len returns the number of ranks in the set.
func (s *Set) Len() int { return int(s.s.Len()) }

// Contains reports whether rank r is a member.
func (s *Set) Contains(r int) bool { return s.s.Contains(int64(r)) }

// Members materializes the set in increasing order.
func (s *Set) Members() []int {
	vals := s.s.Values()
	out := make([]int, len(vals))
	for i, v := range vals {
		out[i] = int(v)
	}
	return out
}

// Min returns the smallest member. It panics on an empty set.
func (s *Set) Min() int {
	if s.s.Len() == 0 {
		panic("rankset: Min of empty set")
	}
	return int(s.s.Runs()[0].First)
}

// Union returns the union of two sets. Members are merged and re-encoded; the
// operands are unchanged. Inputs are disjoint in the merge algorithm, but
// Union tolerates overlap for robustness.
func Union(a, b *Set) *Set {
	am, bm := a.Members(), b.Members()
	all := make([]int, 0, len(am)+len(bm))
	all = append(all, am...)
	all = append(all, bm...)
	sort.Ints(all)
	var out Set
	prev := -1 << 62
	for _, r := range all {
		if r == prev {
			continue
		}
		out.s.Add(int64(r))
		prev = r
	}
	return &out
}

// Equal reports set equality.
func (s *Set) Equal(o *Set) bool { return s.s.Equal(&o.s.Vector) }

// Runs exposes the underlying stride runs for serialization.
func (s *Set) Runs() []stride.Run { return s.s.Runs() }

// FromRuns rebuilds a set from serialized runs.
func FromRuns(runs []stride.Run) *Set {
	var s Set
	for _, r := range runs {
		s.s.AppendRun(r)
	}
	return &s
}

// SizeBytes estimates the serialized footprint.
func (s *Set) SizeBytes() int64 { return s.s.SizeBytes() }

// String renders the set, e.g. "ranks<1,30,1>" or "ranks{0}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteString("ranks")
	b.WriteString(s.s.String())
	return b.String()
}
