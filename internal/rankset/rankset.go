// Package rankset provides stride-compressed sets of MPI process ranks.
//
// After inter-process merging, every vertex-data entry in the merged
// compressed trace tree is annotated with the set of ranks sharing that data
// (paper Figure 13: "<p0,p1: k>"). SPMD programs make these sets dense ranges
// like 1..P-2, so the stride encoding keeps them O(1) regardless of P.
package rankset

import (
	"fmt"
	"strings"

	"repro/internal/fp"
	"repro/internal/stride"
)

// Set is an immutable-after-build set of ranks. Ranks must be added in
// strictly increasing order (Union handles the general case).
type Set struct {
	s stride.Set
}

// Single returns the set {r}.
func Single(r int) *Set {
	var s Set
	s.s.Add(int64(r))
	return &s
}

// InitSingle (re)initializes s in place to the one-member set {r} without
// heap allocation, letting callers carve per-entry sets out of slabs.
func (s *Set) InitSingle(r int) {
	s.s = stride.Set{}
	s.s.Add(int64(r))
}

// SeedSingle adds r to s, which the caller guarantees is zero-valued (freshly
// slab-carved): InitSingle minus the redundant receiver reset, on the merge's
// leaf-building hot path.
func (s *Set) SeedSingle(r int) { s.s.Add(int64(r)) }

// Range returns the set {lo, lo+1, ..., hi}. It panics when hi < lo.
func Range(lo, hi int) *Set {
	if hi < lo {
		panic(fmt.Sprintf("rankset: invalid range [%d,%d]", lo, hi))
	}
	var s Set
	s.s.AppendRun(stride.Run{First: int64(lo), Stride: 1, Count: int64(hi-lo) + 1})
	return &s
}

// FromSorted builds a set from a strictly increasing slice of ranks.
func FromSorted(ranks []int) *Set {
	var s Set
	for _, r := range ranks {
		s.s.Add(int64(r))
	}
	return &s
}

// Len returns the number of ranks in the set.
func (s *Set) Len() int { return int(s.s.Len()) }

// Contains reports whether rank r is a member.
func (s *Set) Contains(r int) bool { return s.s.Contains(int64(r)) }

// Members materializes the set in increasing order.
func (s *Set) Members() []int {
	vals := s.s.Values()
	out := make([]int, len(vals))
	for i, v := range vals {
		out[i] = int(v)
	}
	return out
}

// Min returns the smallest member. It panics on an empty set.
func (s *Set) Min() int {
	if s.s.Len() == 0 {
		panic("rankset: Min of empty set")
	}
	return int(s.s.Runs()[0].First)
}

// max returns the largest member. Caller guarantees the set is non-empty.
func (s *Set) max() int64 {
	runs := s.s.Runs()
	return runs[len(runs)-1].Last()
}

// TryAppend extends s in place with o's members when every member of o is
// strictly greater than every member of s (the common case in the binary
// merge reduction, where the right half's ranks all exceed the left half's).
// It reports whether the append happened; when it returns false, s is
// unchanged and the caller must fall back to Union. The run structure after a
// successful append is identical to adding o's members one by one, so sets
// built through TryAppend stay canonical (byte-stable serialization).
func (s *Set) TryAppend(o *Set) bool {
	if o.s.Len() == 0 {
		return true
	}
	if s.s.Len() > 0 && int64(o.Min()) <= s.max() {
		return false
	}
	for _, r := range o.s.Runs() {
		s.s.Vector.ExtendCanonical(r)
	}
	return true
}

// Union returns the union of two sets. Members are merged and re-encoded; the
// operands are unchanged. Inputs are disjoint in the merge algorithm, but
// Union tolerates overlap for robustness.
//
// When the operands occupy disjoint, ordered value ranges — the overwhelmingly
// common case in the merge's binary reduction, where each half covers a
// contiguous block of ranks — the union concatenates the run lists directly
// in O(runs) without materializing members. The general overlapping case
// falls back to a two-cursor merge over run values.
func Union(a, b *Set) *Set {
	var out Set
	switch {
	case a.s.Len() == 0:
		for _, r := range b.s.Runs() {
			out.s.Vector.ExtendCanonical(r)
		}
	case b.s.Len() == 0:
		for _, r := range a.s.Runs() {
			out.s.Vector.ExtendCanonical(r)
		}
	case a.max() < int64(b.Min()):
		for _, r := range a.s.Runs() {
			out.s.Vector.ExtendCanonical(r)
		}
		for _, r := range b.s.Runs() {
			out.s.Vector.ExtendCanonical(r)
		}
	case b.max() < int64(a.Min()):
		for _, r := range b.s.Runs() {
			out.s.Vector.ExtendCanonical(r)
		}
		for _, r := range a.s.Runs() {
			out.s.Vector.ExtendCanonical(r)
		}
	default:
		unionOverlap(&out, a, b)
	}
	return &out
}

// unionOverlap merges two interleaved sets value by value with a two-cursor
// walk over their runs, deduplicating as it goes. O(|a|+|b|) values, but only
// reached when rank ranges interleave, which the reduction never produces.
func unionOverlap(out *Set, a, b *Set) {
	ar, br := a.s.Runs(), b.s.Runs()
	var ai, bi int
	var aj, bj int64 // index within current run
	prev := int64(-1) << 62
	emit := func(v int64) {
		if v != prev {
			out.s.Vector.Append(v)
			prev = v
		}
	}
	for ai < len(ar) && bi < len(br) {
		av, bv := ar[ai].At(aj), br[bi].At(bj)
		if av <= bv {
			emit(av)
			if aj++; aj == ar[ai].Count {
				ai, aj = ai+1, 0
			}
		} else {
			emit(bv)
			if bj++; bj == br[bi].Count {
				bi, bj = bi+1, 0
			}
		}
	}
	for ; ai < len(ar); ai, aj = ai+1, 0 {
		for ; aj < ar[ai].Count; aj++ {
			emit(ar[ai].At(aj))
		}
	}
	for ; bi < len(br); bi, bj = bi+1, 0 {
		for ; bj < br[bi].Count; bj++ {
			emit(br[bi].At(bj))
		}
	}
}

// Equal reports set equality.
func (s *Set) Equal(o *Set) bool { return s.s.Equal(&o.s.Vector) }

// Hash folds the set's canonical run structure into h. Sets that compare
// Equal fold identically.
func (s *Set) Hash(h fp.Hash) fp.Hash { return s.s.Vector.Hash(h) }

// Load (re)builds the set in place from serialized runs, reusing the
// receiver's storage. Used by the slab-backed decoder, which carves Set
// values out of chunks instead of allocating one per entry.
func (s *Set) Load(runs []stride.Run) {
	s.s = stride.Set{}
	for _, r := range runs {
		s.s.AppendRun(r)
	}
}

// Runs exposes the underlying stride runs for serialization.
func (s *Set) Runs() []stride.Run { return s.s.Runs() }

// FromRuns rebuilds a set from serialized runs.
func FromRuns(runs []stride.Run) *Set {
	var s Set
	for _, r := range runs {
		s.s.AppendRun(r)
	}
	return &s
}

// SizeBytes estimates the serialized footprint.
func (s *Set) SizeBytes() int64 { return s.s.SizeBytes() }

// String renders the set, e.g. "ranks<1,30,1>" or "ranks{0}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteString("ranks")
	b.WriteString(s.s.String())
	return b.String()
}
