package rankset

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestSingle(t *testing.T) {
	s := Single(5)
	if s.Len() != 1 || !s.Contains(5) || s.Contains(4) {
		t.Fatalf("Single(5) misbehaves: %v", s)
	}
	if s.Min() != 5 {
		t.Fatalf("Min = %d", s.Min())
	}
}

func TestRange(t *testing.T) {
	s := Range(1, 30)
	if s.Len() != 30 {
		t.Fatalf("Len = %d", s.Len())
	}
	for r := 1; r <= 30; r++ {
		if !s.Contains(r) {
			t.Fatalf("missing %d", r)
		}
	}
	if s.Contains(0) || s.Contains(31) {
		t.Fatal("contains out-of-range rank")
	}
	// Dense ranges must be a single run regardless of size.
	if len(s.Runs()) != 1 {
		t.Fatalf("runs = %d", len(s.Runs()))
	}
}

func TestRangeInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Range(3, 2)
}

func TestUnionAdjacent(t *testing.T) {
	// Jacobi merge (paper Fig 4/13): {0} ∪ {1..P-2} ∪ {P-1} = {0..P-1}.
	p := 64
	u := Union(Union(Single(0), Range(1, p-2)), Single(p-1))
	if u.Len() != p {
		t.Fatalf("Len = %d, want %d", u.Len(), p)
	}
	if len(u.Runs()) != 1 {
		t.Fatalf("full range should be one run, got %d", len(u.Runs()))
	}
}

func TestUnionOverlapTolerated(t *testing.T) {
	u := Union(Range(0, 10), Range(5, 15))
	if u.Len() != 16 {
		t.Fatalf("Len = %d, want 16", u.Len())
	}
}

func TestEqualAndMembers(t *testing.T) {
	a := FromSorted([]int{0, 2, 4, 6})
	b := FromSorted([]int{0, 2, 4, 6})
	c := FromSorted([]int{0, 2, 4, 7})
	if !a.Equal(b) || a.Equal(c) {
		t.Fatal("Equal wrong")
	}
	if !reflect.DeepEqual(a.Members(), []int{0, 2, 4, 6}) {
		t.Fatalf("Members = %v", a.Members())
	}
}

func TestFromRunsRoundTrip(t *testing.T) {
	a := FromSorted([]int{1, 3, 5, 7, 20, 21, 22})
	b := FromRuns(a.Runs())
	if !a.Equal(b) {
		t.Fatal("round trip failed")
	}
}

func TestString(t *testing.T) {
	if got := Range(1, 30).String(); got != "ranks[<1,30,1>]" {
		t.Fatalf("String = %q", got)
	}
}

func TestQuickUnionMatchesNaive(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		ax, ay := dedupSorted(xs), dedupSorted(ys)
		if len(ax) == 0 || len(ay) == 0 {
			return true
		}
		u := Union(FromSorted(ax), FromSorted(ay))
		want := map[int]bool{}
		for _, x := range ax {
			want[x] = true
		}
		for _, y := range ay {
			want[y] = true
		}
		if u.Len() != len(want) {
			return false
		}
		for r := range want {
			if !u.Contains(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func dedupSorted(xs []uint8) []int {
	m := map[int]bool{}
	for _, x := range xs {
		m[int(x)] = true
	}
	out := make([]int, 0, len(m))
	for x := range m {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

func TestEvenOddSplit(t *testing.T) {
	// SPMD even/odd branch split compresses to strided sets.
	even := []int{}
	odd := []int{}
	for r := 0; r < 128; r++ {
		if r%2 == 0 {
			even = append(even, r)
		} else {
			odd = append(odd, r)
		}
	}
	e, o := FromSorted(even), FromSorted(odd)
	if len(e.Runs()) != 1 || len(o.Runs()) != 1 {
		t.Fatalf("even/odd sets should be single strided runs: %d %d", len(e.Runs()), len(o.Runs()))
	}
	if e.SizeBytes() != 24 {
		t.Fatalf("SizeBytes = %d", e.SizeBytes())
	}
}
