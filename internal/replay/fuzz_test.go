package replay

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// progGen emits random structured MPL programs whose control flow depends
// only on loop variables (never on rank), so every rank executes the same
// collective sequence and the program cannot deadlock. This exercises the
// whole pipeline — nested loops, branches, else-chains, user calls, zero-
// iteration loops — against the lossless round-trip guarantee.
type progGen struct {
	rng    *rand.Rand
	buf    strings.Builder
	indent int
	nextID int
	funcs  []string
}

func (g *progGen) line(format string, args ...any) {
	g.buf.WriteString(strings.Repeat("\t", g.indent))
	fmt.Fprintf(&g.buf, format, args...)
	g.buf.WriteByte('\n')
}

func (g *progGen) comm() {
	switch g.rng.Intn(4) {
	case 0:
		g.line("barrier();")
	case 1:
		g.line("allreduce(%d);", 8*(1+g.rng.Intn(4)))
	case 2:
		g.line("bcast(0, %d);", 16*(1+g.rng.Intn(8)))
	default:
		g.line("reduce(0, %d);", 8*(1+g.rng.Intn(4)))
	}
}

func (g *progGen) block(depth int, scope []string) {
	stmts := 1 + g.rng.Intn(3)
	for s := 0; s < stmts; s++ {
		switch {
		case depth > 0 && g.rng.Intn(3) == 0:
			v := fmt.Sprintf("i%d", g.nextID)
			g.nextID++
			lo := g.rng.Intn(3)
			hi := lo + g.rng.Intn(4) // may be zero iterations
			g.line("for var %s = %d; %s < %d; %s = %s + 1 {", v, lo, v, hi, v, v)
			g.indent++
			g.block(depth-1, append(scope, v))
			g.indent--
			g.line("}")
		case depth > 0 && g.rng.Intn(3) == 0:
			cond := fmt.Sprintf("%d %% 2 == 0", g.rng.Intn(10))
			if len(scope) > 0 && g.rng.Intn(2) == 0 {
				v := scope[g.rng.Intn(len(scope))]
				cond = fmt.Sprintf("%s %% 2 == %d", v, g.rng.Intn(2))
			}
			g.line("if %s {", cond)
			g.indent++
			g.block(depth-1, scope)
			g.indent--
			if g.rng.Intn(2) == 0 {
				g.line("} else {")
				g.indent++
				g.block(depth-1, scope)
				g.indent--
			}
			g.line("}")
		case len(g.funcs) > 0 && g.rng.Intn(4) == 0:
			g.line("%s();", g.funcs[g.rng.Intn(len(g.funcs))])
		default:
			g.comm()
		}
	}
}

func (g *progGen) generate() string {
	nfuncs := g.rng.Intn(3)
	var helperBodies []string
	for f := 0; f < nfuncs; f++ {
		// Helpers may call previously generated helpers only (keeps the
		// call graph acyclic).
		name := fmt.Sprintf("helper%d", f)
		g.buf.Reset()
		g.indent = 1
		g.block(1+g.rng.Intn(2), nil)
		helperBodies = append(helperBodies, fmt.Sprintf("func %s() {\n%s}", name, g.buf.String()))
		g.funcs = append(g.funcs, name)
	}
	g.buf.Reset()
	g.indent = 1
	g.block(3, nil)
	main := fmt.Sprintf("func main() {\n%s}", g.buf.String())
	return main + "\n" + strings.Join(helperBodies, "\n")
}

func TestFuzzRoundTripRandomStructuredPrograms(t *testing.T) {
	iters := 30
	if testing.Short() {
		iters = 8
	}
	for seed := 0; seed < iters; seed++ {
		g := &progGen{rng: rand.New(rand.NewSource(int64(seed)))}
		src := g.generate()
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			raw, rep := roundTrip(t, src, 3)
			for rank := range raw {
				if err := Equivalent(raw[rank], rep[rank]); err != nil {
					t.Fatalf("rank %d: %v\nprogram:\n%s", rank, err, src)
				}
			}
		})
	}
}
