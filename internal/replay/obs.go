package replay

import "repro/internal/obs"

// sink is the package's attached metrics sink; nil (the default) disables
// observation. Wired once at startup via SetObs and only read afterwards.
var sink *obs.Sink

// SetObs attaches a metrics sink to the replay package. Call before replaying;
// a nil sink disables observation. Not safe to call concurrently with a
// running replay.
func SetObs(s *obs.Sink) { sink = s }
