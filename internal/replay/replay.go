// Package replay decompresses CYPRESS trace trees back into per-rank event
// sequences (paper Section V): a pre-order traversal of the CTT that expands
// loop vertices by their recorded iteration counts, selects branch arms by
// their recorded taken indices, and prints the run-length records of comm
// leaves. The regenerated sequence is what trace-driven simulators consume.
package replay

import (
	"fmt"
	"sync"

	"repro/internal/cst"
	"repro/internal/ctt"
	"repro/internal/obs"
	"repro/internal/stride"
	"repro/internal/trace"
)

// Source provides one rank's view of a compressed trace tree. Both the
// per-rank ctt.RankCTT and the post-merge tree implement it.
type Source interface {
	Tree() *cst.Tree
	// Counts returns the loop/pseudo-loop activation counts for a vertex,
	// nil when the rank never executed it.
	Counts(gid int32) *stride.Vector
	// Taken returns the branch-arm taken set, nil when never taken.
	Taken(gid int32) *stride.Set
	// Records returns the comm-leaf records, nil when never executed.
	Records(gid int32) []*ctt.CommRecord
	// Cycles returns the record-cycle annotations for a leaf.
	Cycles(gid int32) []ctt.Cycle
}

// RankSource adapts a per-rank CTT to the Source interface.
type RankSource struct {
	C *ctt.RankCTT
}

// Tree implements Source.
func (s RankSource) Tree() *cst.Tree { return s.C.Tree }

// Counts implements Source.
func (s RankSource) Counts(gid int32) *stride.Vector { return &s.C.Data[gid].Counts }

// Taken implements Source.
func (s RankSource) Taken(gid int32) *stride.Set { return &s.C.Data[gid].Taken }

// Records implements Source.
func (s RankSource) Records(gid int32) []*ctt.CommRecord { return s.C.Data[gid].Records }

// Cycles implements Source.
func (s RankSource) Cycles(gid int32) []ctt.Cycle { return s.C.Data[gid].Cycles }

// Events decompresses rank's event sequence, invoking emit for each event in
// original program order. Recursion (pseudo-loop) replay is approximate, as
// in the paper: levels replay sequentially rather than interleaved. The event
// pointer passed to emit is only valid for the duration of the callback.
func Events(src Source, rank int, emit func(e *trace.Event)) error {
	var ev trace.Event
	var n int64
	err := walkSteps(src, rank, func(rec *ctt.CommRecord, k int64) {
		synthesize(&ev, rec, rank, k)
		emit(&ev)
		n++
	})
	sink.Add(obs.ReplayEventsEmitted, n)
	return err
}

// Step is one emitted event of a replay skeleton: the source record and the
// occurrence index within it. A skeleton captures everything about a rank's
// tree walk except the rank-relative fields (peer, which PeerForAt derives
// per rank), so ranks whose resolved views are identical can share one
// skeleton and skip the tree walk entirely (see merge.Streamer).
type Step struct {
	Rec *ctt.CommRecord
	K   int64
}

// Skeleton walks src once and returns rank's replay skeleton. When emit is
// non-nil, events are additionally synthesized and emitted during the walk,
// exactly as Events would — building a skeleton for the first rank of a
// group costs no second pass.
func Skeleton(src Source, rank int, emit func(e *trace.Event)) ([]Step, error) {
	var steps []Step
	var ev trace.Event
	err := walkSteps(src, rank, func(rec *ctt.CommRecord, k int64) {
		steps = append(steps, Step{Rec: rec, K: k})
		if emit != nil {
			synthesize(&ev, rec, rank, k)
			emit(&ev)
		}
	})
	if err != nil {
		return nil, err
	}
	return steps, nil
}

// evPool recycles the one event buffer a skeleton scan synthesizes into; the
// buffer escapes through the emit callback, so without pooling every
// EmitSkeleton call would heap-allocate it and steady-state streaming replay
// would cost one allocation per rank.
var evPool = sync.Pool{New: func() any { return new(trace.Event) }}

// EmitSkeleton synthesizes the events of a skeleton from rank's perspective,
// in order. Only the rank-relative fields (peer) are re-evaluated; the
// emitted sequence is byte-identical to a full Events walk of the same
// resolved data. The event pointer is only valid during the callback.
func EmitSkeleton(steps []Step, rank int, emit func(e *trace.Event)) {
	ev := evPool.Get().(*trace.Event)
	for i := range steps {
		synthesize(ev, steps[i].Rec, rank, steps[i].K)
		emit(ev)
	}
	*ev = trace.Event{} // drop record-aliased slices before pooling
	evPool.Put(ev)
	sink.Add(obs.ReplayEventsEmitted, int64(len(steps)))
}

// Cursor is a pull iterator over a replay skeleton: the per-rank-iterator
// entry point streaming consumers (simmpi.SimulateStream) drive. It holds
// O(1) state per rank on top of the shared skeleton.
type Cursor struct {
	steps []Step
	rank  int
	i     int
	ev    trace.Event
	// counted marks the cursor's events as already folded into the sink's
	// emission tally (done once, on exhaustion).
	counted bool
}

// NewCursor returns a cursor over steps from rank's perspective.
func NewCursor(steps []Step, rank int) *Cursor {
	return &Cursor{steps: steps, rank: rank}
}

// Next returns the next event, or false when the sequence is exhausted. The
// returned pointer is only valid until the following Next call.
func (c *Cursor) Next() (*trace.Event, bool) {
	if c.i >= len(c.steps) {
		if !c.counted {
			c.counted = true
			sink.Add(obs.ReplayEventsEmitted, int64(len(c.steps)))
		}
		return nil, false
	}
	st := &c.steps[c.i]
	c.i++
	synthesize(&c.ev, st.Rec, c.rank, st.K)
	return &c.ev, true
}

// Len returns the total number of events the cursor will yield.
func (c *Cursor) Len() int { return len(c.steps) }

// Rewind resets the cursor to the start of its skeleton, so one prepared
// cursor can feed repeated simulations (worker sweeps, benchmarks) without
// re-resolving the rank. Each pass counts toward the sink's emission tally.
func (c *Cursor) Rewind() {
	c.i = 0
	c.counted = false
}

// Clone returns an independent cursor over the same shared skeleton,
// positioned at the start. Clones share no mutable state, so concurrent
// consumers can walk one memoized class skeleton side by side.
func (c *Cursor) Clone() *Cursor {
	return NewCursor(c.steps, c.rank)
}

// synthesize materializes one replayed event from a record occurrence; the
// single definition shared by Events, EmitSkeleton, and Cursor keeps every
// replay path byte-identical.
func synthesize(ev *trace.Event, rec *ctt.CommRecord, rank int, k int64) {
	*ev = rec.Ev
	ev.Peer = rec.PeerForAt(rank, k)
	ev.DurationNS = rec.Time.Mean
	ev.ComputeNS = rec.Compute.Mean
}

// walkSteps drives the pre-order tree walk, invoking step for each record
// occurrence in original program order.
func walkSteps(src Source, rank int, step func(rec *ctt.CommRecord, k int64)) error {
	r := &replayer{
		src:   src,
		rank:  rank,
		step:  step,
		rec:   map[int32]*recCursor{},
		act:   map[int32]int64{},
		reach: map[reachKey]int64{},
	}
	tree := src.Tree()
	// MPI_Init lives first on the root's record list, MPI_Finalize second.
	if err := r.emitLeaf(tree.Root); err != nil {
		return err
	}
	if _, err := r.walkBody(tree.Root); err != nil {
		return err
	}
	if err := r.emitLeaf(tree.Root); err != nil {
		return err
	}
	return nil
}

type reachKey struct {
	parent int32
	site   int32
}

type recCursor struct {
	idx      int
	consumed int64
	rep      int64 // completed repetitions of the active record cycle
}

type replayer struct {
	src   Source
	rank  int
	step  func(rec *ctt.CommRecord, k int64)
	rec   map[int32]*recCursor
	act   map[int32]int64 // next activation index per loop vertex
	reach map[reachKey]int64
}

func (r *replayer) emitLeaf(v *cst.Vertex) error {
	records := r.src.Records(v.GID)
	cur := r.rec[v.GID]
	if cur == nil {
		cur = &recCursor{}
		r.rec[v.GID] = cur
	}
	if cur.idx >= len(records) {
		return fmt.Errorf("replay: rank %d: leaf %d (%v) out of records", r.rank, v.GID, v.Op)
	}
	rec := records[cur.idx]
	r.step(rec, cur.consumed)
	cur.consumed++
	if cur.consumed >= rec.Count {
		cur.idx++
		cur.consumed = 0
		// Record cycles: after the block's last record, loop back to its
		// start until the repetitions are exhausted.
		for _, cy := range r.src.Cycles(v.GID) {
			if int32(cur.idx) == cy.Start+cy.Len {
				cur.rep++
				if cur.rep < cy.Reps {
					cur.idx = int(cy.Start)
				} else {
					cur.rep = 0
				}
				break
			}
		}
	}
	return nil
}

// nextActivation consumes the next activation count for a loop vertex.
func (r *replayer) nextActivation(v *cst.Vertex) (int64, error) {
	counts := r.src.Counts(v.GID)
	idx := r.act[v.GID]
	if counts == nil || idx >= counts.Len() {
		return 0, fmt.Errorf("replay: rank %d: loop %d out of activations", r.rank, v.GID)
	}
	r.act[v.GID] = idx + 1
	return counts.At(idx), nil
}

// walkBody replays the children of v once; it reports whether execution
// unwound through an early return.
func (r *replayer) walkBody(v *cst.Vertex) (bool, error) {
	children := v.Children
	for i := 0; i < len(children); {
		c := children[i]
		switch c.Kind {
		case cst.KindComm:
			if err := r.emitLeaf(c); err != nil {
				return false, err
			}
			i++
		case cst.KindLoop:
			n, err := r.nextActivation(c)
			if err != nil {
				return false, err
			}
			for k := int64(0); k < n; k++ {
				ret, err := r.walkBody(c)
				if err != nil {
					return false, err
				}
				if ret {
					return true, nil
				}
			}
			if c.Returns && n >= 1 {
				// The loop body ends in an unconditional return; having
				// iterated at least once means the function exited here.
				return true, nil
			}
			i++
		case cst.KindBranch:
			// Group the consecutive arms of this if site.
			j := i
			for j < len(children) && children[j].Kind == cst.KindBranch && children[j].Site == c.Site {
				j++
			}
			key := reachKey{v.GID, int32(c.Site)}
			idx := r.reach[key]
			r.reach[key] = idx + 1
			for _, arm := range children[i:j] {
				taken := r.src.Taken(arm.GID)
				if taken != nil && taken.Contains(idx) {
					ret, err := r.walkBody(arm)
					if err != nil {
						return false, err
					}
					if ret || arm.Returns {
						return true, nil
					}
					break
				}
			}
			i = j
		case cst.KindCall:
			if c.Recursive {
				levels, err := r.nextActivation(c)
				if err != nil {
					return false, err
				}
				for k := int64(0); k < levels; k++ {
					// Each recursion level replays one pass of the unrolled
					// body; early returns end the level, not the caller.
					if _, err := r.walkBody(c); err != nil {
						return false, err
					}
				}
			} else {
				// A non-recursive call's return never unwinds the caller.
				if _, err := r.walkBody(c); err != nil {
					return false, err
				}
			}
			i++
		case cst.KindRecCall:
			// Recursion loop-backs were already accounted for in the
			// pseudo-loop's level count.
			i++
		default:
			return false, fmt.Errorf("replay: unexpected vertex kind %v", c.Kind)
		}
	}
	return false, nil
}

// Sequence materializes the full decompressed event list for one rank.
func Sequence(src Source, rank int) ([]trace.Event, error) {
	var out []trace.Event
	err := Events(src, rank, func(e *trace.Event) {
		out = append(out, *e)
	})
	return out, err
}

// Equivalent compares a raw traced sequence against a decompressed one,
// ignoring the representational differences compression introduces: request
// identifiers are rewritten to GIDs (list lengths must still match), timing
// is summarized, completion records drop per-request resolved sources, and
// non-blocking wildcard receives carry the resolved source instead of
// AnySource. Everything else must match exactly, in order.
func Equivalent(raw, replayed []trace.Event) error {
	if len(raw) != len(replayed) {
		return fmt.Errorf("replay: length mismatch: raw %d vs replayed %d", len(raw), len(replayed))
	}
	for i := range raw {
		a, b := raw[i], replayed[i]
		if a.Op != b.Op || a.Size != b.Size || a.Tag != b.Tag || a.Comm != b.Comm ||
			a.Wildcard != b.Wildcard || len(a.Reqs) != len(b.Reqs) {
			return fmt.Errorf("replay: event %d mismatch: raw %v vs replayed %v", i, a, b)
		}
		peerOK := a.Peer == b.Peer
		if a.Op == trace.OpIrecv && a.Wildcard {
			// Raw has AnySource; replayed has the resolved source.
			peerOK = b.Peer != trace.AnySource
		}
		if !peerOK {
			return fmt.Errorf("replay: event %d peer mismatch: raw %v vs replayed %v", i, a, b)
		}
	}
	return nil
}
