package replay

import (
	"sort"
	"testing"

	"repro/internal/cst"
	"repro/internal/ctt"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/mpisim"
	"repro/internal/timestat"
	"repro/internal/trace"
)

// tee fans a rank's stream to both a raw collector and the compressor.
type tee struct {
	raw  *trace.CollectorSink
	comp *ctt.Compressor
}

func (t tee) LoopEnter(s int32)           { t.comp.LoopEnter(s) }
func (t tee) LoopIter(s int32)            { t.comp.LoopIter(s) }
func (t tee) BranchEnter(s int32, a int8) { t.comp.BranchEnter(s, a) }
func (t tee) BranchSkip(s int32)          { t.comp.BranchSkip(s) }
func (t tee) CallEnter(s int32)           { t.comp.CallEnter(s) }
func (t tee) StructExit()                 { t.comp.StructExit() }
func (t tee) CommSite(s int32)            { t.comp.CommSite(s) }
func (t tee) Event(e *trace.Event)        { t.raw.Event(e); t.comp.Event(e) }
func (t tee) Finalize()                   { t.comp.Finalize() }

// roundTrip runs src on n ranks, compresses, decompresses, and returns both
// raw and replayed sequences per rank.
func roundTrip(t *testing.T, src string, n int) (raw [][]trace.Event, rep [][]trace.Event) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := lang.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	irProg, err := ir.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	tree, err := cst.Build(irProg)
	if err != nil {
		t.Fatalf("cst: %v", err)
	}
	sinks := make([]trace.Sink, n)
	raws := make([]*trace.CollectorSink, n)
	comps := make([]*ctt.Compressor, n)
	for i := range sinks {
		raws[i] = &trace.CollectorSink{}
		comps[i] = ctt.NewCompressor(tree, i, timestat.ModeMeanStddev)
		sinks[i] = tee{raws[i], comps[i]}
	}
	if _, err := mpisim.Run(n, mpisim.DefaultParams(), sinks, func(r *mpisim.Rank) {
		interp.Execute(prog, r)
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw = make([][]trace.Event, n)
	rep = make([][]trace.Event, n)
	for i := range sinks {
		raw[i] = raws[i].Events
		seq, err := Sequence(RankSource{comps[i].Finish()}, i)
		if err != nil {
			t.Fatalf("rank %d replay: %v\n%s", i, err, tree.Dump())
		}
		rep[i] = seq
	}
	return raw, rep
}

func assertLossless(t *testing.T, src string, n int) {
	t.Helper()
	raw, rep := roundTrip(t, src, n)
	for rank := range raw {
		if err := Equivalent(raw[rank], rep[rank]); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestRoundTripStraightLine(t *testing.T) {
	assertLossless(t, `
func main() {
	barrier();
	bcast(0, 1024);
	reduce(0, 8);
}`, 4)
}

func TestRoundTripJacobi(t *testing.T) {
	assertLossless(t, `
func main() {
	for var k = 0; k < 20; k = k + 1 {
		if rank < size - 1 { send(rank + 1, 8000, 0); }
		if rank > 0 { recv(rank - 1, 8000, 0); }
		if rank > 0 { send(rank - 1, 8000, 0); }
		if rank < size - 1 { recv(rank + 1, 8000, 0); }
	}
	reduce(0, 8);
}`, 6)
}

func TestRoundTripNestedVaryingLoops(t *testing.T) {
	assertLossless(t, `
func main() {
	for var i = 0; i < 7; i = i + 1 {
		bcast(0, 64);
		for var j = 0; j < i; j = j + 1 {
			var r1 = isend((rank + 1) % size, 32, j);
			var r2 = irecv((rank + size - 1) % size, 32, j);
			waitall();
			compute(r1 + r2);
		}
	}
}`, 4)
}

func TestRoundTripBranchAlternation(t *testing.T) {
	assertLossless(t, `
func main() {
	for var i = 0; i < 12; i = i + 1 {
		if i % 3 == 0 {
			allreduce(8);
		} else {
			if i % 3 == 1 { barrier(); }
		}
	}
}`, 3)
}

func TestRoundTripUserFunctions(t *testing.T) {
	assertLossless(t, `
func main() {
	for var i = 0; i < 5; i = i + 1 {
		halo();
		halo();
	}
	collect(0);
}
func halo() {
	if rank < size - 1 { send(rank + 1, 100, 1); }
	if rank > 0 { recv(rank - 1, 100, 1); }
}
func collect(root) {
	gather(root, 16);
}`, 5)
}

func TestRoundTripEarlyReturn(t *testing.T) {
	// The return arm is comm-free; replay must still skip the allreduce on
	// even passes rather than shifting events between iterations.
	assertLossless(t, `
func main() {
	for var i = 0; i < 6; i = i + 1 {
		f(i);
		barrier();
	}
}
func f(n) {
	if n % 2 == 0 { return; }
	allreduce(8);
}`, 2)
}

func TestRoundTripReturnInsideLoop(t *testing.T) {
	assertLossless(t, `
func main() {
	for var i = 0; i < 4; i = i + 1 { f(i); }
	barrier();
}
func f(n) {
	for var j = 0; j < 10; j = j + 1 {
		if j == n { return; }
		bcast(0, 32);
	}
	reduce(0, 8);
}`, 2)
}

func TestRoundTripZeroIterationLoops(t *testing.T) {
	assertLossless(t, `
func main() {
	for var i = 0; i < 5; i = i + 1 {
		for var j = 0; j < i - 3; j = j + 1 {
			barrier();
		}
		allreduce(8);
	}
}`, 2)
}

func TestRoundTripWildcard(t *testing.T) {
	raw, rep := roundTrip(t, `
func main() {
	if rank == 0 {
		for var i = 0; i < size - 1; i = i + 1 {
			recv(ANY, 64, 0);
		}
	} else {
		send(0, 64, 0);
	}
}`, 4)
	for rank := range raw {
		if err := Equivalent(raw[rank], rep[rank]); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestRoundTripNonblockingWildcard(t *testing.T) {
	raw, rep := roundTrip(t, `
func main() {
	if rank == 0 {
		var a = irecv(ANY, 64, 0);
		var b = irecv(ANY, 64, 0);
		var c = irecv(ANY, 64, 0);
		compute(a + b + c);
		waitall();
	} else {
		send(0, 64, 0);
	}
}`, 4)
	// Wildcard resolution order may differ from post order; compare event
	// op/param multisets plus exact op sequence.
	for rank := range raw {
		if len(raw[rank]) != len(rep[rank]) {
			t.Fatalf("rank %d length mismatch", rank)
		}
		for i := range raw[rank] {
			if raw[rank][i].Op != rep[rank][i].Op {
				t.Fatalf("rank %d op sequence differs at %d", rank, i)
			}
		}
		if !samePeerMultiset(raw[rank], rep[rank]) {
			t.Fatalf("rank %d resolved peers differ", rank)
		}
	}
}

func samePeerMultiset(a, b []trace.Event) bool {
	pa, pb := []int{}, []int{}
	for _, e := range a {
		if e.Op == trace.OpRecv || e.Op == trace.OpIrecv {
			pa = append(pa, e.Peer)
		}
	}
	for _, e := range b {
		if e.Op == trace.OpRecv || e.Op == trace.OpIrecv {
			pb = append(pb, e.Peer)
		}
	}
	// Raw wildcard irecvs record AnySource at post time; drop them and
	// compare resolved receives only when lengths allow.
	filter := func(xs []int) []int {
		out := xs[:0]
		for _, x := range xs {
			if x != trace.AnySource {
				out = append(out, x)
			}
		}
		sort.Ints(out)
		return out
	}
	pa, pb = filter(pa), filter(pb)
	if len(pb) < len(pa) {
		return false
	}
	pb = pb[:len(pa)]
	for i := range pa {
		if pa[i] != pb[i] {
			return false
		}
	}
	return true
}

func TestRoundTripLinearRecursion(t *testing.T) {
	// Pre-call recursion (work before the recursive call) replays exactly.
	assertLossless(t, `
func main() { f(5); barrier(); }
func f(n) {
	if n == 0 { return; }
	bcast(0, 8);
	f(n - 1);
}`, 2)
}

func TestRoundTripPostCallRecursionMultiset(t *testing.T) {
	// Post-call work interleaves across recursion levels; the paper's
	// pseudo-loop conversion makes replay approximate here. The event
	// multiset and count must still match.
	raw, rep := roundTrip(t, `
func main() { f(4); }
func f(n) {
	if n == 0 { return; }
	bcast(0, 8);
	f(n - 1);
	reduce(0, 8);
}`, 2)
	for rank := range raw {
		if len(raw[rank]) != len(rep[rank]) {
			t.Fatalf("rank %d: raw %d vs replayed %d events", rank, len(raw[rank]), len(rep[rank]))
		}
		counts := func(evs []trace.Event) map[trace.Op]int {
			m := map[trace.Op]int{}
			for _, e := range evs {
				m[e.Op]++
			}
			return m
		}
		ca, cb := counts(raw[rank]), counts(rep[rank])
		for op, n := range ca {
			if cb[op] != n {
				t.Fatalf("rank %d: op %v count %d vs %d", rank, op, n, cb[op])
			}
		}
	}
}

func TestRoundTripWhileDoubling(t *testing.T) {
	assertLossless(t, `
func main() {
	var l = 1;
	while l < size {
		var partner = rank + l;
		if partner < size { send(partner % size, 64, 0); }
		var lo = rank - l;
		if lo >= 0 && rank - l < size { recv(rank - l, 64, 0); }
		l = l * 2;
	}
}`, 1)
}

func TestRoundTripDurationsSummarized(t *testing.T) {
	_, rep := roundTrip(t, `
func main() {
	for var i = 0; i < 30; i = i + 1 { allreduce(8); }
}`, 2)
	for _, e := range rep[0] {
		if e.Op == trace.OpAllreduce && e.DurationNS <= 0 {
			t.Fatal("replayed durations must carry the recorded mean")
		}
	}
}

func TestEquivalentDetectsMismatches(t *testing.T) {
	a := []trace.Event{{Op: trace.OpSend, Size: 10, Peer: 1}}
	b := []trace.Event{{Op: trace.OpSend, Size: 10, Peer: 2}}
	if err := Equivalent(a, b); err == nil {
		t.Fatal("peer mismatch not detected")
	}
	if err := Equivalent(a, a[:0]); err == nil {
		t.Fatal("length mismatch not detected")
	}
	c := []trace.Event{{Op: trace.OpRecv, Size: 10, Peer: 1}}
	if err := Equivalent(a, c); err == nil {
		t.Fatal("op mismatch not detected")
	}
}

func TestRoundTripLevelCyclingParams(t *testing.T) {
	// MG-style pattern: one leaf whose size and peer change with the level
	// loop, repeated across V-cycles. Record-cycle folding compresses it;
	// replay must still reproduce the exact sequence.
	assertLossless(t, `
func main() {
	for var it = 0; it < 9; it = it + 1 {
		for var l = 1; l < 5; l = l + 1 {
			if rank + l < size { send(rank + l, 1000 * l, 0); }
			if rank - l >= 0 { recv(rank - l, 1000 * l, 0); }
		}
	}
}`, 6)
}

func TestRoundTripCycleWithPartialTail(t *testing.T) {
	// The cyclic block is interrupted mid-cycle by a trailing phase: the
	// partial repetition must be materialized, not lost.
	assertLossless(t, `
func main() {
	for var it = 0; it < 7; it = it + 1 {
		bcast(0, 100);
		bcast(0, 200);
		bcast(0, 300);
	}
	bcast(0, 100);
	bcast(0, 200);
	allreduce(8);
}`, 2)
}

func TestRoundTripNestedCycles(t *testing.T) {
	// Two separate periodic phases on the same leaf: two cycles in sequence.
	assertLossless(t, `
func main() {
	for var it = 0; it < 6; it = it + 1 {
		bcast(0, 10);
		bcast(0, 20);
	}
	barrier();
	for var it = 0; it < 5; it = it + 1 {
		bcast(0, 30);
		bcast(0, 40);
		bcast(0, 50);
	}
}`, 2)
}

func TestRoundTripWaitsomePartialCompletion(t *testing.T) {
	// Partial completion (paper Section IV-A: MPI_Waitsome etc. recorded via
	// GIDs): the number of requests each waitsome reaps is nondeterministic,
	// but the recorded trace must still replay its own run exactly.
	raw, rep := roundTrip(t, `
func main() {
	var peer = (rank + 1) % size;
	var from = (rank + size - 1) % size;
	for var i = 0; i < 8; i = i + 1 {
		irecv(from, 128, i);
		isend(peer, 128, i);
		var done = 0;
		while done < 2 {
			done = done + waitsome();
		}
	}
}`, 4)
	for rank := range raw {
		if err := Equivalent(raw[rank], rep[rank]); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestRoundTripTestany(t *testing.T) {
	raw, rep := roundTrip(t, `
func main() {
	var peer = (rank + 1) % size;
	var from = (rank + size - 1) % size;
	irecv(from, 64, 0);
	send(peer, 64, 0);
	var got = 0;
	while got == 0 {
		got = testany();
	}
}`, 3)
	for rank := range raw {
		if err := Equivalent(raw[rank], rep[rank]); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}
