package simmpi

import (
	"testing"

	"repro/internal/mpisim"
)

// TestSimulateAllocsSteadyState pins the engine's allocation shape: all
// allocation happens at setup (ranks, shards, worker pool) or scales with
// peak state (match-queue capacity, collective groups), and the steady-state
// window loop allocates nothing. The fixture is the chain halo exchange: its
// per-iteration waitall keeps neighbor drift — and with it match-queue
// depth — bounded by a constant, so 10x more iterations must leave
// allocs/run essentially unchanged, at workers=1 (the sequential driver)
// and workers=4 (the epoch-parallel driver) alike.
func TestSimulateAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	params := mpisim.DefaultParams()
	measure := func(workers, iters int) float64 {
		seqs := chainTrace(64, iters)
		return testing.AllocsPerRun(5, func() {
			if _, err := SimulatePar(seqs, params, workers); err != nil {
				t.Fatal(err)
			}
		})
	}
	var seqWarm float64
	for _, w := range []int{1, 4} {
		// 80 iterations is past the warm-up knee (queue buffers and scratch
		// at full capacity); from there, 4x more work may only move the
		// count by the measurement floor (a few GC-cycle allocations), and
		// the absolute ceiling rules out even 0.05 allocs/event across the
		// run's ~100k events.
		warm := measure(w, 80)
		long := measure(w, 320)
		if long > warm+64 {
			t.Errorf("workers=%d: 4x work moved allocs/run from %.0f to %.0f; window loop is allocating",
				w, warm, long)
		}
		if long > 2048 {
			t.Errorf("workers=%d: allocs/run %.0f exceeds budget 2048", w, long)
		}
		if w == 1 {
			seqWarm = warm
		} else if warm > seqWarm+128 {
			// The parallel driver's overhead over the sequential one
			// (goroutines, barrier, active list) is a small constant.
			t.Errorf("parallel driver allocates %.0f/run vs sequential %.0f", warm, seqWarm)
		}
	}
}
