package simmpi

// The epoch-parallel driver (workers > 1): a conservative parallel
// discrete-event schedule over the shared engine in simmpi.go.
//
// Each epoch advances every live rank concurrently inside the lookahead
// window [T, T + o + L), where T is the minimum clock over live ranks.
// A message injected at time t is never visible before t + o + L
// (mpisim.Params.LookaheadNS), so ranks inside the window cannot be starved
// of a message that an in-window peer could still produce for them — the
// classic conservative-PDES lookahead bound. Ranks whose clocks already sit
// past the window still process at least one event per visit (advance checks
// the bound only after progress), which both guarantees liveness when the
// window's floor rank is blocked on a fast-forwarded peer and keeps
// compute-heavy events from exploding the epoch count.
//
// Determinism does not depend on the window at all: every step's outcome is
// a function of rank-local state plus FIFO match chains with a single writer
// (the source rank, in program order) and a single reader (the destination
// rank, in program order), plus order-independent max-folds for collectives.
// The window exists for scheduling fairness and bounded skew, not
// correctness; any conservative schedule yields the bit-identical Result.
//
// The pool is W persistent workers plus one reusable generation barrier.
// The last worker to arrive runs the window turn (compaction, stall check,
// next window bounds) while the others are parked, so the steady-state
// window loop allocates nothing.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	ftrace "repro/internal/obs/trace"
)

// parState is the parallel driver's scheduling state, embedded in the engine
// only while runParallel is active.
type parState struct {
	active    []int32 // live rank ids, compacted at each window turn
	nActive   int
	lookahead float64
	windowEnd float64
	windowT0  time.Time

	cursor   atomic.Int64 // next index into active claimed by a worker
	progress atomic.Int64 // events processed in the current window
	stalls   atomic.Int64 // zero-progress rank visits in the current window

	errMu sync.Mutex
	err   error
}

// runParallel executes the simulation with the given worker count (> 1).
func (en *engine) runParallel(workers int) error {
	en.ps.active = make([]int32, en.n)
	for i := range en.ps.active {
		en.ps.active[i] = int32(i)
	}
	en.ps.nActive = en.n
	en.ps.lookahead = en.params.LookaheadNS()
	if en.ps.lookahead <= 0 {
		// Degenerate cost models have no lookahead to exploit; fall back to
		// run-until-blocked epochs, which remain deterministic.
		en.ps.lookahead = math.Inf(1)
	}
	en.ps.windowEnd = en.windowStart() + en.ps.lookahead
	if sink.Enabled() {
		en.ps.windowT0 = time.Now()
	}
	bar := newBarrier(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lane int32) {
			defer wg.Done()
			en.worker(bar, lane)
		}(int32(w))
	}
	wg.Wait()
	return en.ps.err
}

// worker claims ranks off the window work list until the list drains, then
// joins the barrier; the last arriver runs the window turn. Rank indices are
// claimed atomically, so a rank is advanced by exactly one worker per window,
// and the barrier orders the hand-off of its cursor state to the next window.
func (en *engine) worker(bar *barrier, lane int32) {
	for {
		wsp := rec.Begin(ftrace.CatSim, ftrace.NameWindow, lane)
		var visits, prog int64
		for {
			i := en.ps.cursor.Add(1) - 1
			if i >= int64(en.ps.nActive) {
				break
			}
			visits++
			p, err := en.advance(int(en.ps.active[i]), en.ps.windowEnd)
			if err != nil {
				en.fail(err)
			}
			if p > 0 {
				prog += int64(p)
				en.ps.progress.Add(int64(p))
			} else {
				en.ps.stalls.Add(1)
			}
		}
		wsp.End(visits, prog)
		if !bar.await(en.windowTurn) {
			return
		}
	}
}

// fail records the first error; later errors (other ranks tripping over the
// same inconsistency) are dropped. Which error wins can vary with the
// schedule, but whether one occurs cannot.
func (en *engine) fail(err error) {
	en.ps.errMu.Lock()
	if en.ps.err == nil {
		en.ps.err = err
	}
	en.ps.errMu.Unlock()
}

// windowTurn runs between windows with every worker parked at the barrier:
// it folds the window's metrics, compacts finished ranks out of the active
// list, detects completion and stalls, and opens the next window. It reports
// whether another window follows.
func (en *engine) windowTurn() bool {
	progressed := en.ps.progress.Swap(0)
	en.ps.cursor.Store(0)
	rec.Instant(ftrace.CatSim, ftrace.NameTurn, 0, progressed, int64(en.ps.nActive))
	if sink.Enabled() {
		sink.Inc(obs.SimWindows)
		sink.Observe(obs.HistSimWindowEvents, progressed)
		sink.Add(obs.SimBarrierStalls, en.ps.stalls.Swap(0))
		sink.ObserveSince(obs.HistSimWindowNS, en.ps.windowT0)
		en.ps.windowT0 = time.Now()
	} else {
		en.ps.stalls.Store(0)
	}
	if en.ps.err != nil {
		return false
	}
	keep := en.ps.active[:0]
	for _, rid := range en.ps.active[:en.ps.nActive] {
		if !en.ranks[rid].done {
			keep = append(keep, rid)
		}
	}
	en.ps.nActive = len(keep)
	if en.ps.nActive == 0 {
		return false // every source drained: success
	}
	if progressed == 0 {
		// Same condition as the sequential driver's stalled sweep: a full
		// pass over every live rank moved nothing.
		en.ps.err = fmt.Errorf("simmpi: simulation stalled (mismatched trace?): %s", stallState(en.ranks))
		return false
	}
	en.ps.windowEnd = en.windowStart() + en.ps.lookahead
	return true
}

// windowStart returns the minimum clock over live ranks — the conservative
// floor no in-window event can causally precede.
func (en *engine) windowStart() float64 {
	t := math.Inf(1)
	for _, rid := range en.ps.active[:en.ps.nActive] {
		t = math.Min(t, en.ranks[rid].clock)
	}
	return t
}

// barrier is a reusable generation barrier for the worker pool. The last
// arriver runs the turn function while every other worker is parked on the
// condition variable, then ticks the generation and releases them; a false
// turn latches the stopped state so every worker exits. One barrier serves
// all windows — the steady-state loop allocates nothing.
type barrier struct {
	mu      sync.Mutex
	cond    sync.Cond
	workers int
	arrived int
	gen     uint64
	stopped bool
}

func newBarrier(workers int) *barrier {
	b := &barrier{workers: workers}
	b.cond.L = &b.mu
	return b
}

// await blocks until every worker arrives. The barrier's mutex makes each
// worker's window writes visible to the turn, and the turn's writes visible
// to every worker it releases. It reports whether another window follows.
func (b *barrier) await(turn func() bool) bool {
	b.mu.Lock()
	b.arrived++
	if b.arrived == b.workers {
		b.arrived = 0
		if !turn() {
			b.stopped = true
		}
		b.gen++
		b.cond.Broadcast()
	} else {
		gen := b.gen
		for b.gen == gen {
			b.cond.Wait()
		}
	}
	stopped := b.stopped
	b.mu.Unlock()
	return !stopped
}
