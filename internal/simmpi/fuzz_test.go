package simmpi

import (
	"reflect"
	"testing"

	"repro/internal/mpisim"
	"repro/internal/trace"
)

// fuzzSeqs decodes fuzz bytes into a structurally well-formed multi-rank
// trace: every generated receive is paired with a send in program order, so
// the trace simulates cleanly — with one deliberate exception, opcode 6,
// which rarely plants an unmatched receive that must stall every engine.
func fuzzSeqs(data []byte) [][]trace.Event {
	if len(data) < 2 {
		return nil
	}
	n := 2 + int(data[0]%5)
	seqs := make([][]trace.Event, n)
	for r := range seqs {
		seqs[r] = []trace.Event{{Op: trace.OpInit, Peer: trace.NoPeer, ComputeNS: float64(r % 3)}}
	}
	pending := make([][]int32, n) // irecv/isend GIDs not yet completed by a waitall
	var nextGID int32 = 1
	i := 1
	take := func() int {
		if i >= len(data) {
			return 0
		}
		b := int(data[i])
		i++
		return b
	}
	for i < len(data) {
		op := take()
		switch op % 7 {
		case 0: // blocking matched pair
			src := take() % n
			dst := take() % n
			if src == dst {
				dst = (dst + 1) % n
			}
			tag := op % 3
			size := (take() % 8) * 256
			seqs[src] = append(seqs[src], trace.Event{Op: trace.OpSend, Peer: dst, Tag: tag,
				Size: size, ComputeNS: float64(take() % 50)})
			seqs[dst] = append(seqs[dst], trace.Event{Op: trace.OpRecv, Peer: src, Tag: tag,
				Size: size, ComputeNS: float64(take() % 50)})
		case 1: // non-blocking matched pair, completed by a later opcode-2 waitall
			src := take() % n
			dst := take() % n
			if src == dst {
				dst = (dst + 1) % n
			}
			tag := op % 3
			size := (take() % 8) * 128
			gid := nextGID
			nextGID++
			seqs[src] = append(seqs[src], trace.Event{Op: trace.OpIsend, Peer: dst, Tag: tag, Size: size})
			seqs[dst] = append(seqs[dst], trace.Event{Op: trace.OpIrecv, Peer: src, Tag: tag,
				Size: size, GID: gid})
			pending[dst] = append(pending[dst], gid)
		case 2: // complete every outstanding non-blocking op of one rank
			r := take() % n
			if len(pending[r]) == 0 {
				continue
			}
			reqs := append([]int32(nil), pending[r]...)
			pending[r] = pending[r][:0]
			seqs[r] = append(seqs[r], trace.Event{Op: trace.OpWaitall, Peer: trace.NoPeer,
				Reqs: reqs, ComputeNS: float64(take() % 40)})
		case 3: // collective across every rank
			ops := []trace.Op{trace.OpBarrier, trace.OpAllreduce, trace.OpBcast, trace.OpAlltoall}
			cop := ops[take()%len(ops)]
			size := 8 * (1 + take()%4)
			if cop == trace.OpBarrier {
				size = 0
			}
			for r := range seqs {
				seqs[r] = append(seqs[r], trace.Event{Op: cop, Peer: trace.NoPeer, Size: size,
					ComputeNS: float64(r % 5)})
			}
		case 4: // pure compute
			r := take() % n
			seqs[r] = append(seqs[r], trace.Event{Op: trace.OpNone,
				ComputeNS: float64(1 + take()%1000)})
		case 5: // density knob: consume a byte, emit nothing
		case 6: // rarely, an unmatched receive (tag 9 is never sent)
			if take()%13 == 0 {
				r := take() % n
				seqs[r] = append(seqs[r], trace.Event{Op: trace.OpRecv, Peer: (r + 1) % n,
					Tag: 9, Size: 64})
			}
		}
	}
	for r := range seqs {
		if len(pending[r]) > 0 {
			seqs[r] = append(seqs[r], trace.Event{Op: trace.OpWaitall, Peer: trace.NoPeer,
				Reqs: pending[r]})
		}
		seqs[r] = append(seqs[r], trace.Event{Op: trace.OpFinalize, Peer: trace.NoPeer})
	}
	return seqs
}

// FuzzSimulateParallel is the cross-worker-count fuzz gate: for any generated
// trace, the parallel engine at 2 and 4 workers must agree bit-for-bit with
// the sequential schedule, and error presence (stall) must match exactly.
func FuzzSimulateParallel(f *testing.F) {
	f.Add([]byte{3, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{0, 7, 1, 0, 2, 50, 8, 2, 1, 9, 3, 0, 16, 14, 3, 2, 7, 0, 1})
	f.Add([]byte{4, 3, 1, 10, 2, 3, 17, 21, 2, 2, 30, 3, 2, 8, 1, 1, 0, 5, 40})
	f.Add([]byte{2, 6, 0, 1, 6, 13, 0}) // plants an unmatched recv → stall
	params := mpisim.DefaultParams()
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		seqs := fuzzSeqs(data)
		if seqs == nil {
			return
		}
		want, wantErr := Simulate(seqs, params)
		for _, w := range []int{2, 4} {
			got, err := SimulatePar(seqs, params, w)
			if (err != nil) != (wantErr != nil) {
				t.Fatalf("workers=%d: error mismatch: %v vs sequential %v", w, err, wantErr)
			}
			if wantErr == nil && !reflect.DeepEqual(want, got) {
				t.Fatalf("workers=%d: result diverges from sequential (%v vs %v)",
					w, got.TotalNS, want.TotalNS)
			}
		}
	})
}
