package simmpi

import "sync"

// matchKey identifies one point-to-point match chain inside a destination
// shard: messages from one source rank carrying one tag. The destination is
// implicit in the shard index, so the per-map key is one int narrower than
// the historical global queueMap's (src, dst, tag) key and every destination
// hashes over a map holding only its own senders.
type matchKey struct {
	src, tag int
}

// msgQueue is a FIFO of in-flight message arrival times. Pointer-valued map
// entries keep the hot send/recv path at one map lookup per operation: push
// and pop mutate the queue in place, where a value-slice map would pay a
// second hash for the re-assign on every push and every pop.
type msgQueue struct {
	buf  []float64
	head int
}

func (q *msgQueue) push(t float64) { q.buf = append(q.buf, t) }

func (q *msgQueue) len() int { return len(q.buf) - q.head }

func (q *msgQueue) pop() float64 {
	t := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head >= 32 && q.head*2 >= len(q.buf) {
		// Reclaim the popped prefix once it dominates the buffer; without
		// this, a queue that never fully drains (producer staying one step
		// ahead of the consumer) grows its buffer by the *total* message
		// count instead of the peak in-flight depth. The copy moves at most
		// as many elements as were popped since the last compaction, so
		// pushes and pops stay amortized O(1).
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return t
}

// matchShard is one destination rank's match table: (source, tag)-keyed FIFO
// queues of in-flight arrival times. A shard is written by every rank that
// sends to the destination and drained only by the destination itself, so
// the i-th push on a key always pairs with the i-th pop regardless of the
// schedule that interleaved them — the property the parallel engine's
// determinism rests on. The engine serializes shard access with mu only when
// it runs more than one worker; the sequential path calls the same methods
// lock-free. The trailing pad keeps adjacent shards in the engine's slice
// off each other's cache line.
type matchShard struct {
	mu sync.Mutex
	q  map[matchKey]*msgQueue
	_  [64 - 16]byte
}

// push appends an arrival time to k's FIFO and returns the depth after the
// push (for the queue-depth histogram).
func (s *matchShard) push(k matchKey, t float64) int {
	q := s.q[k]
	if q == nil {
		q = &msgQueue{}
		s.q[k] = q
	}
	q.push(t)
	return q.len()
}

// depth returns the number of queued arrivals for k.
func (s *matchShard) depth(k matchKey) int {
	if q := s.q[k]; q != nil {
		return q.len()
	}
	return 0
}

// tryPop removes and returns the head arrival for k, if one is queued.
func (s *matchShard) tryPop(k matchKey) (float64, bool) {
	q := s.q[k]
	if q == nil || q.len() == 0 {
		return 0, false
	}
	return q.pop(), true
}

// pop removes and returns the head arrival for k, which must be non-empty.
func (s *matchShard) pop(k matchKey) float64 {
	return s.q[k].pop()
}
