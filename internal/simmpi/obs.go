package simmpi

import (
	"repro/internal/obs"
	ftrace "repro/internal/obs/trace"
)

// sink is the package's attached metrics sink; nil (the default) disables
// observation. Wired once at startup via SetObs and only read afterwards.
var sink *obs.Sink

// SetObs attaches a metrics sink to the simulation engine. Call before
// simulating; a nil sink disables observation. Not safe to call concurrently
// with a running simulation.
func SetObs(s *obs.Sink) { sink = s }

// rec is the package's attached flight recorder: one span per worker per
// lookahead window on the "sim" track (lane = worker index) plus one instant
// per barrier turn. nil records nothing.
var rec *ftrace.Recorder

// SetTrace attaches a flight recorder to the simulation engine. Not safe to
// call concurrently with a running simulation.
func SetTrace(r *ftrace.Recorder) { rec = r }
