package simmpi

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/mpisim"
	"repro/internal/trace"
)

// ringTrace builds n synthetic rank sequences for a blocking wraparound ring:
// every iteration sends to the right neighbor and receives from the left,
// with rank-varying compute and sizes, an allreduce every fourth iteration,
// and a closing finalize. Every receive has a matching send, so the trace
// simulates cleanly.
func ringTrace(n, iters int) [][]trace.Event {
	seqs := make([][]trace.Event, n)
	for r := 0; r < n; r++ {
		evs := []trace.Event{{Op: trace.OpInit, Peer: trace.NoPeer, ComputeNS: 50 + float64(r%7)*10}}
		for k := 0; k < iters; k++ {
			tag := k % 2
			size := 1024 + 512*(k%3)
			evs = append(evs,
				trace.Event{Op: trace.OpSend, Peer: (r + 1) % n, Tag: tag, Size: size,
					ComputeNS: float64(40 + (r*13)%90)},
				trace.Event{Op: trace.OpRecv, Peer: (r + n - 1) % n, Tag: tag, Size: size,
					ComputeNS: float64(20 + (k*7)%30)})
			if k%4 == 3 {
				evs = append(evs, trace.Event{Op: trace.OpAllreduce, Peer: trace.NoPeer, Size: 8,
					ComputeNS: 30})
			}
		}
		evs = append(evs, trace.Event{Op: trace.OpFinalize, Peer: trace.NoPeer})
		seqs[r] = evs
	}
	return seqs
}

// chainTrace builds an open-chain non-blocking halo exchange (the jacobi
// shape): each iteration posts isends and irecvs toward both neighbors and
// completes them with one waitall whose Reqs reference the poster GIDs.
func chainTrace(n, iters int) [][]trace.Event {
	const (
		gidSendL int32 = 100
		gidSendR int32 = 101
		gidRecvL int32 = 102
		gidRecvR int32 = 103
	)
	seqs := make([][]trace.Event, n)
	for r := 0; r < n; r++ {
		evs := []trace.Event{{Op: trace.OpInit, Peer: trace.NoPeer, ComputeNS: 25}}
		for k := 0; k < iters; k++ {
			var reqs []int32
			if r > 0 {
				evs = append(evs, trace.Event{Op: trace.OpIsend, Peer: r - 1, Tag: 1, Size: 2048,
					GID: gidSendL, ComputeNS: float64(30 + (r*11)%60)})
				reqs = append(reqs, gidSendL)
			}
			if r < n-1 {
				evs = append(evs, trace.Event{Op: trace.OpIsend, Peer: r + 1, Tag: 2, Size: 2048,
					GID: gidSendR, ComputeNS: 15})
				reqs = append(reqs, gidSendR)
			}
			if r > 0 {
				evs = append(evs, trace.Event{Op: trace.OpIrecv, Peer: r - 1, Tag: 2, Size: 2048,
					GID: gidRecvL, ComputeNS: 5})
				reqs = append(reqs, gidRecvL)
			}
			if r < n-1 {
				evs = append(evs, trace.Event{Op: trace.OpIrecv, Peer: r + 1, Tag: 1, Size: 2048,
					GID: gidRecvR, ComputeNS: 5})
				reqs = append(reqs, gidRecvR)
			}
			evs = append(evs, trace.Event{Op: trace.OpWaitall, Peer: trace.NoPeer, Reqs: reqs,
				ComputeNS: float64(10 + (k*3)%40)})
		}
		evs = append(evs, trace.Event{Op: trace.OpFinalize, Peer: trace.NoPeer})
		seqs[r] = evs
	}
	return seqs
}

// shiftTrace builds a ring whose partner distance shifts every iteration
// (1, 2, 3, 1, ...), with a barrier midway — deeper match-table fan-out than
// the plain ring, still send-before-recv so it cannot deadlock.
func shiftTrace(n, iters int) [][]trace.Event {
	seqs := make([][]trace.Event, n)
	for r := 0; r < n; r++ {
		evs := []trace.Event{{Op: trace.OpInit, Peer: trace.NoPeer}}
		for k := 0; k < iters; k++ {
			s := 1 + k%3
			evs = append(evs,
				trace.Event{Op: trace.OpSend, Peer: (r + s) % n, Tag: 3, Size: 256 * (1 + k%4),
					ComputeNS: float64(60 + (r*29)%120)},
				trace.Event{Op: trace.OpRecv, Peer: (r + n - s) % n, Tag: 3, Size: 256 * (1 + k%4),
					ComputeNS: 10})
			if k == iters/2 {
				evs = append(evs, trace.Event{Op: trace.OpBarrier, Peer: trace.NoPeer})
			}
		}
		evs = append(evs, trace.Event{Op: trace.OpFinalize, Peer: trace.NoPeer})
		seqs[r] = evs
	}
	return seqs
}

var parFixtures = []struct {
	name string
	gen  func(n, iters int) [][]trace.Event
}{
	{"ring", ringTrace},
	{"chain", chainTrace},
	{"shift", shiftTrace},
}

// TestParallelEquivalence is the tentpole's equivalence gate: the parallel
// engine must produce a bit-identical Result (including per-rank finish
// times) at every worker count, on every fixture, at 7/64/256/1024 ranks.
func TestParallelEquivalence(t *testing.T) {
	params := mpisim.DefaultParams()
	workerCounts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	for _, n := range []int{7, 64, 256, 1024} {
		iters := 12
		if n >= 1024 {
			iters = 6
		}
		for _, fx := range parFixtures {
			t.Run(fmt.Sprintf("%s/n%d", fx.name, n), func(t *testing.T) {
				seqs := fx.gen(n, iters)
				want, err := Simulate(seqs, params)
				if err != nil {
					t.Fatalf("sequential: %v", err)
				}
				for _, w := range workerCounts {
					got, err := SimulatePar(seqs, params, w)
					if err != nil {
						t.Fatalf("workers=%d: %v", w, err)
					}
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("workers=%d: result differs from sequential\nwant total %v\ngot total  %v",
							w, want.TotalNS, got.TotalNS)
					}
				}
			})
		}
	}
}

// TestParallelZeroCostModel pins the degenerate-lookahead fallback: with an
// all-zero cost model the window span is zero, and the parallel driver must
// fall back to unbounded epochs rather than spin without progress.
func TestParallelZeroCostModel(t *testing.T) {
	seqs := ringTrace(16, 8)
	want, err := Simulate(seqs, mpisim.Params{})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	got, err := SimulatePar(seqs, mpisim.Params{}, 4)
	if err != nil {
		t.Fatalf("workers=4: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("zero-cost model diverges: %v vs %v", want.TotalNS, got.TotalNS)
	}
}

// TestParallelErrorEquivalence checks that error *presence* is schedule-
// independent: a stall or collective mismatch is reported at every worker
// count (the message may name a different rank).
func TestParallelErrorEquivalence(t *testing.T) {
	params := mpisim.DefaultParams()

	// An unmatched receive before rank 3's finalize: rank 3 never reaches
	// the final collective, so every engine must stall.
	stallSeqs := ringTrace(8, 4)
	fin := len(stallSeqs[3]) - 1
	stallSeqs[3] = append(stallSeqs[3][:fin:fin],
		trace.Event{Op: trace.OpRecv, Peer: 5, Tag: 9, Size: 64},
		trace.Event{Op: trace.OpFinalize, Peer: trace.NoPeer})

	// Rank 2 disagrees on the allreduce payload size.
	mismatchSeqs := ringTrace(8, 4)
	for i := range mismatchSeqs[2] {
		if mismatchSeqs[2][i].Op == trace.OpAllreduce {
			mismatchSeqs[2][i].Size = 16
			break
		}
	}

	for _, w := range []int{1, 2, 4} {
		if _, err := SimulatePar(stallSeqs, params, w); err == nil {
			t.Errorf("workers=%d: unmatched recv did not stall", w)
		} else if !strings.Contains(err.Error(), "stalled") {
			t.Errorf("workers=%d: want stall error, got %v", w, err)
		}
		if _, err := SimulatePar(mismatchSeqs, params, w); err == nil {
			t.Errorf("workers=%d: collective mismatch not detected", w)
		} else if !strings.Contains(err.Error(), "collective mismatch") {
			t.Errorf("workers=%d: want mismatch error, got %v", w, err)
		}
	}
}

// TestParallelEmptyRankStalls mirrors the sequential engine's historical
// contract under the parallel driver: a source that yields no events at all
// is a stall, not a silently completed rank.
func TestParallelEmptyRankStalls(t *testing.T) {
	seqs := ringTrace(6, 4)
	seqs[4] = nil
	if _, err := SimulatePar(seqs, mpisim.DefaultParams(), 4); err == nil {
		t.Fatal("empty rank did not stall under the parallel driver")
	}
}
