//go:build !race

package simmpi

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count assertions are meaningless under -race (the detector
// allocates shadow state), so alloc tests consult this and skip.
const raceEnabled = false
